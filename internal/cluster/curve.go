// Package cluster simulates the fleet-scale side of the paper: data
// centers with semantic buckets, the C1/C2/C3 phased continuous
// deployment, capacity-loss accounting during pushes, and the
// Section VI reliability dynamics (defective packages, crash loops,
// randomized package selection, no-Jump-Start fallback).
//
// The fleet simulator does not execute bytecode; each server replays a
// *warmup curve* measured by the detailed single-server simulation
// (internal/server), which keeps thousand-server deployments cheap
// while grounding their behaviour in the mechanism-level model.
package cluster

import (
	"sort"

	"jumpstart/internal/server"
)

// WarmupCurve maps server uptime (seconds) to normalized serving
// capacity in [0, 1]. Curves are piecewise linear and monotone time
// grids; values may dip and rise (real warmups are not monotone).
type WarmupCurve struct {
	Times  []float64
	Values []float64
}

// At interpolates the capacity at the given uptime; before the first
// point it is 0, after the last it holds the final value.
func (c WarmupCurve) At(uptime float64) float64 {
	n := len(c.Times)
	if n == 0 {
		return 1 // no curve: instant capacity
	}
	if uptime <= c.Times[0] {
		if uptime < c.Times[0] {
			return 0
		}
		return c.Values[0]
	}
	if uptime >= c.Times[n-1] {
		return c.Values[n-1]
	}
	i := sort.SearchFloat64s(c.Times, uptime)
	// c.Times[i-1] < uptime <= c.Times[i]
	t0, t1 := c.Times[i-1], c.Times[i]
	v0, v1 := c.Values[i-1], c.Values[i]
	frac := (uptime - t0) / (t1 - t0)
	return v0 + frac*(v1-v0)
}

// SteadyValue returns the curve's final capacity.
func (c WarmupCurve) SteadyValue() float64 {
	if len(c.Values) == 0 {
		return 1
	}
	return c.Values[len(c.Values)-1]
}

// TimeToFraction returns the first uptime at which capacity reaches
// frac of the steady value, or the last time if never.
func (c WarmupCurve) TimeToFraction(frac float64) float64 {
	target := frac * c.SteadyValue()
	for i, v := range c.Values {
		if v >= target {
			return c.Times[i]
		}
	}
	if len(c.Times) == 0 {
		return 0
	}
	return c.Times[len(c.Times)-1]
}

// Stretch returns the curve slowed down by factor: the same capacity
// levels, each reached factor× later. The standard model for warming
// under extra load (absorbed failover traffic) or on weaker hardware
// than the curve was measured on (cross-geometry package consumption).
func (c WarmupCurve) Stretch(factor float64) WarmupCurve {
	out := WarmupCurve{
		Times:  make([]float64, len(c.Times)),
		Values: append([]float64(nil), c.Values...),
	}
	for i, t := range c.Times {
		out.Times[i] = t * factor
	}
	return out
}

// CurveFromTicks converts a detailed-server tick series into a warmup
// curve normalized to steadyRPS.
func CurveFromTicks(ticks []server.TickStats, steadyRPS float64) WarmupCurve {
	c := WarmupCurve{}
	prev := 0.0
	for _, t := range ticks {
		dt := t.T - prev
		prev = t.T
		if dt <= 0 || steadyRPS <= 0 {
			continue
		}
		v := float64(t.Completed) / dt / steadyRPS
		if v > 1 {
			v = 1
		}
		c.Times = append(c.Times, t.T)
		c.Values = append(c.Values, v)
	}
	return c
}

// LifespanFractions computes the Section II-B statistics: with a
// continuous-deployment push every pushInterval seconds, the fraction
// of a server's lifespan spent before reaching 90% capacity ("until
// optimized code was produced and decent performance was reached") and
// before reaching ~99% ("until reaching peak performance").
func LifespanFractions(c WarmupCurve, pushInterval float64) (toDecent, toPeak float64) {
	if pushInterval <= 0 {
		return 0, 0
	}
	toDecent = c.TimeToFraction(0.90) / pushInterval
	toPeak = c.TimeToFraction(0.99) / pushInterval
	if toDecent > 1 {
		toDecent = 1
	}
	if toPeak > 1 {
		toPeak = 1
	}
	return toDecent, toPeak
}
