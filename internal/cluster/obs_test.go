package cluster

import (
	"bytes"
	"runtime"
	"testing"

	"jumpstart/internal/netsim"
	"jumpstart/internal/obs"
	"jumpstart/internal/telemetry"
)

// obsSet builds a telemetry set with a trace ring large enough that a
// full test deployment's spans survive to validation without eviction.
func obsSet() *telemetry.Set {
	return &telemetry.Set{
		Metrics: telemetry.NewRegistry(),
		Trace:   telemetry.NewTrace(1 << 17),
		Cycles:  telemetry.NewCycleProfile(),
	}
}

// spanScenarios are the three boot paths whose span trees differ:
// direct in-memory picks, the networked transport (fetch/backoff/rpc
// children), and the multi-region hierarchy (replica legs).
var spanScenarios = []struct {
	name string
	cfg  func() Config
}{
	{"direct-defects", func() Config {
		cfg := fleetConfig(true)
		cfg.DefectRate = 0.5
		cfg.ValidationCatchRate = 0.5
		cfg.CrashDelay = 30
		return cfg
	}},
	{"transport", func() Config {
		return transportFleetConfig(netsim.Config{BaseLatency: 0.02})
	}},
	{"multistore", func() Config {
		return multiFleetConfig(
			netsim.Config{BaseLatency: 0.02},
			MultiConfig{NodesPerRegion: 3, Replicas: 2, PropagateEvery: 60})
	}},
}

// TestFleetSpanDeterminism is the tentpole observability contract at
// fleet level, per boot path: the causal span trace — both export
// formats — is byte-identical at every worker count, the tick series
// is unperturbed by tracing (spans on ≡ spans off), and every span
// tree passes the duration-conservation check with zero orphans.
func TestFleetSpanDeterminism(t *testing.T) {
	for _, sc := range spanScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			type run struct {
				ticks  []FleetTick
				jsonl  []byte
				chrome []byte
			}
			do := func(workers int, tel *telemetry.Set) run {
				cfg := sc.cfg()
				cfg.Workers = workers
				cfg.Telem = tel
				cfg.RecordSeries = tel != nil
				_, ticks := runDeployment(t, cfg, 2500)
				r := run{ticks: ticks}
				if tel != nil {
					var jl, ch bytes.Buffer
					if err := tel.Trace.WriteJSONL(&jl); err != nil {
						t.Fatal(err)
					}
					if err := tel.Trace.WriteChromeTrace(&ch); err != nil {
						t.Fatal(err)
					}
					r.jsonl = jl.Bytes()
					r.chrome = ch.Bytes()

					check := obs.ValidateSpans(tel.Trace.Events())
					if check.Spans == 0 {
						t.Fatal("deployment recorded no spans")
					}
					if check.Orphans != 0 {
						t.Fatalf("%d orphaned spans (evicted or never-closed parents)", check.Orphans)
					}
					if !check.OK() {
						t.Fatalf("span conservation violated:\n%v", check.Violations)
					}
				}
				return r
			}

			off := do(1, nil)
			base := do(1, obsSet())
			if i, ok := ticksEqual(off.ticks, base.ticks); !ok {
				t.Fatalf("tracing perturbed the simulation at tick %d: %+v vs %+v",
					i, off.ticks[i], base.ticks[i])
			}
			for _, workers := range []int{4, runtime.NumCPU()} {
				got := do(workers, obsSet())
				if i, ok := ticksEqual(base.ticks, got.ticks); !ok {
					t.Fatalf("workers=%d diverged at tick %d", workers, i)
				}
				if !bytes.Equal(base.jsonl, got.jsonl) {
					t.Fatalf("workers=%d: JSONL span trace diverged", workers)
				}
				if !bytes.Equal(base.chrome, got.chrome) {
					t.Fatalf("workers=%d: Chrome span trace diverged", workers)
				}
			}
		})
	}
}

// TestFleetWarmupSeriesClassification closes the loop from recorded
// per-server capacity series to changepoint labels: every server the
// deployment rebooted yields a warmup-labeled curve with a steady
// segment, and the classifier agrees with the fleet's own
// time-to-steady bookkeeping on sample counts.
func TestFleetWarmupSeriesClassification(t *testing.T) {
	cfg := fleetConfig(true)
	cfg.RecordSeries = true
	cfg.Telem = obsSet()
	f, _ := runDeployment(t, cfg, 2500)

	series := f.WarmupSeries()
	if len(series) == 0 {
		t.Fatal("RecordSeries produced no series")
	}
	warmups := 0
	for i, xs := range series {
		c := obs.Classify(xs, cfg.TickSeconds)
		if c.Label == obs.LabelWarmup {
			warmups++
			if c.SteadyStart < 0 {
				t.Fatalf("server %d: warmup curve without steady segment: %+v", i, c)
			}
			if c.TimeToSteady <= 0 {
				t.Fatalf("server %d: non-positive time-to-steady: %+v", i, c)
			}
		}
	}
	if warmups == 0 {
		t.Fatal("no server curve classified as warmup")
	}
	if got := len(f.BootLatencies()); got == 0 {
		t.Fatal("no boot latencies recorded")
	}
	if got := len(f.TimesToSteady()); got == 0 {
		t.Fatal("no times-to-steady recorded")
	}
}
