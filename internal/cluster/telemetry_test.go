package cluster

import (
	"testing"

	"jumpstart/internal/telemetry"
)

// TestFleetTelemetryZeroPerturbation is the fleet half of the
// zero-perturbation contract: the tick series must be identical with
// telemetry on or off, at every worker count — the per-shard
// collectors merged in shard-index order may not leak into the
// simulation.
func TestFleetTelemetryZeroPerturbation(t *testing.T) {
	run := func(workers int, tel *telemetry.Set) ([]FleetTick, int, int) {
		cfg := DefaultConfig()
		cfg.CurveJumpStart = jsCurve()
		cfg.CurveNoJumpStart = noJSCurve()
		cfg.DefectRate = 0.5
		cfg.ValidationCatchRate = 0.5
		cfg.CrashDelay = 30
		cfg.Workers = workers
		cfg.Telem = tel
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.StartDeployment()
		return f.Run(2000), f.Crashes(), f.Fallbacks()
	}

	base, crashes, fallbacks := run(1, nil)
	if crashes == 0 {
		t.Fatal("scenario exercised no crashes; defect path untested")
	}

	var lastTel *telemetry.Set
	for _, w := range []int{1, 4, 0} { // 0 = one worker per CPU
		for _, withTel := range []bool{false, true} {
			var tel *telemetry.Set
			if withTel {
				tel = telemetry.NewSet()
				lastTel = tel
			}
			ticks, c, fb := run(w, tel)
			if c != crashes || fb != fallbacks {
				t.Fatalf("workers=%d tel=%v: crashes/fallbacks %d/%d, want %d/%d",
					w, withTel, c, fb, crashes, fallbacks)
			}
			if len(ticks) != len(base) {
				t.Fatalf("workers=%d tel=%v: %d ticks, want %d", w, withTel, len(ticks), len(base))
			}
			for i := range base {
				if ticks[i] != base[i] {
					t.Fatalf("workers=%d tel=%v: tick %d diverged:\n  base %+v\n  got  %+v",
						w, withTel, i, base[i], ticks[i])
				}
			}
		}
	}

	// The observed runs must agree with the simulation's own counters.
	if got := lastTel.Metrics.Counter("fleet.crashes_total").Value(); got != uint64(crashes) {
		t.Fatalf("crash counter %d, want %d", got, crashes)
	}
	if got := lastTel.Metrics.Counter("fleet.fallbacks_total").Value(); got != uint64(fallbacks) {
		t.Fatalf("fallback counter %d, want %d", got, fallbacks)
	}
	// Shard collectors: one step per server per tick must have merged.
	wantSteps := uint64(len(base)) * uint64(3*10*24)
	if got := lastTel.Metrics.Counter("fleet.steps_total").Value(); got != wantSteps {
		t.Fatalf("steps counter %d, want %d", got, wantSteps)
	}
	if lastTel.Trace.Len() == 0 {
		t.Fatal("no fleet events recorded")
	}
}
