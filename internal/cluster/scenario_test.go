package cluster

import (
	"math"
	"testing"

	"jumpstart/internal/scenario"
)

// scenarioFleetConfig builds a fleet config with a scenario engine of
// the given kind wired in, a heterogeneous two-class geometry, and the
// defect/crash paths enabled so the RNG-drawing code runs hot.
func scenarioFleetConfig(t *testing.T, kind scenario.Kind, horizon float64) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CurveJumpStart = jsCurve()
	cfg.CurveNoJumpStart = noJSCurve()
	cfg.CurveFailover = WarmupCurve{
		Times:  []float64{0, 60, 150, 250},
		Values: []float64{0.2, 0.5, 0.8, 1.0},
	}
	cfg.CurveMismatch = WarmupCurve{
		Times:  []float64{0, 50, 120, 200},
		Values: []float64{0.2, 0.6, 0.85, 1.0},
	}
	cfg.GeometryClasses = 2
	cfg.DefectRate = 0.3
	cfg.ValidationCatchRate = 0.5
	cfg.CrashDelay = 30
	sc, err := scenario.New(scenario.DefaultConfig(kind, cfg.Regions, horizon))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	return cfg
}

// TestScenarioDeterminism pins the tentpole contract: a scenario-
// modulated, geometry-heterogeneous fleet produces byte-identical tick
// series at every worker count, for every scenario kind.
func TestScenarioDeterminism(t *testing.T) {
	const horizon = 1500
	for _, kind := range []scenario.Kind{scenario.Diurnal, scenario.FlashCrowd, scenario.Failover} {
		run := func(workers int) ([]FleetTick, int, int, ScenarioStats) {
			cfg := scenarioFleetConfig(t, kind, horizon)
			cfg.Workers = workers
			f, err := NewFleet(cfg)
			if err != nil {
				t.Fatal(err)
			}
			f.StartDeployment()
			return f.Run(horizon), f.Crashes(), f.Fallbacks(), f.ScenarioStats()
		}
		base, crashes, fallbacks, stats := run(1)
		if crashes == 0 {
			t.Fatalf("%v: no crashes; defect path untested", kind)
		}
		for _, w := range []int{4, 0} { // 0 = one worker per CPU
			ticks, c, fb, st := run(w)
			if c != crashes || fb != fallbacks {
				t.Fatalf("%v workers=%d: crashes/fallbacks %d/%d, want %d/%d",
					kind, w, c, fb, crashes, fallbacks)
			}
			if st != stats {
				t.Fatalf("%v workers=%d: scenario stats %+v, want %+v", kind, w, st, stats)
			}
			if len(ticks) != len(base) {
				t.Fatalf("%v workers=%d: %d ticks, want %d", kind, w, len(ticks), len(base))
			}
			for i := range base {
				if ticks[i] != base[i] {
					t.Fatalf("%v workers=%d: tick %d diverged:\n  seq %+v\n  par %+v",
						kind, w, i, base[i], ticks[i])
				}
			}
		}
	}
}

func TestNewFleetScenarioValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CurveJumpStart = jsCurve()
	cfg.CurveNoJumpStart = noJSCurve()
	sc, err := scenario.New(scenario.DefaultConfig(scenario.Diurnal, cfg.Regions+1, 600))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	if _, err := NewFleet(cfg); err == nil {
		t.Fatal("region-count mismatch between scenario and fleet accepted")
	}
	cfg.Scenario = nil
	cfg.GeometryClasses = -1
	if _, err := NewFleet(cfg); err == nil {
		t.Fatal("negative GeometryClasses accepted")
	}
}

// TestNoScenarioAccountingIsNeutral: without a scenario the new
// FleetTick fields collapse to the plain view, so every existing
// consumer of the series sees exactly what it used to.
func TestNoScenarioAccountingIsNeutral(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CurveJumpStart = jsCurve()
	cfg.CurveNoJumpStart = noJSCurve()
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.StartDeployment()
	ticks := f.Run(1200)
	for i, tk := range ticks {
		if tk.Demand != 1 || tk.ScenCapacity != tk.Capacity || tk.RegionsDark != 0 {
			t.Fatalf("tick %d: scenario fields not neutral: %+v", i, tk)
		}
	}
	if st := f.ScenarioStats(); st != (ScenarioStats{}) {
		t.Fatalf("scenario stats on a scenario-less fleet: %+v", st)
	}
	if loss, plain := ScenarioCapacityLoss(ticks, cfg.TickSeconds), CapacityLoss(ticks, cfg.TickSeconds); math.Abs(loss-plain) > 1e-12 {
		t.Fatalf("scenario loss %f != plain loss %f without a scenario", loss, plain)
	}
}

// TestDiurnalDemandAccounting: the wave shows up in FleetTick.Demand,
// and warming at the trough hurts the demand-weighted capacity less
// than the raw capacity fraction suggests.
func TestDiurnalDemandAccounting(t *testing.T) {
	const horizon = 1500
	cfg := scenarioFleetConfig(t, scenario.Diurnal, horizon)
	cfg.DefectRate = 0
	// Align the regions' waves: with the default follow-the-sun phase
	// offsets the three sinusoids cancel and fleet-total demand stays
	// flat, which is exactly what a global accounting view should show
	// — but this test wants to see the wave itself.
	scfg := scenario.DefaultConfig(scenario.Diurnal, cfg.Regions, horizon)
	scfg.RegionPhase = 0
	scfg.PhaseJitter = 0
	eng, err := scenario.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = eng
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.StartDeployment()
	ticks := f.Run(horizon)
	peak, trough := 0.0, math.Inf(1)
	diverged := false
	for _, tk := range ticks {
		if tk.Demand > peak {
			peak = tk.Demand
		}
		if tk.Demand < trough {
			trough = tk.Demand
		}
		if math.Abs(tk.ScenCapacity-tk.Capacity) > 1e-9 {
			diverged = true
		}
		if tk.RegionsDark != 0 {
			t.Fatalf("diurnal scenario marked a region dark: %+v", tk)
		}
	}
	amp := scenario.DefaultConfig(scenario.Diurnal, cfg.Regions, horizon).Amplitude
	if peak < 1+amp/2 || trough > 1-amp/2 {
		t.Fatalf("demand wave too flat: peak %f trough %f (amplitude %f)", peak, trough, amp)
	}
	if !diverged {
		t.Fatal("demand-weighted capacity never diverged from the raw fraction")
	}
	st := f.ScenarioStats()
	if st.PeakDemand != peak || st.TroughDemand != trough {
		t.Fatalf("stats peak/trough %f/%f, ticks saw %f/%f",
			st.PeakDemand, st.TroughDemand, peak, trough)
	}
}

// TestFailoverAccounting: a drill marks the region dark, conserves the
// dumped demand on the survivors, and books failover-absorbed boots.
func TestFailoverAccounting(t *testing.T) {
	const horizon = 1500
	cfg := scenarioFleetConfig(t, scenario.Failover, horizon)
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.StartDeployment()
	ticks := f.Run(horizon)
	scen := scenario.DefaultConfig(scenario.Failover, cfg.Regions, horizon)
	sawDark, sawShortfall := false, false
	for _, tk := range ticks {
		down := tk.T >= scen.FailStart && tk.T < scen.FailStart+scen.FailDuration
		if down != (tk.RegionsDark == 1) {
			t.Fatalf("t=%g: RegionsDark=%d, drill window says down=%v", tk.T, tk.RegionsDark, down)
		}
		if down {
			sawDark = true
			// Demand is conserved (the dark region's load moves, it
			// does not vanish), but the dark region's capacity serves
			// none of it, so the weighted view must show a shortfall.
			if math.Abs(tk.Demand-1) > 1e-9 {
				t.Fatalf("t=%g: drill changed total demand to %f", tk.T, tk.Demand)
			}
			if tk.ScenCapacity < tk.Capacity-1e-9 {
				sawShortfall = true
			}
		}
	}
	if !sawDark {
		t.Fatal("drill window never observed")
	}
	if !sawShortfall {
		t.Fatal("dark region's wasted capacity never surfaced in ScenCapacity")
	}
	st := f.ScenarioStats()
	if st.DarkTicks == 0 {
		t.Fatal("no dark ticks counted")
	}
	if st.FailoverBoots == 0 {
		t.Fatal("no failover-absorbed boots counted (C3 restarts overlap the drill)")
	}
}

// TestGeometryMismatchAccounting: with two geometry classes, consumers
// land on packages seeded by the other class and book mismatch boots;
// the census covers the whole fleet.
func TestGeometryMismatchAccounting(t *testing.T) {
	cfg := scenarioFleetConfig(t, scenario.Diurnal, 1500)
	cfg.DefectRate = 0
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	census := f.GeometryCensus()
	if len(census) != 2 {
		t.Fatalf("census = %v, want two classes", census)
	}
	total := 0
	for class, n := range census {
		if n == 0 {
			t.Fatalf("geometry class %d is empty: %v", class, census)
		}
		total += n
	}
	if total != f.Servers() {
		t.Fatalf("census covers %d of %d servers", total, f.Servers())
	}
	f.StartDeployment()
	f.Run(1500)
	if f.ScenarioStats().MismatchBoots == 0 {
		t.Fatal("two-class fleet booked no cross-geometry boots")
	}

	// A uniform fleet with the same seed books none.
	cfg.GeometryClasses = 0
	u, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if u.GeometryCensus() != nil {
		t.Fatal("uniform fleet has a geometry census")
	}
	u.StartDeployment()
	u.Run(1500)
	if u.ScenarioStats().MismatchBoots != 0 {
		t.Fatal("uniform fleet booked mismatch boots")
	}
}
