package cluster

import (
	"fmt"
	"math"
	"sort"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/jumpstart/multistore"
	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/netsim"
	"jumpstart/internal/parallel"
	"jumpstart/internal/scenario"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

// Config sizes the simulated fleet and its deployment behaviour.
type Config struct {
	Regions          int
	Buckets          int // semantic buckets per region (paper: 10)
	ServersPerBucket int
	TickSeconds      float64
	Seed             uint64

	// Warmup curves by boot flavour, measured by internal/server.
	CurveJumpStart   WarmupCurve
	CurveNoJumpStart WarmupCurve

	// Deployment plan. Fractions of the fleet restarted per phase;
	// holds are the soak times before the next phase starts.
	C1Fraction float64 // employee servers
	C2Fraction float64 // profile-collecting servers (paper: 2%)
	C1Hold     float64
	C2Hold     float64 // must cover seeding+validation (~30 min scaled)

	// C3Waves splits the C3 phase into rolling waves (the fleet-wide
	// restart is rate-limited in practice); C3WaveInterval spaces them.
	C3Waves        int
	C3WaveInterval float64

	// SeederDuration is how long a C2 server takes to produce and
	// validate a package after restart.
	SeederDuration float64
	// RestartDowntime is the gap between a server stopping and its
	// replacement process starting.
	RestartDowntime float64

	// Reliability model (Section VI). DefectRate is the probability a
	// seeder produces a crash-inducing package; ValidationCatchRate is
	// the fraction of defects caught before publishing; CrashDelay is
	// how long a consumer survives on a defective package before
	// crashing; MaxJSAttempts is the fallback threshold (VI-A3).
	DefectRate          float64
	ValidationCatchRate float64
	CrashDelay          float64
	MaxJSAttempts       int

	// JumpStartEnabled selects whether C3 servers consume packages or
	// warm up on their own (the paper's fleet-wide kill switch).
	JumpStartEnabled bool

	// CurveRemapped is the warmup curve for consumers booting from a
	// package carried across a revision boundary by the cross-release
	// remapper — between CurveJumpStart (exact profile) and
	// CurveNoJumpStart (cold). Empty means remapped boots reuse
	// CurveJumpStart.
	CurveRemapped WarmupCurve

	// CurveAggregated is the warmup curve for consumers booting from a
	// consensus package aggregated from several seeders' profiles
	// (Transport.Multi.AggregateSeeders > 1) — typically at or above
	// CurveJumpStart, since the merged profile covers more of the
	// workload than any single seeder's. Empty means aggregated boots
	// reuse CurveJumpStart.
	CurveAggregated WarmupCurve

	// PoolSize, when > 0, maintains a standby warm-pool boot tier: a
	// pool of pre-booted, pre-jump-started consumers that deployments
	// drain. When a C3 wave restarts a consumer and a standby is
	// available, the slot is swapped to the standby — at full capacity
	// on CurvePooled — while the replaced instance reboots into the
	// pool in the background and becomes available again once warm.
	// An empty pool (drained faster than backfill) books a pool miss
	// and the server takes the normal restart path.
	PoolSize int
	// PoolBackfillRate caps how many rebooted instances may re-enter
	// the pool per virtual second (<= 0 means unthrottled): the knob
	// that trades pool freshness against churn pressure on the tier.
	PoolBackfillRate float64
	// CurvePooled is the warmup curve a swapped-in standby replays.
	// Standbys are pre-warmed, so the empty curve — instant full
	// capacity — is the natural default.
	CurvePooled WarmupCurve

	// WarmupMode selects eager (default) or lazy consumer warmup for
	// Jump-Start boots. Lazy boots serve immediately and page
	// translations in on first call; their capacity curve is CurveLazy.
	WarmupMode jumpstart.WarmupMode
	// CurveLazy is the warmup curve for lazy-mode Jump-Start boots,
	// measured by internal/server with a transport-backed pager. Empty
	// means lazy boots reuse CurveJumpStart.
	CurveLazy WarmupCurve

	// Scenario, when non-nil, modulates the fleet's traffic over
	// virtual time (internal/scenario): diurnal demand waves, flash
	// crowds, and regional failover drills. The engine is pure — every
	// query is a function of (region, t) — so wiring it changes only
	// the demand-weighted accounting (FleetTick.Demand/ScenCapacity)
	// and the failover curve selection, never the worker-count
	// determinism of the replay. Its Regions must match the fleet's.
	Scenario *scenario.Engine
	// CurveFailover is the warmup curve for Jump-Start boots in a
	// region that is absorbing a failed-over region's load (the
	// scenario says the region is Absorbing at boot time): warming
	// under double demand is slower than the nominal curve. Empty
	// means absorbed boots keep their flavour's normal curve; the
	// failover-boot counter books them either way.
	CurveFailover WarmupCurve

	// GeometryClasses, when > 1, splits the fleet into hardware
	// geometry classes (microarch.Config generations): each server is
	// deterministically assigned a class from the fleet seed, and a
	// package seeded on one geometry consumed on another books a
	// mismatch boot — the remap/replay-cache cost of heterogeneous
	// fleets. Zero or one means a uniform fleet.
	GeometryClasses int
	// CurveMismatch is the warmup curve for Jump-Start boots consuming
	// a package seeded on a different geometry class — between
	// CurveJumpStart (profile maps exactly) and CurveNoJumpStart
	// (cold). Empty means mismatched boots keep their flavour's normal
	// curve; the mismatch-boot counter books them either way.
	CurveMismatch WarmupCurve

	// PushEvery, when > 0, starts a new deployment (a code push of the
	// next revision) every PushEvery virtual seconds for as long as the
	// fleet runs — the paper's up-to-three-pushes-per-day churn regime,
	// compressed. Zero keeps pushes manual (StartDeployment).
	PushEvery float64
	// RemapPolicy decides the fate of published packages when a push
	// lands: ExactOnly (the zero value) invalidates every package, so
	// consumers boot cold until seeders republish; RemapTolerant
	// carries each package across the boundary through the remapper,
	// surviving with probability RemapHitRate.
	RemapPolicy jumpstart.CompatPolicy
	// RemapHitRate is the probability a package survives remapping
	// onto the next revision. Callers measure it on the real mutated
	// site with prof.Remap (internal/experiments does) rather than
	// picking a number. Only read under RemapTolerant.
	RemapHitRate float64

	// Workers shards the per-server replay inside each Tick across
	// goroutines (<= 0 means one per CPU). The tick result is
	// byte-identical at every worker count: per-server stepping is
	// independent, while every fleet-level RNG draw (package picks,
	// defect rolls) and the floating-point capacity reduction happen on
	// a single sequential pass in server-index order.
	Workers int

	// RecordSeries, when true, retains each server's per-tick capacity
	// series plus per-boot latency and time-to-steady samples for
	// post-run classification and SLO reporting (internal/obs). Off by
	// default: memory grows with ticks × servers. Samples are appended
	// in the sequential merge phase, in server-index order, so they are
	// byte-identical at every worker count.
	RecordSeries bool

	// Telem observes the fleet (may be nil). Per-server metrics are
	// recorded into per-shard collectors during the parallel replay and
	// merged in shard-index order, so enabling telemetry never changes
	// the simulation output at any worker count.
	Telem *telemetry.Set

	// Transport, when non-nil, routes every package publish and fetch
	// through the networked profile store (internal/jumpstart/transport)
	// over the simulated fabric instead of the in-memory package list.
	// With a healthy fabric (zero latency, zero faults) the tick series
	// is byte-identical to the direct path; under injected faults,
	// fetches burn virtual time retrying and can exhaust their budget,
	// which surfaces as a recorded no-Jump-Start fallback.
	Transport *TransportConfig
}

// TransportConfig configures the networked store path.
type TransportConfig struct {
	// Net is the fault fabric between servers and the store. Boots
	// sample the "consumer" link, seeder uploads the "seeder" link
	// (faults with an empty Link hit both).
	Net netsim.Config
	// Client tunes timeouts, backoff, and the per-boot deadline budget.
	// Client.Seed is ignored: each fetch derives its own deterministic
	// stream from the fleet seed and a fetch sequence number.
	Client transport.ClientConfig
	// PackageBytes sizes the synthetic package payloads seeders upload
	// (<= 0 selects 4096).
	PackageBytes int
	// ChunkSize is the server-side chunking granularity (<= 0 selects
	// the transport default).
	ChunkSize int
	// Multi, when non-nil, replaces the single store with the
	// multi-region hierarchy (per-region shards, K-way replication,
	// consumer failover down the replica list, cross-region
	// propagation) and optional seeder aggregation. In multi mode, Net
	// above configures the healthy intra-region links and
	// Multi.InterNet the lossy long-haul ones.
	Multi *MultiConfig
}

// MultiConfig configures the multi-region store hierarchy and the
// consensus-package pipeline.
type MultiConfig struct {
	// NodesPerRegion shards each region's buckets across store nodes
	// (<= 0 selects 1).
	NodesPerRegion int
	// Replicas is the in-region replication factor K (<= 0 selects 1,
	// capped at NodesPerRegion).
	Replicas int
	// PropagateEvery is the cross-region propagation cadence in
	// virtual seconds (<= 0 selects 60).
	PropagateEvery float64
	// InterNet configures the inter-region long-haul links
	// ("inter:r<SRC>-r<DST>" labels) — where brownouts and partitions
	// are scheduled while intra-region links stay healthy.
	InterNet netsim.Config
	// AggregateSeeders, when > 1, buffers seeder outputs per (region,
	// bucket) and publishes one consensus package per N seeders
	// instead of N individual ones. The consensus package is defective
	// only when a majority of its inputs were (validation by voting);
	// consumers booting from it warm on CurveAggregated. Buffers still
	// holding fewer than N outputs flush when the push reaches C3, so
	// a bucket with a single seeder still publishes.
	AggregateSeeders int
}

// DefaultConfig returns a modest fleet (3 regions × 10 buckets × 24
// servers = 720 servers).
func DefaultConfig() Config {
	return Config{
		Regions:          3,
		Buckets:          10,
		ServersPerBucket: 24,
		TickSeconds:      5,
		Seed:             1,

		C1Fraction: 0.005,
		C2Fraction: 0.02,
		C1Hold:     60,
		C2Hold:     240,

		C3Waves:        6,
		C3WaveInterval: 60,

		SeederDuration:  180,
		RestartDowntime: 10,

		DefectRate:          0,
		ValidationCatchRate: 0.95,
		CrashDelay:          60,
		MaxJSAttempts:       3,

		JumpStartEnabled: true,
	}
}

// warmupProgressBounds buckets a warming server's capacity fraction
// for the fleet.warmup_progress histogram.
var warmupProgressBounds = []float64{0.25, 0.5, 0.75, 0.9, 0.99}

type srvState int

const (
	stRunning srvState = iota
	stDown             // restart gap
	stWarming          // running its warmup curve
	stSeeding          // C2 seeder collecting a package
)

type simServer struct {
	idx            int // position in Fleet.servers
	region, bucket int
	group          int // 1, 2, 3 = deployment phase
	geom           int // hardware geometry class (Config.GeometryClasses)
	state          srvState
	stateT         float64 // time the state was entered
	curve          *WarmupCurve

	// Reliability.
	pkg        int // index into the bucket's package list, -1 none
	attempts   int
	crashAt    float64 // absolute time of impending crash, 0 = none
	usedJS     bool
	fellBack   bool
	everCrashd int
	fbReason   string // why the last boot skipped Jump-Start ("" = it didn't)

	// Causal span state: the open boot span (0 = none) and the time the
	// boot began. The span opens in bootServer and closes — always from
	// the sequential merge phase — when the server reaches steady
	// capacity, crashes, or is force-restarted by the next push.
	bootSpan uint64
	bootT    float64

	// seriesFrom is the index into the server's recorded capacity
	// series where its first boot of the current push began — the
	// start of the suffix WarmupSeries slices out. Crash reboots do
	// not move it (seriesMarked), so a crash-looping server's curve
	// keeps the dips and classifies as non-monotonic rather than as a
	// clean warmup. Only maintained under Config.RecordSeries.
	seriesFrom   int
	seriesMarked bool
}

type pkgInfo struct {
	defective  bool
	remapped   bool                // carried across a push by the remapper
	aggregated bool                // consensus package merged from several seeders
	geom       int                 // geometry class of the seeder that produced it
	id         jumpstart.PackageID // store id when the single-store transport is wired
	entry      *multistore.Entry   // logical entry when the multi-region hierarchy is wired
	payload    []byte              // uploaded body, kept so a remap-tolerant push can republish it
}

// Fleet is the running simulation.
type Fleet struct {
	cfg     Config
	servers []simServer
	// packages per (region, bucket).
	packages map[[2]int][]pkgInfo
	now      float64
	rng      uint64

	// Deployment schedule state.
	deploying  bool
	phase      int // 0 idle, 1..3 = C1..C3
	phaseStart float64
	c3Wave     int
	lastPush   float64
	revision   uint64 // current code revision, bumped per push

	// Warm-pool tier state. All of it is touched only from sequential
	// code (Tick preamble + wave restarts), so pool behaviour is
	// worker-count deterministic by construction.
	poolAvail      int       // standbys ready to swap in now
	poolPending    []float64 // ready times of instances rebooting into the pool (ascending)
	backfillCredit float64   // accumulated PoolBackfillRate admissions
	poolDrains     int
	poolBackfills  int
	poolMisses     int
	pooledBoots    int

	// Counters.
	crashes    int
	fallbacks  int
	lazyBoots  int
	remapBoots int
	pkgsKept   int // packages carried across pushes by the remapper
	pkgsLost   int // packages dropped at a push (remap miss or exact-only wipe)
	fbReasons  map[string]int

	// Scenario accounting. regionCap is per-tick scratch; everything
	// else is touched only from sequential code, so scenarios never
	// perturb worker-count determinism.
	regionCap     []float64
	failoverBoots int     // boots started while the region was absorbing failed-over load
	mismatchBoots int     // Jump-Start boots consuming a cross-geometry package
	darkTicks     int     // ticks with at least one region down
	demandPeak    float64 // max fleet demand multiplier observed
	demandTrough  float64 // min fleet demand multiplier observed
	prevDark      bool    // failover drill state, for transition events

	// Networked store path (nil when Config.Transport is nil). Every
	// fetch/upload runs to completion inside the sequential merge phase
	// against a private virtual clock starting at f.now, so the tick
	// result stays byte-identical at every worker count.
	tcfg       *TransportConfig
	store      *jumpstart.Store
	tsrv       *transport.Server
	fab        *netsim.Fabric
	fetchSeq   uint64
	pubSeq     uint64
	pkgIdxByID map[jumpstart.PackageID]int

	// Multi-region hierarchy state (nil unless Transport.Multi is set).
	// All of it is touched only from the sequential merge phase.
	multi     *multistore.Hierarchy
	mcfg      *MultiConfig
	lastProp  float64
	aggBuf    map[[2]int][]pkgInfo // buffered seeder outputs awaiting consensus
	entryIdx  map[[2]int]map[int]int
	entryInfo map[int]pkgInfo
	failovers int // replica legs that failed before a fetch was served
	aggPkgs   int // consensus packages published
	aggBoots  int // boots from consensus packages
	propOK    int // entries propagated across regions
	propFail  int // propagation transfers defeated by the long-haul net

	// scratch is the reusable per-tick result buffer for the parallel
	// server-stepping phase.
	scratch []srvTick

	// Observability samples (allocated only under Config.RecordSeries;
	// appended in the sequential merge phase, server-index order).
	series  [][]float64 // per-server per-tick capacity
	bootLat []float64   // completed boots: boot start → steady capacity
	tts     []float64   // completed boots: warmup start → steady capacity

	// Telemetry. shardTel holds one collector per replay shard; every
	// parallel-phase observation goes to the stepping shard's collector
	// and the collectors are folded into tel.Metrics — in shard-index
	// order — once the shards have joined. Sequential-phase events and
	// gauges use tel directly.
	tel      *telemetry.Set
	shardTel *telemetry.Shards
	gCap     *telemetry.Gauge
	gDown    *telemetry.Gauge
	gWarming *telemetry.Gauge
	gRunning *telemetry.Gauge
	gPhase   *telemetry.Gauge
	gPkgs    *telemetry.Gauge
	cCrashes *telemetry.Counter
	cFallbk  *telemetry.Counter
	cBoots   [2]*telemetry.Counter // indexed by usedJS
}

// NewFleet builds the fleet with all servers warm.
func NewFleet(cfg Config) (*Fleet, error) {
	if cfg.Regions <= 0 || cfg.Buckets <= 0 || cfg.ServersPerBucket <= 0 {
		return nil, fmt.Errorf("cluster: invalid fleet dimensions")
	}
	if cfg.Scenario != nil && cfg.Scenario.Config().Regions != cfg.Regions {
		return nil, fmt.Errorf("cluster: scenario spans %d regions, fleet has %d",
			cfg.Scenario.Config().Regions, cfg.Regions)
	}
	if cfg.GeometryClasses < 0 {
		return nil, fmt.Errorf("cluster: negative GeometryClasses %d", cfg.GeometryClasses)
	}
	f := &Fleet{
		cfg:       cfg,
		packages:  make(map[[2]int][]pkgInfo),
		rng:       cfg.Seed*2862933555777941757 + 3037000493,
		fbReasons: make(map[string]int),
		revision:  1,
	}
	f.poolAvail = cfg.PoolSize
	if cfg.Transport != nil {
		tc := *cfg.Transport
		if tc.PackageBytes <= 0 {
			tc.PackageBytes = 4096
		}
		f.tcfg = &tc
		if tc.Multi != nil {
			mc := *tc.Multi
			if mc.NodesPerRegion <= 0 {
				mc.NodesPerRegion = 1
			}
			if mc.Replicas <= 0 {
				mc.Replicas = 1
			}
			if mc.Replicas > mc.NodesPerRegion {
				mc.Replicas = mc.NodesPerRegion
			}
			if mc.PropagateEvery <= 0 {
				mc.PropagateEvery = 60
			}
			f.mcfg = &mc
			f.multi = multistore.New(multistore.Config{
				Regions:        cfg.Regions,
				NodesPerRegion: mc.NodesPerRegion,
				Replicas:       mc.Replicas,
				ChunkSize:      tc.ChunkSize,
				Intra:          tc.Net,
				Inter:          mc.InterNet,
				Client:         tc.Client,
				Seed:           workload.Fork(cfg.Seed, 0x9e610000),
			})
			f.multi.SetTelemetry(cfg.Telem)
		} else {
			f.fab = netsim.NewFabric(tc.Net)
		}
		f.resetStore()
	}
	total := cfg.Regions * cfg.Buckets * cfg.ServersPerBucket
	n1 := int(math.Ceil(cfg.C1Fraction * float64(total)))
	n2 := int(math.Ceil(cfg.C2Fraction * float64(total)))
	if n1 < 1 {
		n1 = 1
	}
	if n2 < cfg.Regions*cfg.Buckets {
		// At least one seeder per (region, bucket) pair.
		n2 = cfg.Regions * cfg.Buckets
	}
	idx := 0
	for r := 0; r < cfg.Regions; r++ {
		for b := 0; b < cfg.Buckets; b++ {
			for k := 0; k < cfg.ServersPerBucket; k++ {
				s := simServer{idx: idx, region: r, bucket: b, state: stRunning, pkg: -1}
				if cfg.GeometryClasses > 1 {
					// Geometry is a property of the rack the server
					// landed on: a fixed deterministic draw from the
					// fleet seed, independent of everything else.
					s.geom = int(workload.Fork(cfg.Seed, 0x6e00+uint64(idx)) %
						uint64(cfg.GeometryClasses))
				}
				switch {
				case idx < n1:
					s.group = 1
				case idx < n1+n2 || k == 0:
					s.group = 2
				default:
					s.group = 3
				}
				f.servers = append(f.servers, s)
				idx++
			}
		}
	}
	if cfg.RecordSeries {
		f.series = make([][]float64, total)
	}
	f.regionCap = make([]float64, cfg.Regions)
	f.demandTrough = math.Inf(1)
	f.tel = cfg.Telem
	if f.tel != nil {
		f.shardTel = telemetry.NewShards(f.tel.Metrics,
			parallel.ShardCount(cfg.Workers, total))
		f.gCap = f.tel.Gauge("fleet.capacity")
		f.gDown = f.tel.Gauge("fleet.down")
		f.gWarming = f.tel.Gauge("fleet.warming")
		f.gRunning = f.tel.Gauge("fleet.running")
		f.gPhase = f.tel.Gauge("fleet.deploy_phase")
		f.gPkgs = f.tel.Gauge("fleet.packages_avail")
		f.cCrashes = f.tel.Counter("fleet.crashes_total")
		f.cFallbk = f.tel.Counter("fleet.fallbacks_total")
		f.cBoots[0] = f.tel.Counter("fleet.boots_nojumpstart_total")
		f.cBoots[1] = f.tel.Counter("fleet.boots_jumpstart_total")
		f.tel.Event(0, "fleet", "start",
			telemetry.I("servers", int64(total)),
			telemetry.I("regions", int64(cfg.Regions)),
			telemetry.I("buckets", int64(cfg.Buckets)))
	}
	return f, nil
}

func (f *Fleet) rand() uint64 {
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return f.rng
}

func (f *Fleet) randFloat() float64 {
	return float64(f.rand()>>11) / (1 << 53)
}

// resetStore replaces the networked store — a new revision's packages
// live in a fresh namespace.
func (f *Fleet) resetStore() {
	if f.multi != nil {
		f.multi.Wipe()
		f.entryIdx = make(map[[2]int]map[int]int)
		f.entryInfo = make(map[int]pkgInfo)
		f.aggBuf = make(map[[2]int][]pkgInfo)
		return
	}
	f.store = jumpstart.NewStore()
	f.tsrv = transport.NewServer(f.store, f.tcfg.ChunkSize)
	f.tsrv.SetTelemetry(f.tel, func() float64 { return f.now })
	f.pkgIdxByID = make(map[jumpstart.PackageID]int)
}

// StartDeployment begins a C1→C2→C3 push of a new revision. What
// happens to the packages published against the previous revision is
// the store compatibility policy: ExactOnly wipes them (consumers boot
// cold until the new revision's seeders republish), RemapTolerant
// carries them across the boundary through the remapper.
func (f *Fleet) StartDeployment() {
	f.deploying = true
	if f.series != nil {
		// A new push starts a new lifecycle: WarmupSeries re-anchors
		// at each server's first boot under this push. seriesFrom must
		// be re-anchored along with the mark — a server that never
		// boots in this push (a pooled slot the wave skipped, a group
		// the push never reaches) would otherwise slice from the
		// previous push's offset and replay that push's warmup instead
		// of contributing its flat series under this one.
		for i := range f.servers {
			f.servers[i].seriesMarked = false
			f.servers[i].seriesFrom = len(f.series[i])
		}
	}
	f.phase = 0
	f.phaseStart = f.now
	f.lastPush = f.now
	f.revision++
	if f.cfg.RemapPolicy == jumpstart.RemapTolerant {
		f.remapPackages()
	} else {
		// A new revision invalidates all existing packages.
		for _, list := range f.packages {
			f.pkgsLost += len(list)
		}
		f.packages = make(map[[2]int][]pkgInfo)
		if f.tcfg != nil {
			f.resetStore()
		}
	}
	f.tel.Event(f.now, "fleet", "deployment-start",
		telemetry.I("revision", int64(f.revision)))
}

// remapPackages carries the published packages across a push: each
// survives with probability RemapHitRate (measured on the real mutated
// site by callers) and is marked remapped — consumers booting from it
// warm on CurveRemapped. Buckets are walked in sorted order so the RNG
// draw sequence never depends on map iteration.
func (f *Fleet) remapPackages() {
	keys := make([][2]int, 0, len(f.packages))
	for k := range f.packages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	if f.tcfg != nil {
		// The new revision gets a fresh store namespace; survivors are
		// republished into it below, stamped with the new revision.
		f.resetStore()
	}
	kept, lost := 0, 0
	for _, key := range keys {
		list := f.packages[key]
		out := list[:0]
		for i := range list {
			info := list[i]
			if f.randFloat() >= f.cfg.RemapHitRate {
				lost++
				continue
			}
			info.remapped = true
			if f.multi != nil {
				// Carry-over is a control-plane copy, not a seeder upload:
				// the survivor lands directly on its region's replica set.
				info.entry = f.multi.PublishDirect(key[0], key[1], f.revision, info.payload)
				m := f.entryIdx[key]
				if m == nil {
					m = make(map[int]int)
					f.entryIdx[key] = m
				}
				m[info.entry.ID] = len(out)
				f.entryInfo[info.entry.ID] = info
			} else if f.tcfg != nil {
				info.id = f.store.PublishRevision(key[0], key[1], info.payload, f.revision)
				f.pkgIdxByID[info.id] = len(out)
			}
			out = append(out, info)
			kept++
		}
		if len(out) == 0 {
			delete(f.packages, key)
		} else {
			f.packages[key] = out
		}
	}
	f.pkgsKept += kept
	f.pkgsLost += lost
	f.tel.Event(f.now, "fleet", "remap-packages",
		telemetry.I("revision", int64(f.revision)),
		telemetry.I("kept", int64(kept)),
		telemetry.I("lost", int64(lost)))
}

// setDeployPhase advances the push phase and records the transition.
func (f *Fleet) setDeployPhase(phase int) {
	f.tel.Event(f.now, "fleet", "deployment-phase",
		telemetry.I("from", int64(f.phase)), telemetry.I("to", int64(phase)))
	f.phase = phase
	f.phaseStart = f.now
}

// FleetTick is one sample of the fleet time series.
type FleetTick struct {
	T          float64
	Capacity   float64 // fraction of fleet steady capacity, 0..1
	Down       int     // servers not serving at all
	Warming    int
	Crashes    int // cumulative
	Fallbacks  int // cumulative no-Jump-Start fallbacks
	Phase      int
	PkgsAvail  int
	Deployment bool
	Revision   uint64 // current code revision (bumps at each push)
	RemapBoots int    // cumulative boots from remapped packages
	PoolAvail  int    // standbys available in the warm pool

	// Scenario accounting, always populated: without a scenario,
	// Demand is 1, ScenCapacity equals Capacity, and RegionsDark is 0.
	Demand       float64 // fleet demand multiplier this tick (fraction of steady)
	ScenCapacity float64 // demand-weighted capacity: served / demanded, 0..1
	RegionsDark  int     // regions a failover drill has taken down this tick
}

// srvTick is one server's contribution to a tick, produced by the
// parallel phase and merged sequentially.
type srvTick struct {
	capacity      float64
	down, warming int
	crashed       bool // increments the fleet crash counter
	warmed        bool // reached steady capacity this tick: spans close in the merge
	needsBoot     bool // bootServer draws fleet RNG: deferred to the merge
	needsPublish  bool // publishFrom draws fleet RNG: deferred to the merge
}

// stepServer advances one server's state machine for the current tick.
// It touches only that server's fields (safe to run concurrently
// across servers) and flags — rather than performs — every action that
// draws from the shared fleet RNG.
func (f *Fleet) stepServer(s *simServer) srvTick {
	var r srvTick
	// Defective-package crash (Section VI-A2's failure mode): a
	// bad package can take the server down whether it is still
	// warming or already at full capacity.
	if (s.state == stWarming || s.state == stRunning) &&
		s.crashAt > 0 && f.now >= s.crashAt {
		r.crashed = true
		s.everCrashd++
		s.crashAt = 0
		s.state = stDown
		s.stateT = f.now
		r.down = 1
		return r
	}
	switch s.state {
	case stRunning:
		r.capacity = 1
	case stDown:
		r.down = 1
		if f.now-s.stateT >= f.cfg.RestartDowntime {
			r.needsBoot = true
		}
	case stSeeding:
		// Seeders serve while collecting (they run the normal
		// no-JS warmup curve), then publish.
		r.capacity = s.curve.At(f.now - s.stateT)
		if f.now-s.stateT >= f.cfg.SeederDuration {
			r.needsPublish = true
			s.state = stWarming // continue warming as usual
		} else {
			r.warming = 1
		}
	case stWarming:
		v := s.curve.At(f.now - s.stateT)
		r.capacity = v
		if v >= s.curve.SteadyValue()-1e-9 {
			s.state = stRunning
			// Only the flag: recording the warmup span draws a trace
			// sequence number, which must happen on the sequential
			// merge pass to stay worker-count deterministic.
			r.warmed = true
		} else {
			r.warming = 1
		}
	}
	return r
}

// Tick advances the fleet one step. Per-server replay is sharded
// across cfg.Workers goroutines; the merge below then walks the
// results in server-index order, so the RNG draw sequence and the
// floating-point capacity sum are exactly those of a sequential run.
func (f *Fleet) Tick() FleetTick {
	dt := f.cfg.TickSeconds
	f.now += dt

	f.noteScenarioTransitions()

	// Admit rebooted instances back into the warm pool before any
	// restart logic runs, so a standby that finished warming by this
	// tick can serve the wave that fires on it.
	f.backfillPool(dt)

	// Continuous-deployment cadence: a push lands every PushEvery
	// seconds. A still-running push defers the next one (pushes never
	// overlap; the cadence clock restarts when the new push begins).
	if f.cfg.PushEvery > 0 && !f.deploying && f.now-f.lastPush >= f.cfg.PushEvery {
		f.StartDeployment()
	}

	f.advanceDeployment()

	// Cross-region propagation cadence (multi-region mode). Runs in the
	// sequential phase, before the parallel replay, so every transfer's
	// stream forks land at a worker-count-independent point.
	if f.multi != nil && f.now-f.lastProp >= f.mcfg.PropagateEvery {
		f.lastProp = f.now
		f.propagateTick()
	}

	if cap(f.scratch) < len(f.servers) {
		f.scratch = make([]srvTick, len(f.servers))
	}
	res := f.scratch[:len(f.servers)]
	parallel.ForEachShardIndexed(f.cfg.Workers, len(f.servers), func(shard, lo, hi int) {
		// Shard-private collectors: resolved once per shard per tick,
		// folded into the base registry in shard-index order below.
		var cSteps *telemetry.Counter
		var hWarm *telemetry.Histogram
		if reg := f.shardTel.Shard(shard); reg != nil {
			cSteps = reg.Counter("fleet.steps_total")
			hWarm = reg.Histogram("fleet.warmup_progress", warmupProgressBounds)
		}
		for i := lo; i < hi; i++ {
			res[i] = f.stepServer(&f.servers[i])
			cSteps.Inc()
			if res[i].warming == 1 {
				hWarm.Observe(res[i].capacity)
			}
		}
	})
	f.shardTel.Merge()

	capacity := 0.0
	down, warming := 0, 0
	for r := range f.regionCap {
		f.regionCap[r] = 0
	}
	for i := range res {
		r := &res[i]
		s := &f.servers[i]
		if r.crashed {
			f.crashes++
			f.cCrashes.Inc()
			f.tel.Event(f.now, "fleet", "crash",
				telemetry.I("server", int64(i)),
				telemetry.I("region", int64(s.region)),
				telemetry.I("bucket", int64(s.bucket)))
			if s.bootSpan != 0 {
				// The boot never reached steady capacity: close its
				// span at the crash with the outcome attached.
				f.tel.EndSpan(s.bootSpan, 0, s.bootT, f.now, "boot", "boot",
					telemetry.I("server", int64(i)),
					telemetry.S("outcome", "crash"))
				s.bootSpan = 0
			}
		}
		if r.warmed {
			// The server reached steady capacity this tick: the warmup
			// span tiles [warmup start, now] and the boot span closes
			// over [boot start, now] — children (fetch + warmup) sum
			// exactly to the parent duration.
			if s.bootSpan != 0 {
				f.tel.SpanUnder(s.bootSpan, s.stateT, f.now, "boot", "warmup",
					telemetry.B("jumpstart", s.usedJS))
				f.tel.EndSpan(s.bootSpan, 0, s.bootT, f.now, "boot", "boot",
					telemetry.I("server", int64(i)),
					telemetry.S("outcome", "warmed"),
					telemetry.B("jumpstart", s.usedJS))
				s.bootSpan = 0
				if f.cfg.RecordSeries {
					f.bootLat = append(f.bootLat, f.now-s.bootT)
					f.tts = append(f.tts, f.now-s.stateT)
				}
			}
		}
		// Publish before boot preserves the sequential intra-tick
		// ordering: a package published by server i is visible to any
		// server j > i booting in the same tick (and a server never
		// does both).
		if r.needsPublish {
			f.publishFrom(s)
		}
		if r.needsBoot {
			f.bootServer(s)
		}
		if f.series != nil {
			f.series[i] = append(f.series[i], r.capacity)
		}
		capacity += r.capacity
		f.regionCap[s.region] += r.capacity
		down += r.down
		warming += r.warming
	}

	total := float64(len(f.servers))
	pkgs := 0
	for _, list := range f.packages {
		pkgs += len(list)
	}
	demand, scenCap, dark := f.scenarioAccounting(capacity / total)
	f.gCap.Set(capacity / total)
	f.gDown.Set(float64(down))
	f.gWarming.Set(float64(warming))
	f.gRunning.Set(float64(len(f.servers) - down - warming))
	f.gPhase.Set(float64(f.phase))
	f.gPkgs.Set(float64(pkgs))
	return FleetTick{
		T:            f.now,
		Capacity:     capacity / total,
		Down:         down,
		Warming:      warming,
		Crashes:      f.crashes,
		Fallbacks:    f.fallbacks,
		Phase:        f.phase,
		PkgsAvail:    pkgs,
		Deployment:   f.deploying,
		Revision:     f.revision,
		RemapBoots:   f.remapBoots,
		PoolAvail:    f.poolAvail,
		Demand:       demand,
		ScenCapacity: scenCap,
		RegionsDark:  dark,
	}
}

// scenarioAccounting folds the scenario's per-region demand against
// the per-region capacity sums: ScenCapacity is served demand over
// total demand, where a dark region's own capacity serves nothing (its
// load has been dumped on the survivors) and capacity beyond a
// region's demand is headroom, not service. Without a scenario the
// fleet demands exactly its steady capacity everywhere, so the
// demand-weighted view collapses to the plain capacity fraction.
func (f *Fleet) scenarioAccounting(plainCap float64) (demand, scenCap float64, dark int) {
	sc := f.cfg.Scenario
	if sc == nil {
		return 1, plainCap, 0
	}
	perRegion := float64(f.cfg.Buckets * f.cfg.ServersPerBucket)
	totalDemand, served := 0.0, 0.0
	for r := 0; r < f.cfg.Regions; r++ {
		d := sc.EffectiveDemand(r, f.now) * perRegion
		c := f.regionCap[r]
		if sc.RegionDown(r, f.now) {
			dark++
			c = 0
		}
		if c > d {
			c = d
		}
		served += c
		totalDemand += d
	}
	scenCap = 1.0
	if totalDemand > 0 {
		scenCap = served / totalDemand
	}
	demand = totalDemand / float64(len(f.servers))
	if demand > f.demandPeak {
		f.demandPeak = demand
	}
	if demand < f.demandTrough {
		f.demandTrough = demand
	}
	if dark > 0 {
		f.darkTicks++
	}
	f.tel.Gauge("fleet.demand").Set(demand)
	f.tel.Gauge("fleet.scen_capacity").Set(scenCap)
	return demand, scenCap, dark
}

// noteScenarioTransitions emits region-down / region-up telemetry
// events at the edges of a failover drill. Pure bookkeeping: it reads
// the engine and writes telemetry, never the simulation state.
func (f *Fleet) noteScenarioTransitions() {
	sc := f.cfg.Scenario
	if sc == nil {
		return
	}
	down := sc.AnyRegionDown(f.now)
	if down == f.prevDark {
		return
	}
	f.prevDark = down
	kind := "region-up"
	if down {
		kind = "region-down"
	}
	f.tel.Event(f.now, "fleet", kind,
		telemetry.I("region", int64(sc.Config().FailRegion)))
}

// advanceDeployment moves the push through its phases.
func (f *Fleet) advanceDeployment() {
	if !f.deploying {
		return
	}
	switch f.phase {
	case 0:
		f.restartGroup(1)
		f.setDeployPhase(1)
	case 1:
		if f.now-f.phaseStart >= f.cfg.C1Hold {
			f.restartGroup(2)
			f.setDeployPhase(2)
		}
	case 2:
		if f.now-f.phaseStart >= f.cfg.C2Hold {
			// Consumers are about to boot: flush partial consensus
			// buffers so buckets with fewer seeders than
			// AggregateSeeders still publish.
			f.flushAggBuffers()
			f.setDeployPhase(3)
			f.c3Wave = 0
			f.restartC3Wave()
		}
	case 3:
		waves := f.cfg.C3Waves
		if waves < 1 {
			waves = 1
		}
		if f.c3Wave < waves &&
			f.now-f.phaseStart >= float64(f.c3Wave)*f.cfg.C3WaveInterval {
			f.restartC3Wave()
		}
		if f.c3Wave < waves {
			return
		}
		// Deployment completes when everyone is running again.
		done := true
		for i := range f.servers {
			if f.servers[i].state != stRunning {
				done = false
				break
			}
		}
		if done {
			f.flushAggBuffers()
			f.deploying = false
			f.phase = 0
			f.tel.Event(f.now, "fleet", "deployment-done",
				telemetry.I("crashes", int64(f.crashes)),
				telemetry.I("fallbacks", int64(f.fallbacks)))
		}
	}
}

// restartC3Wave restarts the next slice of group-3 servers.
func (f *Fleet) restartC3Wave() {
	waves := f.cfg.C3Waves
	if waves < 1 {
		waves = 1
	}
	var members []int
	for i := range f.servers {
		if f.servers[i].group == 3 {
			members = append(members, i)
		}
	}
	per := (len(members) + waves - 1) / waves
	// Small fleets can have fewer C3 members than waves; later waves
	// are then empty rather than out of range.
	lo := f.c3Wave * per
	if lo > len(members) {
		lo = len(members)
	}
	hi := lo + per
	if hi > len(members) {
		hi = len(members)
	}
	swapped := 0
	for _, idx := range members[lo:hi] {
		s := &f.servers[idx]
		// Warm-pool tier: swap the restarting consumer for a standby
		// when one is available; the replaced instance reboots into
		// the pool in the background. An empty pool is a miss and the
		// server takes the normal restart path below.
		if f.cfg.PoolSize > 0 {
			if f.poolAvail > 0 {
				f.swapFromPool(s)
				swapped++
				continue
			}
			f.poolMisses++
			f.tel.Counter("fleet.pool_misses_total").Inc()
		}
		f.closeBootSpan(s, "restarted")
		s.state = stDown
		s.stateT = f.now
		s.pkg = -1
		s.attempts = 0
		s.crashAt = 0
		s.fbReason = ""
	}
	f.tel.Event(f.now, "fleet", "c3-wave",
		telemetry.I("wave", int64(f.c3Wave)),
		telemetry.I("restarted", int64(hi-lo-swapped)),
		telemetry.I("swapped", int64(swapped)))
	f.c3Wave++
}

// poolRebootSeconds is how long a replaced instance takes to reboot
// and re-warm into the pool: the restart gap plus a full run of the
// curve its boot flavour replays. Constant within a run, so pending
// ready-times are appended in ascending order.
func (f *Fleet) poolRebootSeconds() float64 {
	curve := &f.cfg.CurveNoJumpStart
	if f.cfg.JumpStartEnabled {
		curve = f.jsCurveRO()
	}
	return f.cfg.RestartDowntime + curve.TimeToFraction(1)
}

// jsCurveRO returns the Jump-Start curve a fresh boot would replay,
// without booking any boot-flavour counters (pool reboot-time math
// must not perturb the remap/lazy accounting).
func (f *Fleet) jsCurveRO() *WarmupCurve {
	if f.cfg.WarmupMode == jumpstart.WarmupLazy && len(f.cfg.CurveLazy.Times) > 0 {
		return &f.cfg.CurveLazy
	}
	return &f.cfg.CurveJumpStart
}

// swapFromPool replaces a restarting consumer with a warm standby: the
// slot comes up immediately on CurvePooled (empty curve = instant full
// capacity) while the old instance's reboot is queued to backfill the
// pool. Only called from the sequential wave-restart path.
func (f *Fleet) swapFromPool(s *simServer) {
	f.closeBootSpan(s, "restarted")
	f.poolAvail--
	f.poolDrains++
	f.pooledBoots++
	f.poolPending = append(f.poolPending, f.now+f.poolRebootSeconds())
	s.state = stWarming
	s.stateT = f.now
	s.bootT = f.now
	s.bootSpan = f.tel.BeginSpan()
	if f.series != nil && !s.seriesMarked {
		s.seriesFrom = len(f.series[s.idx])
		s.seriesMarked = true
	}
	s.pkg = -1
	s.attempts = 0
	s.crashAt = 0
	s.usedJS = true
	s.fbReason = ""
	s.curve = &f.cfg.CurvePooled
	f.tel.Counter("fleet.boots_pooled_total").Inc()
	f.tel.Event(f.now, "fleet", "boot-pooled",
		telemetry.I("region", int64(s.region)),
		telemetry.I("bucket", int64(s.bucket)),
		telemetry.I("pool_avail", int64(f.poolAvail)))
}

// backfillPool admits rebooted instances whose warmup has completed
// back into the pool, throttled by PoolBackfillRate. Runs at the top
// of every tick, before restart logic, in sequential code only.
func (f *Fleet) backfillPool(dt float64) {
	if f.cfg.PoolSize <= 0 || len(f.poolPending) == 0 {
		return
	}
	if f.cfg.PoolBackfillRate > 0 {
		f.backfillCredit += dt * f.cfg.PoolBackfillRate
		// Credit never banks beyond one pool's worth: a long quiet
		// stretch must not buy an instantaneous full refill later.
		if max := float64(f.cfg.PoolSize); f.backfillCredit > max {
			f.backfillCredit = max
		}
	}
	n := 0
	for n < len(f.poolPending) && f.poolPending[n] <= f.now && f.poolAvail < f.cfg.PoolSize {
		if f.cfg.PoolBackfillRate > 0 {
			if f.backfillCredit < 1 {
				break
			}
			f.backfillCredit--
		}
		f.poolAvail++
		f.poolBackfills++
		n++
	}
	if n > 0 {
		f.poolPending = append(f.poolPending[:0], f.poolPending[n:]...)
		f.tel.Counter("fleet.pool_backfills_total").Add(uint64(n))
		f.tel.Event(f.now, "fleet", "pool-backfill",
			telemetry.I("admitted", int64(n)),
			telemetry.I("pool_avail", int64(f.poolAvail)))
	}
}

func (f *Fleet) restartGroup(group int) {
	for i := range f.servers {
		s := &f.servers[i]
		if s.group != group {
			continue
		}
		f.closeBootSpan(s, "restarted")
		s.state = stDown
		s.stateT = f.now
		s.pkg = -1
		s.attempts = 0
		s.crashAt = 0
		s.fbReason = ""
	}
}

// closeBootSpan closes a server's open boot span (a boot interrupted
// before reaching steady capacity — a forced restart at a push), so no
// child span is left referencing a parent that never lands.
func (f *Fleet) closeBootSpan(s *simServer, outcome string) {
	if s.bootSpan == 0 {
		return
	}
	f.tel.EndSpan(s.bootSpan, 0, s.bootT, f.now, "boot", "boot",
		telemetry.S("outcome", outcome))
	s.bootSpan = 0
}

// bootServer starts a stopped server: C2 servers come up as seeders;
// others consume a package when Jump-Start is on and one is available,
// with the randomized-selection + fallback protections.
func (f *Fleet) bootServer(s *simServer) {
	s.stateT = f.now
	// Open the boot's causal root span. bootServer only runs on the
	// sequential merge pass, so the span-ID draw order is independent
	// of the worker count.
	s.bootT = f.now
	s.bootSpan = f.tel.BeginSpan()
	if f.series != nil && !s.seriesMarked {
		// This tick's capacity sample has not been appended yet, so the
		// current length is exactly where the restart dip begins.
		s.seriesFrom = len(f.series[s.idx])
		s.seriesMarked = true
	}
	if sc := f.cfg.Scenario; sc != nil && sc.Absorbing(s.region, f.now) {
		// The region is carrying a failed-over region's load: every
		// boot here — seeder, Jump-Start, or cold — warms under the
		// absorbed demand, and the drill's cost shows up as these.
		f.failoverBoots++
		f.tel.Counter("fleet.boots_failover_total").Inc()
	}
	if s.group == 2 {
		s.state = stSeeding
		s.curve = &f.cfg.CurveNoJumpStart
		s.usedJS = false
		f.tel.Event(f.now, "fleet", "boot-seeder",
			telemetry.I("region", int64(s.region)),
			telemetry.I("bucket", int64(s.bucket)))
		return
	}
	if f.cfg.JumpStartEnabled {
		key := [2]int{s.region, s.bucket}
		list := f.packages[key]
		if len(list) > 0 && s.attempts < f.cfg.MaxJSAttempts {
			// One fleet-RNG draw per Jump-Start boot, in both the
			// direct and the networked path — keeping the draw
			// sequence identical is what makes a healthy transport
			// byte-identical to the in-memory store.
			rnd := f.rand()
			if f.multi != nil {
				f.bootViaMulti(s, rnd, list, key)
				return
			}
			if f.tcfg != nil {
				f.bootViaTransport(s, rnd, list)
				return
			}
			// Random pick, avoiding the exact package that just
			// crashed us when alternatives exist.
			idx := int(rnd % uint64(len(list)))
			if idx == s.pkg && len(list) > 1 {
				idx = (idx + 1) % len(list)
			}
			// The in-memory pick costs no virtual time: an instant
			// child marks it in the boot tree.
			f.tel.SpanUnder(s.bootSpan, f.now, f.now, "boot", "store.pick",
				telemetry.I("pkg", int64(idx)))
			s.pkg = idx
			s.attempts++
			s.usedJS = true
			s.fbReason = ""
			s.state = stWarming
			s.curve = f.jsCurveFor(s, list[idx])
			if list[idx].defective {
				s.crashAt = f.now + f.cfg.CrashDelay
			}
			f.cBoots[1].Inc()
			f.tel.Event(f.now, "fleet", "boot-jumpstart",
				telemetry.I("region", int64(s.region)),
				telemetry.I("bucket", int64(s.bucket)),
				telemetry.I("pkg", int64(idx)),
				telemetry.I("attempt", int64(s.attempts)))
			return
		}
		if len(list) > 0 && s.attempts >= f.cfg.MaxJSAttempts {
			f.fallback(s, "max attempts exceeded")
		} else if len(list) == 0 {
			// Not counted as a fallback (there was nothing to fall
			// back from), but recorded so a post-run audit can tell
			// "never needed Jump-Start" from "wanted it, got nothing".
			s.fbReason = "no package available"
		}
	}
	// No-Jump-Start boot (disabled, no package, or fallback).
	f.bootNoJS(s, f.now)
}

// fallback books a no-Jump-Start fallback with its reason.
func (f *Fleet) fallback(s *simServer, reason string) {
	f.fallbacks++
	s.fellBack = true
	s.fbReason = reason
	f.fbReasons[reason]++
	f.cFallbk.Inc()
	f.tel.Event(f.now, "fleet", "fallback",
		telemetry.I("region", int64(s.region)),
		telemetry.I("bucket", int64(s.bucket)),
		telemetry.I("attempts", int64(s.attempts)),
		telemetry.S("reason", reason))
}

// jsCurve picks the warmup curve for a Jump-Start boot: remapped
// packages recover less warmup than exact ones, so they warm on
// CurveRemapped when one is configured; lazy-mode boots replay
// CurveLazy (serving starts immediately, capacity follows page-in).
func (f *Fleet) jsCurve(remapped bool) *WarmupCurve {
	if remapped {
		f.remapBoots++
		f.tel.Counter("fleet.boots_remapped_total").Inc()
		if len(f.cfg.CurveRemapped.Times) > 0 {
			return &f.cfg.CurveRemapped
		}
	}
	if f.cfg.WarmupMode == jumpstart.WarmupLazy {
		f.lazyBoots++
		f.tel.Counter("fleet.boots_lazy_total").Inc()
		if len(f.cfg.CurveLazy.Times) > 0 {
			return &f.cfg.CurveLazy
		}
	}
	return &f.cfg.CurveJumpStart
}

// bootNoJS starts a server on the no-Jump-Start curve at startT (a
// future startT accounts for virtual time burned fetching first).
func (f *Fleet) bootNoJS(s *simServer, startT float64) {
	s.usedJS = false
	s.state = stWarming
	s.stateT = startT
	s.curve = &f.cfg.CurveNoJumpStart
	s.pkg = -1
	f.cBoots[0].Inc()
}

// bootViaTransport runs one consumer boot through the networked store:
// the whole retrying client state machine executes here, on a private
// virtual clock starting at f.now, and the server then warms from
// f.now + elapsed (zero when the fabric is healthy).
func (f *Fleet) bootViaTransport(s *simServer, rnd uint64, list []pkgInfo) {
	// Mirror the direct path's crash-avoidance: exclude the package
	// that just took us down, but only when an alternative exists.
	var exclude []jumpstart.PackageID
	if s.attempts > 0 && s.pkg >= 0 && s.pkg < len(list) && len(list) > 1 {
		exclude = append(exclude, list[s.pkg].id)
	}
	s.attempts++
	cli, clock := f.newTransportClient("consumer")
	cli.SetSpanParent(s.bootSpan)
	res, err := cli.Fetch(s.region, s.bucket, rnd, exclude)
	elapsed := clock.Now() - f.now
	f.tel.Histogram("fleet.fetch_seconds", fetchSecondsBounds).Observe(elapsed)
	if err != nil {
		f.fallback(s, cli.PickFailure())
		f.bootNoJS(s, f.now+elapsed)
		return
	}
	idx, ok := f.pkgIdxByID[res.ID]
	if !ok {
		idx = -1
	}
	s.pkg = idx
	s.usedJS = true
	s.fbReason = ""
	s.state = stWarming
	s.stateT = f.now + elapsed
	// An unindexed package (fetched but no local record) defaults to
	// the server's own geometry so it never books a phantom mismatch.
	info := pkgInfo{geom: s.geom}
	if idx >= 0 {
		info = list[idx]
	}
	s.curve = f.jsCurveFor(s, info)
	if idx >= 0 && list[idx].defective {
		s.crashAt = s.stateT + f.cfg.CrashDelay
	}
	f.cBoots[1].Inc()
	f.tel.Event(f.now, "fleet", "boot-jumpstart",
		telemetry.I("region", int64(s.region)),
		telemetry.I("bucket", int64(s.bucket)),
		telemetry.I("pkg", int64(idx)),
		telemetry.I("attempt", int64(s.attempts)),
		telemetry.F("elapsed", elapsed))
}

// fetchSecondsBounds buckets per-boot fetch time (virtual seconds).
var fetchSecondsBounds = []float64{0.01, 0.1, 1, 5, 15, 60}

// newTransportClient builds a single-use store client whose fault and
// jitter streams are forked from the fleet seed and a fetch sequence
// number — fully deterministic, independent of worker count, and
// decoupled from the fleet RNG.
func (f *Fleet) newTransportClient(link string) (*transport.Client, *netsim.VirtualClock) {
	f.fetchSeq++
	root := workload.Fork(f.cfg.Seed, 0xf17c0000+f.fetchSeq)
	clock := netsim.NewVirtualClock(f.now)
	conn := transport.NewSimConn(f.tsrv, f.fab, link, clock,
		netsim.NewStream(workload.Fork(root, 0)), f.tcfg.Client.RPCTimeout)
	ccfg := f.tcfg.Client
	ccfg.Seed = workload.Fork(root, 1)
	cli := transport.NewClient(conn, clock, ccfg)
	cli.SetTelemetry(f.tel)
	return cli, clock
}

// publishFrom records the package a seeder collected, applying the
// defect/validation model. With the transport wired, the package body
// is uploaded through the retrying client; a terminal upload failure
// (store unreachable for the whole publish budget) simply drops the
// package — consumers degrade to no-Jump-Start boots, nothing crashes.
func (f *Fleet) publishFrom(s *simServer) {
	defective := f.randFloat() < f.cfg.DefectRate
	if defective && f.randFloat() < f.cfg.ValidationCatchRate {
		// Caught by validation: the seeder retries; model as a
		// successful (non-defective) package published after the
		// extra soak already covered by SeederDuration.
		defective = false
	}
	key := [2]int{s.region, s.bucket}
	// A package carries its seeder's geometry class: consumers on a
	// different class book a mismatch boot when they replay it.
	info := pkgInfo{defective: defective, geom: s.geom}
	if f.multi != nil {
		info.payload = f.packagePayload()
		f.publishMulti(key, info)
		return
	}
	if f.tcfg != nil {
		info.payload = f.packagePayload()
		cli, _ := f.newTransportClient("seeder")
		id, err := cli.Publish(s.region, s.bucket, f.revision, info.payload)
		if err != nil {
			f.tel.Counter("fleet.publish_failed_total").Inc()
			f.tel.Event(f.now, "fleet", "publish-failed",
				telemetry.I("region", int64(s.region)),
				telemetry.I("bucket", int64(s.bucket)),
				telemetry.S("err", err.Error()))
			return
		}
		info.id = id
		f.pkgIdxByID[id] = len(f.packages[key])
	}
	f.packages[key] = append(f.packages[key], info)
	f.tel.Counter("fleet.published_total").Inc()
	f.tel.Event(f.now, "fleet", "publish",
		telemetry.I("region", int64(s.region)),
		telemetry.I("bucket", int64(s.bucket)),
		telemetry.B("defective", defective))
}

// packagePayload builds a deterministic synthetic package body. The
// transport moves opaque bytes; the fleet model never decodes them.
func (f *Fleet) packagePayload() []byte {
	f.pubSeq++
	st := netsim.NewStream(workload.Fork(f.cfg.Seed, 0x9b110000+f.pubSeq))
	out := make([]byte, f.tcfg.PackageBytes)
	for i := 0; i < len(out); i += 8 {
		v := st.Uint64()
		for j := 0; j < 8 && i+j < len(out); j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// publishMulti routes a seeder's output through the multi-region
// hierarchy, buffering per (region, bucket) for consensus when
// aggregation is on.
func (f *Fleet) publishMulti(key [2]int, info pkgInfo) {
	if n := f.mcfg.AggregateSeeders; n > 1 {
		f.aggBuf[key] = append(f.aggBuf[key], info)
		f.tel.Event(f.now, "fleet", "aggregate-buffer",
			telemetry.I("region", int64(key[0])),
			telemetry.I("bucket", int64(key[1])),
			telemetry.I("buffered", int64(len(f.aggBuf[key]))))
		if len(f.aggBuf[key]) < n {
			return
		}
		buf := f.aggBuf[key]
		delete(f.aggBuf, key)
		info = f.consensusOf(buf)
		f.tel.SpanUnder(0, f.now, f.now, "fleet", "aggregate.consume",
			telemetry.I("region", int64(key[0])),
			telemetry.I("bucket", int64(key[1])),
			telemetry.I("inputs", int64(len(buf))),
			telemetry.B("defective", info.defective))
	}
	f.publishMultiInfo(key, info)
}

// consensusOf folds buffered seeder outputs into one consensus
// package: defective only when a majority of the inputs were
// (validation by voting — one bad seeder is outvoted instead of
// poisoning the bucket), with a fresh deterministic payload standing
// in for the prof.Aggregate merge the real pipeline runs.
func (f *Fleet) consensusOf(buf []pkgInfo) pkgInfo {
	if len(buf) == 1 {
		return buf[0]
	}
	bad := 0
	for _, b := range buf {
		if b.defective {
			bad++
		}
	}
	return pkgInfo{
		defective:  bad*2 > len(buf),
		aggregated: true,
		// The merged profile inherits the first input's geometry — the
		// aggregation pipeline runs per (region, bucket), where seeder
		// hardware is typically uniform.
		geom:    buf[0].geom,
		payload: f.packagePayload(),
	}
}

// publishMultiInfo publishes one package (individual or consensus)
// into the hierarchy over the network and, on success, registers it in
// the origin region's package list.
func (f *Fleet) publishMultiInfo(key [2]int, info pkgInfo) {
	e, err := f.multi.Publish(key[0], key[1], f.revision, info.payload, f.now)
	if err != nil {
		f.tel.Counter("fleet.publish_failed_total").Inc()
		f.tel.Event(f.now, "fleet", "publish-failed",
			telemetry.I("region", int64(key[0])),
			telemetry.I("bucket", int64(key[1])),
			telemetry.S("err", err.Error()))
		return
	}
	info.entry = e
	if info.aggregated {
		f.aggPkgs++
		f.tel.Counter("fleet.consensus_published_total").Inc()
	}
	f.recordEntry(key, info)
	f.tel.Counter("fleet.published_total").Inc()
	f.tel.Event(f.now, "fleet", "publish",
		telemetry.I("region", int64(key[0])),
		telemetry.I("bucket", int64(key[1])),
		telemetry.B("defective", info.defective),
		telemetry.B("aggregated", info.aggregated))
}

// recordEntry appends info to a (region, bucket) package list and
// indexes its logical entry for boot-time resolution.
func (f *Fleet) recordEntry(key [2]int, info pkgInfo) {
	m := f.entryIdx[key]
	if m == nil {
		m = make(map[int]int)
		f.entryIdx[key] = m
	}
	m[info.entry.ID] = len(f.packages[key])
	f.packages[key] = append(f.packages[key], info)
	f.entryInfo[info.entry.ID] = info
}

// flushAggBuffers publishes every partial consensus buffer — called
// when the push reaches C3 (consumers are about to boot) and again
// when it completes, so a bucket with fewer seeders than
// AggregateSeeders still publishes. Keys are walked sorted so the
// publish order, and thus every downstream stream fork, is
// deterministic.
func (f *Fleet) flushAggBuffers() {
	if f.multi == nil || len(f.aggBuf) == 0 {
		return
	}
	keys := make([][2]int, 0, len(f.aggBuf))
	for k := range f.aggBuf {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		buf := f.aggBuf[key]
		delete(f.aggBuf, key)
		info := f.consensusOf(buf)
		f.tel.SpanUnder(0, f.now, f.now, "fleet", "aggregate.consume",
			telemetry.I("region", int64(key[0])),
			telemetry.I("bucket", int64(key[1])),
			telemetry.I("inputs", int64(len(buf))),
			telemetry.B("defective", info.defective))
		f.publishMultiInfo(key, info)
	}
}

// propagateTick runs one cross-region propagation round and registers
// newly-arrived entries in their destination regions' package lists,
// making them visible to that region's consumers.
func (f *Fleet) propagateTick() {
	stats := f.multi.Propagate(f.now)
	f.propOK += stats.Transferred
	f.propFail += stats.Failed
	if stats.Transferred == 0 {
		return
	}
	for _, e := range f.multi.Entries() {
		info, ok := f.entryInfo[e.ID]
		if !ok {
			continue
		}
		for r := 0; r < f.cfg.Regions; r++ {
			if !e.InRegion(r) {
				continue
			}
			key := [2]int{r, e.Bucket}
			if m := f.entryIdx[key]; m != nil {
				if _, seen := m[e.ID]; seen {
					continue
				}
			}
			f.recordEntry(key, info)
		}
	}
}

// bootViaMulti runs one consumer boot through the multi-region
// hierarchy: the fetch walks the region's replica set in deterministic
// failover order, and a fully exhausted walk records the distinct
// "replica failover exhausted" fallback reason.
func (f *Fleet) bootViaMulti(s *simServer, rnd uint64, list []pkgInfo, key [2]int) {
	// Mirror the direct path's crash-avoidance: exclude the logical
	// entry that just took us down, but only when an alternative exists.
	var exclude []*multistore.Entry
	if s.attempts > 0 && s.pkg >= 0 && s.pkg < len(list) && len(list) > 1 &&
		list[s.pkg].entry != nil {
		exclude = append(exclude, list[s.pkg].entry)
	}
	s.attempts++
	f.multi.SetSpanParent(s.bootSpan)
	res, err := f.multi.Fetch(s.region, s.bucket, rnd, exclude, f.now)
	f.multi.SetSpanParent(0)
	f.failovers += res.Failovers
	f.tel.Histogram("fleet.fetch_seconds", fetchSecondsBounds).Observe(res.Elapsed)
	if err != nil {
		f.fallback(s, f.multi.FetchFailure())
		f.bootNoJS(s, f.now+res.Elapsed)
		return
	}
	idx := -1
	if m := f.entryIdx[key]; m != nil {
		if i, ok := m[res.Entry.ID]; ok {
			idx = i
		}
	}
	s.pkg = idx
	s.usedJS = true
	s.fbReason = ""
	s.state = stWarming
	s.stateT = f.now + res.Elapsed
	info := pkgInfo{geom: s.geom}
	if idx >= 0 {
		info = list[idx]
	}
	s.curve = f.jsCurveFor(s, info)
	if info.defective {
		s.crashAt = s.stateT + f.cfg.CrashDelay
	}
	f.cBoots[1].Inc()
	f.tel.Event(f.now, "fleet", "boot-jumpstart",
		telemetry.I("region", int64(s.region)),
		telemetry.I("bucket", int64(s.bucket)),
		telemetry.I("pkg", int64(idx)),
		telemetry.I("attempt", int64(s.attempts)),
		telemetry.I("failovers", int64(res.Failovers)),
		telemetry.F("elapsed", res.Elapsed))
}

// jsCurveFor picks the warmup curve for one Jump-Start boot of server
// s from package info, booking every flavour counter the boot matches
// (counters record what happened even when the matching curve is
// unconfigured). Curve precedence when several flavours apply:
// failover-absorbed > aggregated > geometry mismatch > remap/lazy.
func (f *Fleet) jsCurveFor(s *simServer, info pkgInfo) *WarmupCurve {
	absorbed := f.cfg.Scenario != nil && f.cfg.Scenario.Absorbing(s.region, f.now)
	mismatch := f.cfg.GeometryClasses > 1 && info.geom != s.geom
	if mismatch {
		f.mismatchBoots++
		f.tel.Counter("fleet.boots_mismatch_total").Inc()
	}
	if info.aggregated {
		f.aggBoots++
		f.tel.Counter("fleet.boots_aggregated_total").Inc()
	}
	if absorbed && len(f.cfg.CurveFailover.Times) > 0 {
		return &f.cfg.CurveFailover
	}
	if info.aggregated && len(f.cfg.CurveAggregated.Times) > 0 {
		return &f.cfg.CurveAggregated
	}
	if mismatch && len(f.cfg.CurveMismatch.Times) > 0 {
		return &f.cfg.CurveMismatch
	}
	return f.jsCurve(info.remapped)
}

// Run advances the fleet for the given duration.
func (f *Fleet) Run(seconds float64) []FleetTick {
	n := int(seconds / f.cfg.TickSeconds)
	out := make([]FleetTick, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, f.Tick())
	}
	return out
}

// Deploying reports whether a push is in flight.
func (f *Fleet) Deploying() bool { return f.deploying }

// Crashes returns cumulative consumer crashes.
func (f *Fleet) Crashes() int { return f.crashes }

// Fallbacks returns cumulative no-Jump-Start fallbacks.
func (f *Fleet) Fallbacks() int { return f.fallbacks }

// RemapBoots returns cumulative boots from remapped packages.
func (f *Fleet) RemapBoots() int { return f.remapBoots }

// LazyBoots returns cumulative lazy-mode Jump-Start boots.
func (f *Fleet) LazyBoots() int { return f.lazyBoots }

// PoolStats is the warm-pool tier's occupancy and flow accounting.
type PoolStats struct {
	Size      int // configured pool size
	Avail     int // standbys ready to swap in now
	Pending   int // replaced instances still rebooting toward the pool
	Drains    int // cumulative standby swap-ins
	Backfills int // cumulative re-admissions into the pool
	Misses    int // wave restarts that found the pool empty
	Pooled    int // cumulative CurvePooled boots (== Drains)
}

// PoolStats snapshots the warm-pool tier (zero value when PoolSize is
// unset).
func (f *Fleet) PoolStats() PoolStats {
	return PoolStats{
		Size:      f.cfg.PoolSize,
		Avail:     f.poolAvail,
		Pending:   len(f.poolPending),
		Drains:    f.poolDrains,
		Backfills: f.poolBackfills,
		Misses:    f.poolMisses,
		Pooled:    f.pooledBoots,
	}
}

// Revision returns the current code revision (1 before any push).
func (f *Fleet) Revision() uint64 { return f.revision }

// PackageChurn reports how published packages fared across pushes:
// kept counts packages the remapper carried over, lost counts packages
// dropped at a push boundary (remap misses plus exact-only wipes).
func (f *Fleet) PackageChurn() (kept, lost int) { return f.pkgsKept, f.pkgsLost }

// Failovers returns cumulative replica legs that failed before a fetch
// was served (multi-region mode; zero otherwise).
func (f *Fleet) Failovers() int { return f.failovers }

// ConsensusPackages returns how many consensus packages the seeder
// aggregation pipeline published.
func (f *Fleet) ConsensusPackages() int { return f.aggPkgs }

// AggregatedBoots returns cumulative boots from consensus packages.
func (f *Fleet) AggregatedBoots() int { return f.aggBoots }

// Propagation reports cross-region propagation outcomes: transfers
// completed vs transfers the long-haul network defeated (those retry
// on the next cadence).
func (f *Fleet) Propagation() (transferred, failed int) { return f.propOK, f.propFail }

// ReasonCount is one fallback reason with its occurrence count.
type ReasonCount struct {
	Reason string
	Count  int
}

// FallbackReasons returns the counted fallback reasons sorted by
// reason string, so the output is stable for summaries and diffs.
func (f *Fleet) FallbackReasons() []ReasonCount {
	out := make([]ReasonCount, 0, len(f.fbReasons))
	for r, n := range f.fbReasons {
		out = append(out, ReasonCount{Reason: r, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Reason < out[j].Reason })
	return out
}

// ServerOutcome is one server's boot disposition at the end of a run.
type ServerOutcome struct {
	Group    int
	UsedJS   bool
	FellBack bool
	Reason   string // last boot's no-Jump-Start reason, "" if it jump-started
	Crashes  int
}

// Outcomes snapshots every server's boot disposition — the audit
// surface for "every consumer either jump-started or fell back with a
// recorded reason".
func (f *Fleet) Outcomes() []ServerOutcome {
	out := make([]ServerOutcome, len(f.servers))
	for i := range f.servers {
		s := &f.servers[i]
		out[i] = ServerOutcome{
			Group:    s.group,
			UsedJS:   s.usedJS,
			FellBack: s.fellBack,
			Reason:   s.fbReason,
			Crashes:  s.everCrashd,
		}
	}
	return out
}

// Servers returns the fleet size.
func (f *Fleet) Servers() int { return len(f.servers) }

// ServerSeries returns each server's per-tick capacity series (nil
// unless Config.RecordSeries). The outer slice is indexed by server;
// callers feed the inner series to obs.Classify.
func (f *Fleet) ServerSeries() [][]float64 { return f.series }

// WarmupSeries returns each server's capacity series from its first
// boot of the latest push onward (nil unless Config.RecordSeries) —
// the suffix that changepoint classification labels. A cleanly warmed
// server yields a warmup-shaped curve; a crash-looping one keeps its
// dips and classifies as non-monotonic; a server that never rebooted
// contributes its whole (flat) series.
func (f *Fleet) WarmupSeries() [][]float64 {
	if f.series == nil {
		return nil
	}
	out := make([][]float64, len(f.series))
	for i := range f.series {
		// A server swap-booted on the final tick marks seriesFrom at
		// the yet-unappended sample: clamp so the suffix is empty, not
		// out of range. Classification must accept a length-0/1 suffix.
		from := f.servers[i].seriesFrom
		if from > len(f.series[i]) {
			from = len(f.series[i])
		}
		s := f.series[i][from:]
		out[i] = s[:len(s):len(s)]
	}
	return out
}

// BootLatencies returns the boot-start → steady-capacity duration of
// every completed boot, in completion order (nil unless
// Config.RecordSeries).
func (f *Fleet) BootLatencies() []float64 { return f.bootLat }

// TimesToSteady returns the warmup-start → steady-capacity duration of
// every completed boot, in completion order (nil unless
// Config.RecordSeries). It differs from BootLatencies by the restart
// downtime and any virtual time the package fetch burned.
func (f *Fleet) TimesToSteady() []float64 { return f.tts }

// ScenarioStats is the scenario engine's fleet-side accounting.
type ScenarioStats struct {
	FailoverBoots int     // boots started in a region absorbing failed-over load
	MismatchBoots int     // Jump-Start boots consuming a cross-geometry package
	DarkTicks     int     // ticks with at least one region down
	PeakDemand    float64 // max fleet demand multiplier observed
	TroughDemand  float64 // min fleet demand multiplier observed
}

// ScenarioStats snapshots the scenario accounting (zero value when no
// scenario is wired or no tick has run).
func (f *Fleet) ScenarioStats() ScenarioStats {
	trough := f.demandTrough
	if math.IsInf(trough, 1) {
		trough = 0
	}
	return ScenarioStats{
		FailoverBoots: f.failoverBoots,
		MismatchBoots: f.mismatchBoots,
		DarkTicks:     f.darkTicks,
		PeakDemand:    f.demandPeak,
		TroughDemand:  trough,
	}
}

// GeometryCensus counts servers per hardware geometry class (nil for a
// uniform fleet).
func (f *Fleet) GeometryCensus() []int {
	if f.cfg.GeometryClasses <= 1 {
		return nil
	}
	out := make([]int, f.cfg.GeometryClasses)
	for i := range f.servers {
		out[f.servers[i].geom]++
	}
	return out
}

// CapacityLoss integrates (1 - capacity) over a tick series, returning
// lost server-seconds divided by total server-seconds.
func CapacityLoss(ticks []FleetTick, dt float64) float64 {
	if len(ticks) == 0 {
		return 0
	}
	lost := 0.0
	for _, t := range ticks {
		lost += (1 - t.Capacity) * dt
	}
	return lost / (float64(len(ticks)) * dt)
}

// ScenarioCapacityLoss integrates (1 - ScenCapacity): the demand-
// weighted shortfall. Under a scenario this is the loss users feel —
// warming servers at the diurnal trough cost little, a dark region's
// dumped load costs double — and without one it equals CapacityLoss.
func ScenarioCapacityLoss(ticks []FleetTick, dt float64) float64 {
	if len(ticks) == 0 {
		return 0
	}
	lost := 0.0
	for _, t := range ticks {
		lost += (1 - t.ScenCapacity) * dt
	}
	return lost / (float64(len(ticks)) * dt)
}
