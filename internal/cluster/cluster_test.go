package cluster

import (
	"testing"

	"jumpstart/internal/server"
)

// Synthetic curves: Jump-Start reaches steady in 100 s, no-Jump-Start
// in 500 s (roughly Figure 4b's shapes).
func jsCurve() WarmupCurve {
	return WarmupCurve{
		Times:  []float64{0, 30, 60, 100},
		Values: []float64{0.3, 0.7, 0.9, 1.0},
	}
}

func noJSCurve() WarmupCurve {
	return WarmupCurve{
		Times:  []float64{0, 100, 250, 400, 500},
		Values: []float64{0.05, 0.3, 0.6, 0.9, 1.0},
	}
}

func TestWarmupCurveAt(t *testing.T) {
	c := jsCurve()
	if c.At(-1) != 0 {
		t.Fatal("before start")
	}
	if c.At(0) != 0.3 {
		t.Fatal("at start")
	}
	if got := c.At(45); got <= 0.3 || got >= 0.9 {
		t.Fatalf("interpolation = %f", got)
	}
	if c.At(100) != 1.0 || c.At(9999) != 1.0 {
		t.Fatal("steady hold")
	}
	if c.SteadyValue() != 1.0 {
		t.Fatal("steady value")
	}
	empty := WarmupCurve{}
	if empty.At(5) != 1 || empty.SteadyValue() != 1 {
		t.Fatal("empty curve must be instant capacity")
	}
}

func TestTimeToFraction(t *testing.T) {
	c := noJSCurve()
	if got := c.TimeToFraction(0.9); got != 400 {
		t.Fatalf("t90 = %f", got)
	}
	if got := c.TimeToFraction(0.99); got != 500 {
		t.Fatalf("t99 = %f", got)
	}
}

func TestLifespanFractions(t *testing.T) {
	// Paper (§II-B): 13% to decent, 32% to peak with 75-minute pushes.
	// Our synthetic curve with a matching push interval should land in
	// the same ballpark shape: toPeak > toDecent, both well below 1.
	toDecent, toPeak := LifespanFractions(noJSCurve(), 1800)
	if toDecent <= 0 || toPeak <= toDecent || toPeak > 1 {
		t.Fatalf("fractions = %f, %f", toDecent, toPeak)
	}
	if got := toDecent; got < 0.1 || got > 0.4 {
		t.Fatalf("toDecent = %f, want paper-ish ballpark", got)
	}
	d, p := LifespanFractions(noJSCurve(), 0)
	if d != 0 || p != 0 {
		t.Fatal("zero interval")
	}
	// Tiny push interval saturates at 1.
	d, p = LifespanFractions(noJSCurve(), 100)
	if d != 1 || p != 1 {
		t.Fatalf("saturation: %f %f", d, p)
	}
}

func TestCurveFromTicks(t *testing.T) {
	ticks := []server.TickStats{
		{T: 10, Completed: 0},
		{T: 20, Completed: 500},
		{T: 30, Completed: 1000},
		{T: 40, Completed: 1500}, // above steady → clamped
	}
	c := CurveFromTicks(ticks, 100)
	if len(c.Times) != 4 {
		t.Fatalf("points = %d", len(c.Times))
	}
	if c.Values[0] != 0 || c.Values[1] != 0.5 || c.Values[2] != 1.0 || c.Values[3] != 1.0 {
		t.Fatalf("values = %v", c.Values)
	}
}

func fleetConfig(js bool) Config {
	cfg := DefaultConfig()
	cfg.CurveJumpStart = jsCurve()
	cfg.CurveNoJumpStart = noJSCurve()
	cfg.JumpStartEnabled = js
	cfg.ServersPerBucket = 8
	cfg.Regions = 2
	return cfg
}

func TestFleetSteadyWithoutDeployment(t *testing.T) {
	f, err := NewFleet(fleetConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	ticks := f.Run(100)
	for _, tk := range ticks {
		if tk.Capacity != 1.0 {
			t.Fatalf("idle fleet capacity = %f", tk.Capacity)
		}
	}
	if f.Servers() != 2*10*8 {
		t.Fatalf("servers = %d", f.Servers())
	}
}

func TestFleetDeploymentPhases(t *testing.T) {
	f, err := NewFleet(fleetConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	f.StartDeployment()
	ticks := f.Run(3000)
	phases := map[int]bool{}
	minCap := 1.0
	for _, tk := range ticks {
		phases[tk.Phase] = true
		if tk.Capacity < minCap {
			minCap = tk.Capacity
		}
	}
	if !phases[1] || !phases[2] || !phases[3] {
		t.Fatalf("phases seen = %v", phases)
	}
	if f.Deploying() {
		t.Fatal("deployment never completed")
	}
	// C3 restarts most of the fleet: capacity must dip meaningfully
	// but never to zero (phased deployment is the point).
	if minCap > 0.9 {
		t.Fatalf("no visible dip: %f", minCap)
	}
	if minCap < 0.2 {
		t.Fatalf("phased deployment should not crater capacity: %f", minCap)
	}
	// Everyone is warm at the end.
	if ticks[len(ticks)-1].Capacity < 0.999 {
		t.Fatalf("fleet did not re-warm: %f", ticks[len(ticks)-1].Capacity)
	}
	// Packages were published by C2 seeders for every pair.
	last := ticks[len(ticks)-1]
	if last.PkgsAvail < 2*10 {
		t.Fatalf("packages = %d, want ≥ one per (region,bucket)", last.PkgsAvail)
	}
}

func TestJumpStartReducesDeploymentCapacityLoss(t *testing.T) {
	run := func(js bool) float64 {
		f, err := NewFleet(fleetConfig(js))
		if err != nil {
			t.Fatal(err)
		}
		f.StartDeployment()
		ticks := f.Run(3000)
		return CapacityLoss(ticks, f.cfg.TickSeconds)
	}
	lossJS := run(true)
	lossNo := run(false)
	if lossJS >= lossNo {
		t.Fatalf("jump-start loss %.4f ≥ no-JS loss %.4f", lossJS, lossNo)
	}
	// Paper: 54.9% reduction in capacity loss. Require a substantial
	// reduction (>30%) given our synthetic curves.
	reduction := 1 - lossJS/lossNo
	if reduction < 0.3 {
		t.Fatalf("capacity-loss reduction only %.1f%%", reduction*100)
	}
}

func TestDefectivePackagesCrashAndDecay(t *testing.T) {
	cfg := fleetConfig(true)
	cfg.DefectRate = 1.0          // every seeder package is bad...
	cfg.ValidationCatchRate = 0.5 // ...validation catches half
	cfg.CrashDelay = 20
	cfg.MaxJSAttempts = 2
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.StartDeployment()
	ticks := f.Run(4000)
	if f.Crashes() == 0 {
		t.Fatal("defective packages never crashed anyone")
	}
	// Fallback engaged for servers that kept drawing bad packages.
	if f.Fallbacks() == 0 {
		t.Fatal("fallback never engaged")
	}
	// The fleet must still converge to full capacity: crash loops are
	// broken by randomized re-picks and the no-JS fallback (VI-A).
	if final := ticks[len(ticks)-1].Capacity; final < 0.999 {
		t.Fatalf("fleet stuck at %f capacity", final)
	}
	// Crashes must stop (exponential decay, not a persistent loop).
	lastCrash := 0
	for _, tk := range ticks {
		if tk.Crashes > lastCrash {
			lastCrash = tk.Crashes
		}
	}
	tail := ticks[len(ticks)-1]
	if tail.Crashes != lastCrash {
		t.Fatal("inconsistent crash accounting")
	}
	// No crashes in the last quarter of the run.
	quarter := ticks[3*len(ticks)/4]
	if tail.Crashes != quarter.Crashes {
		t.Fatalf("crashes still occurring late: %d -> %d", quarter.Crashes, tail.Crashes)
	}
}

func TestValidationReducesCrashes(t *testing.T) {
	run := func(catch float64) int {
		cfg := fleetConfig(true)
		cfg.DefectRate = 0.8
		cfg.ValidationCatchRate = catch
		cfg.CrashDelay = 20
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.StartDeployment()
		f.Run(4000)
		return f.Crashes()
	}
	noValidation := run(0)
	fullValidation := run(1)
	if fullValidation != 0 {
		t.Fatalf("full validation still crashed %d", fullValidation)
	}
	if noValidation == 0 {
		t.Fatal("no-validation run never crashed (model inert)")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Regions = 0
	if _, err := NewFleet(cfg); err == nil {
		t.Fatal("invalid dimensions accepted")
	}
}

func TestFleetCapacityLossHelper(t *testing.T) {
	ticks := []FleetTick{{Capacity: 1}, {Capacity: 0.5}, {Capacity: 0.5}}
	loss := CapacityLoss(ticks, 1)
	if loss < 0.33 || loss > 0.34 {
		t.Fatalf("loss = %f", loss)
	}
	if CapacityLoss(nil, 1) != 0 {
		t.Fatal("empty")
	}
}

// TestTickParallelDeterminism is the fleet-level half of the parallel
// engine's contract: sharding per-server replay across any number of
// workers must reproduce the sequential tick series exactly — every
// field of every tick, including the floating-point capacity sum and
// the RNG-driven crash/fallback counters.
func TestTickParallelDeterminism(t *testing.T) {
	run := func(workers int) ([]FleetTick, int, int) {
		cfg := DefaultConfig()
		cfg.CurveJumpStart = jsCurve()
		cfg.CurveNoJumpStart = noJSCurve()
		// Exercise the RNG-drawing paths hard: defective packages,
		// validation rolls, crash loops, fallbacks.
		cfg.DefectRate = 0.5
		cfg.ValidationCatchRate = 0.5
		cfg.CrashDelay = 30
		cfg.Workers = workers
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.StartDeployment()
		return f.Run(3000), f.Crashes(), f.Fallbacks()
	}
	base, crashes, fallbacks := run(1)
	if crashes == 0 {
		t.Fatal("scenario exercised no crashes; defect path untested")
	}
	for _, w := range []int{4, 0} { // 0 = one worker per CPU
		ticks, c, fb := run(w)
		if c != crashes || fb != fallbacks {
			t.Fatalf("workers=%d: crashes/fallbacks %d/%d, want %d/%d", w, c, fb, crashes, fallbacks)
		}
		if len(ticks) != len(base) {
			t.Fatalf("workers=%d: %d ticks, want %d", w, len(ticks), len(base))
		}
		for i := range base {
			if ticks[i] != base[i] {
				t.Fatalf("workers=%d: tick %d diverged:\n  seq %+v\n  par %+v", w, i, base[i], ticks[i])
			}
		}
	}
}
