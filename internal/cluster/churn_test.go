package cluster

import (
	"fmt"
	"runtime"
	"testing"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/netsim"
)

// remappedCurve sits between the exact-package and cold curves: a
// remapped package recovers most but not all of the warmup benefit.
func remappedCurve() WarmupCurve {
	return WarmupCurve{
		Times:  []float64{0, 40, 90, 150},
		Values: []float64{0.2, 0.6, 0.85, 1.0},
	}
}

// churnConfig drives continuous pushes: a new revision lands every
// 600 virtual seconds under the remap-tolerant store policy, with an
// 80% per-package remap survival rate. The soak holds are shorter
// than seeding so post-push boots actually race the seeders.
func churnConfig(workers int, transport bool) Config {
	cfg := fleetConfig(true)
	if transport {
		cfg = transportFleetConfig(netsim.Config{BaseLatency: 0.02})
	}
	cfg.Workers = workers
	cfg.C1Hold = 30
	cfg.C2Hold = 60
	cfg.PushEvery = 600
	cfg.RemapPolicy = jumpstart.RemapTolerant
	cfg.RemapHitRate = 0.8
	cfg.CurveRemapped = remappedCurve()
	return cfg
}

// TestFleetChurnDeterminism: the continuous-deployment fleet — pushes
// on a cadence, packages surviving via the remapper, remapped boots on
// their own curve — is byte-identical at every worker count, both on
// the direct in-memory store and through the networked transport
// (which re-publishes surviving packages at the new revision).
func TestFleetChurnDeterminism(t *testing.T) {
	for _, transport := range []bool{false, true} {
		name := "direct"
		if transport {
			name = "transport"
		}
		t.Run(name, func(t *testing.T) {
			type run struct {
				ticks     []FleetTick
				fallbacks []ReasonCount
				outcomes  []ServerOutcome
			}
			do := func(workers int) run {
				f, ticks := runDeployment(t, churnConfig(workers, transport), 4000)
				return run{ticks: ticks, fallbacks: f.FallbackReasons(), outcomes: f.Outcomes()}
			}
			base := do(1)

			// The churn machinery must actually engage, or the
			// determinism claim is vacuous.
			last := base.ticks[len(base.ticks)-1]
			if last.Revision < 3 {
				t.Fatalf("only %d revisions pushed in 4000s at cadence 600", last.Revision)
			}
			if last.RemapBoots == 0 {
				t.Fatal("no boots ever used a remapped package")
			}

			for _, workers := range []int{4, runtime.NumCPU()} {
				got := do(workers)
				if i, ok := ticksEqual(base.ticks, got.ticks); !ok {
					t.Fatalf("workers=%d diverged at tick %d: %+v vs %+v",
						workers, i, base.ticks[i], got.ticks[i])
				}
				if fmt.Sprintf("%v", got.fallbacks) != fmt.Sprintf("%v", base.fallbacks) {
					t.Fatalf("workers=%d fallback reasons diverged", workers)
				}
				if fmt.Sprintf("%v", got.outcomes) != fmt.Sprintf("%v", base.outcomes) {
					t.Fatalf("workers=%d server outcomes diverged", workers)
				}
			}
		})
	}
}

// TestFleetChurnPolicies pins the store-policy semantics at a push:
// exact-only wipes every package (all lost, none kept, no remapped
// boots); remap-tolerant carries most packages across and serves
// remapped boots from them.
func TestFleetChurnPolicies(t *testing.T) {
	exact := churnConfig(1, false)
	exact.RemapPolicy = jumpstart.ExactOnly
	fe, _ := runDeployment(t, exact, 4000)
	kept, lost := fe.PackageChurn()
	if kept != 0 {
		t.Fatalf("exact-only kept %d packages across a push", kept)
	}
	if lost == 0 {
		t.Fatal("exact-only pushes never wiped a package")
	}
	if fe.RemapBoots() != 0 {
		t.Fatalf("exact-only served %d remapped boots", fe.RemapBoots())
	}

	fr, _ := runDeployment(t, churnConfig(1, false), 4000)
	kept, lost = fr.PackageChurn()
	if kept == 0 {
		t.Fatal("remap-tolerant never carried a package across a push")
	}
	if lost == 0 {
		t.Fatal("remap survival rate 0.8 never dropped a package — RNG not applied")
	}
	if fr.RemapBoots() == 0 {
		t.Fatal("remap-tolerant never served a remapped boot")
	}
	if fr.Revision() < 3 || fe.Revision() < 3 {
		t.Fatalf("revisions: exact=%d remap=%d, want >= 3", fe.Revision(), fr.Revision())
	}
}
