package cluster

import (
	"testing"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/obs"
)

// poolConfig is fleetConfig plus a warm standby pool of the given size
// and backfill rate. CurvePooled stays empty: a standby swaps in at
// full capacity instantly, the strongest version of the tier.
func poolConfig(size int, rate float64) Config {
	cfg := fleetConfig(true)
	cfg.PoolSize = size
	cfg.PoolBackfillRate = rate
	return cfg
}

// c3Members counts group-3 servers — the population C3 waves restart.
func c3Members(f *Fleet) int {
	n := 0
	for i := range f.servers {
		if f.servers[i].group == 3 {
			n++
		}
	}
	return n
}

// checkPoolConservation verifies the pool's accounting identity: every
// standby is available, mid-reboot, or was never replaced at all.
func checkPoolConservation(t *testing.T, ps PoolStats) {
	t.Helper()
	if ps.Avail != ps.Size-ps.Drains+ps.Backfills {
		t.Fatalf("pool conservation broken: %+v", ps)
	}
	if ps.Pending != ps.Drains-ps.Backfills {
		t.Fatalf("pending miscounted: %+v", ps)
	}
	if ps.Pooled != ps.Drains {
		t.Fatalf("pooled boots %d != drains %d", ps.Pooled, ps.Drains)
	}
	if ps.Avail < 0 || ps.Avail > ps.Size || ps.Pending < 0 {
		t.Fatalf("pool counters out of range: %+v", ps)
	}
}

// TestPoolLargerThanRestartGroup covers a pool that dwarfs the whole
// C3 population: every wave restart swaps, nothing misses, and the
// wave-slice math survives the swap path (the PR 3 slice-bounds class
// of bug — waves × per-wave may exceed the member count).
func TestPoolLargerThanRestartGroup(t *testing.T) {
	cfg := poolConfig(1000, 0)
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c3 := c3Members(f)
	if cfg.PoolSize <= c3 {
		t.Fatalf("test premise broken: pool %d not larger than C3 group %d", cfg.PoolSize, c3)
	}
	f.StartDeployment()
	f.Run(3000)
	ps := f.PoolStats()
	checkPoolConservation(t, ps)
	if ps.Misses != 0 {
		t.Fatalf("oversized pool missed %d times", ps.Misses)
	}
	if ps.Drains != c3 {
		t.Fatalf("drains = %d, want one per C3 member (%d)", ps.Drains, c3)
	}
	if f.Deploying() {
		t.Fatal("deployment never completed with pooled waves")
	}
}

// TestPoolExhaustedMidWave covers the opposite extreme: a pool smaller
// than a single wave drains dry partway through it, and the remainder
// of the wave books misses and takes the ordinary restart path.
func TestPoolExhaustedMidWave(t *testing.T) {
	f, err := NewFleet(poolConfig(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	c3 := c3Members(f)
	f.StartDeployment()
	f.Run(3000)
	ps := f.PoolStats()
	checkPoolConservation(t, ps)
	if ps.Drains == 0 {
		t.Fatal("pool never drained")
	}
	if ps.Misses == 0 {
		t.Fatal("undersized pool never missed")
	}
	// Every C3 restart either swapped or missed; nothing double-counted.
	if ps.Drains+ps.Misses != c3 {
		t.Fatalf("drains %d + misses %d != C3 members %d", ps.Drains, ps.Misses, c3)
	}
	if f.Deploying() {
		t.Fatal("deployment did not complete despite misses")
	}
}

// TestPoolBackfillRateThrottles pins the backfill throttle: with a
// tiny PoolBackfillRate, re-admissions are bounded by rate × elapsed
// even when every replaced instance has long finished rebooting, while
// an unthrottled pool re-admits everything.
func TestPoolBackfillRateThrottles(t *testing.T) {
	const horizon = 3000.0
	run := func(rate float64) PoolStats {
		f, err := NewFleet(poolConfig(20, rate))
		if err != nil {
			t.Fatal(err)
		}
		f.StartDeployment()
		f.Run(horizon)
		ps := f.PoolStats()
		checkPoolConservation(t, ps)
		return ps
	}
	free := run(0) // <= 0 means unthrottled
	if free.Backfills != free.Drains {
		t.Fatalf("unthrottled pool left %d instances pending after %vs",
			free.Pending, horizon)
	}
	slow := run(0.001) // at most 3 admissions over the whole horizon
	if slow.Backfills > 3 {
		t.Fatalf("throttled pool backfilled %d, want ≤ rate×elapsed = 3", slow.Backfills)
	}
	if slow.Backfills >= free.Backfills {
		t.Fatalf("throttle had no effect: %d vs %d", slow.Backfills, free.Backfills)
	}
}

// TestPoolReducesCapacityLoss is the tier's reason to exist: swapping
// warm standbys into C3 waves must cut the push's capacity loss
// relative to the same fleet without a pool.
func TestPoolReducesCapacityLoss(t *testing.T) {
	run := func(size int) float64 {
		cfg := poolConfig(size, 0)
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.StartDeployment()
		ticks := f.Run(3000)
		return CapacityLoss(ticks, cfg.TickSeconds)
	}
	lossNoPool := run(0)
	lossPool := run(1000)
	if lossNoPool <= 0 {
		t.Fatalf("baseline push lost no capacity (%f); scenario inert", lossNoPool)
	}
	if lossPool >= lossNoPool {
		t.Fatalf("pool did not help: loss %.4f with pool ≥ %.4f without", lossPool, lossNoPool)
	}
}

// TestPoolBackfillDuringBrownout exercises backfill while the fleet is
// under stress: defective packages crash consumers mid-push while the
// pool keeps draining and refilling. The accounting identity must hold
// throughout, and crash reboots must never draw from the pool (drains
// stay bounded by C3 restarts).
func TestPoolBackfillDuringBrownout(t *testing.T) {
	cfg := poolConfig(10, 0.05)
	cfg.DefectRate = 0.8
	cfg.ValidationCatchRate = 0.2
	cfg.CrashDelay = 20
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c3 := c3Members(f)
	f.StartDeployment()
	for f.Deploying() {
		f.Tick()
		checkPoolConservation(t, f.PoolStats())
	}
	f.Run(500)
	ps := f.PoolStats()
	checkPoolConservation(t, ps)
	if f.Crashes() == 0 {
		t.Fatal("stress scenario exercised no crashes")
	}
	if ps.Drains == 0 || ps.Backfills == 0 {
		t.Fatalf("pool idle under stress: %+v", ps)
	}
	// Crash-loop reboots take the normal path; only wave restarts swap.
	if ps.Drains+ps.Misses != c3 {
		t.Fatalf("crash reboots leaked into the pool: drains %d + misses %d != C3 %d",
			ps.Drains, ps.Misses, c3)
	}
}

// TestPooledLazyDeterminism extends the fleet determinism contract to
// the new tier: with pooling, throttled backfill, lazy warmup and the
// defect paths all active, the tick series, pool accounting and boot
// counters must be byte-identical at every worker count. This is the
// -race half of the acceptance bar; `make poolsweep` runs it with the
// detector on.
func TestPooledLazyDeterminism(t *testing.T) {
	run := func(workers int) ([]FleetTick, PoolStats, int, int, int) {
		cfg := poolConfig(12, 0.02)
		cfg.DefectRate = 0.8
		cfg.ValidationCatchRate = 0.2
		cfg.CrashDelay = 20
		cfg.WarmupMode = jumpstart.WarmupLazy
		cfg.CurveLazy = WarmupCurve{
			Times:  []float64{0, 20, 120, 300},
			Values: []float64{0.55, 0.7, 0.9, 1.0},
		}
		cfg.Workers = workers
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.StartDeployment()
		ticks := f.Run(3000)
		return ticks, f.PoolStats(), f.LazyBoots(), f.Crashes(), f.Fallbacks()
	}
	base, pool, lazy, crashes, fallbacks := run(1)
	if pool.Drains == 0 || lazy == 0 || crashes == 0 {
		t.Fatalf("scenario inert: pool %+v, lazy %d, crashes %d", pool, lazy, crashes)
	}
	for _, w := range []int{4, 0} { // 0 = one worker per CPU
		ticks, p, l, c, fb := run(w)
		if p != pool || l != lazy || c != crashes || fb != fallbacks {
			t.Fatalf("workers=%d: counters diverged: pool %+v lazy %d crashes %d fallbacks %d, want %+v %d %d %d",
				w, p, l, c, fb, pool, lazy, crashes, fallbacks)
		}
		if len(ticks) != len(base) {
			t.Fatalf("workers=%d: %d ticks, want %d", w, len(ticks), len(base))
		}
		for i := range base {
			if ticks[i] != base[i] {
				t.Fatalf("workers=%d: tick %d diverged:\n  seq %+v\n  par %+v", w, i, base[i], ticks[i])
			}
		}
	}
}

// TestLazyModeUsesLazyCurve pins the curve-selection plumbing: under
// WarmupLazy every jump-started consumer boots on CurveLazy — here
// deliberately slower to steady than the eager curve, so the push
// loses strictly more capacity than the eager run of the same fleet.
func TestLazyModeUsesLazyCurve(t *testing.T) {
	run := func(mode jumpstart.WarmupMode) (float64, int) {
		cfg := fleetConfig(true)
		cfg.WarmupMode = mode
		cfg.CurveLazy = WarmupCurve{
			Times:  []float64{0, 600},
			Values: []float64{0.5, 1.0},
		}
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.StartDeployment()
		ticks := f.Run(3000)
		return CapacityLoss(ticks, cfg.TickSeconds), f.LazyBoots()
	}
	lossEager, lazyInEager := run(jumpstart.WarmupEager)
	lossLazy, lazyInLazy := run(jumpstart.WarmupLazy)
	if lazyInEager != 0 {
		t.Fatalf("eager run recorded %d lazy boots", lazyInEager)
	}
	if lazyInLazy == 0 {
		t.Fatal("lazy run recorded no lazy boots")
	}
	if lossLazy <= lossEager {
		t.Fatalf("lazy boots did not run on the lazy curve: loss %.4f ≤ eager %.4f",
			lossLazy, lossEager)
	}
}

// TestWarmupSeriesReanchorsPerPush is the regression test for the
// WarmupSeries suffix bug: a server that has not (yet) booted under
// the current push must contribute its flat series since the push
// began — not replay the previous push's warmup ramp. Before the fix,
// StartDeployment cleared only the seriesMarked flag, so un-rebooted
// servers sliced from the previous push's boot offset and classified
// as warmup curves they never ran.
func TestWarmupSeriesReanchorsPerPush(t *testing.T) {
	cfg := fleetConfig(true)
	cfg.RecordSeries = true
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Push 1 runs to completion: every server reboots and re-warms.
	f.StartDeployment()
	f.Run(3000)
	if f.Deploying() {
		t.Fatal("push 1 did not complete")
	}
	// Push 2 starts but only runs 10 ticks — short of C1Hold, so only
	// the tiny C1 group has rebooted; everyone else sits flat at steady.
	f.StartDeployment()
	const ticks = 10
	for i := 0; i < ticks; i++ {
		f.Tick()
	}
	series := f.WarmupSeries()
	flat := 0
	for i, s := range series {
		if len(s) > ticks {
			t.Fatalf("server %d suffix has %d samples, want ≤ %d since push 2 started",
				i, len(s), ticks)
		}
		if obs.Classify(s, cfg.TickSeconds).Label == obs.LabelFlat {
			flat++
		}
	}
	// Only C1 members (C1Fraction of the fleet) may look non-flat.
	if min := len(series) * 9 / 10; flat < min {
		t.Fatalf("only %d/%d un-rebooted servers classify flat, want ≥ %d",
			flat, len(series), min)
	}
}
