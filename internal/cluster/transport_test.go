package cluster

import (
	"fmt"
	"runtime"
	"testing"

	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/netsim"
	"jumpstart/internal/telemetry"
)

// transportFleetConfig wires the networked store into the standard
// test fleet with the given fabric.
func transportFleetConfig(net netsim.Config) Config {
	cfg := fleetConfig(true)
	cfg.Transport = &TransportConfig{
		Net:          net,
		Client:       transport.ClientConfig{RPCTimeout: 1, Budget: 30, BackoffBase: 0.1, BackoffCap: 5},
		PackageBytes: 2048,
		ChunkSize:    512,
	}
	return cfg
}

// runDeployment drives a full push and returns the tick series.
func runDeployment(t *testing.T, cfg Config, seconds float64) (*Fleet, []FleetTick) {
	t.Helper()
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.StartDeployment()
	return f, f.Run(seconds)
}

func ticksEqual(a, b []FleetTick) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if a[i] != b[i] {
			return i, false
		}
	}
	return 0, true
}

// TestTransportPerfNeutralWhenHealthy is the acceptance criterion at
// fault rate zero: routing every publish and fetch through the
// chunked store protocol over a healthy fabric produces a tick series
// byte-identical to the direct in-memory path.
func TestTransportPerfNeutralWhenHealthy(t *testing.T) {
	direct, dTicks := runDeployment(t, fleetConfig(true), 2000)
	netted, nTicks := runDeployment(t, transportFleetConfig(netsim.Config{}), 2000)
	if i, ok := ticksEqual(dTicks, nTicks); !ok {
		t.Fatalf("healthy transport diverged from direct store at tick %d:\n direct: %+v\n netted: %+v",
			i, dTicks[i], nTicks[i])
	}
	if direct.Fallbacks() != netted.Fallbacks() || netted.Crashes() != 0 {
		t.Fatalf("fallbacks %d vs %d, crashes %d",
			direct.Fallbacks(), netted.Fallbacks(), netted.Crashes())
	}
}

// TestTransportLatencyDelaysWarmup: a slow (but lossless) fabric must
// not change outcomes, only delay them — capacity recovers later than
// on the healthy fabric and no one falls back.
func TestTransportLatencyDelaysWarmup(t *testing.T) {
	fast, fTicks := runDeployment(t, transportFleetConfig(netsim.Config{}), 3000)
	slow, sTicks := runDeployment(t, transportFleetConfig(netsim.Config{BaseLatency: 0.5}), 3000)
	if slow.Fallbacks() != fast.Fallbacks() || slow.Crashes() != 0 {
		t.Fatalf("lossless latency changed outcomes: fallbacks %d vs %d, crashes %d",
			slow.Fallbacks(), fast.Fallbacks(), slow.Crashes())
	}
	if lf, ls := CapacityLoss(fTicks, 5), CapacityLoss(sTicks, 5); ls <= lf {
		t.Fatalf("0.5s RPC latency did not cost capacity: loss %f vs %f", ls, lf)
	}
}

// brownoutConfig injects a store brownout squarely over the C3 fetch
// storm: 97%% of store RPCs drop for a long window, so consumer boots
// retry into their budgets and some exhaust them.
func brownoutConfig(workers int, tel *telemetry.Set) Config {
	cfg := transportFleetConfig(netsim.Config{
		BaseLatency: 0.02,
		Faults:      []netsim.Fault{netsim.Brownout(250, 1500, 0.97, 0.5)},
	})
	cfg.Workers = workers
	cfg.Telem = tel
	cfg.Transport.Client.Budget = 12
	return cfg
}

// TestFleetBrownoutDeterminism is the headline acceptance test: under
// a seeded store brownout the fleet degrades gracefully — zero
// crashes, every consumer either jump-started or fell back with a
// recorded reason — and the run is byte-identical across worker
// counts, with telemetry on or off.
func TestFleetBrownoutDeterminism(t *testing.T) {
	type run struct {
		ticks     []FleetTick
		fallbacks []ReasonCount
		outcomes  []ServerOutcome
	}
	do := func(workers int, tel *telemetry.Set) run {
		f, ticks := runDeployment(t, brownoutConfig(workers, tel), 4000)
		return run{ticks: ticks, fallbacks: f.FallbackReasons(), outcomes: f.Outcomes()}
	}
	base := do(1, nil)

	// Graceful degradation: the brownout slowed boots down but broke
	// nothing.
	budgetFallbacks := 0
	for _, rc := range base.fallbacks {
		if rc.Reason == "fetch budget exhausted" {
			budgetFallbacks = rc.Count
		}
	}
	if budgetFallbacks == 0 {
		t.Fatal("brownout never exhausted a fetch budget; fault window missed the fetch storm")
	}
	for i, o := range base.outcomes {
		if o.Crashes != 0 {
			t.Fatalf("server %d crashed during brownout", i)
		}
		if o.Group != 2 && !o.UsedJS && o.Reason == "" {
			t.Fatalf("server %d (group %d) booted without Jump-Start and without a recorded reason", i, o.Group)
		}
	}

	// Determinism: byte-identical across worker counts and with
	// telemetry enabled.
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := do(workers, telemetry.NewSet())
		if i, ok := ticksEqual(base.ticks, got.ticks); !ok {
			t.Fatalf("workers=%d diverged at tick %d: %+v vs %+v",
				workers, i, base.ticks[i], got.ticks[i])
		}
		if fmt.Sprintf("%v", got.fallbacks) != fmt.Sprintf("%v", base.fallbacks) {
			t.Fatalf("workers=%d fallback reasons diverged: %v vs %v",
				workers, got.fallbacks, base.fallbacks)
		}
		if fmt.Sprintf("%v", got.outcomes) != fmt.Sprintf("%v", base.outcomes) {
			t.Fatalf("workers=%d server outcomes diverged", workers)
		}
	}
}

// TestTransportPublishFailureDegrades: a total partition on the seeder
// uplink makes every upload fail terminally; consumers see an empty
// store and boot without Jump-Start — slower, but zero crashes and
// every skip accounted for.
func TestTransportPublishFailureDegrades(t *testing.T) {
	cfg := transportFleetConfig(netsim.Config{
		Faults: []netsim.Fault{netsim.Partition(0, 1e9, "seeder")},
	})
	cfg.Transport.Client.Budget = 5
	f, ticks := runDeployment(t, cfg, 3000)
	if f.Crashes() != 0 {
		t.Fatalf("crashes = %d", f.Crashes())
	}
	last := ticks[len(ticks)-1]
	if last.PkgsAvail != 0 {
		t.Fatalf("packages landed through a partition: %d", last.PkgsAvail)
	}
	js := 0
	for i, o := range f.Outcomes() {
		if o.UsedJS {
			js++
		}
		if o.Group != 2 && !o.UsedJS && o.Reason == "" {
			t.Fatalf("server %d skipped Jump-Start silently", i)
		}
	}
	if js != 0 {
		t.Fatalf("%d servers jump-started from an empty store", js)
	}
}

// TestC3WavesExceedMembers is a regression test: a fleet with fewer
// C3 servers than configured waves used to panic in restartC3Wave
// (slice bounds out of range) once the later, empty waves fired.
func TestC3WavesExceedMembers(t *testing.T) {
	cfg := fleetConfig(true)
	cfg.Regions = 1
	cfg.Buckets = 2
	cfg.ServersPerBucket = 3
	cfg.C3Waves = 6
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.StartDeployment()
	f.Run(2000)
	if f.Deploying() {
		t.Fatal("tiny-fleet deployment never completed")
	}
}
