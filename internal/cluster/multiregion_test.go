package cluster

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"jumpstart/internal/netsim"
	"jumpstart/internal/telemetry"
)

// aggCurve is the consensus-package warmup curve: a merged profile
// covers more of the workload than any single seeder's, so it warms
// faster than jsCurve.
func aggCurve() WarmupCurve {
	return WarmupCurve{
		Times:  []float64{0, 20, 50, 80},
		Values: []float64{0.4, 0.8, 0.95, 1.0},
	}
}

// multiFleetConfig wires the multi-region hierarchy into the standard
// test fleet.
func multiFleetConfig(intra netsim.Config, mc MultiConfig) Config {
	cfg := transportFleetConfig(intra)
	cfg.Transport.Multi = &mc
	cfg.CurveAggregated = aggCurve()
	return cfg
}

// TestFleetRegionsDeterminism is the multi-region headline test: with
// sharded per-region stores, 2-way replication, seeder aggregation and
// a long-haul brownout over the propagation window, the fleet degrades
// gracefully — zero crashes, every consumer either jump-started or
// fell back with a recorded reason — and the run is byte-identical
// across worker counts, with telemetry on or off.
func TestFleetRegionsDeterminism(t *testing.T) {
	type run struct {
		ticks     []FleetTick
		fallbacks []ReasonCount
		outcomes  []ServerOutcome
		failovers int
		consensus int
		aggBoots  int
		propOK    int
		propFail  int
	}
	do := func(workers int, tel *telemetry.Set) run {
		cfg := multiFleetConfig(
			netsim.Config{BaseLatency: 0.02},
			MultiConfig{
				NodesPerRegion:   3,
				Replicas:         2,
				PropagateEvery:   60,
				AggregateSeeders: 2,
				InterNet: netsim.Config{
					BaseLatency: 0.3,
					Faults:      []netsim.Fault{netsim.BrownoutPrefix(250, 900, 0.9, 0.5, "inter:")},
				},
			})
		cfg.Workers = workers
		cfg.Telem = tel
		f, ticks := runDeployment(t, cfg, 4000)
		ok, fail := f.Propagation()
		return run{
			ticks:     ticks,
			fallbacks: f.FallbackReasons(),
			outcomes:  f.Outcomes(),
			failovers: f.Failovers(),
			consensus: f.ConsensusPackages(),
			aggBoots:  f.AggregatedBoots(),
			propOK:    ok,
			propFail:  fail,
		}
	}
	base := do(1, nil)

	if base.consensus == 0 {
		t.Fatal("aggregation never produced a consensus package")
	}
	if base.aggBoots == 0 {
		t.Fatal("no consumer booted from a consensus package")
	}
	if base.propFail == 0 {
		t.Fatal("long-haul brownout never defeated a propagation transfer")
	}
	if base.propOK == 0 {
		t.Fatal("propagation never converged after the brownout lifted")
	}
	for i, o := range base.outcomes {
		if o.Crashes != 0 {
			t.Fatalf("server %d crashed", i)
		}
		if o.Group != 2 && !o.UsedJS && o.Reason == "" {
			t.Fatalf("server %d (group %d) booted without Jump-Start and without a recorded reason", i, o.Group)
		}
	}

	for _, workers := range []int{4, runtime.NumCPU()} {
		got := do(workers, telemetry.NewSet())
		if i, ok := ticksEqual(base.ticks, got.ticks); !ok {
			t.Fatalf("workers=%d diverged at tick %d: %+v vs %+v",
				workers, i, base.ticks[i], got.ticks[i])
		}
		if fmt.Sprintf("%v", got.fallbacks) != fmt.Sprintf("%v", base.fallbacks) {
			t.Fatalf("workers=%d fallback reasons diverged: %v vs %v",
				workers, got.fallbacks, base.fallbacks)
		}
		if fmt.Sprintf("%v", got.outcomes) != fmt.Sprintf("%v", base.outcomes) {
			t.Fatalf("workers=%d server outcomes diverged", workers)
		}
		if got.failovers != base.failovers || got.consensus != base.consensus ||
			got.aggBoots != base.aggBoots || got.propOK != base.propOK ||
			got.propFail != base.propFail {
			t.Fatalf("workers=%d counters diverged: %+v vs %+v", workers, got, base)
		}
	}
}

// TestFleetReplicaFailoverAndRegionOutage: after the seeders publish, a
// single store node goes dark in region 0 (consumers there fail over to
// the surviving replica — no fallback needed) while region 1 loses its
// whole store plane (every replica leg fails — consumers fall back with
// the distinct failover-exhausted reason). Zero crashes either way.
func TestFleetReplicaFailoverAndRegionOutage(t *testing.T) {
	cfg := multiFleetConfig(
		netsim.Config{Faults: []netsim.Fault{
			// Both faults open at t=280: after the C2 seeders published
			// (~t=250), before the C3 fetch storm.
			netsim.Partition(280, 1e9, "intra:r0/n0"),
			netsim.PartitionPrefix(280, 1e9, "intra:r1/"),
		}},
		MultiConfig{NodesPerRegion: 3, Replicas: 2, PropagateEvery: 60})
	cfg.Transport.Client.Budget = 8
	f, _ := runDeployment(t, cfg, 4000)

	if f.Crashes() != 0 {
		t.Fatalf("crashes = %d", f.Crashes())
	}
	if f.Failovers() == 0 {
		t.Fatal("no fetch ever failed over to a replica")
	}
	exhausted := 0
	for _, rc := range f.FallbackReasons() {
		if strings.HasPrefix(rc.Reason, "replica failover exhausted: ") {
			exhausted += rc.Count
		}
	}
	if exhausted == 0 {
		t.Fatalf("region outage never recorded the failover-exhausted reason: %v", f.FallbackReasons())
	}
	for i, o := range f.Outcomes() {
		if o.Group != 2 && !o.UsedJS && o.Reason == "" {
			t.Fatalf("server %d skipped Jump-Start silently", i)
		}
	}
	// Region 0's C3 consumers never needed a fallback: the replica
	// absorbed the node outage. (Group 1 boots before any package
	// exists, so it is exempt.)
	region0 := cfg.Buckets * cfg.ServersPerBucket
	for i := 0; i < region0; i++ {
		if o := f.Outcomes()[i]; o.Group == 3 && !o.UsedJS {
			t.Fatalf("region 0 server %d fell back (%q) despite a surviving replica", i, o.Reason)
		}
	}
}

// TestFleetInterRegionPartitionIsolation: a permanent partition on the
// long-haul links stops propagation cold but leaves both regions'
// local Jump-Start loops intact — every transfer fails, nothing
// crosses, nothing crashes, and no consumer needs a fallback because
// each region consumes its own seeders' packages.
func TestFleetInterRegionPartitionIsolation(t *testing.T) {
	mc := MultiConfig{NodesPerRegion: 3, Replicas: 2, PropagateEvery: 60}
	mc.InterNet = netsim.Config{Faults: []netsim.Fault{netsim.PartitionPrefix(0, 1e9, "inter:")}}
	mc.InterNet.BaseLatency = 0.3
	cut, cutTicks := runDeployment(t, multiFleetConfig(netsim.Config{}, mc), 4000)

	ok, fail := cut.Propagation()
	if ok != 0 || fail == 0 {
		t.Fatalf("partitioned propagation: transferred=%d failed=%d", ok, fail)
	}
	if cut.Crashes() != 0 {
		t.Fatalf("crashes = %d", cut.Crashes())
	}
	for _, rc := range cut.FallbackReasons() {
		if strings.HasPrefix(rc.Reason, "replica failover exhausted: ") {
			t.Fatalf("intra-region fetches failed under an inter-region fault: %v", rc)
		}
	}
	if cut.Deploying() {
		t.Fatal("deployment never completed")
	}

	// The same fleet with healthy long-haul links converges: every
	// entry lands in both regions, so more packages are available.
	healthy, hTicks := runDeployment(t,
		multiFleetConfig(netsim.Config{},
			MultiConfig{NodesPerRegion: 3, Replicas: 2, PropagateEvery: 60,
				InterNet: netsim.Config{BaseLatency: 0.3}}), 4000)
	if ok, _ := healthy.Propagation(); ok == 0 {
		t.Fatal("healthy propagation moved nothing")
	}
	if h, c := hTicks[len(hTicks)-1].PkgsAvail, cutTicks[len(cutTicks)-1].PkgsAvail; h <= c {
		t.Fatalf("healthy long-haul links did not widen availability: %d vs %d", h, c)
	}
}

// TestConsensusVoting pins the majority-defective rule: one bad seeder
// is outvoted by two good ones, two bad seeders poison the consensus,
// and a singleton buffer passes through unchanged.
func TestConsensusVoting(t *testing.T) {
	f, err := NewFleet(multiFleetConfig(netsim.Config{},
		MultiConfig{NodesPerRegion: 2, Replicas: 2, AggregateSeeders: 3}))
	if err != nil {
		t.Fatal(err)
	}
	good := pkgInfo{payload: []byte{1}}
	bad := pkgInfo{defective: true, payload: []byte{2}}

	if out := f.consensusOf([]pkgInfo{bad, good, good}); out.defective || !out.aggregated {
		t.Fatalf("outvoted defect poisoned the consensus: %+v", out)
	}
	if out := f.consensusOf([]pkgInfo{bad, bad, good}); !out.defective || !out.aggregated {
		t.Fatalf("majority defect survived the vote: %+v", out)
	}
	single := f.consensusOf([]pkgInfo{bad})
	if !single.defective || single.aggregated || &single.payload[0] != &bad.payload[0] {
		t.Fatalf("singleton flush altered the package: %+v", single)
	}
}
