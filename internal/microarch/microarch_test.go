package microarch

import (
	"testing"
	"testing/quick"
)

func TestCacheHitsAfterFill(t *testing.T) {
	h := New(DefaultConfig())
	// First access misses, second hits.
	if p := h.Fetch(0x1000, 16); p == 0 {
		t.Fatal("cold fetch should pay a penalty")
	}
	if p := h.Fetch(0x1000, 16); p != 0 {
		t.Fatalf("warm fetch penalty = %d", p)
	}
	s := h.Stats()
	if s.Fetches != 2 || s.L1IMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFetchSpansLines(t *testing.T) {
	h := New(DefaultConfig())
	h.Fetch(0x1000, 200) // 200 bytes = 4 lines at 64B
	if got := h.Stats().Fetches; got != 4 {
		t.Fatalf("fetches = %d, want 4", got)
	}
	// Unaligned fetch crossing a boundary.
	h2 := New(DefaultConfig())
	h2.Fetch(0x103c, 8) // crosses 0x1040
	if got := h2.Stats().Fetches; got != 2 {
		t.Fatalf("unaligned fetches = %d, want 2", got)
	}
}

func TestCacheConflictEviction(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	// Fill one L1I set beyond its ways with addresses mapping to the
	// same set: stride = sets * lineSize.
	stride := uint64(cfg.L1ISets * cfg.LineSize)
	for i := 0; i <= cfg.L1IWays; i++ {
		h.Fetch(uint64(i)*stride, 1)
	}
	before := h.Stats().L1IMisses
	// The first address was evicted (LRU): accessing it misses again.
	h.Fetch(0, 1)
	if h.Stats().L1IMisses != before+1 {
		t.Fatal("LRU eviction did not occur")
	}
}

func TestLRUKeepsHotLine(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	stride := uint64(cfg.L1ISets * cfg.LineSize)
	h.Fetch(0, 1) // line A
	for i := 1; i < cfg.L1IWays; i++ {
		h.Fetch(uint64(i)*stride, 1)
		h.Fetch(0, 1) // keep A hot
	}
	h.Fetch(uint64(cfg.L1IWays)*stride, 1) // evicts someone, not A
	before := h.Stats().L1IMisses
	h.Fetch(0, 1)
	if h.Stats().L1IMisses != before {
		t.Fatal("hot line was evicted despite LRU")
	}
}

func TestTLB(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	// Touch more pages than DTLB entries; then the first page misses.
	for i := 0; i <= cfg.DTLBEntries; i++ {
		h.Data(uint64(i) * uint64(cfg.PageSize))
	}
	miss := h.Stats().DTLBMisses
	h.Data(0)
	if h.Stats().DTLBMisses != miss+1 {
		t.Fatal("TLB eviction did not occur")
	}
	// Same page stays resident under repeated access.
	h2 := New(cfg)
	h2.Data(0x100)
	h2.Data(0x200)
	if h2.Stats().DTLBMisses != 1 {
		t.Fatalf("same-page accesses should share a TLB entry: %+v", h2.Stats())
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	h := New(DefaultConfig())
	// A loop branch taken 1000 times: mispredict rate must be tiny.
	for i := 0; i < 1000; i++ {
		h.Branch(0x4000, true)
	}
	s := h.Stats()
	if s.Branches != 1000 {
		t.Fatalf("branches = %d", s.Branches)
	}
	// gshare trains one table entry per distinct history prefix, so a
	// couple of dozen cold misses are expected before the history
	// register saturates; after that the branch must predict.
	if s.BranchMiss > 30 {
		t.Fatalf("predictor failed to learn: %d misses", s.BranchMiss)
	}
}

func TestBranchPredictorRandomIsBad(t *testing.T) {
	h := New(DefaultConfig())
	// Deterministic pseudo-random outcomes.
	x := uint64(0x9e3779b97f4a7c15)
	miss := 0
	for i := 0; i < 4000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if h.Branch(0x4000, x&1 == 0) == 0 {
			continue
		}
		miss++
	}
	// Random branches should mispredict a lot (>25%).
	if miss < 1000 {
		t.Fatalf("random branches mispredicted only %d/4000", miss)
	}
}

func TestStatsRatesAndAdd(t *testing.T) {
	var s Stats
	if s.L1IMissRate() != 0 || s.BranchMissRate() != 0 {
		t.Fatal("zero denominators must not divide")
	}
	a := Stats{Fetches: 10, L1IMisses: 2, Branches: 4, BranchMiss: 1}
	b := Stats{Fetches: 10, L1IMisses: 3}
	a.Add(b)
	if a.Fetches != 20 || a.L1IMisses != 5 {
		t.Fatalf("add = %+v", a)
	}
	if a.L1IMissRate() != 0.25 {
		t.Fatalf("rate = %f", a.L1IMissRate())
	}
}

func TestResetStatsKeepsCacheState(t *testing.T) {
	h := New(DefaultConfig())
	h.Fetch(0x1000, 8)
	h.ResetStats()
	if h.Stats().Fetches != 0 {
		t.Fatal("stats not reset")
	}
	// The line is still cached: no new miss.
	h.Fetch(0x1000, 8)
	if h.Stats().L1IMisses != 0 {
		t.Fatal("cache state was flushed by ResetStats")
	}
}

// Property: dense sequential code suffers no more I-cache misses than
// the same bytes scattered across memory (the essence of why layout
// optimizations work).
func TestPropDenseBeatsScattered(t *testing.T) {
	f := func(seed uint16) bool {
		nBlocks := 64
		blockSize := 256
		dense := New(DefaultConfig())
		scattered := New(DefaultConfig())
		// Execute blocks in a loop, 3 iterations.
		x := uint64(seed) + 1
		addrs := make([]uint64, nBlocks)
		for i := range addrs {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			addrs[i] = (x % 4096) * 4096 // scatter across pages
		}
		for iter := 0; iter < 3; iter++ {
			for i := 0; i < nBlocks; i++ {
				dense.Fetch(uint64(i*blockSize), blockSize)
				scattered.Fetch(addrs[i]+uint64(i*blockSize), blockSize)
			}
		}
		return dense.Stats().L1IMisses+dense.Stats().ITLBMisses <=
			scattered.Stats().L1IMisses+scattered.Stats().ITLBMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
