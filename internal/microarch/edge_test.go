package microarch

import "testing"

// TestLLCEvictionUnderConflict drives more same-set lines through the
// LLC than it has ways, via data accesses that also conflict in L1D.
// The first-touched line must be the LLC victim (LRU), so re-touching
// it pays the full memory penalty again while a recently-touched line
// only pays the L1-miss/LLC-hit penalty.
func TestLLCEvictionUnderConflict(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	// Same LLC set every time: stride = LLCSets * LineSize. The same
	// stride also aliases in L1D (whose set count divides the LLC's),
	// so every access past the first W misses L1D and probes the LLC.
	stride := uint64(cfg.LLCSets * cfg.LineSize)
	for i := 0; i <= cfg.LLCWays; i++ {
		h.Data(uint64(i) * stride)
	}
	s := h.Stats()
	if s.LLCMisses != uint64(cfg.LLCWays)+1 {
		t.Fatalf("cold conflict fill: LLC misses = %d, want %d",
			s.LLCMisses, cfg.LLCWays+1)
	}
	// Address 0 was the LRU line in its LLC set and must be gone.
	before := h.Stats().LLCMisses
	h.Data(0)
	if got := h.Stats().LLCMisses - before; got != 1 {
		t.Fatalf("evicted line hit the LLC (extra misses = %d)", got)
	}
	// The most recent line (index LLCWays) must still be resident.
	before = h.Stats().LLCMisses
	h.Data(uint64(cfg.LLCWays) * stride)
	if got := h.Stats().LLCMisses - before; got != 0 {
		t.Fatalf("recent line was evicted (extra misses = %d)", got)
	}
}

// TestDTLBWraparound walks one page more than the D-TLB holds, twice.
// With full-associativity and LRU, a sequential re-walk hits the
// victim chain head-on: every access of the second pass must miss.
func TestDTLBWraparound(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	pages := cfg.DTLBEntries + 1
	touch := func() uint64 {
		before := h.Stats().DTLBMisses
		for i := 0; i < pages; i++ {
			h.Data(uint64(i) * uint64(cfg.PageSize))
		}
		return h.Stats().DTLBMisses - before
	}
	if got := touch(); got != uint64(pages) {
		t.Fatalf("cold walk: %d D-TLB misses, want %d", got, pages)
	}
	// Second pass: page 0 was just evicted by page N, page 1 is evicted
	// by the re-walk of page 0, and so on — the classic LRU wraparound
	// pathology.
	if got := touch(); got != uint64(pages) {
		t.Fatalf("wraparound walk: %d D-TLB misses, want %d", got, pages)
	}
	// A TLB-sized working set, by contrast, settles to zero misses.
	h2 := New(cfg)
	for pass := 0; pass < 2; pass++ {
		before := h2.Stats().DTLBMisses
		for i := 0; i < cfg.DTLBEntries; i++ {
			h2.Data(uint64(i) * uint64(cfg.PageSize))
		}
		if pass == 1 && h2.Stats().DTLBMisses != before {
			t.Fatal("fitting working set missed on the second pass")
		}
	}
}

// TestBranchPredictorAliasing pins gshare table aliasing: two branches
// whose PCs differ by exactly the table size (after the >>2 index
// shift) share a counter. Training one branch always-taken drags the
// aliased branch's prediction with it, while an unaliased branch at
// any other slot is unaffected.
func TestBranchPredictorAliasing(t *testing.T) {
	cfg := DefaultConfig()
	tableSize := uint64(1) << cfg.BPTableBits

	// History must be identical at every probe, or gshare's xor mixes
	// the index away from the alias. Saturate history with taken=true
	// training so it is all-ones before and after each probe.
	train := func(h *Hierarchy, pc uint64, n int) {
		for i := 0; i < n; i++ {
			h.Branch(pc, true)
		}
	}

	probe := func(pcA, pcB uint64) uint64 {
		h := New(cfg)
		train(h, pcA, 64) // saturate counter at pcA's slot and history
		before := h.Stats().BranchMiss
		h.Branch(pcB, true) // same history; hits pcB's slot
		return h.Stats().BranchMiss - before
	}

	// pcB aliases pcA: index = pc>>2 & mask, so a PC delta of
	// tableSize<<2 lands on the same counter.
	if miss := probe(0x40, 0x40+tableSize<<2); miss != 0 {
		t.Fatal("aliased branch did not inherit the trained prediction")
	}
	// pcB one slot away: untrained counter predicts not-taken.
	if miss := probe(0x40, 0x44); miss != 1 {
		t.Fatal("unaliased branch unexpectedly predicted taken")
	}
}

// TestStreamMatchesDirectCalls pins the batch API's contract: feeding
// a recorded access stream through Stream is indistinguishable —
// stats, per-class penalties, and subsequent cache state — from the
// equivalent sequence of Fetch/Data/Branch calls.
func TestStreamMatchesDirectCalls(t *testing.T) {
	accs := []Access{
		{Addr: 0x1000, Aux: 96, Kind: AccessFetch},
		{Addr: 0x40, Aux: 0, Kind: AccessData},
		{Addr: 0x1010, Aux: 1, Kind: AccessBranch},
		{Addr: 0x2000, Aux: 16, Kind: AccessFetch},
		{Addr: 0x80, Aux: 0, Kind: AccessData},
		{Addr: 0x1010, Aux: 0, Kind: AccessBranch},
		{Addr: 0x40, Aux: 0, Kind: AccessData},
	}
	const dataBase = 0x7f00_0000_0000

	direct := New(DefaultConfig())
	var dFetch, dData, dBranch uint64
	for _, a := range accs {
		switch a.Kind {
		case AccessFetch:
			dFetch += uint64(direct.Fetch(a.Addr, int(a.Aux)))
		case AccessData:
			dData += uint64(direct.Data(dataBase + a.Addr))
		case AccessBranch:
			dBranch += uint64(direct.Branch(a.Addr, a.Aux != 0))
		}
	}

	streamed := New(DefaultConfig())
	sFetch, sData, sBranch := streamed.Stream(accs, dataBase)

	if sFetch != dFetch || sData != dData || sBranch != dBranch {
		t.Fatalf("penalties diverged: stream (%d,%d,%d) direct (%d,%d,%d)",
			sFetch, sData, sBranch, dFetch, dData, dBranch)
	}
	if streamed.Stats() != direct.Stats() {
		t.Fatalf("stats diverged:\nstream %+v\ndirect %+v",
			streamed.Stats(), direct.Stats())
	}
	// Post-stream state must match too: identical follow-up accesses
	// must produce identical penalties.
	for _, a := range accs {
		if got, want := streamed.Data(dataBase+a.Addr), direct.Data(dataBase+a.Addr); got != want {
			t.Fatalf("post-stream state diverged at %#x: %d vs %d", a.Addr, got, want)
		}
	}
}

// TestStreamAllocFree pins the batch feed as allocation-free — the
// property that makes replayed translations cheap.
func TestStreamAllocFree(t *testing.T) {
	h := New(DefaultConfig())
	accs := make([]Access, 0, 256)
	for i := 0; i < 256; i++ {
		accs = append(accs, Access{
			Addr: uint64(i) * 64,
			Aux:  uint32(i & 1),
			Kind: AccessKind(i % 3),
		})
	}
	avg := testing.AllocsPerRun(100, func() {
		h.Stream(accs, 0x7f00_0000_0000)
	})
	if avg != 0 {
		t.Fatalf("Stream allocates: %v allocs per call", avg)
	}
}
