// Package microarch simulates the parts of a CPU's memory hierarchy
// and front end that code/data layout affects: set-associative L1
// instruction and data caches, a unified last-level cache, instruction
// and data TLBs, and a gshare-style branch predictor.
//
// The server simulation feeds it the fetch/data/branch stream of
// executed translations; the resulting miss counts drive both the
// cycle cost model and the Figure 5 metrics (I-cache, D-cache, LLC,
// I-TLB, D-TLB and branch miss reductions from Jump-Start).
package microarch

import (
	"fmt"
	"strings"
)

// Config sizes the simulated hierarchy. The defaults approximate the
// paper's Xeon D-1581 per-core resources, with the LLC scaled down in
// proportion to the synthetic website's code size (the real machine
// runs ~500 MB of JITed code against a 24 MB LLC; the simulation runs
// ~1-4 MB of code, so the LLC is scaled to keep the ratio meaningful).
type Config struct {
	LineSize int // bytes per cache line
	PageSize int // bytes per TLB page

	L1ISets, L1IWays int
	L1DSets, L1DWays int
	LLCSets, LLCWays int

	ITLBEntries, DTLBEntries int

	BPTableBits int // branch-predictor table size = 1<<bits

	// Penalties in cycles.
	L1MissPenalty     int // L1 miss, LLC hit
	LLCMissPenalty    int // LLC miss (memory access)
	TLBMissPenalty    int // TLB fill (page walk)
	BranchMissPenalty int // mispredicted branch
}

// DefaultConfig returns the scaled Xeon D-1581-like hierarchy.
func DefaultConfig() Config {
	return Config{
		LineSize: 64,
		PageSize: 4096,
		L1ISets:  64, L1IWays: 8, // 32 KB
		L1DSets: 64, L1DWays: 8, // 32 KB
		LLCSets: 1024, LLCWays: 16, // 1 MB (scaled)
		ITLBEntries: 64,
		DTLBEntries: 64,
		BPTableBits: 12,

		L1MissPenalty:     12,
		LLCMissPenalty:    60,
		TLBMissPenalty:    30,
		BranchMissPenalty: 15,
	}
}

// Validate reports a descriptive error when the geometry would break
// the indexing arithmetic: newCache and newTLB extract set and page
// indexes with shift-and-mask (setMask = sets-1, lineBits =
// log2(lineSize)), which silently mis-indexes — aliasing lines into a
// fraction of the sets — unless sets, line size and page size are
// powers of two. Callers that can surface an error (server.New does)
// should Validate; New itself rounds offenders up via Normalize so a
// hierarchy can never be built mis-indexing.
func (c Config) Validate() error {
	var bad []string
	pow2 := func(name string, v int) {
		if v <= 0 || v&(v-1) != 0 {
			bad = append(bad, fmt.Sprintf("%s=%d", name, v))
		}
	}
	pos := func(name string, v int) {
		if v <= 0 {
			bad = append(bad, fmt.Sprintf("%s=%d", name, v))
		}
	}
	pow2("LineSize", c.LineSize)
	pow2("PageSize", c.PageSize)
	pow2("L1ISets", c.L1ISets)
	pow2("L1DSets", c.L1DSets)
	pow2("LLCSets", c.LLCSets)
	pos("L1IWays", c.L1IWays)
	pos("L1DWays", c.L1DWays)
	pos("LLCWays", c.LLCWays)
	pos("ITLBEntries", c.ITLBEntries)
	pos("DTLBEntries", c.DTLBEntries)
	if c.BPTableBits <= 0 || c.BPTableBits > 30 {
		bad = append(bad, fmt.Sprintf("BPTableBits=%d", c.BPTableBits))
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("microarch: invalid config: %s (line/page sizes and cache sets must be positive powers of two, ways and TLB entries positive, BPTableBits in 1..30)",
		strings.Join(bad, ", "))
}

// Normalize returns a copy with every offending field rounded up to
// the nearest legal value (next power of two for the indexed sizes,
// 1 for the counts, clamped 1..30 for the predictor bits). Normalizing
// a valid config is the identity.
func (c Config) Normalize() Config {
	c.LineSize = nextPow2(c.LineSize)
	c.PageSize = nextPow2(c.PageSize)
	c.L1ISets = nextPow2(c.L1ISets)
	c.L1DSets = nextPow2(c.L1DSets)
	c.LLCSets = nextPow2(c.LLCSets)
	c.L1IWays = atLeast1(c.L1IWays)
	c.L1DWays = atLeast1(c.L1DWays)
	c.LLCWays = atLeast1(c.LLCWays)
	c.ITLBEntries = atLeast1(c.ITLBEntries)
	c.DTLBEntries = atLeast1(c.DTLBEntries)
	if c.BPTableBits < 1 {
		c.BPTableBits = 1
	}
	if c.BPTableBits > 30 {
		c.BPTableBits = 30
	}
	return c
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << log2(n)
}

func atLeast1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Stats accumulates event and miss counts.
type Stats struct {
	Fetches    uint64 // instruction-fetch line accesses
	L1IMisses  uint64
	DataAccs   uint64
	L1DMisses  uint64
	LLCAccs    uint64
	LLCMisses  uint64
	ITLBAccs   uint64
	ITLBMisses uint64
	DTLBAccs   uint64
	DTLBMisses uint64
	Branches   uint64
	BranchMiss uint64
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Fetches += o.Fetches
	s.L1IMisses += o.L1IMisses
	s.DataAccs += o.DataAccs
	s.L1DMisses += o.L1DMisses
	s.LLCAccs += o.LLCAccs
	s.LLCMisses += o.LLCMisses
	s.ITLBAccs += o.ITLBAccs
	s.ITLBMisses += o.ITLBMisses
	s.DTLBAccs += o.DTLBAccs
	s.DTLBMisses += o.DTLBMisses
	s.Branches += o.Branches
	s.BranchMiss += o.BranchMiss
}

// Rate helpers (safe on zero denominators).
func rate(miss, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(miss) / float64(total)
}

// L1IMissRate returns I-cache misses per fetch.
func (s Stats) L1IMissRate() float64 { return rate(s.L1IMisses, s.Fetches) }

// L1DMissRate returns D-cache misses per access.
func (s Stats) L1DMissRate() float64 { return rate(s.L1DMisses, s.DataAccs) }

// LLCMissRate returns LLC misses per LLC access.
func (s Stats) LLCMissRate() float64 { return rate(s.LLCMisses, s.LLCAccs) }

// ITLBMissRate returns I-TLB misses per access.
func (s Stats) ITLBMissRate() float64 { return rate(s.ITLBMisses, s.ITLBAccs) }

// DTLBMissRate returns D-TLB misses per access.
func (s Stats) DTLBMissRate() float64 { return rate(s.DTLBMisses, s.DTLBAccs) }

// BranchMissRate returns mispredictions per branch.
func (s Stats) BranchMissRate() float64 { return rate(s.BranchMiss, s.Branches) }

// cache is a set-associative cache with LRU replacement. All ways of
// all sets live in one flat slice (set s occupies lines[s*ways :
// (s+1)*ways]) so an access touches a single allocation and the index
// arithmetic stays branch-free.
type cache struct {
	lines    []line
	ways     int
	lineBits uint
	setMask  uint64
	tick     uint64
}

type line struct {
	tag  uint64
	used uint64
	ok   bool
}

func newCache(sets, ways, lineSize int) *cache {
	return &cache{
		lines:    make([]line, sets*ways),
		ways:     ways,
		lineBits: log2(lineSize),
		setMask:  uint64(sets - 1),
	}
}

func log2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}

// access touches addr and reports whether it hit.
func (c *cache) access(addr uint64) bool {
	c.tick++
	tag := addr >> c.lineBits
	base := int(tag&c.setMask) * c.ways
	set := c.lines[base : base+c.ways]
	victim := 0
	for i := range set {
		if set[i].ok && set[i].tag == tag {
			set[i].used = c.tick
			return true
		}
		if set[i].used < set[victim].used || !set[i].ok && set[victim].ok {
			victim = i
		}
	}
	// Prefer an invalid way.
	for i := range set {
		if !set[i].ok {
			victim = i
			break
		}
	}
	set[victim] = line{tag: tag, used: c.tick, ok: true}
	return false
}

// tlb is a fully-associative LRU TLB.
type tlb struct {
	entries  []line
	pageBits uint
	tick     uint64
}

func newTLB(entries, pageSize int) *tlb {
	return &tlb{entries: make([]line, entries), pageBits: log2(pageSize)}
}

func (t *tlb) access(addr uint64) bool {
	t.tick++
	tag := addr >> t.pageBits
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.ok && e.tag == tag {
			e.used = t.tick
			return true
		}
		if !e.ok {
			victim = i
		} else if t.entries[victim].ok && e.used < t.entries[victim].used {
			victim = i
		}
	}
	t.entries[victim] = line{tag: tag, used: t.tick, ok: true}
	return false
}

// predictor is a gshare branch predictor: 2-bit saturating counters
// indexed by pc xor global history.
type predictor struct {
	table   []uint8
	history uint64
	mask    uint64
}

func newPredictor(bits int) *predictor {
	return &predictor{table: make([]uint8, 1<<bits), mask: uint64(1<<bits - 1)}
}

func (p *predictor) predict(pc uint64, taken bool) bool {
	idx := (pc>>2 ^ p.history) & p.mask
	ctr := p.table[idx]
	predicted := ctr >= 2
	if taken {
		if ctr < 3 {
			p.table[idx] = ctr + 1
		}
	} else if ctr > 0 {
		p.table[idx] = ctr - 1
	}
	p.history = (p.history << 1) | b2u(taken)
	return predicted == taken
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Hierarchy bundles the simulated structures.
type Hierarchy struct {
	cfg  Config
	l1i  *cache
	l1d  *cache
	llc  *cache
	itlb *tlb
	dtlb *tlb
	bp   *predictor

	stats Stats
}

// New builds a hierarchy from cfg. A config that fails Validate is
// normalized first (sizes rounded up to powers of two, counts raised
// to 1), so the shift-and-mask indexing below is always sound;
// callers that want the invalid geometry reported instead of rounded
// should Validate before calling.
func New(cfg Config) *Hierarchy {
	cfg = cfg.Normalize()
	return &Hierarchy{
		cfg:  cfg,
		l1i:  newCache(cfg.L1ISets, cfg.L1IWays, cfg.LineSize),
		l1d:  newCache(cfg.L1DSets, cfg.L1DWays, cfg.LineSize),
		llc:  newCache(cfg.LLCSets, cfg.LLCWays, cfg.LineSize),
		itlb: newTLB(cfg.ITLBEntries, cfg.PageSize),
		dtlb: newTLB(cfg.DTLBEntries, cfg.PageSize),
		bp:   newPredictor(cfg.BPTableBits),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Fetch simulates fetching size bytes of code starting at addr,
// returning the penalty cycles incurred (0 on all-hit).
func (h *Hierarchy) Fetch(addr uint64, size int) int {
	penalty := 0
	line := uint64(h.cfg.LineSize)
	end := addr + uint64(size)
	for a := addr &^ (line - 1); a < end; a += line {
		h.stats.Fetches++
		h.stats.ITLBAccs++
		if !h.itlb.access(a) {
			h.stats.ITLBMisses++
			penalty += h.cfg.TLBMissPenalty
		}
		if !h.l1i.access(a) {
			h.stats.L1IMisses++
			h.stats.LLCAccs++
			if h.llc.access(a) {
				penalty += h.cfg.L1MissPenalty
			} else {
				h.stats.LLCMisses++
				penalty += h.cfg.LLCMissPenalty
			}
		}
	}
	return penalty
}

// Data simulates one data access at addr.
func (h *Hierarchy) Data(addr uint64) int {
	penalty := 0
	h.stats.DataAccs++
	h.stats.DTLBAccs++
	if !h.dtlb.access(addr) {
		h.stats.DTLBMisses++
		penalty += h.cfg.TLBMissPenalty
	}
	if !h.l1d.access(addr) {
		h.stats.L1DMisses++
		h.stats.LLCAccs++
		if h.llc.access(addr) {
			penalty += h.cfg.L1MissPenalty
		} else {
			h.stats.LLCMisses++
			penalty += h.cfg.LLCMissPenalty
		}
	}
	return penalty
}

// Branch simulates one conditional branch at pc with the given
// outcome, returning the misprediction penalty (0 when predicted).
func (h *Hierarchy) Branch(pc uint64, taken bool) int {
	h.stats.Branches++
	if !h.bp.predict(pc, taken) {
		h.stats.BranchMiss++
		return h.cfg.BranchMissPenalty
	}
	return 0
}

// Stats returns the accumulated counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters without flushing cache state (used to
// measure steady-state windows after warmup).
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// AccessKind discriminates the events in a batched access stream.
type AccessKind uint8

// Access kinds.
const (
	// AccessFetch is an instruction fetch of Aux bytes at Addr.
	AccessFetch AccessKind = iota
	// AccessData is one data access. Addr is stored relative to a
	// caller-supplied base so recorded streams stay valid as the
	// simulated heap grows (see Stream's dataBase).
	AccessData
	// AccessBranch is a conditional branch at Addr, taken iff Aux != 0.
	AccessBranch
)

// Access is one element of a batched event stream — a recorded
// Fetch/Data/Branch call.
type Access struct {
	Addr uint64
	Aux  uint32
	Kind AccessKind
}

// Stream feeds a recorded access stream through the hierarchy in
// order, exactly as the equivalent sequence of Fetch/Data/Branch calls
// would, and returns the penalty cycles accumulated per event class.
// AccessData addresses are offsets added to dataBase. The call
// allocates nothing, which is what makes replayed translations cheap.
func (h *Hierarchy) Stream(accs []Access, dataBase uint64) (fetchPen, dataPen, branchPen uint64) {
	for i := range accs {
		a := &accs[i]
		switch a.Kind {
		case AccessFetch:
			fetchPen += uint64(h.Fetch(a.Addr, int(a.Aux)))
		case AccessData:
			dataPen += uint64(h.Data(dataBase + a.Addr))
		default:
			branchPen += uint64(h.Branch(a.Addr, a.Aux != 0))
		}
	}
	return fetchPen, dataPen, branchPen
}
