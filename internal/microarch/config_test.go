package microarch

import (
	"strings"
	"testing"
)

func TestValidateDescriptiveErrors(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"LineSize":    func(c *Config) { c.LineSize = 48 },
		"PageSize":    func(c *Config) { c.PageSize = 1000 },
		"L1ISets":     func(c *Config) { c.L1ISets = 48 },
		"L1DSets":     func(c *Config) { c.L1DSets = 0 },
		"LLCSets":     func(c *Config) { c.LLCSets = -4 },
		"L1IWays":     func(c *Config) { c.L1IWays = 0 },
		"L1DWays":     func(c *Config) { c.L1DWays = -1 },
		"LLCWays":     func(c *Config) { c.LLCWays = 0 },
		"ITLBEntries": func(c *Config) { c.ITLBEntries = 0 },
		"DTLBEntries": func(c *Config) { c.DTLBEntries = -2 },
		"BPTableBits": func(c *Config) { c.BPTableBits = 0 },
	}
	for field, mut := range cases {
		cfg := DefaultConfig()
		mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", field)
			continue
		}
		if !strings.Contains(err.Error(), field) {
			t.Errorf("%s: error %q does not name the offending field", field, err)
		}
	}
	// Several bad fields are all reported at once.
	cfg := DefaultConfig()
	cfg.L1ISets = 48
	cfg.PageSize = 1000
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "L1ISets") || !strings.Contains(err.Error(), "PageSize") {
		t.Fatalf("multi-field error incomplete: %v", err)
	}
}

func TestNormalizeRoundsUp(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Normalize() != cfg {
		t.Fatal("Normalize of a valid config is not the identity")
	}
	cfg.L1ISets = 48
	cfg.LineSize = 40
	cfg.ITLBEntries = 0
	cfg.BPTableBits = 40
	n := cfg.Normalize()
	if n.L1ISets != 64 || n.LineSize != 64 || n.ITLBEntries != 1 || n.BPTableBits != 30 {
		t.Fatalf("Normalize = %+v", n)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("normalized config still invalid: %v", err)
	}
}

// TestNewNormalizesNonPowerOfTwo is the regression pin for the silent
// mis-indexing: a 48-set cache used to mask with 47, making every set
// with bit 4 set unreachable and aliasing their lines elsewhere. New
// now rounds the geometry up, so the non-power-of-two config behaves
// exactly like its normalized form on any access stream.
func TestNewNormalizesNonPowerOfTwo(t *testing.T) {
	bad := DefaultConfig()
	bad.L1ISets = 48
	bad.LLCSets = 1000
	bad.PageSize = 3000
	good := bad.Normalize()
	a, b := New(bad), New(good)
	if a.Config() != b.Config() {
		t.Fatalf("New kept the invalid geometry: %+v", a.Config())
	}
	seed := uint64(12345)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed
	}
	for i := 0; i < 20_000; i++ {
		addr := next() % (1 << 22)
		switch i % 3 {
		case 0:
			if a.Fetch(addr, 16) != b.Fetch(addr, 16) {
				t.Fatalf("Fetch diverged at access %d", i)
			}
		case 1:
			if a.Data(addr) != b.Data(addr) {
				t.Fatalf("Data diverged at access %d", i)
			}
		default:
			taken := addr&1 == 0
			if a.Branch(addr, taken) != b.Branch(addr, taken) {
				t.Fatalf("Branch diverged at access %d", i)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	// The normalized cache actually uses every set: with 64 sets of
	// 8 ways and far more than 512 distinct hot lines, the line array
	// must fill completely (the old masking bug left whole sets cold).
	full := 0
	for _, ln := range a.l1i.lines {
		if ln.ok {
			full++
		}
	}
	if full != len(a.l1i.lines) {
		t.Fatalf("only %d/%d L1I lines ever filled — sets unreachable", full, len(a.l1i.lines))
	}
}
