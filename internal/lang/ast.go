package lang

// File is a parsed MiniHack source file.
type File struct {
	Name    string
	Funcs   []*FuncDecl
	Classes []*ClassDecl
}

// FuncDecl is a top-level function or a method.
type FuncDecl struct {
	Name   string
	Params []string
	Body   []Stmt
	Pos    Pos
}

// ClassDecl declares a class with optional parent, properties (in
// declared order — observable!) and methods.
type ClassDecl struct {
	Name    string
	Parent  string // "" for none
	Props   []PropDecl
	Methods []*FuncDecl
	Pos     Pos
}

// PropDecl is one property declaration, optionally with a constant
// default value.
type PropDecl struct {
	Name    string
	Default Expr // nil for null; must be a literal
	Pos     Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	// StartPos returns the position of the expression's first token.
	StartPos() Pos
}

// Statements.
type (
	// ExprStmt evaluates an expression for effect.
	ExprStmt struct{ X Expr }
	// AssignStmt assigns to an Ident, Index or Prop LHS. Op "" means
	// plain assignment; otherwise one of "+", "-", "*", "/", ".".
	AssignStmt struct {
		LHS Expr
		Op  string
		RHS Expr
		Pos Pos
	}
	// IfStmt with optional Else (which may itself be another IfStmt
	// for else-if chains).
	IfStmt struct {
		Cond Expr
		Then []Stmt
		Else []Stmt
	}
	// WhileStmt loops while Cond is truthy.
	WhileStmt struct {
		Cond Expr
		Body []Stmt
	}
	// ForStmt is the C-style loop; any of Init/Cond/Step may be nil.
	ForStmt struct {
		Init Stmt // AssignStmt or ExprStmt
		Cond Expr
		Step Stmt
		Body []Stmt
	}
	// ForeachStmt iterates an array: foreach (x as k => v) or
	// foreach (x as v).
	ForeachStmt struct {
		Seq  Expr
		Key  string // "" when absent
		Val  string
		Body []Stmt
	}
	// ReturnStmt returns Value (nil means null).
	ReturnStmt struct {
		Value Expr
		Pos   Pos
	}
	// BreakStmt exits the innermost loop.
	BreakStmt struct{ Pos Pos }
	// ContinueStmt continues the innermost loop.
	ContinueStmt struct{ Pos Pos }
)

func (*ExprStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ForeachStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expressions.
type (
	// IntLit is an integer literal.
	IntLit struct {
		Val int64
		Pos Pos
	}
	// FloatLit is a float literal.
	FloatLit struct {
		Val float64
		Pos Pos
	}
	// StrLit is a string literal.
	StrLit struct {
		Val string
		Pos Pos
	}
	// BoolLit is true/false.
	BoolLit struct {
		Val bool
		Pos Pos
	}
	// NullLit is null.
	NullLit struct{ Pos Pos }
	// Ident references a local variable.
	Ident struct {
		Name string
		Pos  Pos
	}
	// ThisExpr references the method receiver.
	ThisExpr struct{ Pos Pos }
	// ArrayLit builds an array; entries without keys append.
	ArrayLit struct {
		Entries []ArrayEntry
		Pos     Pos
	}
	// Unary is -x or !x.
	Unary struct {
		Op  string
		X   Expr
		Pos Pos
	}
	// Binary is a binary operation; Op is the source operator.
	Binary struct {
		Op   string
		L, R Expr
		Pos  Pos
	}
	// Call invokes a free function (or builtin) by name.
	Call struct {
		Name string
		Args []Expr
		Pos  Pos
	}
	// MethodCall invokes recv->name(args).
	MethodCall struct {
		Recv Expr
		Name string
		Args []Expr
		Pos  Pos
	}
	// New instantiates a class: new C(args).
	New struct {
		Class string
		Args  []Expr
		Pos   Pos
	}
	// Index is base[key].
	Index struct {
		Base Expr
		Key  Expr
		Pos  Pos
	}
	// Prop is base->name.
	Prop struct {
		Base Expr
		Name string
		Pos  Pos
	}
)

// ArrayEntry is one element of an ArrayLit.
type ArrayEntry struct {
	Key Expr // nil to append
	Val Expr
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StrLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*NullLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*ThisExpr) exprNode()   {}
func (*ArrayLit) exprNode()   {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Call) exprNode()       {}
func (*MethodCall) exprNode() {}
func (*New) exprNode()        {}
func (*Index) exprNode()      {}
func (*Prop) exprNode()       {}

// StartPos implementations.
func (e *IntLit) StartPos() Pos     { return e.Pos }
func (e *FloatLit) StartPos() Pos   { return e.Pos }
func (e *StrLit) StartPos() Pos     { return e.Pos }
func (e *BoolLit) StartPos() Pos    { return e.Pos }
func (e *NullLit) StartPos() Pos    { return e.Pos }
func (e *Ident) StartPos() Pos      { return e.Pos }
func (e *ThisExpr) StartPos() Pos   { return e.Pos }
func (e *ArrayLit) StartPos() Pos   { return e.Pos }
func (e *Unary) StartPos() Pos      { return e.Pos }
func (e *Binary) StartPos() Pos     { return e.Pos }
func (e *Call) StartPos() Pos       { return e.Pos }
func (e *MethodCall) StartPos() Pos { return e.Pos }
func (e *New) StartPos() Pos        { return e.Pos }
func (e *Index) StartPos() Pos      { return e.Pos }
func (e *Prop) StartPos() Pos       { return e.Pos }
