package lang

import "testing"

func kinds(toks []Token) []TokKind {
	ks := make([]TokKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("t", `fun f(a) { return a + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokFun, TokIdent, TokLParen, TokIdent, TokRParen, TokLBrace,
		TokReturn, TokIdent, TokPlus, TokInt, TokSemi, TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := LexAll("t", "0 42 3.5 1e3 2.5e-2 9999999999999999999999")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[0].Int != 0 {
		t.Errorf("0 => %+v", toks[0])
	}
	if toks[1].Kind != TokInt || toks[1].Int != 42 {
		t.Errorf("42 => %+v", toks[1])
	}
	if toks[2].Kind != TokFloat || toks[2].Flt != 3.5 {
		t.Errorf("3.5 => %+v", toks[2])
	}
	if toks[3].Kind != TokFloat || toks[3].Flt != 1000 {
		t.Errorf("1e3 => %+v", toks[3])
	}
	if toks[4].Kind != TokFloat || toks[4].Flt != 0.025 {
		t.Errorf("2.5e-2 => %+v", toks[4])
	}
	if toks[5].Kind != TokFloat {
		t.Errorf("overflowing int should lex as float: %+v", toks[5])
	}
}

func TestLexNumberThenIdent(t *testing.T) {
	// "3e" must not eat the identifier: lexes as 3 then "e".
	toks, err := LexAll("t", "x = 3 e")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokInt || toks[3].Kind != TokIdent || toks[3].Text != "e" {
		t.Fatalf("toks = %v", kinds(toks))
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := LexAll("t", `"hello" "a\n\t\"b\\" ""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "hello" {
		t.Errorf("str = %q", toks[0].Text)
	}
	if toks[1].Text != "a\n\t\"b\\" {
		t.Errorf("escapes = %q", toks[1].Text)
	}
	if toks[2].Text != "" {
		t.Errorf("empty = %q", toks[2].Text)
	}
}

func TestLexStringErrors(t *testing.T) {
	for _, src := range []string{`"abc`, `"a\q"`, "\"a\nb\""} {
		if _, err := LexAll("t", src); err == nil {
			t.Errorf("%q should fail to lex", src)
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "=== !== == != <= >= && || << >> -> => += -= *= /= .= + - * / % . < > ! & | ^ ="
	toks, err := LexAll("t", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokSame, TokNSame, TokEq, TokNeq, TokLte, TokGte, TokAndAnd,
		TokOrOr, TokShl, TokShr, TokArrow, TokFatArrow,
		TokPlusEq, TokMinusEq, TokStarEq, TokSlashEq, TokDotEq,
		TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokDot,
		TokLt, TokGt, TokNot, TokAmp, TokPipe, TokCaret, TokAssign, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("tok[%d] = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `a // line comment
	/* block
	comment */ b`
	toks, err := LexAll("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("toks = %v", toks)
	}
	if _, err := LexAll("t", "/* unterminated"); err == nil {
		t.Fatal("unterminated block comment should fail")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("t", "a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b pos = %v", toks[1].Pos)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	_, err := LexAll("t", "a @ b")
	if err == nil {
		t.Fatal("@ should fail")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T", err)
	}
	if le.Pos.Col != 3 {
		t.Errorf("error pos = %v", le.Pos)
	}
}

func TestKeywordsLexAsKeywords(t *testing.T) {
	toks, err := LexAll("t", "fun class extends prop if else while for foreach as return break continue new this true false null funx")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokFun, TokClass, TokExtends, TokProp, TokIf, TokElse, TokWhile,
		TokFor, TokForeach, TokAs, TokReturn, TokBreak, TokContinue,
		TokNew, TokThis, TokTrue, TokFalse, TokNull, TokIdent, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
