package lang

import "fmt"

// Parser is a recursive-descent parser for MiniHack.
type Parser struct {
	file string
	toks []Token
	pos  int
}

// Parse lexes and parses a whole source file.
func Parse(file, src string) (*File, error) {
	toks, err := LexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{file: file, toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %s, found %s", k, p.describe(p.cur()))
}

func (p *Parser) describe(t Token) string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokInt, TokFloat, TokString:
		return t.Kind.String()
	default:
		return t.Kind.String()
	}
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return &Error{File: p.file, Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for !p.at(TokEOF) {
		switch p.cur().Kind {
		case TokFun:
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		case TokClass:
			c, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			f.Classes = append(f.Classes, c)
		default:
			return nil, p.errf("expected 'fun' or 'class' at top level, found %s",
				p.describe(p.cur()))
		}
	}
	return f, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw, err := p.expect(TokFun)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []string
	seen := map[string]bool{}
	for !p.at(TokRParen) {
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if seen[id.Text] {
			return nil, &Error{File: p.file, Pos: id.Pos,
				Msg: fmt.Sprintf("duplicate parameter %q", id.Text)}
		}
		seen[id.Text] = true
		params = append(params, id.Text)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Body: body, Pos: kw.Pos}, nil
}

func (p *Parser) parseClass() (*ClassDecl, error) {
	kw, err := p.expect(TokClass)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	c := &ClassDecl{Name: name.Text, Pos: kw.Pos}
	if p.accept(TokExtends) {
		parent, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		c.Parent = parent.Text
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for !p.at(TokRBrace) {
		switch p.cur().Kind {
		case TokProp:
			p.next()
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			pd := PropDecl{Name: id.Text, Pos: id.Pos}
			if p.accept(TokAssign) {
				def, err := p.parseLiteral()
				if err != nil {
					return nil, err
				}
				pd.Default = def
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			c.Props = append(c.Props, pd)
		case TokFun:
			m, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			c.Methods = append(c.Methods, m)
		default:
			return nil, p.errf("expected 'prop' or 'fun' in class body, found %s",
				p.describe(p.cur()))
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return c, nil
}

// parseLiteral parses a constant literal (property defaults).
func (p *Parser) parseLiteral() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		return &IntLit{Val: t.Int, Pos: t.Pos}, nil
	case TokFloat:
		p.next()
		return &FloatLit{Val: t.Flt, Pos: t.Pos}, nil
	case TokString:
		p.next()
		return &StrLit{Val: t.Text, Pos: t.Pos}, nil
	case TokTrue, TokFalse:
		p.next()
		return &BoolLit{Val: t.Kind == TokTrue, Pos: t.Pos}, nil
	case TokNull:
		p.next()
		return &NullLit{Pos: t.Pos}, nil
	case TokMinus:
		p.next()
		inner, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		switch l := inner.(type) {
		case *IntLit:
			return &IntLit{Val: -l.Val, Pos: t.Pos}, nil
		case *FloatLit:
			return &FloatLit{Val: -l.Val, Pos: t.Pos}, nil
		}
		return nil, p.errf("bad negative literal")
	default:
		return nil, p.errf("expected literal, found %s", p.describe(t))
	}
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // '}'
	return stmts, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokForeach:
		return p.parseForeach()
	case TokReturn:
		t := p.next()
		if p.accept(TokSemi) {
			return &ReturnStmt{Pos: t.Pos}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: e, Pos: t.Pos}, nil
	case TokBreak:
		t := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case TokContinue:
		t := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseSimpleStmt parses an assignment or expression statement, without
// the trailing semicolon (for-loop headers reuse it).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.cur().Kind {
	case TokAssign:
		op = ""
	case TokPlusEq:
		op = "+"
	case TokMinusEq:
		op = "-"
	case TokStarEq:
		op = "*"
	case TokSlashEq:
		op = "/"
	case TokDotEq:
		op = "."
	default:
		return &ExprStmt{X: e}, nil
	}
	t := p.next()
	switch e.(type) {
	case *Ident, *Index, *Prop:
	default:
		return nil, &Error{File: p.file, Pos: t.Pos, Msg: "invalid assignment target"}
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: e, Op: op, RHS: rhs, Pos: t.Pos}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	p.next() // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	stmt := &IfStmt{Cond: cond, Then: then}
	if p.accept(TokElse) {
		if p.at(TokIf) {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			stmt.Else = []Stmt{elseIf}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			stmt.Else = els
		}
	}
	return stmt, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	p.next() // 'while'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	p.next() // 'for'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &ForStmt{}
	if !p.at(TokSemi) {
		init, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		f.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		step, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		f.Step = step
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseForeach() (Stmt, error) {
	p.next() // 'foreach'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	seq, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAs); err != nil {
		return nil, err
	}
	first, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	fe := &ForeachStmt{Seq: seq, Val: first.Text}
	if p.accept(TokFatArrow) {
		val, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		fe.Key = first.Text
		fe.Val = val.Text
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fe.Body = body
	return fe, nil
}

// Binary operator precedence, loosest first. Mirrors PHP closely.
var binaryPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNeq: 6, TokSame: 6, TokNSame: 6,
	TokLt: 7, TokLte: 7, TokGt: 7, TokGte: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9, TokDot: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

var binaryOpText = map[TokKind]string{
	TokOrOr: "||", TokAndAnd: "&&", TokPipe: "|", TokCaret: "^",
	TokAmp: "&", TokEq: "==", TokNeq: "!=", TokSame: "===",
	TokNSame: "!==", TokLt: "<", TokLte: "<=", TokGt: ">", TokGte: ">=",
	TokShl: "<<", TokShr: ">>", TokPlus: "+", TokMinus: "-",
	TokDot: ".", TokStar: "*", TokSlash: "/", TokPercent: "%",
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binaryPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1) // left-associative
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: binaryOpText[opTok.Kind], L: lhs, R: rhs, Pos: opTok.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x, Pos: t.Pos}, nil
	case TokNot:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x, Pos: t.Pos}, nil
	default:
		return p.parsePostfix()
	}
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			t := p.next()
			key, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &Index{Base: e, Key: key, Pos: t.Pos}
		case TokArrow:
			t := p.next()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if p.at(TokLParen) {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				e = &MethodCall{Recv: e, Name: name.Text, Args: args, Pos: t.Pos}
			} else {
				e = &Prop{Base: e, Name: name.Text, Pos: t.Pos}
			}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.at(TokRParen) {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		return &IntLit{Val: t.Int, Pos: t.Pos}, nil
	case TokFloat:
		p.next()
		return &FloatLit{Val: t.Flt, Pos: t.Pos}, nil
	case TokString:
		p.next()
		return &StrLit{Val: t.Text, Pos: t.Pos}, nil
	case TokTrue, TokFalse:
		p.next()
		return &BoolLit{Val: t.Kind == TokTrue, Pos: t.Pos}, nil
	case TokNull:
		p.next()
		return &NullLit{Pos: t.Pos}, nil
	case TokThis:
		p.next()
		return &ThisExpr{Pos: t.Pos}, nil
	case TokNew:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		var args []Expr
		if p.at(TokLParen) {
			args, err = p.parseArgs()
			if err != nil {
				return nil, err
			}
		}
		return &New{Class: name.Text, Args: args, Pos: t.Pos}, nil
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &Call{Name: t.Text, Args: args, Pos: t.Pos}, nil
		}
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokLBracket:
		return p.parseArrayLit()
	default:
		return nil, p.errf("expected expression, found %s", p.describe(t))
	}
}

func (p *Parser) parseArrayLit() (Expr, error) {
	t, err := p.expect(TokLBracket)
	if err != nil {
		return nil, err
	}
	lit := &ArrayLit{Pos: t.Pos}
	for !p.at(TokRBracket) {
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		entry := ArrayEntry{Val: first}
		if p.accept(TokFatArrow) {
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			entry.Key = first
			entry.Val = val
		}
		lit.Entries = append(lit.Entries, entry)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	// Keyed and unkeyed entries must not mix ambiguously after a keyed
	// entry... actually PHP allows mixing; we allow it too.
	return lit, nil
}
