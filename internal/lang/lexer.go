package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer turns MiniHack source text into tokens.
type Lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src; file is used in error messages.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

func (l *Lexer) errf(pos Pos, format string, args ...interface{}) error {
	return &Error{File: l.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

// skipTrivia consumes whitespace and comments.
func (l *Lexer) skipTrivia() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipTrivia(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case isDigit(c):
		return l.lexNumber(pos)

	case c == '"':
		return l.lexString(pos)
	}

	// Operators, longest match first.
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	three := ""
	if l.off+2 < len(l.src) {
		three = l.src[l.off : l.off+3]
	}
	emit := func(k TokKind, n int) (Token, error) {
		text := l.src[l.off : l.off+n]
		for i := 0; i < n; i++ {
			l.advance()
		}
		return Token{Kind: k, Text: text, Pos: pos}, nil
	}
	switch three {
	case "===":
		return emit(TokSame, 3)
	case "!==":
		return emit(TokNSame, 3)
	}
	switch two {
	case "->":
		return emit(TokArrow, 2)
	case "=>":
		return emit(TokFatArrow, 2)
	case "==":
		return emit(TokEq, 2)
	case "!=":
		return emit(TokNeq, 2)
	case "<=":
		return emit(TokLte, 2)
	case ">=":
		return emit(TokGte, 2)
	case "&&":
		return emit(TokAndAnd, 2)
	case "||":
		return emit(TokOrOr, 2)
	case "<<":
		return emit(TokShl, 2)
	case ">>":
		return emit(TokShr, 2)
	case "+=":
		return emit(TokPlusEq, 2)
	case "-=":
		return emit(TokMinusEq, 2)
	case "*=":
		return emit(TokStarEq, 2)
	case "/=":
		return emit(TokSlashEq, 2)
	case ".=":
		return emit(TokDotEq, 2)
	}
	switch c {
	case '(':
		return emit(TokLParen, 1)
	case ')':
		return emit(TokRParen, 1)
	case '{':
		return emit(TokLBrace, 1)
	case '}':
		return emit(TokRBrace, 1)
	case '[':
		return emit(TokLBracket, 1)
	case ']':
		return emit(TokRBracket, 1)
	case ',':
		return emit(TokComma, 1)
	case ';':
		return emit(TokSemi, 1)
	case '=':
		return emit(TokAssign, 1)
	case '+':
		return emit(TokPlus, 1)
	case '-':
		return emit(TokMinus, 1)
	case '*':
		return emit(TokStar, 1)
	case '/':
		return emit(TokSlash, 1)
	case '%':
		return emit(TokPercent, 1)
	case '.':
		return emit(TokDot, 1)
	case '<':
		return emit(TokLt, 1)
	case '>':
		return emit(TokGt, 1)
	case '!':
		return emit(TokNot, 1)
	case '&':
		return emit(TokAmp, 1)
	case '|':
		return emit(TokPipe, 1)
	case '^':
		return emit(TokCaret, 1)
	}
	return Token{}, l.errf(pos, "unexpected character %q", c)
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off = save // 'e' belongs to a following identifier
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, l.errf(pos, "bad float literal %q", text)
		}
		return Token{Kind: TokFloat, Text: text, Flt: f, Pos: pos}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		// Out-of-range integer literals become floats, like PHP.
		f, ferr := strconv.ParseFloat(text, 64)
		if ferr != nil {
			return Token{}, l.errf(pos, "bad int literal %q", text)
		}
		return Token{Kind: TokFloat, Text: text, Flt: f, Pos: pos}, nil
	}
	return Token{Kind: TokInt, Text: text, Int: i, Pos: pos}, nil
}

func (l *Lexer) lexString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, l.errf(pos, "unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		case '\\':
			if l.off >= len(l.src) {
				return Token{}, l.errf(pos, "unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			default:
				return Token{}, l.errf(pos, "unknown escape \\%c", e)
			}
		case '\n':
			return Token{}, l.errf(pos, "newline in string literal")
		default:
			b.WriteByte(c)
		}
	}
}

// LexAll tokenizes the whole input (testing convenience).
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
