package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// PrintFile renders a parsed file back to MiniHack source. The output
// is canonical rather than faithful to the original layout: one
// statement per line, uniform two-space indentation, and fully
// parenthesized binary expressions (so no precedence table is needed
// and the result re-parses to the same AST). The continuous-deployment
// source mutator (internal/release) edits ASTs and uses this printer
// to produce the next revision's sources.
func PrintFile(f *File) string {
	var b strings.Builder
	p := printer{b: &b}
	for _, c := range f.Classes {
		p.class(c)
	}
	for _, fn := range f.Funcs {
		p.fun(fn)
	}
	return b.String()
}

type printer struct {
	b      *strings.Builder
	indent int
}

func (p *printer) line(format string, args ...interface{}) {
	p.b.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) class(c *ClassDecl) {
	if c.Parent != "" {
		p.line("class %s extends %s {", c.Name, c.Parent)
	} else {
		p.line("class %s {", c.Name)
	}
	p.indent++
	for _, pd := range c.Props {
		if pd.Default != nil {
			p.line("prop %s = %s;", pd.Name, exprString(pd.Default))
		} else {
			p.line("prop %s;", pd.Name)
		}
	}
	for _, m := range c.Methods {
		p.fun(m)
	}
	p.indent--
	p.line("}")
}

func (p *printer) fun(fn *FuncDecl) {
	p.line("fun %s(%s) {", fn.Name, strings.Join(fn.Params, ", "))
	p.indent++
	p.stmts(fn.Body)
	p.indent--
	p.line("}")
}

func (p *printer) stmts(ss []Stmt) {
	for _, s := range ss {
		p.stmt(s)
	}
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *ExprStmt:
		p.line("%s;", exprString(st.X))
	case *AssignStmt:
		p.line("%s;", assignString(st))
	case *IfStmt:
		p.line("if (%s) {", exprString(st.Cond))
		p.indent++
		p.stmts(st.Then)
		p.indent--
		if len(st.Else) > 0 {
			p.line("} else {")
			p.indent++
			p.stmts(st.Else)
			p.indent--
		}
		p.line("}")
	case *WhileStmt:
		p.line("while (%s) {", exprString(st.Cond))
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line("}")
	case *ForStmt:
		init, step := "", ""
		if st.Init != nil {
			init = simpleString(st.Init)
		}
		cond := ""
		if st.Cond != nil {
			cond = exprString(st.Cond)
		}
		if st.Step != nil {
			step = simpleString(st.Step)
		}
		p.line("for (%s; %s; %s) {", init, cond, step)
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line("}")
	case *ForeachStmt:
		if st.Key != "" {
			p.line("foreach (%s as %s => %s) {", exprString(st.Seq), st.Key, st.Val)
		} else {
			p.line("foreach (%s as %s) {", exprString(st.Seq), st.Val)
		}
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if st.Value != nil {
			p.line("return %s;", exprString(st.Value))
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	default:
		panic(fmt.Sprintf("lang: unknown statement %T", s))
	}
}

// simpleString renders an assignment or expression statement without
// the trailing semicolon (for-loop headers).
func simpleString(s Stmt) string {
	switch st := s.(type) {
	case *ExprStmt:
		return exprString(st.X)
	case *AssignStmt:
		return assignString(st)
	default:
		panic(fmt.Sprintf("lang: %T is not a simple statement", s))
	}
}

func assignString(st *AssignStmt) string {
	return fmt.Sprintf("%s %s= %s", exprString(st.LHS), st.Op, exprString(st.RHS))
}

func exprString(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return strconv.FormatInt(x.Val, 10)
	case *FloatLit:
		s := strconv.FormatFloat(x.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep the token lexing as a float
		}
		return s
	case *StrLit:
		return quoteStr(x.Val)
	case *BoolLit:
		if x.Val {
			return "true"
		}
		return "false"
	case *NullLit:
		return "null"
	case *Ident:
		return x.Name
	case *ThisExpr:
		return "this"
	case *ArrayLit:
		parts := make([]string, len(x.Entries))
		for i, ent := range x.Entries {
			if ent.Key != nil {
				parts[i] = exprString(ent.Key) + " => " + exprString(ent.Val)
			} else {
				parts[i] = exprString(ent.Val)
			}
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Unary:
		return x.Op + "(" + exprString(x.X) + ")"
	case *Binary:
		return "(" + exprString(x.L) + " " + x.Op + " " + exprString(x.R) + ")"
	case *Call:
		return x.Name + argsString(x.Args)
	case *MethodCall:
		return exprString(x.Recv) + "->" + x.Name + argsString(x.Args)
	case *New:
		return "new " + x.Class + argsString(x.Args)
	case *Index:
		return exprString(x.Base) + "[" + exprString(x.Key) + "]"
	case *Prop:
		return exprString(x.Base) + "->" + x.Name
	default:
		panic(fmt.Sprintf("lang: unknown expression %T", e))
	}
}

func argsString(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = exprString(a)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func quoteStr(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case 0:
			b.WriteString(`\0`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
