package lang

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("t.mh", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseFunction(t *testing.T) {
	f := parseOK(t, `fun add(a, b) { return a + b; }`)
	if len(f.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	fn := f.Funcs[0]
	if fn.Name != "add" || len(fn.Params) != 2 {
		t.Fatalf("fn = %+v", fn)
	}
	ret, ok := fn.Body[0].(*ReturnStmt)
	if !ok {
		t.Fatalf("body[0] = %T", fn.Body[0])
	}
	bin, ok := ret.Value.(*Binary)
	if !ok || bin.Op != "+" {
		t.Fatalf("return value = %#v", ret.Value)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := parseOK(t, `fun f() { return 1 + 2 * 3 == 7 && true; }`)
	ret := f.Funcs[0].Body[0].(*ReturnStmt)
	and, ok := ret.Value.(*Binary)
	if !ok || and.Op != "&&" {
		t.Fatalf("top = %#v", ret.Value)
	}
	eq, ok := and.L.(*Binary)
	if !ok || eq.Op != "==" {
		t.Fatalf("and.L = %#v", and.L)
	}
	add, ok := eq.L.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("eq.L = %#v", eq.L)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("add.R = %#v", add.R)
	}
}

func TestParseLeftAssociativity(t *testing.T) {
	f := parseOK(t, `fun f() { return 10 - 3 - 2; }`)
	ret := f.Funcs[0].Body[0].(*ReturnStmt)
	outer := ret.Value.(*Binary)
	inner, ok := outer.L.(*Binary)
	if !ok || inner.Op != "-" {
		t.Fatalf("left assoc broken: %#v", ret.Value)
	}
	if outer.R.(*IntLit).Val != 2 || inner.R.(*IntLit).Val != 3 {
		t.Fatal("operand order wrong")
	}
}

func TestParseUnary(t *testing.T) {
	f := parseOK(t, `fun f(x) { return -x * !x; }`)
	ret := f.Funcs[0].Body[0].(*ReturnStmt)
	mul := ret.Value.(*Binary)
	if _, ok := mul.L.(*Unary); !ok {
		t.Fatalf("mul.L = %#v", mul.L)
	}
	if u, ok := mul.R.(*Unary); !ok || u.Op != "!" {
		t.Fatalf("mul.R = %#v", mul.R)
	}
}

func TestParseClass(t *testing.T) {
	f := parseOK(t, `
class Point extends Base {
  prop x;
  prop y = 5;
  prop name = "origin";
  fun mag() { return sqrt(this->x * this->x + this->y * this->y); }
}`)
	if len(f.Classes) != 1 {
		t.Fatalf("classes = %d", len(f.Classes))
	}
	c := f.Classes[0]
	if c.Name != "Point" || c.Parent != "Base" {
		t.Fatalf("class = %+v", c)
	}
	if len(c.Props) != 3 || c.Props[1].Name != "y" {
		t.Fatalf("props = %+v", c.Props)
	}
	if c.Props[0].Default != nil {
		t.Fatal("x should have no default")
	}
	if c.Props[1].Default.(*IntLit).Val != 5 {
		t.Fatal("y default")
	}
	if len(c.Methods) != 1 || c.Methods[0].Name != "mag" {
		t.Fatalf("methods = %+v", c.Methods)
	}
	// this->x inside the method.
	ret := c.Methods[0].Body[0].(*ReturnStmt)
	call := ret.Value.(*Call)
	if call.Name != "sqrt" {
		t.Fatalf("call = %+v", call)
	}
}

func TestParsePostfixChain(t *testing.T) {
	f := parseOK(t, `fun f(o) { return o->items[0]->total(1, 2); }`)
	ret := f.Funcs[0].Body[0].(*ReturnStmt)
	mc, ok := ret.Value.(*MethodCall)
	if !ok || mc.Name != "total" || len(mc.Args) != 2 {
		t.Fatalf("top = %#v", ret.Value)
	}
	idx, ok := mc.Recv.(*Index)
	if !ok {
		t.Fatalf("recv = %#v", mc.Recv)
	}
	prop, ok := idx.Base.(*Prop)
	if !ok || prop.Name != "items" {
		t.Fatalf("base = %#v", idx.Base)
	}
}

func TestParseStatements(t *testing.T) {
	f := parseOK(t, `
fun f(n) {
  total = 0;
  i = 0;
  while (i < n) {
    if (i % 2 == 0) { total += i; } else if (i == 7) { break; } else { total -= 1; }
    i = i + 1;
  }
  for (j = 0; j < 3; j += 1) { continue; }
  foreach ([1, 2] as k => v) { total += v; }
  foreach ([1, 2] as v) { total .= v; }
  return total;
}`)
	body := f.Funcs[0].Body
	if len(body) != 7 {
		t.Fatalf("stmts = %d", len(body))
	}
	w := body[2].(*WhileStmt)
	ifs := w.Body[0].(*IfStmt)
	if len(ifs.Else) != 1 {
		t.Fatal("else-if chain")
	}
	inner := ifs.Else[0].(*IfStmt)
	if len(inner.Else) != 1 {
		t.Fatal("final else")
	}
	fs := body[3].(*ForStmt)
	if fs.Init == nil || fs.Cond == nil || fs.Step == nil {
		t.Fatal("for header")
	}
	fe := body[4].(*ForeachStmt)
	if fe.Key != "k" || fe.Val != "v" {
		t.Fatalf("foreach = %+v", fe)
	}
	fe2 := body[5].(*ForeachStmt)
	if fe2.Key != "" || fe2.Val != "v" {
		t.Fatalf("foreach = %+v", fe2)
	}
}

func TestParseCompoundAssignTargets(t *testing.T) {
	f := parseOK(t, `fun f(o, a) { o->cnt += 1; a[0] *= 2; }`)
	s0 := f.Funcs[0].Body[0].(*AssignStmt)
	if s0.Op != "+" {
		t.Fatalf("op = %q", s0.Op)
	}
	if _, ok := s0.LHS.(*Prop); !ok {
		t.Fatalf("lhs = %#v", s0.LHS)
	}
	s1 := f.Funcs[0].Body[1].(*AssignStmt)
	if _, ok := s1.LHS.(*Index); !ok {
		t.Fatalf("lhs = %#v", s1.LHS)
	}
}

func TestParseArrayLiterals(t *testing.T) {
	f := parseOK(t, `fun f() { return [1, "k" => 2, 3]; }`)
	ret := f.Funcs[0].Body[0].(*ReturnStmt)
	lit := ret.Value.(*ArrayLit)
	if len(lit.Entries) != 3 {
		t.Fatalf("entries = %d", len(lit.Entries))
	}
	if lit.Entries[0].Key != nil || lit.Entries[1].Key == nil || lit.Entries[2].Key != nil {
		t.Fatal("key placement")
	}
}

func TestParseNew(t *testing.T) {
	f := parseOK(t, `fun f() { p = new Point(1, 2); q = new Empty; return p; }`)
	a := f.Funcs[0].Body[0].(*AssignStmt)
	n := a.RHS.(*New)
	if n.Class != "Point" || len(n.Args) != 2 {
		t.Fatalf("new = %+v", n)
	}
	b := f.Funcs[0].Body[1].(*AssignStmt)
	if len(b.RHS.(*New).Args) != 0 {
		t.Fatal("argless new")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`fun f( { }`, "expected"},
		{`fun f() { return 1 }`, "';'"},
		{`class C prop x; }`, "'{'"},
		{`fun f() { 1 = 2; }`, "assignment target"},
		{`fun f(a, a) { }`, "duplicate parameter"},
		{`fun f() { if 1 { } }`, "'('"},
		{`xyz`, "top level"},
		{`fun f() { return *; }`, "expression"},
		{`fun f() {`, "EOF"},
		{`class C { prop x = [1]; }`, "literal"},
	}
	for _, c := range cases {
		_, err := Parse("t.mh", c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q missing %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseNegativeDefaults(t *testing.T) {
	f := parseOK(t, `class C { prop a = -5; prop b = -2.5; }`)
	c := f.Classes[0]
	if c.Props[0].Default.(*IntLit).Val != -5 {
		t.Fatal("negative int default")
	}
	if c.Props[1].Default.(*FloatLit).Val != -2.5 {
		t.Fatal("negative float default")
	}
}

func TestParseGrouping(t *testing.T) {
	f := parseOK(t, `fun f() { return (1 + 2) * 3; }`)
	ret := f.Funcs[0].Body[0].(*ReturnStmt)
	mul := ret.Value.(*Binary)
	if mul.Op != "*" {
		t.Fatalf("top = %v", mul.Op)
	}
	if add, ok := mul.L.(*Binary); !ok || add.Op != "+" {
		t.Fatalf("grouping lost: %#v", mul.L)
	}
}
