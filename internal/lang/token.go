// Package lang implements the MiniHack front end: lexer, AST and
// recursive-descent parser. MiniHack is a deliberately small PHP/Hack
// dialect — dynamically typed, class-based, with observable property
// order — just rich enough that the VM's profile-guided machinery has
// real dynamic behaviour to specialize.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString

	// Keywords.
	TokFun
	TokClass
	TokExtends
	TokProp
	TokIf
	TokElse
	TokWhile
	TokFor
	TokForeach
	TokAs
	TokReturn
	TokBreak
	TokContinue
	TokNew
	TokThis
	TokTrue
	TokFalse
	TokNull

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokComma    // ,
	TokSemi     // ;
	TokArrow    // ->
	TokFatArrow // =>
	TokAssign   // =
	TokPlusEq   // +=
	TokMinusEq  // -=
	TokStarEq   // *=
	TokSlashEq  // /=
	TokDotEq    // .=
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokDot      // . (concat)
	TokEq       // ==
	TokNeq      // !=
	TokSame     // ===
	TokNSame    // !==
	TokLt       // <
	TokLte      // <=
	TokGt       // >
	TokGte      // >=
	TokAndAnd   // &&
	TokOrOr     // ||
	TokNot      // !
	TokAmp      // &
	TokPipe     // |
	TokCaret    // ^
	TokShl      // <<
	TokShr      // >>
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "int literal",
	TokFloat: "float literal", TokString: "string literal",
	TokFun: "'fun'", TokClass: "'class'", TokExtends: "'extends'",
	TokProp: "'prop'", TokIf: "'if'", TokElse: "'else'",
	TokWhile: "'while'", TokFor: "'for'", TokForeach: "'foreach'",
	TokAs: "'as'", TokReturn: "'return'", TokBreak: "'break'",
	TokContinue: "'continue'", TokNew: "'new'", TokThis: "'this'",
	TokTrue: "'true'", TokFalse: "'false'", TokNull: "'null'",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'",
	TokRBrace: "'}'", TokLBracket: "'['", TokRBracket: "']'",
	TokComma: "','", TokSemi: "';'", TokArrow: "'->'",
	TokFatArrow: "'=>'", TokAssign: "'='",
	TokPlusEq: "'+='", TokMinusEq: "'-='", TokStarEq: "'*='",
	TokSlashEq: "'/='", TokDotEq: "'.='",
	TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'", TokSlash: "'/'",
	TokPercent: "'%'", TokDot: "'.'", TokEq: "'=='", TokNeq: "'!='",
	TokSame: "'==='", TokNSame: "'!=='", TokLt: "'<'", TokLte: "'<='",
	TokGt: "'>'", TokGte: "'>='", TokAndAnd: "'&&'", TokOrOr: "'||'",
	TokNot: "'!'", TokAmp: "'&'", TokPipe: "'|'", TokCaret: "'^'",
	TokShl: "'<<'", TokShr: "'>>'",
}

// String returns a human-readable token-kind name.
func (k TokKind) String() string {
	if n, ok := tokNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokKind{
	"fun": TokFun, "class": TokClass, "extends": TokExtends,
	"prop": TokProp, "if": TokIf, "else": TokElse, "while": TokWhile,
	"for": TokFor, "foreach": TokForeach, "as": TokAs,
	"return": TokReturn, "break": TokBreak, "continue": TokContinue,
	"new": TokNew, "this": TokThis, "true": TokTrue, "false": TokFalse,
	"null": TokNull,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexed token.
type Token struct {
	Kind TokKind
	Text string // raw text for idents; decoded value for strings
	Int  int64  // for TokInt
	Flt  float64
	Pos  Pos
}

// Error is a front-end error with a source position.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}
