// Package multistore builds the region → global profile-store
// hierarchy on top of the chunked transport: per-(region, bucket)
// store shards with K-way replication inside each region,
// deterministic consumer failover down the replica list, and
// cross-region package propagation over lossy long-haul netsim links.
// It is the planet-scale production shape the paper's §VI single-store
// design grows into: every region serves its consumers from local
// replicas, long-haul links only carry propagation traffic, and a
// consumer only falls back to no-Jump-Start after the whole replica
// list has failed it (recorded as a distinct fallback reason).
//
// Determinism contract: the hierarchy owns no clock and no PRNG state
// beyond a fork counter — every operation takes the caller's virtual
// time and draws from streams forked off the configured seed in call
// order. Called sequentially (the fleet's merge phase), a fixed (seed,
// fault schedule) pair reproduces the exact same RPC timeline.
package multistore

import (
	"errors"
	"fmt"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/netsim"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

// Config parameterizes the hierarchy.
type Config struct {
	// Regions is the number of data-center regions (>= 1).
	Regions int
	// NodesPerRegion is how many store nodes shard each region's
	// buckets (>= 1). A bucket's primary shard is bucket mod
	// NodesPerRegion.
	NodesPerRegion int
	// Replicas is the in-region replication factor K: a published
	// package lands on the primary shard and the K-1 following nodes
	// (capped at NodesPerRegion).
	Replicas int
	// ChunkSize is the transport chunk size (<= 0 selects the
	// transport default).
	ChunkSize int
	// Intra configures the healthy in-region links ("intra:r<R>/n<N>"
	// labels); Inter configures the long-haul inter-region links
	// ("inter:r<SRC>-r<DST>" labels), where brownouts and partitions
	// are scheduled.
	Intra netsim.Config
	Inter netsim.Config
	// Client shapes the per-leg transport clients (retries, backoff,
	// budgets). Its Seed is ignored; leg streams fork off Seed below.
	Client transport.ClientConfig
	// Seed roots every stream the hierarchy forks.
	Seed uint64
}

// withDefaults normalizes the shape parameters.
func (c Config) withDefaults() Config {
	if c.Regions < 1 {
		c.Regions = 1
	}
	if c.NodesPerRegion < 1 {
		c.NodesPerRegion = 1
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Replicas > c.NodesPerRegion {
		c.Replicas = c.NodesPerRegion
	}
	return c
}

// Entry is one logical package in the hierarchy's registry. The same
// payload lives on several nodes (replicas in the origin region, plus
// any regions propagation has reached), under different node-local
// package ids; the entry ties them together.
type Entry struct {
	// ID is the logical package id (registry sequence number).
	ID int
	// Origin is the region the package was published in.
	Origin int
	// Bucket is the semantic bucket.
	Bucket int
	// Revision is the build checksum stamp.
	Revision uint64
	// Payload is the serialized profile package.
	Payload []byte

	// nodeIDs maps (region, node) to the node-local PackageID.
	nodeIDs map[nodeKey]jumpstart.PackageID
	// regions marks the regions holding replicas of this entry.
	regions map[int]bool
}

// InRegion reports whether the entry has replicas in region r.
func (e *Entry) InRegion(r int) bool { return e.regions[r] }

type nodeKey struct{ region, node int }

// node is one store shard: a package store fronted by a transport
// server.
type node struct {
	store *jumpstart.Store
	srv   *transport.Server
}

// Hierarchy is the multi-region store. Not safe for concurrent use:
// callers (the fleet's sequential merge phase, the CLIs) serialize.
type Hierarchy struct {
	cfg      Config
	ccfg     transport.ClientConfig
	nodes    [][]*node // [region][node]
	intraFab *netsim.Fabric
	interFab *netsim.Fabric

	entries []*Entry
	byNode  map[nodeKey]map[jumpstart.PackageID]*Entry

	seq         uint64 // stream fork counter
	lastFailure string

	tel *telemetry.Set
	// spanParent is the enclosing causal span every replica.leg span
	// links under (0 = root); the booting consumer sets it per boot.
	spanParent uint64
}

// New builds the hierarchy with empty stores on every node.
func New(cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	// Normalize the client template once, so the long-haul transfer
	// loop sees the same effective budget/timeout the per-leg clients
	// use.
	ccfg := cfg.Client
	d := transport.DefaultClientConfig()
	if ccfg.RPCTimeout <= 0 {
		ccfg.RPCTimeout = d.RPCTimeout
	}
	if ccfg.Budget <= 0 {
		ccfg.Budget = d.Budget
	}
	if ccfg.BackoffBase <= 0 {
		ccfg.BackoffBase = d.BackoffBase
	}
	if ccfg.BackoffCap <= 0 {
		ccfg.BackoffCap = d.BackoffCap
	}
	h := &Hierarchy{
		cfg:      cfg,
		ccfg:     ccfg,
		intraFab: netsim.NewFabric(cfg.Intra),
		interFab: netsim.NewFabric(cfg.Inter),
		byNode:   map[nodeKey]map[jumpstart.PackageID]*Entry{},
	}
	h.nodes = make([][]*node, cfg.Regions)
	for r := range h.nodes {
		h.nodes[r] = make([]*node, cfg.NodesPerRegion)
		for n := range h.nodes[r] {
			st := jumpstart.NewStore()
			h.nodes[r][n] = &node{store: st, srv: transport.NewServer(st, cfg.ChunkSize)}
		}
	}
	return h
}

// SetTelemetry installs the observation set (may be nil); telemetry
// never alters behavior.
func (h *Hierarchy) SetTelemetry(tel *telemetry.Set) { h.tel = tel }

// SetSpanParent links subsequent Fetch replica.leg spans under the
// given span ID (0 detaches them back to roots). The hierarchy is
// shared across consumers, so callers set it per boot.
func (h *Hierarchy) SetSpanParent(id uint64) { h.spanParent = id }

// Regions returns the configured region count.
func (h *Hierarchy) Regions() int { return h.cfg.Regions }

// NodeStore exposes one shard's backing store (tests and tooling).
func (h *Hierarchy) NodeStore(region, n int) *jumpstart.Store {
	return h.nodes[region][n].store
}

// Entries returns the logical registry in publish order.
func (h *Hierarchy) Entries() []*Entry { return h.entries }

// ReplicaSet returns the node indices holding a bucket's replicas, in
// failover order (primary first).
func (h *Hierarchy) ReplicaSet(bucket int) []int {
	out := make([]int, h.cfg.Replicas)
	primary := bucket % h.cfg.NodesPerRegion
	for i := range out {
		out[i] = (primary + i) % h.cfg.NodesPerRegion
	}
	return out
}

// intraLink labels a consumer/seeder leg to one in-region node.
func intraLink(region, n int) string { return fmt.Sprintf("intra:r%d/n%d", region, n) }

// InterLink labels the long-haul link from region src to region dst —
// the label prefix "inter:" is what fault schedules target to degrade
// cross-region propagation while in-region traffic stays healthy.
func InterLink(src, dst int) string { return fmt.Sprintf("inter:r%d-r%d", src, dst) }

// fork returns the next derived stream seed.
func (h *Hierarchy) fork(salt uint64) uint64 {
	s := workload.Fork(h.cfg.Seed, salt+h.seq)
	h.seq++
	return s
}

// legClient builds a fresh retrying client to one in-region node, on a
// private virtual clock starting at the caller's time.
func (h *Hierarchy) legClient(region, n int, now float64) (*transport.Client, *netsim.VirtualClock) {
	clock := netsim.NewVirtualClock(now)
	ccfg := h.ccfg
	ccfg.Seed = h.fork(0x3a110000)
	conn := transport.NewSimConn(h.nodes[region][n].srv, h.intraFab, intraLink(region, n),
		clock, netsim.NewStream(h.fork(0x3a120000)), ccfg.RPCTimeout)
	cli := transport.NewClient(conn, clock, ccfg)
	cli.SetTelemetry(h.tel)
	return cli, clock
}

// record indexes a node-local replica of e.
func (h *Hierarchy) record(e *Entry, region, n int, id jumpstart.PackageID) {
	k := nodeKey{region, n}
	e.nodeIDs[k] = id
	m := h.byNode[k]
	if m == nil {
		m = map[jumpstart.PackageID]*Entry{}
		h.byNode[k] = m
	}
	m[id] = e
	e.regions[region] = true
}

// newEntry appends a logical registry entry.
func (h *Hierarchy) newEntry(region, bucket int, revision uint64, payload []byte) *Entry {
	e := &Entry{
		ID:       len(h.entries),
		Origin:   region,
		Bucket:   bucket,
		Revision: revision,
		Payload:  payload,
		nodeIDs:  map[nodeKey]jumpstart.PackageID{},
		regions:  map[int]bool{},
	}
	h.entries = append(h.entries, e)
	return e
}

// Publish uploads a package into its origin region: a networked upload
// to the bucket's primary shard over the intra-region fabric (with the
// client's full retry/budget machinery), then server-side replication
// onto the remaining K-1 replicas (direct, in-region — modeled as not
// consuming client draws). The entry starts origin-region-only;
// Propagate carries it across the long-haul links.
func (h *Hierarchy) Publish(region, bucket int, revision uint64, payload []byte, now float64) (*Entry, error) {
	set := h.ReplicaSet(bucket)
	cli, _ := h.legClient(region, set[0], now)
	id, err := cli.Publish(region, bucket, revision, payload)
	if err != nil {
		h.tel.Counter("multistore.publish_fail_total").Inc()
		return nil, err
	}
	e := h.newEntry(region, bucket, revision, payload)
	h.record(e, region, set[0], id)
	for _, n := range set[1:] {
		h.record(e, region, n, h.nodes[region][n].store.PublishRevision(region, bucket, payload, revision))
	}
	h.tel.Counter("multistore.publish_ok_total").Inc()
	return e, nil
}

// PublishDirect places a package on the origin region's replicas
// without touching the network (the remap carry-over path, which
// republishes translated packages store-side at a revision push).
func (h *Hierarchy) PublishDirect(region, bucket int, revision uint64, payload []byte) *Entry {
	e := h.newEntry(region, bucket, revision, payload)
	for _, n := range h.ReplicaSet(bucket) {
		h.record(e, region, n, h.nodes[region][n].store.PublishRevision(region, bucket, payload, revision))
	}
	return e
}

// FetchResult describes a completed hierarchical fetch.
type FetchResult struct {
	// Entry is the logical package the consumer received.
	Entry *Entry
	// Node is the in-region node index that served it.
	Node int
	// Failovers counts replicas that failed before the serving one —
	// zero on the happy path.
	Failovers int
	// Elapsed is the total virtual time the fetch cost, across every
	// replica leg.
	Elapsed float64
}

// ErrExhausted means every replica in the consumer's region failed the
// fetch; the recorded failure reason distinguishes this from a
// single-store fetch failure.
var ErrExhausted = errors.New("multistore: replica failover exhausted")

// FetchFailure explains the most recent failed Fetch (empty after a
// success) — the consumer's FallbackReason.
func (h *Hierarchy) FetchFailure() string { return h.lastFailure }

// Fetch downloads one package for (region, bucket), walking the
// bucket's replica list in deterministic failover order: each leg is a
// full transport fetch (retries, backoff, per-leg budget) against one
// node, and a failed leg falls through to the next replica. The same
// caller-supplied rnd drives every leg's manifest pick, so replicas —
// which hold identical content — agree on the candidate, and a replay
// at any worker count reproduces the same walk. exclude lists logical
// entries the consumer already failed on (translated to each node's
// local ids).
func (h *Hierarchy) Fetch(region, bucket int, rnd uint64, exclude []*Entry, now float64) (*FetchResult, error) {
	h.lastFailure = ""
	res := &FetchResult{Node: -1}
	t := now
	legReason := "no replicas configured"
	for legIdx, n := range h.ReplicaSet(bucket) {
		var legExclude []jumpstart.PackageID
		for _, e := range exclude {
			if id, ok := e.nodeIDs[nodeKey{region, n}]; ok {
				legExclude = append(legExclude, id)
			}
		}
		// Each failover leg is one span; the leg client's
		// transport.fetch span (and its RPC/backoff children) nest
		// under it.
		legSpan := h.tel.BeginSpan()
		legStart := t
		cli, clock := h.legClient(region, n, t)
		cli.SetSpanParent(legSpan)
		fr, err := cli.Fetch(region, bucket, rnd, legExclude)
		t = clock.Now()
		h.tel.EndSpan(legSpan, h.spanParent, legStart, t, "multistore",
			fmt.Sprintf("replica.leg[%d]", legIdx),
			telemetry.I("node", int64(n)),
			telemetry.B("ok", err == nil))
		if err == nil {
			e := h.byNode[nodeKey{region, n}][fr.ID]
			if e == nil {
				// A replica served an id the registry does not know —
				// treat as a failed leg rather than crash the consumer.
				legReason = "unregistered package"
				res.Failovers++
				continue
			}
			res.Entry = e
			res.Node = n
			res.Elapsed = t - now
			h.tel.Counter("multistore.fetch_ok_total").Inc()
			return res, nil
		}
		legReason = cli.PickFailure()
		if legReason == "" {
			legReason = err.Error()
		}
		res.Failovers++
		h.tel.Counter("multistore.fetch_failover_total").Inc()
	}
	res.Elapsed = t - now
	h.lastFailure = "replica failover exhausted: " + legReason
	h.tel.Counter("multistore.fetch_exhausted_total").Inc()
	return res, fmt.Errorf("%w: %s", ErrExhausted, legReason)
}

// PropagateStats summarizes one propagation round.
type PropagateStats struct {
	// Attempted counts (entry, destination region) transfers tried.
	Attempted int
	// Transferred counts transfers that completed and were replicated
	// into the destination region.
	Transferred int
	// Failed counts transfers the long-haul network defeated this
	// round; they retry on the next cadence.
	Failed int
}

// Propagate runs one cross-region replication round at virtual time
// now: every entry not yet present in some region is pushed over the
// origin→destination long-haul link as a chunked transfer with
// resume-on-retry under the client budget. Lossy or partitioned
// long-haul links fail transfers — the entry stays pending and is
// retried on the next round, so a healed network converges.
func (h *Hierarchy) Propagate(now float64) PropagateStats {
	var stats PropagateStats
	for _, e := range h.entries {
		for dst := 0; dst < h.cfg.Regions; dst++ {
			if e.regions[dst] {
				continue
			}
			stats.Attempted++
			if !h.transfer(e, dst, now) {
				stats.Failed++
				continue
			}
			// Landed: replicate into the destination region's shard set
			// under the entry's bucket (server-side, like in-region
			// replication).
			for _, n := range h.ReplicaSet(e.Bucket) {
				h.record(e, dst, n, h.nodes[dst][n].store.PublishRevision(dst, e.Bucket, e.Payload, e.Revision))
			}
			stats.Transferred++
		}
	}
	if stats.Attempted > 0 {
		h.tel.Event(now, "multistore", "propagate",
			telemetry.I("attempted", int64(stats.Attempted)),
			telemetry.I("transferred", int64(stats.Transferred)),
			telemetry.I("failed", int64(stats.Failed)))
	}
	return stats
}

// transfer moves one entry's payload over a long-haul link: a chunked
// push with per-RPC timeouts and resume (delivered chunks are not
// resent) under the client budget. Returns false when the budget runs
// out first.
func (h *Hierarchy) transfer(e *Entry, dst int, now float64) bool {
	link := InterLink(e.Origin, dst)
	clock := netsim.NewVirtualClock(now)
	stream := netsim.NewStream(h.fork(0x5e9d0000))
	ccfg := h.ccfg
	deadline := now + ccfg.Budget

	chunkSize := h.cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = transport.DefaultChunkSize
	}
	chunks := (len(e.Payload) + chunkSize - 1) / chunkSize
	if chunks < 1 {
		chunks = 1
	}
	sent := 0
	for sent < chunks {
		if clock.Now() >= deadline {
			h.tel.Counter("multistore.transfer_fail_total").Inc()
			return false
		}
		v := h.interFab.Sample(link, clock.Now(), stream)
		switch {
		case v.Drop || v.Latency >= ccfg.RPCTimeout:
			clock.Sleep(ccfg.RPCTimeout)
		case v.Err:
			clock.Sleep(v.Latency)
		default:
			clock.Sleep(v.Latency)
			sent++
		}
	}
	h.tel.Counter("multistore.transfer_ok_total").Inc()
	return true
}

// Wipe clears every node's store and the logical registry (the fleet
// calls it when a new revision resets the store between deployments).
// The stream fork counter is not reset: draw sequences stay unique
// across the hierarchy's lifetime.
func (h *Hierarchy) Wipe() {
	for r := range h.nodes {
		for n := range h.nodes[r] {
			st := jumpstart.NewStore()
			h.nodes[r][n] = &node{store: st, srv: transport.NewServer(st, h.cfg.ChunkSize)}
		}
	}
	h.entries = nil
	h.byNode = map[nodeKey]map[jumpstart.PackageID]*Entry{}
	h.lastFailure = ""
}
