package multistore

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/netsim"
	"jumpstart/internal/workload"
)

// payload builds deterministic pseudo-package bytes.
func payload(n int, seed uint64) []byte {
	s := netsim.NewStream(workload.Fork(seed, 0))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(s.Uint64())
	}
	return out
}

func healthyConfig() Config {
	return Config{
		Regions:        2,
		NodesPerRegion: 3,
		Replicas:       2,
		ChunkSize:      1024,
		Client:         transport.ClientConfig{Budget: 20, RPCTimeout: 1},
		Seed:           11,
	}
}

// TestPublishReplicatesWithinRegion: a publish lands on the bucket's
// primary shard and the K-1 following nodes, nowhere else, and stays
// origin-region-only until propagation.
func TestPublishReplicatesWithinRegion(t *testing.T) {
	h := New(healthyConfig())
	data := payload(3_000, 1)
	e, err := h.Publish(0, 4, 0xabc, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	set := h.ReplicaSet(4) // bucket 4 % 3 nodes = primary 1, replica 2
	if set[0] != 1 || set[1] != 2 {
		t.Fatalf("replica set = %v", set)
	}
	for n := 0; n < 3; n++ {
		want := 0
		if n == 1 || n == 2 {
			want = 1
		}
		if got := h.NodeStore(0, n).Count(0, 4); got != want {
			t.Fatalf("region 0 node %d holds %d packages, want %d", n, got, want)
		}
		if got := h.NodeStore(1, n).Count(1, 4); got != 0 {
			t.Fatalf("region 1 node %d holds packages before propagation", n)
		}
	}
	if !e.InRegion(0) || e.InRegion(1) {
		t.Fatalf("entry regions wrong: r0=%v r1=%v", e.InRegion(0), e.InRegion(1))
	}
}

// TestFetchHealthyNoFailover: with healthy intra links the fetch is
// served by the primary with zero failovers, returning the logical
// entry.
func TestFetchHealthyNoFailover(t *testing.T) {
	h := New(healthyConfig())
	data := payload(2_000, 2)
	e, err := h.Publish(0, 0, 7, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Fetch(0, 0, 12345, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry != e || res.Failovers != 0 || res.Node != h.ReplicaSet(0)[0] {
		t.Fatalf("res = %+v", res)
	}
	if !bytes.Equal(res.Entry.Payload, data) {
		t.Fatal("payload mismatch")
	}
}

// TestFetchFailsOverToReplica: partitioning the primary's intra link
// pushes the consumer down the replica list; the fetch succeeds with
// one recorded failover.
func TestFetchFailsOverToReplica(t *testing.T) {
	cfg := healthyConfig()
	primary := 0 % cfg.NodesPerRegion
	cfg.Intra.Faults = []netsim.Fault{netsim.Partition(0, 1e9, intraLink(0, primary))}
	h := New(cfg)
	e, err := h.Publish(0, 0, 7, payload(2_000, 3), 0)
	if err == nil {
		// Publish goes through the primary too; under the partition it
		// must fail instead.
		t.Fatal("publish through partitioned primary succeeded")
	}
	_ = e
	// Place the package directly (carry-over path) so fetch has
	// something to fail over to.
	e2 := h.PublishDirect(0, 0, 7, payload(2_000, 3))
	res, err := h.Fetch(0, 0, 99, nil, 0)
	if err != nil {
		t.Fatalf("failover fetch died: %v", err)
	}
	if res.Entry != e2 || res.Failovers != 1 {
		t.Fatalf("res = %+v, want 1 failover onto the replica", res)
	}
	if res.Node == primary {
		t.Fatal("served by the partitioned primary")
	}
}

// TestFetchExhaustedReason: partitioning the whole region's intra
// links exhausts the replica list; the error is ErrExhausted and the
// recorded reason is the distinct failover-exhausted string.
func TestFetchExhaustedReason(t *testing.T) {
	cfg := healthyConfig()
	cfg.Client.Budget = 5
	cfg.Intra.Faults = []netsim.Fault{netsim.PartitionPrefix(0, 1e9, "intra:r0/")}
	h := New(cfg)
	h.PublishDirect(0, 0, 7, payload(1_000, 4))
	res, err := h.Fetch(0, 0, 5, nil, 0)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if res.Failovers != cfg.Replicas {
		t.Fatalf("failovers = %d, want %d", res.Failovers, cfg.Replicas)
	}
	reason := h.FetchFailure()
	if !strings.HasPrefix(reason, "replica failover exhausted: ") {
		t.Fatalf("reason = %q", reason)
	}
	// Both legs burned their budget: elapsed covers the full walk.
	if res.Elapsed < 2*5-1e-9 {
		t.Fatalf("elapsed = %v, want both replica budgets", res.Elapsed)
	}
	// A later success clears the failure.
	cfgOK := healthyConfig()
	h2 := New(cfgOK)
	h2.PublishDirect(0, 0, 7, payload(1_000, 4))
	if _, err := h2.Fetch(0, 0, 5, nil, 0); err != nil || h2.FetchFailure() != "" {
		t.Fatalf("healthy fetch: err=%v failure=%q", err, h2.FetchFailure())
	}
}

// TestFetchExcludesLogicalEntries: excluding a logical entry excludes
// its node-local ids on every replica leg.
func TestFetchExcludesLogicalEntries(t *testing.T) {
	h := New(healthyConfig())
	e1, err := h.Publish(0, 0, 7, payload(1_000, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := h.Publish(0, 0, 7, payload(1_000, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	for rnd := uint64(1); rnd < 2000; rnd += 97 {
		res, err := h.Fetch(0, 0, rnd, []*Entry{e1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Entry != e2 {
			t.Fatalf("excluded entry served (rnd=%d)", rnd)
		}
	}
	// Excluding everything exhausts the walk with the distinct reason.
	if _, err := h.Fetch(0, 0, 1, []*Entry{e1, e2}, 0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(h.FetchFailure(), "no package available") {
		t.Fatalf("reason = %q", h.FetchFailure())
	}
}

// TestPropagateAcrossRegions: a healthy long-haul network carries the
// entry into the other region on the first round; consumers there can
// then fetch it locally.
func TestPropagateAcrossRegions(t *testing.T) {
	h := New(healthyConfig())
	data := payload(4_000, 7)
	e, err := h.Publish(0, 2, 9, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	stats := h.Propagate(0)
	if stats.Attempted != 1 || stats.Transferred != 1 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !e.InRegion(1) {
		t.Fatal("entry not marked in region 1")
	}
	res, err := h.Fetch(1, 2, 55, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry != e || !bytes.Equal(res.Entry.Payload, data) {
		t.Fatalf("cross-region fetch res = %+v", res)
	}
	// Idempotent: nothing left to move.
	if again := h.Propagate(1); again.Attempted != 0 {
		t.Fatalf("second round attempted %d", again.Attempted)
	}
}

// TestPropagateRetriesThroughPartition: while the inter-region links
// are partitioned the transfer fails and the entry stays pending; once
// the partition lifts, the next round converges. Intra-region fetches
// keep working throughout (the fault is prefix-scoped to "inter:").
func TestPropagateRetriesThroughPartition(t *testing.T) {
	cfg := healthyConfig()
	cfg.Client.Budget = 5
	cfg.Inter.Faults = []netsim.Fault{netsim.PartitionPrefix(0, 100, "inter:")}
	h := New(cfg)
	e, err := h.Publish(0, 0, 9, payload(2_000, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats := h.Propagate(10); stats.Failed != 1 || stats.Transferred != 0 {
		t.Fatalf("partitioned round stats = %+v", stats)
	}
	if e.InRegion(1) {
		t.Fatal("entry crossed a partitioned link")
	}
	// Origin-region consumers are unaffected.
	if _, err := h.Fetch(0, 0, 3, nil, 10); err != nil {
		t.Fatalf("intra fetch under inter partition: %v", err)
	}
	// Destination-region consumers see the exhausted walk.
	if _, err := h.Fetch(1, 0, 3, nil, 10); !errors.Is(err, ErrExhausted) {
		t.Fatalf("pre-propagation fetch err = %v", err)
	}
	// Partition lifts at t=100: the retry converges.
	if stats := h.Propagate(100); stats.Transferred != 1 {
		t.Fatalf("healed round stats = %+v", stats)
	}
	if _, err := h.Fetch(1, 0, 3, nil, 101); err != nil {
		t.Fatalf("post-propagation fetch: %v", err)
	}
}

// TestDeterministicReplay: the same seed and call sequence reproduce
// identical failover walks, elapsed times and propagation outcomes
// under a lossy network.
func TestDeterministicReplay(t *testing.T) {
	run := func() (string, float64, int) {
		cfg := healthyConfig()
		cfg.Intra.DropRate = 0.3
		cfg.Intra.BaseLatency = 0.01
		cfg.Inter.DropRate = 0.6
		cfg.Inter.BaseLatency = 0.2
		h := New(cfg)
		if _, err := h.Publish(0, 0, 1, payload(5_000, 9), 0); err != nil {
			return "publish-fail", 0, 0
		}
		res, err := h.Fetch(0, 0, 77, nil, 1)
		if err != nil {
			return "fetch-fail:" + h.FetchFailure(), 0, 0
		}
		stats := h.Propagate(2)
		return "", res.Elapsed, stats.Transferred
	}
	s1, e1, t1 := run()
	s2, e2, t2 := run()
	if s1 != s2 || e1 != e2 || t1 != t2 {
		t.Fatalf("replay diverged: (%q %v %d) vs (%q %v %d)", s1, e1, t1, s2, e2, t2)
	}
}

// TestWipe: a wipe empties every shard and the registry; the hierarchy
// is reusable afterwards.
func TestWipe(t *testing.T) {
	h := New(healthyConfig())
	if _, err := h.Publish(0, 0, 1, payload(1_000, 10), 0); err != nil {
		t.Fatal(err)
	}
	h.Propagate(0)
	h.Wipe()
	if len(h.Entries()) != 0 {
		t.Fatal("registry survived wipe")
	}
	for r := 0; r < 2; r++ {
		for n := 0; n < 3; n++ {
			if h.NodeStore(r, n).Count(r, 0) != 0 {
				t.Fatalf("region %d node %d not wiped", r, n)
			}
		}
	}
	if _, err := h.Fetch(0, 0, 1, nil, 0); err == nil {
		t.Fatal("fetch after wipe succeeded")
	}
	if _, err := h.Publish(0, 0, 2, payload(1_000, 11), 5); err != nil {
		t.Fatalf("publish after wipe: %v", err)
	}
	if _, err := h.Fetch(0, 0, 2, nil, 6); err != nil {
		t.Fatalf("fetch after republish: %v", err)
	}
}
