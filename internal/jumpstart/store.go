// Package jumpstart implements the operational half of HHVM
// Jump-Start: the profile-package store that seeders publish into and
// consumers draw from, seeder-side validation of freshly collected
// packages (Section VI-A1), randomized package selection (VI-A2), and
// the automatic no-Jump-Start fallback (VI-A3).
package jumpstart

import (
	"fmt"
	"math/bits"
	"sync"

	"jumpstart/internal/telemetry"
)

// PackageID identifies a published package within the store.
type PackageID int64

// StoredPackage is one published profile-data package.
type StoredPackage struct {
	ID     PackageID
	Region int
	Bucket int
	// Revision is the build checksum of the source revision the
	// profile was collected against (0 when the publisher predates
	// revision stamping). Consumers on a different build reject or
	// remap the package according to the CompatPolicy.
	Revision uint64
	Data     []byte // serialized prof.Profile
}

// Store is the profile-package database. Packages are keyed by
// (region, semantic bucket); multiple seeders per pair publish
// independently collected packages (Section VI-A2), and consumers pick
// one at random. Packages that fail validation are quarantined instead
// of published, preserved for offline debugging (Section VI-A1: "we
// also store the problematic profile data on a database, so that rare
// bugs ... can later be easily reproduced and debugged").
type Store struct {
	mu     sync.Mutex
	nextID PackageID

	pkgs map[storeKey][]*StoredPackage
	// byID indexes published packages by id. The transport server
	// resolves every chunk RPC through Get, so the lookup must not scan
	// every bucket; Publish and Remove keep the index in lockstep with
	// pkgs.
	byID map[PackageID]*StoredPackage

	// Quarantine is a bounded ring (most recent quarCap entries kept,
	// older ones dropped and counted) mirroring the event tracer's
	// design: a long fleet run with a persistently bad seeder must not
	// grow the store without bound.
	quar     []*StoredPackage
	quarHead int // index of the oldest quarantined entry
	quarCap  int
	quarDrop uint64

	// tel/clock observe store traffic (publish, pick, quarantine,
	// remove). Both may be nil; telemetry never alters store behavior.
	tel   *telemetry.Set
	clock func() float64
}

type storeKey struct{ region, bucket int }

// DefaultQuarantineCap bounds the quarantine ring when no explicit cap
// is set.
const DefaultQuarantineCap = 64

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		pkgs:    make(map[storeKey][]*StoredPackage),
		byID:    make(map[PackageID]*StoredPackage),
		quarCap: DefaultQuarantineCap,
	}
}

// SetTelemetry installs the observation set and the virtual clock used
// to timestamp store events. Either may be nil.
func (s *Store) SetTelemetry(tel *telemetry.Set, clock func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = tel
	s.clock = clock
}

// now reads the virtual clock; callers must hold s.mu.
func (s *Store) now() float64 {
	if s.clock == nil {
		return 0
	}
	return s.clock()
}

// Publish adds a validated package for (region, bucket) and returns
// its id. The package carries no revision stamp; use PublishRevision
// when the publisher knows its build checksum.
func (s *Store) Publish(region, bucket int, data []byte) PackageID {
	return s.PublishRevision(region, bucket, data, 0)
}

// PublishRevision adds a validated package stamped with the build
// checksum of the source revision it was collected against.
func (s *Store) PublishRevision(region, bucket int, data []byte, revision uint64) PackageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	p := &StoredPackage{
		ID:       s.nextID,
		Region:   region,
		Bucket:   bucket,
		Revision: revision,
		Data:     data,
	}
	k := storeKey{region, bucket}
	s.pkgs[k] = append(s.pkgs[k], p)
	s.byID[p.ID] = p
	s.tel.Counter("store.published_total").Inc()
	s.tel.Event(s.now(), "store", "publish",
		telemetry.I("id", int64(p.ID)),
		telemetry.I("region", int64(region)),
		telemetry.I("bucket", int64(bucket)),
		telemetry.I("bytes", int64(len(data))))
	return p.ID
}

// SetQuarantineCap resizes the quarantine ring, keeping the most
// recent k entries (k <= 0 restores the default cap).
func (s *Store) SetQuarantineCap(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k <= 0 {
		k = DefaultQuarantineCap
	}
	kept := s.quarantinedLocked()
	if len(kept) > k {
		s.quarDrop += uint64(len(kept) - k)
		kept = kept[len(kept)-k:]
	}
	s.quarCap = k
	s.quar = append(make([]*StoredPackage, 0, k), kept...)
	s.quarHead = 0
}

// Quarantine records a package that failed validation. When the
// bounded ring is full the oldest entry is overwritten and counted as
// dropped.
func (s *Store) Quarantine(region, bucket int, data []byte) PackageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	p := &StoredPackage{ID: s.nextID, Region: region, Bucket: bucket, Data: data}
	if len(s.quar) < s.quarCap {
		s.quar = append(s.quar, p)
	} else {
		s.quar[s.quarHead] = p
		s.quarHead = (s.quarHead + 1) % len(s.quar)
		s.quarDrop++
	}
	s.tel.Counter("store.quarantined_total").Inc()
	s.tel.Event(s.now(), "store", "quarantine",
		telemetry.I("id", int64(p.ID)),
		telemetry.I("region", int64(region)),
		telemetry.I("bucket", int64(bucket)),
		telemetry.I("bytes", int64(len(data))))
	return p.ID
}

// Count returns the number of published packages for (region, bucket).
func (s *Store) Count(region, bucket int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pkgs[storeKey{region, bucket}])
}

// QuarantinedCount returns the number of quarantined packages held in
// the ring.
func (s *Store) QuarantinedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.quar)
}

// QuarantineDropped returns how many quarantined packages were evicted
// from the bounded ring.
func (s *Store) QuarantineDropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarDrop
}

// Quarantined returns the quarantined packages, oldest first
// (debugging workflow).
func (s *Store) Quarantined() []*StoredPackage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantinedLocked()
}

// quarantinedLocked copies the ring oldest-first; callers hold s.mu.
func (s *Store) quarantinedLocked() []*StoredPackage {
	out := make([]*StoredPackage, 0, len(s.quar))
	for i := 0; i < len(s.quar); i++ {
		out = append(out, s.quar[(s.quarHead+i)%len(s.quar)])
	}
	return out
}

// Get returns the published package with the given id (the transport
// server resolves chunk requests through this, so it must be O(1), not
// a scan over every bucket's package list).
func (s *Store) Get(id PackageID) (*StoredPackage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.byID[id]
	return p, ok
}

// Pick returns a uniformly random package for (region, bucket), using
// the caller-supplied random value (consumers re-pick on every
// restart, which is what makes crash loops decay exponentially —
// Section VI-A2). exclude lists package ids to avoid (a consumer
// retrying after a crash avoids the packages that already failed it).
// When every candidate is excluded Pick reports no package rather than
// silently re-offering a known-bad one: handing the retrying consumer
// the exact package that just crashed it would burn its remaining
// attempts and defeat the VI-A2 crash-loop-decay argument, so the
// caller is expected to fall back immediately.
func (s *Store) Pick(region, bucket int, rnd uint64, exclude ...PackageID) (*StoredPackage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.pkgs[storeKey{region, bucket}]
	if len(all) == 0 {
		return nil, false
	}
	// Exclusion lists are bounded by the crash-retry depth (a handful of
	// ids at most), so two linear scans over exclude beat rebuilding a
	// map plus a filtered slice on every retry — this path allocates
	// nothing (pinned by TestPickExcludeAllocFree / make alloccheck).
	n := len(all)
	if len(exclude) > 0 {
		n = 0
		for _, p := range all {
			if !idExcluded(p.ID, exclude) {
				n++
			}
		}
		if n == 0 {
			// Guarded rather than relying on the nil-safe telemetry
			// receivers: the variadic Attr slice is built at the call
			// site, which would put an allocation on the no-telemetry
			// retry path the alloccheck test pins.
			if s.tel != nil {
				s.tel.Counter("store.picks_exhausted_total").Inc()
				s.tel.Event(s.now(), "store", "pick-exhausted",
					telemetry.I("candidates", int64(len(all))),
					telemetry.I("excluded", int64(len(exclude))))
			}
			return nil, false
		}
	}
	// Fixed-point bounded draw (multiply-shift): floor(rnd·n / 2^64).
	// Unlike rnd % n, which systematically over-selects low-index
	// packages whenever n does not divide 2^64, this spreads the
	// unavoidable remainder evenly across indices, preserving the
	// Section VI-A2 argument that consumers pick uniformly at random.
	// Walking to the idx-th non-excluded package visits candidates in
	// the same order the old filtered slice held them, so the pick
	// distribution (and every deterministic replay) is unchanged.
	idx, _ := bits.Mul64(rnd, uint64(n))
	var pick *StoredPackage
	if n == len(all) {
		pick = all[idx]
	} else {
		k := uint64(0)
		for _, p := range all {
			if idExcluded(p.ID, exclude) {
				continue
			}
			if k == idx {
				pick = p
				break
			}
			k++
		}
	}
	if s.tel != nil {
		s.tel.Counter("store.picks_total").Inc()
		s.tel.Event(s.now(), "store", "pick",
			telemetry.I("id", int64(pick.ID)),
			telemetry.I("candidates", int64(n)),
			telemetry.I("excluded", int64(len(exclude))))
	}
	return pick, true
}

// idExcluded reports whether id appears in exclude (linear scan; the
// list is crash-retry-depth short).
func idExcluded(id PackageID, exclude []PackageID) bool {
	for _, e := range exclude {
		if e == id {
			return true
		}
	}
	return false
}

// Remove deletes a published package (operational cleanup after a bad
// package is identified in production). The byID index locates the
// package's bucket directly, and the index entry is evicted alongside
// the list entry so a removed id cannot resurface through Get.
func (s *Store) Remove(id PackageID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.byID[id]
	if !ok {
		return false
	}
	k := storeKey{p.Region, p.Bucket}
	list := s.pkgs[k]
	for i, q := range list {
		if q.ID == id {
			copy(list[i:], list[i+1:])
			// Nil the vacated tail slot: the shifted-down append
			// idiom leaves a stale *StoredPackage in the backing
			// array, retaining the package's profile bytes for as
			// long as the bucket's slice lives.
			list[len(list)-1] = nil
			s.pkgs[k] = list[:len(list)-1]
			break
		}
	}
	delete(s.byID, id)
	s.tel.Event(s.now(), "store", "remove", telemetry.I("id", int64(id)))
	return true
}

// String summarizes the store.
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, list := range s.pkgs {
		total += len(list)
	}
	return fmt.Sprintf("jumpstart.Store{published: %d, quarantined: %d}", total, len(s.quar))
}
