// Package jumpstart implements the operational half of HHVM
// Jump-Start: the profile-package store that seeders publish into and
// consumers draw from, seeder-side validation of freshly collected
// packages (Section VI-A1), randomized package selection (VI-A2), and
// the automatic no-Jump-Start fallback (VI-A3).
package jumpstart

import (
	"fmt"
	"math/bits"
	"sync"

	"jumpstart/internal/telemetry"
)

// PackageID identifies a published package within the store.
type PackageID int64

// StoredPackage is one published profile-data package.
type StoredPackage struct {
	ID     PackageID
	Region int
	Bucket int
	Data   []byte // serialized prof.Profile
}

// Store is the profile-package database. Packages are keyed by
// (region, semantic bucket); multiple seeders per pair publish
// independently collected packages (Section VI-A2), and consumers pick
// one at random. Packages that fail validation are quarantined instead
// of published, preserved for offline debugging (Section VI-A1: "we
// also store the problematic profile data on a database, so that rare
// bugs ... can later be easily reproduced and debugged").
type Store struct {
	mu     sync.Mutex
	nextID PackageID
	pkgs   map[storeKey][]*StoredPackage
	quar   []*StoredPackage

	// tel/clock observe store traffic (publish, pick, quarantine,
	// remove). Both may be nil; telemetry never alters store behavior.
	tel   *telemetry.Set
	clock func() float64
}

type storeKey struct{ region, bucket int }

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{pkgs: make(map[storeKey][]*StoredPackage)}
}

// SetTelemetry installs the observation set and the virtual clock used
// to timestamp store events. Either may be nil.
func (s *Store) SetTelemetry(tel *telemetry.Set, clock func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = tel
	s.clock = clock
}

// now reads the virtual clock; callers must hold s.mu.
func (s *Store) now() float64 {
	if s.clock == nil {
		return 0
	}
	return s.clock()
}

// Publish adds a validated package for (region, bucket) and returns
// its id.
func (s *Store) Publish(region, bucket int, data []byte) PackageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	p := &StoredPackage{
		ID:     s.nextID,
		Region: region,
		Bucket: bucket,
		Data:   data,
	}
	k := storeKey{region, bucket}
	s.pkgs[k] = append(s.pkgs[k], p)
	s.tel.Counter("store.published_total").Inc()
	s.tel.Event(s.now(), "store", "publish",
		telemetry.I("id", int64(p.ID)),
		telemetry.I("region", int64(region)),
		telemetry.I("bucket", int64(bucket)),
		telemetry.I("bytes", int64(len(data))))
	return p.ID
}

// Quarantine records a package that failed validation.
func (s *Store) Quarantine(region, bucket int, data []byte) PackageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	p := &StoredPackage{ID: s.nextID, Region: region, Bucket: bucket, Data: data}
	s.quar = append(s.quar, p)
	s.tel.Counter("store.quarantined_total").Inc()
	s.tel.Event(s.now(), "store", "quarantine",
		telemetry.I("id", int64(p.ID)),
		telemetry.I("region", int64(region)),
		telemetry.I("bucket", int64(bucket)),
		telemetry.I("bytes", int64(len(data))))
	return p.ID
}

// Count returns the number of published packages for (region, bucket).
func (s *Store) Count(region, bucket int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pkgs[storeKey{region, bucket}])
}

// QuarantinedCount returns the number of quarantined packages.
func (s *Store) QuarantinedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.quar)
}

// Quarantined returns the quarantined packages (debugging workflow).
func (s *Store) Quarantined() []*StoredPackage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*StoredPackage{}, s.quar...)
}

// Pick returns a uniformly random package for (region, bucket), using
// the caller-supplied random value (consumers re-pick on every
// restart, which is what makes crash loops decay exponentially —
// Section VI-A2). exclude lists package ids to avoid when possible
// (a consumer retrying after a crash avoids the package that just
// failed it).
func (s *Store) Pick(region, bucket int, rnd uint64, exclude ...PackageID) (*StoredPackage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.pkgs[storeKey{region, bucket}]
	if len(all) == 0 {
		return nil, false
	}
	candidates := all
	if len(exclude) > 0 {
		excluded := make(map[PackageID]bool, len(exclude))
		for _, id := range exclude {
			excluded[id] = true
		}
		filtered := make([]*StoredPackage, 0, len(all))
		for _, p := range all {
			if !excluded[p.ID] {
				filtered = append(filtered, p)
			}
		}
		if len(filtered) > 0 {
			candidates = filtered
		}
	}
	// Fixed-point bounded draw (multiply-shift): floor(rnd·n / 2^64).
	// Unlike rnd % n, which systematically over-selects low-index
	// packages whenever n does not divide 2^64, this spreads the
	// unavoidable remainder evenly across indices, preserving the
	// Section VI-A2 argument that consumers pick uniformly at random.
	idx, _ := bits.Mul64(rnd, uint64(len(candidates)))
	s.tel.Counter("store.picks_total").Inc()
	s.tel.Event(s.now(), "store", "pick",
		telemetry.I("id", int64(candidates[idx].ID)),
		telemetry.I("candidates", int64(len(candidates))),
		telemetry.I("excluded", int64(len(exclude))))
	return candidates[idx], true
}

// Remove deletes a published package (operational cleanup after a bad
// package is identified in production).
func (s *Store) Remove(id PackageID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, list := range s.pkgs {
		for i, p := range list {
			if p.ID == id {
				copy(list[i:], list[i+1:])
				// Nil the vacated tail slot: the shifted-down append
				// idiom leaves a stale *StoredPackage in the backing
				// array, retaining the package's profile bytes for as
				// long as the bucket's slice lives.
				list[len(list)-1] = nil
				s.pkgs[k] = list[:len(list)-1]
				s.tel.Event(s.now(), "store", "remove", telemetry.I("id", int64(id)))
				return true
			}
		}
	}
	return false
}

// String summarizes the store.
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, list := range s.pkgs {
		total += len(list)
	}
	return fmt.Sprintf("jumpstart.Store{published: %d, quarantined: %d}", total, len(s.quar))
}
