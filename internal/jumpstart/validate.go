package jumpstart

import (
	"errors"
	"fmt"

	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

// Validator implements the seeder-side health check of Section VI-A1:
// before publishing, the seeder restarts HHVM in Jump-Start consumer
// mode using the profile data it just collected, and only publishes if
// the restart stays healthy.
type Validator struct {
	// Site is the website the package must serve.
	Site *workload.Site
	// ConsumerConfig is the configuration used for the trial boot.
	// Its Mode and Package fields are overwritten.
	ConsumerConfig server.Config
	// Requests is the validation traffic volume ("remains healthy for
	// a few minutes", scaled).
	Requests int
	// MaxFaultRate bounds the tolerated error rate during validation.
	MaxFaultRate float64
	// Thresholds is the coverage floor of Section VI-B.
	Thresholds prof.Thresholds
	// WarmupDeadline bounds the trial boot's virtual warmup seconds.
	WarmupDeadline float64
	// Revision is the build checksum of the source revision this
	// validator serves (0 disables revision checking, for callers that
	// predate revision stamping).
	Revision uint64
	// Policy decides what happens to a package whose Meta.Revision
	// differs from Revision: ExactOnly rejects it with ErrRevision;
	// RemapTolerant passes it through Remap first and validates the
	// remapped profile end to end (trial boot included).
	Policy CompatPolicy
	// Remap translates a mismatched-revision profile onto this build
	// (wired to prof.Remap by callers that hold both programs). Only
	// consulted under RemapTolerant; nil means mismatches are rejected
	// even under RemapTolerant.
	Remap func(p *prof.Profile) (*prof.Profile, error)
	// Telem observes validation outcomes (may be nil). The trial server
	// itself runs without telemetry so validation cost stays identical
	// with observation on or off.
	Telem *telemetry.Set
}

// Validation errors.
var (
	ErrCoverage  = errors.New("jumpstart: profile coverage below thresholds")
	ErrCorrupt   = errors.New("jumpstart: package failed decode")
	ErrBoot      = errors.New("jumpstart: consumer trial boot failed")
	ErrUnhealthy = errors.New("jumpstart: consumer trial unhealthy")
	ErrRevision  = errors.New("jumpstart: package revision mismatch")
)

// Validate checks a serialized package end to end: decodability,
// coverage thresholds, and a real consumer-mode trial boot serving
// validation traffic. It returns nil only for publishable packages.
func (v *Validator) Validate(data []byte) error {
	err := v.validate(data)
	if err != nil {
		v.Telem.Counter("validate.fail_total").Inc()
		v.Telem.Event(0, "validate", "fail", telemetry.S("err", err.Error()))
	} else {
		v.Telem.Counter("validate.ok_total").Inc()
		v.Telem.Event(0, "validate", "ok", telemetry.I("bytes", int64(len(data))))
	}
	return err
}

func (v *Validator) validate(data []byte) error {
	p, err := prof.Decode(data)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if v.Revision != 0 && uint64(p.Meta.Revision) != v.Revision {
		if v.Policy != RemapTolerant || v.Remap == nil {
			return fmt.Errorf("%w: package %x, build %x (policy %s)",
				ErrRevision, uint64(p.Meta.Revision), v.Revision, v.Policy)
		}
		remapped, err := v.Remap(p)
		if err != nil {
			return fmt.Errorf("%w: remap failed: %v", ErrRevision, err)
		}
		if uint64(remapped.Meta.Revision) != v.Revision {
			return fmt.Errorf("%w: remap stamped %x, want %x",
				ErrRevision, uint64(remapped.Meta.Revision), v.Revision)
		}
		p = remapped
	}
	if !p.MeetsThresholds(v.Thresholds) {
		c := p.Coverage()
		return fmt.Errorf("%w: funcs=%d blocks=%d requests=%d",
			ErrCoverage, c.Funcs, c.Blocks, c.RequestCount)
	}

	cfg := v.ConsumerConfig
	cfg.Mode = server.ModeConsumer
	cfg.Package = p
	trial, err := server.New(v.Site, cfg)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBoot, err)
	}
	deadline := v.WarmupDeadline
	if deadline == 0 {
		deadline = 3600
	}
	if err := trial.WarmToServing(deadline); err != nil {
		return fmt.Errorf("%w: %v", ErrBoot, err)
	}
	n := v.Requests
	if n == 0 {
		n = 500
	}
	stats := trial.MeasureSteady(n)
	faultRate := float64(stats.Faults) / float64(n)
	if faultRate > v.MaxFaultRate {
		return fmt.Errorf("%w: fault rate %.4f > %.4f",
			ErrUnhealthy, faultRate, v.MaxFaultRate)
	}
	return nil
}

// SeedResult reports one seeding attempt.
type SeedResult struct {
	Attempts  int
	Published PackageID
	Package   *prof.Profile
}

// SeedAndPublish runs a seeder server, validates the collected package
// and publishes it, retrying the full seed-validate cycle on failure
// ("Otherwise, the server restarts in seeder mode and repeats the
// entire process" — Section VI-A1). Failed packages are quarantined.
func SeedAndPublish(site *workload.Site, seederCfg server.Config, v *Validator,
	store *Store, maxAttempts int) (SeedResult, error) {
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	res := SeedResult{}
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		res.Attempts = attempt
		cfg := seederCfg
		cfg.Mode = server.ModeSeeder
		cfg.JITOpts.InstrumentOptimized = true
		cfg.Seed = seederCfg.Seed + uint64(attempt-1)*1_000_003
		srv, err := server.New(site, cfg)
		if err != nil {
			return res, err
		}
		if err := srv.WarmToServing(7200); err != nil {
			lastErr = err
			continue
		}
		pkg, ok := srv.SeederPackage()
		if !ok {
			lastErr = errors.New("jumpstart: seeder produced no package")
			continue
		}
		if v.Revision != 0 {
			// Stamp the collected profile with the seeder's build; the
			// store entry carries the same stamp so consumers can check
			// compatibility before decoding.
			pkg.Meta.Revision = int64(v.Revision)
		}
		data := pkg.Encode()
		if err := v.Validate(data); err != nil {
			store.Quarantine(cfg.Region, cfg.Bucket, data)
			lastErr = err
			continue
		}
		res.Published = store.PublishRevision(cfg.Region, cfg.Bucket, data, v.Revision)
		res.Package = pkg
		return res, nil
	}
	return res, lastErr
}
