package jumpstart

import (
	"errors"
	"fmt"

	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

// Validator implements the seeder-side health check of Section VI-A1:
// before publishing, the seeder restarts HHVM in Jump-Start consumer
// mode using the profile data it just collected, and only publishes if
// the restart stays healthy.
type Validator struct {
	// Site is the website the package must serve.
	Site *workload.Site
	// ConsumerConfig is the configuration used for the trial boot.
	// Its Mode and Package fields are overwritten.
	ConsumerConfig server.Config
	// Requests is the validation traffic volume ("remains healthy for
	// a few minutes", scaled).
	Requests int
	// MaxFaultRate bounds the tolerated error rate during validation.
	MaxFaultRate float64
	// Thresholds is the coverage floor of Section VI-B.
	Thresholds prof.Thresholds
	// WarmupDeadline bounds the trial boot's virtual warmup seconds.
	WarmupDeadline float64
	// Telem observes validation outcomes (may be nil). The trial server
	// itself runs without telemetry so validation cost stays identical
	// with observation on or off.
	Telem *telemetry.Set
}

// Validation errors.
var (
	ErrCoverage  = errors.New("jumpstart: profile coverage below thresholds")
	ErrCorrupt   = errors.New("jumpstart: package failed decode")
	ErrBoot      = errors.New("jumpstart: consumer trial boot failed")
	ErrUnhealthy = errors.New("jumpstart: consumer trial unhealthy")
)

// Validate checks a serialized package end to end: decodability,
// coverage thresholds, and a real consumer-mode trial boot serving
// validation traffic. It returns nil only for publishable packages.
func (v *Validator) Validate(data []byte) error {
	err := v.validate(data)
	if err != nil {
		v.Telem.Counter("validate.fail_total").Inc()
		v.Telem.Event(0, "validate", "fail", telemetry.S("err", err.Error()))
	} else {
		v.Telem.Counter("validate.ok_total").Inc()
		v.Telem.Event(0, "validate", "ok", telemetry.I("bytes", int64(len(data))))
	}
	return err
}

func (v *Validator) validate(data []byte) error {
	p, err := prof.Decode(data)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if !p.MeetsThresholds(v.Thresholds) {
		c := p.Coverage()
		return fmt.Errorf("%w: funcs=%d blocks=%d requests=%d",
			ErrCoverage, c.Funcs, c.Blocks, c.RequestCount)
	}

	cfg := v.ConsumerConfig
	cfg.Mode = server.ModeConsumer
	cfg.Package = p
	trial, err := server.New(v.Site, cfg)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBoot, err)
	}
	deadline := v.WarmupDeadline
	if deadline == 0 {
		deadline = 3600
	}
	if err := trial.WarmToServing(deadline); err != nil {
		return fmt.Errorf("%w: %v", ErrBoot, err)
	}
	n := v.Requests
	if n == 0 {
		n = 500
	}
	stats := trial.MeasureSteady(n)
	faultRate := float64(stats.Faults) / float64(n)
	if faultRate > v.MaxFaultRate {
		return fmt.Errorf("%w: fault rate %.4f > %.4f",
			ErrUnhealthy, faultRate, v.MaxFaultRate)
	}
	return nil
}

// SeedResult reports one seeding attempt.
type SeedResult struct {
	Attempts  int
	Published PackageID
	Package   *prof.Profile
}

// SeedAndPublish runs a seeder server, validates the collected package
// and publishes it, retrying the full seed-validate cycle on failure
// ("Otherwise, the server restarts in seeder mode and repeats the
// entire process" — Section VI-A1). Failed packages are quarantined.
func SeedAndPublish(site *workload.Site, seederCfg server.Config, v *Validator,
	store *Store, maxAttempts int) (SeedResult, error) {
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	res := SeedResult{}
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		res.Attempts = attempt
		cfg := seederCfg
		cfg.Mode = server.ModeSeeder
		cfg.JITOpts.InstrumentOptimized = true
		cfg.Seed = seederCfg.Seed + uint64(attempt-1)*1_000_003
		srv, err := server.New(site, cfg)
		if err != nil {
			return res, err
		}
		if err := srv.WarmToServing(7200); err != nil {
			lastErr = err
			continue
		}
		pkg, ok := srv.SeederPackage()
		if !ok {
			lastErr = errors.New("jumpstart: seeder produced no package")
			continue
		}
		data := pkg.Encode()
		if err := v.Validate(data); err != nil {
			store.Quarantine(cfg.Region, cfg.Bucket, data)
			lastErr = err
			continue
		}
		res.Published = store.Publish(cfg.Region, cfg.Bucket, data)
		res.Package = pkg
		return res, nil
	}
	return res, lastErr
}
