package jumpstart

import "fmt"

// WarmupMode selects how a consumer materializes the translations in
// its Jump-Start package. Eager is the classic boot: preload, compile
// and relocate everything before serving. Lazy starts serving
// immediately and pages each hot function's translation in on its
// first call — trading a slower first-touch tail for near-instant
// availability, the VM-restore trick ported onto the Jump-Start loop.
type WarmupMode int

const (
	// WarmupEager materializes the whole package during boot, before
	// the server starts serving (the paper's behaviour).
	WarmupEager WarmupMode = iota
	// WarmupLazy serves immediately and fetches each translation
	// on-demand at first call, falling back to the interpreter (and
	// the normal live-JIT path) when a page-in misses its budget.
	WarmupLazy
)

// String returns the flag-level name.
func (m WarmupMode) String() string {
	switch m {
	case WarmupEager:
		return "eager"
	case WarmupLazy:
		return "lazy"
	default:
		return fmt.Sprintf("WarmupMode(%d)", int(m))
	}
}

// ParseWarmupMode parses the flag-level name.
func ParseWarmupMode(s string) (WarmupMode, error) {
	switch s {
	case "eager":
		return WarmupEager, nil
	case "lazy":
		return WarmupLazy, nil
	default:
		return 0, fmt.Errorf("jumpstart: unknown warmup mode %q (want eager or lazy)", s)
	}
}
