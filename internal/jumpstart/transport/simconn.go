package transport

import (
	"jumpstart/internal/jumpstart"
	"jumpstart/internal/netsim"
)

// SimConn runs the protocol over the simulated network: every RPC is
// sampled through the netsim fabric at the current virtual time, and
// the virtual clock advances by the drawn latency (or by the per-RPC
// timeout when the fabric drops the message). The server itself is
// invoked directly — only the network between client and store is
// simulated.
type SimConn struct {
	srv     *Server
	fab     *netsim.Fabric
	link    string
	clock   *netsim.VirtualClock
	stream  *netsim.Stream
	timeout float64
}

// NewSimConn wires a client-side connection over the fabric. link
// labels the client's side of the network (fault windows can target
// it); stream supplies the connection's fault/latency draws; timeout
// is the per-RPC deadline in virtual seconds.
func NewSimConn(srv *Server, fab *netsim.Fabric, link string,
	clock *netsim.VirtualClock, stream *netsim.Stream, timeout float64) *SimConn {
	if timeout <= 0 {
		timeout = DefaultClientConfig().RPCTimeout
	}
	return &SimConn{srv: srv, fab: fab, link: link, clock: clock, stream: stream, timeout: timeout}
}

// rpc samples one round trip, advancing the virtual clock, and
// reports whether the message got through.
func (c *SimConn) rpc() error {
	v := c.fab.Sample(c.link, c.clock.Now(), c.stream)
	if v.Drop || v.Latency >= c.timeout {
		// Lost, or slower than the client is willing to wait: the
		// caller burns its full timeout before concluding anything.
		c.clock.Sleep(c.timeout)
		return ErrTimeout
	}
	c.clock.Sleep(v.Latency)
	if v.Err {
		return ErrRPC
	}
	return nil
}

// Manifest implements Conn.
func (c *SimConn) Manifest(region, bucket int, rnd uint64, exclude []jumpstart.PackageID) (*Manifest, error) {
	if err := c.rpc(); err != nil {
		return nil, err
	}
	return c.srv.Manifest(region, bucket, rnd, exclude)
}

// Chunk implements Conn.
func (c *SimConn) Chunk(id jumpstart.PackageID, idx int) ([]byte, error) {
	if err := c.rpc(); err != nil {
		return nil, err
	}
	return c.srv.Chunk(id, idx)
}

// Publish implements Conn.
func (c *SimConn) Publish(region, bucket int, revision uint64, data []byte) (jumpstart.PackageID, error) {
	if err := c.rpc(); err != nil {
		return 0, err
	}
	return c.srv.Publish(region, bucket, revision, data), nil
}
