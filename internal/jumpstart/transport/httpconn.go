package transport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"jumpstart/internal/jumpstart"
)

// maxManifestBytes bounds a manifest response body.
const maxManifestBytes = 8 << 20

// HTTPConn speaks the protocol to a real store server (Server.Handler)
// over HTTP — the production-shaped path cmd/jumpstartd uses for the
// two-process seeder→consumer handoff on localhost.
type HTTPConn struct {
	base string
	http *http.Client
}

// NewHTTPConn builds a connection to the store at baseURL (e.g.
// "http://127.0.0.1:8099"). rpcTimeout caps each request in wall
// seconds (<= 0 selects the client default).
func NewHTTPConn(baseURL string, rpcTimeout float64) *HTTPConn {
	if rpcTimeout <= 0 {
		rpcTimeout = DefaultClientConfig().RPCTimeout
	}
	return &HTTPConn{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: time.Duration(rpcTimeout * float64(time.Second))},
	}
}

// get issues a GET and returns the body, mapping HTTP failures onto
// the protocol errors.
func (c *HTTPConn) get(url string, maxBytes int64) ([]byte, error) {
	resp, err := c.http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBytes))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRPC, err)
	}
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrNoPackage, strings.TrimSpace(string(body)))
	case resp.StatusCode != http.StatusOK:
		return nil, fmt.Errorf("%w: status %d: %s", ErrRPC, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// Manifest implements Conn.
func (c *HTTPConn) Manifest(region, bucket int, rnd uint64, exclude []jumpstart.PackageID) (*Manifest, error) {
	url := fmt.Sprintf("%s/manifest?region=%d&bucket=%d&rnd=%d", c.base, region, bucket, rnd)
	if len(exclude) > 0 {
		parts := make([]string, len(exclude))
		for i, id := range exclude {
			parts[i] = strconv.FormatInt(int64(id), 10)
		}
		url += "&exclude=" + strings.Join(parts, ",")
	}
	body, err := c.get(url, maxManifestBytes)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(body, m); err != nil {
		return nil, fmt.Errorf("%w: bad manifest: %v", ErrRPC, err)
	}
	return m, nil
}

// Chunk implements Conn.
func (c *HTTPConn) Chunk(id jumpstart.PackageID, idx int) ([]byte, error) {
	// The compressed chunk can exceed ChunkSize for incompressible
	// data; allow generous framing overhead and let decompressChunk
	// enforce the real bound.
	return c.get(fmt.Sprintf("%s/chunk?id=%d&idx=%d", c.base, id, idx), maxPublishBytes)
}

// Publish implements Conn.
func (c *HTTPConn) Publish(region, bucket int, revision uint64, data []byte) (jumpstart.PackageID, error) {
	url := fmt.Sprintf("%s/publish?region=%d&bucket=%d&rev=%d", c.base, region, bucket, revision)
	resp, err := c.http.Post(url, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxManifestBytes))
	if err != nil || resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%w: publish status %d: %s", ErrRPC, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var out struct {
		ID jumpstart.PackageID `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return 0, fmt.Errorf("%w: bad publish response: %v", ErrRPC, err)
	}
	return out.ID, nil
}
