package transport

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/netsim"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

// testPayload builds a deterministic pseudo-package of n bytes. The
// transport layer never decodes packages, so arbitrary bytes exercise
// it fully.
func testPayload(n int, seed uint64) []byte {
	s := netsim.NewStream(workload.Fork(seed, 0))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(s.Uint64())
	}
	return out
}

// newTestStack publishes one payload and wires a healthy sim client
// over it.
func newTestStack(t *testing.T, payload []byte, chunkSize int, net netsim.Config,
	ccfg ClientConfig) (*Server, *Client, *netsim.VirtualClock, jumpstart.PackageID) {
	t.Helper()
	store := jumpstart.NewStore()
	id := store.Publish(0, 0, payload)
	srv := NewServer(store, chunkSize)
	clock := netsim.NewVirtualClock(0)
	conn := NewSimConn(srv, netsim.NewFabric(net), "client", clock,
		netsim.NewStream(workload.Fork(42, 7)), ccfg.withDefaults().RPCTimeout)
	return srv, NewClient(conn, clock, ccfg), clock, id
}

func TestFetchRoundTripHealthy(t *testing.T) {
	payload := testPayload(10_000, 1)
	_, cli, clock, id := newTestStack(t, payload, 1024, netsim.Config{}, ClientConfig{})
	res, err := cli.Fetch(0, 0, 12345, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != id || !bytes.Equal(res.Data, payload) {
		t.Fatalf("payload mismatch: id=%d len=%d", res.ID, len(res.Data))
	}
	if res.Chunks != 10 || res.ChunkRPC != 10 || res.Attempts != 1 {
		t.Fatalf("result = %+v", res)
	}
	// Healthy zero-latency network: the fetch is free in virtual time
	// (this is the transport's perf-neutrality contract).
	if res.Elapsed != 0 || clock.Now() != 0 {
		t.Fatalf("healthy fetch cost %v virtual seconds", res.Elapsed)
	}
}

func TestFetchNoPackage(t *testing.T) {
	_, cli, _, id := newTestStack(t, testPayload(100, 2), 64, netsim.Config{}, ClientConfig{})
	if _, err := cli.Fetch(3, 9, 1, nil); !errors.Is(err, ErrNoPackage) {
		t.Fatalf("err = %v", err)
	}
	if cli.PickFailure() != "no package available" {
		t.Fatalf("failure = %q", cli.PickFailure())
	}
	// All candidates excluded behaves identically (the Pick-exclusion
	// fix reaches through the network).
	if _, err := cli.Fetch(0, 0, 1, []jumpstart.PackageID{id}); !errors.Is(err, ErrNoPackage) {
		t.Fatalf("excluded err = %v", err)
	}
	if _, ok := cli.Pick(0, 0, 1, id); ok {
		t.Fatal("Pick must mirror Fetch failure")
	}
}

// dropNthChunkConn fails the nth chunk RPC exactly once — the
// mid-transfer drop of the resume test.
type dropNthChunkConn struct {
	Conn
	n     int
	calls int
	fired bool
}

func (d *dropNthChunkConn) Chunk(id jumpstart.PackageID, idx int) ([]byte, error) {
	d.calls++
	if d.calls == d.n && !d.fired {
		d.fired = true
		return nil, ErrTimeout
	}
	return d.Conn.Chunk(id, idx)
}

// TestChunkResumeAfterMidTransferDrop pins the content-addressed
// resume property: after a drop on chunk k, the retry fetches only the
// chunks it does not already hold — one extra chunk RPC, not a full
// restart.
func TestChunkResumeAfterMidTransferDrop(t *testing.T) {
	for _, dropAt := range []int{1, 5, 10} {
		payload := testPayload(10_000, 3) // 10 chunks of 1024
		store := jumpstart.NewStore()
		store.Publish(0, 0, payload)
		srv := NewServer(store, 1024)
		clock := netsim.NewVirtualClock(0)
		base := NewSimConn(srv, netsim.NewFabric(netsim.Config{}), "c", clock,
			netsim.NewStream(1), 1)
		conn := &dropNthChunkConn{Conn: base, n: dropAt}
		cli := NewClient(conn, clock, ClientConfig{})
		res, err := cli.Fetch(0, 0, 99, nil)
		if err != nil {
			t.Fatalf("dropAt=%d: %v", dropAt, err)
		}
		if !bytes.Equal(res.Data, payload) {
			t.Fatalf("dropAt=%d: payload corrupted", dropAt)
		}
		if res.Attempts != 2 {
			t.Fatalf("dropAt=%d: attempts = %d", dropAt, res.Attempts)
		}
		// 10 successful chunk fetches + the 1 dropped RPC. A restart
		// would have cost 10 + dropAt.
		if res.ChunkRPC != 11 {
			t.Fatalf("dropAt=%d: chunk RPCs = %d, want 11 (resume, not restart)", dropAt, res.ChunkRPC)
		}
	}
}

// corruptOnceConn corrupts the first chunk's wire bytes once; the
// client must reject it by content address and re-fetch.
type corruptOnceConn struct {
	Conn
	fired bool
}

func (c *corruptOnceConn) Chunk(id jumpstart.PackageID, idx int) ([]byte, error) {
	wire, err := c.Conn.Chunk(id, idx)
	if err != nil || c.fired {
		return wire, err
	}
	c.fired = true
	bad := append([]byte{}, wire...)
	bad[len(bad)/2] ^= 0xff
	return bad, nil
}

func TestChunkVerificationRejectsCorruption(t *testing.T) {
	payload := testPayload(5_000, 4)
	store := jumpstart.NewStore()
	store.Publish(0, 0, payload)
	srv := NewServer(store, 2048)
	clock := netsim.NewVirtualClock(0)
	base := NewSimConn(srv, netsim.NewFabric(netsim.Config{}), "c", clock, netsim.NewStream(2), 1)
	cli := NewClient(&corruptOnceConn{Conn: base}, clock, ClientConfig{})
	res, err := cli.Fetch(0, 0, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, payload) {
		t.Fatal("corrupted chunk reached the payload")
	}
	if res.Attempts < 2 {
		t.Fatal("corruption never forced a retry")
	}
}

// retryTimeline fetches under a lossy fabric and returns the virtual
// times of every retry event.
func retryTimeline(t *testing.T, seed uint64) ([]float64, error) {
	t.Helper()
	store := jumpstart.NewStore()
	store.Publish(0, 0, testPayload(4_000, 5))
	srv := NewServer(store, 1024)
	clock := netsim.NewVirtualClock(0)
	// 70% drop: plenty of retries, but fetches eventually succeed.
	fab := netsim.NewFabric(netsim.Config{DropRate: 0.7, BaseLatency: 0.01})
	conn := NewSimConn(srv, fab, "c", clock, netsim.NewStream(workload.Fork(seed, 0)), 0.5)
	cli := NewClient(conn, clock, ClientConfig{Seed: seed, Budget: 300})
	tel := telemetry.NewSet()
	cli.SetTelemetry(tel)
	_, err := cli.Fetch(0, 0, 11, nil)
	var times []float64
	for _, ev := range tel.Trace.Events() {
		if ev.Cat == "transport" && ev.Name == "retry" {
			times = append(times, ev.T)
		}
	}
	return times, err
}

// TestBackoffScheduleDeterministic pins the deterministic-jitter
// contract: the same seed produces the exact same retry timeline, a
// different seed a different one.
func TestBackoffScheduleDeterministic(t *testing.T) {
	a, errA := retryTimeline(t, 1001)
	b, errB := retryTimeline(t, 1001)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("outcome diverged: %v vs %v", errA, errB)
	}
	if len(a) < 2 {
		t.Fatalf("only %d retries; lossy fabric not exercised", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("retry counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry %d at %v vs %v", i, a[i], b[i])
		}
	}
	c, _ := retryTimeline(t, 2002)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical retry timelines")
	}
}

// TestBackoffCappedExponential checks the schedule's shape directly:
// doubling up to the cap, jitter within [0.5, 1).
func TestBackoffCappedExponential(t *testing.T) {
	cli := NewClient(nil, netsim.NewVirtualClock(0), ClientConfig{
		BackoffBase: 0.1, BackoffCap: 1, Seed: 9,
	})
	for attempt := 1; attempt <= 8; attempt++ {
		ideal := 0.1 * float64(int(1)<<(attempt-1))
		if ideal > 1 {
			ideal = 1
		}
		for trial := 0; trial < 20; trial++ {
			got := cli.backoff(attempt, netsim.NewStream(workload.Fork(9, uint64(trial))))
			if got < 0.5*ideal-1e-12 || got >= ideal {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, got, 0.5*ideal, ideal)
			}
		}
	}
}

// TestBudgetExhaustionFallsBack: a fully dropped network exhausts the
// per-fetch deadline budget; the failure is ErrBudget with the
// fallback reason recorded, and virtual time never overshoots the
// budget window.
func TestBudgetExhaustionFallsBack(t *testing.T) {
	_, cli, clock, _ := newTestStack(t, testPayload(2_000, 6), 512,
		netsim.Config{DropRate: 1}, ClientConfig{Budget: 20, RPCTimeout: 1})
	res, err := cli.Fetch(0, 0, 5, nil)
	if !errors.Is(err, ErrBudget) || res != nil {
		t.Fatalf("err = %v res = %v", err, res)
	}
	if cli.PickFailure() != "fetch budget exhausted" {
		t.Fatalf("failure = %q", cli.PickFailure())
	}
	if now := clock.Now(); now < 19 || now > 20+1e-9 {
		t.Fatalf("budget window not honored: spent %v of 20", now)
	}
	// The budget is per fetch: a second Pick on the same client arms a
	// fresh window and burns it in full against the dead network rather
	// than failing instantly on the first fetch's expired deadline.
	before := clock.Now()
	if _, ok := cli.Pick(0, 0, 6); ok {
		t.Fatal("post-budget pick succeeded on a fully dropped network")
	}
	// The window may overshoot by at most one in-flight RPC timeout.
	if spent := clock.Now() - before; spent < 19 || spent > 21+1e-9 {
		t.Fatalf("second pick spent %v of its own 20s budget", spent)
	}
}

// TestBudgetRearmsPerFetch is the regression test for the stale-budget
// bug: the deadline used to be armed once per boot, so any fetch issued
// after a budget-exhausting boot — a lazy page-in, a reused client's
// next boot — inherited the expired deadline and failed instantly with
// ErrBudget. A second fetch after a slow first one must get its own
// fresh window, with no ResetBudget call in between.
func TestBudgetRearmsPerFetch(t *testing.T) {
	net := netsim.Config{
		BaseLatency: 0.01,
		Faults:      []netsim.Fault{netsim.Partition(0, 100, "")},
	}
	payload := testPayload(2_000, 12)
	_, cli, clock, _ := newTestStack(t, payload, 512, net,
		ClientConfig{Budget: 10, RPCTimeout: 1})

	// Fetch 1: the partition eats the whole budget.
	if _, err := cli.Fetch(0, 0, 5, nil); !errors.Is(err, ErrBudget) {
		t.Fatalf("fetch 1 err = %v, want ErrBudget", err)
	}
	if clock.Now() > 10+1e-9 {
		t.Fatalf("fetch 1 overshot its budget: %v", clock.Now())
	}

	// The partition ends; fetch 2 starts well after fetch 1's deadline
	// and must succeed on its own window without any explicit reset.
	clock.Sleep(100 - clock.Now())
	res, err := cli.Fetch(0, 0, 6, nil)
	if err != nil {
		t.Fatalf("fetch 2 after exhausted fetch 1: %v", err)
	}
	if !bytes.Equal(res.Data, payload) {
		t.Fatal("fetch 2 payload mismatch")
	}
	if res.Elapsed > 1 {
		t.Fatalf("fetch 2 on a healthy link took %v", res.Elapsed)
	}
}

// TestFetchSurvivesBrownout: a brownout window delays but does not
// doom a fetch with enough budget; the elapsed time lands inside the
// window's tail or after it.
func TestFetchSurvivesBrownout(t *testing.T) {
	net := netsim.Config{
		BaseLatency: 0.01,
		Faults:      []netsim.Fault{netsim.Brownout(0, 15, 0.95, 0.2)},
	}
	payload := testPayload(4_000, 8)
	_, cli, clock, _ := newTestStack(t, payload, 1024, net, ClientConfig{Budget: 120, RPCTimeout: 1})
	res, err := cli.Fetch(0, 0, 21, nil)
	if err != nil {
		t.Fatalf("fetch died in brownout: %v", err)
	}
	if !bytes.Equal(res.Data, payload) {
		t.Fatal("payload mismatch")
	}
	if res.Attempts < 2 {
		t.Fatal("brownout produced no retries")
	}
	if clock.Now() <= 1 {
		t.Fatalf("brownout cost no time: %v", clock.Now())
	}
}

// TestHTTPRoundTrip drives the real HTTP path end to end on localhost:
// publish over POST, manifest+chunks over GET, byte-exact payload.
func TestHTTPRoundTrip(t *testing.T) {
	store := jumpstart.NewStore()
	srv := NewServer(store, 2048)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payload := testPayload(9_000, 9)
	conn := NewHTTPConn(ts.URL, 5)
	cli := NewClient(conn, NewWallClock(), ClientConfig{Budget: 10})

	id, err := cli.Publish(2, 3, 0xfeed, payload)
	if err != nil {
		t.Fatal(err)
	}
	if store.Count(2, 3) != 1 {
		t.Fatal("publish did not land in the store")
	}
	res, err := cli.Fetch(2, 3, 77, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != id || !bytes.Equal(res.Data, payload) {
		t.Fatalf("HTTP round trip corrupted payload (id=%d len=%d)", res.ID, len(res.Data))
	}
	if res.Revision != 0xfeed {
		t.Fatalf("revision stamp lost over HTTP: got %x, want feed", res.Revision)
	}
	// Wrong bucket 404s into ErrNoPackage.
	if _, err := cli.Fetch(2, 4, 77, nil); !errors.Is(err, ErrNoPackage) {
		t.Fatalf("missing bucket err = %v", err)
	}
}

// TestHTTPHandlerRejectsBadRequests covers the handler's validation
// surface.
func TestHTTPHandlerRejectsBadRequests(t *testing.T) {
	srv := NewServer(jumpstart.NewStore(), 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{
		"/manifest?region=x&bucket=0&rnd=1",
		"/manifest?region=0&bucket=0&rnd=no",
		"/manifest?region=0&bucket=0&rnd=1&exclude=a",
		"/chunk?id=1&idx=zz",
		"/publish?region=0&bucket=0", // GET, needs POST
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Fatalf("%s accepted", path)
		}
	}
}

// TestServerChunkBounds covers direct chunk-range validation.
func TestServerChunkBounds(t *testing.T) {
	store := jumpstart.NewStore()
	id := store.Publish(0, 0, testPayload(1000, 10))
	srv := NewServer(store, 256)
	if _, err := srv.Chunk(id, 4); err == nil {
		t.Fatal("chunk past end accepted")
	}
	if _, err := srv.Chunk(id, -1); err == nil {
		t.Fatal("negative chunk accepted")
	}
	if _, err := srv.Chunk(id+5, 0); err == nil {
		t.Fatal("unknown package accepted")
	}
	wire, err := srv.Chunk(id, 3) // tail chunk, 1000-768 = 232 bytes
	if err != nil {
		t.Fatal(err)
	}
	b, err := decompressChunk(wire, 256)
	if err != nil || len(b) != 232 {
		t.Fatalf("tail chunk: len=%d err=%v", len(b), err)
	}
}

// TestSimFetchTelemetryZeroPerturbation: the same seeded lossy fetch
// with and without telemetry produces the same outcome and timeline.
func TestSimFetchTelemetryZeroPerturbation(t *testing.T) {
	run := func(withTel bool) (float64, int) {
		store := jumpstart.NewStore()
		store.Publish(0, 0, testPayload(4_000, 11))
		srv := NewServer(store, 1024)
		clock := netsim.NewVirtualClock(0)
		fab := netsim.NewFabric(netsim.Config{DropRate: 0.5, BaseLatency: 0.02})
		conn := NewSimConn(srv, fab, "c", clock, netsim.NewStream(workload.Fork(77, 0)), 0.5)
		cli := NewClient(conn, clock, ClientConfig{Seed: 77, Budget: 120})
		if withTel {
			cli.SetTelemetry(telemetry.NewSet())
			srv.SetTelemetry(telemetry.NewSet(), clock.Now)
		}
		res, err := cli.Fetch(0, 0, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed, res.RPCs
	}
	e1, r1 := run(false)
	e2, r2 := run(true)
	if e1 != e2 || r1 != r2 {
		t.Fatalf("telemetry perturbed the fetch: %v/%d vs %v/%d", e1, r1, e2, r2)
	}
}

// TestFetchChunkFreshBudgetPerCall pins the page-in fetch path: each
// FetchChunk call arms its own deadline window, verifies the chunk
// against its content address, and a call issued long after a previous
// budget exhaustion still succeeds.
func TestFetchChunkFreshBudgetPerCall(t *testing.T) {
	net := netsim.Config{
		BaseLatency: 0.01,
		Faults:      []netsim.Fault{netsim.Partition(5, 100, "")},
	}
	payload := testPayload(4_000, 13)
	_, cli, clock, _ := newTestStack(t, payload, 1024, net,
		ClientConfig{Budget: 10, RPCTimeout: 1})

	// Boot fetch before the partition: succeeds and caches the manifest.
	res, err := cli.Fetch(0, 0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	man := res.Manifest
	if man == nil || cli.LastManifest() != man {
		t.Fatal("boot fetch did not surface its manifest")
	}

	// Page-in during the partition: burns its own window, then fails.
	clock.Sleep(5 - clock.Now())
	before := clock.Now()
	if _, err := cli.FetchChunk(man, 0); !errors.Is(err, ErrBudget) {
		t.Fatalf("partitioned page-in err = %v, want ErrBudget", err)
	}
	if spent := clock.Now() - before; spent < 9 || spent > 11+1e-9 {
		t.Fatalf("page-in budget window off: spent %v of 10", spent)
	}

	// Page-in after the partition: a fresh window, an instant chunk.
	clock.Sleep(100 - clock.Now())
	cr, err := cli.FetchChunk(man, 1)
	if err != nil {
		t.Fatalf("post-partition page-in: %v", err)
	}
	if !bytes.Equal(cr.Data, payload[1024:2048]) {
		t.Fatal("page-in returned wrong chunk bytes")
	}
	if cr.Elapsed > 1 {
		t.Fatalf("healthy page-in took %v", cr.Elapsed)
	}

	// Out-of-range chunk indices are rejected without burning budget.
	if _, err := cli.FetchChunk(man, len(man.Chunks)); err == nil {
		t.Fatal("chunk index past end accepted")
	}
	if _, err := cli.FetchChunk(man, -1); err == nil {
		t.Fatal("negative chunk index accepted")
	}
}

// TestLazyPagerPageInAndMiss drives the pager the lazy server installs:
// a healthy network pages in at its virtual-time cost, a dead one
// reports a miss charged at the full budget, and the stats separate the
// two.
func TestLazyPagerPageInAndMiss(t *testing.T) {
	payload := testPayload(4_000, 14)
	const hz = 1e9

	// Healthy: every page-in lands, zero-latency fabric → zero cycles.
	_, cli, _, _ := newTestStack(t, payload, 1024, netsim.Config{}, ClientConfig{Budget: 10})
	res, err := cli.Fetch(0, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	pager := NewLazyPager(cli, res.Manifest, hz)
	for _, fn := range []string{"unit0::helper1", "unit3::endpoint2", "main"} {
		cycles, ok := pager.PageIn(fn)
		if !ok {
			t.Fatalf("healthy page-in of %q missed", fn)
		}
		if cycles != 0 {
			t.Fatalf("zero-latency page-in charged %v cycles", cycles)
		}
	}
	if ins, misses := pager.Stats(); ins != 3 || misses != 0 {
		t.Fatalf("stats = %d/%d, want 3/0", ins, misses)
	}

	// Dead network: the page-in misses and is charged the whole budget.
	_, deadCli, _, _ := newTestStack(t, payload, 1024,
		netsim.Config{DropRate: 1}, ClientConfig{Budget: 10, RPCTimeout: 1})
	deadPager := NewLazyPager(deadCli, res.Manifest, hz)
	cycles, ok := deadPager.PageIn("unit0::helper1")
	if ok {
		t.Fatal("page-in succeeded on a fully dropped network")
	}
	if cycles != 10*hz {
		t.Fatalf("miss charged %v cycles, want full budget %v", cycles, 10*hz)
	}
	if ins, misses := deadPager.Stats(); ins != 1 || misses != 1 {
		t.Fatalf("dead stats = %d/%d, want 1/1", ins, misses)
	}

	// No manifest (local boot, nothing to fetch): free and always ok.
	local := NewLazyPager(deadCli, nil, hz)
	if cycles, ok := local.PageIn("x"); cycles != 0 || !ok {
		t.Fatalf("manifestless page-in = %v/%v, want 0/true", cycles, ok)
	}
}
