package transport

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/netsim"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

// Conn is one client's connection to a store server. Implementations
// move the raw protocol messages (SimConn over the simulated fabric,
// HTTPConn over real localhost/network sockets); the Client owns
// retries, backoff, budgets, verification and reassembly.
type Conn interface {
	// Manifest asks the store to pick a package and describe it.
	Manifest(region, bucket int, rnd uint64, exclude []jumpstart.PackageID) (*Manifest, error)
	// Chunk fetches the compressed bytes of chunk idx of package id.
	Chunk(id jumpstart.PackageID, idx int) ([]byte, error)
	// Publish uploads a collected package stamped with the publisher's
	// build revision checksum (0 when unknown).
	Publish(region, bucket int, revision uint64, data []byte) (jumpstart.PackageID, error)
}

// Clock abstracts time for the client: virtual (netsim.VirtualClock)
// in simulations, wall (WallClock) in real deployments. Sleep is used
// for backoff; Conn implementations account RPC time themselves.
type Clock interface {
	Now() float64
	Sleep(seconds float64)
}

// WallClock is the real-time Clock for two-process deployments.
type WallClock struct{ start time.Time }

// NewWallClock returns a wall clock measuring seconds from now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns wall seconds since the clock was created.
func (c *WallClock) Now() float64 { return time.Since(c.start).Seconds() }

// Sleep blocks for the given number of wall seconds.
func (c *WallClock) Sleep(seconds float64) {
	if seconds > 0 {
		time.Sleep(time.Duration(seconds * float64(time.Second)))
	}
}

// ClientConfig tunes the fetch state machine.
type ClientConfig struct {
	// RPCTimeout is the per-RPC deadline in seconds: a dropped RPC
	// costs this long before the client retries.
	RPCTimeout float64
	// Budget is the per-fetch deadline budget in seconds. Every Fetch
	// (and Publish) arms a fresh window when it starts; once the window
	// passes, the request fails with ErrBudget and the consumer falls
	// back (Section VI-A3) instead of erroring.
	Budget float64
	// BackoffBase/BackoffCap shape the capped exponential backoff
	// between attempts: min(cap, base·2^(attempt-1)), scaled by a
	// deterministic jitter in [0.5, 1).
	BackoffBase float64
	BackoffCap  float64
	// Seed drives the jitter stream; fetches within one client fork
	// independent streams from it, so a fixed seed reproduces the
	// exact retry timeline.
	Seed uint64
}

// DefaultClientConfig returns production-shaped defaults (seconds).
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		RPCTimeout:  1,
		Budget:      30,
		BackoffBase: 0.1,
		BackoffCap:  5,
		Seed:        1,
	}
}

// withDefaults fills zero fields so a partially-specified config (or
// the zero value) behaves sanely.
func (c ClientConfig) withDefaults() ClientConfig {
	d := DefaultClientConfig()
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = d.RPCTimeout
	}
	if c.Budget <= 0 {
		c.Budget = d.Budget
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = d.BackoffCap
	}
	return c
}

// FetchResult is a completed package download.
type FetchResult struct {
	ID       jumpstart.PackageID
	Revision uint64 // build checksum stamp from the manifest
	Data     []byte
	Attempts int // transfer attempts (1 = no retry)
	RPCs     int // total RPCs issued, including failures
	Chunks   int // chunks in the package
	ChunkRPC int // chunk RPCs issued; < Attempts·Chunks proves resume
	Elapsed  float64
	// Manifest is the package's chunk map, kept so a lazy consumer can
	// page individual chunks back in post-boot (FetchChunk).
	Manifest *Manifest
}

// Client implements the consumer/seeder side of the protocol: pick
// via manifest, download content-addressed chunks (resuming across
// retries), verify, reassemble — under per-RPC timeouts, capped
// exponential backoff with deterministic jitter, and the per-boot
// deadline budget. It also implements jumpstart.PackageSource, so
// BootConsumer can draw packages straight off the network.
type Client struct {
	conn  Conn
	clock Clock
	cfg   ClientConfig
	tel   *telemetry.Set

	fetches     uint64
	deadline    float64
	lastFailure string
	lastMan     *Manifest // manifest of the most recent successful Fetch

	// Causal span state: spanParent is the enclosing span every
	// transport.fetch/publish span links under (0 = root); curSpan is
	// the in-flight fetch's span, parent of its RPC and backoff spans.
	spanParent uint64
	curSpan    uint64
}

// NewClient builds a client over conn and clock.
func NewClient(conn Conn, clock Clock, cfg ClientConfig) *Client {
	return &Client{conn: conn, clock: clock, cfg: cfg.withDefaults()}
}

// SetTelemetry installs the observation set (may be nil). Events are
// stamped with the client's clock.
func (c *Client) SetTelemetry(tel *telemetry.Set) { c.tel = tel }

// SetSpanParent links this client's subsequent fetch/publish spans
// under the given span ID (0 detaches them back to roots). Callers
// running one boot per client set it once; a reused client is
// re-parented per boot.
func (c *Client) SetSpanParent(id uint64) { c.spanParent = id }

// backoffBounds bucket retry backoff durations for the
// transport.backoff_seconds histogram.
var backoffBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// fetchLatencyBounds bucket whole-fetch durations for the
// transport.fetch_seconds histogram.
var fetchLatencyBounds = []float64{0.01, 0.1, 0.5, 1, 5, 15, 30, 60}

// PickFailure explains the most recent failed Pick/Fetch (empty after
// a success); BootConsumer records it as the FallbackReason.
func (c *Client) PickFailure() string { return c.lastFailure }

// Pick implements jumpstart.PackageSource over the network.
func (c *Client) Pick(region, bucket int, rnd uint64, exclude ...jumpstart.PackageID) (*jumpstart.StoredPackage, bool) {
	res, err := c.Fetch(region, bucket, rnd, exclude)
	if err != nil {
		return nil, false
	}
	return &jumpstart.StoredPackage{
		ID: res.ID, Region: region, Bucket: bucket,
		Revision: res.Revision, Data: res.Data,
	}, true
}

// ResetBudget is a compatibility no-op. The budget used to be armed
// once per boot, which made a reused Client inherit a stale — possibly
// already exhausted — deadline on any fetch issued after the boot
// (lazy page-ins hit this instantly). Fetch now arms a fresh window
// per call, so there is no cross-call state left to reset.
func (c *Client) ResetBudget() {}

// backoff computes the capped exponential backoff for attempt n >= 1
// with deterministic jitter in [0.5, 1).
func (c *Client) backoff(attempt int, jit *netsim.Stream) float64 {
	d := c.cfg.BackoffBase
	for i := 1; i < attempt && d < c.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffCap {
		d = c.cfg.BackoffCap
	}
	return d * (0.5 + 0.5*jit.Float())
}

// retryable reports whether the fetch loop should back off and retry
// after err. ErrNoPackage is terminal: waiting will not conjure a
// package the store does not have (or has fully excluded).
func retryable(err error) bool {
	return !errors.Is(err, ErrNoPackage)
}

// sleepBackoff waits out the attempt's backoff, truncating at the
// budget deadline. It reports false when the deadline was hit. The
// slept window lands as a "backoff" span under the in-flight fetch.
func (c *Client) sleepBackoff(attempt int, jit *netsim.Stream) bool {
	now := c.clock.Now()
	if now >= c.deadline {
		return false
	}
	b := c.backoff(attempt, jit)
	c.tel.Histogram("transport.backoff_seconds", backoffBounds).Observe(b)
	c.tel.Counter("transport.retries_total").Inc()
	c.tel.Event(c.clock.Now(), "transport", "retry",
		telemetry.I("attempt", int64(attempt)),
		telemetry.F("backoff", b))
	if now+b >= c.deadline {
		// Sleeping through the deadline: consume what remains of the
		// budget and give up, so Elapsed never overshoots it.
		c.clock.Sleep(c.deadline - now)
		c.tel.SpanUnder(c.curSpan, now, c.clock.Now(), "transport", "backoff",
			telemetry.I("attempt", int64(attempt)),
			telemetry.B("truncated", true))
		return false
	}
	c.clock.Sleep(b)
	c.tel.SpanUnder(c.curSpan, now, c.clock.Now(), "transport", "backoff",
		telemetry.I("attempt", int64(attempt)))
	return true
}

// Fetch downloads one package for (region, bucket): the store picks
// with rnd/exclude, then chunks stream over with verification and
// resume-on-retry. Each call arms its own deadline budget window; it
// fails with ErrBudget when that budget runs out, or ErrNoPackage when
// the store has nothing to offer.
func (c *Client) Fetch(region, bucket int, rnd uint64, exclude []jumpstart.PackageID) (*FetchResult, error) {
	start := c.clock.Now()
	c.deadline = start + c.cfg.Budget
	jit := netsim.NewStream(workload.Fork(c.cfg.Seed, c.fetches))
	c.fetches++
	c.lastFailure = ""
	c.curSpan = c.tel.BeginSpan()
	defer func() { c.curSpan = 0 }()
	c.tel.Event(start, "transport", "fetch-start",
		telemetry.I("region", int64(region)),
		telemetry.I("bucket", int64(bucket)),
		telemetry.I("exclude", int64(len(exclude))))

	res := &FetchResult{}
	chunks := map[uint64][]byte{} // content address -> verified chunk
	var m *Manifest
	fail := func(reason string, err error) (*FetchResult, error) {
		c.lastFailure = reason
		c.tel.Counter("transport.fetch_fail_total").Inc()
		c.tel.Event(c.clock.Now(), "transport", "fetch-fail",
			telemetry.S("reason", reason),
			telemetry.I("attempts", int64(res.Attempts)),
			telemetry.I("rpcs", int64(res.RPCs)))
		c.tel.EndSpan(c.curSpan, c.spanParent, start, c.clock.Now(), "transport", "transport.fetch",
			telemetry.S("outcome", reason),
			telemetry.I("attempts", int64(res.Attempts)))
		return nil, err
	}

	for attempt := 1; ; attempt++ {
		if c.clock.Now() >= c.deadline {
			return fail("fetch budget exhausted", ErrBudget)
		}
		res.Attempts = attempt
		data, err := c.tryOnce(region, bucket, rnd, exclude, &m, chunks, res)
		if err == nil {
			res.Data = data
			res.ID = m.ID
			res.Revision = m.Revision
			res.Chunks = len(m.Chunks)
			res.Elapsed = c.clock.Now() - start
			res.Manifest = m
			c.lastMan = m
			c.tel.Counter("transport.fetch_ok_total").Inc()
			c.tel.Histogram("transport.fetch_seconds", fetchLatencyBounds).Observe(res.Elapsed)
			c.tel.Event(c.clock.Now(), "transport", "fetch-done",
				telemetry.I("id", int64(res.ID)),
				telemetry.I("attempts", int64(res.Attempts)),
				telemetry.I("rpcs", int64(res.RPCs)),
				telemetry.F("elapsed", res.Elapsed))
			c.tel.EndSpan(c.curSpan, c.spanParent, start, c.clock.Now(), "transport", "transport.fetch",
				telemetry.S("outcome", "ok"),
				telemetry.I("id", int64(res.ID)),
				telemetry.I("attempts", int64(res.Attempts)))
			return res, nil
		}
		if !retryable(err) {
			return fail("no package available", err)
		}
		c.tel.Counter("transport.rpc_failures_total").Inc()
		if !c.sleepBackoff(attempt, jit) {
			return fail("fetch budget exhausted", ErrBudget)
		}
	}
}

// LastManifest returns the manifest of the most recent successful
// Fetch (nil before one) — the chunk map a LazyPager pages against.
func (c *Client) LastManifest() *Manifest { return c.lastMan }

// ChunkResult is one completed on-demand chunk fetch (lazy page-in).
type ChunkResult struct {
	Data     []byte
	Attempts int
	RPCs     int
	Elapsed  float64
}

// FetchChunk downloads and verifies a single chunk of a previously
// fetched package — the lazy page-in path. Like Fetch it arms its own
// per-fetch deadline budget and retries under the capped exponential
// backoff; a stale budget from the boot fetch can never leak in.
func (c *Client) FetchChunk(man *Manifest, idx int) (*ChunkResult, error) {
	if man == nil || idx < 0 || idx >= len(man.Chunks) {
		return nil, fmt.Errorf("%w: page-in chunk %d out of range", ErrRPC, idx)
	}
	start := c.clock.Now()
	c.deadline = start + c.cfg.Budget
	jit := netsim.NewStream(workload.Fork(c.cfg.Seed, c.fetches))
	c.fetches++
	c.lastFailure = ""
	c.curSpan = c.tel.BeginSpan()
	defer func() { c.curSpan = 0 }()

	res := &ChunkResult{}
	fail := func(reason string, err error) (*ChunkResult, error) {
		c.lastFailure = reason
		c.tel.Counter("transport.pagein_fail_total").Inc()
		c.tel.EndSpan(c.curSpan, c.spanParent, start, c.clock.Now(), "transport", "transport.pagein",
			telemetry.S("outcome", reason),
			telemetry.I("attempts", int64(res.Attempts)))
		return nil, err
	}
	want := man.Chunks[idx]
	for attempt := 1; ; attempt++ {
		if c.clock.Now() >= c.deadline {
			return fail("page-in budget exhausted", ErrBudget)
		}
		res.Attempts = attempt
		c.tel.Counter("transport.rpcs_total").Inc()
		res.RPCs++
		t0 := c.clock.Now()
		wire, err := c.conn.Chunk(man.ID, idx)
		c.tel.SpanUnder(c.curSpan, t0, c.clock.Now(), "transport", "rpc.chunk",
			telemetry.I("idx", int64(idx)),
			telemetry.B("ok", err == nil))
		if err == nil {
			b, derr := decompressChunk(wire, man.ChunkSize)
			if derr == nil && chunkHash(b) == want {
				res.Data = b
				res.Elapsed = c.clock.Now() - start
				c.tel.Counter("transport.pagein_ok_total").Inc()
				c.tel.EndSpan(c.curSpan, c.spanParent, start, c.clock.Now(), "transport", "transport.pagein",
					telemetry.S("outcome", "ok"),
					telemetry.I("idx", int64(idx)),
					telemetry.I("attempts", int64(res.Attempts)))
				return res, nil
			}
			err = fmt.Errorf("%w: chunk %d failed verification", ErrBadChunk, idx)
		}
		if !retryable(err) {
			return fail("no package available", err)
		}
		c.tel.Counter("transport.rpc_failures_total").Inc()
		if !c.sleepBackoff(attempt, jit) {
			return fail("page-in budget exhausted", ErrBudget)
		}
	}
}

// tryOnce runs one transfer attempt: resolve the manifest if not yet
// held, then fetch every chunk still missing from the cache. The
// content-addressed cache is what makes a retry resume mid-transfer.
func (c *Client) tryOnce(region, bucket int, rnd uint64, exclude []jumpstart.PackageID,
	m **Manifest, chunks map[uint64][]byte, res *FetchResult) ([]byte, error) {
	if *m == nil {
		c.tel.Counter("transport.rpcs_total").Inc()
		res.RPCs++
		t0 := c.clock.Now()
		mm, err := c.conn.Manifest(region, bucket, rnd, exclude)
		c.tel.SpanUnder(c.curSpan, t0, c.clock.Now(), "transport", "rpc.manifest",
			telemetry.B("ok", err == nil))
		if err != nil {
			return nil, err
		}
		if mm.ChunkSize <= 0 {
			return nil, fmt.Errorf("%w: manifest chunk size %d", ErrRPC, mm.ChunkSize)
		}
		*m = mm
	}
	man := *m
	for idx, h := range man.Chunks {
		if _, ok := chunks[h]; ok {
			continue
		}
		c.tel.Counter("transport.rpcs_total").Inc()
		res.RPCs++
		res.ChunkRPC++
		t0 := c.clock.Now()
		wire, err := c.conn.Chunk(man.ID, idx)
		c.tel.SpanUnder(c.curSpan, t0, c.clock.Now(), "transport", "rpc.chunk",
			telemetry.I("idx", int64(idx)),
			telemetry.B("ok", err == nil))
		if err != nil {
			return nil, err
		}
		b, err := decompressChunk(wire, man.ChunkSize)
		if err != nil {
			return nil, err
		}
		if chunkHash(b) != h {
			return nil, fmt.Errorf("%w: chunk %d content-address mismatch", ErrBadChunk, idx)
		}
		chunks[h] = b
	}
	// Reassemble in manifest order and verify the whole payload.
	data := make([]byte, 0, man.Size)
	for _, h := range man.Chunks {
		data = append(data, chunks[h]...)
	}
	if len(data) != man.Size || crc32.ChecksumIEEE(data) != man.CRC32 {
		// The cached chunks cannot produce the manifest's payload:
		// drop everything and restart the transfer cleanly.
		for h := range chunks {
			delete(chunks, h)
		}
		*m = nil
		return nil, fmt.Errorf("%w: reassembled payload failed checksum", ErrBadChunk)
	}
	return data, nil
}

// Publish uploads a collected package with the same retry/backoff
// machinery, under its own budget window (armed per call, not shared
// with boot fetches). revision stamps the package with the
// publisher's build checksum (0 when unknown).
func (c *Client) Publish(region, bucket int, revision uint64, data []byte) (jumpstart.PackageID, error) {
	start := c.clock.Now()
	deadline := start + c.cfg.Budget
	jit := netsim.NewStream(workload.Fork(c.cfg.Seed, 1<<32+c.fetches))
	c.fetches++
	span := c.tel.BeginSpan()
	for attempt := 1; ; attempt++ {
		c.tel.Counter("transport.rpcs_total").Inc()
		t0 := c.clock.Now()
		id, err := c.conn.Publish(region, bucket, revision, data)
		c.tel.SpanUnder(span, t0, c.clock.Now(), "transport", "rpc.publish",
			telemetry.I("attempt", int64(attempt)),
			telemetry.B("ok", err == nil))
		if err == nil {
			c.tel.Counter("transport.publish_ok_total").Inc()
			c.tel.Event(c.clock.Now(), "transport", "publish",
				telemetry.I("id", int64(id)),
				telemetry.I("region", int64(region)),
				telemetry.I("bucket", int64(bucket)),
				telemetry.I("attempts", int64(attempt)))
			c.tel.EndSpan(span, c.spanParent, start, c.clock.Now(), "transport", "transport.publish",
				telemetry.S("outcome", "ok"),
				telemetry.I("attempts", int64(attempt)))
			return id, nil
		}
		c.tel.Counter("transport.rpc_failures_total").Inc()
		now := c.clock.Now()
		if now >= deadline {
			c.tel.Counter("transport.publish_fail_total").Inc()
			c.tel.Event(now, "transport", "publish-fail",
				telemetry.I("attempts", int64(attempt)))
			c.tel.EndSpan(span, c.spanParent, start, now, "transport", "transport.publish",
				telemetry.S("outcome", "budget-exhausted"),
				telemetry.I("attempts", int64(attempt)))
			return 0, fmt.Errorf("%w: publish: %v", ErrBudget, err)
		}
		b := c.backoff(attempt, jit)
		t0 = c.clock.Now()
		if now+b >= deadline {
			c.clock.Sleep(deadline - now)
		} else {
			c.clock.Sleep(b)
		}
		c.tel.SpanUnder(span, t0, c.clock.Now(), "transport", "backoff",
			telemetry.I("attempt", int64(attempt)))
	}
}
