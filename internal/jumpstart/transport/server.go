package transport

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/telemetry"
)

// maxPublishBytes bounds an uploaded package body (a misbehaving
// seeder must not OOM the store).
const maxPublishBytes = 64 << 20

// Server fronts a jumpstart.Store with the chunked package protocol.
// It is used two ways: directly (method calls) by the simulated
// network's SimConn, and over HTTP via Handler for the real
// two-process jumpstartd deployment.
type Server struct {
	store     *jumpstart.Store
	chunkSize int

	// tel/clock observe RPC traffic; telemetry never alters behavior.
	tel   *telemetry.Set
	clock func() float64
}

// NewServer builds a store server (chunkSize <= 0 selects
// DefaultChunkSize).
func NewServer(store *jumpstart.Store, chunkSize int) *Server {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Server{store: store, chunkSize: chunkSize}
}

// Store returns the backing package store.
func (s *Server) Store() *jumpstart.Store { return s.store }

// SetTelemetry installs the observation set and virtual clock for
// server-side RPC events. Either may be nil.
func (s *Server) SetTelemetry(tel *telemetry.Set, clock func() float64) {
	s.tel = tel
	s.clock = clock
}

func (s *Server) now() float64 {
	if s.clock == nil {
		return 0
	}
	return s.clock()
}

// Manifest picks a package for (region, bucket) with the given random
// value and exclusion list, and returns its chunk manifest.
func (s *Server) Manifest(region, bucket int, rnd uint64, exclude []jumpstart.PackageID) (*Manifest, error) {
	p, ok := s.store.Pick(region, bucket, rnd, exclude...)
	if !ok {
		s.tel.Counter("transport.server.no_package_total").Inc()
		return nil, ErrNoPackage
	}
	s.tel.Counter("transport.server.manifests_total").Inc()
	return manifestFor(p, s.chunkSize), nil
}

// Chunk returns the gzip-compressed bytes of chunk idx of package id.
func (s *Server) Chunk(id jumpstart.PackageID, idx int) ([]byte, error) {
	p, ok := s.store.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: package %d not found", ErrRPC, id)
	}
	lo, hi, err := chunkBounds(len(p.Data), s.chunkSize, idx)
	if err != nil {
		return nil, err
	}
	s.tel.Counter("transport.server.chunks_total").Inc()
	return compressChunk(p.Data[lo:hi]), nil
}

// Publish stores an uploaded package, stamped with the publisher's
// build revision checksum, and returns its id.
func (s *Server) Publish(region, bucket int, revision uint64, data []byte) jumpstart.PackageID {
	s.tel.Counter("transport.server.publishes_total").Inc()
	return s.store.PublishRevision(region, bucket, data, revision)
}

// Handler returns the HTTP surface of the protocol:
//
//	GET  /manifest?region=R&bucket=B&rnd=N&exclude=1,2  -> Manifest JSON (404 when none)
//	GET  /chunk?id=I&idx=K                              -> gzip chunk bytes
//	POST /publish?region=R&bucket=B&rev=C               -> {"id": N}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest", s.handleManifest)
	mux.HandleFunc("/chunk", s.handleChunk)
	mux.HandleFunc("/publish", s.handlePublish)
	return mux
}

func queryInt(r *http.Request, key string) (int, error) {
	v, err := strconv.Atoi(r.URL.Query().Get(key))
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", key, err)
	}
	return v, nil
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	region, err := queryInt(r, "region")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bucket, err := queryInt(r, "bucket")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rnd, err := strconv.ParseUint(r.URL.Query().Get("rnd"), 10, 64)
	if err != nil {
		http.Error(w, "bad rnd: "+err.Error(), http.StatusBadRequest)
		return
	}
	var exclude []jumpstart.PackageID
	if ex := r.URL.Query().Get("exclude"); ex != "" {
		for _, part := range strings.Split(ex, ",") {
			id, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				http.Error(w, "bad exclude: "+err.Error(), http.StatusBadRequest)
				return
			}
			exclude = append(exclude, jumpstart.PackageID(id))
		}
	}
	m, err := s.Manifest(region, bucket, rnd, exclude)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m)
}

func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	id, err := queryInt(r, "id")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	idx, err := queryInt(r, "idx")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wire, err := s.Chunk(jumpstart.PackageID(id), idx)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(wire)
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "publish requires POST", http.StatusMethodNotAllowed)
		return
	}
	region, err := queryInt(r, "region")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bucket, err := queryInt(r, "bucket")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var revision uint64
	if rev := r.URL.Query().Get("rev"); rev != "" {
		revision, err = strconv.ParseUint(rev, 10, 64)
		if err != nil {
			http.Error(w, "bad rev: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxPublishBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) > maxPublishBytes {
		http.Error(w, "package too large", http.StatusRequestEntityTooLarge)
		return
	}
	id := s.Publish(region, bucket, revision, data)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"id\":%d}\n", id)
}
