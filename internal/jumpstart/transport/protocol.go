// Package transport moves profile-data packages between the store and
// the fleet over a network — the real one (HTTP, for the two-process
// jumpstartd handoff) or the simulated one (internal/netsim, for fleet
// experiments). Figure 3's workflows assume this hop: seeders upload
// packages after collection, consumers download one at boot, and
// Section VI's reliability story only matters because that hop can
// misbehave.
//
// The wire protocol is chunked, checksummed and gzip-compressed:
// a manifest names a picked package and the content addresses (FNV-1a
// hashes) of its fixed-size chunks; chunks travel gzip-compressed and
// are verified against their address on arrival. Because chunks are
// content-addressed, a retry after a mid-transfer failure re-fetches
// only the chunks it is missing — transfers resume, they never
// restart. The client layers per-RPC timeouts, capped exponential
// backoff with deterministic jitter, and a per-fetch deadline budget
// on top; when the budget is exhausted the failure surfaces as a
// BootInfo.FallbackReason and the consumer takes the ordinary
// no-Jump-Start fallback instead of crashing (Section VI-A3).
package transport

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"

	"jumpstart/internal/jumpstart"
)

// DefaultChunkSize is the package chunking granularity when the server
// is built with a non-positive chunk size.
const DefaultChunkSize = 16 << 10

// Protocol errors. Timeout/RPC/BadChunk are retryable within the
// fetch budget; NoPackage and Budget are terminal for the attempt and
// turn into the consumer's fallback reason.
var (
	// ErrNoPackage means the store had no (non-excluded) package for
	// the requested (region, bucket).
	ErrNoPackage = errors.New("transport: no package available")
	// ErrTimeout means an RPC was dropped by the network and the
	// client waited out its per-RPC timeout.
	ErrTimeout = errors.New("transport: rpc timed out")
	// ErrRPC means the far end answered with a failure.
	ErrRPC = errors.New("transport: rpc failed")
	// ErrBadChunk means a chunk failed decompression or content-hash
	// verification.
	ErrBadChunk = errors.New("transport: chunk failed verification")
	// ErrBudget means the per-fetch deadline budget ran out.
	ErrBudget = errors.New("transport: fetch budget exhausted")
)

// Manifest describes one picked package: its identity, full-payload
// checksum, and the content addresses of its chunks in order.
type Manifest struct {
	ID     jumpstart.PackageID `json:"id"`
	Region int                 `json:"region"`
	Bucket int                 `json:"bucket"`
	// Revision is the build checksum the package was collected
	// against (0 from pre-revision publishers). Carried on the
	// manifest so a consumer can check compatibility before spending
	// its fetch budget on chunks.
	Revision  uint64   `json:"revision"`
	Size      int      `json:"size"`
	CRC32     uint32   `json:"crc32"`
	ChunkSize int      `json:"chunk_size"`
	Chunks    []uint64 `json:"chunks"` // FNV-1a 64 content addresses
}

// chunkHash is the content address of one uncompressed chunk.
func chunkHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// chunkBounds returns the [lo, hi) byte range of chunk idx.
func chunkBounds(size, chunkSize, idx int) (int, int, error) {
	lo := idx * chunkSize
	if idx < 0 || lo >= size {
		return 0, 0, fmt.Errorf("%w: chunk %d out of range", ErrRPC, idx)
	}
	hi := lo + chunkSize
	if hi > size {
		hi = size
	}
	return lo, hi, nil
}

// manifestFor chunks a stored package.
func manifestFor(p *jumpstart.StoredPackage, chunkSize int) *Manifest {
	m := &Manifest{
		ID:        p.ID,
		Region:    p.Region,
		Bucket:    p.Bucket,
		Revision:  p.Revision,
		Size:      len(p.Data),
		CRC32:     crc32.ChecksumIEEE(p.Data),
		ChunkSize: chunkSize,
	}
	for lo := 0; lo < len(p.Data); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(p.Data) {
			hi = len(p.Data)
		}
		m.Chunks = append(m.Chunks, chunkHash(p.Data[lo:hi]))
	}
	return m
}

// compressChunk gzips one chunk for the wire.
func compressChunk(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(b)
	zw.Close()
	return buf.Bytes()
}

// decompressChunk inflates a wire chunk, refusing to inflate past
// maxLen (a corrupt or malicious chunk must not OOM a consumer, same
// rule as prof.Decode).
func decompressChunk(wire []byte, maxLen int) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(wire))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadChunk, err)
	}
	defer zr.Close()
	out, err := io.ReadAll(io.LimitReader(zr, int64(maxLen)+1))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadChunk, err)
	}
	if len(out) > maxLen {
		return nil, fmt.Errorf("%w: chunk inflates past %d bytes", ErrBadChunk, maxLen)
	}
	return out, nil
}
