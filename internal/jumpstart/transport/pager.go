package transport

import "hash/fnv"

// LazyPager adapts a Client and the boot fetch's manifest into the
// on-demand pager a lazy consumer installs (it satisfies server.Pager
// structurally — PageIn(fn) (cycles, ok)). The package's translation
// artifacts are modeled by its content-addressed chunks: each function
// maps deterministically onto one chunk, and paging the function in
// re-fetches that chunk over the transport under a fresh per-fetch
// deadline budget. The virtual time the fetch burns converts to cycles
// at clockHz and is charged to the requesting request — the mechanism
// that makes a lazy boot's early tail slow and a brownout's page-in
// stalls visible in the capacity curve.
type LazyPager struct {
	cli     *Client
	man     *Manifest
	clockHz float64

	pageIns int
	misses  int
}

// NewLazyPager builds a pager over cli for the package described by
// man (typically FetchResult.Manifest or Client.LastManifest from the
// boot fetch). clockHz converts fetch seconds into charged cycles.
func NewLazyPager(cli *Client, man *Manifest, clockHz float64) *LazyPager {
	return &LazyPager{cli: cli, man: man, clockHz: clockHz}
}

// SetManifest points the pager at a manifest obtained after
// construction — the boot-from-store path builds the pager before the
// boot fetch (so the server config can carry it) and arms it with
// Client.LastManifest once the fetch lands. Call before the server
// starts serving; a pager with no manifest pages in locally.
func (p *LazyPager) SetManifest(man *Manifest) { p.man = man }

// chunkFor maps a function name onto one of the manifest's chunks.
func (p *LazyPager) chunkFor(fn string) int {
	h := fnv.New64a()
	h.Write([]byte(fn))
	return int(h.Sum64() % uint64(len(p.man.Chunks)))
}

// PageIn fetches fn's artifact chunk, returning the cycles the fetch
// cost and whether it landed. A miss (budget exhausted against a
// degraded store) reports ok=false; the server leaves the function on
// the interpreter/live-JIT path and never retries it.
func (p *LazyPager) PageIn(fn string) (float64, bool) {
	if p.man == nil || len(p.man.Chunks) == 0 {
		return 0, true
	}
	p.pageIns++
	res, err := p.cli.FetchChunk(p.man, p.chunkFor(fn))
	if err != nil {
		p.misses++
		return p.cli.cfg.Budget * p.clockHz, false
	}
	return res.Elapsed * p.clockHz, true
}

// Stats reports page-ins attempted and the subset that missed.
func (p *LazyPager) Stats() (pageIns, misses int) { return p.pageIns, p.misses }
