package jumpstart

import (
	"sync"
	"testing"

	"jumpstart/internal/workload"
)

// TestRemoveDropsReference pins the memory-leak fix in Store.Remove:
// the shifted-down delete must nil the vacated tail slot of the bucket
// slice, or the backing array keeps the removed *StoredPackage (and
// its profile bytes) reachable for the lifetime of the bucket.
func TestRemoveDropsReference(t *testing.T) {
	s := NewStore()
	s.Publish(0, 0, []byte("pkg-a"))
	id2 := s.Publish(0, 0, []byte("pkg-b"))
	s.Publish(0, 0, []byte("pkg-c"))

	// Capture the bucket slice before removal: it shares the backing
	// array the store will shrink, so its tail slot exposes whatever
	// the delete left behind.
	before := s.pkgs[storeKey{0, 0}]
	if len(before) != 3 {
		t.Fatalf("setup: %d packages", len(before))
	}
	if !s.Remove(id2) {
		t.Fatal("remove failed")
	}
	if got := s.Count(0, 0); got != 2 {
		t.Fatalf("count after remove = %d", got)
	}
	if before[2] != nil {
		t.Fatalf("vacated backing-array slot still references package %d", before[2].ID)
	}
	// The retained packages survived the shift intact.
	live := s.pkgs[storeKey{0, 0}]
	if string(live[0].Data) != "pkg-a" || string(live[1].Data) != "pkg-c" {
		t.Fatalf("survivors corrupted: %q %q", live[0].Data, live[1].Data)
	}
}

// TestQuarantineRingBounded pins the bounded-quarantine fix: the store
// keeps only the most recent K quarantined packages, counts evictions,
// and returns survivors oldest-first — mirroring the event tracer's
// bounded ring.
func TestQuarantineRingBounded(t *testing.T) {
	s := NewStore()
	s.SetQuarantineCap(4)
	var ids []PackageID
	for i := 0; i < 10; i++ {
		ids = append(ids, s.Quarantine(0, 0, []byte{byte(i)}))
	}
	if got := s.QuarantinedCount(); got != 4 {
		t.Fatalf("count = %d, want cap 4", got)
	}
	if got := s.QuarantineDropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	q := s.Quarantined()
	for i, p := range q {
		if p.ID != ids[6+i] {
			t.Fatalf("ring[%d] = id %d, want %d (most recent, oldest-first)", i, p.ID, ids[6+i])
		}
	}
	// Shrinking the cap keeps the newest survivors and counts the rest.
	s.SetQuarantineCap(2)
	if s.QuarantinedCount() != 2 || s.QuarantineDropped() != 8 {
		t.Fatalf("after shrink: count=%d dropped=%d", s.QuarantinedCount(), s.QuarantineDropped())
	}
	if q := s.Quarantined(); q[0].ID != ids[8] || q[1].ID != ids[9] {
		t.Fatalf("shrink kept wrong entries: %d %d", q[0].ID, q[1].ID)
	}
}

// TestStoreGet covers the transport server's package lookup.
func TestStoreGet(t *testing.T) {
	s := NewStore()
	id := s.Publish(1, 2, []byte("data"))
	p, ok := s.Get(id)
	if !ok || p.Region != 1 || p.Bucket != 2 || string(p.Data) != "data" {
		t.Fatalf("get = %+v ok=%v", p, ok)
	}
	if _, ok := s.Get(id + 99); ok {
		t.Fatal("unknown id found")
	}
}

// TestRemoveEvictsIndex pins the byID index maintenance: Remove must
// evict the index entry alongside the bucket-list entry, or a removed
// package resurfaces through Get (which the transport server uses to
// resolve every chunk RPC).
func TestRemoveEvictsIndex(t *testing.T) {
	s := NewStore()
	id1 := s.Publish(0, 0, []byte("pkg-a"))
	id2 := s.Publish(0, 0, []byte("pkg-b"))
	if !s.Remove(id1) {
		t.Fatal("remove failed")
	}
	if _, ok := s.Get(id1); ok {
		t.Fatal("removed package still resolvable through Get")
	}
	if _, ok := s.byID[id1]; ok {
		t.Fatal("removed package still in the byID index")
	}
	// The survivor is untouched, and re-removing the dead id is a no-op.
	if p, ok := s.Get(id2); !ok || string(p.Data) != "pkg-b" {
		t.Fatalf("survivor lookup = %+v ok=%v", p, ok)
	}
	if s.Remove(id1) {
		t.Fatal("double remove reported success")
	}
}

// TestPickExcludeAllocFree pins the Pick exclusion fix: the retry path
// (exclude list populated, no telemetry) must not allocate — crash
// retries hit it at the consumer's worst moment. Run by make
// alloccheck.
func TestPickExcludeAllocFree(t *testing.T) {
	s := NewStore()
	ids := make([]PackageID, 8)
	for i := range ids {
		ids[i] = s.Publish(0, 0, []byte{byte(i)})
	}
	exclude := []PackageID{ids[1], ids[4], ids[6]}
	rnd := uint64(0)
	avg := testing.AllocsPerRun(200, func() {
		rnd += 0x9e3779b97f4a7c15
		p, ok := s.Pick(0, 0, rnd, exclude...)
		if !ok {
			t.Fatal("pick failed")
		}
		if idExcluded(p.ID, exclude) {
			t.Fatalf("picked excluded package %d", p.ID)
		}
	})
	if avg != 0 {
		t.Fatalf("Pick with exclusions allocates: %v allocs per call", avg)
	}
	// The exhausted path (everything excluded) is the same retry loop
	// one failure deeper; it must be alloc-free too.
	all := append([]PackageID(nil), ids...)
	avg = testing.AllocsPerRun(200, func() {
		if _, ok := s.Pick(0, 0, 12345, all...); ok {
			t.Fatal("exhausted pick succeeded")
		}
	})
	if avg != 0 {
		t.Fatalf("exhausted Pick allocates: %v allocs per call", avg)
	}
}

// TestPickExcludeUniform: with exclusions in force, the draw stays
// near-uniform over the surviving candidates and never lands on an
// excluded id (the linear-scan rewrite must preserve the VI-A2
// distribution the filtered slice gave).
func TestPickExcludeUniform(t *testing.T) {
	s := NewStore()
	ids := make([]PackageID, 5)
	for i := range ids {
		ids[i] = s.Publish(0, 0, []byte{byte(i)})
	}
	exclude := []PackageID{ids[0], ids[3]}
	const n = 30000
	counts := map[PackageID]int{}
	for i := uint64(0); i < n; i++ {
		p, ok := s.Pick(0, 0, workload.Fork(7, i), exclude...)
		if !ok {
			t.Fatal("pick failed")
		}
		counts[p.ID]++
	}
	if counts[ids[0]] != 0 || counts[ids[3]] != 0 {
		t.Fatalf("excluded package picked: %v", counts)
	}
	want := float64(n) / 3
	for _, id := range []PackageID{ids[1], ids[2], ids[4]} {
		got := float64(counts[id])
		if got < 0.95*want || got > 1.05*want {
			t.Fatalf("package %d picked %d times, expected ~%.0f (counts %v)",
				id, counts[id], want, counts)
		}
	}
}

// TestQuarantineCapShrinkThenGrow pins the resize edge cases: a shrink
// keeps the newest entries and counts the evictions, a following grow
// preserves oldest-first order and the drop count, and the regrown ring
// fills and wraps correctly.
func TestQuarantineCapShrinkThenGrow(t *testing.T) {
	s := NewStore()
	s.SetQuarantineCap(5)
	var ids []PackageID
	for i := 0; i < 5; i++ {
		ids = append(ids, s.Quarantine(0, 0, []byte{byte(i)}))
	}
	s.SetQuarantineCap(3) // drops the 2 oldest
	if s.QuarantinedCount() != 3 || s.QuarantineDropped() != 2 {
		t.Fatalf("after shrink: count=%d dropped=%d", s.QuarantinedCount(), s.QuarantineDropped())
	}
	s.SetQuarantineCap(6) // grow: survivors and accounting untouched
	if s.QuarantinedCount() != 3 || s.QuarantineDropped() != 2 {
		t.Fatalf("after grow: count=%d dropped=%d", s.QuarantinedCount(), s.QuarantineDropped())
	}
	for i, p := range s.Quarantined() {
		if p.ID != ids[2+i] {
			t.Fatalf("grow reordered ring: [%d] = id %d, want %d", i, p.ID, ids[2+i])
		}
	}
	// Fill the regrown ring past its cap: 3 survivors + 4 new = 7 > 6,
	// so the oldest survivor is overwritten and counted.
	for i := 5; i < 9; i++ {
		ids = append(ids, s.Quarantine(0, 0, []byte{byte(i)}))
	}
	if s.QuarantinedCount() != 6 || s.QuarantineDropped() != 3 {
		t.Fatalf("after refill: count=%d dropped=%d", s.QuarantinedCount(), s.QuarantineDropped())
	}
	for i, p := range s.Quarantined() {
		if p.ID != ids[3+i] {
			t.Fatalf("refill order: [%d] = id %d, want %d", i, p.ID, ids[3+i])
		}
	}
}

// TestQuarantineConcurrentWithResize interleaves Quarantine with
// SetQuarantineCap under concurrent publishers (run under -race by
// make verify). The invariants that must hold whatever the
// interleaving: the ring never exceeds the final cap, every package is
// either held or counted as dropped, and the survivors read back
// oldest-first without duplicates.
func TestQuarantineConcurrentWithResize(t *testing.T) {
	s := NewStore()
	s.SetQuarantineCap(8)
	const publishers = 4
	const perPublisher = 200
	var wg sync.WaitGroup
	for g := 0; g < publishers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				s.Quarantine(g, i, []byte{byte(g), byte(i)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, k := range []int{3, 16, 1, 8, 5, 12, 2, 8} {
			s.SetQuarantineCap(k)
		}
	}()
	wg.Wait()
	s.SetQuarantineCap(8)
	if got := s.QuarantinedCount(); got > 8 {
		t.Fatalf("ring overflowed final cap: %d", got)
	}
	held := uint64(s.QuarantinedCount())
	if held+s.QuarantineDropped() != publishers*perPublisher {
		t.Fatalf("accounting leak: held %d + dropped %d != %d",
			held, s.QuarantineDropped(), publishers*perPublisher)
	}
	seen := map[PackageID]bool{}
	for _, p := range s.Quarantined() {
		if seen[p.ID] {
			t.Fatalf("duplicate id %d in ring", p.ID)
		}
		seen[p.ID] = true
	}
}

// TestPickNearUniform asserts the Section VI-A2 property the modulo
// draw weakened: over many well-mixed draws, every package in a bucket
// is selected at close to the uniform rate.
func TestPickNearUniform(t *testing.T) {
	s := NewStore()
	const k = 3
	ids := make([]PackageID, k)
	for i := range ids {
		ids[i] = s.Publish(0, 0, []byte{byte(i)})
	}
	const n = 30000
	counts := map[PackageID]int{}
	for i := uint64(0); i < n; i++ {
		p, ok := s.Pick(0, 0, workload.Fork(99, i))
		if !ok {
			t.Fatal("pick failed")
		}
		counts[p.ID]++
	}
	want := float64(n) / k
	for _, id := range ids {
		got := float64(counts[id])
		if got < 0.95*want || got > 1.05*want {
			t.Fatalf("package %d picked %d times, expected ~%.0f (counts %v)",
				id, counts[id], want, counts)
		}
	}
}
