package jumpstart

import (
	"testing"

	"jumpstart/internal/workload"
)

// TestRemoveDropsReference pins the memory-leak fix in Store.Remove:
// the shifted-down delete must nil the vacated tail slot of the bucket
// slice, or the backing array keeps the removed *StoredPackage (and
// its profile bytes) reachable for the lifetime of the bucket.
func TestRemoveDropsReference(t *testing.T) {
	s := NewStore()
	s.Publish(0, 0, []byte("pkg-a"))
	id2 := s.Publish(0, 0, []byte("pkg-b"))
	s.Publish(0, 0, []byte("pkg-c"))

	// Capture the bucket slice before removal: it shares the backing
	// array the store will shrink, so its tail slot exposes whatever
	// the delete left behind.
	before := s.pkgs[storeKey{0, 0}]
	if len(before) != 3 {
		t.Fatalf("setup: %d packages", len(before))
	}
	if !s.Remove(id2) {
		t.Fatal("remove failed")
	}
	if got := s.Count(0, 0); got != 2 {
		t.Fatalf("count after remove = %d", got)
	}
	if before[2] != nil {
		t.Fatalf("vacated backing-array slot still references package %d", before[2].ID)
	}
	// The retained packages survived the shift intact.
	live := s.pkgs[storeKey{0, 0}]
	if string(live[0].Data) != "pkg-a" || string(live[1].Data) != "pkg-c" {
		t.Fatalf("survivors corrupted: %q %q", live[0].Data, live[1].Data)
	}
}

// TestQuarantineRingBounded pins the bounded-quarantine fix: the store
// keeps only the most recent K quarantined packages, counts evictions,
// and returns survivors oldest-first — mirroring the event tracer's
// bounded ring.
func TestQuarantineRingBounded(t *testing.T) {
	s := NewStore()
	s.SetQuarantineCap(4)
	var ids []PackageID
	for i := 0; i < 10; i++ {
		ids = append(ids, s.Quarantine(0, 0, []byte{byte(i)}))
	}
	if got := s.QuarantinedCount(); got != 4 {
		t.Fatalf("count = %d, want cap 4", got)
	}
	if got := s.QuarantineDropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	q := s.Quarantined()
	for i, p := range q {
		if p.ID != ids[6+i] {
			t.Fatalf("ring[%d] = id %d, want %d (most recent, oldest-first)", i, p.ID, ids[6+i])
		}
	}
	// Shrinking the cap keeps the newest survivors and counts the rest.
	s.SetQuarantineCap(2)
	if s.QuarantinedCount() != 2 || s.QuarantineDropped() != 8 {
		t.Fatalf("after shrink: count=%d dropped=%d", s.QuarantinedCount(), s.QuarantineDropped())
	}
	if q := s.Quarantined(); q[0].ID != ids[8] || q[1].ID != ids[9] {
		t.Fatalf("shrink kept wrong entries: %d %d", q[0].ID, q[1].ID)
	}
}

// TestStoreGet covers the transport server's package lookup.
func TestStoreGet(t *testing.T) {
	s := NewStore()
	id := s.Publish(1, 2, []byte("data"))
	p, ok := s.Get(id)
	if !ok || p.Region != 1 || p.Bucket != 2 || string(p.Data) != "data" {
		t.Fatalf("get = %+v ok=%v", p, ok)
	}
	if _, ok := s.Get(id + 99); ok {
		t.Fatal("unknown id found")
	}
}

// TestPickNearUniform asserts the Section VI-A2 property the modulo
// draw weakened: over many well-mixed draws, every package in a bucket
// is selected at close to the uniform rate.
func TestPickNearUniform(t *testing.T) {
	s := NewStore()
	const k = 3
	ids := make([]PackageID, k)
	for i := range ids {
		ids[i] = s.Publish(0, 0, []byte{byte(i)})
	}
	const n = 30000
	counts := map[PackageID]int{}
	for i := uint64(0); i < n; i++ {
		p, ok := s.Pick(0, 0, workload.Fork(99, i))
		if !ok {
			t.Fatal("pick failed")
		}
		counts[p.ID]++
	}
	want := float64(n) / k
	for _, id := range ids {
		got := float64(counts[id])
		if got < 0.95*want || got > 1.05*want {
			t.Fatalf("package %d picked %d times, expected ~%.0f (counts %v)",
				id, counts[id], want, counts)
		}
	}
}
