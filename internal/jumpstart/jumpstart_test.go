package jumpstart

import (
	"errors"
	"strings"
	"testing"

	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/workload"
)

func testSite(t testing.TB) *workload.Site {
	t.Helper()
	cfg := workload.DefaultSiteConfig()
	cfg.Units = 5
	cfg.HelpersPerUnit = 6
	cfg.EndpointsPerUnit = 3
	site, err := workload.GenerateSite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func fastServerConfig() server.Config {
	cfg := server.DefaultConfig()
	cfg.OfferedRPS = 150
	cfg.TickSeconds = 2
	cfg.ProfileWindow = 300
	cfg.SeederCollectWindow = 250
	cfg.InitCycles = 10e6
	cfg.UnitPreloadCycles = 100e3
	cfg.WarmupRequests = 4
	cfg.MicroSampleEvery = 16
	return cfg
}

var (
	sharedSite *workload.Site
	sharedPkg  []byte
)

func siteAndPackageBytes(t testing.TB) (*workload.Site, []byte) {
	t.Helper()
	if sharedSite == nil {
		sharedSite = testSite(t)
		cfg := fastServerConfig()
		cfg.Mode = server.ModeSeeder
		cfg.JITOpts.InstrumentOptimized = true
		s, err := server.New(sharedSite, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WarmToServing(7200); err != nil {
			t.Fatal(err)
		}
		pkg, ok := s.SeederPackage()
		if !ok {
			t.Fatal("no package")
		}
		sharedPkg = pkg.Encode()
	}
	return sharedSite, append([]byte{}, sharedPkg...)
}

func TestStorePublishPickRemove(t *testing.T) {
	s := NewStore()
	if _, ok := s.Pick(0, 0, 1); ok {
		t.Fatal("pick from empty store")
	}
	id1 := s.Publish(0, 3, []byte("a"))
	id2 := s.Publish(0, 3, []byte("b"))
	s.Publish(1, 3, []byte("c")) // other region
	if s.Count(0, 3) != 2 || s.Count(1, 3) != 1 || s.Count(9, 9) != 0 {
		t.Fatal("counts")
	}
	// Random pick hits both packages across draws. Pick expects a
	// uniform uint64 (it scales it into the candidate range), so feed
	// it well-mixed values rather than small integers.
	seen := map[PackageID]bool{}
	for i := uint64(0); i < 20; i++ {
		p, ok := s.Pick(0, 3, workload.Fork(1, i))
		if !ok || p.Region != 0 || p.Bucket != 3 {
			t.Fatal("pick")
		}
		seen[p.ID] = true
	}
	if !seen[id1] || !seen[id2] {
		t.Fatalf("randomization broken: %v", seen)
	}
	// Exclusion avoids the named package when alternatives exist.
	for i := uint64(0); i < 10; i++ {
		p, _ := s.Pick(0, 3, workload.Fork(2, i), id1)
		if p.ID == id1 {
			t.Fatal("exclusion ignored")
		}
	}
	// Excluding every candidate yields no package: a consumer that has
	// failed on all of them must fall back, not be handed a known-bad
	// package again.
	if _, ok := s.Pick(0, 3, 1, id1, id2); ok {
		t.Fatal("total exclusion must report no package")
	}
	if !s.Remove(id1) || s.Remove(id1) {
		t.Fatal("remove")
	}
	if s.Count(0, 3) != 1 {
		t.Fatal("count after remove")
	}
}

func TestStoreQuarantine(t *testing.T) {
	s := NewStore()
	s.Quarantine(0, 0, []byte("bad"))
	if s.QuarantinedCount() != 1 || len(s.Quarantined()) != 1 {
		t.Fatal("quarantine")
	}
	if s.Count(0, 0) != 0 {
		t.Fatal("quarantined package published")
	}
	if !strings.Contains(s.String(), "quarantined: 1") {
		t.Fatal("string")
	}
}

func TestValidatorAcceptsGoodPackage(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	v := &Validator{
		Site:           site,
		ConsumerConfig: fastServerConfig(),
		Requests:       150,
		MaxFaultRate:   0.01,
		Thresholds:     prof.Thresholds{MinFuncs: 10, MinBlocks: 10, MinRequests: 50},
	}
	if err := v.Validate(data); err != nil {
		t.Fatalf("good package rejected: %v", err)
	}
}

func TestValidatorRejectsCorrupt(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	v := &Validator{Site: site, ConsumerConfig: fastServerConfig(), Requests: 50}
	bad := append([]byte{}, data...)
	bad[len(bad)/2] ^= 0xff
	err := v.Validate(bad)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidatorRejectsLowCoverage(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	v := &Validator{
		Site:           site,
		ConsumerConfig: fastServerConfig(),
		Requests:       50,
		Thresholds:     prof.Thresholds{MinFuncs: 100000},
	}
	err := v.Validate(data)
	if !errors.Is(err, ErrCoverage) {
		t.Fatalf("err = %v", err)
	}
}

func TestSeedAndPublish(t *testing.T) {
	site, _ := siteAndPackageBytes(t)
	store := NewStore()
	v := &Validator{
		Site:           site,
		ConsumerConfig: fastServerConfig(),
		Requests:       100,
		MaxFaultRate:   0.01,
		Thresholds:     prof.Thresholds{MinFuncs: 5, MinBlocks: 5, MinRequests: 10},
	}
	cfg := fastServerConfig()
	cfg.Region, cfg.Bucket = 2, 4
	res, err := SeedAndPublish(site, cfg, v, store, 2)
	if err != nil {
		t.Fatalf("SeedAndPublish: %v", err)
	}
	if res.Published == 0 || res.Package == nil || res.Attempts != 1 {
		t.Fatalf("result = %+v", res)
	}
	if store.Count(2, 4) != 1 {
		t.Fatal("package not published")
	}
}

func TestSeedAndPublishQuarantinesOnValidationFailure(t *testing.T) {
	site, _ := siteAndPackageBytes(t)
	store := NewStore()
	v := &Validator{
		Site:           site,
		ConsumerConfig: fastServerConfig(),
		Requests:       50,
		Thresholds:     prof.Thresholds{MinFuncs: 100000}, // impossible
	}
	_, err := SeedAndPublish(site, fastServerConfig(), v, store, 2)
	if err == nil {
		t.Fatal("impossible thresholds should fail")
	}
	if store.QuarantinedCount() != 2 {
		t.Fatalf("quarantined = %d, want one per attempt", store.QuarantinedCount())
	}
	if store.Count(0, 0) != 0 {
		t.Fatal("bad package published")
	}
}

func TestBootConsumerUsesPackage(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	store := NewStore()
	id := store.Publish(0, 0, data)
	srv, info, err := BootConsumer(site, store, BootConfig{Server: fastServerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if !info.UsedJumpStart || info.PackageID != id || info.Attempts != 1 {
		t.Fatalf("info = %+v", info)
	}
	if err := srv.WarmToServing(7200); err != nil {
		t.Fatal(err)
	}
	if srv.Phase() != server.PhaseServing {
		t.Fatalf("phase = %v", srv.Phase())
	}
}

func TestBootConsumerFallsBackWithoutPackages(t *testing.T) {
	site, _ := siteAndPackageBytes(t)
	srv, info, err := BootConsumer(site, NewStore(), BootConfig{Server: fastServerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if info.UsedJumpStart {
		t.Fatal("no packages but used jump-start")
	}
	if info.FallbackReason == "" {
		t.Fatal("missing fallback reason")
	}
	// The fallback server profiles its own traffic (Figure 3a).
	if err := srv.WarmToServing(7200); err != nil {
		t.Fatal(err)
	}
}

func TestBootConsumerSkipsCorruptPackages(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	store := NewStore()
	bad := append([]byte{}, data...)
	bad[10] ^= 0x55
	store.Publish(0, 0, bad)
	good := store.Publish(0, 0, data)

	// Deterministic rand that hits the corrupt one first.
	seq := []uint64{0, 1, 0, 1}
	i := 0
	rnd := func() uint64 { v := seq[i%len(seq)]; i++; return v }

	srv, info, err := BootConsumer(site, store, BootConfig{
		Server: fastServerConfig(), Rand: rnd, MaxAttempts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.UsedJumpStart {
		t.Fatalf("should recover with the good package: %+v", info)
	}
	if info.PackageID != good {
		t.Fatalf("picked %d, want %d", info.PackageID, good)
	}
	if info.Attempts < 2 {
		t.Fatalf("attempts = %d, corrupt package not encountered", info.Attempts)
	}
	_ = srv
}

func TestBootConsumerAllCorruptFallsBack(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	store := NewStore()
	for i := 0; i < 3; i++ {
		bad := append([]byte{}, data...)
		bad[20+i] ^= 0x77
		store.Publish(0, 0, bad)
	}
	_, info, err := BootConsumer(site, store, BootConfig{
		Server: fastServerConfig(), MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.UsedJumpStart {
		t.Fatal("all-corrupt store must fall back")
	}
	if !strings.Contains(info.FallbackReason, "undecodable") {
		t.Fatalf("reason = %q", info.FallbackReason)
	}
}

// TestBootConsumerAllExcludedFallsBackEarly pins the Pick-exclusion
// fix end to end: with two bad packages and generous MaxAttempts, the
// consumer must fall back as soon as both are excluded instead of
// burning the remaining attempts re-trying known-bad packages.
func TestBootConsumerAllExcludedFallsBackEarly(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	store := NewStore()
	for i := 0; i < 2; i++ {
		bad := append([]byte{}, data...)
		bad[30+i] ^= 0x3c
		store.Publish(0, 0, bad)
	}
	_, info, err := BootConsumer(site, store, BootConfig{
		Server: fastServerConfig(), MaxAttempts: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.UsedJumpStart {
		t.Fatal("all-corrupt store must fall back")
	}
	if info.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one per package, then immediate fallback)", info.Attempts)
	}
	if !strings.Contains(info.FallbackReason, "undecodable") {
		t.Fatalf("reason = %q", info.FallbackReason)
	}
}

// TestMultipleSeedersConsumersSpreadAcrossPackages exercises the full
// Section VI-A2 pattern: several independently seeded packages for one
// (region, bucket), consumers picking randomly across restarts.
func TestMultipleSeedersConsumersSpreadAcrossPackages(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	store := NewStore()
	// Simulate three seeders' packages (byte-identical content is fine
	// for the spreading property; real seeders differ by Seed).
	ids := map[PackageID]bool{}
	for i := 0; i < 3; i++ {
		ids[store.Publish(0, 0, data)] = true
	}
	picked := map[PackageID]int{}
	var x uint64 = 7
	rnd := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < 12; i++ {
		_, info, err := BootConsumer(site, store, BootConfig{
			Server: fastServerConfig(), Rand: rnd,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !info.UsedJumpStart {
			t.Fatal("consumer fell back with good packages available")
		}
		picked[info.PackageID]++
	}
	if len(picked) < 2 {
		t.Fatalf("12 consumers all picked the same package: %v", picked)
	}
	for id := range picked {
		if !ids[id] {
			t.Fatalf("unknown package id %d", id)
		}
	}
}
