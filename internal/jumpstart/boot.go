package jumpstart

import (
	"errors"

	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

// PackageSource is where BootConsumer draws packages from: the
// in-memory *Store directly, or a transport client that fetches over
// the (real or simulated) network.
type PackageSource interface {
	Pick(region, bucket int, rnd uint64, exclude ...PackageID) (*StoredPackage, bool)
}

// pickFailureReporter is optionally implemented by a PackageSource
// that can explain why its last Pick returned no package (e.g. the
// transport client's "fetch budget exhausted"). The reason becomes the
// consumer's FallbackReason.
type pickFailureReporter interface {
	PickFailure() string
}

// budgetResetter is optionally implemented by a PackageSource with
// resettable fetch-budget state. Historically the transport client
// armed its deadline per boot and required this call between boots;
// the client now re-arms per fetch and its ResetBudget is a no-op, but
// BootConsumer keeps the hook for third-party sources.
type budgetResetter interface {
	ResetBudget()
}

// spanParented is optionally implemented by a PackageSource that
// records its own causal spans (the transport client, the multi-store
// hierarchy). BootConsumer hands it the current pick span's ID so the
// source's spans nest under the boot tree instead of floating as
// roots.
type spanParented interface {
	SetSpanParent(id uint64)
}

// BootInfo describes how a consumer came up.
type BootInfo struct {
	// UsedJumpStart reports whether the server booted from a package.
	UsedJumpStart bool
	// PackageID is the package used (when UsedJumpStart).
	PackageID PackageID
	// Attempts counts package selections tried.
	Attempts int
	// FallbackReason is non-empty when the no-Jump-Start fallback was
	// taken (Section VI-A3).
	FallbackReason string
}

// BootConfig parameterizes BootConsumer.
type BootConfig struct {
	// Server is the consumer configuration; Mode/Package are managed
	// by BootConsumer.
	Server server.Config
	// MaxAttempts bounds how many packages are tried before falling
	// back to collecting a fresh profile (default 3).
	MaxAttempts int
	// Rand supplies randomness for package selection; consecutive
	// calls must differ (any PRNG works; determinism is up to the
	// caller).
	Rand func() uint64
	// Telem observes the boot protocol (may be nil). It is NOT passed
	// to the booted server — set Server.Telem for that.
	Telem *telemetry.Set
	// Clock supplies the virtual time stamped onto boot events (nil
	// stamps 0, like Store.SetTelemetry's clock).
	Clock func() float64
	// Revision is the consumer's build checksum (0 disables revision
	// checking). A picked package whose decoded Meta.Revision differs
	// is handled per Policy.
	Revision uint64
	// Policy decides what to do with a mismatched-revision package:
	// ExactOnly skips it (and records the distinct "package revision
	// mismatch" fallback reason if boot ultimately falls back);
	// RemapTolerant passes it through Remap.
	Policy CompatPolicy
	// Remap translates a mismatched-revision profile onto this build
	// (callers wire prof.Remap with both programs). Only consulted
	// under RemapTolerant; nil skips mismatched packages.
	Remap func(p *prof.Profile) (*prof.Profile, error)
	// Warmup selects eager (the zero value) or lazy package
	// materialization for the booted consumer. Lazy maps onto
	// Server.LazyWarmup: the consumer serves as soon as init work is
	// paid and pages translations in on first call through
	// Server.Pager (set one — e.g. transport.NewLazyPager — or
	// page-ins are local and instant).
	Warmup WarmupMode
}

// now reads the boot clock for event timestamps.
func (c *BootConfig) now() float64 {
	if c.Clock == nil {
		return 0
	}
	return c.Clock()
}

// BootConsumer implements the consumer start sequence with the
// Section VI-A2/A3 protections: pick a random package for the server's
// (region, bucket); if it cannot be decoded or the server cannot be
// built from it, pick another (excluding failed ones); if no suitable
// package exists or attempts run out, automatically restart with
// Jump-Start disabled — i.e. a ModeNoJumpStart server that collects
// its own profile.
func BootConsumer(site *workload.Site, source PackageSource, cfg BootConfig) (*server.Server, BootInfo, error) {
	info := BootInfo{}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	rnd := cfg.Rand
	if rnd == nil {
		var x uint64 = 88172645463325252
		rnd = func() uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x
		}
	}

	if br, ok := source.(budgetResetter); ok {
		br.ResetBudget()
	}
	// The boot is the root of this consumer's causal span tree; every
	// pick, validation and remap lands as a child, and a span-recording
	// source nests its own fetch spans under the pick span.
	bootSpan := cfg.Telem.BeginSpan()
	bootStart := cfg.now()
	sp, _ := source.(spanParented)
	if sp != nil {
		defer sp.SetSpanParent(0)
	}
	var failed []PackageID
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		pickSpan := cfg.Telem.BeginSpan()
		if sp != nil {
			sp.SetSpanParent(pickSpan)
		}
		pickStart := cfg.now()
		pkg, ok := source.Pick(cfg.Server.Region, cfg.Server.Bucket, rnd(), failed...)
		cfg.Telem.EndSpan(pickSpan, bootSpan, pickStart, cfg.now(), "boot", "store.pick",
			telemetry.I("attempt", int64(attempt)),
			telemetry.B("ok", ok))
		if !ok {
			// No package: either the store has none left to offer
			// (every candidate already failed this consumer — fall
			// back immediately rather than retrying a known-bad
			// package), or a networked source gave up and can say why.
			// A reason recorded on an earlier attempt (revision
			// mismatch, undecodable package) explains why the store ran
			// out of candidates — don't let the generic empty-store
			// reason clobber it.
			if info.FallbackReason == "" {
				if pf, okr := source.(pickFailureReporter); okr {
					if r := pf.PickFailure(); r != "" {
						info.FallbackReason = r
					}
				}
			}
			if info.FallbackReason == "" {
				info.FallbackReason = "no package available"
			}
			break
		}
		info.Attempts = attempt
		// The validate span covers decode + revision check; a remap
		// nests under it (not beside it — sibling overlap would break
		// the duration-conservation invariant under a real clock).
		vSpan := cfg.Telem.BeginSpan()
		vStart := cfg.now()
		p, err := prof.Decode(pkg.Data)
		if err != nil {
			// Corrupted package: never crash, try another (VI-A3).
			cfg.Telem.EndSpan(vSpan, bootSpan, vStart, cfg.now(), "boot", "validate",
				telemetry.B("ok", false), telemetry.S("reason", "undecodable"))
			failed = append(failed, pkg.ID)
			info.FallbackReason = "packages undecodable"
			continue
		}
		if cfg.Revision != 0 && uint64(p.Meta.Revision) != cfg.Revision {
			// A package from a different build. Without remapping it
			// would silently warm the server from arbitrarily different
			// code; the distinct reason makes these fallbacks visible.
			if cfg.Policy != RemapTolerant || cfg.Remap == nil {
				cfg.Telem.EndSpan(vSpan, bootSpan, vStart, cfg.now(), "boot", "validate",
					telemetry.B("ok", false), telemetry.S("reason", "revision-mismatch"))
				failed = append(failed, pkg.ID)
				info.FallbackReason = "package revision mismatch"
				continue
			}
			rStart := cfg.now()
			remapped, err := cfg.Remap(p)
			remapOK := err == nil && uint64(remapped.Meta.Revision) == cfg.Revision
			cfg.Telem.SpanUnder(vSpan, rStart, cfg.now(), "boot", "remap",
				telemetry.B("ok", remapOK))
			if !remapOK {
				cfg.Telem.EndSpan(vSpan, bootSpan, vStart, cfg.now(), "boot", "validate",
					telemetry.B("ok", false), telemetry.S("reason", "revision-mismatch"))
				failed = append(failed, pkg.ID)
				info.FallbackReason = "package revision mismatch"
				continue
			}
			p = remapped
		}
		cfg.Telem.EndSpan(vSpan, bootSpan, vStart, cfg.now(), "boot", "validate",
			telemetry.B("ok", true))
		sc := cfg.Server
		sc.Mode = server.ModeConsumer
		sc.Package = p
		if cfg.Warmup == WarmupLazy {
			sc.LazyWarmup = true
		}
		srv, err := server.New(site, sc)
		if err != nil {
			failed = append(failed, pkg.ID)
			info.FallbackReason = "consumer boot failed"
			continue
		}
		info.UsedJumpStart = true
		info.PackageID = pkg.ID
		info.FallbackReason = ""
		cfg.Telem.Event(cfg.now(), "boot", "jumpstart",
			telemetry.I("package", int64(pkg.ID)),
			telemetry.I("attempts", int64(info.Attempts)))
		cfg.Telem.EndSpan(bootSpan, 0, bootStart, cfg.now(), "boot", "boot",
			telemetry.S("outcome", "jumpstart"),
			telemetry.I("attempts", int64(info.Attempts)))
		return srv, info, nil
	}

	// Automatic no-Jump-Start fallback.
	sc := cfg.Server
	sc.Mode = server.ModeNoJumpStart
	sc.Package = nil
	srv, err := server.New(site, sc)
	if err != nil {
		cfg.Telem.EndSpan(bootSpan, 0, bootStart, cfg.now(), "boot", "boot",
			telemetry.S("outcome", "error"))
		return nil, info, errors.New("jumpstart: fallback boot failed: " + err.Error())
	}
	if info.FallbackReason == "" {
		info.FallbackReason = "attempts exhausted"
	}
	cfg.Telem.Counter("boot.fallback_total").Inc()
	cfg.Telem.Event(cfg.now(), "boot", "fallback",
		telemetry.S("reason", info.FallbackReason),
		telemetry.I("attempts", int64(info.Attempts)))
	cfg.Telem.EndSpan(bootSpan, 0, bootStart, cfg.now(), "boot", "boot",
		telemetry.S("outcome", "fallback"),
		telemetry.S("reason", info.FallbackReason),
		telemetry.I("attempts", int64(info.Attempts)))
	return srv, info, nil
}
