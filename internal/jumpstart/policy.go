package jumpstart

import "fmt"

// CompatPolicy is the store compatibility policy for packages whose
// build revision differs from the consumer's. Every package is stamped
// with the build checksum of the source revision its profile was
// collected against; the policy decides what a consumer may do with a
// package from a different build.
type CompatPolicy int

const (
	// ExactOnly rejects any package whose revision stamp differs from
	// the consumer's build. Every code push therefore invalidates the
	// whole store and the fleet falls back to full reprofiling.
	ExactOnly CompatPolicy = iota
	// RemapTolerant allows a mismatched package to be carried across
	// the push by the cross-release remapper (prof.Remap): profiles for
	// unchanged or renamed-but-identical functions survive exactly,
	// constant-tweaked functions survive fuzzily, the rest drop.
	RemapTolerant
)

// String returns the flag-level name.
func (p CompatPolicy) String() string {
	switch p {
	case ExactOnly:
		return "exact-only"
	case RemapTolerant:
		return "remap-tolerant"
	default:
		return fmt.Sprintf("CompatPolicy(%d)", int(p))
	}
}

// ParseCompatPolicy parses the flag-level name.
func ParseCompatPolicy(s string) (CompatPolicy, error) {
	switch s {
	case "exact-only":
		return ExactOnly, nil
	case "remap-tolerant":
		return RemapTolerant, nil
	default:
		return 0, fmt.Errorf("jumpstart: unknown compat policy %q (want exact-only or remap-tolerant)", s)
	}
}
