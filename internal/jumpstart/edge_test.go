package jumpstart

import (
	"errors"
	"strings"
	"testing"

	"jumpstart/internal/telemetry"
)

// TestValidatorUnhealthyTrial drives the last validation stage to
// failure: a fault-rate bound below zero makes even a fault-free trial
// unhealthy, proving the trial boot runs for real and its verdict is
// enforced.
func TestValidatorUnhealthyTrial(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	v := &Validator{
		Site:           site,
		ConsumerConfig: fastServerConfig(),
		Requests:       50,
		MaxFaultRate:   -1,
	}
	err := v.Validate(data)
	if !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("err = %v, want ErrUnhealthy", err)
	}
}

// TestValidatorTrialBootFailures covers both ErrBoot paths: a consumer
// config the server rejects outright, and a warmup deadline too short
// for the trial to reach serving.
func TestValidatorTrialBootFailures(t *testing.T) {
	site, data := siteAndPackageBytes(t)

	bad := fastServerConfig()
	bad.Cores = 0 // invalid hardware config
	v := &Validator{Site: site, ConsumerConfig: bad}
	if err := v.Validate(data); !errors.Is(err, ErrBoot) {
		t.Fatalf("invalid config: err = %v, want ErrBoot", err)
	}

	v = &Validator{
		Site:           site,
		ConsumerConfig: fastServerConfig(),
		// One tick of virtual time: init alone cannot complete.
		WarmupDeadline: fastServerConfig().TickSeconds,
	}
	if err := v.Validate(data); !errors.Is(err, ErrBoot) {
		t.Fatalf("tiny deadline: err = %v, want ErrBoot", err)
	}
}

// TestValidatorEmitsTelemetry checks that validation outcomes are
// observable: failures and successes land in the counters and the
// event trace.
func TestValidatorEmitsTelemetry(t *testing.T) {
	site, data := siteAndPackageBytes(t)
	tel := telemetry.NewSet()
	v := &Validator{
		Site:           site,
		ConsumerConfig: fastServerConfig(),
		Requests:       50,
		Telem:          tel,
	}
	if err := v.Validate(data); err != nil {
		t.Fatal(err)
	}
	if err := v.Validate([]byte("garbage")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if tel.Metrics.Counter("validate.ok_total").Value() != 1 ||
		tel.Metrics.Counter("validate.fail_total").Value() != 1 {
		t.Fatalf("counters: ok=%d fail=%d",
			tel.Metrics.Counter("validate.ok_total").Value(),
			tel.Metrics.Counter("validate.fail_total").Value())
	}
	var sawFail bool
	for _, ev := range tel.Trace.Events() {
		if ev.Cat == "validate" && ev.Name == "fail" {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatal("no validate/fail event recorded")
	}
}

// TestBootConsumerEmptyStoreUsesFallback pins the VI-A3 behaviour for
// a brand-new deployment: nothing published yet, so the consumer comes
// up in no-Jump-Start mode with the reason recorded — and the boot is
// observable through the telemetry set.
func TestBootConsumerEmptyStoreUsesFallback(t *testing.T) {
	site, _ := siteAndPackageBytes(t)
	tel := telemetry.NewSet()
	srv, info, err := BootConsumer(site, NewStore(), BootConfig{
		Server: fastServerConfig(),
		Telem:  tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil || info.UsedJumpStart {
		t.Fatalf("expected fallback boot, got %+v", info)
	}
	if info.FallbackReason != "no package available" {
		t.Fatalf("reason = %q", info.FallbackReason)
	}
	if tel.Metrics.Counter("boot.fallback_total").Value() != 1 {
		t.Fatal("fallback not counted")
	}
}

// TestBootConsumerFallbackBootFailure covers the terminal error path:
// when even the no-Jump-Start fallback server cannot be constructed,
// BootConsumer must surface the error rather than return a nil server.
func TestBootConsumerFallbackBootFailure(t *testing.T) {
	site, _ := siteAndPackageBytes(t)
	bad := fastServerConfig()
	bad.Cores = 0
	_, _, err := BootConsumer(site, NewStore(), BootConfig{Server: bad})
	if err == nil || !strings.Contains(err.Error(), "fallback boot failed") {
		t.Fatalf("err = %v, want fallback boot failure", err)
	}
}

// TestBootEventsStampVirtualTime pins the boot-clock fix: with a clock
// threaded through BootConfig, boot/jumpstart and boot/fallback events
// carry the restart's virtual time instead of a hard-coded 0.
func TestBootEventsStampVirtualTime(t *testing.T) {
	site, data := siteAndPackageBytes(t)

	// Jump-started boot at t=123.
	store := NewStore()
	store.Publish(0, 0, data)
	tel := telemetry.NewSet()
	_, info, err := BootConsumer(site, store, BootConfig{
		Server: fastServerConfig(),
		Telem:  tel,
		Clock:  func() float64 { return 123 },
	})
	if err != nil || !info.UsedJumpStart {
		t.Fatalf("boot: err=%v info=%+v", err, info)
	}
	ev := findEvent(tel, "jumpstart")
	if ev == nil || ev.T != 123 {
		t.Fatalf("jumpstart event = %+v", ev)
	}
	// The boot also lands as a causal span tree: a root "boot" span
	// with the pick and validation as children.
	boot := findEvent(tel, "boot")
	if boot == nil || boot.T != 123 || boot.Parent != 0 {
		t.Fatalf("boot span = %+v", boot)
	}
	for _, name := range []string{"store.pick", "validate"} {
		child := findEvent(tel, name)
		if child == nil || child.Parent != boot.Seq {
			t.Fatalf("%s span = %+v, want child of %d", name, child, boot.Seq)
		}
	}

	// Fallback boot at t=456.
	tel = telemetry.NewSet()
	_, info, err = BootConsumer(site, NewStore(), BootConfig{
		Server: fastServerConfig(),
		Telem:  tel,
		Clock:  func() float64 { return 456 },
	})
	if err != nil || info.UsedJumpStart {
		t.Fatalf("fallback boot: err=%v info=%+v", err, info)
	}
	ev = findEvent(tel, "fallback")
	if ev == nil || ev.T != 456 {
		t.Fatalf("fallback event = %+v", ev)
	}
}

// findEvent returns the first buffered trace event with the name.
func findEvent(tel *telemetry.Set, name string) *telemetry.Event {
	for _, ev := range tel.Trace.Events() {
		if ev.Name == name {
			return &ev
		}
	}
	return nil
}

// failingSource is a PackageSource that never delivers and reports why
// — the shape of a transport client whose fetch budget ran out.
type failingSource struct{ reason string }

func (f *failingSource) Pick(region, bucket int, rnd uint64, exclude ...PackageID) (*StoredPackage, bool) {
	return nil, false
}
func (f *failingSource) PickFailure() string { return f.reason }

// TestBootConsumerSourceFailureReason checks that a source's pick
// failure explanation (e.g. the transport's deadline budget) surfaces
// as the consumer's FallbackReason.
func TestBootConsumerSourceFailureReason(t *testing.T) {
	site, _ := siteAndPackageBytes(t)
	src := &failingSource{reason: "fetch budget exhausted"}
	srv, info, err := BootConsumer(site, src, BootConfig{Server: fastServerConfig()})
	if err != nil || srv == nil {
		t.Fatalf("fallback boot failed: %v", err)
	}
	if info.UsedJumpStart || info.FallbackReason != "fetch budget exhausted" {
		t.Fatalf("info = %+v", info)
	}
}

// TestStoreTelemetryEvents checks the store's publish / pick /
// quarantine / remove instrumentation, including the virtual-clock
// timestamps.
func TestStoreTelemetryEvents(t *testing.T) {
	st := NewStore()
	tel := telemetry.NewSet()
	now := 0.0
	st.SetTelemetry(tel, func() float64 { return now })

	now = 10
	id := st.Publish(0, 0, []byte{1, 2, 3})
	now = 20
	st.Quarantine(0, 0, []byte{4})
	now = 30
	if _, ok := st.Pick(0, 0, 12345); !ok {
		t.Fatal("pick failed")
	}
	now = 40
	if !st.Remove(id) {
		t.Fatal("remove failed")
	}

	if tel.Metrics.Counter("store.published_total").Value() != 1 ||
		tel.Metrics.Counter("store.quarantined_total").Value() != 1 ||
		tel.Metrics.Counter("store.picks_total").Value() != 1 {
		t.Fatal("store counters wrong")
	}
	evs := tel.Trace.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	wantNames := []string{"publish", "quarantine", "pick", "remove"}
	wantTimes := []float64{10, 20, 30, 40}
	for i, ev := range evs {
		if ev.Name != wantNames[i] || ev.T != wantTimes[i] {
			t.Fatalf("event %d = %s@%v, want %s@%v", i, ev.Name, ev.T, wantNames[i], wantTimes[i])
		}
	}
}
