package object

import "jumpstart/internal/value"

// Heap is a simulated bump allocator. It does not own memory — Go's GC
// does that — it only assigns stable 64-bit addresses to objects so the
// micro-architecture simulator can model D-cache/D-TLB behaviour of
// property accesses under different slot layouts.
type Heap struct {
	next    uint64
	nextID  uint64
	objects uint64 // allocation count, for stats
}

// Simulated address-space constants. Object headers are 16 bytes and
// each slot is 16 bytes (a boxed value), matching HHVM's TypedValue.
// Allocations are rounded up to cache-line granularity, as real
// size-class allocators (jemalloc under HHVM) do; without this, dense
// bump allocation makes one object's cold tail share a line with the
// next object's header, which would mask the data-layout effects the
// Section V-C optimization exists to create.
const (
	heapBase   = 0x7f00_0000_0000
	headerSize = 16
	slotSize   = 16
	heapAlign  = 64
)

// NewHeap returns an empty simulated heap.
func NewHeap() *Heap {
	return &Heap{next: heapBase}
}

// Object is a MiniHack object instance. Slots are stored in *physical*
// order; all name- and declared-index-based access translates through
// the RuntimeClass tables.
type Object struct {
	class *RuntimeClass
	slots []value.Value
	id    uint64
	addr  uint64
}

var _ value.Obj = (*Object)(nil)

// NewObject allocates an instance of rc with defaulted properties.
func (h *Heap) NewObject(rc *RuntimeClass) *Object {
	h.nextID++
	h.objects++
	size := uint64(headerSize + slotSize*len(rc.props))
	size = (size + heapAlign - 1) &^ (heapAlign - 1)
	o := &Object{
		class: rc,
		slots: make([]value.Value, len(rc.props)),
		id:    h.nextID,
		addr:  h.next,
	}
	h.next += size
	for _, p := range rc.props {
		o.slots[p.Slot] = p.Default
	}
	return o
}

// Allocations returns the number of objects allocated.
func (h *Heap) Allocations() uint64 { return h.objects }

// Next returns the address the next allocation will receive. Replay
// captures record object addresses relative to this watermark so a
// recorded data stream stays valid when replayed later in the heap.
func (h *Heap) Next() uint64 { return h.next }

// AdvanceBy skips bytes of address space and objects allocation ids,
// exactly as if the recorded allocations had been performed. This
// keeps the addresses and ids of every allocation *after* a replayed
// call identical to the ones real execution would have produced.
func (h *Heap) AdvanceBy(bytes, objects uint64) {
	h.next += bytes
	h.nextID += objects
	h.objects += objects
}

// ClassName implements value.Obj.
func (o *Object) ClassName() string { return o.class.Name() }

// ObjectID implements value.Obj.
func (o *Object) ObjectID() uint64 { return o.id }

// Class returns the object's runtime class.
func (o *Object) Class() *RuntimeClass { return o.class }

// Addr returns the object's simulated base address.
func (o *Object) Addr() uint64 { return o.addr }

// SlotAddr returns the simulated address of a physical slot. The
// micro-architecture simulator feeds these into the D-cache model; hot
// properties packed into low slots share cache lines, which is where
// the Section V-C speedup comes from.
func (o *Object) SlotAddr(physSlot int) uint64 {
	return o.addr + headerSize + uint64(physSlot)*slotSize
}

// GetProp reads property name, returning its value and physical slot.
func (o *Object) GetProp(name string) (v value.Value, physSlot int, ok bool) {
	declIdx, ok := o.class.byName[name]
	if !ok {
		return value.Null, -1, false
	}
	slot := o.class.physOf[declIdx]
	return o.slots[slot], slot, true
}

// SetProp writes property name, returning the physical slot.
func (o *Object) SetProp(name string, v value.Value) (physSlot int, ok bool) {
	declIdx, ok := o.class.byName[name]
	if !ok {
		return -1, false
	}
	slot := o.class.physOf[declIdx]
	o.slots[slot] = v
	return slot, true
}

// GetSlot reads a physical slot directly (used by JIT-specialized
// property access that has already resolved the slot).
func (o *Object) GetSlot(physSlot int) value.Value { return o.slots[physSlot] }

// SetSlot writes a physical slot directly.
func (o *Object) SetSlot(physSlot int, v value.Value) { o.slots[physSlot] = v }

// ToArray returns the object's properties as a MiniHack array in
// *declared* order — the observable-order operation that forces the
// translation table to exist.
func (o *Object) ToArray() *value.Array {
	a := value.NewArray(len(o.slots))
	for _, p := range o.class.props {
		a.SetStr(p.Name, o.slots[p.Slot])
	}
	return a
}
