package object

import (
	"testing"

	"jumpstart/internal/bytecode"
)

func affinityProgram(t *testing.T) *bytecode.Program {
	t.Helper()
	u := &bytecode.Unit{Name: "t"}
	c := &bytecode.Class{
		Name: "K", Parent: bytecode.NoClass,
		Props: []bytecode.PropDef{
			{Name: "a", DefaultLit: -1}, {Name: "b", DefaultLit: -1},
			{Name: "c", DefaultLit: -1}, {Name: "d", DefaultLit: -1},
		},
		Methods: map[string]*bytecode.Function{}, Unit: u,
	}
	u.Classes = []*bytecode.Class{c}
	p, err := bytecode.NewProgram(u)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAffinityLayoutChainsCoAccessedProps(t *testing.T) {
	p := affinityProgram(t)
	counts := map[string]uint64{
		"K::a": 100, "K::b": 10, "K::c": 90, "K::d": 5,
	}
	// a and d are always accessed together; c stands alone.
	pairs := map[[2]string]uint64{
		{"K::a", "K::d"}: 500,
		{"K::b", "K::c"}: 3,
	}
	l := AffinityLayout(p, counts, pairs)
	order := l["K"]
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	// Hottest first, then its affinity partner.
	if order[0] != "a" || order[1] != "d" {
		t.Fatalf("affinity chain broken: %v", order)
	}
	// Remaining fall back to hotness: c before b.
	if order[2] != "c" || order[3] != "b" {
		t.Fatalf("fallback order: %v", order)
	}
	// The layout must be registry-valid.
	if _, err := NewRegistry(p, l); err != nil {
		t.Fatal(err)
	}
}

func TestAffinityLayoutNoPairsEqualsHotness(t *testing.T) {
	p := affinityProgram(t)
	counts := map[string]uint64{"K::a": 1, "K::b": 4, "K::c": 3, "K::d": 2}
	aff := AffinityLayout(p, counts, nil)
	hot := HotnessLayout(p, counts)
	for i := range hot["K"] {
		if aff["K"][i] != hot["K"][i] {
			t.Fatalf("no-pairs affinity %v != hotness %v", aff["K"], hot["K"])
		}
	}
}

func TestAffinityLayoutDeterministic(t *testing.T) {
	p := affinityProgram(t)
	counts := map[string]uint64{}
	pairs := map[[2]string]uint64{{"K::b", "K::c"}: 7}
	a := AffinityLayout(p, counts, pairs)
	b := AffinityLayout(p, counts, pairs)
	for i := range a["K"] {
		if a["K"][i] != b["K"][i] {
			t.Fatal("nondeterministic")
		}
	}
}
