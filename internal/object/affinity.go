package object

import (
	"sort"

	"jumpstart/internal/bytecode"
)

// AffinityLayout computes a per-class physical property order from
// *pair affinities* — how often two properties were accessed next to
// each other — in addition to individual hotness. This implements the
// extension the paper's Section V-C explicitly leaves as future work:
// "previous work has also explored using the affinity of the
// fields/properties to decide on their order ... Exploring this
// opportunity inside HHVM is left for future work."
//
// The algorithm is a greedy chain construction per class (in the
// spirit of cache-conscious structure definition, Chilimbi et al.):
// start from the hottest property; repeatedly append the unplaced
// property with the strongest affinity to the chain's tail, falling
// back to the next-hottest when no affinity edge remains. Hot,
// co-accessed properties therefore share cache lines.
//
// counts is keyed "Class::prop" (as in HotnessLayout); pairs is keyed
// by canonical PropPair-style ("Class::a", "Class::b") string pairs
// flattened into the pairKey map below.
func AffinityLayout(prog *bytecode.Program, counts map[string]uint64,
	pairs map[[2]string]uint64) Layout {

	l := make(Layout)
	for _, c := range prog.Classes {
		if len(c.Props) < 2 {
			continue
		}
		key := func(prop string) string { return c.Name + "::" + prop }

		names := make([]string, len(c.Props))
		for i, pd := range c.Props {
			names[i] = pd.Name
		}
		// Hotness order as the seed and fallback.
		sort.SliceStable(names, func(i, j int) bool {
			ci, cj := counts[key(names[i])], counts[key(names[j])]
			if ci != cj {
				return ci > cj
			}
			return names[i] < names[j]
		})

		affinity := func(a, b string) uint64 {
			ka, kb := key(a), key(b)
			if ka > kb {
				ka, kb = kb, ka
			}
			return pairs[[2]string{ka, kb}]
		}

		placed := make(map[string]bool, len(names))
		order := make([]string, 0, len(names))
		order = append(order, names[0])
		placed[names[0]] = true
		for len(order) < len(names) {
			tail := order[len(order)-1]
			best := ""
			var bestAff uint64
			for _, n := range names {
				if placed[n] {
					continue
				}
				if a := affinity(tail, n); a > bestAff {
					bestAff = a
					best = n
				}
			}
			if best == "" {
				// No affinity edge from the tail: take the hottest
				// unplaced property.
				for _, n := range names {
					if !placed[n] {
						best = n
						break
					}
				}
			}
			order = append(order, best)
			placed[best] = true
		}
		l[c.Name] = order
	}
	return l
}
