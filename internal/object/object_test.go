package object

import (
	"testing"
	"testing/quick"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/value"
)

// makeProgram builds Base{a,b} <- Derived{c,d,e} with a default for d.
func makeProgram(t *testing.T) *bytecode.Program {
	t.Helper()
	u := &bytecode.Unit{Name: "t"}
	defIdx := u.AddLiteral(value.Int(7))
	base := &bytecode.Class{
		Name: "Base", Parent: bytecode.NoClass,
		Props: []bytecode.PropDef{
			{Name: "a", DefaultLit: -1}, {Name: "b", DefaultLit: -1},
		},
		Methods: map[string]*bytecode.Function{}, Unit: u,
	}
	derived := &bytecode.Class{
		Name: "Derived", Parent: 0,
		Props: []bytecode.PropDef{
			{Name: "c", DefaultLit: -1},
			{Name: "d", DefaultLit: defIdx},
			{Name: "e", DefaultLit: -1},
		},
		Methods: map[string]*bytecode.Function{}, Unit: u,
	}
	u.Classes = []*bytecode.Class{base, derived}
	p, err := bytecode.NewProgram(u)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultLayoutIsIdentity(t *testing.T) {
	p := makeProgram(t)
	r, err := NewRegistry(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rc, ok := r.ClassByName("Derived")
	if !ok {
		t.Fatal("Derived missing")
	}
	if rc.NumProps() != 5 {
		t.Fatalf("props = %d", rc.NumProps())
	}
	for i := 0; i < rc.NumProps(); i++ {
		if rc.PhysSlot(i) != i || rc.DeclIndex(i) != i {
			t.Fatalf("identity layout violated at %d: phys=%d decl=%d",
				i, rc.PhysSlot(i), rc.DeclIndex(i))
		}
	}
}

func TestReorderedLayoutKeepsDeclaredOrderObservable(t *testing.T) {
	p := makeProgram(t)
	layout := Layout{"Derived": {"e", "c", "d"}}
	r, err := NewRegistry(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	rc, _ := r.ClassByName("Derived")

	// Physical slots: parent a=0 b=1, then e=2 c=3 d=4.
	wantSlot := map[string]int{"a": 0, "b": 1, "e": 2, "c": 3, "d": 4}
	for name, want := range wantSlot {
		decl, ok := rc.PropByName(name)
		if !ok {
			t.Fatalf("prop %s missing", name)
		}
		if got := rc.PhysSlot(decl); got != want {
			t.Errorf("slot(%s) = %d, want %d", name, got, want)
		}
	}

	// Declared order must remain a,b,c,d,e regardless of layout.
	props := rc.DeclaredProps()
	wantDecl := []string{"a", "b", "c", "d", "e"}
	for i, w := range wantDecl {
		if props[i].Name != w {
			t.Fatalf("declared[%d] = %s, want %s", i, props[i].Name, w)
		}
	}

	// Object iteration (ToArray) is in declared order, and defaults
	// land in the right slots.
	o := r.Heap().NewObject(rc)
	arr := o.ToArray()
	ks := arr.Keys()
	for i, w := range wantDecl {
		if ks[i].AsStr() != w {
			t.Fatalf("ToArray key[%d] = %v, want %s", i, ks[i], w)
		}
	}
	if v, _, _ := o.GetProp("d"); v.AsInt() != 7 {
		t.Fatalf("default for d = %v", v)
	}
}

func TestGetSetPropThroughTranslation(t *testing.T) {
	p := makeProgram(t)
	r, err := NewRegistry(p, Layout{"Derived": {"e", "c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	rc, _ := r.ClassByName("Derived")
	o := r.Heap().NewObject(rc)

	slot, ok := o.SetProp("c", value.Int(42))
	if !ok || slot != 3 {
		t.Fatalf("SetProp c -> slot %d, ok=%v", slot, ok)
	}
	v, slot2, ok := o.GetProp("c")
	if !ok || slot2 != 3 || v.AsInt() != 42 {
		t.Fatalf("GetProp c = %v slot %d", v, slot2)
	}
	if o.GetSlot(3).AsInt() != 42 {
		t.Fatal("direct slot read disagrees")
	}
	o.SetSlot(3, value.Int(1))
	if v, _, _ := o.GetProp("c"); v.AsInt() != 1 {
		t.Fatal("direct slot write not visible by name")
	}
	if _, _, ok := o.GetProp("nope"); ok {
		t.Fatal("unknown property resolved")
	}
	if _, ok := o.SetProp("nope", value.Null); ok {
		t.Fatal("unknown property settable")
	}
}

func TestLayoutValidation(t *testing.T) {
	p := makeProgram(t)
	if _, err := NewRegistry(p, Layout{"Derived": {"zz"}}); err == nil {
		t.Fatal("unknown property in layout should fail")
	}
	if _, err := NewRegistry(p, Layout{"Derived": {"c", "c"}}); err == nil {
		t.Fatal("repeated property in layout should fail")
	}
	// Partial layouts append the missing props in declared order.
	r, err := NewRegistry(p, Layout{"Derived": {"e"}})
	if err != nil {
		t.Fatal(err)
	}
	rc, _ := r.ClassByName("Derived")
	decl, _ := rc.PropByName("e")
	if rc.PhysSlot(decl) != 2 {
		t.Fatalf("partial layout slot(e) = %d", rc.PhysSlot(decl))
	}
	decl, _ = rc.PropByName("c")
	if rc.PhysSlot(decl) != 3 {
		t.Fatalf("partial layout slot(c) = %d", rc.PhysSlot(decl))
	}
}

func TestHeapAddresses(t *testing.T) {
	p := makeProgram(t)
	r, _ := NewRegistry(p, nil)
	rc, _ := r.ClassByName("Base")
	o1 := r.Heap().NewObject(rc)
	o2 := r.Heap().NewObject(rc)
	if o1.ObjectID() == o2.ObjectID() {
		t.Fatal("object ids must differ")
	}
	if o2.Addr() <= o1.Addr() {
		t.Fatal("bump allocator must move forward")
	}
	if o1.SlotAddr(1)-o1.SlotAddr(0) != slotSize {
		t.Fatal("slot stride")
	}
	if o1.SlotAddr(0) != o1.Addr()+headerSize {
		t.Fatal("slot base")
	}
	if r.Heap().Allocations() != 2 {
		t.Fatalf("allocations = %d", r.Heap().Allocations())
	}
	if o1.ClassName() != "Base" {
		t.Fatalf("class name = %s", o1.ClassName())
	}
	if o1.Class() != rc {
		t.Fatal("Class() mismatch")
	}
}

func TestHotnessLayout(t *testing.T) {
	p := makeProgram(t)
	counts := map[string]uint64{
		"Derived::e": 100,
		"Derived::c": 10,
		"Derived::d": 50,
		"Base::b":    5,
		"Base::a":    1,
	}
	l := HotnessLayout(p, counts)
	want := []string{"e", "d", "c"}
	got := l["Derived"]
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("Derived order = %v, want %v", got, want)
		}
	}
	if wantB := []string{"b", "a"}; l["Base"][0] != wantB[0] || l["Base"][1] != wantB[1] {
		t.Fatalf("Base order = %v", l["Base"])
	}
	// Resulting layout must be accepted by the registry.
	if _, err := NewRegistry(p, l); err != nil {
		t.Fatalf("hotness layout rejected: %v", err)
	}
}

func TestHotnessLayoutTiesAreDeterministic(t *testing.T) {
	p := makeProgram(t)
	l1 := HotnessLayout(p, map[string]uint64{})
	l2 := HotnessLayout(p, map[string]uint64{})
	for cls, order := range l1 {
		for i := range order {
			if l2[cls][i] != order[i] {
				t.Fatal("tie-breaking must be deterministic")
			}
		}
	}
	// All-zero counts: lexicographic by name.
	if l1["Derived"][0] != "c" {
		t.Fatalf("zero-count order = %v", l1["Derived"])
	}
}

// Property: for any permutation layout, name-based reads after writes
// behave identically to the identity layout (layout transparency).
func TestPropLayoutTransparency(t *testing.T) {
	p := makeProgram(t)
	perms := [][]string{
		{"c", "d", "e"}, {"c", "e", "d"}, {"d", "c", "e"},
		{"d", "e", "c"}, {"e", "c", "d"}, {"e", "d", "c"},
	}
	f := func(which uint8, av, bv, cv, dv, ev int64) bool {
		layout := Layout{"Derived": perms[int(which)%len(perms)]}
		r, err := NewRegistry(p, layout)
		if err != nil {
			return false
		}
		rc, _ := r.ClassByName("Derived")
		o := r.Heap().NewObject(rc)
		writes := map[string]int64{"a": av, "b": bv, "c": cv, "d": dv, "e": ev}
		for n, v := range writes {
			if _, ok := o.SetProp(n, value.Int(v)); !ok {
				return false
			}
		}
		for n, v := range writes {
			got, _, ok := o.GetProp(n)
			if !ok || got.AsInt() != v {
				return false
			}
		}
		// Declared-order iteration sees a,b,c,d,e with those values.
		arr := o.ToArray()
		wantOrder := []string{"a", "b", "c", "d", "e"}
		for i, n := range wantOrder {
			e := arr.At(i)
			if e.StrKey != n || e.Val.AsInt() != writes[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
