// Package object implements the MiniHack object runtime: per-class
// property slot layouts, instances, and a simulated heap that assigns
// data addresses for the micro-architecture simulation.
//
// The package exists largely in service of the paper's Section V-C
// (object-property reordering). In PHP/Hack the *declared* order of
// properties is observable (casting an object to an array iterates in
// declaration order), so the optimization cannot simply shuffle slots:
// each class carries an index-translation table mapping declared index
// to physical slot, and all declared-order operations go through it.
package object

import (
	"fmt"
	"sort"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/value"
)

// Layout maps a class name to the physical order of that class's *own*
// (non-inherited) property names. The Jump-Start consumer derives a
// Layout from the seeder's property-access counters; a nil or partial
// Layout leaves the affected classes in declared order.
type Layout map[string][]string

// RuntimeClass is the runtime view of a bytecode class: flattened
// properties with both declared and physical orderings, plus resolved
// default values.
type RuntimeClass struct {
	Meta *bytecode.Class
	// props lists flattened properties in *declared* order (parent
	// layers first). props[i].Slot is the physical slot.
	props []RuntimeProp
	// physOf[declIdx] = physical slot; declOf[physSlot] = declIdx.
	physOf []int
	declOf []int
	byName map[string]int // property name -> declared index
}

// RuntimeProp is one property of a RuntimeClass.
type RuntimeProp struct {
	Name    string
	Slot    int // physical slot in Object.slots
	Default value.Value
}

// NumProps returns the number of (flattened) properties.
func (rc *RuntimeClass) NumProps() int { return len(rc.props) }

// Name returns the class name.
func (rc *RuntimeClass) Name() string { return rc.Meta.Name }

// PropByName resolves a property name to its declared index.
func (rc *RuntimeClass) PropByName(name string) (declIdx int, ok bool) {
	i, ok := rc.byName[name]
	return i, ok
}

// PhysSlot translates a declared index to a physical slot.
func (rc *RuntimeClass) PhysSlot(declIdx int) int { return rc.physOf[declIdx] }

// DeclIndex translates a physical slot back to its declared index.
func (rc *RuntimeClass) DeclIndex(physSlot int) int { return rc.declOf[physSlot] }

// DeclaredProps returns properties in declared order (the observable
// order for iteration/casting).
func (rc *RuntimeClass) DeclaredProps() []RuntimeProp { return rc.props }

// Registry owns the RuntimeClasses for one linked Program plus the heap
// that allocates object addresses. A server builds one Registry at
// startup; Jump-Start consumers pass the seeder-derived Layout.
type Registry struct {
	prog    *bytecode.Program
	classes []*RuntimeClass
	heap    *Heap
}

// NewRegistry builds runtime classes for prog. layout, when non-nil,
// reorders each class's own properties physically; declared order stays
// observable through the translation tables.
func NewRegistry(prog *bytecode.Program, layout Layout) (*Registry, error) {
	r := &Registry{
		prog:    prog,
		classes: make([]*RuntimeClass, len(prog.Classes)),
		heap:    NewHeap(),
	}
	for _, c := range prog.Classes {
		if r.classes[c.ID] != nil {
			continue
		}
		if err := r.build(c, layout); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// build constructs the RuntimeClass for c (and, recursively, its
// parent). Physical layout = parent's physical layout followed by c's
// own properties in layout order (or declared order), mirroring the
// paper: "the order for K's inherited properties is copied from its
// parent class and then the order of its own, non-inherited properties
// is decided and appended."
func (r *Registry) build(c *bytecode.Class, layout Layout) error {
	if c.Parent != bytecode.NoClass && r.classes[c.Parent] == nil {
		if err := r.build(r.prog.Classes[c.Parent], layout); err != nil {
			return err
		}
	}
	rc := &RuntimeClass{Meta: c, byName: make(map[string]int)}

	var parent *RuntimeClass
	nParent := 0
	if c.Parent != bytecode.NoClass {
		parent = r.classes[c.Parent]
		nParent = parent.NumProps()
		rc.props = append(rc.props, parent.props...)
		for i, p := range rc.props {
			rc.byName[p.Name] = i
		}
	}

	// Decide the physical order of c's own properties.
	own := make([]string, len(c.Props))
	for i, pd := range c.Props {
		own[i] = pd.Name
	}
	physOrder := own
	if requested, ok := layout[c.Name]; ok {
		var err error
		physOrder, err = validateOrder(c.Name, own, requested)
		if err != nil {
			return err
		}
	}
	slotByName := make(map[string]int, len(physOrder))
	for i, name := range physOrder {
		slotByName[name] = nParent + i
	}

	defaults := make(map[string]value.Value, len(c.Props))
	for _, pd := range c.Props {
		defaults[pd.Name] = c.Unit.Literal(pd.DefaultLit)
	}
	for _, pd := range c.Props {
		declIdx := len(rc.props)
		rc.props = append(rc.props, RuntimeProp{
			Name:    pd.Name,
			Slot:    slotByName[pd.Name],
			Default: defaults[pd.Name],
		})
		rc.byName[pd.Name] = declIdx
	}

	rc.physOf = make([]int, len(rc.props))
	rc.declOf = make([]int, len(rc.props))
	for declIdx, p := range rc.props {
		rc.physOf[declIdx] = p.Slot
		rc.declOf[p.Slot] = declIdx
	}
	r.classes[c.ID] = rc
	return nil
}

// validateOrder checks that requested is a permutation of own. Unknown
// names fail loudly (a stale profile package naming dropped properties
// must not corrupt layouts); missing names are appended in declared
// order so partial profiles degrade gracefully.
func validateOrder(class string, own, requested []string) ([]string, error) {
	have := make(map[string]bool, len(own))
	for _, n := range own {
		have[n] = true
	}
	out := make([]string, 0, len(own))
	used := make(map[string]bool, len(own))
	for _, n := range requested {
		if !have[n] {
			return nil, fmt.Errorf("object: layout for %s names unknown property %q", class, n)
		}
		if used[n] {
			return nil, fmt.Errorf("object: layout for %s repeats property %q", class, n)
		}
		used[n] = true
		out = append(out, n)
	}
	for _, n := range own {
		if !used[n] {
			out = append(out, n)
		}
	}
	return out, nil
}

// Class returns the RuntimeClass for id.
func (r *Registry) Class(id bytecode.ClassID) *RuntimeClass { return r.classes[id] }

// ClassByName resolves a class name.
func (r *Registry) ClassByName(name string) (*RuntimeClass, bool) {
	c, ok := r.prog.ClassByName(name)
	if !ok {
		return nil, false
	}
	return r.classes[c.ID], true
}

// Heap returns the registry's simulated heap.
func (r *Registry) Heap() *Heap { return r.heap }

// HotnessLayout converts per-property access counts (keyed "Class::prop")
// into a Layout: each class's own properties sorted by decreasing count
// (stable on name for determinism). This is the consumer-side half of
// Section V-C; the counts come from the seeder's tier-1 instrumentation.
func HotnessLayout(prog *bytecode.Program, counts map[string]uint64) Layout {
	l := make(Layout)
	for _, c := range prog.Classes {
		if len(c.Props) < 2 {
			continue
		}
		names := make([]string, len(c.Props))
		for i, pd := range c.Props {
			names[i] = pd.Name
		}
		sort.SliceStable(names, func(i, j int) bool {
			ci := counts[c.Name+"::"+names[i]]
			cj := counts[c.Name+"::"+names[j]]
			if ci != cj {
				return ci > cj
			}
			return names[i] < names[j]
		})
		l[c.Name] = names
	}
	return l
}
