// Package autotune searches the Jump-Start policy space for the knob
// settings that best meet a fleet SLO under a traffic scenario.
//
// The search is a successive-halving tournament over a knob grid: the
// full candidate set is evaluated at a small simulation budget, the
// weakest (1 - 1/eta) are dropped, and the survivors re-run at eta
// times the budget until one round runs at full fidelity. Evaluation
// is delegated to a caller-supplied Evaluator (internal/experiments
// wires one that replays the fleet simulator), candidates within a
// round run in parallel via internal/parallel, and every ordering
// decision is tie-broken by candidate index — so the recommendation
// table is deterministic at any worker count.
package autotune

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/parallel"
)

// Knobs is one point in the policy space: the deployment-cadence,
// compatibility, warm-pool, warmup-mode, and fetch-budget settings a
// fleet operator actually controls.
type Knobs struct {
	PushEvery        float64 // push cadence in virtual seconds (0 = manual pushes)
	CompatPolicy     jumpstart.CompatPolicy
	PoolSize         int     // warm-pool standbys (0 = no pool tier)
	PoolBackfillRate float64 // pool re-admissions per second (0 = unthrottled)
	WarmupMode       jumpstart.WarmupMode
	FetchBudget      float64 // per-boot fetch deadline in seconds (0 = default)
}

// String renders the knobs compactly and deterministically — the key
// used in recommendation tables.
func (k Knobs) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "push=%g compat=%s pool=%d", k.PushEvery, k.CompatPolicy, k.PoolSize)
	if k.PoolSize > 0 && k.PoolBackfillRate > 0 {
		fmt.Fprintf(&b, "@%g/s", k.PoolBackfillRate)
	}
	fmt.Fprintf(&b, " warmup=%s", k.WarmupMode)
	if k.FetchBudget > 0 {
		fmt.Fprintf(&b, " fetch=%gs", k.FetchBudget)
	}
	return b.String()
}

// Grid spans the candidate set: the cross product of every non-empty
// axis, with empty axes pinned to Base's value. Axis order (and thus
// candidate index order) is fixed: PushEvery outermost, FetchBudget
// innermost.
type Grid struct {
	Base             Knobs
	PushEvery        []float64
	CompatPolicy     []jumpstart.CompatPolicy
	PoolSize         []int
	PoolBackfillRate []float64
	WarmupMode       []jumpstart.WarmupMode
	FetchBudget      []float64
}

// Candidates enumerates the grid in deterministic order.
func (g Grid) Candidates() []Knobs {
	push := g.PushEvery
	if len(push) == 0 {
		push = []float64{g.Base.PushEvery}
	}
	compat := g.CompatPolicy
	if len(compat) == 0 {
		compat = []jumpstart.CompatPolicy{g.Base.CompatPolicy}
	}
	pool := g.PoolSize
	if len(pool) == 0 {
		pool = []int{g.Base.PoolSize}
	}
	backfill := g.PoolBackfillRate
	if len(backfill) == 0 {
		backfill = []float64{g.Base.PoolBackfillRate}
	}
	warm := g.WarmupMode
	if len(warm) == 0 {
		warm = []jumpstart.WarmupMode{g.Base.WarmupMode}
	}
	fetch := g.FetchBudget
	if len(fetch) == 0 {
		fetch = []float64{g.Base.FetchBudget}
	}
	var out []Knobs
	for _, pe := range push {
		for _, cp := range compat {
			for _, ps := range pool {
				for _, bf := range backfill {
					for _, wm := range warm {
						for _, fb := range fetch {
							out = append(out, Knobs{
								PushEvery:        pe,
								CompatPolicy:     cp,
								PoolSize:         ps,
								PoolBackfillRate: bf,
								WarmupMode:       wm,
								FetchBudget:      fb,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// Measurement is what one evaluation observed: the SLO-facing
// statistics of a candidate's simulated run.
type Measurement struct {
	CapLossP99      float64 // p99 of per-tick demand-weighted capacity shortfall
	CapLossMean     float64 // mean shortfall (integrated capacity loss)
	TimeToSteadyP95 float64 // p95 of boot-to-steady durations, seconds
	Crashes         int
	Fallbacks       int
}

// Objective scores a measurement (lower is better): a weighted sum of
// the p99 capacity shortfall and the normalized time-to-steady tail.
type Objective struct {
	LossWeight   float64 // weight on CapLossP99 (<= 0 selects 1)
	SteadyWeight float64 // weight on TimeToSteadyP95 / SteadyNorm
	SteadyNorm   float64 // seconds that count as one loss unit (<= 0 selects 1)
}

// Score folds m into a single lower-is-better number.
func (o Objective) Score(m Measurement) float64 {
	lw := o.LossWeight
	if lw <= 0 {
		lw = 1
	}
	norm := o.SteadyNorm
	if norm <= 0 {
		norm = 1
	}
	return lw*m.CapLossP99 + o.SteadyWeight*m.TimeToSteadyP95/norm
}

// Evaluator runs one candidate at a budget in (0, 1] — the fraction of
// full simulation fidelity (shorter horizon, smaller fleet; the wiring
// decides) — and returns what it measured.
type Evaluator func(k Knobs, budget float64) (Measurement, error)

// Config parameterizes a Search.
type Config struct {
	Grid      Grid
	Objective Objective
	// Eta is the halving factor: each round keeps ceil(n/Eta) of its
	// candidates and multiplies the budget by Eta (<= 1 selects 3).
	Eta int
	// Workers bounds per-round evaluation concurrency (<= 0 selects
	// one per CPU).
	Workers int
}

// Result is one candidate's final standing.
type Result struct {
	Index     int   // position in Grid.Candidates order
	Knobs     Knobs //
	Meas      Measurement
	Score     float64
	Rounds    int     // rounds the candidate was evaluated in
	Budget    float64 // largest budget it was evaluated at
	Dominated bool    // a finalist Pareto-dominated by another finalist
}

// Search runs the successive-halving tournament and returns every
// candidate ranked best-first: finalists by score, then earlier
// casualties by how far they got. Finalists that lose on both
// CapLossP99 and TimeToSteadyP95 to some other finalist are marked
// Dominated — the caller's recommendation table can skip them.
func Search(cfg Config, eval Evaluator) ([]Result, error) {
	cands := cfg.Grid.Candidates()
	if len(cands) == 0 {
		return nil, fmt.Errorf("autotune: empty candidate grid")
	}
	eta := cfg.Eta
	if eta <= 1 {
		eta = 3
	}
	// rounds = floor(log_eta(n)) + 1: the last round runs at budget 1.
	rounds := 1
	for p := 1; p*eta <= len(cands); p *= eta {
		rounds++
	}
	results := make([]Result, len(cands))
	for i, k := range cands {
		results[i] = Result{Index: i, Knobs: k, Score: math.Inf(1)}
	}
	alive := make([]int, len(cands))
	for i := range alive {
		alive[i] = i
	}
	for round := 0; round < rounds && len(alive) > 0; round++ {
		budget := 1.0 / math.Pow(float64(eta), float64(rounds-1-round))
		meas, err := parallel.MapErr(cfg.Workers, len(alive), func(j int) (Measurement, error) {
			return eval(cands[alive[j]], budget)
		})
		if err != nil {
			return nil, fmt.Errorf("autotune: round %d: %w", round, err)
		}
		for j, idx := range alive {
			r := &results[idx]
			r.Meas = meas[j]
			r.Score = cfg.Objective.Score(meas[j])
			r.Rounds++
			r.Budget = budget
		}
		// Keep the best ceil(len/eta); index breaks score ties so the
		// cut is deterministic.
		sort.Slice(alive, func(a, b int) bool {
			ra, rb := &results[alive[a]], &results[alive[b]]
			if ra.Score != rb.Score {
				return ra.Score < rb.Score
			}
			return ra.Index < rb.Index
		})
		if round < rounds-1 {
			keep := (len(alive) + eta - 1) / eta
			if keep < 1 {
				keep = 1
			}
			alive = alive[:keep]
		}
	}
	// Pareto pass over the finalists: a candidate loses only if some
	// other finalist is at least as good on both axes and strictly
	// better on one.
	for a := 0; a < len(alive); a++ {
		ma := results[alive[a]].Meas
		for b := 0; b < len(alive); b++ {
			if a == b {
				continue
			}
			mb := results[alive[b]].Meas
			if mb.CapLossP99 <= ma.CapLossP99 && mb.TimeToSteadyP95 <= ma.TimeToSteadyP95 &&
				(mb.CapLossP99 < ma.CapLossP99 || mb.TimeToSteadyP95 < ma.TimeToSteadyP95) {
				results[alive[a]].Dominated = true
				break
			}
		}
	}
	// Rank: deeper survivors first, then score, then index.
	sort.Slice(results, func(a, b int) bool {
		if results[a].Rounds != results[b].Rounds {
			return results[a].Rounds > results[b].Rounds
		}
		if results[a].Score != results[b].Score {
			return results[a].Score < results[b].Score
		}
		return results[a].Index < results[b].Index
	})
	return results, nil
}
