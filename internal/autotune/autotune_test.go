package autotune

import (
	"fmt"
	"math"
	"testing"

	"jumpstart/internal/jumpstart"
)

// syntheticEval scores candidates by a fixed deterministic function of
// their knobs: frequent pushes and no pool hurt, remap tolerance and
// the pool help, lazy warmup trades loss for time-to-steady. Noise
// shrinks with budget, mimicking short-run measurement error.
func syntheticEval(k Knobs, budget float64) (Measurement, error) {
	loss := 0.05
	if k.PushEvery > 0 {
		loss += 0.5 / k.PushEvery // cadence pressure
	}
	if k.CompatPolicy == jumpstart.ExactOnly {
		loss += 0.03
	}
	loss -= 0.002 * float64(k.PoolSize)
	if loss < 0.01 {
		loss = 0.01
	}
	tts := 120.0
	if k.WarmupMode == jumpstart.WarmupLazy {
		loss += 0.005
		tts = 40
	}
	// Deterministic pseudo-noise, damped by budget.
	h := uint64(k.PoolSize)*1_000_003 + uint64(k.PushEvery) + uint64(k.CompatPolicy)<<7
	h ^= h << 13
	h ^= h >> 7
	noise := (float64(h%1000)/1000 - 0.5) * 0.01 * (1 - budget)
	return Measurement{
		CapLossP99:      loss + noise,
		CapLossMean:     loss / 2,
		TimeToSteadyP95: tts,
	}, nil
}

func testGrid() Grid {
	return Grid{
		Base:      Knobs{PushEvery: 40, CompatPolicy: jumpstart.ExactOnly},
		PushEvery: []float64{10, 40},
		CompatPolicy: []jumpstart.CompatPolicy{
			jumpstart.ExactOnly, jumpstart.RemapTolerant,
		},
		PoolSize:   []int{0, 8},
		WarmupMode: []jumpstart.WarmupMode{jumpstart.WarmupEager, jumpstart.WarmupLazy},
	}
}

func TestGridCandidates(t *testing.T) {
	g := testGrid()
	cands := g.Candidates()
	if len(cands) != 16 {
		t.Fatalf("got %d candidates, want 16", len(cands))
	}
	seen := map[string]bool{}
	for _, k := range cands {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate candidate %q", s)
		}
		seen[s] = true
	}
	// Empty axes pin to Base.
	pinned := Grid{Base: Knobs{PushEvery: 99, PoolSize: 7}}
	cs := pinned.Candidates()
	if len(cs) != 1 || cs[0] != pinned.Base {
		t.Fatalf("empty grid = %+v, want just Base", cs)
	}
}

func TestObjectiveScore(t *testing.T) {
	m := Measurement{CapLossP99: 0.2, TimeToSteadyP95: 300}
	if got := (Objective{}).Score(m); got != 0.2 {
		t.Fatalf("default objective = %f, want CapLossP99 alone", got)
	}
	o := Objective{LossWeight: 1, SteadyWeight: 0.5, SteadyNorm: 600}
	if got, want := o.Score(m), 0.2+0.5*300/600; math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted objective = %f, want %f", got, want)
	}
}

func TestSearchRanksAndIsDeterministic(t *testing.T) {
	cfg := Config{Grid: testGrid(), Eta: 3}
	var ref []Result
	for _, workers := range []int{1, 4, 0} {
		cfg.Workers = workers
		res, err := Search(cfg, syntheticEval)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 16 {
			t.Fatalf("workers=%d: %d results, want 16", workers, len(res))
		}
		if workers == 1 {
			ref = res
			continue
		}
		for i := range res {
			if res[i] != ref[i] {
				t.Fatalf("workers=%d: rank %d diverged:\n  %+v\n  %+v",
					workers, i, res[i], ref[i])
			}
		}
	}
	// The known best region of the synthetic landscape: slow pushes,
	// remap tolerance, a pool. The winner must come from it.
	best := ref[0]
	if best.Knobs.PushEvery != 40 || best.Knobs.CompatPolicy != jumpstart.RemapTolerant ||
		best.Knobs.PoolSize != 8 {
		t.Fatalf("winner %s is not from the known-best region", best.Knobs)
	}
	if best.Budget != 1 {
		t.Fatalf("winner evaluated at budget %f, want full fidelity", best.Budget)
	}
	if best.Dominated {
		t.Fatal("the ranked winner is marked dominated")
	}
	// Ranking invariant: rounds never increase down the table.
	for i := 1; i < len(ref); i++ {
		if ref[i].Rounds > ref[i-1].Rounds {
			t.Fatalf("rank %d survived more rounds than rank %d", i, i-1)
		}
	}
}

func TestSearchBudgetsEscalate(t *testing.T) {
	budgets := map[float64]int{}
	cfg := Config{Grid: testGrid(), Eta: 3, Workers: 1}
	res, err := Search(cfg, func(k Knobs, budget float64) (Measurement, error) {
		budgets[budget]++
		return syntheticEval(k, budget)
	})
	if err != nil {
		t.Fatal(err)
	}
	// 16 candidates, eta 3 → rounds at budgets 1/9, 1/3, 1 with
	// 16, 6, 2 evaluations.
	if budgets[1.0/9] != 16 || budgets[1.0/3] != 6 || budgets[1] != 2 {
		t.Fatalf("round sizes = %v, want 16@1/9, 6@1/3, 2@1", budgets)
	}
	finalists := 0
	for _, r := range res {
		if r.Rounds == 3 {
			finalists++
		}
	}
	if finalists != 2 {
		t.Fatalf("%d finalists, want 2", finalists)
	}
}

func TestSearchParetoMarksDominated(t *testing.T) {
	// Two finalists where one wins both axes: the loser is dominated.
	g := Grid{
		Base:       Knobs{PushEvery: 40},
		WarmupMode: []jumpstart.WarmupMode{jumpstart.WarmupEager, jumpstart.WarmupLazy},
	}
	eval := func(k Knobs, budget float64) (Measurement, error) {
		if k.WarmupMode == jumpstart.WarmupLazy {
			return Measurement{CapLossP99: 0.3, TimeToSteadyP95: 400}, nil
		}
		return Measurement{CapLossP99: 0.1, TimeToSteadyP95: 100}, nil
	}
	res, err := Search(Config{Grid: g, Eta: 3, Workers: 1}, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Dominated || !res[1].Dominated {
		t.Fatalf("dominance flags wrong: %+v / %+v", res[0], res[1])
	}
	// A genuine trade-off leaves both on the frontier.
	eval = func(k Knobs, budget float64) (Measurement, error) {
		if k.WarmupMode == jumpstart.WarmupLazy {
			return Measurement{CapLossP99: 0.3, TimeToSteadyP95: 50}, nil
		}
		return Measurement{CapLossP99: 0.1, TimeToSteadyP95: 100}, nil
	}
	res, err = Search(Config{Grid: g, Eta: 3, Workers: 1}, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Dominated || res[1].Dominated {
		t.Fatalf("trade-off wrongly dominated: %+v / %+v", res[0], res[1])
	}
}

func TestSearchErrors(t *testing.T) {
	// A knob-less grid degenerates to one candidate: a single
	// full-budget evaluation, not an error.
	res, err := Search(Config{}, syntheticEval)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Rounds != 1 || res[0].Budget != 1 {
		t.Fatalf("degenerate search = %+v", res)
	}
	boom := func(k Knobs, budget float64) (Measurement, error) {
		return Measurement{}, fmt.Errorf("sim exploded")
	}
	if _, err := Search(Config{Grid: testGrid()}, boom); err == nil {
		t.Fatal("evaluator error swallowed")
	}
}
