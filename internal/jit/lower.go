package jit

import (
	"jumpstart/internal/bytecode"
	"jumpstart/internal/layout"
	"jumpstart/internal/prof"
	"jumpstart/internal/vasm"
)

// lower translates fn's bytecode into a Vasm CFG for the given tier.
// For TierOptimized, fp/p supply the profile data driving type
// specialization, guarded devirtualization and inlining; for the other
// tiers they are nil and lowering is fully generic (plus tier-1
// instrumentation).
func (j *JIT) lower(fn *bytecode.Function, tier Tier, fp *prof.FuncProfile, p *prof.Profile) *Translation {
	bcBlocks := fn.Blocks()
	t := &Translation{
		Fn:        fn,
		Tier:      tier,
		CFG:       &vasm.CFG{FuncName: fn.Name},
		MainMap:   make([]int, len(bcBlocks)),
		Inlines:   make(map[int32]*InlineMap),
		SpecTypes: make(map[int32]uint16),
		Devirt:    make(map[int32]string),
	}
	cfg := t.CFG

	newBlock := func(kind vasm.BlockKind, origin bytecode.FuncID, originBlock, instrs int) int {
		id := len(cfg.Blocks)
		cfg.Blocks = append(cfg.Blocks, vasm.Block{
			ID: id, Kind: kind, NInstrs: instrs,
			OriginFunc: origin, OriginBlock: originBlock,
		})
		return id
	}

	// pendingInlineEdges records ret-block → continuation-bc-block
	// links to resolve once all main blocks exist.
	type pendingEdge struct {
		fromVasm int
		toBCBlk  int
		weight   uint64
	}
	var pending []pendingEdge
	// guardEdges: specialized blocks get a side-exit block; weights
	// are assigned in applyLayout.
	type guardLink struct{ from, exit int }
	var guards []guardLink

	instrument := tier == TierProfile ||
		(tier == TierOptimized && j.opts.InstrumentOptimized)

	for bi, bb := range bcBlocks {
		instrs := 0
		specSites := 0
		callProfiles := 0
		propProfiles := 0

		for pc := bb.Start; pc < bb.End; pc++ {
			in := fn.Code[pc]
			switch {
			case tier == TierOptimized && isSpecializable(in.Op) && fp != nil:
				if a, b, mono := fp.MonoTypes(int32(pc)); mono {
					instrs += vasm.SpecializedInstrs(in.Op)
					t.SpecTypes[int32(pc)] = uint16(a)<<8 | uint16(b)
					specSites++
				} else {
					instrs += vasm.GenericInstrs(in.Op)
				}
			case tier == TierOptimized && (in.Op == bytecode.OpPropGet || in.Op == bytecode.OpPropSet):
				// Region compilation knows the receiver class: guard
				// on the class pointer and use a direct slot access.
				instrs += vasm.SpecializedPropInstrs
				specSites++
			case tier == TierOptimized && in.Op == bytecode.OpFCallM && fp != nil:
				target, ok := fp.DominantTarget(int32(pc), j.opts.InlineMinFraction)
				if !ok {
					instrs += vasm.GenericInstrs(in.Op)
					break
				}
				callee, found := j.prog.FuncByName(target)
				switch {
				case found && j.inlinable(fn, callee, p):
					// Guard + spilled args; body spliced below.
					instrs += 3
					t.Inlines[int32(pc)] = &InlineMap{Callee: callee.ID}
				default:
					instrs += vasm.DevirtualizedCallInstrs
					t.Devirt[int32(pc)] = target
					specSites++
				}
			case tier == TierOptimized && in.Op == bytecode.OpFCallD && fp != nil:
				callee := j.prog.Funcs[in.A]
				if j.inlinable(fn, callee, p) {
					instrs += 2 // no dispatch guard needed: direct target
					t.Inlines[int32(pc)] = &InlineMap{Callee: callee.ID}
				} else {
					instrs += vasm.GenericInstrs(in.Op)
				}
			default:
				instrs += vasm.GenericInstrs(in.Op)
			}
			if instrument {
				if in.Op.IsCall() && tier == TierProfile {
					callProfiles++
				}
				if (in.Op == bytecode.OpPropGet || in.Op == bytecode.OpPropSet) && tier == TierProfile {
					propProfiles++
				}
			}
		}
		if instrument {
			instrs += vasm.BlockCounterInstrs
			instrs += callProfiles * vasm.CallProfileInstrs
			instrs += propProfiles * vasm.PropProfileInstrs
			if bi == 0 && tier == TierOptimized {
				instrs += vasm.FuncEntryProfileInstrs
			}
		}
		if instrs == 0 {
			instrs = 1 // every block materializes at least a jump
		}
		vb := newBlock(vasm.KindNormal, fn.ID, bi, instrs)
		t.MainMap[bi] = vb

		if specSites > 0 {
			exit := newBlock(vasm.KindGuardExit, fn.ID, -1, vasm.GuardExitInstrs)
			guards = append(guards, guardLink{from: vb, exit: exit})
		}

		// Splice the inlined callee's body right after the call block.
		if last := fn.Code[bb.End-1]; last.Op.IsCall() {
			if im, ok := t.Inlines[int32(bb.End-1)]; ok {
				callee := j.prog.Funcs[im.Callee]
				calleeFP := (*prof.FuncProfile)(nil)
				if p != nil {
					calleeFP = p.Funcs[callee.Name]
				}
				im.BlockOf = make([]int, len(callee.Blocks()))
				im.SpecTypes = make(map[int32]uint16)
				for cbi, cbb := range callee.Blocks() {
					ci := 0
					for pc := cbb.Start; pc < cbb.End; pc++ {
						cin := callee.Code[pc]
						if isSpecializable(cin.Op) && calleeFP != nil {
							if a, b, mono := calleeFP.MonoTypes(int32(pc)); mono {
								ci += vasm.SpecializedInstrs(cin.Op)
								im.SpecTypes[int32(pc)] = uint16(a)<<8 | uint16(b)
								continue
							}
						}
						if cin.Op == bytecode.OpPropGet || cin.Op == bytecode.OpPropSet {
							ci += vasm.SpecializedPropInstrs
							continue
						}
						if cin.Op == bytecode.OpRet {
							ci += 1 // inlined return is a move + jump
							continue
						}
						ci += vasm.GenericInstrs(cin.Op)
					}
					if instrument {
						ci += vasm.BlockCounterInstrs
					}
					if ci == 0 {
						ci = 1
					}
					im.BlockOf[cbi] = newBlock(vasm.KindNormal, callee.ID, cbi, ci)
				}
				// Callee-internal edges.
				for cbi, cbb := range callee.Blocks() {
					for _, s := range cbb.Succs {
						cfg.Edges = append(cfg.Edges, vasm.Edge{
							Src: im.BlockOf[cbi], Dst: im.BlockOf[s],
						})
					}
					if lastOp := callee.Code[cbb.End-1].Op; lastOp == bytecode.OpRet {
						// Ret blocks continue at the caller's next block.
						for _, s := range bb.Succs {
							pending = append(pending, pendingEdge{
								fromVasm: im.BlockOf[cbi], toBCBlk: s,
							})
						}
					}
				}
				// Call block enters the inlined entry.
				cfg.Edges = append(cfg.Edges, vasm.Edge{Src: vb, Dst: im.BlockOf[0]})
			}
		}
	}

	// Main bytecode CFG edges (skipping call→continuation when the
	// call was inlined: control flows through the inlined body).
	for bi, bb := range bcBlocks {
		if last := fn.Code[bb.End-1]; last.Op.IsCall() {
			if _, inlined := t.Inlines[int32(bb.End-1)]; inlined {
				continue
			}
		}
		for _, s := range bb.Succs {
			cfg.Edges = append(cfg.Edges, vasm.Edge{Src: t.MainMap[bi], Dst: t.MainMap[s]})
		}
	}
	for _, pe := range pending {
		cfg.Edges = append(cfg.Edges, vasm.Edge{
			Src: pe.fromVasm, Dst: t.MainMap[pe.toBCBlk], Weight: pe.weight,
		})
	}
	for _, gl := range guards {
		cfg.Edges = append(cfg.Edges, vasm.Edge{Src: gl.from, Dst: gl.exit})
	}

	// Fill successor lists from edges (the runtime's branch model and
	// the layout conversion both want them).
	for _, e := range cfg.Edges {
		cfg.Blocks[e.Src].Succs = append(cfg.Blocks[e.Src].Succs, e.Dst)
	}

	// Non-optimized tiers lay blocks out in lowering order, all hot.
	t.Order = make([]int, len(cfg.Blocks))
	for i := range t.Order {
		t.Order[i] = i
	}
	t.HotCount = len(t.Order)
	t.BlockAddr = make([]uint64, len(cfg.Blocks))
	for i := range cfg.Blocks {
		t.HotSize += cfg.Blocks[i].Size()
	}
	if instrument {
		t.Counts = make([]uint64, len(cfg.Blocks))
	}
	return t
}

// inlinable reports whether callee may be inlined into caller.
func (j *JIT) inlinable(caller, callee *bytecode.Function, p *prof.Profile) bool {
	if callee == nil || callee == caller {
		return false
	}
	if len(callee.Blocks()) > j.opts.InlineMaxBlocks {
		return false
	}
	// The callee must not itself contain calls (one-level inlining,
	// keeping the runtime's shadow-stack model simple and bounding
	// code growth).
	for _, in := range callee.Code {
		if in.Op.IsCall() {
			return false
		}
	}
	if p == nil || p.Funcs[callee.Name] == nil {
		return false
	}
	return true
}

// isSpecializable reports whether the op benefits from monomorphic
// type feedback.
func isSpecializable(op bytecode.Op) bool {
	switch op {
	case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv,
		bytecode.OpMod, bytecode.OpConcat, bytecode.OpNeg,
		bytecode.OpCmpEq, bytecode.OpCmpNeq, bytecode.OpCmpSame,
		bytecode.OpCmpNSame, bytecode.OpCmpLt, bytecode.OpCmpLte,
		bytecode.OpCmpGt, bytecode.OpCmpGte:
		return true
	default:
		return false
	}
}

// applyLayout assigns block and edge weights and runs the Ext-TSP +
// hot/cold layout pipeline on an optimized translation.
//
// Weight sources (the crux of Section V-A):
//
//   - Without seeded Vasm counters, weights are *derived* from the
//     bytecode-level tier-1 profile: main blocks get their bytecode
//     block counts; inlined callee blocks get the callee's global
//     block counts (wrong for any specific call site); guard exits get
//     a fixed assumed fraction of their parent's weight (the JIT
//     cannot know real guard-failure rates).
//   - With seeded Vasm counters (UseVasmCounters and a matching
//     VasmCounts vector), every block gets its measured count.
func (j *JIT) applyLayout(t *Translation, fp *prof.FuncProfile) {
	cfg := t.CFG
	useVasm := j.opts.UseVasmCounters && len(fp.VasmCounts) == len(cfg.Blocks)

	if useVasm {
		for i := range cfg.Blocks {
			cfg.Blocks[i].Weight = fp.VasmCounts[i]
		}
	} else {
		for i := range cfg.Blocks {
			b := &cfg.Blocks[i]
			switch {
			case b.Kind == vasm.KindGuardExit:
				// Assigned below from the parent edge.
				b.Weight = 0
			case b.OriginFunc == t.Fn.ID:
				if b.OriginBlock >= 0 && b.OriginBlock < len(fp.BlockCounts) {
					b.Weight = fp.BlockCounts[b.OriginBlock]
				}
			default:
				// Inlined callee block: approximate with the callee's
				// global counts when available via the caller profile
				// — we only have the caller's fp here, so scale the
				// inline entry by the call-site count below; interior
				// blocks inherit it. (Assigned in the edge pass.)
				b.Weight = 0
			}
		}
	}

	// Edge weights from the bytecode edge profile where both endpoints
	// are main blocks; otherwise derived from block weights.
	bcOfVasm := make(map[int]int, len(t.MainMap))
	for bcb, vb := range t.MainMap {
		bcOfVasm[vb] = bcb
	}
	for i := range cfg.Edges {
		e := &cfg.Edges[i]
		if sb, ok1 := bcOfVasm[e.Src]; ok1 {
			if db, ok2 := bcOfVasm[e.Dst]; ok2 {
				e.Weight = fp.EdgeCounts[prof.EdgeKey{Src: int32(sb), Dst: int32(db)}]
				continue
			}
		}
		// Guard-exit edges.
		if cfg.Blocks[e.Dst].Kind == vasm.KindGuardExit {
			if useVasm {
				e.Weight = cfg.Blocks[e.Dst].Weight
			} else {
				w := uint64(float64(cfg.Blocks[e.Src].Weight) * j.opts.GuardAssumedWeight)
				e.Weight = w
				cfg.Blocks[e.Dst].Weight = w
			}
			continue
		}
		// Inline-related edges: weight of the source block.
		e.Weight = cfg.Blocks[e.Src].Weight
	}

	// Propagate weights into inlined bodies when not using measured
	// counters: the inline entry gets the call block's weight; deeper
	// blocks get a uniform share (this coarseness is exactly the
	// inaccuracy Section V-A's instrumentation removes).
	if !useVasm {
		for _, im := range t.Inlines {
			if len(im.BlockOf) == 0 {
				continue
			}
			entry := im.BlockOf[0]
			var entryW uint64
			for _, e := range cfg.Edges {
				if e.Dst == entry {
					entryW += cfg.Blocks[e.Src].Weight
				}
			}
			for _, vb := range im.BlockOf {
				cfg.Blocks[vb].Weight = entryW
			}
			// Recompute the weights of edges out of inlined blocks.
			inBody := make(map[int]bool, len(im.BlockOf))
			for _, vb := range im.BlockOf {
				inBody[vb] = true
			}
			for i := range cfg.Edges {
				e := &cfg.Edges[i]
				if inBody[e.Src] && cfg.Blocks[e.Dst].Kind != vasm.KindGuardExit {
					e.Weight = entryW
				}
			}
		}
	}

	g := cfg.ToLayoutGraph()
	order := layout.ExtTSP(g)
	hot, cold := layout.SplitHotCold(g, order, j.opts.ColdFraction)
	t.Order = append(append([]int{}, hot...), cold...)
	t.HotCount = len(hot)
	t.HotSize, t.ColdSize = 0, 0
	for i, b := range t.Order {
		if i < t.HotCount {
			t.HotSize += cfg.Blocks[b].Size()
		} else {
			t.ColdSize += cfg.Blocks[b].Size()
		}
	}
}
