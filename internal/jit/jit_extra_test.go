package jit

import (
	"testing"

	"jumpstart/internal/interp"
	"jumpstart/internal/value"
)

func TestCompileLiveActivatesAndRuns(t *testing.T) {
	w := newWorld(t)
	j := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	fn, _ := w.prog.FuncByName("handler")
	tr, err := j.CompileLive(fn)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tier != TierLive {
		t.Fatalf("tier = %v", tr.Tier)
	}
	if j.Active(fn.ID) != tr {
		t.Fatal("live translation not activated")
	}
	// Live code must be cheaper than interpretation.
	rt := NewRuntime(j, nil)
	w.ip.SetTracer(rt)
	rt.BeginRequest(false)
	if _, err := w.ip.CallByName("handler", value.Int(10)); err != nil {
		t.Fatal(err)
	}
	liveCost := rt.TakeCycles()
	j.SetActive(fn.ID, nil)
	rt.BeginRequest(false)
	if _, err := w.ip.CallByName("handler", value.Int(10)); err != nil {
		t.Fatal(err)
	}
	interpCost := rt.TakeCycles()
	w.ip.SetTracer(nil)
	if liveCost >= interpCost {
		t.Fatalf("live (%d) not cheaper than interp (%d)", liveCost, interpCost)
	}
	// Addresses live in the live region.
	addr := tr.BlockAddr[tr.MainMap[0]]
	if addr < regionBase[RegionLive] || addr >= regionBase[RegionLive]+regionStride {
		t.Fatalf("live code at %#x", addr)
	}
}

func TestCompileLiveRegionFull(t *testing.T) {
	w := newWorld(t)
	cfg := DefaultCacheConfig()
	cfg.LiveCap = 64 // absurdly small
	j := New(w.prog, DefaultOptions(), NewCodeCache(cfg))
	fn, _ := w.prog.FuncByName("handler")
	if _, err := j.CompileLive(fn); err == nil {
		t.Fatal("full live region accepted a translation")
	} else if _, ok := err.(*ErrRegionFull); !ok {
		t.Fatalf("err = %T", err)
	}
}

func TestFunctionOrderSortVariants(t *testing.T) {
	w := newWorld(t)
	for _, sortAlgo := range []FunctionSort{SortC3, SortPH, SortNone} {
		opts := DefaultOptions()
		opts.FuncSort = sortAlgo
		j := New(w.prog, opts, NewCodeCache(DefaultCacheConfig()))
		p := collectProfile(t, w, j, 5)
		names := p.HotFunctions()
		order := j.FunctionOrder(p, names)
		if len(order) != len(names) {
			t.Fatalf("%s: order = %d names = %d", sortAlgo, len(order), len(names))
		}
		seen := map[string]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("%s: duplicate %s", sortAlgo, n)
			}
			seen[n] = true
		}
		if sortAlgo == SortNone {
			for i := range names {
				if order[i] != names[i] {
					t.Fatalf("SortNone must preserve input order")
				}
			}
		}
	}
}

func TestRelocateSkipsUnknownNamesInOrder(t *testing.T) {
	w := newWorld(t)
	j := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	p := collectProfile(t, w, j, 5)
	fn, _ := w.prog.FuncByName("cartTotal")
	tr, err := j.CompileOptimized(fn, p)
	if err != nil {
		t.Fatal(err)
	}
	trans := map[string]*Translation{"cartTotal": tr}
	// A stale function order naming dropped functions must not break
	// relocation, and unnamed translations still get placed.
	err = j.RelocateOptimized(trans, []string{"ghost1", "cartTotal", "ghost2"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Active(fn.ID) != tr {
		t.Fatal("translation not activated")
	}
}

func TestGuardFailureViaPolymorphicInlineSite(t *testing.T) {
	// A call site inlined for one target must charge a guard failure
	// (and still execute correctly) when another target shows up.
	w := newWorld(t)
	j := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	p := collectProfile(t, w, j, 10)
	trans := map[string]*Translation{}
	for _, name := range p.HotFunctions() {
		fn, _ := w.prog.FuncByName(name)
		tr, err := j.CompileOptimized(fn, p)
		if err != nil {
			t.Fatal(err)
		}
		trans[name] = tr
	}
	if err := j.RelocateOptimized(trans, nil); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(j, nil)
	w.ip.SetTracer(rt)
	rt.BeginRequest(false)
	v, err := w.ip.CallByName("handler", value.Int(6))
	w.ip.SetTracer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.IsNull() {
		t.Fatal("wrong result")
	}
	_ = interp.MultiTracer{} // keep import for symmetry with other tests
}
