// Package jit simulates HHVM's tiered JIT compiler. It does not emit
// machine code; it lowers bytecode into sized Vasm CFGs (package vasm),
// applies the profile-guided optimizations the paper describes — type
// specialization, guarded devirtualization, profile-guided inlining,
// Ext-TSP block layout with hot/cold splitting, and C3 function
// sorting — and places the results in a simulated code cache. A
// Runtime tracer charges execution cycles for whichever translation a
// function currently has, which is how tier transitions, Jump-Start
// and the Section V optimizations become measurable.
package jit

import (
	"fmt"
	"sort"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/layout"
	"jumpstart/internal/prof"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/vasm"
)

// Tier identifies a translation flavour.
type Tier uint8

// Translation tiers, mirroring HHVM's.
const (
	// TierNone means the function executes in the interpreter.
	TierNone Tier = iota
	// TierLive is a tracelet-style translation built from live VM
	// state, without profile data.
	TierLive
	// TierProfile is the instrumented tier-1 translation.
	TierProfile
	// TierOptimized is the profile-guided tier-2 translation.
	TierOptimized
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierNone:
		return "none"
	case TierLive:
		return "live"
	case TierProfile:
		return "profile"
	case TierOptimized:
		return "optimized"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// FunctionSort selects the function-sorting algorithm.
type FunctionSort string

// Function-sort choices.
const (
	SortC3   FunctionSort = "c3"
	SortPH   FunctionSort = "ph"
	SortNone FunctionSort = "none"
)

// Options parameterizes compilation. The Use* fields are the Figure 6
// ablation switches; the Instrument* fields enable the extra seeder
// instrumentation of Sections V-A/V-B.
type Options struct {
	// UseVasmCounters uses seeded Vasm-level block counters for block
	// layout instead of bytecode-derived weights (Section V-A).
	UseVasmCounters bool
	// UseSeededCallGraph builds the function-sorting call graph from
	// the seeder's tier-2 entry instrumentation instead of the tier-1
	// call-target profiles (Section V-B).
	UseSeededCallGraph bool
	// InstrumentOptimized adds block counters and entry counters to
	// optimized translations (seeder mode, Figure 3b).
	InstrumentOptimized bool

	// InlineMaxBlocks bounds the callee size (in bytecode basic
	// blocks) eligible for inlining.
	InlineMaxBlocks int
	// InlineMinFraction is the dominant-target fraction required to
	// inline or devirtualize a call site.
	InlineMinFraction float64
	// ColdFraction is the hot/cold split threshold relative to the
	// hottest block.
	ColdFraction float64
	// GuardAssumedWeight is the fraction of a block's weight assumed
	// to reach its guard exits when no Vasm counters are available —
	// the bytecode/Vasm semantic gap of Section V-A.
	GuardAssumedWeight float64
	// FuncSort selects the function-sorting algorithm.
	FuncSort FunctionSort
	// MaxClusterSize caps C3 cluster growth (bytes).
	MaxClusterSize int
}

// DefaultOptions returns production-like settings.
func DefaultOptions() Options {
	return Options{
		InlineMaxBlocks:    12,
		InlineMinFraction:  0.9,
		ColdFraction:       0.02,
		GuardAssumedWeight: 0.05,
		FuncSort:           SortC3,
		MaxClusterSize:     layout.DefaultMaxClusterSize,
	}
}

// InlineMap records how an inlined callee's bytecode blocks map into
// the caller's translation.
type InlineMap struct {
	Callee bytecode.FuncID
	// BlockOf maps callee bytecode block id -> vasm block id in the
	// caller's CFG.
	BlockOf []int
	// SpecTypes guards specialized sites inside the inlined body,
	// keyed by callee pc.
	SpecTypes map[int32]uint16
}

// Translation is one compiled body.
type Translation struct {
	Fn   *bytecode.Function
	Tier Tier
	CFG  *vasm.CFG

	// MainMap maps the function's bytecode block ids to vasm blocks.
	MainMap []int
	// Inlines maps call-site pc -> inlined callee info.
	Inlines map[int32]*InlineMap
	// SpecTypes records the kind pair each specialized site guards on
	// (pc -> a<<8|b); the runtime charges a side exit when execution
	// deviates.
	SpecTypes map[int32]uint16
	// Devirt records guarded direct-call targets by call-site pc.
	Devirt map[int32]string

	// Order is the final block order (hot section then cold section);
	// HotCount is the length of the hot prefix.
	Order    []int
	HotCount int
	// BlockAddr assigns each vasm block its simulated address.
	BlockAddr []uint64
	// HotSize/ColdSize are section sizes in bytes.
	HotSize, ColdSize int

	// Counts are runtime per-vasm-block counters, allocated when the
	// translation is instrumented.
	Counts []uint64
	// EntryCount counts activations (instrumented optimized only).
	EntryCount uint64
}

// Instrumented reports whether the translation carries counters.
func (t *Translation) Instrumented() bool { return t.Counts != nil }

// CodeSize returns the translation's total emitted bytes.
func (t *Translation) CodeSize() int {
	size := 0
	for _, b := range t.Order {
		size += t.CFG.Blocks[b].Size()
	}
	return size
}

// JIT is the compilation manager for one server.
type JIT struct {
	prog *bytecode.Program
	opts Options
	cc   *CodeCache

	active []*Translation // by FuncID; nil = interpreter

	// epoch counts every change to the set of active translations or
	// their addresses (compile, relocation, activation). Replay caches
	// key on it: any entry recorded under an older epoch can no longer
	// be trusted, because the code it charged for may have moved tiers
	// or addresses.
	epoch uint64

	// Telemetry (all nil when disabled — the methods are nil-safe).
	tel        *telemetry.Set
	clock      func() float64
	cCompile   [4]*telemetry.Counter // by Tier
	gOccupancy [numRegions]*telemetry.Gauge
}

// New creates a JIT for prog with the given options and code cache.
func New(prog *bytecode.Program, opts Options, cc *CodeCache) *JIT {
	return &JIT{
		prog:   prog,
		opts:   opts,
		cc:     cc,
		active: make([]*Translation, len(prog.Funcs)),
	}
}

// SetTelemetry installs the observation set. clock supplies the
// owner's virtual time for trace events (nil = always 0). Safe to
// leave uncalled; everything below is nil-safe.
func (j *JIT) SetTelemetry(tel *telemetry.Set, clock func() float64) {
	j.tel = tel
	j.clock = clock
	for t := TierLive; t <= TierOptimized; t++ {
		j.cCompile[t] = tel.Counter("jit.compile." + t.String() + "_total")
	}
	for r := Region(0); r < numRegions; r++ {
		j.gOccupancy[r] = tel.Gauge("jit.cache." + r.String() + "_bytes")
	}
}

// now returns the owner's virtual time for trace events.
func (j *JIT) now() float64 {
	if j.clock == nil {
		return 0
	}
	return j.clock()
}

// noteCompile records one compilation in the metrics and trace.
func (j *JIT) noteCompile(t *Translation) {
	if j.tel == nil {
		return
	}
	j.cCompile[t.Tier].Inc()
	j.gOccupancy[regionOfTier(t.Tier)].Set(float64(j.cc.Used(regionOfTier(t.Tier))))
	j.tel.Event(j.now(), "jit", "compile",
		telemetry.S("fn", t.Fn.Name),
		telemetry.S("tier", t.Tier.String()),
		telemetry.I("bytes", int64(t.CodeSize())))
}

// regionOfTier maps a tier to the region its fresh translations are
// placed in (optimized code starts in the temp buffers).
func regionOfTier(t Tier) Region {
	switch t {
	case TierProfile:
		return RegionProfile
	case TierOptimized:
		return RegionTemp
	default:
		return RegionLive
	}
}

// Options returns the JIT's options.
func (j *JIT) Options() Options { return j.opts }

// Cache returns the code cache.
func (j *JIT) Cache() *CodeCache { return j.cc }

// Active returns the translation currently executing for fn (nil =
// interpreter).
func (j *JIT) Active(id bytecode.FuncID) *Translation { return j.active[id] }

// SetActive installs t as fn's current translation.
func (j *JIT) SetActive(id bytecode.FuncID, t *Translation) {
	j.active[id] = t
	j.epoch++
}

// Epoch returns the translation-layout epoch: a counter bumped every
// time a translation is placed, relocated or (de)activated. Anything
// derived from translation addresses or tiers (e.g. replay buffers) is
// stale once the epoch moves.
func (j *JIT) Epoch() uint64 { return j.epoch }

// CompileProfiling builds and places the tier-1 translation for fn and
// makes it active.
func (j *JIT) CompileProfiling(fn *bytecode.Function) (*Translation, error) {
	t := j.lower(fn, TierProfile, nil, nil)
	if err := j.place(t, RegionProfile); err != nil {
		return nil, err
	}
	j.active[fn.ID] = t
	j.noteCompile(t)
	return t, nil
}

// CompileLive builds and places a live translation for fn and makes it
// active (used for the long tail after optimized code is in place).
func (j *JIT) CompileLive(fn *bytecode.Function) (*Translation, error) {
	t := j.lower(fn, TierLive, nil, nil)
	if err := j.place(t, RegionLive); err != nil {
		return nil, err
	}
	j.active[fn.ID] = t
	j.noteCompile(t)
	return t, nil
}

// CompileOptimized builds the tier-2 translation for fn from profile
// data. The translation is placed in the temporary buffer region; it
// becomes active (and correctly addressed) only after
// RelocateOptimized, reproducing Figure 1's B→C phase.
func (j *JIT) CompileOptimized(fn *bytecode.Function, p *prof.Profile) (*Translation, error) {
	fp := p.Funcs[fn.Name]
	if fp == nil {
		return nil, fmt.Errorf("jit: no profile for %s", fn.Name)
	}
	if fp.Checksum != prof.FuncChecksum(fn) {
		return nil, fmt.Errorf("jit: stale profile for %s (checksum mismatch)", fn.Name)
	}
	t := j.lower(fn, TierOptimized, fp, p)
	j.applyLayout(t, fp)
	if err := j.place(t, RegionTemp); err != nil {
		return nil, err
	}
	j.noteCompile(t)
	return t, nil
}

// RelocateOptimized moves the given optimized translations from the
// temporary buffers into their final hot/cold code-cache locations in
// the given order, and activates them. Unknown names are skipped (a
// stale function order must not break startup).
func (j *JIT) RelocateOptimized(trans map[string]*Translation, order []string) error {
	seen := make(map[string]bool, len(order))
	place := func(name string) error {
		t := trans[name]
		if t == nil || seen[name] {
			return nil
		}
		seen[name] = true
		if err := j.relocate(t); err != nil {
			return err
		}
		j.active[t.Fn.ID] = t
		return nil
	}
	for _, name := range order {
		if err := place(name); err != nil {
			return err
		}
	}
	// Anything not named by the order still gets placed, after.
	names := make([]string, 0, len(trans))
	for name := range trans {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := place(name); err != nil {
			return err
		}
	}
	j.cc.ReleaseTemp()
	if j.tel != nil {
		hot, cold := 0, 0
		for _, t := range trans {
			hot += t.HotSize
			cold += t.ColdSize
		}
		j.tel.Counter("jit.relocations_total").Inc()
		j.tel.Event(j.now(), "jit", "relocate",
			telemetry.I("funcs", int64(len(trans))),
			telemetry.I("hot_bytes", int64(hot)),
			telemetry.I("cold_bytes", int64(cold)))
		for r := Region(0); r < numRegions; r++ {
			j.gOccupancy[r].Set(float64(j.cc.Used(r)))
		}
	}
	return nil
}

// FunctionOrder computes the code-cache placement order for the named
// functions using the JIT's configured call-graph source (see
// FunctionOrderWith).
func (j *JIT) FunctionOrder(p *prof.Profile, names []string) []string {
	return j.FunctionOrderWith(p, names, j.opts.UseSeededCallGraph)
}

// FunctionOrderWith computes the placement order. With useSeeded (and
// seeded CallPairs present) the accurate tier-2 entry-instrumentation
// graph is used; otherwise the tier-1 call-target profiles approximate
// it — including arcs that tier-2 inlining eliminates, which is
// exactly the inaccuracy Section V-B fixes.
func (j *JIT) FunctionOrderWith(p *prof.Profile, names []string, useSeeded bool) []string {
	idx := make(map[string]int, len(names))
	cg := &layout.CallGraph{}
	for i, name := range names {
		idx[name] = i
		fp := p.Funcs[name]
		size := 64
		var weight uint64
		if fn, ok := j.prog.FuncByName(name); ok {
			size = estimateOptSize(fn)
			if fp != nil {
				weight = fp.EntryCount
			}
		}
		cg.Nodes = append(cg.Nodes, layout.FuncNode{Name: name, Size: size, Weight: weight})
	}

	if useSeeded && len(p.CallPairs) > 0 {
		for pair, w := range p.CallPairs {
			ci, ok1 := idx[pair.Caller]
			ce, ok2 := idx[pair.Callee]
			if ok1 && ok2 {
				cg.Arcs = append(cg.Arcs, layout.Arc{Caller: ci, Callee: ce, Weight: w})
			}
		}
	} else {
		// Tier-1 approximation: call-target profiles, which still
		// include arcs that tier-2 inlining will eliminate.
		for caller, fp := range p.Funcs {
			ci, ok := idx[caller]
			if !ok {
				continue
			}
			for _, targets := range fp.CallTargets {
				for callee, w := range targets {
					if ce, ok := idx[callee]; ok {
						cg.Arcs = append(cg.Arcs, layout.Arc{Caller: ci, Callee: ce, Weight: w})
					}
				}
			}
		}
	}

	var order []int
	switch j.opts.FuncSort {
	case SortPH:
		order = layout.PettisHansen(cg)
	case SortNone:
		order = make([]int, len(names))
		for i := range order {
			order[i] = i
		}
	default:
		order = layout.C3(cg, j.opts.MaxClusterSize)
	}
	out := make([]string, len(order))
	for i, id := range order {
		out[i] = names[id]
	}
	return out
}

// estimateOptSize approximates a function's optimized code size from
// its bytecode (used for call-graph node sizes before compilation).
func estimateOptSize(fn *bytecode.Function) int {
	n := 0
	for _, in := range fn.Code {
		n += vasm.SpecializedInstrs(in.Op)
	}
	return n * vasm.BytesPerInstr
}

// place allocates addresses for a freshly lowered translation in the
// given region using its current Order.
func (j *JIT) place(t *Translation, region Region) error {
	j.epoch++
	size := 0
	for _, b := range t.Order {
		size += t.CFG.Blocks[b].Size()
	}
	base, err := j.cc.Alloc(region, size)
	if err != nil {
		return err
	}
	addr := base
	for _, b := range t.Order {
		t.BlockAddr[b] = addr
		addr += uint64(t.CFG.Blocks[b].Size())
	}
	return nil
}

// relocate assigns a tier-2 translation's final hot and cold section
// addresses.
func (j *JIT) relocate(t *Translation) error {
	j.epoch++
	hotBase, err := j.cc.Alloc(RegionHot, t.HotSize)
	if err != nil {
		return err
	}
	coldBase := uint64(0)
	if t.ColdSize > 0 {
		coldBase, err = j.cc.Alloc(RegionCold, t.ColdSize)
		if err != nil {
			return err
		}
	}
	addr := hotBase
	for i, b := range t.Order {
		if i == t.HotCount {
			addr = coldBase
		}
		t.BlockAddr[b] = addr
		addr += uint64(t.CFG.Blocks[b].Size())
	}
	return nil
}
