package jit

import (
	"jumpstart/internal/bytecode"
	"jumpstart/internal/interp"
	"jumpstart/internal/object"
	"jumpstart/internal/prof"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/value"
)

// Cycle-cost constants.
const (
	// InterpCyclesPerInstr is the interpreter's dispatch+execute cost
	// per bytecode instruction.
	InterpCyclesPerInstr = 30
	// CyclesPerVasmInstr is the translated code's cost per
	// pseudo-instruction (before micro-architectural penalties).
	CyclesPerVasmInstr = 1
	// GuardFailPenalty is charged when a specialization or
	// devirtualization guard fails (side exit + generic fallback).
	GuardFailPenalty = 60
)

// Runtime charges execution costs for whatever translation each
// function currently has, feeds the micro-architecture simulator, and
// (in seeder mode) harvests the tier-2 instrumentation counters. It
// implements interp.Tracer; the server installs it (usually behind an
// interp.MultiTracer together with a prof.Collector) while serving.
type Runtime struct {
	jit *JIT
	mem MemSim

	cycles     uint64
	guardFails uint64
	microOn    bool

	// rec, when non-nil, receives a copy of every charge and memory
	// event (replay capture). Installed only for the duration of one
	// capture, so the nil check is the entire steady-state cost.
	rec Recorder

	frames []rtFrame

	callPairs map[prof.CallPair]uint64

	// cp attributes every charged cycle to a telemetry bucket (nil =
	// profiling off; all CycleProfile methods are nil-safe). The server
	// installs it once init completes, so init-phase execution stays
	// attributed to the coarse server-level init buckets.
	cp *telemetry.CycleProfile
}

// MemSim is the slice of the micro-architecture simulator the runtime
// needs; *microarch.Hierarchy satisfies it. A nil MemSim disables
// penalty modelling.
type MemSim interface {
	Fetch(addr uint64, size int) int
	Data(addr uint64) int
	Branch(pc uint64, taken bool) int
}

// Recorder mirrors the runtime's charge stream while a replay capture
// is in flight (see internal/replay). Every cycle the runtime charges
// and every memory event it feeds to the MemSim is echoed to the
// recorder so the capture can be replayed later without re-executing.
// MarkDirty poisons the capture: something happened that a replay
// could not reproduce (a unit load, a compile, an instrumentation
// write), so the entry must be discarded.
type Recorder interface {
	RecordBase(b telemetry.CycleBucket, cycles uint64)
	RecordFetch(addr uint64, size int)
	RecordData(addr uint64)
	RecordBranch(pc uint64, taken bool)
	RecordGuardFail()
	RecordEnter(fn *bytecode.Function)
	RecordReturn()
	MarkDirty()
}

type rtFrame struct {
	fn     *bytecode.Function
	trans  *Translation // nil → interpreter
	inline *InlineMap   // non-nil → body inlined into parent trans
	parent *Translation // owner translation when inline != nil

	lastVasm int
	lastAddr uint64
	lastSize int
	lastCond bool

	pendingInline *InlineMap
	pendingParent *Translation
}

var _ interp.Tracer = (*Runtime)(nil)

// NewRuntime creates a serving-mode runtime for j. mem may be nil.
func NewRuntime(j *JIT, mem MemSim) *Runtime {
	return &Runtime{
		jit:       j,
		mem:       mem,
		callPairs: make(map[prof.CallPair]uint64),
	}
}

// BeginRequest resets per-request state. micro selects whether this
// request feeds the micro-architecture simulator (sampling keeps the
// simulation fast; costs for unsampled requests use base cycles only).
func (r *Runtime) BeginRequest(micro bool) {
	r.frames = r.frames[:0]
	r.microOn = micro && r.mem != nil
}

// TakeCycles returns and clears the accumulated cycle count.
func (r *Runtime) TakeCycles() uint64 {
	c := r.cycles
	r.cycles = 0
	return c
}

// Cycles returns the accumulated cycle count.
func (r *Runtime) Cycles() uint64 { return r.cycles }

// AddCycles charges extra cycles (used by the server for fixed
// per-request overheads). External charges are invisible to a replay
// capture, so any capture in flight is poisoned.
func (r *Runtime) AddCycles(c uint64) {
	r.cycles += c
	if r.rec != nil {
		r.rec.MarkDirty()
	}
}

// AddCyclesBucket charges extra cycles attributed to the given
// telemetry bucket (used by the server for unit loads and compile
// costs charged on the request path). Like AddCycles, it poisons any
// capture in flight: unit loads and compiles are one-time effects a
// replay could not reproduce.
func (r *Runtime) AddCyclesBucket(c uint64, b telemetry.CycleBucket) {
	r.cycles += c
	r.cp.AddUint(b, c)
	if r.rec != nil {
		r.rec.MarkDirty()
	}
}

// ReplayCharge credits cycles from a replayed capture to the given
// bucket. Unlike AddCyclesBucket it does not poison captures — it is
// only callable when no capture is in flight (replay and capture are
// mutually exclusive by construction).
func (r *Runtime) ReplayCharge(b telemetry.CycleBucket, c uint64) {
	r.cycles += c
	r.cp.AddUint(b, c)
}

// AddGuardFails credits guard failures observed during a replay.
func (r *Runtime) AddGuardFails(n uint64) { r.guardFails += n }

// SetRecorder installs (or, with nil, removes) the capture recorder.
func (r *Runtime) SetRecorder(rec Recorder) { r.rec = rec }

// MicroOn reports whether the current request feeds the
// micro-architecture simulator.
func (r *Runtime) MicroOn() bool { return r.microOn }

// CallContext keys the dispatch behaviour of a direct call at pc in
// the currently executing frame. It is non-zero only when the frame
// runs an optimized translation with an inline or devirtualization
// decision at that site — the cases where OnCallSite charges depend on
// the caller's translation, so a replay captured under one caller
// context must not be reused under another.
func (r *Runtime) CallContext(pc int) uint64 {
	n := len(r.frames)
	if n == 0 {
		return 0
	}
	f := &r.frames[n-1]
	if f.inline != nil || f.trans == nil || f.trans.Tier != TierOptimized {
		return 0
	}
	t := f.trans
	if _, ok := t.Inlines[int32(pc)]; ok {
		return uint64(f.fn.ID)<<20 | uint64(pc) + 1
	}
	if _, ok := t.Devirt[int32(pc)]; ok {
		return uint64(f.fn.ID)<<20 | uint64(pc) + 1
	}
	return 0
}

// SetCycleProfile installs (or removes, with nil) the cycle
// attribution profiler.
func (r *Runtime) SetCycleProfile(cp *telemetry.CycleProfile) { r.cp = cp }

// GuardFails returns the number of failed specialization guards.
func (r *Runtime) GuardFails() uint64 { return r.guardFails }

// OnEnter implements interp.Tracer.
func (r *Runtime) OnEnter(fn *bytecode.Function) {
	if r.rec != nil {
		r.rec.RecordEnter(fn)
	}
	var f rtFrame
	f.fn = fn
	f.lastVasm = -1
	if n := len(r.frames); n > 0 {
		top := &r.frames[n-1]
		if top.pendingInline != nil && top.pendingInline.Callee == fn.ID {
			f.inline = top.pendingInline
			f.parent = top.pendingParent
		}
		top.pendingInline = nil
		top.pendingParent = nil
	}
	if f.inline == nil {
		f.trans = r.jit.Active(fn.ID)
		if t := f.trans; t != nil && t.Tier == TierOptimized && t.Instrumented() {
			t.EntryCount++
			if r.rec != nil {
				r.rec.MarkDirty() // instrumentation writes are unreplayable
			}
			// Accurate tier-2 call graph (Section V-B): record the
			// caller/callee pair when the caller also runs optimized
			// code. Inlined calls never reach here — exactly why this
			// graph is more accurate than the tier-1 one.
			if n := len(r.frames); n > 0 {
				caller := r.frames[n-1]
				if caller.trans != nil && caller.trans.Tier == TierOptimized {
					r.callPairs[prof.CallPair{Caller: caller.fn.Name, Callee: fn.Name}]++
				}
			}
		}
	}
	r.frames = append(r.frames, f)
}

// OnReturn implements interp.Tracer.
func (r *Runtime) OnReturn(fn *bytecode.Function) {
	if r.rec != nil {
		r.rec.RecordReturn()
	}
	if n := len(r.frames); n > 0 {
		r.frames = r.frames[:n-1]
	}
}

// OnBlock implements interp.Tracer: the cost-charging heart.
func (r *Runtime) OnBlock(fn *bytecode.Function, block int) {
	n := len(r.frames)
	if n == 0 {
		return
	}
	f := &r.frames[n-1]

	var t *Translation
	var vb int
	switch {
	case f.inline != nil:
		t = f.parent
		if block >= len(f.inline.BlockOf) {
			return
		}
		vb = f.inline.BlockOf[block]
	case f.trans != nil:
		t = f.trans
		if block >= len(t.MainMap) {
			return
		}
		vb = t.MainMap[block]
	default:
		// Interpreter: dispatch cost per bytecode instruction.
		blocks := fn.Blocks()
		if block < len(blocks) {
			c := uint64(blocks[block].Len()) * InterpCyclesPerInstr
			r.cycles += c
			r.cp.AddUint(telemetry.CycleInterp, c)
			if r.rec != nil {
				r.rec.RecordBase(telemetry.CycleInterp, c)
			}
		}
		return
	}

	blk := &t.CFG.Blocks[vb]
	c := uint64(blk.NInstrs) * CyclesPerVasmInstr
	r.cycles += c
	r.cp.AddUint(telemetry.CycleJITExec, c)
	if r.rec != nil {
		r.rec.RecordBase(telemetry.CycleJITExec, c)
	}
	if t.Counts != nil {
		t.Counts[vb]++
		if r.rec != nil {
			r.rec.MarkDirty() // instrumentation writes are unreplayable
		}
	}
	if r.microOn {
		addr := t.BlockAddr[vb]
		fetch := uint64(r.mem.Fetch(addr, blk.Size()))
		r.cycles += fetch
		r.cp.AddUint(telemetry.CycleIFetch, fetch)
		if r.rec != nil {
			r.rec.RecordFetch(addr, blk.Size())
		}
		if f.lastVasm >= 0 && f.lastCond {
			taken := addr != f.lastAddr+uint64(f.lastSize)
			br := uint64(r.mem.Branch(f.lastAddr, taken))
			r.cycles += br
			r.cp.AddUint(telemetry.CycleBranch, br)
			if r.rec != nil {
				r.rec.RecordBranch(f.lastAddr, taken)
			}
		}
	}
	f.lastVasm = vb
	f.lastAddr = t.BlockAddr[vb]
	f.lastSize = blk.Size()
	f.lastCond = len(blk.Succs) > 1
}

// OnCallSite implements interp.Tracer: inline dispatch and
// devirtualization guards.
func (r *Runtime) OnCallSite(fn *bytecode.Function, pc int, callee *bytecode.Function) {
	n := len(r.frames)
	if n == 0 {
		return
	}
	f := &r.frames[n-1]
	if f.inline != nil || f.trans == nil || f.trans.Tier != TierOptimized {
		return
	}
	t := f.trans
	if im, ok := t.Inlines[int32(pc)]; ok {
		if im.Callee == callee.ID {
			f.pendingInline = im
			f.pendingParent = t
		} else {
			// Inline guard failed: side exit, generic dispatch.
			r.chargeGuardFail()
		}
		return
	}
	if target, ok := t.Devirt[int32(pc)]; ok && target != callee.Name {
		r.chargeGuardFail()
	}
}

// chargeGuardFail charges one failed guard (side exit + generic
// fallback), echoing it to a capture in flight.
func (r *Runtime) chargeGuardFail() {
	r.guardFails++
	r.cycles += GuardFailPenalty
	r.cp.AddUint(telemetry.CycleGuard, GuardFailPenalty)
	if r.rec != nil {
		r.rec.RecordBase(telemetry.CycleGuard, GuardFailPenalty)
		r.rec.RecordGuardFail()
	}
}

// OnNewObj implements interp.Tracer.
func (r *Runtime) OnNewObj(obj *object.Object) {
	if r.microOn {
		c := uint64(r.mem.Data(obj.Addr()))
		r.cycles += c
		r.cp.AddUint(telemetry.CycleData, c)
		if r.rec != nil {
			r.rec.RecordData(obj.Addr())
		}
	}
}

// OnPropAccess implements interp.Tracer: property slot touches drive
// the D-cache/D-TLB model, which is where Section V-C's reordering
// pays off.
func (r *Runtime) OnPropAccess(obj *object.Object, slot int, write bool) {
	if r.microOn {
		c := uint64(r.mem.Data(obj.SlotAddr(slot)))
		r.cycles += c
		r.cp.AddUint(telemetry.CycleData, c)
		if r.rec != nil {
			r.rec.RecordData(obj.SlotAddr(slot))
		}
	}
}

// OnOpTypes implements interp.Tracer: specialization guard checks.
func (r *Runtime) OnOpTypes(fn *bytecode.Function, pc int, a, b value.Kind) {
	n := len(r.frames)
	if n == 0 {
		return
	}
	f := &r.frames[n-1]
	var spec map[int32]uint16
	switch {
	case f.inline != nil:
		spec = f.inline.SpecTypes
	case f.trans != nil && f.trans.Tier == TierOptimized:
		spec = f.trans.SpecTypes
	default:
		return
	}
	if want, ok := spec[int32(pc)]; ok {
		got := uint16(a)<<8 | uint16(b)
		if got != want {
			r.chargeGuardFail()
		}
	}
}

// HarvestInto copies the tier-2 instrumentation results (Vasm block
// counters, accurate call pairs) into p — the seeder-side step between
// "collect profile data for optimized code" and "serialize profile
// data" in Figure 3b.
func (r *Runtime) HarvestInto(p *prof.Profile) {
	for id := range r.jit.active {
		t := r.jit.active[id]
		if t == nil || t.Tier != TierOptimized || !t.Instrumented() {
			continue
		}
		fp := p.Funcs[t.Fn.Name]
		if fp == nil {
			continue
		}
		fp.VasmCounts = append([]uint64{}, t.Counts...)
	}
	for pair, w := range r.callPairs {
		p.CallPairs[pair] += w
	}
}
