package jit

import (
	"strings"
	"testing"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/hackc"
	"jumpstart/internal/interp"
	"jumpstart/internal/microarch"
	"jumpstart/internal/object"
	"jumpstart/internal/prof"
	"jumpstart/internal/value"
	"jumpstart/internal/vasm"
)

const siteSrc = `
class Item { prop price = 0; prop qty = 0; prop tag = ""; }
fun itemTotal(it) { return it->price * it->qty; }
fun cartTotal(items) {
  t = 0;
  foreach (items as it) { t += itemTotal(it); }
  return t;
}
fun buildCart(n) {
  items = [];
  for (i = 0; i < n; i += 1) {
    it = new Item;
    it->price = i + 1;
    it->qty = 2;
    push(items, it);
  }
  return items;
}
fun handler(n) {
  items = buildCart(n);
  return cartTotal(items);
}`

type world struct {
	prog *bytecode.Program
	reg  *object.Registry
	ip   *interp.Interp
}

func newWorld(t *testing.T) *world {
	t.Helper()
	prog, err := hackc.CompileSources(
		map[string]string{"site.mh": siteSrc}, []string{"site.mh"}, hackc.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := object.NewRegistry(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{prog: prog, reg: reg}
	w.ip = interp.New(prog, reg, interp.Config{})
	return w
}

// collectProfile runs the workload under a collector with all
// functions in profiling translations, returning the snapshot.
func collectProfile(t *testing.T, w *world, j *JIT, reqs int) *prof.Profile {
	t.Helper()
	for _, fn := range w.prog.Funcs {
		if _, err := j.CompileProfiling(fn); err != nil {
			t.Fatal(err)
		}
	}
	col := prof.NewCollector(w.prog)
	rt := NewRuntime(j, nil)
	w.ip.SetTracer(interp.MultiTracer{col, rt})
	for i := 0; i < reqs; i++ {
		col.BeginRequest()
		rt.BeginRequest(false)
		if _, err := w.ip.CallByName("handler", value.Int(20)); err != nil {
			t.Fatal(err)
		}
	}
	w.ip.SetTracer(nil)
	return col.Snapshot(prof.Meta{Revision: 1})
}

func TestTierCostOrdering(t *testing.T) {
	w := newWorld(t)
	runCost := func(setup func(j *JIT, p *prof.Profile)) uint64 {
		j := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
		p := collectProfile(t, w, j, 5)
		// Reset to interpreter, then apply setup.
		for _, fn := range w.prog.Funcs {
			j.SetActive(fn.ID, nil)
		}
		setup(j, p)
		rt := NewRuntime(j, nil)
		w.ip.SetTracer(rt)
		rt.BeginRequest(false)
		if _, err := w.ip.CallByName("handler", value.Int(20)); err != nil {
			t.Fatal(err)
		}
		w.ip.SetTracer(nil)
		return rt.TakeCycles()
	}

	interpCost := runCost(func(j *JIT, p *prof.Profile) {})
	tier1Cost := runCost(func(j *JIT, p *prof.Profile) {
		for _, fn := range w.prog.Funcs {
			if _, err := j.CompileProfiling(fn); err != nil {
				t.Fatal(err)
			}
		}
	})
	tier2Cost := runCost(func(j *JIT, p *prof.Profile) {
		trans := map[string]*Translation{}
		for _, name := range p.HotFunctions() {
			fn, _ := w.prog.FuncByName(name)
			tr, err := j.CompileOptimized(fn, p)
			if err != nil {
				t.Fatal(err)
			}
			trans[name] = tr
		}
		if err := j.RelocateOptimized(trans, p.HotFunctions()); err != nil {
			t.Fatal(err)
		}
	})

	if !(interpCost > tier1Cost && tier1Cost > tier2Cost) {
		t.Fatalf("cost ordering broken: interp=%d tier1=%d tier2=%d",
			interpCost, tier1Cost, tier2Cost)
	}
	// The interpreter should be several times slower than optimized.
	if float64(interpCost) < 3*float64(tier2Cost) {
		t.Fatalf("optimized speedup too small: interp=%d tier2=%d", interpCost, tier2Cost)
	}
}

func TestOptimizedSpecializesAndInlines(t *testing.T) {
	w := newWorld(t)
	j := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	p := collectProfile(t, w, j, 10)

	fn, _ := w.prog.FuncByName("cartTotal")
	tr, err := j.CompileOptimized(fn, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.SpecTypes) == 0 {
		t.Fatal("no type specialization in cartTotal (t += ... is int/int)")
	}
	// itemTotal is small, call-free and monomorphic: must inline.
	if len(tr.Inlines) == 0 {
		t.Fatal("itemTotal not inlined into cartTotal")
	}
	for _, im := range tr.Inlines {
		callee := w.prog.Funcs[im.Callee]
		if callee.Name != "itemTotal" {
			t.Fatalf("inlined %s", callee.Name)
		}
		if len(im.BlockOf) != len(callee.Blocks()) {
			t.Fatal("inline map incomplete")
		}
	}
	// Guard exits exist and are cold after layout.
	guards := 0
	for i := range tr.CFG.Blocks {
		if tr.CFG.Blocks[i].Kind == vasm.KindGuardExit {
			guards++
		}
	}
	if guards == 0 {
		t.Fatal("no guard exits")
	}
}

func TestRuntimeChargesInlinedBody(t *testing.T) {
	w := newWorld(t)
	j := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	p := collectProfile(t, w, j, 10)

	trans := map[string]*Translation{}
	for _, name := range p.HotFunctions() {
		fn, _ := w.prog.FuncByName(name)
		tr, err := j.CompileOptimized(fn, p)
		if err != nil {
			t.Fatal(err)
		}
		trans[name] = tr
	}
	if err := j.RelocateOptimized(trans, nil); err != nil {
		t.Fatal(err)
	}

	// Instrument manually: counts arrays exist only when instrumented,
	// so recompile with instrumentation to observe charging.
	j2 := New(w.prog, func() Options {
		o := DefaultOptions()
		o.InstrumentOptimized = true
		return o
	}(), NewCodeCache(DefaultCacheConfig()))
	trans2 := map[string]*Translation{}
	for _, name := range p.HotFunctions() {
		fn, _ := w.prog.FuncByName(name)
		tr, err := j2.CompileOptimized(fn, p)
		if err != nil {
			t.Fatal(err)
		}
		trans2[name] = tr
	}
	if err := j2.RelocateOptimized(trans2, nil); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(j2, nil)
	w.ip.SetTracer(rt)
	rt.BeginRequest(false)
	if _, err := w.ip.CallByName("handler", value.Int(8)); err != nil {
		t.Fatal(err)
	}
	w.ip.SetTracer(nil)

	ct := trans2["cartTotal"]
	// Inlined itemTotal blocks inside cartTotal must have counts.
	var inlineHits uint64
	for _, im := range ct.Inlines {
		for _, vb := range im.BlockOf {
			inlineHits += ct.Counts[vb]
		}
	}
	if inlineHits == 0 {
		t.Fatal("inlined body never charged")
	}
	// itemTotal itself must NOT appear in the accurate call graph
	// (inlined calls don't enter).
	if _, ok := rt.callPairs[prof.CallPair{Caller: "cartTotal", Callee: "itemTotal"}]; ok {
		t.Fatal("inlined call leaked into the tier-2 call graph")
	}
	// handler -> buildCart and handler -> cartTotal do appear.
	if rt.callPairs[prof.CallPair{Caller: "handler", Callee: "cartTotal"}] == 0 {
		t.Fatalf("call pairs = %v", rt.callPairs)
	}
}

func TestHarvestVasmCountsAndLayoutAccuracy(t *testing.T) {
	w := newWorld(t)
	opts := DefaultOptions()
	opts.InstrumentOptimized = true
	j := New(w.prog, opts, NewCodeCache(DefaultCacheConfig()))
	p := collectProfile(t, w, j, 10)

	trans := map[string]*Translation{}
	for _, name := range p.HotFunctions() {
		fn, _ := w.prog.FuncByName(name)
		tr, err := j.CompileOptimized(fn, p)
		if err != nil {
			t.Fatal(err)
		}
		trans[name] = tr
	}
	if err := j.RelocateOptimized(trans, nil); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(j, nil)
	w.ip.SetTracer(rt)
	for i := 0; i < 20; i++ {
		rt.BeginRequest(false)
		if _, err := w.ip.CallByName("handler", value.Int(20)); err != nil {
			t.Fatal(err)
		}
	}
	w.ip.SetTracer(nil)
	rt.HarvestInto(p)

	ct := p.Funcs["cartTotal"]
	if len(ct.VasmCounts) == 0 {
		t.Fatal("vasm counts not harvested")
	}
	if len(p.CallPairs) == 0 {
		t.Fatal("call pairs not harvested")
	}

	// Consumer with V-A enabled: guard exits must be laid out cold
	// (measured count 0), whereas the bytecode-derived layout gives
	// them nonzero assumed weight.
	copts := DefaultOptions()
	copts.UseVasmCounters = true
	jc := New(w.prog, copts, NewCodeCache(DefaultCacheConfig()))
	fn, _ := w.prog.FuncByName("cartTotal")
	tr, err := jc.CompileOptimized(fn, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.CFG.Blocks {
		if tr.CFG.Blocks[i].Kind == vasm.KindGuardExit && tr.CFG.Blocks[i].Weight != 0 {
			t.Fatalf("guard exit has measured weight %d", tr.CFG.Blocks[i].Weight)
		}
	}
	// All guard exits in the cold section.
	hotSet := map[int]bool{}
	for i, b := range tr.Order {
		if i < tr.HotCount {
			hotSet[b] = true
		}
	}
	for i := range tr.CFG.Blocks {
		if tr.CFG.Blocks[i].Kind == vasm.KindGuardExit && hotSet[i] {
			t.Fatal("guard exit in hot section despite measured counters")
		}
	}
	// The V-A layout should produce a hot section no larger than the
	// bytecode-derived one (guards moved out).
	jb := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	trB, err := jb.CompileOptimized(fn, p2noVasm(p))
	if err != nil {
		t.Fatal(err)
	}
	if tr.HotSize > trB.HotSize {
		t.Fatalf("V-A hot size %d > bytecode-derived %d", tr.HotSize, trB.HotSize)
	}
}

// p2noVasm strips vasm counters (deep enough for the test).
func p2noVasm(p *prof.Profile) *prof.Profile {
	q := prof.NewProfile()
	p.MergeInto(q)
	q.Meta = p.Meta
	for _, fp := range q.Funcs {
		fp.VasmCounts = nil
	}
	return q
}

func TestGuardFailureCharged(t *testing.T) {
	src := `
fun addup(a, b) { return a + b; }
fun mono(n) { t = 0; for (i = 0; i < n; i += 1) { t = addup(t, i); } return t; }
fun poly() { return addup("x", "1"); }`
	prog, err := hackc.CompileSources(map[string]string{"m.mh": src}, []string{"m.mh"}, hackc.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = err
	reg, _ := object.NewRegistry(prog, nil)
	ip := interp.New(prog, reg, interp.Config{})

	j := New(prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	for _, fn := range prog.Funcs {
		if _, err := j.CompileProfiling(fn); err != nil {
			t.Fatal(err)
		}
	}
	col := prof.NewCollector(prog)
	ip.SetTracer(col)
	if _, err := ip.CallByName("mono", value.Int(100)); err != nil {
		t.Fatal(err)
	}
	p := col.Snapshot(prof.Meta{})

	fn, _ := prog.FuncByName("addup")
	tr, err := j.CompileOptimized(fn, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.SpecTypes) == 0 {
		t.Fatal("addup should specialize to int/int")
	}
	trans := map[string]*Translation{"addup": tr}
	if err := j.RelocateOptimized(trans, nil); err != nil {
		t.Fatal(err)
	}

	rt := NewRuntime(j, nil)
	ip.SetTracer(rt)
	rt.BeginRequest(false)
	// "x" . "1": concat via + would fault; poly calls addup("x","1")
	// → "x"+"1" faults... use numeric strings instead: "x" is not
	// numeric. The call faults at runtime, but the guard-failure
	// penalty must be charged before the fault.
	_, callErr := ip.CallByName("poly")
	ip.SetTracer(nil)
	if callErr == nil {
		t.Fatal("string+ should fault")
	}
	if rt.GuardFails() == 0 {
		t.Fatal("guard failure not recorded")
	}
}

func TestCodeCacheRegions(t *testing.T) {
	cc := NewCodeCache(CacheConfig{HotCap: 100, ColdCap: 100, ProfileCap: 50, LiveCap: 50, TempCap: 100})
	a1, err := cc.Alloc(RegionHot, 60)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cc.Alloc(RegionHot, 40)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1+60 {
		t.Fatal("bump allocation broken")
	}
	if _, err := cc.Alloc(RegionHot, 1); err == nil {
		t.Fatal("over-capacity alloc should fail")
	}
	var full *ErrRegionFull
	if _, err := cc.Alloc(RegionHot, 1); err != nil {
		var ok bool
		full, ok = err.(*ErrRegionFull)
		if !ok || full.Region != RegionHot {
			t.Fatalf("error = %v", err)
		}
	}
	if cc.TotalUsed() != 100 {
		t.Fatalf("total = %d", cc.TotalUsed())
	}
	// Temp region excluded from the Figure 1 total.
	if _, err := cc.Alloc(RegionTemp, 80); err != nil {
		t.Fatal(err)
	}
	if cc.TotalUsed() != 100 {
		t.Fatalf("temp counted in total: %d", cc.TotalUsed())
	}
	cc.ReleaseTemp()
	if cc.Used(RegionTemp) != 0 {
		t.Fatal("temp not released")
	}
	if !cc.Full(RegionHot, 1) || cc.Full(RegionCold, 100) {
		t.Fatal("Full() wrong")
	}
}

func TestRelocationMovesToFinalRegions(t *testing.T) {
	w := newWorld(t)
	j := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	p := collectProfile(t, w, j, 5)
	fn, _ := w.prog.FuncByName("cartTotal")
	tr, err := j.CompileOptimized(fn, p)
	if err != nil {
		t.Fatal(err)
	}
	tempBase := regionBase[RegionTemp]
	if tr.BlockAddr[0] < tempBase {
		t.Fatalf("pre-relocation address %#x not in temp region", tr.BlockAddr[0])
	}
	if err := j.RelocateOptimized(map[string]*Translation{"cartTotal": tr}, []string{"cartTotal"}); err != nil {
		t.Fatal(err)
	}
	hotBase := regionBase[RegionHot]
	entry := tr.BlockAddr[tr.MainMap[0]]
	if entry < hotBase || entry >= hotBase+regionStride {
		t.Fatalf("entry %#x not in hot region", entry)
	}
	if tr.ColdSize > 0 {
		coldBlock := tr.Order[len(tr.Order)-1]
		addr := tr.BlockAddr[coldBlock]
		if addr < regionBase[RegionCold] || addr >= regionBase[RegionCold]+regionStride {
			t.Fatalf("cold block %#x not in cold region", addr)
		}
	}
	if j.Active(fn.ID) != tr {
		t.Fatal("relocation must activate the translation")
	}
}

func TestFunctionOrderSeededVsTier1(t *testing.T) {
	w := newWorld(t)
	opts := DefaultOptions()
	opts.UseSeededCallGraph = true
	j := New(w.prog, opts, NewCodeCache(DefaultCacheConfig()))
	p := collectProfile(t, w, j, 10)
	p.CallPairs[prof.CallPair{Caller: "handler", Callee: "cartTotal"}] = 1000
	p.CallPairs[prof.CallPair{Caller: "handler", Callee: "buildCart"}] = 10

	names := p.HotFunctions()
	order := j.FunctionOrder(p, names)
	if len(order) != len(names) {
		t.Fatalf("order = %v", order)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["cartTotal"] != pos["handler"]+1 {
		t.Fatalf("seeded order should chain handler->cartTotal: %v", order)
	}

	// Tier-1 fallback still yields a permutation.
	j2 := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	order2 := j2.FunctionOrder(p, names)
	if len(order2) != len(names) {
		t.Fatalf("order2 = %v", order2)
	}
}

func TestCompileOptimizedRejectsStaleProfile(t *testing.T) {
	w := newWorld(t)
	j := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	p := collectProfile(t, w, j, 3)
	fn, _ := w.prog.FuncByName("handler")
	p.Funcs["handler"].Checksum ^= 1
	if _, err := j.CompileOptimized(fn, p); err == nil ||
		!strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale profile accepted: %v", err)
	}
	if _, err := j.CompileOptimized(fn, prof.NewProfile()); err == nil {
		t.Fatal("missing profile accepted")
	}
}

func TestMicroarchFeedthrough(t *testing.T) {
	w := newWorld(t)
	j := New(w.prog, DefaultOptions(), NewCodeCache(DefaultCacheConfig()))
	p := collectProfile(t, w, j, 5)
	trans := map[string]*Translation{}
	for _, name := range p.HotFunctions() {
		fn, _ := w.prog.FuncByName(name)
		tr, err := j.CompileOptimized(fn, p)
		if err != nil {
			t.Fatal(err)
		}
		trans[name] = tr
	}
	if err := j.RelocateOptimized(trans, nil); err != nil {
		t.Fatal(err)
	}
	mem := microarch.New(microarch.DefaultConfig())
	rt := NewRuntime(j, mem)
	w.ip.SetTracer(rt)
	rt.BeginRequest(true)
	if _, err := w.ip.CallByName("handler", value.Int(20)); err != nil {
		t.Fatal(err)
	}
	w.ip.SetTracer(nil)
	s := mem.Stats()
	if s.Fetches == 0 || s.Branches == 0 || s.DataAccs == 0 {
		t.Fatalf("microarch not fed: %+v", s)
	}
	// Unsampled request leaves stats unchanged.
	before := mem.Stats()
	rtOff := NewRuntime(j, mem)
	w.ip.SetTracer(rtOff)
	rtOff.BeginRequest(false)
	if _, err := w.ip.CallByName("handler", value.Int(20)); err != nil {
		t.Fatal(err)
	}
	w.ip.SetTracer(nil)
	if mem.Stats() != before {
		t.Fatal("unsampled request touched the hierarchy")
	}
}

func TestTierString(t *testing.T) {
	if TierOptimized.String() != "optimized" || TierNone.String() != "none" {
		t.Fatal("tier names")
	}
	if RegionHot.String() != "hot" || RegionTemp.String() != "temp" {
		t.Fatal("region names")
	}
}
