package jit

import "fmt"

// Region identifies a code-cache section, mirroring HHVM's split
// between hot optimized code, cold optimized code, profiling code and
// live (tracelet) code, plus the temporary buffers that hold optimized
// translations between compilation and relocation (Figure 1's A→B→C
// phases).
type Region uint8

// Code-cache regions.
const (
	RegionHot Region = iota
	RegionCold
	RegionProfile
	RegionLive
	RegionTemp
	numRegions
)

// String names the region.
func (r Region) String() string {
	switch r {
	case RegionHot:
		return "hot"
	case RegionCold:
		return "cold"
	case RegionProfile:
		return "profile"
	case RegionLive:
		return "live"
	case RegionTemp:
		return "temp"
	default:
		return fmt.Sprintf("region(%d)", uint8(r))
	}
}

// ErrRegionFull is wrapped by Alloc when a region's capacity is
// exhausted — the condition that stops live JITing at Figure 1's
// point D ("until the code cache fills up").
type ErrRegionFull struct {
	Region Region
}

func (e *ErrRegionFull) Error() string {
	return fmt.Sprintf("jit: code cache region %s full", e.Region)
}

// CacheConfig sizes the code cache regions in bytes.
type CacheConfig struct {
	HotCap, ColdCap, ProfileCap, LiveCap, TempCap int
}

// DefaultCacheConfig returns simulation-scale capacities (the real
// HHVM uses ~512 MB total; the simulated website is ~100× smaller).
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{
		HotCap:     8 << 20,
		ColdCap:    8 << 20,
		ProfileCap: 16 << 20,
		LiveCap:    4 << 20,
		TempCap:    16 << 20,
	}
}

// Region base addresses in the simulated address space. Regions are
// spaced 256 MB apart so cross-region distance is always large.
const regionStride = 0x1000_0000

var regionBase = [numRegions]uint64{
	RegionHot:     0x2000_0000,
	RegionCold:    0x2000_0000 + 1*regionStride,
	RegionProfile: 0x2000_0000 + 2*regionStride,
	RegionLive:    0x2000_0000 + 3*regionStride,
	RegionTemp:    0x2000_0000 + 4*regionStride,
}

// CodeCache is a set of bump-allocated regions.
type CodeCache struct {
	cap  [numRegions]int
	used [numRegions]int
}

// NewCodeCache builds a cache with the given capacities.
func NewCodeCache(cfg CacheConfig) *CodeCache {
	cc := &CodeCache{}
	cc.cap[RegionHot] = cfg.HotCap
	cc.cap[RegionCold] = cfg.ColdCap
	cc.cap[RegionProfile] = cfg.ProfileCap
	cc.cap[RegionLive] = cfg.LiveCap
	cc.cap[RegionTemp] = cfg.TempCap
	return cc
}

// Alloc reserves size bytes in region, returning the base address.
func (cc *CodeCache) Alloc(region Region, size int) (uint64, error) {
	if size < 0 {
		return 0, fmt.Errorf("jit: negative allocation")
	}
	if cc.used[region]+size > cc.cap[region] {
		return 0, &ErrRegionFull{Region: region}
	}
	base := regionBase[region] + uint64(cc.used[region])
	cc.used[region] += size
	return base, nil
}

// Used reports the bytes allocated in region.
func (cc *CodeCache) Used(region Region) int { return cc.used[region] }

// TotalUsed reports bytes allocated across all non-temporary regions —
// the quantity Figure 1 plots over time.
func (cc *CodeCache) TotalUsed() int {
	total := 0
	for r := Region(0); r < numRegions; r++ {
		if r == RegionTemp {
			continue
		}
		total += cc.used[r]
	}
	return total
}

// ReleaseTemp frees the temporary buffers after relocation.
func (cc *CodeCache) ReleaseTemp() { cc.used[RegionTemp] = 0 }

// Full reports whether region has less than size bytes free.
func (cc *CodeCache) Full(region Region, size int) bool {
	return cc.used[region]+size > cc.cap[region]
}
