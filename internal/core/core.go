// Package core is the high-level entry point of the Jump-Start
// reproduction: a small facade over the MiniHack VM (compile and run
// source code through the tiered JIT) and over the scenario plumbing
// that the examples, commands and benchmarks share (seed a profile
// package, boot consumers, measure steady state).
package core

import (
	"fmt"
	"io"

	"jumpstart/internal/hackc"
	"jumpstart/internal/interp"
	"jumpstart/internal/jumpstart"
	"jumpstart/internal/object"
	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/value"
	"jumpstart/internal/workload"
)

// VM is a ready-to-run MiniHack virtual machine for one compiled
// program (the quickstart-level API).
type VM struct {
	ip *interp.Interp
}

// NewVM compiles the given sources (file name → MiniHack code, in
// order) with the offline optimizer and returns a VM. out receives
// print() output; nil discards it.
func NewVM(sources map[string]string, order []string, out io.Writer) (*VM, error) {
	prog, err := hackc.CompileSources(sources, order, hackc.Options{Optimize: true})
	if err != nil {
		return nil, err
	}
	reg, err := object.NewRegistry(prog, nil)
	if err != nil {
		return nil, err
	}
	ip := interp.New(prog, reg, interp.Config{Out: out})
	return &VM{ip: ip}, nil
}

// Call invokes a free function by name.
func (vm *VM) Call(fn string, args ...value.Value) (value.Value, error) {
	return vm.ip.CallByName(fn, args...)
}

// Disasm returns the program's disassembly.
func (vm *VM) Disasm() string { return vm.ip.Program().Disasm() }

// Interp exposes the underlying interpreter for advanced use (tracer
// installation, registry access).
func (vm *VM) Interp() *interp.Interp { return vm.ip }

// Scenario bundles a generated website with a base server
// configuration, providing the seeder→consumer workflow in a few
// calls.
type Scenario struct {
	Site      *workload.Site
	ServerCfg server.Config
}

// NewScenario generates a site and pairs it with cfg.
func NewScenario(siteCfg workload.SiteConfig, serverCfg server.Config) (*Scenario, error) {
	site, err := workload.GenerateSite(siteCfg)
	if err != nil {
		return nil, err
	}
	return &Scenario{Site: site, ServerCfg: serverCfg}, nil
}

// SeedPackage runs a seeder server to completion and returns the
// collected profile package (Figure 3b).
func (sc *Scenario) SeedPackage() (*prof.Profile, error) {
	cfg := sc.ServerCfg
	cfg.Mode = server.ModeSeeder
	cfg.JITOpts.InstrumentOptimized = true
	s, err := server.New(sc.Site, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.WarmToServing(7200); err != nil {
		return nil, err
	}
	pkg, ok := s.SeederPackage()
	if !ok {
		return nil, fmt.Errorf("core: seeder produced no package")
	}
	return pkg, nil
}

// Variant selects the Jump-Start features for a server boot, mapping
// directly onto the paper's Figure 6 ablations.
type Variant struct {
	JumpStart       bool // consume a package at all
	VasmCounters    bool // Section V-A: seeded Vasm block counters
	SeededCallGraph bool // Section V-B: accurate tier-2 call graph
	PropertyOrder   bool // Section V-C: hotness-ordered object layout
}

// FullJumpStart enables everything (the paper's production setup).
func FullJumpStart() Variant {
	return Variant{JumpStart: true, VasmCounters: true, SeededCallGraph: true, PropertyOrder: true}
}

// ServerFor builds a server for the variant. pkg may be nil when
// JumpStart is false.
func (sc *Scenario) ServerFor(v Variant, pkg *prof.Profile) (*server.Server, error) {
	cfg := sc.ServerCfg
	if v.JumpStart {
		if pkg == nil {
			return nil, fmt.Errorf("core: variant requires a package")
		}
		cfg.Mode = server.ModeConsumer
		cfg.Package = pkg
		cfg.JITOpts.UseVasmCounters = v.VasmCounters
		cfg.JITOpts.UseSeededCallGraph = v.SeededCallGraph
		cfg.UsePropertyOrder = v.PropertyOrder
	} else {
		cfg.Mode = server.ModeNoJumpStart
		cfg.Package = nil
	}
	return server.New(sc.Site, cfg)
}

// WarmupRun boots a server for the variant and runs it for the given
// horizon, returning the tick series.
func (sc *Scenario) WarmupRun(v Variant, pkg *prof.Profile, horizon float64) ([]server.TickStats, error) {
	s, err := sc.ServerFor(v, pkg)
	if err != nil {
		return nil, err
	}
	return s.Run(horizon), nil
}

// SteadyState boots a server for the variant, warms it, and measures n
// steady-state requests.
func (sc *Scenario) SteadyState(v Variant, pkg *prof.Profile, n int) (server.SteadyStats, error) {
	s, err := sc.ServerFor(v, pkg)
	if err != nil {
		return server.SteadyStats{}, err
	}
	if err := s.WarmToServing(14400); err != nil {
		return server.SteadyStats{}, err
	}
	return s.MeasureSteady(n), nil
}

// Calibrate sizes the scenario's load to the site: it measures the
// fully-warm no-Jump-Start capacity, sets OfferedRPS to frac of it
// (the paper's servers run near "typical production load", which
// saturates them while warming but not when warm), and sizes
// ProfileWindow so the profiling phase spans roughly half of horizon —
// reproducing the long warmup the paper's Figure 2/4 curves show.
// It returns the measured warm capacity.
//
// Rationale for the load point: tier-1 profiling code runs at roughly
// half the optimized throughput (instrumented, unspecialized), so an
// offered load of ~0.85× warm capacity saturates the server during
// the whole interpret/profile period and releases it once optimized
// code is in place.
func (sc *Scenario) Calibrate(frac, horizon float64) (float64, error) {
	probeCfg := sc.ServerCfg
	probeCfg.Mode = server.ModeNoJumpStart
	probeCfg.ProfileWindow = 2000 // fast warm for the probe
	probe, err := server.New(sc.Site, probeCfg)
	if err != nil {
		return 0, err
	}
	if err := probe.WarmToServing(14400); err != nil {
		return 0, err
	}
	capacity := probe.MeasureSteady(800).CapacityRPS
	offered := frac * capacity
	sc.ServerCfg.OfferedRPS = offered
	// Completed rate while profiling ≈ tier-1 capacity ≈ 0.55×offered;
	// size the window so point A lands near half the horizon.
	sc.ServerCfg.ProfileWindow = int(0.55 * offered * 0.5 * horizon)
	if sc.ServerCfg.ProfileWindow < 1000 {
		sc.ServerCfg.ProfileWindow = 1000
	}
	sc.ServerCfg.SeederCollectWindow = sc.ServerCfg.ProfileWindow / 3
	// Functions below ~0.25% request share are "insufficiently
	// profiled": they stay on the live-JIT path after point C (both
	// for the no-Jump-Start server and for consumers), reproducing the
	// C→D tail at this site scale.
	sc.ServerCfg.OptimizeMinEntries = sc.ServerCfg.ProfileWindow / 400
	if sc.ServerCfg.OptimizeMinEntries < 20 {
		sc.ServerCfg.OptimizeMinEntries = 20
	}
	return capacity, nil
}

// PublishValidated seeds a package, validates it (Section VI-A1) and
// publishes it to the store, returning the result.
func (sc *Scenario) PublishValidated(store *jumpstart.Store, thresholds prof.Thresholds) (jumpstart.SeedResult, error) {
	v := &jumpstart.Validator{
		Site:           sc.Site,
		ConsumerConfig: sc.ServerCfg,
		Requests:       300,
		MaxFaultRate:   0.01,
		Thresholds:     thresholds,
	}
	return jumpstart.SeedAndPublish(sc.Site, sc.ServerCfg, v, store, 3)
}
