package core

import (
	"strings"
	"testing"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/value"
	"jumpstart/internal/workload"
)

func TestVMCompileAndRun(t *testing.T) {
	var out strings.Builder
	vm, err := NewVM(map[string]string{"m.mh": `
fun greet(name) { print("hello ", name); return strlen(name); }
`}, []string{"m.mh"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.Call("greet", value.Str("world"))
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 5 {
		t.Fatalf("greet = %v", v)
	}
	if out.String() != "hello world\n" {
		t.Fatalf("output = %q", out.String())
	}
	if !strings.Contains(vm.Disasm(), ".function greet") {
		t.Fatal("disasm missing function")
	}
	if vm.Interp() == nil {
		t.Fatal("interp accessor")
	}
}

func TestVMCompileError(t *testing.T) {
	if _, err := NewVM(map[string]string{"m.mh": `fun broken(`}, []string{"m.mh"}, nil); err == nil {
		t.Fatal("syntax error accepted")
	}
}

func scenarioForTest(t *testing.T) *Scenario {
	t.Helper()
	siteCfg := workload.DefaultSiteConfig()
	siteCfg.Units = 4
	siteCfg.HelpersPerUnit = 6
	siteCfg.EndpointsPerUnit = 3
	srvCfg := server.DefaultConfig()
	srvCfg.OfferedRPS = 120
	srvCfg.TickSeconds = 2
	srvCfg.ProfileWindow = 300
	srvCfg.SeederCollectWindow = 250
	srvCfg.InitCycles = 10e6
	srvCfg.WarmupRequests = 4
	srvCfg.MicroSampleEvery = 16
	sc, err := NewScenario(siteCfg, srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestScenarioSeedAndVariants(t *testing.T) {
	sc := scenarioForTest(t)
	pkg, err := sc.SeedPackage()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Funcs) == 0 || len(pkg.FuncOrder) == 0 {
		t.Fatal("incomplete package")
	}

	// Every variant must boot and serve.
	variants := []Variant{
		{},
		{JumpStart: true},
		FullJumpStart(),
	}
	for i, v := range variants {
		srv, err := sc.ServerFor(v, pkg)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if err := srv.WarmToServing(7200); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	// JumpStart variant without a package must fail loudly.
	if _, err := sc.ServerFor(Variant{JumpStart: true}, nil); err == nil {
		t.Fatal("package-less jump-start accepted")
	}
}

func TestScenarioWarmupAndSteady(t *testing.T) {
	sc := scenarioForTest(t)
	pkg, err := sc.SeedPackage()
	if err != nil {
		t.Fatal(err)
	}
	ticks, err := sc.WarmupRun(FullJumpStart(), pkg, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) == 0 {
		t.Fatal("no ticks")
	}
	st, err := sc.SteadyState(FullJumpStart(), pkg, 300)
	if err != nil {
		t.Fatal(err)
	}
	if st.CapacityRPS <= 0 || st.Faults > 0 {
		t.Fatalf("steady = %+v", st)
	}
}

func TestScenarioCalibrate(t *testing.T) {
	sc := scenarioForTest(t)
	capacity, err := sc.Calibrate(0.85, 240)
	if err != nil {
		t.Fatal(err)
	}
	if capacity <= 0 {
		t.Fatal("no capacity measured")
	}
	if got := sc.ServerCfg.OfferedRPS; got <= 0 || got >= capacity {
		t.Fatalf("offered %f vs capacity %f", got, capacity)
	}
	if sc.ServerCfg.ProfileWindow < 1000 {
		t.Fatalf("profile window = %d", sc.ServerCfg.ProfileWindow)
	}
	if sc.ServerCfg.SeederCollectWindow <= 0 {
		t.Fatal("collect window")
	}
}

func TestPublishValidated(t *testing.T) {
	sc := scenarioForTest(t)
	store := jumpstart.NewStore()
	res, err := sc.PublishValidated(store, prof.Thresholds{
		MinFuncs: 5, MinBlocks: 5, MinRequests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Published == 0 {
		t.Fatal("nothing published")
	}
	if store.Count(0, 0) != 1 {
		t.Fatal("store empty")
	}
}
