package hackc

import (
	"strings"
	"testing"
)

// TestGoldenDisasm pins the exact code the compiler emits for a small
// function, so accidental codegen changes are caught loudly. The
// golden text is intentionally small; structural tests elsewhere cover
// breadth.
func TestGoldenDisasm(t *testing.T) {
	p := compileOne(t, `fun clamp(x, lo, hi) {
  if (x < lo) { return lo; }
  if (x > hi) { return hi; }
  return x;
}`, Options{})
	f, _ := p.FuncByName("clamp")
	got := strings.TrimSpace(f.Disasm())
	want := strings.TrimSpace(`
.function clamp (params=3 locals=3 iters=0)
  b0: ; succs=[1 3]
       0  CGetL 0
       1  CGetL 1
       2  CmpLt
       3  JmpZ 7
  b1:
       4  CGetL 1
       5  Ret
  b2: ; succs=[3]
       6  Jmp 7
  b3: ; succs=[4 6]
       7  CGetL 0
       8  CGetL 2
       9  CmpGt
      10  JmpZ 14
  b4:
      11  CGetL 2
      12  Ret
  b5: ; succs=[6]
      13  Jmp 14
  b6:
      14  CGetL 0
      15  Ret`)
	if got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenDisasmOptimized pins the optimizer's output for the same
// function with constant inputs folded away.
func TestGoldenDisasmOptimized(t *testing.T) {
	p := compileOne(t, `fun six() { return 1 + 2 + 3; }`, Options{Optimize: true})
	f, _ := p.FuncByName("six")
	got := strings.TrimSpace(f.Disasm())
	want := strings.TrimSpace(`
.function six (params=0 locals=0 iters=0)
  b0:
       0  Int 6
       1  Ret`)
	if got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
