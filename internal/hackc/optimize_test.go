package hackc

import (
	"strings"
	"testing"

	"jumpstart/internal/bytecode"
)

func countOp(f *bytecode.Function, op bytecode.Op) int {
	n := 0
	for _, in := range f.Code {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestFoldConstantArithmetic(t *testing.T) {
	p := compileOne(t, `fun f() { return 2 + 3 * 4; }`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	// Whole expression folds to Int 14; only a push and a Ret remain.
	if len(f.Code) != 2 {
		t.Fatalf("code = %v", f.Code)
	}
	if f.Code[0].Op != bytecode.OpInt || f.Code[0].A != 14 {
		t.Fatalf("folded = %v", f.Code[0])
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFoldConstantComparisonAndConcat(t *testing.T) {
	p := compileOne(t, `fun f() { return "a" . "b" . 1; }`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	if len(f.Code) != 2 || f.Code[0].Op != bytecode.OpLit {
		t.Fatalf("code = %v", f.Code)
	}
	if got := f.Unit.Literal(f.Code[0].A).AsStr(); got != "ab1" {
		t.Fatalf("folded = %q", got)
	}

	p = compileOne(t, `fun g() { return 3 < 4; }`, Options{Optimize: true})
	g, _ := p.FuncByName("g")
	if g.Code[0].Op != bytecode.OpTrue {
		t.Fatalf("comparison not folded: %v", g.Code)
	}
}

func TestFoldUnary(t *testing.T) {
	p := compileOne(t, `fun f() { return -5 + !true; }`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	// -5 folds; !true folds to false; -5 + false folds to -5.
	if len(f.Code) != 2 || f.Code[0].Op != bytecode.OpInt || f.Code[0].A != -5 {
		t.Fatalf("code = %v", f.Code)
	}
}

func TestDivisionByZeroNotFolded(t *testing.T) {
	p := compileOne(t, `fun f() { return 1 / 0; }`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	if countOp(f, bytecode.OpDiv) != 1 {
		t.Fatalf("1/0 must stay for runtime error: %v", f.Code)
	}
}

func TestBranchFoldingKillsDeadArm(t *testing.T) {
	p := compileOne(t, `
fun f() {
  if (true) { return 1; } else { return 2; }
}`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	// The else arm (return 2) must be gone.
	for _, in := range f.Code {
		if in.Op == bytecode.OpInt && in.A == 2 {
			t.Fatalf("dead arm survived: %v", f.Code)
		}
	}
	if countOp(f, bytecode.OpJmpZ) != 0 {
		t.Fatalf("branch not folded: %v", f.Code)
	}
}

func TestDeadCodeAfterReturnRemoved(t *testing.T) {
	// The compiler emits an unconditional Jmp after the then-arm; with
	// a return inside, the Jmp is unreachable.
	p := compileOne(t, `fun f(x) { if (x) { return 1; } return 2; }`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	if countOp(f, bytecode.OpJmp) != 0 {
		t.Fatalf("unreachable jmp survived:\n%s", f.Disasm())
	}
	if err := p.VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
}

func TestJumpThreading(t *testing.T) {
	// while(true) with a break: break jumps to end; condition folds;
	// resulting Jmp chains must be threaded and verify.
	p := compileOne(t, `
fun f(n) {
  t = 0;
  while (true) {
    t += 1;
    if (t > n) { break; }
  }
  return t;
}`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	if err := p.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, f.Disasm())
	}
	// No jump should target a Jmp instruction.
	for _, in := range f.Code {
		if in.Op.IsJump() && f.Code[in.A].Op == bytecode.OpJmp {
			t.Fatalf("unthreaded jump chain:\n%s", f.Disasm())
		}
	}
}

func TestOptimizePreservesNopFreeCode(t *testing.T) {
	p := compileOne(t, `fun f(a, b) { return a + b; }`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	if countOp(f, bytecode.OpNop) != 0 {
		t.Fatalf("Nops survived: %v", f.Code)
	}
}

func TestOptimizeSmallerOrEqual(t *testing.T) {
	srcs := []string{
		`fun f() { return 1 + 2 + 3 + 4; }`,
		`fun f(x) { if (false) { return x; } return 0; }`,
		`fun f(x) { while (x > 0) { x -= 1; } return x; }`,
	}
	for _, src := range srcs {
		p1 := compileOne(t, src, Options{})
		p2 := compileOne(t, src, Options{Optimize: true})
		f1, _ := p1.FuncByName("f")
		f2, _ := p2.FuncByName("f")
		if len(f2.Code) > len(f1.Code) {
			t.Errorf("%q: optimize grew code %d -> %d", src, len(f1.Code), len(f2.Code))
		}
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	p := compileOne(t, `fun f(x) { if (1 < 2) { x += 3 * 3; } return x; }`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	before := append([]bytecode.Instr{}, f.Code...)
	OptimizeFunc(f)
	if len(before) != len(f.Code) {
		t.Fatalf("not idempotent: %d -> %d", len(before), len(f.Code))
	}
	for i := range before {
		if before[i] != f.Code[i] {
			t.Fatalf("instr %d changed: %v -> %v", i, before[i], f.Code[i])
		}
	}
}

func TestOptimizedDisasmIsReadable(t *testing.T) {
	p := compileOne(t, `fun f() { return 6 * 7; }`, Options{Optimize: true})
	f, _ := p.FuncByName("f")
	if !strings.Contains(f.Disasm(), "Int 42") {
		t.Fatalf("disasm:\n%s", f.Disasm())
	}
}
