package hackc

import (
	"strings"
	"testing"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/lang"
)

func compileOne(t *testing.T, src string, opts Options) *bytecode.Program {
	t.Helper()
	p, err := CompileSources(map[string]string{"main.mh": src}, []string{"main.mh"}, opts)
	if err != nil {
		t.Fatalf("CompileSources: %v", err)
	}
	return p
}

func TestCompileSimpleFunction(t *testing.T) {
	p := compileOne(t, `fun add(a, b) { return a + b; }`, Options{})
	f, ok := p.FuncByName("add")
	if !ok {
		t.Fatal("add missing")
	}
	if f.NumParams != 2 || f.NumLocals != 2 {
		t.Fatalf("params/locals = %d/%d", f.NumParams, f.NumLocals)
	}
	d := f.Disasm()
	for _, want := range []string{"CGetL 0", "CGetL 1", "Add", "Ret"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}

func TestCompileLocalsAndLoops(t *testing.T) {
	p := compileOne(t, `
fun sum(n) {
  total = 0;
  for (i = 0; i < n; i += 1) {
    if (i % 2 == 0) { continue; }
    total += i;
  }
  return total;
}`, Options{})
	f, _ := p.FuncByName("sum")
	if f.NumLocals != 3 { // n, total, i
		t.Fatalf("locals = %d", f.NumLocals)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileForeach(t *testing.T) {
	p := compileOne(t, `
fun f(a) {
  s = 0;
  foreach (a as k => v) { s += k + v; }
  foreach (a as v) { s += v; }
  return s;
}`, Options{})
	f, _ := p.FuncByName("f")
	if f.NumIters != 2 {
		t.Fatalf("iters = %d", f.NumIters)
	}
	d := f.Disasm()
	for _, want := range []string{"IterInit", "IterNext", "IterKey", "IterVal"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q", want)
		}
	}
}

func TestCompileClassesAndMethods(t *testing.T) {
	p := compileOne(t, `
class Animal {
  prop name = "beast";
  prop legs = 4;
  fun describe() { return this->name . " has " . this->legs . " legs"; }
}
class Dog extends Animal {
  prop breed;
  fun __construct(b) { this->breed = b; }
  fun describe() { return "dog " . this->breed; }
}
fun make() { return new Dog("lab"); }
`, Options{})
	dog, ok := p.ClassByName("Dog")
	if !ok {
		t.Fatal("Dog missing")
	}
	animal, _ := p.ClassByName("Animal")
	if dog.Parent != animal.ID {
		t.Fatalf("Dog parent = %d", dog.Parent)
	}
	fp := dog.FlatProps()
	if len(fp) != 3 || fp[0].Name != "name" || fp[2].Name != "breed" {
		t.Fatalf("flat props = %v", fp)
	}
	id, ok := dog.LookupMethod("describe")
	if !ok || p.Funcs[id].Name != "Dog::describe" {
		t.Fatal("override missing")
	}
	if _, ok := dog.LookupMethod(CtorName); !ok {
		t.Fatal("ctor missing")
	}
	// make()'s NewObjL was resolved to NewObj by the linker.
	mk, _ := p.FuncByName("make")
	found := false
	for _, in := range mk.Code {
		if in.Op == bytecode.OpNewObj && bytecode.ClassID(in.A) == dog.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("NewObj not resolved:\n%s", mk.Disasm())
	}
}

func TestCompileBuiltinCalls(t *testing.T) {
	p := compileOne(t, `fun f(a) { return len(a) + sqrt(4); }`, Options{})
	f, _ := p.FuncByName("f")
	nb := 0
	for _, in := range f.Code {
		if in.Op == bytecode.OpBuiltin {
			nb++
		}
	}
	if nb != 2 {
		t.Fatalf("builtin calls = %d", nb)
	}
}

func TestCompileShortCircuit(t *testing.T) {
	p := compileOne(t, `fun f(a, b) { return a && b || !a; }`, Options{})
	f, _ := p.FuncByName("f")
	d := f.Disasm()
	if !strings.Contains(d, "JmpZ") || !strings.Contains(d, "JmpNZ") {
		t.Fatalf("short-circuit not compiled via jumps:\n%s", d)
	}
	if err := p.VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
}

func TestCompileArrayLiterals(t *testing.T) {
	p := compileOne(t, `
fun f() {
  v = [1, 2, 3];
  d = ["a" => 1, "b" => 2];
  m = [1, "k" => 2, 3];
  return v[0] + d["a"] + m[0];
}`, Options{})
	f, _ := p.FuncByName("f")
	d := f.Disasm()
	if !strings.Contains(d, "NewVec 3") {
		t.Errorf("vec literal:\n%s", d)
	}
	if !strings.Contains(d, "NewDict 2") {
		t.Errorf("dict literal:\n%s", d)
	}
	if !strings.Contains(d, "IdxApp") {
		t.Errorf("mixed literal:\n%s", d)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`fun f() { return x; }`, "undefined variable"},
		{`fun f() { break; }`, "break outside loop"},
		{`fun f() { continue; }`, "continue outside loop"},
		{`fun f() { return this; }`, "'this' outside a method"},
		{`class C { fun m() {} fun m() {} }`, "duplicate method"},
		{`class C extends Nope { }`, "unknown class"},
		{`fun f() {} fun f() {}`, "duplicate function"},
	}
	for _, c := range cases {
		_, err := CompileSources(map[string]string{"m.mh": c.src}, []string{"m.mh"}, Options{})
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q missing %q", c.src, err, c.wantSub)
		}
	}
}

func TestCompileCrossUnitInheritance(t *testing.T) {
	srcs := map[string]string{
		"a.mh": `class Base { prop x = 1; fun get() { return this->x; } }`,
		"b.mh": `class Child extends Base { prop y = 2; } fun mk() { return new Child; }`,
	}
	p, err := CompileSources(srcs, []string{"a.mh", "b.mh"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	child, _ := p.ClassByName("Child")
	if len(child.FlatProps()) != 2 {
		t.Fatalf("flat props = %v", child.FlatProps())
	}
	if _, ok := child.LookupMethod("get"); !ok {
		t.Fatal("inherited method missing")
	}
}

func TestCompileAllPrograms(t *testing.T) {
	// A grab-bag exercising every statement/expression form; must
	// compile and verify with and without optimization.
	src := `
class P { prop a = 1; prop b = "s"; prop c = 2.5; prop d = true; prop e = null;
  fun sum(x) { return this->a + x; }
}
fun main(n) {
  o = new P;
  o->a = 5;
  o->a += 2;
  arr = [];
  arr[0] = 1;
  arr[0] *= 3;
  arr["k"] = o->sum(2);
  t = 0;
  i = 0;
  while (i < n) { t = t + arr[0]; i += 1; if (t > 100) { break; } }
  foreach (arr as k => v) { t += intval(v); }
  s = "x" . 1 . true;
  f = 1.5 / 0.5;
  bits = (3 & 1) | (4 ^ 2) | (1 << 3) | (16 >> 2);
  cmp = (1 == 1) && (1 != 2) && (1 === 1) && (1 !== "1") && (1 < 2) && (2 <= 2) && (3 > 2) && (3 >= 3);
  neg = -n;
  not = !false;
  return t + f + bits + neg;
}`
	for _, opt := range []bool{false, true} {
		p, err := CompileSources(map[string]string{"m.mh": src}, []string{"m.mh"}, Options{Optimize: opt})
		if err != nil {
			t.Fatalf("opt=%v: %v", opt, err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("opt=%v verify: %v", opt, err)
		}
	}
}

func TestCompileFileRejectsNonLiteralDefault(t *testing.T) {
	file, err := lang.Parse("m.mh", `class C { prop x = 5; }`)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the default to a non-literal to exercise literalValue's
	// error path (the parser already rejects it syntactically).
	file.Classes[0].Props[0].Default = &lang.Ident{Name: "y"}
	if _, err := CompileFile(file, Options{}); err == nil {
		t.Fatal("non-literal default should fail")
	}
}
