// Package hackc compiles MiniHack ASTs to MiniHack bytecode and applies
// the offline whole-program optimizations that HHVM's repo-authoritative
// deployment mode performs before the code ever reaches a server:
// constant folding, jump threading and dead-code elimination, plus
// link-time resolution of call targets (done by bytecode.NewProgram).
package hackc

import (
	"fmt"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/lang"
	"jumpstart/internal/value"
)

// CtorName is the method invoked by `new C(...)`.
const CtorName = "__construct"

// Options controls compilation.
type Options struct {
	// Optimize enables the offline bytecode optimizer (on for
	// production deployment, off for debug builds).
	Optimize bool
}

// CompileFile compiles one parsed file into a bytecode unit.
func CompileFile(f *lang.File, opts Options) (*bytecode.Unit, error) {
	u := &bytecode.Unit{Name: f.Name}
	// Classes first: methods reference class names during compilation
	// only via literals, so ordering is only about registration.
	type pendingMethod struct {
		class *bytecode.Class
		decl  *lang.FuncDecl
	}
	var methods []pendingMethod
	for _, cd := range f.Classes {
		c := &bytecode.Class{
			Name:    cd.Name,
			Parent:  bytecode.NoClass, // resolved by resolveParents
			Methods: make(map[string]*bytecode.Function),
			Unit:    u,
		}
		for _, pd := range cd.Props {
			lit := int32(-1)
			if pd.Default != nil {
				v, err := literalValue(f.Name, pd.Default)
				if err != nil {
					return nil, err
				}
				if !v.IsNull() {
					lit = u.AddLiteral(v)
				}
			}
			c.Props = append(c.Props, bytecode.PropDef{Name: pd.Name, DefaultLit: lit})
		}
		for _, m := range cd.Methods {
			methods = append(methods, pendingMethod{class: c, decl: m})
		}
		u.Classes = append(u.Classes, c)
	}
	for _, fd := range f.Funcs {
		fn, err := compileFunc(f.Name, u, fd, "")
		if err != nil {
			return nil, err
		}
		u.Funcs = append(u.Funcs, fn)
	}
	for _, pm := range methods {
		fn, err := compileFunc(f.Name, u, pm.decl, pm.class.Name)
		if err != nil {
			return nil, err
		}
		if _, dup := pm.class.Methods[pm.decl.Name]; dup {
			return nil, &lang.Error{File: f.Name, Pos: pm.decl.Pos,
				Msg: fmt.Sprintf("duplicate method %s::%s", pm.class.Name, pm.decl.Name)}
		}
		pm.class.Methods[pm.decl.Name] = fn
		u.Funcs = append(u.Funcs, fn)
	}
	if opts.Optimize {
		for _, fn := range u.Funcs {
			OptimizeFunc(fn)
		}
	}
	return u, nil
}

// CompileSources parses, compiles and links a set of named sources into
// a verified Program. Parent class names are resolved across files.
func CompileSources(srcs map[string]string, names []string, opts Options) (*bytecode.Program, error) {
	var units []*bytecode.Unit
	parents := map[string]string{} // class -> parent name
	for _, name := range names {
		file, err := lang.Parse(name, srcs[name])
		if err != nil {
			return nil, err
		}
		for _, cd := range file.Classes {
			if cd.Parent != "" {
				parents[cd.Name] = cd.Parent
			}
		}
		u, err := CompileFile(file, opts)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if err := resolveParents(units, parents); err != nil {
		return nil, err
	}
	prog, err := bytecode.NewProgram(units...)
	if err != nil {
		return nil, err
	}
	if err := prog.Verify(); err != nil {
		return nil, err
	}
	return prog, nil
}

// resolveParents patches Class.Parent ids. Class ids are assigned by
// bytecode.NewProgram in unit order then declaration order, so we
// precompute the same numbering here.
func resolveParents(units []*bytecode.Unit, parents map[string]string) error {
	idByName := map[string]bytecode.ClassID{}
	next := bytecode.ClassID(0)
	for _, u := range units {
		for _, c := range u.Classes {
			if _, dup := idByName[c.Name]; dup {
				return fmt.Errorf("hackc: duplicate class %q", c.Name)
			}
			idByName[c.Name] = next
			next++
		}
	}
	for _, u := range units {
		for _, c := range u.Classes {
			pname, ok := parents[c.Name]
			if !ok {
				continue
			}
			pid, ok := idByName[pname]
			if !ok {
				return fmt.Errorf("hackc: class %q extends unknown class %q", c.Name, pname)
			}
			c.Parent = pid
		}
	}
	return nil
}

func literalValue(file string, e lang.Expr) (value.Value, error) {
	switch l := e.(type) {
	case *lang.IntLit:
		return value.Int(l.Val), nil
	case *lang.FloatLit:
		return value.Float(l.Val), nil
	case *lang.StrLit:
		return value.Str(l.Val), nil
	case *lang.BoolLit:
		return value.Bool(l.Val), nil
	case *lang.NullLit:
		return value.Null, nil
	default:
		return value.Null, &lang.Error{File: file, Pos: e.StartPos(),
			Msg: "property default must be a literal"}
	}
}

// fnCompiler holds per-function compilation state.
type fnCompiler struct {
	file      string
	b         *bytecode.FuncBuilder
	className string // "" for free functions
	loops     []loopCtx
}

type loopCtx struct {
	breakL, contL bytecode.Label
}

func compileFunc(file string, u *bytecode.Unit, fd *lang.FuncDecl, className string) (*bytecode.Function, error) {
	qname := fd.Name
	if className != "" {
		qname = className + "::" + fd.Name
	}
	c := &fnCompiler{
		file:      file,
		b:         bytecode.NewFuncBuilder(u, qname, fd.Params),
		className: className,
	}
	// Pre-declare every local assigned anywhere in the body so that
	// loop-carried variables resolve; reads of never-assigned names are
	// compile errors (stricter than PHP's notice, kinder to tests).
	declareAssigned(c.b, fd.Body)
	for _, s := range fd.Body {
		if err := c.stmt(s); err != nil {
			return nil, err
		}
	}
	return c.b.Finish()
}

// declareAssigned walks statements declaring assignment targets and
// foreach variables in source order.
func declareAssigned(b *bytecode.FuncBuilder, stmts []lang.Stmt) {
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch st := s.(type) {
		case *lang.AssignStmt:
			if id, ok := st.LHS.(*lang.Ident); ok {
				b.DeclareLocal(id.Name)
			}
		case *lang.IfStmt:
			for _, x := range st.Then {
				walk(x)
			}
			for _, x := range st.Else {
				walk(x)
			}
		case *lang.WhileStmt:
			for _, x := range st.Body {
				walk(x)
			}
		case *lang.ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			if st.Step != nil {
				walk(st.Step)
			}
			for _, x := range st.Body {
				walk(x)
			}
		case *lang.ForeachStmt:
			if st.Key != "" {
				b.DeclareLocal(st.Key)
			}
			b.DeclareLocal(st.Val)
			for _, x := range st.Body {
				walk(x)
			}
		}
	}
	for _, s := range stmts {
		walk(s)
	}
}

func (c *fnCompiler) errf(pos lang.Pos, format string, args ...interface{}) error {
	return &lang.Error{File: c.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *fnCompiler) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.ExprStmt:
		if err := c.expr(st.X); err != nil {
			return err
		}
		c.b.Emit(bytecode.OpPopC, 0, 0)
		return nil

	case *lang.AssignStmt:
		return c.assign(st)

	case *lang.IfStmt:
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		elseL := c.b.NewLabel()
		endL := c.b.NewLabel()
		c.b.Jump(bytecode.OpJmpZ, elseL)
		for _, x := range st.Then {
			if err := c.stmt(x); err != nil {
				return err
			}
		}
		c.b.Jump(bytecode.OpJmp, endL)
		c.b.Bind(elseL)
		for _, x := range st.Else {
			if err := c.stmt(x); err != nil {
				return err
			}
		}
		c.b.Bind(endL)
		return nil

	case *lang.WhileStmt:
		condL := c.b.NewLabel()
		endL := c.b.NewLabel()
		c.b.Bind(condL)
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		c.b.Jump(bytecode.OpJmpZ, endL)
		c.loops = append(c.loops, loopCtx{breakL: endL, contL: condL})
		for _, x := range st.Body {
			if err := c.stmt(x); err != nil {
				return err
			}
		}
		c.loops = c.loops[:len(c.loops)-1]
		c.b.Jump(bytecode.OpJmp, condL)
		c.b.Bind(endL)
		return nil

	case *lang.ForStmt:
		if st.Init != nil {
			if err := c.stmt(st.Init); err != nil {
				return err
			}
		}
		condL := c.b.NewLabel()
		stepL := c.b.NewLabel()
		endL := c.b.NewLabel()
		c.b.Bind(condL)
		if st.Cond != nil {
			if err := c.expr(st.Cond); err != nil {
				return err
			}
			c.b.Jump(bytecode.OpJmpZ, endL)
		}
		c.loops = append(c.loops, loopCtx{breakL: endL, contL: stepL})
		for _, x := range st.Body {
			if err := c.stmt(x); err != nil {
				return err
			}
		}
		c.loops = c.loops[:len(c.loops)-1]
		c.b.Bind(stepL)
		if st.Step != nil {
			if err := c.stmt(st.Step); err != nil {
				return err
			}
		}
		c.b.Jump(bytecode.OpJmp, condL)
		c.b.Bind(endL)
		return nil

	case *lang.ForeachStmt:
		if err := c.expr(st.Seq); err != nil {
			return err
		}
		iter := c.b.NewIter()
		bodyL := c.b.NewLabel()
		contL := c.b.NewLabel()
		endL := c.b.NewLabel()
		c.b.EmitIter(bytecode.OpIterInit, iter, endL)
		c.b.Bind(bodyL)
		if st.Key != "" {
			slot, _ := c.b.LookupLocal(st.Key)
			c.b.Emit(bytecode.OpIterKey, int32(iter), 0)
			c.b.Emit(bytecode.OpSetL, int32(slot), 0)
			c.b.Emit(bytecode.OpPopC, 0, 0)
		}
		vslot, _ := c.b.LookupLocal(st.Val)
		c.b.Emit(bytecode.OpIterVal, int32(iter), 0)
		c.b.Emit(bytecode.OpSetL, int32(vslot), 0)
		c.b.Emit(bytecode.OpPopC, 0, 0)
		c.loops = append(c.loops, loopCtx{breakL: endL, contL: contL})
		for _, x := range st.Body {
			if err := c.stmt(x); err != nil {
				return err
			}
		}
		c.loops = c.loops[:len(c.loops)-1]
		c.b.Bind(contL)
		c.b.EmitIter(bytecode.OpIterNext, iter, bodyL)
		c.b.Bind(endL)
		return nil

	case *lang.ReturnStmt:
		if st.Value != nil {
			if err := c.expr(st.Value); err != nil {
				return err
			}
		} else {
			c.b.Emit(bytecode.OpNull, 0, 0)
		}
		c.b.Emit(bytecode.OpRet, 0, 0)
		return nil

	case *lang.BreakStmt:
		if len(c.loops) == 0 {
			return c.errf(st.Pos, "break outside loop")
		}
		c.b.Jump(bytecode.OpJmp, c.loops[len(c.loops)-1].breakL)
		return nil

	case *lang.ContinueStmt:
		if len(c.loops) == 0 {
			return c.errf(st.Pos, "continue outside loop")
		}
		c.b.Jump(bytecode.OpJmp, c.loops[len(c.loops)-1].contL)
		return nil

	default:
		return fmt.Errorf("hackc: unknown statement %T", s)
	}
}

func (c *fnCompiler) assign(st *lang.AssignStmt) error {
	switch lhs := st.LHS.(type) {
	case *lang.Ident:
		slot, ok := c.b.LookupLocal(lhs.Name)
		if !ok {
			return c.errf(lhs.Pos, "undefined variable %q", lhs.Name)
		}
		if st.Op != "" {
			c.b.Emit(bytecode.OpCGetL, int32(slot), 0)
			if err := c.expr(st.RHS); err != nil {
				return err
			}
			c.emitBinOp(st.Op)
		} else {
			if err := c.expr(st.RHS); err != nil {
				return err
			}
		}
		c.b.Emit(bytecode.OpSetL, int32(slot), 0)
		c.b.Emit(bytecode.OpPopC, 0, 0)
		return nil

	case *lang.Index:
		baseT := c.b.TempLocal()
		keyT := c.b.TempLocal()
		if err := c.expr(lhs.Base); err != nil {
			return err
		}
		c.b.Emit(bytecode.OpSetL, int32(baseT), 0)
		c.b.Emit(bytecode.OpPopC, 0, 0)
		if err := c.expr(lhs.Key); err != nil {
			return err
		}
		c.b.Emit(bytecode.OpSetL, int32(keyT), 0)
		c.b.Emit(bytecode.OpPopC, 0, 0)
		c.b.Emit(bytecode.OpCGetL, int32(baseT), 0)
		c.b.Emit(bytecode.OpCGetL, int32(keyT), 0)
		if st.Op != "" {
			c.b.Emit(bytecode.OpCGetL, int32(baseT), 0)
			c.b.Emit(bytecode.OpCGetL, int32(keyT), 0)
			c.b.Emit(bytecode.OpIdxGet, 0, 0)
			if err := c.expr(st.RHS); err != nil {
				return err
			}
			c.emitBinOp(st.Op)
		} else {
			if err := c.expr(st.RHS); err != nil {
				return err
			}
		}
		c.b.Emit(bytecode.OpIdxSet, 0, 0)
		c.b.Emit(bytecode.OpPopC, 0, 0)
		return nil

	case *lang.Prop:
		nameIdx := c.b.LitIdx(value.Str(lhs.Name))
		baseT := c.b.TempLocal()
		if err := c.expr(lhs.Base); err != nil {
			return err
		}
		c.b.Emit(bytecode.OpSetL, int32(baseT), 0)
		c.b.Emit(bytecode.OpPopC, 0, 0)
		c.b.Emit(bytecode.OpCGetL, int32(baseT), 0)
		if st.Op != "" {
			c.b.Emit(bytecode.OpCGetL, int32(baseT), 0)
			c.b.Emit(bytecode.OpPropGet, nameIdx, 0)
			if err := c.expr(st.RHS); err != nil {
				return err
			}
			c.emitBinOp(st.Op)
		} else {
			if err := c.expr(st.RHS); err != nil {
				return err
			}
		}
		c.b.Emit(bytecode.OpPropSet, nameIdx, 0)
		c.b.Emit(bytecode.OpPopC, 0, 0)
		return nil

	default:
		return c.errf(st.Pos, "invalid assignment target %T", st.LHS)
	}
}

var binOps = map[string]bytecode.Op{
	"+": bytecode.OpAdd, "-": bytecode.OpSub, "*": bytecode.OpMul,
	"/": bytecode.OpDiv, "%": bytecode.OpMod, ".": bytecode.OpConcat,
	"==": bytecode.OpCmpEq, "!=": bytecode.OpCmpNeq,
	"===": bytecode.OpCmpSame, "!==": bytecode.OpCmpNSame,
	"<": bytecode.OpCmpLt, "<=": bytecode.OpCmpLte,
	">": bytecode.OpCmpGt, ">=": bytecode.OpCmpGte,
	"&": bytecode.OpBitAnd, "|": bytecode.OpBitOr, "^": bytecode.OpBitXor,
	"<<": bytecode.OpShl, ">>": bytecode.OpShr,
}

func (c *fnCompiler) emitBinOp(op string) {
	c.b.Emit(binOps[op], 0, 0)
}

func (c *fnCompiler) expr(e lang.Expr) error {
	switch x := e.(type) {
	case *lang.IntLit:
		c.b.EmitLit(value.Int(x.Val))
	case *lang.FloatLit:
		c.b.EmitLit(value.Float(x.Val))
	case *lang.StrLit:
		c.b.EmitLit(value.Str(x.Val))
	case *lang.BoolLit:
		c.b.EmitLit(value.Bool(x.Val))
	case *lang.NullLit:
		c.b.Emit(bytecode.OpNull, 0, 0)
	case *lang.Ident:
		slot, ok := c.b.LookupLocal(x.Name)
		if !ok {
			return c.errf(x.Pos, "undefined variable %q", x.Name)
		}
		c.b.Emit(bytecode.OpCGetL, int32(slot), 0)
	case *lang.ThisExpr:
		if c.className == "" {
			return c.errf(x.Pos, "'this' outside a method")
		}
		c.b.Emit(bytecode.OpThis, 0, 0)
	case *lang.Unary:
		if err := c.expr(x.X); err != nil {
			return err
		}
		if x.Op == "-" {
			c.b.Emit(bytecode.OpNeg, 0, 0)
		} else {
			c.b.Emit(bytecode.OpNot, 0, 0)
		}
	case *lang.Binary:
		return c.binary(x)
	case *lang.Call:
		if bid, ok := bytecode.BuiltinByName(x.Name); ok {
			for _, a := range x.Args {
				if err := c.expr(a); err != nil {
					return err
				}
			}
			c.b.Emit(bytecode.OpBuiltin, int32(bid), int32(len(x.Args)))
			return nil
		}
		for _, a := range x.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		nameIdx := c.b.LitIdx(value.Str(x.Name))
		c.b.Emit(bytecode.OpFCall, nameIdx, int32(len(x.Args)))
	case *lang.MethodCall:
		if err := c.expr(x.Recv); err != nil {
			return err
		}
		for _, a := range x.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		nameIdx := c.b.LitIdx(value.Str(x.Name))
		c.b.Emit(bytecode.OpFCallM, nameIdx, int32(len(x.Args)))
	case *lang.New:
		for _, a := range x.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		nameIdx := c.b.LitIdx(value.Str(x.Class))
		c.b.Emit(bytecode.OpNewObjL, nameIdx, int32(len(x.Args)))
	case *lang.Index:
		if err := c.expr(x.Base); err != nil {
			return err
		}
		if err := c.expr(x.Key); err != nil {
			return err
		}
		c.b.Emit(bytecode.OpIdxGet, 0, 0)
	case *lang.Prop:
		if err := c.expr(x.Base); err != nil {
			return err
		}
		nameIdx := c.b.LitIdx(value.Str(x.Name))
		c.b.Emit(bytecode.OpPropGet, nameIdx, 0)
	case *lang.ArrayLit:
		return c.arrayLit(x)
	default:
		return fmt.Errorf("hackc: unknown expression %T", e)
	}
	return nil
}

func (c *fnCompiler) binary(x *lang.Binary) error {
	switch x.Op {
	case "&&":
		falseL := c.b.NewLabel()
		endL := c.b.NewLabel()
		if err := c.expr(x.L); err != nil {
			return err
		}
		c.b.Jump(bytecode.OpJmpZ, falseL)
		if err := c.expr(x.R); err != nil {
			return err
		}
		c.b.Jump(bytecode.OpJmpZ, falseL)
		c.b.Emit(bytecode.OpTrue, 0, 0)
		c.b.Jump(bytecode.OpJmp, endL)
		c.b.Bind(falseL)
		c.b.Emit(bytecode.OpFalse, 0, 0)
		c.b.Bind(endL)
		return nil
	case "||":
		trueL := c.b.NewLabel()
		endL := c.b.NewLabel()
		if err := c.expr(x.L); err != nil {
			return err
		}
		c.b.Jump(bytecode.OpJmpNZ, trueL)
		if err := c.expr(x.R); err != nil {
			return err
		}
		c.b.Jump(bytecode.OpJmpNZ, trueL)
		c.b.Emit(bytecode.OpFalse, 0, 0)
		c.b.Jump(bytecode.OpJmp, endL)
		c.b.Bind(trueL)
		c.b.Emit(bytecode.OpTrue, 0, 0)
		c.b.Bind(endL)
		return nil
	default:
		if err := c.expr(x.L); err != nil {
			return err
		}
		if err := c.expr(x.R); err != nil {
			return err
		}
		op, ok := binOps[x.Op]
		if !ok {
			return c.errf(x.Pos, "unknown operator %q", x.Op)
		}
		c.b.Emit(op, 0, 0)
		return nil
	}
}

func (c *fnCompiler) arrayLit(x *lang.ArrayLit) error {
	allUnkeyed := true
	allKeyed := true
	for _, e := range x.Entries {
		if e.Key == nil {
			allKeyed = false
		} else {
			allUnkeyed = false
		}
	}
	switch {
	case len(x.Entries) == 0:
		c.b.Emit(bytecode.OpNewVec, 0, 0)
	case allUnkeyed:
		for _, e := range x.Entries {
			if err := c.expr(e.Val); err != nil {
				return err
			}
		}
		c.b.Emit(bytecode.OpNewVec, int32(len(x.Entries)), 0)
	case allKeyed:
		for _, e := range x.Entries {
			if err := c.expr(e.Key); err != nil {
				return err
			}
			if err := c.expr(e.Val); err != nil {
				return err
			}
		}
		c.b.Emit(bytecode.OpNewDict, int32(len(x.Entries)), 0)
	default:
		// Mixed: build incrementally.
		c.b.Emit(bytecode.OpNewVec, 0, 0)
		for _, e := range x.Entries {
			c.b.Emit(bytecode.OpDup, 0, 0)
			if e.Key != nil {
				if err := c.expr(e.Key); err != nil {
					return err
				}
				if err := c.expr(e.Val); err != nil {
					return err
				}
				c.b.Emit(bytecode.OpIdxSet, 0, 0)
			} else {
				if err := c.expr(e.Val); err != nil {
					return err
				}
				c.b.Emit(bytecode.OpIdxApp, 0, 0)
			}
			c.b.Emit(bytecode.OpPopC, 0, 0)
		}
	}
	return nil
}
