package hackc

import (
	"jumpstart/internal/bytecode"
	"jumpstart/internal/value"
)

// OptimizeFunc applies the offline bytecode optimizer to one function:
// constant folding, branch folding, jump threading, and dead-code /
// Nop elimination with jump retargeting. These model the aggressive
// offline optimizations HHVM performs on the bytecode repo before
// deployment (Section II-A of the paper); they run once at compile
// time, never on the serving path.
//
// Passes iterate to a fixpoint (bounded) because folding exposes new
// opportunities: folding a comparison can make a branch foldable,
// which makes code unreachable.
func OptimizeFunc(fn *bytecode.Function) {
	for i := 0; i < 10; i++ {
		changed := false
		changed = foldConstants(fn) || changed
		changed = foldBranches(fn) || changed
		changed = threadJumps(fn) || changed
		changed = eliminateDead(fn) || changed
		if !changed {
			return
		}
	}
}

// constValue reports whether the instruction pushes a statically known
// value, and returns it.
func constValue(fn *bytecode.Function, in bytecode.Instr) (value.Value, bool) {
	switch in.Op {
	case bytecode.OpInt:
		return value.Int(int64(in.A)), true
	case bytecode.OpTrue:
		return value.Bool(true), true
	case bytecode.OpFalse:
		return value.Bool(false), true
	case bytecode.OpNull:
		return value.Null, true
	case bytecode.OpLit:
		v := fn.Unit.Literal(in.A)
		// Arrays are reference values; never fold them.
		if v.Kind() == value.KindArr || v.Kind() == value.KindObj {
			return value.Null, false
		}
		return v, true
	default:
		return value.Null, false
	}
}

// emitConst builds the instruction that pushes v.
func emitConst(fn *bytecode.Function, v value.Value) bytecode.Instr {
	switch v.Kind() {
	case value.KindNull:
		return bytecode.Instr{Op: bytecode.OpNull}
	case value.KindBool:
		if v.AsBool() {
			return bytecode.Instr{Op: bytecode.OpTrue}
		}
		return bytecode.Instr{Op: bytecode.OpFalse}
	case value.KindInt:
		if i := v.AsInt(); i >= -1<<31 && i < 1<<31 {
			return bytecode.Instr{Op: bytecode.OpInt, A: int32(i)}
		}
	}
	return bytecode.Instr{Op: bytecode.OpLit, A: fn.Unit.AddLiteral(v)}
}

// leaders returns the set of instruction indices that are jump targets;
// folding across them would change behaviour for other predecessors.
func leaders(code []bytecode.Instr) map[int]bool {
	l := map[int]bool{}
	for _, in := range code {
		if in.Op.IsJump() {
			l[int(in.A)] = true
		}
		if in.Op == bytecode.OpIterInit || in.Op == bytecode.OpIterNext {
			l[int(in.B)] = true
		}
	}
	return l
}

// foldConstants rewrites const-const-binop and const-unop windows into
// a single constant push (padding with Nops to preserve indices).
func foldConstants(fn *bytecode.Function) bool {
	code := fn.Code
	lead := leaders(code)
	changed := false

	evalBin := func(op bytecode.Op, a, b value.Value) (value.Value, bool) {
		var v value.Value
		var err error
		switch op {
		case bytecode.OpAdd:
			v, err = value.Add(a, b)
		case bytecode.OpSub:
			v, err = value.Sub(a, b)
		case bytecode.OpMul:
			v, err = value.Mul(a, b)
		case bytecode.OpDiv:
			v, err = value.Div(a, b)
		case bytecode.OpMod:
			v, err = value.Mod(a, b)
		case bytecode.OpConcat:
			v = value.Concat(a, b)
		case bytecode.OpCmpEq:
			v = value.Bool(value.Equals(a, b))
		case bytecode.OpCmpNeq:
			v = value.Bool(!value.Equals(a, b))
		case bytecode.OpCmpSame:
			v = value.Bool(value.Identical(a, b))
		case bytecode.OpCmpNSame:
			v = value.Bool(!value.Identical(a, b))
		case bytecode.OpCmpLt:
			v = value.Bool(value.Compare(a, b) < 0)
		case bytecode.OpCmpLte:
			v = value.Bool(value.Compare(a, b) <= 0)
		case bytecode.OpCmpGt:
			v = value.Bool(value.Compare(a, b) > 0)
		case bytecode.OpCmpGte:
			v = value.Bool(value.Compare(a, b) >= 0)
		case bytecode.OpBitAnd:
			v = value.BitAnd(a, b)
		case bytecode.OpBitOr:
			v = value.BitOr(a, b)
		case bytecode.OpBitXor:
			v = value.BitXor(a, b)
		case bytecode.OpShl:
			v = value.Shl(a, b)
		case bytecode.OpShr:
			v = value.Shr(a, b)
		default:
			return value.Null, false
		}
		if err != nil {
			return value.Null, false // leave runtime errors to runtime
		}
		return v, true
	}

	for pc := 0; pc+1 < len(code); pc++ {
		a, okA := constValue(fn, code[pc])
		if !okA {
			continue
		}
		// Unary window: [const][Neg|Not].
		if !lead[pc+1] {
			switch code[pc+1].Op {
			case bytecode.OpNeg:
				if v, err := value.Neg(a); err == nil {
					code[pc] = bytecode.Instr{Op: bytecode.OpNop}
					code[pc+1] = emitConst(fn, v)
					changed = true
					continue
				}
			case bytecode.OpNot:
				code[pc] = bytecode.Instr{Op: bytecode.OpNop}
				code[pc+1] = emitConst(fn, value.Bool(!a.Truthy()))
				changed = true
				continue
			}
		}
		if pc+2 >= len(code) {
			continue
		}
		b, okB := constValue(fn, code[pc+1])
		if !okB || lead[pc+1] || lead[pc+2] {
			continue
		}
		if v, ok := evalBin(code[pc+2].Op, a, b); ok {
			code[pc] = bytecode.Instr{Op: bytecode.OpNop}
			code[pc+1] = bytecode.Instr{Op: bytecode.OpNop}
			code[pc+2] = emitConst(fn, v)
			changed = true
		}
	}
	return changed
}

// foldBranches resolves conditional branches whose condition is a
// constant push immediately before them.
func foldBranches(fn *bytecode.Function) bool {
	code := fn.Code
	lead := leaders(code)
	changed := false
	for pc := 0; pc+1 < len(code); pc++ {
		v, ok := constValue(fn, code[pc])
		if !ok || lead[pc+1] {
			continue
		}
		br := code[pc+1]
		if br.Op != bytecode.OpJmpZ && br.Op != bytecode.OpJmpNZ {
			continue
		}
		taken := (br.Op == bytecode.OpJmpZ) == !v.Truthy()
		code[pc] = bytecode.Instr{Op: bytecode.OpNop}
		if taken {
			code[pc+1] = bytecode.Instr{Op: bytecode.OpJmp, A: br.A}
		} else {
			code[pc+1] = bytecode.Instr{Op: bytecode.OpNop}
		}
		changed = true
	}
	return changed
}

// threadJumps retargets jumps whose destination is an unconditional
// jump (or a Nop slide ending in one).
func threadJumps(fn *bytecode.Function) bool {
	code := fn.Code
	changed := false
	// resolve follows Nops and Jmp chains from t, with cycle guard.
	resolve := func(t int32) int32 {
		seen := map[int32]bool{}
		for {
			if seen[t] || int(t) >= len(code) {
				return t
			}
			seen[t] = true
			in := code[t]
			switch in.Op {
			case bytecode.OpNop:
				t++
			case bytecode.OpJmp:
				t = in.A
			default:
				return t
			}
		}
	}
	for pc := range code {
		in := &code[pc]
		if in.Op.IsJump() {
			if nt := resolve(in.A); nt != in.A {
				in.A = nt
				changed = true
			}
		}
		if in.Op == bytecode.OpIterInit || in.Op == bytecode.OpIterNext {
			if nt := resolve(in.B); nt != in.B {
				in.B = nt
				changed = true
			}
		}
	}
	return changed
}

// eliminateDead removes unreachable instructions and Nops, compacting
// the code and retargeting jumps. Returns whether anything changed.
func eliminateDead(fn *bytecode.Function) bool {
	code := fn.Code
	n := len(code)
	reachable := make([]bool, n)
	var stack []int
	push := func(pc int) {
		if pc >= 0 && pc < n && !reachable[pc] {
			reachable[pc] = true
			stack = append(stack, pc)
		}
	}
	push(0)
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := code[pc]
		switch {
		case in.Op == bytecode.OpJmp:
			push(int(in.A))
		case in.Op == bytecode.OpJmpZ || in.Op == bytecode.OpJmpNZ:
			push(int(in.A))
			push(pc + 1)
		case in.Op == bytecode.OpIterInit || in.Op == bytecode.OpIterNext:
			push(int(in.B))
			push(pc + 1)
		case in.Op == bytecode.OpRet || in.Op == bytecode.OpFatal:
		default:
			push(pc + 1)
		}
	}

	// keep[i]: instruction survives. Drop unreachable and reachable Nops.
	anyDrop := false
	keep := make([]bool, n)
	for i, in := range code {
		keep[i] = reachable[i] && in.Op != bytecode.OpNop
		if !keep[i] {
			anyDrop = true
		}
	}
	if !anyDrop {
		return false
	}

	// newAt[i] = index of the first kept instruction at or after i.
	newAt := make([]int32, n+1)
	cnt := int32(0)
	for i := 0; i < n; i++ {
		newAt[i] = cnt
		if keep[i] {
			cnt++
		}
	}
	newAt[n] = cnt

	out := make([]bytecode.Instr, 0, cnt)
	for i, in := range code {
		if !keep[i] {
			continue
		}
		if in.Op.IsJump() {
			in.A = newAt[in.A]
		}
		if in.Op == bytecode.OpIterInit || in.Op == bytecode.OpIterNext {
			in.B = newAt[in.B]
		}
		out = append(out, in)
	}
	// Never produce an empty function: keep a null return.
	if len(out) == 0 {
		out = []bytecode.Instr{{Op: bytecode.OpNull}, {Op: bytecode.OpRet}}
	}
	fn.SetCode(out)
	return true
}
