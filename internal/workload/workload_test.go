package workload

import (
	"testing"

	"jumpstart/internal/interp"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

func smallConfig() SiteConfig {
	cfg := DefaultSiteConfig()
	cfg.Units = 4
	cfg.HelpersPerUnit = 6
	cfg.EndpointsPerUnit = 3
	return cfg
}

func TestGenerateSiteCompilesAndRuns(t *testing.T) {
	site, err := GenerateSite(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(site.Endpoints) != 12 {
		t.Fatalf("endpoints = %d", len(site.Endpoints))
	}
	if len(site.Prog.Funcs) < 40 {
		t.Fatalf("functions = %d, want a real site", len(site.Prog.Funcs))
	}
	if err := site.Prog.Verify(); err != nil {
		t.Fatalf("generated program fails verification: %v", err)
	}
	reg, err := object.NewRegistry(site.Prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip := interp.New(site.Prog, reg, interp.Config{})
	// Every endpoint must execute without faults for a range of args.
	for _, ep := range site.Endpoints {
		for _, arg := range []int64{0, 1, 7, 12345} {
			if _, err := ip.Call(ep.Fn, value.Int(arg)); err != nil {
				t.Fatalf("%s(%d): %v", ep.Name, arg, err)
			}
		}
	}
}

func TestGenerateSiteDeterministic(t *testing.T) {
	a, err := GenerateSite(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSite(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range a.Sources {
		if b.Sources[name] != src {
			t.Fatalf("unit %s differs between runs", name)
		}
	}
	cfg2 := smallConfig()
	cfg2.Seed = 99
	c, err := GenerateSite(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for name, src := range a.Sources {
		if c.Sources[name] != src {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sites")
	}
}

func TestEndpointsResultsDeterministic(t *testing.T) {
	site, err := GenerateSite(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int64 {
		reg, _ := object.NewRegistry(site.Prog, nil)
		ip := interp.New(site.Prog, reg, interp.Config{})
		var out []int64
		for _, ep := range site.Endpoints {
			v, err := ip.Call(ep.Fn, value.Int(42))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v.ToInt())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("endpoint %d nondeterministic: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPartitionsAssigned(t *testing.T) {
	site, err := GenerateSite(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, ep := range site.Endpoints {
		if ep.Partition < 0 || ep.Partition >= site.Config.Partitions {
			t.Fatalf("partition %d out of range", ep.Partition)
		}
		seen[ep.Partition]++
	}
	if len(seen) < 2 {
		t.Fatal("all endpoints in one partition")
	}
}

func TestTrafficPrefersOwnBucket(t *testing.T) {
	site, err := GenerateSite(DefaultSiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := site.NewTraffic(0, 3, 42)
	if tr.Region() != 0 || tr.Bucket() != 3 {
		t.Fatal("stream identity")
	}
	inBucket := 0
	const draws = 5000
	for i := 0; i < draws; i++ {
		req := tr.Next()
		if site.Endpoints[req.Endpoint].Partition == 3 {
			inBucket++
		}
		if req.Arg.Kind() != value.KindInt {
			t.Fatal("arg kind")
		}
	}
	frac := float64(inBucket) / draws
	if frac < 0.85 {
		t.Fatalf("own-bucket fraction = %.2f, want ≥0.85 (semantic routing)", frac)
	}
	if frac > 0.995 {
		t.Fatalf("own-bucket fraction = %.2f, spill missing", frac)
	}
}

func TestTrafficDiffersAcrossRegionsSimilarWithin(t *testing.T) {
	site, err := GenerateSite(DefaultSiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	hist := func(region, bucket int, seed uint64) []float64 {
		tr := site.NewTraffic(region, bucket, seed)
		h := make([]float64, len(site.Endpoints))
		const draws = 8000
		for i := 0; i < draws; i++ {
			h[tr.Next().Endpoint]++
		}
		for i := range h {
			h[i] /= draws
		}
		return h
	}
	l1 := func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			if a[i] > b[i] {
				d += a[i] - b[i]
			} else {
				d += b[i] - a[i]
			}
		}
		return d
	}
	sameRB := l1(hist(0, 2, 1), hist(0, 2, 999)) // same region+bucket, diff servers
	diffRegion := l1(hist(0, 2, 1), hist(5, 2, 1))
	if sameRB >= diffRegion {
		t.Fatalf("within-pair similarity (%f) should beat cross-region (%f)",
			sameRB, diffRegion)
	}
}

func TestTrafficLongTailCoversEndpoints(t *testing.T) {
	site, err := GenerateSite(DefaultSiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := site.NewTraffic(1, 1, 7)
	seen := map[int]bool{}
	for i := 0; i < 60000; i++ {
		seen[tr.Next().Endpoint] = true
	}
	// The long tail must eventually touch most endpoints (including
	// out-of-partition spill) — this drives Figure 1's slow tail of
	// live JITing.
	if got := len(seen); got < len(site.Endpoints)*8/10 {
		t.Fatalf("only %d/%d endpoints touched", got, len(site.Endpoints))
	}
}

func TestRNGHelpers(t *testing.T) {
	r := newRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatal("intn range")
		}
		if v := r.rangeInt(3, 7); v < 3 || v > 7 {
			t.Fatal("rangeInt range")
		}
		if f := r.float(); f < 0 || f >= 1 {
			t.Fatal("float range")
		}
	}
	if r.intn(0) != 0 || r.rangeInt(5, 5) != 5 {
		t.Fatal("degenerate cases")
	}
	// pickWeighted respects weights.
	cum := []float64{1, 1, 1, 11} // only indices 0 and 3 have mass
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		counts[pickWeighted(r, cum)]++
	}
	if counts[1] > 0 || counts[2] > 0 {
		t.Fatalf("zero-weight picked: %v", counts)
	}
	if counts[3] < counts[0] {
		t.Fatalf("weights ignored: %v", counts)
	}
}
