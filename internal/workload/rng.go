package workload

// rng is a splitmix64 PRNG: tiny, fast and deterministic across
// platforms. All workload generation and traffic draws flow through it
// so every experiment is reproducible from a seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fork derives an independent splitmix64 seed for one task of a
// parallel fan-out. Seeding newRNG with Fork(seed, i) gives task i its
// own stream: the (seed, task) pair is mixed through the full
// splitmix64 output permutation, so streams for different task indices
// (or different base seeds) are statistically independent, and the
// derivation is pure — the same pair always yields the same seed, at
// any worker count and in any execution order. This is what lets
// internal/parallel fan work out without sharing a mutable rng.
func Fork(seed, task uint64) uint64 {
	z := seed + (task+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform int in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// pick chooses an index according to the given cumulative weights
// (cum[len-1] is the total). An empty slice returns 0 without
// consuming a draw; a non-positive total (all-zero weights) falls back
// to a uniform pick — both previously misbehaved (panic / always the
// last index).
func pickWeighted(r *rng, cum []float64) int {
	if len(cum) == 0 {
		return 0
	}
	total := cum[len(cum)-1]
	f := r.float()
	if total <= 0 {
		return int(f * float64(len(cum)))
	}
	x := f * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
