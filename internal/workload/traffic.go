package workload

import "jumpstart/internal/value"

// Request is one web request: an endpoint plus its argument.
type Request struct {
	Endpoint int // index into Site.Endpoints
	Arg      value.Value
}

// Traffic deterministically draws requests for one (region, semantic
// bucket) pair, implementing the paper's semantic-routing model
// (Section II-C): endpoints belonging to the bucket's partition
// receive almost all the weight, with a small spill of other-partition
// requests (overflow routing); the per-endpoint weights vary by region
// so different regions see genuinely different mixes; and a long tail
// of rare endpoints keeps new code appearing for a long time.
type Traffic struct {
	site   *Site
	r      *rng
	cum    []float64 // cumulative endpoint weights
	argR   *rng
	region int
	bucket int
}

// SpillFraction is the share of traffic routed outside the preferred
// semantic bucket (load-balancer overflow).
const SpillFraction = 0.05

// NewTraffic builds the request stream for (region, bucket) with the
// given stream seed.
func (s *Site) NewTraffic(region, bucket int, seed uint64) *Traffic {
	t := &Traffic{
		site:   s,
		r:      newRNG(seed ^ 0xabcdef),
		argR:   newRNG(seed*31 + 7),
		region: region,
		bucket: bucket,
	}
	// Region-dependent endpoint ranking: a per-(region, endpoint) hash
	// produces the rank that flattens into a long-tailed weight.
	wr := newRNG(uint64(region)*1_000_003 + 17)
	ranks := make([]float64, len(s.Endpoints))
	for i := range ranks {
		ranks[i] = wr.float()
	}
	t.cum = make([]float64, len(s.Endpoints))
	total := 0.0
	for i, ep := range s.Endpoints {
		// Flat-ish profile with a long tail: cubing the rank keeps
		// most endpoints warm but leaves a tail of rarely-requested
		// ones, which is what drives the paper's long C→D live-JIT
		// phase (Figure 1) and the slow climb from 90% to peak.
		r := ranks[i]
		w := 0.01 + r*r*r
		if ep.Partition != bucket%maxInt(1, s.Config.Partitions) {
			w *= SpillFraction / float64(maxInt(1, s.Config.Partitions-1))
		}
		total += w
		t.cum[i] = total
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Next draws the next request.
func (t *Traffic) Next() Request {
	ep := pickWeighted(t.r, t.cum)
	arg := int64(t.argR.intn(10_000))
	return Request{Endpoint: ep, Arg: value.Int(arg)}
}

// Region and Bucket identify the stream.
func (t *Traffic) Region() int { return t.region }

// Bucket returns the semantic bucket.
func (t *Traffic) Bucket() int { return t.bucket }
