package workload

import (
	"math"

	"jumpstart/internal/value"
)

// Request is one web request: an endpoint plus its argument.
type Request struct {
	Endpoint int // index into Site.Endpoints
	Arg      value.Value
}

// Traffic deterministically draws requests for one (region, semantic
// bucket) pair, implementing the paper's semantic-routing model
// (Section II-C): endpoints belonging to the bucket's partition
// receive almost all the weight, with a small spill of other-partition
// requests (overflow routing); the per-endpoint weights vary by region
// so different regions see genuinely different mixes; and a long tail
// of rare endpoints keeps new code appearing for a long time.
type Traffic struct {
	site   *Site
	r      *rng
	cum    []float64 // cumulative endpoint weights
	argR   *rng
	region int
	bucket int

	// Mix-modulation state (see SetMixShift): the per-(region,
	// endpoint) ranks the weights derive from, a second per-(region,
	// endpoint) hash giving each endpoint its rotation direction, and
	// the currently applied shift.
	ranks   []float64
	mixHash []float64
	shift   float64
}

// SpillFraction is the share of traffic routed outside the preferred
// semantic bucket (load-balancer overflow).
const SpillFraction = 0.05

// NewTraffic builds the request stream for (region, bucket) with the
// given stream seed.
func (s *Site) NewTraffic(region, bucket int, seed uint64) *Traffic {
	t := &Traffic{
		site:   s,
		r:      newRNG(seed ^ 0xabcdef),
		argR:   newRNG(seed*31 + 7),
		region: region,
		bucket: bucket,
	}
	// Region-dependent endpoint ranking: a per-(region, endpoint) hash
	// produces the rank that flattens into a long-tailed weight. The
	// mix hashes come from the same region-seeded stream, so both
	// depend only on (region, endpoint) — never on the stream seed —
	// which is what keeps every server of a (region, bucket) pair on
	// an identical mix at every shift.
	wr := newRNG(uint64(region)*1_000_003 + 17)
	t.ranks = make([]float64, len(s.Endpoints))
	for i := range t.ranks {
		t.ranks[i] = wr.float()
	}
	t.mixHash = make([]float64, len(s.Endpoints))
	for i := range t.mixHash {
		t.mixHash[i] = wr.float()
	}
	t.cum = make([]float64, len(s.Endpoints))
	t.rebuildMix()
	return t
}

// rebuildMix recomputes the cumulative weights from the stored ranks
// under the current mix shift. A shifted endpoint's effective rank is
// its base rank rotated by shift·hash (mod 1): shift 0 reproduces the
// stationary mix exactly, and any shift is a pure function of (region,
// endpoints, shift) — deterministic, and identical across servers of
// the same (region, bucket).
func (t *Traffic) rebuildMix() {
	s := t.site
	total := 0.0
	for i, ep := range s.Endpoints {
		r := t.ranks[i]
		if t.shift != 0 {
			r += t.shift * t.mixHash[i]
			r -= math.Floor(r)
		}
		// Flat-ish profile with a long tail: cubing the rank keeps
		// most endpoints warm but leaves a tail of rarely-requested
		// ones, which is what drives the paper's long C→D live-JIT
		// phase (Figure 1) and the slow climb from 90% to peak.
		w := 0.01 + r*r*r
		if ep.Partition != t.bucket%maxInt(1, s.Config.Partitions) {
			w *= SpillFraction / float64(maxInt(1, s.Config.Partitions-1))
		}
		total += w
		t.cum[i] = total
	}
}

// SetMixShift rotates the endpoint mix by shift (a scenario engine's
// MixShift output): each endpoint's popularity rank moves by a
// per-(region, endpoint) hash scaled by shift, so the hot set drifts
// continuously with the scenario phase while the region-level mix
// structure (own-bucket preference, long tail, cross-region
// dissimilarity) is preserved. Shift 0 restores the stationary mix.
func (t *Traffic) SetMixShift(shift float64) {
	if shift == t.shift {
		return
	}
	t.shift = shift
	t.rebuildMix()
}

// MixShift returns the currently applied mix shift.
func (t *Traffic) MixShift() float64 { return t.shift }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Next draws the next request.
func (t *Traffic) Next() Request {
	ep := pickWeighted(t.r, t.cum)
	arg := int64(t.argR.intn(10_000))
	return Request{Endpoint: ep, Arg: value.Int(arg)}
}

// Region and Bucket identify the stream.
func (t *Traffic) Region() int { return t.region }

// Bucket returns the semantic bucket.
func (t *Traffic) Bucket() int { return t.bucket }
