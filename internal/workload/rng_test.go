package workload

import "testing"

func TestForkIsPureAndDistinct(t *testing.T) {
	if Fork(42, 7) != Fork(42, 7) {
		t.Fatal("Fork is not deterministic")
	}
	// No collisions across a grid of seeds × tasks: forked streams
	// must be independent per task (the parallel-engine contract).
	seen := map[uint64][2]uint64{}
	for seed := uint64(0); seed < 64; seed++ {
		for task := uint64(0); task < 64; task++ {
			v := Fork(seed, task)
			if prev, dup := seen[v]; dup {
				t.Fatalf("Fork collision: (%d,%d) and (%d,%d) -> %d",
					seed, task, prev[0], prev[1], v)
			}
			seen[v] = [2]uint64{seed, task}
		}
	}
}

func TestForkedStreamsDiverge(t *testing.T) {
	base := newRNG(1)
	a := newRNG(Fork(1, 0))
	b := newRNG(Fork(1, 1))
	same := 0
	for i := 0; i < 16; i++ {
		x, y, z := base.next(), a.next(), b.next()
		if x == y || x == z || y == z {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams overlap the parent or each other (%d matches)", same)
	}
}

func TestPickWeighted(t *testing.T) {
	cases := []struct {
		name    string
		cum     []float64
		allowed map[int]bool // indices that may be returned
	}{
		{"empty", nil, map[int]bool{0: true}},
		{"single", []float64{3}, map[int]bool{0: true}},
		{"zero-weight-middle", []float64{1, 1, 2}, map[int]bool{0: true, 2: true}},
		{"all-zero", []float64{0, 0, 0}, map[int]bool{0: true, 1: true, 2: true}},
		{"normal", []float64{0.5, 1.5, 3}, map[int]bool{0: true, 1: true, 2: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newRNG(7)
			hits := map[int]int{}
			for i := 0; i < 2000; i++ {
				idx := pickWeighted(r, c.cum)
				if !c.allowed[idx] {
					t.Fatalf("picked disallowed index %d", idx)
				}
				hits[idx]++
			}
			// Every allowed index must actually occur (the all-zero
			// vector used to collapse onto the last index).
			if len(c.cum) > 0 {
				for idx := range c.allowed {
					if hits[idx] == 0 {
						t.Fatalf("index %d never picked: %v", idx, hits)
					}
				}
			}
		})
	}
}

func TestPickWeightedEmptyConsumesNoDraw(t *testing.T) {
	a, b := newRNG(9), newRNG(9)
	pickWeighted(a, nil)
	if a.next() != b.next() {
		t.Fatal("empty pick consumed a draw")
	}
}

func TestPickWeightedDeterministic(t *testing.T) {
	cum := []float64{1, 4, 9, 9.5}
	a, b := newRNG(123), newRNG(123)
	for i := 0; i < 500; i++ {
		if pickWeighted(a, cum) != pickWeighted(b, cum) {
			t.Fatalf("divergence at draw %d", i)
		}
	}
}
