// Traffic under time-varying mix modulation: determinism across
// worker counts, the region-similarity property at every scenario
// phase, and the semantic-routing invariants the shift must preserve.
// External test package: internal/scenario imports workload, so the
// in-package test file cannot drive the engine without a cycle.
package workload_test

import (
	"sync"
	"testing"

	"jumpstart/internal/scenario"
	"jumpstart/internal/workload"
)

func testSite(t *testing.T) *workload.Site {
	t.Helper()
	site, err := workload.GenerateSite(workload.DefaultSiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	return site
}

// drawSeq collects the endpoint sequence of one stream under a shift.
func drawSeq(site *workload.Site, region, bucket int, seed uint64, shift float64, n int) []int {
	tr := site.NewTraffic(region, bucket, seed)
	tr.SetMixShift(shift)
	out := make([]int, n)
	for i := range out {
		out[i] = tr.Next().Endpoint
	}
	return out
}

func histAt(site *workload.Site, region, bucket int, seed uint64, shift float64) []float64 {
	h := make([]float64, len(site.Endpoints))
	const draws = 8000
	tr := site.NewTraffic(region, bucket, seed)
	tr.SetMixShift(shift)
	for i := 0; i < draws; i++ {
		h[tr.Next().Endpoint]++
	}
	for i := range h {
		h[i] /= draws
	}
	return h
}

func l1(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// TestTrafficMixShiftDeterministicAcrossWorkers pins the parallel
// contract: shifted streams built and drawn concurrently, at any
// fan-out width, reproduce the sequential draws exactly.
func TestTrafficMixShiftDeterministicAcrossWorkers(t *testing.T) {
	site := testSite(t)
	type task struct {
		region, bucket int
		seed           uint64
		shift          float64
	}
	var tasks []task
	for r := 0; r < 4; r++ {
		for b := 0; b < 2; b++ {
			tasks = append(tasks,
				task{r, b, uint64(100*r + b), 0},
				task{r, b, uint64(100*r + b), 0.37})
		}
	}
	ref := make([][]int, len(tasks))
	for i, tk := range tasks {
		ref[i] = drawSeq(site, tk.region, tk.bucket, tk.seed, tk.shift, 300)
	}
	for _, workers := range []int{1, 4, 8} {
		got := make([][]int, len(tasks))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(tasks); i += workers {
					tk := tasks[i]
					got[i] = drawSeq(site, tk.region, tk.bucket, tk.seed, tk.shift, 300)
				}
			}(w)
		}
		wg.Wait()
		for i := range tasks {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d task=%d draw %d: got endpoint %d, want %d",
						workers, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestTrafficMixShiftZeroIsStationary: applying a shift and undoing it
// restores the stationary mix bit-for-bit, and equal shifts on
// same-seed streams stay in lockstep.
func TestTrafficMixShiftZeroIsStationary(t *testing.T) {
	site := testSite(t)
	a := site.NewTraffic(1, 2, 7)
	b := site.NewTraffic(1, 2, 7)
	a.SetMixShift(0.4)
	if a.MixShift() != 0.4 {
		t.Fatal("MixShift accessor")
	}
	a.SetMixShift(0)
	for i := 0; i < 500; i++ {
		if a.Next().Endpoint != b.Next().Endpoint {
			t.Fatalf("draw %d: shift 0 does not restore the stationary mix", i)
		}
	}
	c := site.NewTraffic(1, 2, 7)
	d := site.NewTraffic(1, 2, 7)
	c.SetMixShift(0.4)
	d.SetMixShift(0.4)
	for i := 0; i < 500; i++ {
		if c.Next().Endpoint != d.Next().Endpoint {
			t.Fatalf("draw %d: equal shifts diverge on same-seed streams", i)
		}
	}
}

// TestTrafficMixShiftMovesTheMix: a shifted mix is genuinely different
// from the stationary one — the scenario engine's modulation reaches
// the draws.
func TestTrafficMixShiftMovesTheMix(t *testing.T) {
	site := testSite(t)
	base := histAt(site, 0, 2, 1, 0)
	shifted := histAt(site, 0, 2, 1, 0.5)
	if d := l1(base, shifted); d < 0.05 {
		t.Fatalf("shift 0.5 barely moved the mix: L1 distance %f", d)
	}
}

// TestTrafficDiffersAcrossRegionsSimilarWithinAtEveryPhase sweeps a
// diurnal scenario through a full period and checks the semantic-
// routing property at each phase: two servers of the same (region,
// bucket) see closer mixes than two regions do, and the own-bucket
// preference (with its spill) survives the rotation.
func TestTrafficDiffersAcrossRegionsSimilarWithinAtEveryPhase(t *testing.T) {
	site := testSite(t)
	cfg := scenario.DefaultConfig(scenario.Diurnal, 6, 1200)
	eng, err := scenario.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, cfg.Period / 4, cfg.Period / 2, 3 * cfg.Period / 4, cfg.Period} {
		s0 := eng.MixShift(0, tm)
		s5 := eng.MixShift(5, tm)
		sameRB := l1(histAt(site, 0, 2, 1, s0), histAt(site, 0, 2, 999, s0))
		diffRegion := l1(histAt(site, 0, 2, 1, s0), histAt(site, 5, 2, 1, s5))
		if sameRB >= diffRegion {
			t.Fatalf("t=%g: within-pair similarity (%f) should beat cross-region (%f)",
				tm, sameRB, diffRegion)
		}
		tr := site.NewTraffic(0, 3, 42)
		tr.SetMixShift(s0)
		inBucket := 0
		const draws = 5000
		for i := 0; i < draws; i++ {
			if site.Endpoints[tr.Next().Endpoint].Partition == 3 {
				inBucket++
			}
		}
		frac := float64(inBucket) / draws
		if frac < 0.85 || frac > 0.995 {
			t.Fatalf("t=%g shift=%g: own-bucket fraction = %.2f, want [0.85, 0.995]", tm, s0, frac)
		}
	}
}
