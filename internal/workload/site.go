// Package workload generates the synthetic website the simulation
// serves and the request traffic that drives it.
//
// The generator aims for the workload properties the paper leans on
// (Section II-B/II-C): many units and functions with a *flat* hotness
// profile and a long tail; classes with inheritance, hot and cold
// properties, and both monomorphic and polymorphic call sites; traffic
// that differs per data-center region but is similar within a
// (region, semantic-bucket) pair. Everything derives deterministically
// from a seed.
package workload

import (
	"fmt"
	"strings"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/hackc"
)

// SiteConfig sizes the generated website.
type SiteConfig struct {
	Seed             uint64
	Units            int // source files
	HelpersPerUnit   int // shared library functions per unit
	ClassesPerUnit   int // class families per unit (base + 2 derived)
	EndpointsPerUnit int
	Partitions       int // semantic partitions (paper: 10)
	LoopMin, LoopMax int // helper loop trip counts
}

// DefaultSiteConfig returns a website of a few hundred functions —
// large relative to the scaled L1I/LLC, small enough to simulate fast.
func DefaultSiteConfig() SiteConfig {
	return SiteConfig{
		Seed:             1,
		Units:            12,
		HelpersPerUnit:   12,
		ClassesPerUnit:   2,
		EndpointsPerUnit: 6,
		Partitions:       10,
		LoopMin:          4,
		LoopMax:          16,
	}
}

// Endpoint is one web entry point.
type Endpoint struct {
	Name      string
	Fn        *bytecode.Function
	Partition int
}

// Site is a generated website: compiled program plus endpoint table.
type Site struct {
	Config    SiteConfig
	Prog      *bytecode.Program
	Sources   map[string]string
	UnitNames []string
	Endpoints []Endpoint
}

// GenerateSite builds and compiles a synthetic website.
func GenerateSite(cfg SiteConfig) (*Site, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 10
	}
	r := newRNG(cfg.Seed)
	g := &siteGen{cfg: cfg, r: r}
	g.generate()

	prog, err := hackc.CompileSources(g.sources, g.unitNames, hackc.Options{Optimize: true})
	if err != nil {
		return nil, fmt.Errorf("workload: generated site failed to compile: %w", err)
	}
	site := &Site{
		Config:    cfg,
		Prog:      prog,
		Sources:   g.sources,
		UnitNames: g.unitNames,
	}
	for i, name := range g.endpoints {
		fn, ok := prog.FuncByName(name)
		if !ok {
			return nil, fmt.Errorf("workload: endpoint %s missing after compile", name)
		}
		site.Endpoints = append(site.Endpoints, Endpoint{
			Name:      name,
			Fn:        fn,
			Partition: i % cfg.Partitions,
		})
	}
	return site, nil
}

type siteGen struct {
	cfg       SiteConfig
	r         *rng
	sources   map[string]string
	unitNames []string
	endpoints []string

	helperNames []string // global helper list, in definition order
	classNames  []string // base class per family
}

func (g *siteGen) generate() {
	g.sources = make(map[string]string)
	totalHelpers := g.cfg.Units * g.cfg.HelpersPerUnit
	for i := 0; i < totalHelpers; i++ {
		g.helperNames = append(g.helperNames, fmt.Sprintf("h%d", i))
	}
	for u := 0; u < g.cfg.Units; u++ {
		for k := 0; k < g.cfg.ClassesPerUnit; k++ {
			g.classNames = append(g.classNames, fmt.Sprintf("C%d_%d", u, k))
		}
	}

	hIdx := 0
	epIdx := 0
	for u := 0; u < g.cfg.Units; u++ {
		var b strings.Builder
		fmt.Fprintf(&b, "// unit %d (generated)\n", u)
		for k := 0; k < g.cfg.ClassesPerUnit; k++ {
			g.genClassFamily(&b, u, k)
		}
		for k := 0; k < g.cfg.HelpersPerUnit; k++ {
			g.genHelper(&b, hIdx)
			hIdx++
		}
		for k := 0; k < g.cfg.EndpointsPerUnit; k++ {
			name := fmt.Sprintf("ep%d", epIdx)
			g.genEndpoint(&b, name, totalHelpers)
			g.endpoints = append(g.endpoints, name)
			epIdx++
		}
		unit := fmt.Sprintf("unit%03d.mh", u)
		g.unitNames = append(g.unitNames, unit)
		g.sources[unit] = b.String()
	}
}

// genClassFamily emits a base class with 4-8 properties (some hot,
// some cold), a constructor, hot/cold methods, and two derived classes
// overriding val() (the polymorphic dispatch target).
func (g *siteGen) genClassFamily(b *strings.Builder, u, k int) {
	base := fmt.Sprintf("C%d_%d", u, k)
	nprops := g.r.rangeInt(8, 14)
	fmt.Fprintf(b, "class %s {\n", base)
	for p := 0; p < nprops; p++ {
		fmt.Fprintf(b, "  prop p%d = %d;\n", p, g.r.intn(10))
	}
	// Constructor touches the first two properties.
	fmt.Fprintf(b, "  fun __construct(a) { this->p0 = a; this->p1 = a * %d; }\n",
		g.r.rangeInt(2, 5))
	// Hot method: reads/writes early... actually reads *late* declared
	// properties too, so reordering by hotness has something to move.
	hotA := nprops - 1 // declared last but accessed hottest
	fmt.Fprintf(b, "  fun bump(x) { this->p%d += x; return this->p%d + this->p0; }\n",
		hotA, hotA)
	// Cold method touching middle properties.
	fmt.Fprintf(b, "  fun coldSum() { return this->p1 + this->p2 + this->p3; }\n")
	fmt.Fprintf(b, "  fun val() { return this->p0 + this->p1; }\n")
	fmt.Fprintf(b, "}\n")
	fmt.Fprintf(b, "class %sA extends %s { fun val() { return this->p0 * 2; } }\n", base, base)
	fmt.Fprintf(b, "class %sB extends %s { fun val() { return this->p1 + 7; } }\n", base, base)
}

// genHelper emits helper hIdx with one of five body shapes. Helpers
// only call helpers with higher indices, keeping the call graph
// acyclic and recursion-free.
func (g *siteGen) genHelper(b *strings.Builder, hIdx int) {
	name := g.helperNames[hIdx]
	loop := g.r.rangeInt(g.cfg.LoopMin, g.cfg.LoopMax)
	c1 := g.r.rangeInt(2, 9)
	c2 := g.r.rangeInt(11, 97)
	tailCall := ""
	if next := hIdx + 1 + g.r.intn(7); next < len(g.helperNames) && g.r.float() < 0.6 {
		tailCall = fmt.Sprintf("  t += %s(t %% 53);\n", g.helperNames[next])
	}

	switch g.r.intn(5) {
	case 0: // integer arithmetic loop (monomorphic int sites)
		fmt.Fprintf(b, "fun %s(a) {\n  t = 0;\n  for (i = 0; i < %d; i += 1) { t += (a + i * %d) %% %d; }\n%s  return t;\n}\n",
			name, loop, c1, c2, tailCall)
	case 1: // string building
		fmt.Fprintf(b, "fun %s(a) {\n  s = \"\";\n  for (i = 0; i < %d; i += 1) { s = s . chr(65 + (a + i) %% 26); }\n  t = strlen(s) * %d;\n%s  return t;\n}\n",
			name, loop, c1, tailCall)
	case 2: // object workout (monomorphic method + property traffic)
		cls := g.classNames[g.r.intn(len(g.classNames))]
		fmt.Fprintf(b, "fun %s(a) {\n  o = new %s(a);\n  t = 0;\n  for (i = 0; i < %d; i += 1) { t += o->bump(i); }\n  if (a %% 19 == 0) { t += o->coldSum(); }\n%s  return t;\n}\n",
			name, cls, loop, tailCall)
	case 3: // array workout
		fmt.Fprintf(b, "fun %s(a) {\n  arr = [];\n  for (i = 0; i < %d; i += 1) { push(arr, (a * %d + i) %% %d); }\n  t = 0;\n  foreach (arr as v) { t += v; }\n%s  return t;\n}\n",
			name, loop, c1, c2, tailCall)
	default: // polymorphic dispatch (skewed 7:1 so sites stay guardable)
		cls := g.classNames[g.r.intn(len(g.classNames))]
		fmt.Fprintf(b, "fun %s(a) {\n  if (a %% 8 == 0) { o = new %sB(a); } else { o = new %sA(a); }\n  t = 0;\n  for (i = 0; i < %d; i += 1) { t += o->val() + i; }\n%s  return t;\n}\n",
			name, cls, cls, loop, tailCall)
	}
}

// genEndpoint emits an endpoint calling 2-4 helpers.
func (g *siteGen) genEndpoint(b *strings.Builder, name string, totalHelpers int) {
	n := g.r.rangeInt(2, 4)
	fmt.Fprintf(b, "fun %s(seed) {\n  r = 0;\n", name)
	for i := 0; i < n; i++ {
		h := g.helperNames[g.r.intn(totalHelpers)]
		fmt.Fprintf(b, "  r += %s((seed + %d) %% %d);\n", h, g.r.intn(1000), g.r.rangeInt(50, 500))
	}
	fmt.Fprintf(b, "  return r;\n}\n")
}
