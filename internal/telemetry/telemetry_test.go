package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every instrument must be a no-op on nil receivers so call sites
	// carry no telemetry-enabled branches.
	var set *Set
	set.Event(1, "c", "n", S("k", "v"))
	set.Span(1, 2, "c", "n")
	set.Counter("x").Inc()
	set.Counter("x").Add(3)
	set.Gauge("g").Set(1)
	set.Gauge("g").Add(1)
	set.Histogram("h", []float64{1}).Observe(0.5)
	set.CycleProf().Add(CycleInterp, 10)
	set.CycleProf().SetPhase("x")

	var reg *Registry
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	reg.Reset()
	reg.MergeInto(NewRegistry())
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var tr *Trace
	tr.Event(0, "c", "n")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil trace must be empty")
	}
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	var cp *CycleProfile
	cp.Add(CycleInit, 1)
	cp.AddUint(CycleInit, 1)
	cp.SetPhase("p")
	if cp.Total() != 0 || cp.PhaseTotal("p") != 0 || cp.Bucket("p", CycleInit) != 0 {
		t.Fatal("nil profile must be zero")
	}
	if err := cp.WriteFolded(&buf, "r"); err != nil {
		t.Fatal(err)
	}
	if err := cp.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	var sh *Shards
	sh.Merge()
	if sh.Len() != 0 || sh.Shard(0) != nil {
		t.Fatal("nil shards")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("reqs") != c {
		t.Fatal("counter not memoized")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(1.5)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v", g.Value())
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	_, counts := h.Buckets()
	// SearchFloat64s: v=1 lands in the first bucket > it... bounds are
	// upper bounds; 1 goes to bucket index sort.SearchFloat64s([1,10,100],1)=0.
	want := []uint64{2, 1, 1, 1}
	for i, n := range want {
		if counts[i] != n {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, counts[i], n, counts)
		}
	}
}

func TestRegistryWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(1.25)
	r.Histogram("h", []float64{10}).Observe(3)

	var buf1, buf2 bytes.Buffer
	if err := r.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("non-deterministic JSON export")
	}
	// Sorted names, valid JSON.
	if !json.Valid(buf1.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf1.String())
	}
	if strings.Index(buf1.String(), `"a"`) > strings.Index(buf1.String(), `"b"`) {
		t.Fatal("counter names not sorted")
	}
	var parsed struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Count   uint64
			Sum     float64
			Le      []float64
			Buckets []uint64
		}
	}
	if err := json.Unmarshal(buf1.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Counters["a"] != 1 || parsed.Counters["b"] != 2 ||
		parsed.Gauges["z"] != 1.25 || parsed.Histograms["h"].Count != 1 {
		t.Fatalf("parsed = %+v", parsed)
	}
}

func TestShardsMergeInIndexOrder(t *testing.T) {
	base := NewRegistry()
	sh := NewShards(base, 3)
	if sh.Len() != 3 {
		t.Fatalf("len = %d", sh.Len())
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reg := sh.Shard(i)
			reg.Counter("n").Add(uint64(i + 1))
			reg.Histogram("h", []float64{1}).Observe(float64(i))
		}(i)
	}
	wg.Wait()
	sh.Merge()
	if got := base.Counter("n").Value(); got != 6 {
		t.Fatalf("merged counter = %d", got)
	}
	if got := base.Histogram("h", []float64{1}).Count(); got != 3 {
		t.Fatalf("merged hist count = %d", got)
	}
	// Shards were reset; a second merge adds nothing.
	sh.Merge()
	if got := base.Counter("n").Value(); got != 6 {
		t.Fatalf("shards not reset: %d", got)
	}
	if NewShards(nil, 3) != nil {
		t.Fatal("nil base must disable shards")
	}
}

func TestTraceRingAndJSONL(t *testing.T) {
	tr := NewTrace(3)
	tr.Event(1, "server", "a", S("mode", "seeder"), I("n", 7))
	tr.Span(2, 4, "jit", "compile", F("bytes", 128.5), B("hot", true))
	if tr.Len() != 2 || tr.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	tr.Event(5, "server", "c")
	tr.Event(6, "server", "d") // overwrites "a"
	if tr.Len() != 3 || tr.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Name != "compile" || evs[2].Name != "d" {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if evs[0].Seq != 2 {
		t.Fatalf("seq = %d", evs[0].Seq)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSONL line: %s", line)
		}
	}
	var ev struct {
		Seq   uint64
		T     float64
		Dur   float64
		Cat   string
		Name  string
		Attrs map[string]any
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Name != "compile" || ev.Dur != 2 || ev.Attrs["hot"] != true ||
		ev.Attrs["bytes"] != 128.5 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestCycleProfileBucketsAndExport(t *testing.T) {
	p := NewCycleProfile()
	p.Add(CycleInit, 100)
	p.AddUint(CycleWarmup, 50)
	p.SetPhase("serving")
	p.Add(CycleInterp, 30)
	p.Add(CycleJITExec, 20)
	p.SetPhase("serving") // idempotent
	p.Add(CycleGuard, 1)

	if p.Total() != 201 {
		t.Fatalf("total = %v", p.Total())
	}
	if p.PhaseTotal("init") != 150 || p.PhaseTotal("serving") != 51 {
		t.Fatalf("phase totals: init=%v serving=%v",
			p.PhaseTotal("init"), p.PhaseTotal("serving"))
	}
	if p.Bucket("serving", CycleInterp) != 30 || p.Bucket("nope", CycleInterp) != 0 {
		t.Fatal("bucket lookup")
	}
	if got := p.Phases(); len(got) != 2 || got[0] != "init" || got[1] != "serving" {
		t.Fatalf("phases = %v", got)
	}

	var folded bytes.Buffer
	if err := p.WriteFolded(&folded, "server"); err != nil {
		t.Fatal(err)
	}
	want := "server;init;init 100\n" +
		"server;init;warmup-requests 50\n" +
		"server;serving;interp-dispatch 30\n" +
		"server;serving;jit-exec 20\n" +
		"server;serving;guard-fail 1\n"
	if folded.String() != want {
		t.Fatalf("folded:\n%s\nwant:\n%s", folded.String(), want)
	}

	var table bytes.Buffer
	if err := p.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"interp-dispatch", "(phase total)", "100.0%"} {
		if !strings.Contains(table.String(), needle) {
			t.Fatalf("table missing %q:\n%s", needle, table.String())
		}
	}

	empty := NewCycleProfile()
	var eb bytes.Buffer
	if err := empty.WriteTable(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.String(), "no cycles") {
		t.Fatal("empty table")
	}
}

func TestCycleBucketNames(t *testing.T) {
	seen := map[string]bool{}
	for b := CycleBucket(0); b < NumCycleBuckets; b++ {
		name := b.String()
		if name == "" || strings.Contains(name, " ") || seen[name] {
			t.Fatalf("bad bucket name %q", name)
		}
		seen[name] = true
	}
	if CycleBucket(200).String() != "bucket(200)" {
		t.Fatal("out-of-range bucket name")
	}
}

func TestSetBundle(t *testing.T) {
	s := NewSet()
	s.Counter("c").Inc()
	s.Event(1, "x", "y")
	s.CycleProf().Add(CycleInterp, 2)
	if s.Metrics.Counter("c").Value() != 1 || s.Trace.Len() != 1 || s.Cycles.Total() != 2 {
		t.Fatal("set not wired")
	}
}

// TestEmptySnapshotQuantilesAndJSON pins the empty-snapshot behavior a
// fleet export depends on: a registered-but-never-observed histogram
// must report quantile 0 (not NaN from a 0/0 rank division), and
// WriteJSON over such a registry must stay legal JSON — including when
// a gauge holds a value JSON cannot carry (NaN/Inf encode as null).
func TestEmptySnapshotQuantilesAndJSON(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("boot.lat", []float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	// A histogram registered with no bounds at all must also stay at 0,
	// observed or not.
	nb := r.Histogram("no.bounds", nil)
	nb.Observe(7)
	if got := nb.Quantile(0.5); got != 0 {
		t.Fatalf("boundless histogram Quantile = %v, want 0", got)
	}
	r.Gauge("bad.gauge").Set(math.NaN())
	r.Gauge("inf.gauge").Set(math.Inf(1))

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !json.Valid(out) {
		t.Fatalf("empty-snapshot WriteJSON is not valid JSON:\n%s", out)
	}
	if bytes.Contains(out, []byte("NaN")) || bytes.Contains(out, []byte("Inf")) {
		t.Fatalf("WriteJSON leaked a non-JSON float:\n%s", out)
	}
	if !bytes.Contains(out, []byte(`"bad.gauge":null`)) {
		t.Fatalf("NaN gauge did not encode as null:\n%s", out)
	}
	if !bytes.Contains(out, []byte(`"boot.lat":{"count":0,"sum":0,"p50":0,"p95":0,"p99":0`)) {
		t.Fatalf("unobserved histogram snapshot malformed:\n%s", out)
	}
}
