package telemetry

import (
	"fmt"
	"os"
	"strings"
)

// ExportFiles writes the set's accumulated data to files: the event
// trace as JSONL, the metrics registry as JSON, and the cycle profile
// as folded stacks rooted at foldedRoot. Empty paths are skipped. A
// nil set writes nothing and returns nil, so callers can export
// unconditionally.
func (s *Set) ExportFiles(tracePath, metricsPath, foldedPath, foldedRoot string) error {
	if s == nil {
		return nil
	}
	if tracePath != "" {
		if err := writeFile(tracePath, func(f *os.File) error {
			return s.Trace.WriteJSONL(f)
		}); err != nil {
			return fmt.Errorf("telemetry: trace export: %w", err)
		}
	}
	if metricsPath != "" {
		if err := writeFile(metricsPath, func(f *os.File) error {
			return s.Metrics.WriteJSON(f)
		}); err != nil {
			return fmt.Errorf("telemetry: metrics export: %w", err)
		}
	}
	if foldedPath != "" {
		if err := writeFile(foldedPath, func(f *os.File) error {
			return s.Cycles.WriteFolded(f, foldedRoot)
		}); err != nil {
			return fmt.Errorf("telemetry: cycle-profile export: %w", err)
		}
	}
	return nil
}

// ExportSpans writes the event trace — span tree included — to path,
// picking the format from the extension: ".json" selects the Chrome
// trace_event format (loadable in Perfetto), anything else the JSONL
// stream. A nil set or empty path writes nothing.
func (s *Set) ExportSpans(path string) error {
	if s == nil || path == "" {
		return nil
	}
	write := s.Trace.WriteJSONL
	if strings.HasSuffix(path, ".json") {
		write = s.Trace.WriteChromeTrace
	}
	if err := writeFile(path, func(f *os.File) error { return write(f) }); err != nil {
		return fmt.Errorf("telemetry: span export: %w", err)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
