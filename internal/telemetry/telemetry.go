// Package telemetry is the simulation's zero-perturbation observation
// layer: a deterministic metrics registry (counters, gauges,
// fixed-bound histograms), a bounded structured event tracer with
// JSONL export, and a virtual-cycle attribution profiler that buckets
// every cycle the simulated servers charge and emits folded-stack
// output for standard flamegraph tools.
//
// Zero-perturbation contract: telemetry only ever *observes*. No
// instrument feeds a value back into the simulation, draws from a
// simulation PRNG, or reorders floating-point accumulation on a
// simulation path, so simulation output is byte-identical with
// telemetry enabled, disabled, and at every worker count (pinned by
// determinism tests in internal/server, internal/cluster and
// cmd/jumpstartd).
//
// Concurrency: metric instruments (Counter, Gauge, Histogram) are
// updated with atomics and may be read concurrently — that is what
// lets cmd/jumpstartd serve a live /metrics endpoint while the
// simulation runs. Trace and CycleProfile are single-writer: they
// must only be touched from the goroutine driving the simulation
// (exports happen after the run, or from the same goroutine). For
// parallel fan-out, give each shard its own Registry via Shards and
// merge in task-index order.
package telemetry

// Set bundles the three instruments behind one handle. A nil *Set —
// and any nil field of a non-nil Set — disables the corresponding
// instrument: every method in this package is nil-receiver safe, so
// instrumented code carries no "is telemetry on?" branches.
type Set struct {
	Metrics *Registry
	Trace   *Trace
	Cycles  *CycleProfile
}

// NewSet returns a Set with all three instruments enabled at default
// capacities.
func NewSet() *Set {
	return &Set{
		Metrics: NewRegistry(),
		Trace:   NewTrace(0),
		Cycles:  NewCycleProfile(),
	}
}

// Counter resolves a counter by name, or nil when metrics are off.
func (s *Set) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Metrics.Counter(name)
}

// Gauge resolves a gauge by name, or nil when metrics are off.
func (s *Set) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// Histogram resolves a histogram by name, or nil when metrics are off.
func (s *Set) Histogram(name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.Metrics.Histogram(name, bounds)
}

// Event records an instantaneous trace event (no-op when tracing is
// off).
func (s *Set) Event(t float64, cat, name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.Trace.Event(t, cat, name, attrs...)
}

// Span records a trace span covering [t0, t1] (no-op when tracing is
// off).
func (s *Set) Span(t0, t1 float64, cat, name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.Trace.Span(t0, t1, cat, name, attrs...)
}

// BeginSpan reserves a causal span ID (0 when tracing is off). Close
// it with EndSpan once the end time is known; children recorded in the
// meantime reference it as their parent.
func (s *Set) BeginSpan() uint64 {
	if s == nil {
		return 0
	}
	return s.Trace.BeginSpan()
}

// EndSpan records the span reserved by BeginSpan (no-op when tracing
// is off or id is 0).
func (s *Set) EndSpan(id, parent uint64, t0, t1 float64, cat, name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.Trace.EndSpan(id, parent, t0, t1, cat, name, attrs...)
}

// SpanUnder records a complete child span under parent and returns its
// ID (0 when tracing is off).
func (s *Set) SpanUnder(parent uint64, t0, t1 float64, cat, name string, attrs ...Attr) uint64 {
	if s == nil {
		return 0
	}
	return s.Trace.SpanUnder(parent, t0, t1, cat, name, attrs...)
}

// CycleProf returns the cycle profiler, or nil when profiling is off.
func (s *Set) CycleProf() *CycleProfile {
	if s == nil {
		return nil
	}
	return s.Cycles
}
