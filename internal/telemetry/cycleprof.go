package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// CycleBucket classifies where a simulated server spends its charged
// cycles — the attribution axes of the virtual flame profile. Every
// cycle the server charges lands in exactly one bucket, so the profile
// conserves cycles (asserted by internal/server's conservation test).
type CycleBucket uint8

// Cycle buckets.
const (
	// CycleInit is the fixed process-start work.
	CycleInit CycleBucket = iota
	// CycleWarmup is request execution during the init-phase warmup
	// (sequential for no-Jump-Start/seeder, parallel for consumers).
	CycleWarmup
	// CycleUnitLoad is unit first-touch metadata loading.
	CycleUnitLoad
	// CycleTier1Compile is profiling-translation compilation.
	CycleTier1Compile
	// CycleLiveCompile is live (tail) translation compilation.
	CycleLiveCompile
	// CycleOptimize is tier-2 optimized compilation (background A→B,
	// or consumer-startup precompilation).
	CycleOptimize
	// CycleReloc is optimized-code relocation (B→C).
	CycleReloc
	// CycleInterp is interpreter dispatch+execute.
	CycleInterp
	// CycleJITExec is translated-code execution (base cost).
	CycleJITExec
	// CycleIFetch is instruction-fetch penalties (I-cache/I-TLB).
	CycleIFetch
	// CycleBranch is branch-misprediction penalties.
	CycleBranch
	// CycleData is data-access penalties (D-cache/D-TLB).
	CycleData
	// CycleGuard is specialization/devirtualization guard failures.
	CycleGuard
	// CyclePageIn is lazy-warmup translation page-in: the on-demand
	// fetch plus install of a packaged translation at first call.
	CyclePageIn

	// NumCycleBuckets is the bucket count.
	NumCycleBuckets
)

var cycleBucketNames = [NumCycleBuckets]string{
	CycleInit:         "init",
	CycleWarmup:       "warmup-requests",
	CycleUnitLoad:     "unit-first-touch",
	CycleTier1Compile: "tier1-compile",
	CycleLiveCompile:  "live-compile",
	CycleOptimize:     "optimize",
	CycleReloc:        "relocation",
	CycleInterp:       "interp-dispatch",
	CycleJITExec:      "jit-exec",
	CycleIFetch:       "ifetch-penalty",
	CycleBranch:       "branch-penalty",
	CycleData:         "data-penalty",
	CycleGuard:        "guard-fail",
	CyclePageIn:       "lazy-pagein",
}

// String names the bucket.
func (b CycleBucket) String() string {
	if b < NumCycleBuckets {
		return cycleBucketNames[b]
	}
	return fmt.Sprintf("bucket(%d)", uint8(b))
}

// CycleProfile accumulates charged cycles by (phase, bucket).
// Single-writer: only the simulation goroutine may call SetPhase/Add;
// export after the run. Phases appear in first-seen order, which for a
// server is lifecycle order.
type CycleProfile struct {
	phases []string
	index  map[string]int
	cur    int
	counts [][NumCycleBuckets]float64
}

// NewCycleProfile returns an empty profile positioned at phase
// "init".
func NewCycleProfile() *CycleProfile {
	p := &CycleProfile{index: make(map[string]int)}
	p.SetPhase("init")
	return p
}

// SetPhase directs subsequent Add calls to the named phase row,
// creating it on first use.
func (p *CycleProfile) SetPhase(name string) {
	if p == nil {
		return
	}
	i, ok := p.index[name]
	if !ok {
		i = len(p.phases)
		p.index[name] = i
		p.phases = append(p.phases, name)
		p.counts = append(p.counts, [NumCycleBuckets]float64{})
	}
	p.cur = i
}

// Add charges cycles to bucket b in the current phase.
func (p *CycleProfile) Add(b CycleBucket, cycles float64) {
	if p == nil || cycles == 0 {
		return
	}
	p.counts[p.cur][b] += cycles
}

// AddUint charges an integral cycle count to bucket b.
func (p *CycleProfile) AddUint(b CycleBucket, cycles uint64) {
	if p == nil || cycles == 0 {
		return
	}
	p.counts[p.cur][b] += float64(cycles)
}

// Total returns the sum over all phases and buckets.
func (p *CycleProfile) Total() float64 {
	if p == nil {
		return 0
	}
	total := 0.0
	for i := range p.counts {
		for b := CycleBucket(0); b < NumCycleBuckets; b++ {
			total += p.counts[i][b]
		}
	}
	return total
}

// PhaseTotal returns the cycle sum charged under the named phase.
func (p *CycleProfile) PhaseTotal(phase string) float64 {
	if p == nil {
		return 0
	}
	i, ok := p.index[phase]
	if !ok {
		return 0
	}
	total := 0.0
	for b := CycleBucket(0); b < NumCycleBuckets; b++ {
		total += p.counts[i][b]
	}
	return total
}

// Bucket returns the cycles charged to (phase, bucket).
func (p *CycleProfile) Bucket(phase string, b CycleBucket) float64 {
	if p == nil {
		return 0
	}
	i, ok := p.index[phase]
	if !ok {
		return 0
	}
	return p.counts[i][b]
}

// Phases returns the phase names in first-seen order.
func (p *CycleProfile) Phases() []string {
	if p == nil {
		return nil
	}
	return append([]string{}, p.phases...)
}

// WriteFolded emits the profile as folded stacks —
// "root;phase;bucket count" lines, one per non-empty (phase, bucket) —
// the input format of standard flamegraph tools (flamegraph.pl,
// inferno, speedscope). Counts are rounded to whole cycles.
func (p *CycleProfile) WriteFolded(w io.Writer, root string) error {
	if p == nil {
		return nil
	}
	var b []byte
	for i, phase := range p.phases {
		for bk := CycleBucket(0); bk < NumCycleBuckets; bk++ {
			c := p.counts[i][bk]
			if c == 0 {
				continue
			}
			b = b[:0]
			b = append(b, root...)
			b = append(b, ';')
			b = append(b, phase...)
			b = append(b, ';')
			b = append(b, bk.String()...)
			b = append(b, ' ')
			b = strconv.AppendFloat(b, c, 'f', 0, 64)
			b = append(b, '\n')
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTable emits a human-readable per-phase breakdown: one row per
// (phase, bucket) with the cycle count and its share of the phase and
// of the whole run.
func (p *CycleProfile) WriteTable(w io.Writer) error {
	if p == nil {
		return nil
	}
	total := p.Total()
	if total == 0 {
		_, err := fmt.Fprintln(w, "(no cycles charged)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %-18s %16s %8s %8s\n",
		"phase", "bucket", "cycles", "phase%", "total%"); err != nil {
		return err
	}
	for i, phase := range p.phases {
		phaseTotal := 0.0
		for bk := CycleBucket(0); bk < NumCycleBuckets; bk++ {
			phaseTotal += p.counts[i][bk]
		}
		if phaseTotal == 0 {
			continue
		}
		for bk := CycleBucket(0); bk < NumCycleBuckets; bk++ {
			c := p.counts[i][bk]
			if c == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-12s %-18s %16.0f %7.1f%% %7.1f%%\n",
				phase, bk.String(), c, 100*c/phaseTotal, 100*c/total); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%-12s %-18s %16.0f %7.1f%% %7.1f%%\n",
			phase, "(phase total)", phaseTotal, 100.0, 100*phaseTotal/total); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-12s %-18s %16.0f %8s %7.1f%%\n",
		"all", "(total)", total, "", 100.0)
	return err
}
