package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. Updates are atomic, so
// a live exporter may read while the simulation writes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 last-write-wins value stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (compare-and-swap loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, want) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets plus an
// overflow bucket. Bounds are set at registration and never change, so
// observation is a branch-light search plus one atomic add.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has len(bounds)+1
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, want) {
			break
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (q in [0, 1]) of the observed
// distribution from the bucket counts, with a deterministic
// interpolation rule:
//
//   - The target rank is q·count (continuous, not rounded).
//   - Observations in bucket i are assumed uniformly spread over
//     (lower_i, bounds[i]], where lower_i is the previous bound (0 for
//     the first bucket — bounds are assumed non-negative, which every
//     histogram in this codebase satisfies).
//   - The overflow bucket has no upper edge, so any rank landing there
//     reports the largest finite bound (a deliberate lower-bound
//     estimate rather than an invented extrapolation).
//
// Edge cases: an empty histogram reports 0; a histogram whose every
// observation sits in the overflow bucket reports the largest finite
// bound, or 0 when there are no bounds at all. q outside [0, 1] is
// clamped. The result is a pure function of the bucket snapshot, so
// exports built on it stay byte-identical across worker counts.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: no upper edge to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	// All mass below rank (q == 1 with rounding): the largest bound.
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns (bounds, counts) snapshots; counts has one extra
// trailing overflow entry.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	if h == nil {
		return nil, nil
	}
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return append([]float64{}, h.bounds...), counts
}

// Registry is a named collection of instruments. Registration
// (Counter/Gauge/Histogram lookup by name) takes a lock; the returned
// handles update lock-free, so hot paths resolve their instruments
// once up front. Export walks names in sorted order, making output
// deterministic.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending upper bounds on first use (later calls may
// pass nil bounds). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64{}, bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// MergeInto folds this registry's instruments into dst: counters and
// histogram buckets add, gauges add. Intended for per-shard registries
// whose shards are merged in task-index order after a parallel phase.
func (r *Registry) MergeInto(dst *Registry) {
	if r == nil || dst == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		dst.Counter(name).Add(c.Value())
	}
	for name, g := range r.gauges {
		dst.Gauge(name).Add(g.Value())
	}
	for name, h := range r.hists {
		bounds, counts := h.Buckets()
		dh := dst.Histogram(name, bounds)
		for i, n := range counts {
			if n != 0 {
				dh.counts[i].Add(n)
			}
		}
		dh.count.Add(h.Count())
		if s := h.Sum(); s != 0 {
			for {
				old := dh.sum.Load()
				want := math.Float64bits(math.Float64frombits(old) + s)
				if dh.sum.CompareAndSwap(old, want) {
					break
				}
			}
		}
	}
}

// Reset zeroes every registered instrument (the shard-reuse path; the
// instrument handles stay valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// WriteJSON writes a deterministic JSON snapshot: instruments grouped
// by kind, names sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()

	var b []byte
	b = append(b, `{"counters":{`...)
	for i, name := range sortedKeys(r.counters) {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, name)
		b = append(b, ':')
		b = strconv.AppendUint(b, r.counters[name].Value(), 10)
	}
	b = append(b, `},"gauges":{`...)
	for i, name := range sortedKeys(r.gauges) {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, name)
		b = append(b, ':')
		b = appendJSONFloat(b, r.gauges[name].Value())
	}
	b = append(b, `},"histograms":{`...)
	for i, name := range sortedKeys(r.hists) {
		if i > 0 {
			b = append(b, ',')
		}
		h := r.hists[name]
		bounds, counts := h.Buckets()
		b = strconv.AppendQuote(b, name)
		b = append(b, `:{"count":`...)
		b = strconv.AppendUint(b, h.Count(), 10)
		b = append(b, `,"sum":`...)
		b = appendJSONFloat(b, h.Sum())
		b = append(b, `,"p50":`...)
		b = appendJSONFloat(b, h.Quantile(0.50))
		b = append(b, `,"p95":`...)
		b = appendJSONFloat(b, h.Quantile(0.95))
		b = append(b, `,"p99":`...)
		b = appendJSONFloat(b, h.Quantile(0.99))
		b = append(b, `,"le":[`...)
		for j, bound := range bounds {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, bound)
		}
		b = append(b, `],"buckets":[`...)
		for j, n := range counts {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, n, 10)
		}
		b = append(b, `]}`...)
	}
	b = append(b, "}}\n"...)
	_, err := w.Write(b)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendJSONFloat formats v compactly and JSON-legally (JSON has no
// NaN/Inf; they are emitted as null).
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Shards gives each worker of a parallel fan-out its own Registry and
// folds them into a base registry in shard-index order afterwards —
// the pattern that keeps cluster.Fleet.Tick byte-identical at every
// worker count while still collecting per-server metrics inside the
// sharded phase.
type Shards struct {
	base   *Registry
	shards []*Registry
}

// NewShards builds n shard registries feeding base. A nil base returns
// a nil (no-op) Shards.
func NewShards(base *Registry, n int) *Shards {
	if base == nil || n <= 0 {
		return nil
	}
	s := &Shards{base: base, shards: make([]*Registry, n)}
	for i := range s.shards {
		s.shards[i] = NewRegistry()
	}
	return s
}

// Len returns the shard count.
func (s *Shards) Len() int {
	if s == nil {
		return 0
	}
	return len(s.shards)
}

// Shard returns shard i's registry (nil on a nil Shards).
func (s *Shards) Shard(i int) *Registry {
	if s == nil {
		return nil
	}
	return s.shards[i]
}

// Merge folds every shard into the base in index order and resets the
// shards for reuse. Call it from the sequential merge phase, after all
// shard goroutines have finished.
func (s *Shards) Merge() {
	if s == nil {
		return
	}
	for _, sh := range s.shards {
		sh.MergeInto(s.base)
		sh.Reset()
	}
}

// String summarizes the registry (instrument counts), for debugging.
func (r *Registry) String() string {
	if r == nil {
		return "telemetry.Registry(nil)"
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("telemetry.Registry{counters: %d, gauges: %d, histograms: %d}",
		len(r.counters), len(r.gauges), len(r.hists))
}
