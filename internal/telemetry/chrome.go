package telemetry

import (
	"io"
	"strconv"
)

// WriteChromeTrace writes the buffered events in the Chrome
// trace_event JSON format (the "JSON Array Format" with complete "X"
// events), loadable directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Spans become "X" (complete) events with their
// virtual-time window converted to microseconds; instantaneous events
// become "i" (instant) events. Span IDs and parent links ride along in
// args, and the encoding is hand-rolled like WriteJSONL so the byte
// stream is deterministic.
//
// All events share pid 1 / tid 1: the simulation is single-writer, and
// because child spans are time-contained in their parents (the
// conservation invariant internal/obs validates), Perfetto's
// containment-based nesting renders the causal tree as a flame on one
// track.
func (tr *Trace) WriteChromeTrace(w io.Writer) error {
	if tr == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	var b []byte
	b = append(b, `{"traceEvents":[`...)
	if _, err := w.Write(b); err != nil {
		return err
	}
	for i := 0; i < tr.n; i++ {
		ev := &tr.events[(tr.head+i)%len(tr.events)]
		b = b[:0]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n"...)
		if ev.Dur != 0 {
			b = append(b, `{"ph":"X"`...)
		} else {
			b = append(b, `{"ph":"i","s":"t"`...)
		}
		b = append(b, `,"pid":1,"tid":1,"ts":`...)
		b = appendJSONFloat(b, ev.T*1e6)
		if ev.Dur != 0 {
			b = append(b, `,"dur":`...)
			b = appendJSONFloat(b, ev.Dur*1e6)
		}
		b = append(b, `,"cat":`...)
		b = strconv.AppendQuote(b, ev.Cat)
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, ev.Name)
		b = append(b, `,"args":{"span":`...)
		b = strconv.AppendUint(b, ev.Seq, 10)
		if ev.Parent != 0 {
			b = append(b, `,"parent":`...)
			b = strconv.AppendUint(b, ev.Parent, 10)
		}
		for j := range ev.Attrs {
			a := &ev.Attrs[j]
			b = append(b, ',')
			b = strconv.AppendQuote(b, a.Key)
			b = append(b, ':')
			switch a.kind {
			case attrString:
				b = strconv.AppendQuote(b, a.str)
			case attrInt:
				b = strconv.AppendInt(b, int64(a.num), 10)
			case attrFloat:
				b = appendJSONFloat(b, a.num)
			case attrBool:
				if a.num != 0 {
					b = append(b, "true"...)
				} else {
					b = append(b, "false"...)
				}
			}
		}
		b = append(b, `}}`...)
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n]}\n"); err != nil {
		return err
	}
	return nil
}
