package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()

	// Empty histogram and bound-less histogram report 0.
	if got := r.Histogram("empty", []float64{1, 2}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	nb := r.Histogram("nobounds", nil)
	nb.Observe(7)
	if got := nb.Quantile(0.5); got != 0 {
		t.Fatalf("no-bounds quantile = %v", got)
	}

	// Single finite bucket: uniform interpolation over (0, 100].
	single := r.Histogram("single", []float64{100})
	for i := 0; i < 3; i++ {
		single.Observe(50)
	}
	if got := single.Quantile(0.5); got != 50 {
		t.Fatalf("single-bucket p50 = %v, want 50", got)
	}
	if got := single.Quantile(1); got != 100 {
		t.Fatalf("single-bucket p100 = %v, want 100", got)
	}

	// Multi-bucket interpolation: 4 in (0,10], 4 in (10,20], 2 overflow.
	h := r.Histogram("multi", []float64{10, 20})
	for i := 0; i < 4; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	h.Observe(999)
	h.Observe(999)
	// rank 5 lands 1/4 into the (10,20] bucket.
	if got := h.Quantile(0.5); got != 12.5 {
		t.Fatalf("p50 = %v, want 12.5", got)
	}
	// rank 9.5 lands in the overflow bucket -> largest finite bound.
	if got := h.Quantile(0.95); got != 20 {
		t.Fatalf("p95 = %v, want 20 (overflow reports largest bound)", got)
	}
	// q is clamped to [0, 1].
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Fatal("q not clamped")
	}

	// Every observation in the overflow bucket: largest finite bound.
	ov := r.Histogram("overflow", []float64{10})
	ov.Observe(50)
	ov.Observe(60)
	if got := ov.Quantile(0.5); got != 10 {
		t.Fatalf("overflow-only p50 = %v, want 10", got)
	}

	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}
}

func TestRegistryJSONQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 20})
	for i := 0; i < 4; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Histograms map[string]struct {
			P50 float64 `json:"p50"`
			P95 float64 `json:"p95"`
			P99 float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("%v in %s", err, buf.String())
	}
	got := parsed.Histograms["lat"]
	if got.P50 != h.Quantile(0.50) || got.P95 != h.Quantile(0.95) || got.P99 != h.Quantile(0.99) {
		t.Fatalf("exported quantiles %+v disagree with Quantile()", got)
	}
}

func TestSpanIDsAndParents(t *testing.T) {
	tr := NewTrace(8)
	root := tr.BeginSpan()
	if root != 1 {
		t.Fatalf("first span ID = %d, want 1", root)
	}
	child := tr.SpanUnder(root, 1, 2, "boot", "fetch", S("store", "a"))
	if child != 2 {
		t.Fatalf("child ID = %d, want 2", child)
	}
	grand := tr.SpanUnder(child, 1, 1.5, "boot", "rpc.chunk")
	tr.EndSpan(root, 0, 0, 3, "boot", "boot", S("outcome", "ok"))

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	// Buffer order is record order: child, grandchild, then the root
	// (EndSpan lands after its children) — Seq is NOT monotonic here.
	if evs[0].Seq != child || evs[0].Parent != root ||
		evs[1].Seq != grand || evs[1].Parent != child ||
		evs[2].Seq != root || evs[2].Parent != 0 {
		t.Fatalf("tree wrong: %+v", evs)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var ev struct {
		Seq    uint64
		Parent uint64
		Dur    float64
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 2 || ev.Parent != 1 || ev.Dur != 1 {
		t.Fatalf("JSONL child = %+v", ev)
	}
	if strings.Contains(lines[2], `"parent"`) {
		t.Fatalf("root span must omit parent: %s", lines[2])
	}

	// Nil safety: BeginSpan hands out the 0 (none) ID, EndSpan with 0
	// records nothing.
	var nilTr *Trace
	if nilTr.BeginSpan() != 0 || nilTr.SpanUnder(0, 0, 1, "c", "n") != 0 {
		t.Fatal("nil trace must return ID 0")
	}
	nilTr.EndSpan(0, 0, 0, 1, "c", "n")
	var nilSet *Set
	if nilSet.BeginSpan() != 0 || nilSet.SpanUnder(0, 0, 1, "c", "n") != 0 {
		t.Fatal("nil set must return ID 0")
	}
	nilSet.EndSpan(0, 0, 0, 1, "c", "n")
	tr.EndSpan(0, 0, 0, 1, "c", "n") // id 0: must not record
	if tr.Len() != 3 {
		t.Fatal("EndSpan(0) must be a no-op")
	}
}

func TestTraceWraparoundKeepsAttrs(t *testing.T) {
	// Attribute payloads (and their order) must survive ring eviction:
	// each surviving event carries exactly the attrs it was recorded
	// with, in recording order.
	tr := NewTrace(2)
	tr.Event(1, "c", "a", S("k", "va"), I("i", 1))
	tr.Event(2, "c", "b", S("k", "vb"), I("i", 2), B("flag", true))
	tr.Event(3, "c", "c", F("x", 3.5), S("k", "vc"))
	if tr.Len() != 2 || tr.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Oldest survivor is "b" with its full ordered attr set.
	if !strings.Contains(lines[0], `"attrs":{"k":"vb","i":2,"flag":true}`) {
		t.Fatalf("evicted-adjacent attrs wrong: %s", lines[0])
	}
	// "c" preserves recording order (float before string).
	if !strings.Contains(lines[1], `"attrs":{"x":3.5,"k":"vc"}`) {
		t.Fatalf("attr order not preserved: %s", lines[1])
	}
}

func TestSpanExportCapacityExceededMidTree(t *testing.T) {
	// A span tree larger than the ring: children may outlive an evicted
	// sibling, and the root (recorded last via EndSpan) must still link
	// correctly. Exports must stay well-formed.
	tr := NewTrace(3)
	root := tr.BeginSpan()                         // ID 1, recorded later
	c1 := tr.SpanUnder(root, 0, 1, "boot", "s1")   // ID 2
	c2 := tr.SpanUnder(root, 1, 2, "boot", "s2")   // ID 3
	tr.EndSpan(root, 0, 0, 2.5, "boot", "boot")    // ring: c1 c2 root
	c4 := tr.SpanUnder(root, 2, 2.5, "boot", "s3") // ID 4, evicts c1
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	evs := tr.Events()
	wantSeq := []uint64{c2, root, c4}
	wantParent := []uint64{root, 0, root}
	for i, ev := range evs {
		if ev.Seq != wantSeq[i] || ev.Parent != wantParent[i] {
			t.Fatalf("ev[%d] = seq %d parent %d, want %d/%d",
				i, ev.Seq, ev.Parent, wantSeq[i], wantParent[i])
		}
	}
	_ = c1

	var jl bytes.Buffer
	if err := tr.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jl.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSONL: %s", line)
		}
	}

	var ct bytes.Buffer
	if err := tr.WriteChromeTrace(&ct); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(ct.Bytes()) {
		t.Fatalf("invalid Chrome trace: %s", ct.String())
	}
	var chrome struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Name string  `json:"name"`
			Args struct {
				Span   uint64 `json:"span"`
				Parent uint64 `json:"parent"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(ct.Bytes(), &chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) != 3 {
		t.Fatalf("chrome events = %d", len(chrome.TraceEvents))
	}
	// The root span: ph "X", microsecond units, no parent arg.
	rootEv := chrome.TraceEvents[1]
	if rootEv.Ph != "X" || rootEv.Ts != 0 || rootEv.Dur != 2.5e6 ||
		rootEv.Args.Span != root || rootEv.Args.Parent != 0 {
		t.Fatalf("chrome root = %+v", rootEv)
	}
	if chrome.TraceEvents[2].Args.Parent != root {
		t.Fatalf("chrome child parent = %+v", chrome.TraceEvents[2])
	}
}

func TestChromeTraceInstantAndNil(t *testing.T) {
	tr := NewTrace(4)
	tr.Event(1.5, "fleet", "crash", S("reason", "defect"))
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"i","s":"t"`) {
		t.Fatalf("instant event not marked: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"ts":1.5e+06`) &&
		!strings.Contains(buf.String(), `"ts":1500000`) {
		t.Fatalf("ts not in microseconds: %s", buf.String())
	}

	var nilTr *Trace
	buf.Reset()
	if err := nilTr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) || !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("nil chrome trace = %s", buf.String())
	}
}

func TestExportSpansFormatByExtension(t *testing.T) {
	dir := t.TempDir()
	s := NewSet()
	id := s.BeginSpan()
	s.EndSpan(id, 0, 0, 1, "boot", "boot")

	jsonl := filepath.Join(dir, "spans.jsonl")
	if err := s.ExportSpans(jsonl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), `{"seq":`) {
		t.Fatalf("jsonl export = %s", data)
	}

	chrome := filepath.Join(dir, "spans.json")
	if err := s.ExportSpans(chrome); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), `{"traceEvents":[`) || !json.Valid(data) {
		t.Fatalf("chrome export = %s", data)
	}

	var nilSet *Set
	if err := nilSet.ExportSpans(filepath.Join(dir, "nope.json")); err != nil {
		t.Fatal(err)
	}
	if err := s.ExportSpans(""); err != nil {
		t.Fatal(err)
	}
}
