package telemetry

import (
	"io"
	"strconv"
)

// DefaultTraceCapacity bounds the event ring when NewTrace is given a
// non-positive capacity.
const DefaultTraceCapacity = 8192

// Attr is one ordered key/value attribute of a trace event. Attribute
// order is preserved in the JSONL export, keeping output deterministic
// (Go map iteration would not be).
type Attr struct {
	Key  string
	str  string
	num  float64
	kind attrKind
}

type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
	attrBool
)

// S builds a string attribute.
func S(key, val string) Attr { return Attr{Key: key, str: val, kind: attrString} }

// I builds an integer attribute.
func I(key string, val int64) Attr { return Attr{Key: key, num: float64(val), kind: attrInt} }

// F builds a float attribute.
func F(key string, val float64) Attr { return Attr{Key: key, num: val, kind: attrFloat} }

// B builds a boolean attribute.
func B(key string, val bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if val {
		a.num = 1
	}
	return a
}

// Event is one structured trace record. T is virtual seconds (the
// simulation clock, never wall time — wall time would break
// determinism). Dur is non-zero for spans.
//
// Seq doubles as the event's span ID: it is drawn from the trace's
// single monotonic counter, so IDs are deterministic (no randomness)
// and unique for the life of the trace. Parent links a span into a
// causal tree — 0 means root. Children may be recorded before their
// parent (the parent's ID is reserved with BeginSpan and the parent
// event lands once its end time is known), so Seq is not monotonic in
// buffer order when span trees are in play.
type Event struct {
	Seq    uint64
	Parent uint64
	T      float64
	Dur    float64
	Cat    string
	Name   string
	Attrs  []Attr
}

// Trace is a bounded ring buffer of events. When full, the oldest
// events are overwritten and counted as dropped. Single-writer: record
// only from the simulation goroutine.
type Trace struct {
	events  []Event
	head    int // index of the oldest event
	n       int // events currently in the ring
	seq     uint64
	dropped uint64
}

// NewTrace builds a trace ring holding up to capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{events: make([]Event, 0, capacity)}
}

// Event records an instantaneous event at virtual time t.
func (tr *Trace) Event(t float64, cat, name string, attrs ...Attr) {
	tr.Span(t, t, cat, name, attrs...)
}

// Span records an event covering [t0, t1] virtual seconds.
func (tr *Trace) Span(t0, t1 float64, cat, name string, attrs ...Attr) {
	if tr == nil {
		return
	}
	tr.seq++
	tr.record(Event{Seq: tr.seq, T: t0, Dur: t1 - t0, Cat: cat, Name: name, Attrs: attrs})
}

// BeginSpan reserves a span ID without recording anything. Use it when
// a span's end time is not yet known but its children need a parent to
// reference; close it later with EndSpan. IDs come off the same
// sequence counter as every other event, so they are deterministic. A
// nil trace returns 0 (the root/none ID).
func (tr *Trace) BeginSpan() uint64 {
	if tr == nil {
		return 0
	}
	tr.seq++
	return tr.seq
}

// EndSpan records the span reserved by BeginSpan: id is the reserved
// ID, parent the enclosing span (0 for root), [t0, t1] the covered
// virtual-time window. No-op when id is 0 (the nil-trace BeginSpan
// result), so instrumented code needs no "is tracing on?" branch.
func (tr *Trace) EndSpan(id, parent uint64, t0, t1 float64, cat, name string, attrs ...Attr) {
	if tr == nil || id == 0 {
		return
	}
	tr.record(Event{Seq: id, Parent: parent, T: t0, Dur: t1 - t0, Cat: cat, Name: name, Attrs: attrs})
}

// SpanUnder records a complete child span under parent and returns its
// ID (0 on a nil trace).
func (tr *Trace) SpanUnder(parent uint64, t0, t1 float64, cat, name string, attrs ...Attr) uint64 {
	if tr == nil {
		return 0
	}
	tr.seq++
	tr.record(Event{Seq: tr.seq, Parent: parent, T: t0, Dur: t1 - t0, Cat: cat, Name: name, Attrs: attrs})
	return tr.seq
}

// record appends ev to the ring, overwriting the oldest when full.
func (tr *Trace) record(ev Event) {
	if len(tr.events) < cap(tr.events) {
		tr.events = append(tr.events, ev)
		tr.n++
		return
	}
	// Ring full: overwrite the oldest.
	tr.events[tr.head] = ev
	tr.head = (tr.head + 1) % len(tr.events)
	tr.dropped++
}

// Len returns the number of buffered events.
func (tr *Trace) Len() int {
	if tr == nil {
		return 0
	}
	return tr.n
}

// Dropped returns how many events were overwritten.
func (tr *Trace) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	return tr.dropped
}

// Events returns the buffered events oldest-first.
func (tr *Trace) Events() []Event {
	if tr == nil {
		return nil
	}
	out := make([]Event, 0, tr.n)
	for i := 0; i < tr.n; i++ {
		out = append(out, tr.events[(tr.head+i)%len(tr.events)])
	}
	return out
}

// WriteJSONL writes one JSON object per buffered event, oldest first.
// The encoding is hand-rolled so attribute order (and therefore the
// byte stream) is deterministic.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	if tr == nil {
		return nil
	}
	var b []byte
	for i := 0; i < tr.n; i++ {
		ev := &tr.events[(tr.head+i)%len(tr.events)]
		b = b[:0]
		b = append(b, `{"seq":`...)
		b = strconv.AppendUint(b, ev.Seq, 10)
		b = append(b, `,"t":`...)
		b = appendJSONFloat(b, ev.T)
		if ev.Dur != 0 {
			b = append(b, `,"dur":`...)
			b = appendJSONFloat(b, ev.Dur)
		}
		if ev.Parent != 0 {
			b = append(b, `,"parent":`...)
			b = strconv.AppendUint(b, ev.Parent, 10)
		}
		b = append(b, `,"cat":`...)
		b = strconv.AppendQuote(b, ev.Cat)
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, ev.Name)
		if len(ev.Attrs) > 0 {
			b = append(b, `,"attrs":{`...)
			for j := range ev.Attrs {
				a := &ev.Attrs[j]
				if j > 0 {
					b = append(b, ',')
				}
				b = strconv.AppendQuote(b, a.Key)
				b = append(b, ':')
				switch a.kind {
				case attrString:
					b = strconv.AppendQuote(b, a.str)
				case attrInt:
					b = strconv.AppendInt(b, int64(a.num), 10)
				case attrFloat:
					b = appendJSONFloat(b, a.num)
				case attrBool:
					if a.num != 0 {
						b = append(b, "true"...)
					} else {
						b = append(b, "false"...)
					}
				}
			}
			b = append(b, '}')
		}
		b = append(b, "}\n"...)
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
