package layout

import (
	"testing"
	"testing/quick"
)

// diamond builds entry->A/B->exit with a hot and a cold arm.
func diamond() *Graph {
	return &Graph{
		Blocks: []BlockInfo{
			{Size: 32, Weight: 100}, // 0 entry
			{Size: 64, Weight: 95},  // 1 hot arm
			{Size: 64, Weight: 5},   // 2 cold arm
			{Size: 32, Weight: 100}, // 3 exit
		},
		Edges: []Edge{
			{Src: 0, Dst: 1, Weight: 95},
			{Src: 0, Dst: 2, Weight: 5},
			{Src: 1, Dst: 3, Weight: 95},
			{Src: 2, Dst: 3, Weight: 5},
		},
	}
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, b := range order {
		if b < 0 || b >= n || seen[b] {
			return false
		}
		seen[b] = true
	}
	return true
}

func TestExtTSPDiamondPrefersHotPath(t *testing.T) {
	g := diamond()
	order := ExtTSP(g)
	if !isPermutation(order, 4) {
		t.Fatalf("order = %v", order)
	}
	if order[0] != 0 {
		t.Fatalf("entry not first: %v", order)
	}
	// Hot arm must immediately follow entry.
	if order[1] != 1 {
		t.Fatalf("hot arm not adjacent to entry: %v", order)
	}
	// Score must beat the worst layout (cold arm between entry and hot).
	bad := []int{0, 2, 1, 3}
	if Score(g, order) < Score(g, bad) {
		t.Fatalf("ExtTSP score %.1f < bad layout %.1f", Score(g, order), Score(g, bad))
	}
}

func TestExtTSPImprovesOverSourceOrder(t *testing.T) {
	// A loop with an unlikely side exit placed (in source order)
	// between the loop head and body.
	g := &Graph{
		Blocks: []BlockInfo{
			{Size: 16, Weight: 10},   // 0 entry
			{Size: 32, Weight: 1000}, // 1 loop head
			{Size: 48, Weight: 3},    // 2 error path
			{Size: 64, Weight: 997},  // 3 loop body
			{Size: 16, Weight: 10},   // 4 exit
		},
		Edges: []Edge{
			{Src: 0, Dst: 1, Weight: 10},
			{Src: 1, Dst: 2, Weight: 3},
			{Src: 1, Dst: 3, Weight: 997},
			{Src: 3, Dst: 1, Weight: 990},
			{Src: 3, Dst: 4, Weight: 7},
			{Src: 2, Dst: 4, Weight: 3},
		},
	}
	src := []int{0, 1, 2, 3, 4}
	order := ExtTSP(g)
	if !isPermutation(order, 5) || order[0] != 0 {
		t.Fatalf("order = %v", order)
	}
	if Score(g, order) <= Score(g, src) {
		t.Fatalf("ExtTSP %.1f must beat source order %.1f (%v)",
			Score(g, order), Score(g, src), order)
	}
}

func TestExtTSPTrivialGraphs(t *testing.T) {
	if got := ExtTSP(&Graph{}); got != nil {
		t.Fatalf("empty graph = %v", got)
	}
	g := &Graph{Blocks: []BlockInfo{{Size: 10, Weight: 1}}}
	if got := ExtTSP(g); len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton = %v", got)
	}
}

func TestExtTSPDeterministic(t *testing.T) {
	g := diamond()
	a := ExtTSP(g)
	b := ExtTSP(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

// Property: ExtTSP always returns a permutation with entry first, and
// never scores below the identity order.
func TestPropExtTSPPermutationAndNoRegression(t *testing.T) {
	f := func(sizes []uint8, weights []uint16, edgeBits []uint16) bool {
		n := len(sizes)
		if n == 0 || n > 12 || len(weights) == 0 {
			return true
		}
		g := &Graph{Blocks: make([]BlockInfo, n)}
		for i := range g.Blocks {
			g.Blocks[i] = BlockInfo{Size: int(sizes[i]%60) + 4, Weight: uint64(weights[i%len(weights)])}
		}
		// Derive some edges from edgeBits.
		for i, eb := range edgeBits {
			src := int(eb) % n
			dst := int(eb>>4) % n
			if src == dst {
				continue
			}
			g.Edges = append(g.Edges, Edge{Src: src, Dst: dst, Weight: uint64(eb%97) + 1})
			if i > 24 {
				break
			}
		}
		order := ExtTSP(g)
		if !isPermutation(order, n) || order[0] != 0 {
			return false
		}
		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		return Score(g, order) >= Score(g, identity)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitHotCold(t *testing.T) {
	g := diamond()
	order := []int{0, 1, 2, 3}
	hot, cold := SplitHotCold(g, order, 0.1)
	// Block 2 (weight 5, max 100, threshold 10) is cold.
	if len(cold) != 1 || cold[0] != 2 {
		t.Fatalf("cold = %v", cold)
	}
	if len(hot) != 3 || hot[0] != 0 || hot[1] != 1 || hot[2] != 3 {
		t.Fatalf("hot = %v", hot)
	}
}

func TestSplitHotColdEntryAlwaysHot(t *testing.T) {
	g := &Graph{Blocks: []BlockInfo{{Size: 8, Weight: 0}, {Size: 8, Weight: 100}}}
	hot, cold := SplitHotCold(g, []int{0, 1}, 0.5)
	if len(hot) == 0 || hot[0] != 0 {
		t.Fatalf("entry must stay hot: hot=%v cold=%v", hot, cold)
	}
}

func TestSplitHotColdZeroWeightIsCold(t *testing.T) {
	g := &Graph{Blocks: []BlockInfo{
		{Size: 8, Weight: 10}, {Size: 8, Weight: 0}, {Size: 8, Weight: 10},
	}}
	hot, cold := SplitHotCold(g, []int{0, 1, 2}, 0)
	if len(cold) != 1 || cold[0] != 1 {
		t.Fatalf("hot=%v cold=%v", hot, cold)
	}
}

func chainGraph() *CallGraph {
	// main -> a (hot), a -> b (hot), main -> c (cold), d isolated.
	return &CallGraph{
		Nodes: []FuncNode{
			{Name: "main", Size: 100, Weight: 10},
			{Name: "a", Size: 200, Weight: 1000},
			{Name: "b", Size: 150, Weight: 900},
			{Name: "c", Size: 300, Weight: 5},
			{Name: "d", Size: 50, Weight: 0},
		},
		Arcs: []Arc{
			{Caller: 0, Callee: 1, Weight: 1000},
			{Caller: 1, Callee: 2, Weight: 900},
			{Caller: 0, Callee: 3, Weight: 5},
		},
	}
}

func posIn(order []int, f int) int {
	for i, x := range order {
		if x == f {
			return i
		}
	}
	return -1
}

func TestC3ClustersHotChains(t *testing.T) {
	cg := chainGraph()
	order := C3(cg, 0)
	if !isPermutation(order, 5) {
		t.Fatalf("order = %v", order)
	}
	// Hot chain main->a->b must be contiguous and in call order.
	pm, pa, pb := posIn(order, 0), posIn(order, 1), posIn(order, 2)
	if pa != pm+1 || pb != pa+1 {
		t.Fatalf("hot chain not contiguous: %v", order)
	}
}

func TestC3RespectsClusterSizeLimit(t *testing.T) {
	cg := chainGraph()
	// Limit below main+a: nothing merges with main.
	order := C3(cg, 250)
	pm, pa := posIn(order, 0), posIn(order, 1)
	// a (weight 1000, size 200 => density 5) still sorts before main.
	if pa > pm && pa == pm+1 {
		t.Fatalf("size limit ignored: %v", order)
	}
	// All functions still present.
	if !isPermutation(order, 5) {
		t.Fatalf("order = %v", order)
	}
}

func TestC3CalleeNotHeadSkipped(t *testing.T) {
	// a->b (100), c->b (90): after a|b merge, c cannot capture b.
	cg := &CallGraph{
		Nodes: []FuncNode{
			{Name: "a", Size: 10, Weight: 100},
			{Name: "b", Size: 10, Weight: 200},
			{Name: "c", Size: 10, Weight: 90},
		},
		Arcs: []Arc{
			{Caller: 0, Callee: 1, Weight: 100},
			{Caller: 2, Callee: 1, Weight: 90},
		},
	}
	order := C3(cg, 0)
	pa, pb := posIn(order, 0), posIn(order, 1)
	if pb != pa+1 {
		t.Fatalf("a-b adjacency lost: %v", order)
	}
}

func TestC3ParallelArcsSummed(t *testing.T) {
	// Two a->b arcs of 60 outweigh one a->c arc of 100.
	cg := &CallGraph{
		Nodes: []FuncNode{
			{Name: "a", Size: 10, Weight: 1},
			{Name: "b", Size: 10, Weight: 1},
			{Name: "c", Size: 10, Weight: 1},
		},
		Arcs: []Arc{
			{Caller: 0, Callee: 1, Weight: 60},
			{Caller: 0, Callee: 1, Weight: 60},
			{Caller: 0, Callee: 2, Weight: 100},
		},
	}
	order := C3(cg, 0)
	pa, pb := posIn(order, 0), posIn(order, 1)
	if pb != pa+1 {
		t.Fatalf("summed arcs not preferred: %v", order)
	}
}

func TestPettisHansenBasic(t *testing.T) {
	cg := chainGraph()
	order := PettisHansen(cg)
	if !isPermutation(order, 5) {
		t.Fatalf("order = %v", order)
	}
	// a and b joined by the heaviest edge must be adjacent.
	pa, pb := posIn(order, 1), posIn(order, 2)
	if pb-pa != 1 && pa-pb != 1 {
		t.Fatalf("heaviest edge endpoints not adjacent: %v", order)
	}
}

func TestC3BeatsUnsortedProximity(t *testing.T) {
	cg := chainGraph()
	identity := []int{0, 1, 2, 3, 4}
	worst := []int{3, 0, 4, 2, 1} // scatter the hot chain
	c3 := C3(cg, 0)
	if TSPProximity(cg, c3) < TSPProximity(cg, worst) {
		t.Fatalf("C3 proximity %.3f < scattered %.3f",
			TSPProximity(cg, c3), TSPProximity(cg, worst))
	}
	_ = identity
}

// Property: C3 and PettisHansen always return permutations.
func TestPropFunctionSortsPermutation(t *testing.T) {
	f := func(sizes []uint8, arcBits []uint16) bool {
		n := len(sizes)
		if n == 0 || n > 15 {
			return true
		}
		cg := &CallGraph{Nodes: make([]FuncNode, n)}
		for i := range cg.Nodes {
			cg.Nodes[i] = FuncNode{Size: int(sizes[i]%100) + 1, Weight: uint64(sizes[i])}
		}
		for _, ab := range arcBits {
			caller := int(ab) % n
			callee := int(ab>>5) % n
			cg.Arcs = append(cg.Arcs, Arc{Caller: caller, Callee: callee, Weight: uint64(ab%31) + 1})
		}
		return isPermutation(C3(cg, 0), n) && isPermutation(PettisHansen(cg), n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyCallGraphs(t *testing.T) {
	if C3(&CallGraph{}, 0) != nil {
		t.Error("empty C3")
	}
	if PettisHansen(&CallGraph{}) != nil {
		t.Error("empty PH")
	}
}
