package layout

import "sort"

// CallGraph is a weighted, directed call graph used for function
// sorting. Node ids are indices into Nodes.
type CallGraph struct {
	Nodes []FuncNode
	Arcs  []Arc
}

// FuncNode describes one function for placement purposes.
type FuncNode struct {
	Name   string
	Size   int    // code bytes
	Weight uint64 // call/entry count
}

// Arc is a weighted caller→callee edge. Parallel arcs are allowed and
// are summed by the algorithms.
type Arc struct {
	Caller, Callee int
	Weight         uint64
}

// DefaultMaxClusterSize is the C3 merging threshold: clusters are not
// grown past the size of a memory page, following Ottoni & Maher.
const DefaultMaxClusterSize = 4096

// C3 implements the Call-Chain Clustering algorithm (Ottoni & Maher,
// CGO'17), the function-sorting pass HHVM uses for its code cache
// (paper Section V-B). It returns node ids in placement order.
//
// Each function starts in its own cluster. Arcs are processed by
// decreasing weight; an arc caller→callee appends the callee's cluster
// to the caller's unless (a) they are already in the same cluster,
// (b) the callee is not the head of its cluster (its locality is
// already decided), or (c) the merged size exceeds maxClusterSize.
// Final clusters are emitted by decreasing hotness density.
func C3(cg *CallGraph, maxClusterSize int) []int {
	if maxClusterSize <= 0 {
		maxClusterSize = DefaultMaxClusterSize
	}
	n := len(cg.Nodes)
	if n == 0 {
		return nil
	}

	// Coalesce parallel arcs.
	type pair struct{ caller, callee int }
	arcW := make(map[pair]uint64)
	for _, a := range cg.Arcs {
		if a.Caller == a.Callee {
			continue
		}
		arcW[pair{a.Caller, a.Callee}] += a.Weight
	}
	arcs := make([]Arc, 0, len(arcW))
	for p, w := range arcW {
		arcs = append(arcs, Arc{Caller: p.caller, Callee: p.callee, Weight: w})
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].Weight != arcs[j].Weight {
			return arcs[i].Weight > arcs[j].Weight
		}
		if arcs[i].Caller != arcs[j].Caller {
			return arcs[i].Caller < arcs[j].Caller
		}
		return arcs[i].Callee < arcs[j].Callee
	})

	type cluster struct {
		funcs  []int
		size   int
		weight uint64
	}
	clusterOf := make([]*cluster, n)
	for i := 0; i < n; i++ {
		clusterOf[i] = &cluster{
			funcs:  []int{i},
			size:   cg.Nodes[i].Size,
			weight: cg.Nodes[i].Weight,
		}
	}

	for _, a := range arcs {
		cc := clusterOf[a.Caller]
		ce := clusterOf[a.Callee]
		if cc == ce {
			continue
		}
		if ce.funcs[0] != a.Callee {
			continue // callee's predecessor already chosen
		}
		if cc.size+ce.size > maxClusterSize {
			continue
		}
		cc.funcs = append(cc.funcs, ce.funcs...)
		cc.size += ce.size
		cc.weight += ce.weight
		for _, f := range ce.funcs {
			clusterOf[f] = cc
		}
	}

	// Unique clusters in deterministic order.
	seen := make(map[*cluster]bool)
	var clusters []*cluster
	for i := 0; i < n; i++ {
		c := clusterOf[i]
		if !seen[c] {
			seen[c] = true
			clusters = append(clusters, c)
		}
	}
	density := func(c *cluster) float64 {
		if c.size == 0 {
			return 0
		}
		return float64(c.weight) / float64(c.size)
	}
	sort.SliceStable(clusters, func(i, j int) bool {
		di, dj := density(clusters[i]), density(clusters[j])
		if di != dj {
			return di > dj
		}
		return clusters[i].funcs[0] < clusters[j].funcs[0]
	})

	order := make([]int, 0, n)
	for _, c := range clusters {
		order = append(order, c.funcs...)
	}
	return order
}

// PettisHansen implements the classic Pettis-Hansen function-ordering
// heuristic as the comparison baseline: the call graph is treated as
// undirected; chains are repeatedly merged along the heaviest edge,
// choosing the orientation (of the four possible concatenations) that
// joins the two chain endpoints adjacent to the edge.
func PettisHansen(cg *CallGraph) []int {
	n := len(cg.Nodes)
	if n == 0 {
		return nil
	}
	type pair struct{ a, b int } // a < b
	edgeW := make(map[pair]uint64)
	for _, arc := range cg.Arcs {
		if arc.Caller == arc.Callee {
			continue
		}
		a, b := arc.Caller, arc.Callee
		if a > b {
			a, b = b, a
		}
		edgeW[pair{a, b}] += arc.Weight
	}
	type edge struct {
		a, b int
		w    uint64
	}
	edges := make([]edge, 0, len(edgeW))
	for p, w := range edgeW {
		edges = append(edges, edge{p.a, p.b, w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	chainOf := make([]*chainPH, n)
	for i := 0; i < n; i++ {
		chainOf[i] = &chainPH{funcs: []int{i}}
	}
	for _, e := range edges {
		ca, cb := chainOf[e.a], chainOf[e.b]
		if ca == cb {
			continue
		}
		// Orient so that e.a and e.b end up as close as possible:
		// reverse chains so a is at ca's tail and b at cb's head.
		if ca.funcs[0] == e.a && len(ca.funcs) > 1 {
			reverseInts(ca.funcs)
		}
		if cb.funcs[len(cb.funcs)-1] == e.b && len(cb.funcs) > 1 {
			reverseInts(cb.funcs)
		}
		ca.funcs = append(ca.funcs, cb.funcs...)
		for _, f := range cb.funcs {
			chainOf[f] = ca
		}
	}

	seen := make(map[*chainPH]bool)
	var chains []*chainPH
	for i := 0; i < n; i++ {
		c := chainOf[i]
		if !seen[c] {
			seen[c] = true
			chains = append(chains, c)
		}
	}
	// Hotter chains first.
	weightOf := func(c *chainPH) uint64 {
		var w uint64
		for _, f := range c.funcs {
			w += cg.Nodes[f].Weight
		}
		return w
	}
	sort.SliceStable(chains, func(i, j int) bool {
		wi, wj := weightOf(chains[i]), weightOf(chains[j])
		if wi != wj {
			return wi > wj
		}
		return chains[i].funcs[0] < chains[j].funcs[0]
	})
	order := make([]int, 0, n)
	for _, c := range chains {
		order = append(order, c.funcs...)
	}
	return order
}

type chainPH struct{ funcs []int }

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// TSPProximity evaluates a function order: the sum over arcs of
// weight / (1 + distance-in-bytes between caller and callee starts).
// Used by benches to compare C3, Pettis-Hansen and unsorted layouts;
// higher is better (hot caller/callee pairs close together).
func TSPProximity(cg *CallGraph, order []int) float64 {
	addr := make([]int, len(cg.Nodes))
	pos := 0
	for _, f := range order {
		addr[f] = pos
		pos += cg.Nodes[f].Size
	}
	total := 0.0
	for _, a := range cg.Arcs {
		if a.Caller == a.Callee {
			continue
		}
		d := addr[a.Caller] - addr[a.Callee]
		if d < 0 {
			d = -d
		}
		total += float64(a.Weight) / float64(1+d)
	}
	return total
}
