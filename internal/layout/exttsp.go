// Package layout implements the profile-guided code-layout algorithms
// the paper's Section V builds on: Ext-TSP basic-block reordering with
// hot/cold splitting (Newell & Pupyrev, used by HHVM and BOLT) and the
// C3 function-sorting algorithm (Ottoni & Maher, CGO'17), plus a
// Pettis-Hansen baseline for comparison benches.
//
// All algorithms are pure: they consume weighted graphs and produce
// orderings. The JIT maps translations onto these graphs and applies
// the resulting orders when placing code in the code cache.
package layout

import "sort"

// Graph is a weighted CFG prepared for block layout. Block 0 is the
// entry and must remain first in any produced order.
type Graph struct {
	Blocks []BlockInfo
	Edges  []Edge
}

// BlockInfo describes one layout unit (a Vasm basic block).
type BlockInfo struct {
	Size   int    // code bytes
	Weight uint64 // execution count
}

// Edge is a weighted branch between blocks.
type Edge struct {
	Src, Dst int
	Weight   uint64
}

// Ext-TSP scoring constants from Newell & Pupyrev: a fall-through
// branch scores its full weight; short forward/backward jumps score a
// distance-discounted fraction.
const (
	fallthroughFactor = 1.0
	forwardFactor     = 0.1
	backwardFactor    = 0.1
	forwardDistance   = 1024
	backwardDistance  = 640
)

// Score computes the Ext-TSP objective for the given block order: the
// higher, the better the expected I-cache/branch behaviour.
func Score(g *Graph, order []int) float64 {
	addr := make([]int, len(g.Blocks))
	pos := 0
	for _, b := range order {
		addr[b] = pos
		pos += g.Blocks[b].Size
	}
	total := 0.0
	for _, e := range g.Edges {
		if e.Src == e.Dst || e.Weight == 0 {
			continue
		}
		srcEnd := addr[e.Src] + g.Blocks[e.Src].Size
		dst := addr[e.Dst]
		w := float64(e.Weight)
		switch {
		case srcEnd == dst:
			total += fallthroughFactor * w
		case srcEnd < dst && dst-srcEnd < forwardDistance:
			d := float64(dst - srcEnd)
			total += forwardFactor * w * (1 - d/forwardDistance)
		case srcEnd > dst && srcEnd-dst < backwardDistance:
			d := float64(srcEnd - dst)
			total += backwardFactor * w * (1 - d/backwardDistance)
		}
	}
	return total
}

// chain is a mutable sequence of blocks during greedy merging.
type chain struct {
	blocks []int
	score  float64 // cached self-score contribution (not strictly needed)
}

// ExtTSP orders the graph's blocks to (approximately) maximize Score.
// It uses the greedy chain-merging construction from the Ext-TSP
// paper: every block starts as a singleton chain; at each step the
// merge (of any pair of chains, in either orientation) with the
// highest score gain is applied. The entry block is pinned to the
// front of its chain and the final order.
func ExtTSP(g *Graph) []int {
	n := len(g.Blocks)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}

	chains := make([]*chain, n)
	chainOf := make([]*chain, n)
	for i := 0; i < n; i++ {
		c := &chain{blocks: []int{i}}
		chains[i] = c
		chainOf[i] = c
	}

	// To score a candidate merged chain in isolation we lay out only
	// its blocks contiguously and count only edges internal to it.
	inChain := make([]int, n) // block -> chain serial for filtering
	serial := 0
	markChain := func(blocks []int) {
		serial++
		for _, b := range blocks {
			inChain[b] = serial
		}
	}
	chainScore := func(blocks []int) float64 {
		markChain(blocks)
		addr := make(map[int]int, len(blocks))
		pos := 0
		for _, b := range blocks {
			addr[b] = pos
			pos += g.Blocks[b].Size
		}
		total := 0.0
		for _, e := range g.Edges {
			if e.Src == e.Dst || e.Weight == 0 {
				continue
			}
			if inChain[e.Src] != serial || inChain[e.Dst] != serial {
				continue
			}
			srcEnd := addr[e.Src] + g.Blocks[e.Src].Size
			dst := addr[e.Dst]
			w := float64(e.Weight)
			switch {
			case srcEnd == dst:
				total += fallthroughFactor * w
			case srcEnd < dst && dst-srcEnd < forwardDistance:
				total += forwardFactor * w * (1 - float64(dst-srcEnd)/forwardDistance)
			case srcEnd > dst && srcEnd-dst < backwardDistance:
				total += backwardFactor * w * (1 - float64(srcEnd-dst)/backwardDistance)
			}
		}
		return total
	}

	for _, c := range chains {
		c.score = chainScore(c.blocks)
	}

	live := make(map[*chain]bool, n)
	for _, c := range chains {
		live[c] = true
	}
	entryChain := chainOf[0]

	for len(live) > 1 {
		var bestA, bestB *chain
		bestGain := 0.0
		var bestMerged []int
		liveList := make([]*chain, 0, len(live))
		for c := range live {
			liveList = append(liveList, c)
		}
		// Deterministic iteration: order by first block id.
		sort.Slice(liveList, func(i, j int) bool {
			return liveList[i].blocks[0] < liveList[j].blocks[0]
		})
		for i := 0; i < len(liveList); i++ {
			for j := i + 1; j < len(liveList); j++ {
				a, b := liveList[i], liveList[j]
				// Candidate orientations. The entry chain only accepts
				// merges that keep the entry first.
				var candidates [][]int
				ab := append(append([]int{}, a.blocks...), b.blocks...)
				ba := append(append([]int{}, b.blocks...), a.blocks...)
				switch {
				case a == entryChain:
					candidates = [][]int{ab}
				case b == entryChain:
					candidates = [][]int{ba}
				default:
					candidates = [][]int{ab, ba}
				}
				base := a.score + b.score
				for _, cand := range candidates {
					gain := chainScore(cand) - base
					if gain > bestGain {
						bestGain = gain
						bestA, bestB = a, b
						bestMerged = cand
					}
				}
			}
		}
		if bestA == nil {
			break // no merge improves the score
		}
		merged := &chain{blocks: bestMerged, score: bestA.score + bestB.score + bestGain}
		delete(live, bestA)
		delete(live, bestB)
		live[merged] = true
		for _, b := range bestMerged {
			chainOf[b] = merged
		}
		if bestA == entryChain || bestB == entryChain {
			entryChain = merged
		}
	}

	// Concatenate remaining chains: entry chain first, then by
	// decreasing total weight density, ties by first block id.
	rest := make([]*chain, 0, len(live))
	for c := range live {
		if c != entryChain {
			rest = append(rest, c)
		}
	}
	density := func(c *chain) float64 {
		var w uint64
		size := 0
		for _, b := range c.blocks {
			w += g.Blocks[b].Weight
			size += g.Blocks[b].Size
		}
		if size == 0 {
			return 0
		}
		return float64(w) / float64(size)
	}
	sort.Slice(rest, func(i, j int) bool {
		di, dj := density(rest[i]), density(rest[j])
		if di != dj {
			return di > dj
		}
		return rest[i].blocks[0] < rest[j].blocks[0]
	})

	order := append([]int{}, entryChain.blocks...)
	for _, c := range rest {
		order = append(order, c.blocks...)
	}

	// Safety net: the greedy merge maximizes within-chain score, but
	// the final chain concatenation can occasionally land below the
	// source order on adversarial graphs (accidental fallthroughs in
	// the original order that cross chain boundaries here). Never
	// return a layout worse than the one the compiler already had.
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	if Score(g, order) < Score(g, identity) {
		return identity
	}
	return order
}

// SplitHotCold partitions an ordered block list into hot and cold
// sections. A block is cold when its weight is zero or below
// coldFraction of the maximum block weight. The relative order within
// each section is preserved, and the entry block is always hot.
func SplitHotCold(g *Graph, order []int, coldFraction float64) (hot, cold []int) {
	var maxW uint64
	for _, b := range g.Blocks {
		if b.Weight > maxW {
			maxW = b.Weight
		}
	}
	threshold := uint64(coldFraction * float64(maxW))
	for _, b := range order {
		if b == 0 || (g.Blocks[b].Weight > threshold && g.Blocks[b].Weight > 0) {
			hot = append(hot, b)
		} else {
			cold = append(cold, b)
		}
	}
	return hot, cold
}
