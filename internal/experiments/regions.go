package experiments

import (
	"fmt"
	"io"
	"strings"

	"jumpstart/internal/cluster"
	"jumpstart/internal/core"
	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/netsim"
	"jumpstart/internal/parallel"
	"jumpstart/internal/prof"
	"jumpstart/internal/server"
)

// regionsSeeders is how many independent seeders feed the consensus
// merge in the single-server half of the regions experiment.
const regionsSeeders = 3

// RegionsSeeder is one contributing seeder: its traffic seed, how many
// requests its profile covers, and the warmup loss of a consumer
// booted from its package alone.
type RegionsSeeder struct {
	Seed     uint64
	Requests int64
	Loss     float64
}

// RegionsPoint is one multi-region fleet run.
type RegionsPoint struct {
	Name      string
	Aggregate bool    // seeder aggregation on
	Loss      float64 // fleet capacity loss over the window
	Crashes   int
	Fallbacks int
	Failovers int // replica legs that failed before a fetch was served
	Consensus int // consensus packages published
	AggBoots  int // boots from consensus packages
	PropOK    int // cross-region transfers completed
	PropFail  int // transfers the long-haul network defeated
	Exhausted int // fallbacks with the failover-exhausted reason
}

// RegionsResult is the multi-region store + seeder aggregation
// experiment.
type RegionsResult struct {
	Seeders  []RegionsSeeder
	AggStats prof.AggregateStats
	// Aggregated-vs-best-single-seeder comparison: warmup loss and
	// steady-state capacity of a consumer booted from the consensus
	// package vs from the best individual seeder's package.
	LossBestSingle   float64
	LossAggregated   float64
	SteadyBestSingle float64 // RPS
	SteadyAggregated float64 // RPS
	CurveAggregated  cluster.WarmupCurve
	Points           []RegionsPoint
}

// Regions measures what multi-region sharded stores with seeder
// aggregation buy. Cached after the first call.
func (l *Lab) Regions() (RegionsResult, error) {
	l.regionsOnce.Do(func() {
		l.regionsRes, l.regionsErr = l.regions()
	})
	return l.regionsRes, l.regionsErr
}

func (l *Lab) regions() (RegionsResult, error) {
	steady, err := l.SteadyRPS()
	if err != nil {
		return RegionsResult{}, err
	}

	// N independent seeders: distinct traffic seeds give each a
	// genuinely different request mix, so their profiles disagree in
	// the ways the consensus merge votes over.
	seeds, err := parallel.MapErr(l.Cfg.Workers, regionsSeeders, func(i int) (*prof.Profile, error) {
		return l.seedPackageWithSeed(uint64(i + 1))
	})
	if err != nil {
		return RegionsResult{}, err
	}

	// Aggregate first — the consumer boots below must not see packages
	// the merge has already read, so every boot gets a wire-format
	// clone.
	agg, aggStats, err := prof.Aggregate(seeds)
	if err != nil {
		return RegionsResult{}, err
	}
	res := RegionsResult{AggStats: aggStats}

	clone := func(p *prof.Profile) *prof.Profile {
		out, err := prof.Decode(p.Encode())
		if err != nil {
			panic("experiments: package round-trip failed: " + err.Error())
		}
		return out
	}

	// Per-seeder consumer warmups plus the consensus consumer, all
	// against the same warm-capacity normalization.
	ticksAll, err := parallel.MapErr(l.Cfg.Workers, regionsSeeders+1, func(i int) ([]server.TickStats, error) {
		pkg := agg
		if i < regionsSeeders {
			pkg = seeds[i]
		}
		return l.Scenario.WarmupRun(core.FullJumpStart(), clone(pkg), l.Cfg.Horizon)
	})
	if err != nil {
		return RegionsResult{}, err
	}
	best := 0
	for i := 0; i < regionsSeeders; i++ {
		loss := server.CapacityLoss(ticksAll[i], steady)
		res.Seeders = append(res.Seeders, RegionsSeeder{
			Seed:     uint64(i + 1),
			Requests: seeds[i].Meta.RequestCount,
			Loss:     loss,
		})
		if loss < res.Seeders[best].Loss {
			best = i
		}
	}
	res.LossBestSingle = res.Seeders[best].Loss
	res.LossAggregated = server.CapacityLoss(ticksAll[regionsSeeders], steady)
	res.CurveAggregated = cluster.CurveFromTicks(ticksAll[regionsSeeders], steady)

	steadies, err := parallel.MapErr(l.Cfg.Workers, 2, func(i int) (float64, error) {
		pkg := seeds[best]
		if i == 1 {
			pkg = agg
		}
		st, err := l.Scenario.SteadyState(core.FullJumpStart(), clone(pkg), l.Cfg.SteadyRequests)
		if err != nil {
			return 0, err
		}
		return st.CapacityRPS, nil
	})
	if err != nil {
		return RegionsResult{}, err
	}
	res.SteadyBestSingle, res.SteadyAggregated = steadies[0], steadies[1]

	// Fleet half: the multi-region hierarchy under four network
	// regimes. Faults open at t=130 — after every publish on the
	// compressed schedule below (seeders at ~t=105, partial consensus
	// buffers flushed when C3 starts at t=125), before the first C3
	// consumers boot at t=135.
	curves, err := l.fleetCurves()
	if err != nil {
		return RegionsResult{}, err
	}
	type regime struct {
		name      string
		aggregate bool
		intra     []netsim.Fault
		inter     []netsim.Fault
	}
	regimes := []regime{
		{name: "single", aggregate: false},
		{name: "aggregated", aggregate: true},
		{name: "node_outage", aggregate: true,
			intra: []netsim.Fault{netsim.Partition(130, 1e9, "intra:r0/n0")}},
		{name: "region_outage_inter_partition", aggregate: true,
			intra: []netsim.Fault{netsim.PartitionPrefix(130, 1e9, "intra:r1/")},
			inter: []netsim.Fault{netsim.PartitionPrefix(0, 1e9, "inter:")}},
	}
	for _, rg := range regimes {
		pt, err := l.regionsFleet(rg.name, rg.aggregate, rg.intra, rg.inter, res.CurveAggregated, curves)
		if err != nil {
			return RegionsResult{}, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// seedPackageWithSeed runs one seeder whose traffic stream is forked
// from the given seed — core.SeedPackage with a per-seeder request
// mix.
func (l *Lab) seedPackageWithSeed(seed uint64) (*prof.Profile, error) {
	cfg := l.Cfg.ServerCfg
	cfg.Seed = seed
	cfg.Mode = server.ModeSeeder
	cfg.JITOpts.InstrumentOptimized = true
	s, err := server.New(l.Scenario.Site, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.WarmToServing(7200); err != nil {
		return nil, err
	}
	pkg, ok := s.SeederPackage()
	if !ok {
		return nil, fmt.Errorf("experiments: seeder %d produced no package", seed)
	}
	return pkg, nil
}

// regionsFleet runs the multi-region fleet once: 3-node shards per
// region, 2-way replication, a 60 s propagation cadence, and (when
// aggregate is set) one consensus package per two seeder outputs. The
// deployment schedule is compressed so the fault windows above land
// between publish and the C3 fetch storm.
func (l *Lab) regionsFleet(name string, aggregate bool, intra, inter []netsim.Fault,
	curveAgg cluster.WarmupCurve, curves [2]cluster.WarmupCurve) (RegionsPoint, error) {
	cfg := l.Cfg.FleetCfg
	cfg.Workers = l.Cfg.Workers
	cfg.CurveJumpStart = curves[0]
	cfg.CurveNoJumpStart = curves[1]
	cfg.CurveAggregated = curveAgg
	cfg.C1Hold = 30
	cfg.C2Hold = 90
	cfg.SeederDuration = 60
	aggN := 0
	if aggregate {
		aggN = 2
	}
	cfg.Transport = &cluster.TransportConfig{
		Net:          netsim.Config{BaseLatency: 0.02, Faults: intra},
		Client:       transport.ClientConfig{RPCTimeout: 1, Budget: 12, BackoffBase: 0.1, BackoffCap: 5},
		PackageBytes: 2048,
		ChunkSize:    512,
		Multi: &cluster.MultiConfig{
			NodesPerRegion:   3,
			Replicas:         2,
			PropagateEvery:   60,
			InterNet:         netsim.Config{BaseLatency: 0.3, Faults: inter},
			AggregateSeeders: aggN,
		},
	}
	f, err := cluster.NewFleet(cfg)
	if err != nil {
		return RegionsPoint{}, err
	}
	f.StartDeployment()
	ticks := f.Run(8 * l.Cfg.Horizon)
	propOK, propFail := f.Propagation()
	exhausted := 0
	for _, rc := range f.FallbackReasons() {
		if strings.HasPrefix(rc.Reason, "replica failover exhausted: ") {
			exhausted += rc.Count
		}
	}
	return RegionsPoint{
		Name:      name,
		Aggregate: aggregate,
		Loss:      cluster.CapacityLoss(ticks, cfg.TickSeconds),
		Crashes:   f.Crashes(),
		Fallbacks: f.Fallbacks(),
		Failovers: f.Failovers(),
		Consensus: f.ConsensusPackages(),
		AggBoots:  f.AggregatedBoots(),
		PropOK:    propOK,
		PropFail:  propFail,
		Exhausted: exhausted,
	}, nil
}

// WriteRegions renders the regions figure.
func (l *Lab) WriteRegions(w io.Writer) error {
	res, err := l.Regions()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Regions: multi-region sharded stores, seeder aggregation, cross-region propagation")
	fmt.Fprintf(w, "# consensus merge: seeders=%d funcs=%d checksum_conflicts=%d type_sites_kept=%d dropped=%d vasm_dropped=%d\n",
		res.AggStats.Seeders, res.AggStats.Funcs, res.AggStats.ChecksumConflicts,
		res.AggStats.TypeSitesKept, res.AggStats.TypeSitesDropped, res.AggStats.VasmDropped)
	fmt.Fprintln(w, "seeder,requests,loss_pct")
	for _, s := range res.Seeders {
		fmt.Fprintf(w, "%d,%d,%.1f\n", s.Seed, s.Requests, s.Loss*100)
	}
	fmt.Fprintf(w, "# warmup loss: best_single=%.1f%% aggregated=%.1f%% | steady capacity: best_single=%.0f RPS aggregated=%.0f RPS\n",
		res.LossBestSingle*100, res.LossAggregated*100,
		res.SteadyBestSingle, res.SteadyAggregated)
	fmt.Fprintln(w, "scenario,aggregate,fleet_loss_pct,crashes,fallbacks,failovers,consensus_pkgs,agg_boots,prop_ok,prop_fail,failover_exhausted")
	for _, pt := range res.Points {
		fmt.Fprintf(w, "%s,%v,%.2f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			pt.Name, pt.Aggregate, pt.Loss*100, pt.Crashes, pt.Fallbacks,
			pt.Failovers, pt.Consensus, pt.AggBoots, pt.PropOK, pt.PropFail, pt.Exhausted)
	}
	fmt.Fprintln(w, "# replica failover absorbs a node outage; a region outage records the distinct exhausted reason; propagation retries through partitions")
	fmt.Fprintln(w)
	return nil
}
