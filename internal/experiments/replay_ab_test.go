package experiments

import (
	"bytes"
	"testing"
)

// TestFiguresReplayCacheDeterminism renders every figure through the
// full cmd/experiments path with the translation replay cache on and
// off and requires byte-identical output — the figure-level statement
// of the cache's zero-observable contract (the server-level one is
// TestReplayCacheDeterminism in internal/server).
func TestFiguresReplayCacheDeterminism(t *testing.T) {
	render := func(replayOn bool) []byte {
		cfg := tinyConfig()
		cfg.ServerCfg.ReplayCache = replayOn
		lab, err := NewLab(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := lab.RunFigures(&buf, FigureOrder, 1); err != nil {
			t.Fatalf("replay=%v: %v", replayOn, err)
		}
		return buf.Bytes()
	}
	on := render(true)
	off := render(false)
	if len(on) == 0 {
		t.Fatal("replay-on run produced no output")
	}
	if !bytes.Equal(on, off) {
		i := 0
		for i < len(on) && i < len(off) && on[i] == off[i] {
			i++
		}
		lo, hi := i-80, i+80
		if lo < 0 {
			lo = 0
		}
		clip := func(b []byte) []byte {
			if hi > len(b) {
				return b[lo:]
			}
			return b[lo:hi]
		}
		t.Fatalf("figure output diverged at byte %d:\n  on:  …%q…\n  off: …%q…",
			i, clip(on), clip(off))
	}
}
