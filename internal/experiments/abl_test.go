package experiments

import "testing"

func TestAblations(t *testing.T) {
	l := quickLab(t)
	fs, err := l.FuncSort()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FuncSort: c3=%.1f ph=%.1f none=%.1f RPS; itlb c3=%.5f none=%.5f",
		fs.C3RPS, fs.PHRPS, fs.NoneRPS, fs.C3ITLB, fs.NoneITLB)
	pl, err := l.PropLayout()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PropLayout: decl=%.1f hot=%.1f aff=%.1f RPS; l1d decl=%.4f hot=%.4f aff=%.4f",
		pl.DeclaredRPS, pl.HotnessRPS, pl.AffinityRPS, pl.DeclaredL1D, pl.HotnessL1D, pl.AffinityL1D)
	bl, err := l.BlockLayout()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BlockLayout: bc=%.1f vasm=%.1f RPS; branch bc=%.4f vasm=%.4f",
		bl.BytecodeRPS, bl.VasmRPS, bl.BytecodeBranch, bl.VasmBranch)
	if pl.HotnessRPS <= pl.DeclaredRPS {
		t.Errorf("hotness layout not faster than declared")
	}
}
