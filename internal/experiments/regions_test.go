package experiments

import "testing"

// TestRegionsDirections pins the acceptance criteria of the regions
// experiment: the consensus merge actually merges (N seeders, real
// stats), a consumer boots from it no worse than from the best single
// seeder, and at fleet scale the multi-region hierarchy degrades
// gracefully under node outages, a region outage, and an inter-region
// partition — zero crashes, failovers absorbed, the distinct
// failover-exhausted reason recorded, and propagation defeated only by
// the long-haul partition.
func TestRegionsDirections(t *testing.T) {
	l := quickLab(t)
	res, err := l.Regions()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeders) != regionsSeeders || res.AggStats.Seeders != regionsSeeders {
		t.Fatalf("seeder shape: %d seeders, stats %+v", len(res.Seeders), res.AggStats)
	}
	if res.AggStats.Funcs == 0 {
		t.Fatal("consensus profile carries no functions")
	}
	for _, s := range res.Seeders {
		if s.Requests == 0 || s.Loss <= 0 || s.Loss >= 1 {
			t.Fatalf("seeder %d: requests=%d loss=%.3f", s.Seed, s.Requests, s.Loss)
		}
	}
	// The merged profile covers at least what the best single seeder
	// saw; allow a little simulation slack in the other direction.
	if res.LossAggregated > res.LossBestSingle*1.1+0.02 {
		t.Fatalf("aggregated consumer (loss %.3f) much worse than best single (%.3f)",
			res.LossAggregated, res.LossBestSingle)
	}
	if res.SteadyAggregated <= 0 || res.SteadyBestSingle <= 0 {
		t.Fatalf("steady capacities: agg=%.0f single=%.0f", res.SteadyAggregated, res.SteadyBestSingle)
	}
	if len(res.CurveAggregated.Times) == 0 {
		t.Fatal("no aggregated warmup curve measured")
	}

	byName := map[string]RegionsPoint{}
	for _, pt := range res.Points {
		byName[pt.Name] = pt
		if pt.Crashes != 0 {
			t.Errorf("%s: %d crashes", pt.Name, pt.Crashes)
		}
		if pt.Loss <= 0 || pt.Loss >= 1 {
			t.Errorf("%s: fleet loss %.3f out of range", pt.Name, pt.Loss)
		}
		// AggBoots is not asserted here: at tiny scale every
		// multi-seeder bucket's servers are all seeders, so aggregated
		// boots happen only via propagation — which the partition
		// regime cuts by design.
		if pt.Aggregate && pt.Consensus == 0 {
			t.Errorf("%s: aggregation on but no consensus packages", pt.Name)
		}
		t.Logf("%s: loss=%.2f%% fallbacks=%d failovers=%d consensus=%d agg_boots=%d prop=%d/%d exhausted=%d",
			pt.Name, pt.Loss*100, pt.Fallbacks, pt.Failovers, pt.Consensus,
			pt.AggBoots, pt.PropOK, pt.PropFail, pt.Exhausted)
	}
	if len(res.Points) != 4 {
		t.Fatalf("expected 4 fleet regimes, got %d", len(res.Points))
	}
	if pt := byName["single"]; pt.Consensus != 0 || pt.PropOK == 0 || pt.Exhausted != 0 {
		t.Errorf("single regime: %+v", pt)
	}
	if pt := byName["aggregated"]; pt.AggBoots == 0 || pt.PropOK == 0 || pt.Exhausted != 0 {
		t.Errorf("aggregated regime: %+v", pt)
	}
	if pt := byName["node_outage"]; pt.Failovers == 0 {
		t.Errorf("node outage never failed over to a replica: %+v", pt)
	}
	if pt := byName["region_outage_inter_partition"]; pt.Exhausted == 0 || pt.PropOK != 0 || pt.PropFail == 0 {
		t.Errorf("region outage + inter partition: %+v", pt)
	}
}
