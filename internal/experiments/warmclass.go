package experiments

import (
	"fmt"
	"io"

	"jumpstart/internal/cluster"
	"jumpstart/internal/obs"
	"jumpstart/internal/parallel"
	"jumpstart/internal/telemetry"
)

// warmclassRegimes are the fleet configurations the warmclass figure
// compares. Each starts from the Lab's fleet config; the mutator turns
// it into the regime.
var warmclassRegimes = []struct {
	name      string
	configure func(*cluster.Config)
}{
	{"jumpstart", func(c *cluster.Config) { c.JumpStartEnabled = true }},
	{"nojumpstart", func(c *cluster.Config) { c.JumpStartEnabled = false }},
	{"defects", func(c *cluster.Config) {
		// The Reliability experiment's defect model (half the seeded
		// packages crash-inducing, validation catches 80%), but with a
		// longer fuse: 90s of uptime per crash cycle spans enough
		// capacity samples that PELT resolves each ramp-and-collapse
		// into its own segments instead of averaging the whole loop
		// into one low-mean prefix, so crash-looping servers label
		// non-monotonic rather than warmup.
		c.JumpStartEnabled = true
		c.DefectRate = 0.5
		c.ValidationCatchRate = 0.8
		c.CrashDelay = 90
	}},
}

// warmclassRun is one regime's raw observations before they roll into
// the report.
type warmclassRun struct {
	classes []obs.Classification
	bootLat []float64
	reasons []cluster.ReasonCount
	loss    float64
	check   obs.SpanCheck
}

// WarmclassResult is the changepoint warmup-classification figure: each
// regime's per-server curve labels, boot-latency and time-to-steady
// quantiles, fallback tallies and SLO verdicts, plus the merged
// span-conservation check across every regime's boot trace.
type WarmclassResult struct {
	Report *obs.Report
	Check  obs.SpanCheck
}

// WarmclassSLO is the objective the regimes are judged against, derived
// from the experiment scale: a boot (restart gap + warmup) must finish
// within the long warmup horizon at p99, warmup itself must reach
// steady capacity within the short horizon at p95, and the fleet may
// lose at most 10% of ideal capacity over the deployment.
func (l *Lab) WarmclassSLO() obs.SLO {
	return obs.SLO{
		BootP99:         l.Cfg.LongHorizon,
		TimeToSteadyP95: l.Cfg.Horizon,
		CapacityLoss:    0.10,
	}
}

// Warmclass deploys the fleet under each regime with per-server
// capacity series and span tracing on, classifies every server's
// post-boot curve with PELT changepoint detection, and rolls the
// results into a fleet SLO report (cached after the first call).
func (l *Lab) Warmclass() (WarmclassResult, error) {
	l.warmclassOnce.Do(func() {
		l.warmclassRes, l.warmclassErr = l.warmclass()
	})
	return l.warmclassRes, l.warmclassErr
}

func (l *Lab) warmclass() (WarmclassResult, error) {
	curves, err := l.fleetCurves()
	if err != nil {
		return WarmclassResult{}, err
	}
	// The three regime deployments are independent deterministic runs:
	// fan them out and merge in regime order.
	runs, err := parallel.MapErr(l.Cfg.Workers, len(warmclassRegimes), func(i int) (warmclassRun, error) {
		cfg := l.Cfg.FleetCfg
		cfg.Workers = l.Cfg.Workers
		cfg.CurveJumpStart = curves[0]
		cfg.CurveNoJumpStart = curves[1]
		cfg.RecordSeries = true
		// A roomy private ring so a full deployment's boot spans
		// survive to validation without eviction.
		cfg.Telem = &telemetry.Set{
			Metrics: telemetry.NewRegistry(),
			Trace:   telemetry.NewTrace(1 << 17),
			Cycles:  telemetry.NewCycleProfile(),
		}
		warmclassRegimes[i].configure(&cfg)
		f, err := cluster.NewFleet(cfg)
		if err != nil {
			return warmclassRun{}, err
		}
		f.StartDeployment()
		ticks := f.Run(6 * l.Cfg.Horizon)
		run := warmclassRun{
			bootLat: f.BootLatencies(),
			reasons: f.FallbackReasons(),
			loss:    cluster.CapacityLoss(ticks, cfg.TickSeconds),
			check:   obs.ValidateSpans(cfg.Telem.Trace.Events()),
		}
		for _, xs := range f.WarmupSeries() {
			run.classes = append(run.classes, obs.Classify(xs, cfg.TickSeconds))
		}
		return run, nil
	})
	if err != nil {
		return WarmclassResult{}, err
	}

	res := WarmclassResult{Report: obs.NewReport(l.WarmclassSLO())}
	for i, run := range runs {
		rg := res.Report.Regime(warmclassRegimes[i].name)
		for _, c := range run.classes {
			rg.AddClassification(c)
		}
		for _, lat := range run.bootLat {
			rg.AddBootLatency(lat)
		}
		for _, rc := range run.reasons {
			rg.AddFallback(rc.Reason, rc.Count)
		}
		rg.SetCapacityLoss(run.loss)
		res.Check.Spans += run.check.Spans
		res.Check.Instants += run.check.Instants
		res.Check.Roots += run.check.Roots
		res.Check.Orphans += run.check.Orphans
		for _, v := range run.check.Violations {
			res.Check.Violations = append(res.Check.Violations,
				warmclassRegimes[i].name+": "+v)
		}
	}
	res.Report.AttachSpanCheck(res.Check)
	return res, nil
}

// WriteWarmclass renders the warmclass figure.
func (l *Lab) WriteWarmclass(w io.Writer) error {
	res, err := l.Warmclass()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Warmclass: changepoint warmup classification + fleet SLO report")
	slo := l.WarmclassSLO()
	fmt.Fprintf(w, "# slo: boot-p99 <= %.0fs, time-to-steady-p95 <= %.0fs, capacity-loss <= %.0f%%\n",
		slo.BootP99, slo.TimeToSteadyP95, slo.CapacityLoss*100)
	if err := res.Report.WriteText(w); err != nil {
		return err
	}
	status := "PASS"
	if !res.Report.Passed() {
		status = "FAIL"
	}
	fmt.Fprintf(w, "# overall: %s\n\n", status)
	return nil
}
