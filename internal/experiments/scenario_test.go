package experiments

import (
	"bytes"
	"strings"
	"testing"

	"jumpstart/internal/scenario"
)

func TestScenarioFigShape(t *testing.T) {
	l := quickLab(t)
	res, err := l.ScenarioFig()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid) != 2*len(scenarioKinds) {
		t.Fatalf("%d grid cells, want %d", len(res.Grid), 2*len(scenarioKinds))
	}
	byKind := map[string][2]ScenarioCell{} // [js, nojs]
	for _, c := range res.Grid {
		e := byKind[c.Kind]
		if c.JumpStart {
			e[0] = c
		} else {
			e[1] = c
		}
		byKind[c.Kind] = e
		if c.ScenLoss <= 0 || c.ScenLoss >= 1 {
			t.Fatalf("%s js=%v: demand-weighted loss = %f", c.Kind, c.JumpStart, c.ScenLoss)
		}
	}
	for _, kind := range scenarioKinds {
		pair, ok := byKind[kind.String()]
		if !ok {
			t.Fatalf("kind %s missing from grid", kind)
		}
		if pair[0].ScenLoss >= pair[1].ScenLoss {
			t.Errorf("%s: jumpstart loss %.3f not below no-jumpstart %.3f",
				kind, pair[0].ScenLoss, pair[1].ScenLoss)
		}
	}
	// Failover cells must actually have gone through a drill.
	for _, c := range byKind[scenario.Failover.String()] {
		if c.Stats.DarkTicks == 0 {
			t.Errorf("failover js=%v: no dark ticks recorded", c.JumpStart)
		}
		if c.Stats.FailoverBoots == 0 {
			t.Errorf("failover js=%v: no boots absorbed failover load", c.JumpStart)
		}
	}
	// Diurnal demand actually oscillates around nominal.
	for _, c := range byKind[scenario.Diurnal.String()] {
		if c.Stats.PeakDemand <= c.Stats.TroughDemand {
			t.Errorf("diurnal js=%v: peak %.3f <= trough %.3f",
				c.JumpStart, c.Stats.PeakDemand, c.Stats.TroughDemand)
		}
	}

	g := res.Geometry
	if g.SmallSteadyRPS <= 0 {
		t.Fatalf("small-geometry steady capacity = %f", g.SmallSteadyRPS)
	}
	// Halved caches and TLBs must cost warm capacity.
	if g.CapacityRatio <= 1 {
		t.Errorf("capacity ratio = %f, want > 1 (big %f, small %f)",
			g.CapacityRatio, g.BigSteadyRPS, g.SmallSteadyRPS)
	}
	// Profiles are execution counts, not timings: a package seeded on
	// the big geometry must warm the small server identically.
	if !g.PayloadAgnostic {
		t.Error("cross-seeded package warmed differently — payload is geometry-sensitive")
	}
	if g.MatchedT95 <= 0 || g.MismatchT95 <= g.MatchedT95 {
		t.Errorf("time-to-95%%: matched %f, mismatch %f — mismatch should be slower",
			g.MatchedT95, g.MismatchT95)
	}
	if g.UniformLoss <= 0 || g.MixedLoss <= g.UniformLoss {
		t.Errorf("fleet losses: uniform %f, mixed %f — heterogeneity should cost capacity",
			g.UniformLoss, g.MixedLoss)
	}
	if g.MixedStats.MismatchBoots == 0 {
		t.Error("two-class fleet recorded no cross-geometry boots")
	}
	if len(g.Census) != 2 {
		t.Fatalf("census = %v, want two classes", g.Census)
	}
	total := 0
	for _, n := range g.Census {
		if n == 0 {
			t.Errorf("census %v has an empty class", g.Census)
		}
		total += n
	}
	fc := l.Cfg.FleetCfg
	if servers := fc.Regions * fc.Buckets * fc.ServersPerBucket; total != servers {
		t.Errorf("census sums to %d, want %d servers", total, servers)
	}
	if res.Report == nil {
		t.Fatal("no SLO report")
	}
	t.Logf("scenario grid: %+v", res.Grid)
	t.Logf("geometry: matched t95=%.0fs mismatch t95=%.0fs uniform=%.2f%% mixed=%.2f%%",
		g.MatchedT95, g.MismatchT95, g.UniformLoss*100, g.MixedLoss*100)
}

func TestWriteScenario(t *testing.T) {
	l := quickLab(t)
	var buf bytes.Buffer
	if err := l.WriteScenario(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Scenario:", "diurnal,true,", "failover,false,",
		"# geometry:", "# overall:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
