package experiments

import (
	"bytes"
	"testing"
)

// tinyConfig is a below-Quick scale: the determinism tests build one
// fresh Lab per worker count (caches must not mask scheduling effects),
// so the per-Lab cost has to stay small.
func tinyConfig() Config {
	cfg := Quick()
	cfg.SiteCfg.Units = 3
	cfg.SiteCfg.HelpersPerUnit = 4
	cfg.SiteCfg.EndpointsPerUnit = 2
	// Fewer simulated cores caps the calibrated load — and with it the
	// number of bytecode-executing requests — far below Quick scale.
	cfg.ServerCfg.Cores = 2
	cfg.ServerCfg.CompileThreads = 2
	cfg.ServerCfg.InitCycles = 3e6
	cfg.Horizon = 90
	cfg.LongHorizon = 180
	cfg.SteadyRequests = 150
	cfg.PushInterval = 300
	cfg.FleetCfg.ServersPerBucket = 8
	return cfg
}

// TestRunFiguresParallelDeterminism is the engine's core guarantee:
// regenerating every figure through the full cmd/experiments path must
// produce byte-identical output at every worker count — the parallel
// run is a pure wall-clock optimization, not a different experiment.
func TestRunFiguresParallelDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		cfg := tinyConfig()
		cfg.Workers = workers
		lab, err := NewLab(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := lab.RunFigures(&buf, FigureOrder, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return buf.Bytes()
	}
	base := render(1)
	if len(base) == 0 {
		t.Fatal("sequential run produced no output")
	}
	for _, w := range []int{4, 0} { // 0 = one worker per CPU
		got := render(w)
		if !bytes.Equal(base, got) {
			i := 0
			for i < len(base) && i < len(got) && base[i] == got[i] {
				i++
			}
			lo, hi := i-80, i+80
			if lo < 0 {
				lo = 0
			}
			clip := func(b []byte) []byte {
				if hi > len(b) {
					return b[lo:]
				}
				return b[lo:hi]
			}
			t.Fatalf("workers=%d diverged from sequential at byte %d:\n  seq: …%q…\n  par: …%q…",
				w, i, clip(base), clip(got))
		}
	}
}

// TestSweepParallelDeterminism: the per-seed streams are forked, so the
// sweep's numbers must not depend on how seeds are scheduled.
func TestSweepParallelDeterminism(t *testing.T) {
	run := func(workers int) SweepResult {
		cfg := tinyConfig()
		cfg.Workers = workers
		res, err := Sweep(cfg, 7, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(0)
	if len(seq.PerSeed) != 2 || len(par.PerSeed) != 2 {
		t.Fatalf("wrong seed counts: %d vs %d", len(seq.PerSeed), len(par.PerSeed))
	}
	for i := range seq.PerSeed {
		if seq.PerSeed[i] != par.PerSeed[i] {
			t.Fatalf("seed %d diverged:\n  seq %+v\n  par %+v", i, seq.PerSeed[i], par.PerSeed[i])
		}
	}
	for i := range seq.Stats {
		if seq.Stats[i] != par.Stats[i] {
			t.Fatalf("stat %s diverged:\n  seq %+v\n  par %+v", seq.Stats[i].Name, seq.Stats[i], par.Stats[i])
		}
	}
	// The seeds must be genuinely different repetitions.
	if seq.PerSeed[0].Seed == seq.PerSeed[1].Seed {
		t.Fatal("sweep reused a seed")
	}
}
