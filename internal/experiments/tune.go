package experiments

import (
	"fmt"
	"io"

	"jumpstart/internal/autotune"
	"jumpstart/internal/cluster"
	"jumpstart/internal/jumpstart"
	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/obs"
	"jumpstart/internal/parallel"
	"jumpstart/internal/scenario"
	"jumpstart/internal/telemetry"
)

// tuneRemapHitRate stands in for a measured remap survival rate under
// the tuner's churn assumption (a moderate push-to-push mutation; the
// churn figure measures the full curve). Using a constant keeps every
// candidate comparable without re-running the remapper per evaluation.
const tuneRemapHitRate = 0.7

// TuneCompareCell is one (scenario, policy) verification run at full
// fidelity.
type TuneCompareCell struct {
	Scenario   string
	Policy     string // "default" or "tuned"
	Knobs      autotune.Knobs
	CapLossP99 float64
	ScenLoss   float64
	TTSP95     float64
}

// TuneResult is the SLO-driven policy search: the ranked candidate
// table plus a default-vs-winner verification across every scenario.
type TuneResult struct {
	Ranked  []autotune.Result
	Best    autotune.Knobs
	Default autotune.Knobs
	Compare []TuneCompareCell
}

// tuneGrid spans the policy knobs the search explores. PushEvery is
// sized from the lab horizon so the cadence pressure scales with the
// configured fidelity.
func (l *Lab) tuneGrid() autotune.Grid {
	h := l.Cfg.Horizon
	base := autotune.Knobs{
		PushEvery:    1.5 * h,
		CompatPolicy: jumpstart.ExactOnly,
		WarmupMode:   jumpstart.WarmupEager,
	}
	return autotune.Grid{
		Base:      base,
		PushEvery: []float64{1.5 * h, 3 * h},
		CompatPolicy: []jumpstart.CompatPolicy{
			jumpstart.ExactOnly, jumpstart.RemapTolerant,
		},
		PoolSize:   []int{0, 32},
		WarmupMode: []jumpstart.WarmupMode{jumpstart.WarmupEager, jumpstart.WarmupLazy},
	}
}

// tuneObjective scores candidates on the p99 demand-weighted shortfall
// with a small tie-breaking weight on the time-to-steady tail.
func (l *Lab) tuneObjective() autotune.Objective {
	return autotune.Objective{
		LossWeight:   1,
		SteadyWeight: 0.1,
		SteadyNorm:   l.Cfg.Horizon,
	}
}

// tuneEvaluate runs one candidate's fleet simulation under the given
// scenario kind for a budget-scaled slice of the full horizon and
// returns the SLO-facing measurement.
func (l *Lab) tuneEvaluate(k autotune.Knobs, kind scenario.Kind, budget float64,
	curves [2]cluster.WarmupCurve, lazyCurve cluster.WarmupCurve) (autotune.Measurement, error) {
	full := 6 * l.Cfg.Horizon
	dur := budget * full
	// A run shorter than one push cycle measures nothing: floor the
	// budget slice at the C1+C2 soak plus one horizon of C3 fallout.
	if min := l.Cfg.FleetCfg.C1Hold + l.Cfg.FleetCfg.C2Hold + l.Cfg.Horizon; dur < min {
		dur = min
	}
	cfg := l.Cfg.FleetCfg
	// Candidate evaluations already fan out across workers; keep each
	// simulation single-threaded.
	cfg.Workers = 1
	cfg.CurveJumpStart = curves[0]
	cfg.CurveNoJumpStart = curves[1]
	cfg.RecordSeries = true
	// Boot spans feed the time-to-steady series; each run gets a
	// private single-writer set so concurrent candidates cannot race.
	cfg.Telem = &telemetry.Set{
		Metrics: telemetry.NewRegistry(),
		Trace:   telemetry.NewTrace(1 << 17),
		Cycles:  telemetry.NewCycleProfile(),
	}
	cfg.PushEvery = k.PushEvery
	cfg.RemapPolicy = k.CompatPolicy
	if k.CompatPolicy == jumpstart.RemapTolerant {
		cfg.RemapHitRate = tuneRemapHitRate
	}
	cfg.PoolSize = k.PoolSize
	cfg.PoolBackfillRate = k.PoolBackfillRate
	cfg.WarmupMode = k.WarmupMode
	if k.WarmupMode == jumpstart.WarmupLazy {
		cfg.CurveLazy = lazyCurve
	}
	if k.FetchBudget > 0 {
		cc := transport.DefaultClientConfig()
		cc.Budget = k.FetchBudget
		cfg.Transport = &cluster.TransportConfig{Client: cc}
	}
	eng, err := scenario.New(scenario.DefaultConfig(kind, cfg.Regions, dur))
	if err != nil {
		return autotune.Measurement{}, err
	}
	cfg.Scenario = eng
	cfg.CurveFailover = curves[0].Stretch(failoverStretch)
	f, err := cluster.NewFleet(cfg)
	if err != nil {
		return autotune.Measurement{}, err
	}
	f.StartDeployment()
	ticks := f.Run(dur)
	shortfall := make([]float64, len(ticks))
	for i, t := range ticks {
		shortfall[i] = 1 - t.ScenCapacity
	}
	return autotune.Measurement{
		CapLossP99:      obs.Quantile(shortfall, 0.99),
		CapLossMean:     cluster.ScenarioCapacityLoss(ticks, cfg.TickSeconds),
		TimeToSteadyP95: obs.Quantile(f.TimesToSteady(), 0.95),
		Crashes:         f.Crashes(),
		Fallbacks:       f.Fallbacks(),
	}, nil
}

// Tune runs the SLO-driven policy autotuner (cached): a successive-
// halving search over the knob grid under the diurnal scenario, then a
// full-fidelity default-vs-winner verification on every scenario kind.
func (l *Lab) Tune() (TuneResult, error) {
	l.tuneOnce.Do(func() {
		l.tuneRes, l.tuneErr = l.tune()
	})
	return l.tuneRes, l.tuneErr
}

func (l *Lab) tune() (TuneResult, error) {
	curves, err := l.fleetCurves()
	if err != nil {
		return TuneResult{}, err
	}
	// The lazy candidates replay the healthy-network lazy curve.
	lazy, err := l.MeasureLazyCurve(l.lazyNetworks()[0])
	if err != nil {
		return TuneResult{}, err
	}
	grid := l.tuneGrid()
	ranked, err := autotune.Search(autotune.Config{
		Grid:      grid,
		Objective: l.tuneObjective(),
		Eta:       3,
		Workers:   l.Cfg.Workers,
	}, func(k autotune.Knobs, budget float64) (autotune.Measurement, error) {
		return l.tuneEvaluate(k, scenario.Diurnal, budget, curves, lazy.Curve)
	})
	if err != nil {
		return TuneResult{}, err
	}
	res := TuneResult{
		Ranked:  ranked,
		Best:    ranked[0].Knobs,
		Default: grid.Base,
	}

	// Full-fidelity verification: the winner vs the default policy on
	// every scenario kind. Independent runs — fan out, merge in order.
	policies := []struct {
		name  string
		knobs autotune.Knobs
	}{
		{"default", res.Default},
		{"tuned", res.Best},
	}
	cells, err := parallel.MapErr(l.Cfg.Workers, len(scenarioKinds)*len(policies),
		func(i int) (TuneCompareCell, error) {
			kind := scenarioKinds[i/len(policies)]
			pol := policies[i%len(policies)]
			m, err := l.tuneEvaluate(pol.knobs, kind, 1, curves, lazy.Curve)
			if err != nil {
				return TuneCompareCell{}, err
			}
			return TuneCompareCell{
				Scenario:   kind.String(),
				Policy:     pol.name,
				Knobs:      pol.knobs,
				CapLossP99: m.CapLossP99,
				ScenLoss:   m.CapLossMean,
				TTSP95:     m.TimeToSteadyP95,
			}, nil
		})
	if err != nil {
		return TuneResult{}, err
	}
	res.Compare = cells
	return res, nil
}

// WriteTune renders the policy-autotuner recommendation table.
func (l *Lab) WriteTune(w io.Writer) error {
	res, err := l.Tune()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Tune: SLO-driven policy search (successive halving, diurnal scenario)")
	fmt.Fprintln(w, "rank,knobs,score,cap_loss_p99_pct,cap_loss_mean_pct,tts_p95_s,rounds,budget,dominated")
	for i, r := range res.Ranked {
		fmt.Fprintf(w, "%d,%s,%.4f,%.2f,%.2f,%.0f,%d,%.3f,%v\n",
			i+1, r.Knobs, r.Score, r.Meas.CapLossP99*100, r.Meas.CapLossMean*100,
			r.Meas.TimeToSteadyP95, r.Rounds, r.Budget, r.Dominated)
	}
	fmt.Fprintf(w, "# recommendation: %s\n", res.Best)
	fmt.Fprintln(w, "scenario,policy,cap_loss_p99_pct,demand_weighted_loss_pct,tts_p95_s")
	beats := 0
	var defaults = map[string]float64{}
	for _, c := range res.Compare {
		fmt.Fprintf(w, "%s,%s,%.2f,%.2f,%.0f\n",
			c.Scenario, c.Policy, c.CapLossP99*100, c.ScenLoss*100, c.TTSP95)
		if c.Policy == "default" {
			defaults[c.Scenario] = c.CapLossP99
		}
	}
	for _, c := range res.Compare {
		if c.Policy == "tuned" && c.CapLossP99 < defaults[c.Scenario] {
			beats++
		}
	}
	fmt.Fprintf(w, "# tuned beats default p99 capacity loss on %d/%d scenarios\n\n",
		beats, len(scenarioKinds))
	return nil
}
