// Package experiments contains the per-figure drivers that regenerate
// the paper's evaluation (Figures 1, 2, 4a, 4b, 5, 6 plus the
// Section II-B lifespan scalars and the Section VI reliability
// dynamics). cmd/experiments prints their output; bench_test.go wraps
// them as benchmarks; EXPERIMENTS.md records their results against the
// paper's numbers.
package experiments

import (
	"fmt"
	"sync"

	"jumpstart/internal/cluster"
	"jumpstart/internal/core"
	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/microarch"
	"jumpstart/internal/netsim"
	"jumpstart/internal/parallel"
	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/workload"
)

// Config parameterizes all experiments.
type Config struct {
	SiteCfg        workload.SiteConfig
	ServerCfg      server.Config
	Horizon        float64 // warmup window, Figure 4's 600 s
	LongHorizon    float64 // Figure 1/2's ~25 min window (scaled)
	SteadyRequests int
	PushInterval   float64 // continuous-deployment cadence (Section II-B)
	FleetCfg       cluster.Config

	// Workers is the fan-out width for every parallel stage in this
	// package — the Figure 6 ablation grid, RunFigures, Sweep — and is
	// propagated into the fleet simulator's per-tick sharding
	// (overriding FleetCfg.Workers). <= 0 means one worker per CPU.
	// Every result is byte-identical at every worker count; see
	// internal/parallel for the contract.
	Workers int
}

// Default returns the experiment-scale configuration. The site is
// larger than the test-scale one and the memory hierarchy is scaled so
// that hot code and data strain the caches — the regime the paper's
// layout optimizations live in (500 MB of code vs 32 KB L1I there;
// ~1-2 MB vs 8 KB here).
func Default() Config {
	siteCfg := workload.DefaultSiteConfig()
	siteCfg.Units = 24
	siteCfg.HelpersPerUnit = 14
	siteCfg.EndpointsPerUnit = 7

	srvCfg := server.DefaultConfig()
	srvCfg.MemCfg = microarch.Config{
		LineSize: 64,
		PageSize: 4096,
		L1ISets:  16, L1IWays: 8, // 8 KB (scaled)
		L1DSets: 16, L1DWays: 8, // 8 KB
		LLCSets: 128, LLCWays: 8, // 64 KB (scaled)
		ITLBEntries: 16,
		DTLBEntries: 16,
		BPTableBits: 10,

		L1MissPenalty:     12,
		LLCMissPenalty:    60,
		TLBMissPenalty:    30,
		BranchMissPenalty: 15,
	}
	srvCfg.MicroSampleEvery = 8
	srvCfg.OfferedRPS = 400
	srvCfg.ProfileWindow = 30_000
	srvCfg.SeederCollectWindow = 10_000
	srvCfg.InitCycles = 100e6

	return Config{
		SiteCfg:        siteCfg,
		ServerCfg:      srvCfg,
		Horizon:        600,
		LongHorizon:    1500,
		SteadyRequests: 2500,
		PushInterval:   2500, // the 75-minute push cadence, at the compressed timescale
		FleetCfg:       cluster.DefaultConfig(),
	}
}

// Quick returns a reduced configuration for tests and -short benches.
func Quick() Config {
	cfg := Default()
	cfg.SiteCfg.Units = 10
	cfg.SiteCfg.HelpersPerUnit = 8
	cfg.SiteCfg.EndpointsPerUnit = 4
	cfg.ServerCfg.OfferedRPS = 400
	cfg.ServerCfg.TickSeconds = 2
	cfg.ServerCfg.ProfileWindow = 12_000
	cfg.ServerCfg.SeederCollectWindow = 4_000
	cfg.ServerCfg.InitCycles = 60e6
	cfg.Horizon = 240
	cfg.LongHorizon = 480
	cfg.SteadyRequests = 900
	cfg.PushInterval = 900
	return cfg
}

// Lab is a prepared experiment environment: one generated site plus a
// seeded, reusable profile package. A Lab is safe for concurrent use
// by multiple figure drivers: the expensive shared computations below
// are deterministic and guarded by sync.Once, so whichever figure gets
// there first computes them exactly once for everyone.
type Lab struct {
	Cfg      Config
	Scenario *core.Scenario
	Package  *prof.Profile

	steadyOnce sync.Once
	steadyRPS  float64 // cached fully-warm completion rate
	steadyErr  error

	fig2Once sync.Once
	fig2Res  WarmupResult
	fig2Err  error

	fig4Once sync.Once
	fig4Res  Fig4Result
	fig4Err  error

	curvesOnce sync.Once
	curves     [2]cluster.WarmupCurve
	curvesErr  error

	churnOnce sync.Once
	churnRes  ChurnResult
	churnErr  error

	regionsOnce sync.Once
	regionsRes  RegionsResult
	regionsErr  error

	warmclassOnce sync.Once
	warmclassRes  WarmclassResult
	warmclassErr  error

	poolOnce sync.Once
	poolRes  PoolResult
	poolErr  error

	scenarioOnce sync.Once
	scenarioRes  ScenarioResult
	scenarioErr  error

	tuneOnce sync.Once
	tuneRes  TuneResult
	tuneErr  error

	// Baseline memo: the figures overlap heavily in the raw server runs
	// they need (Figure 5's no-Jump-Start steady state is Figure 6's
	// no-Jump-Start cell; Figure 2's long no-Jump-Start warmup contains
	// Figure 4's shorter one and Figure 1's code-size curve; Figure 4's
	// Jump-Start warmup is the fleet simulator's input curve). Each
	// distinct underlying run is executed once, guarded by a per-cell
	// sync.Once, and shared. Sharing is sound because every run is
	// deterministic for its (variant, length) key; prefix reuse of
	// warmup ticks is sound because Server.Run emits exactly
	// int(horizon/TickSeconds) ticks from an identical boot.
	mu         sync.Mutex
	steadyMemo map[steadyKey]*steadyCell
	warmMemo   map[core.Variant]*warmCell
}

// steadyKey identifies one memoized steady-state measurement.
type steadyKey struct {
	v core.Variant
	n int
}

type steadyCell struct {
	once sync.Once
	st   server.SteadyStats
	err  error
}

type warmCell struct {
	once  sync.Once
	ticks []server.TickStats
	err   error
}

// NewLab generates the site, calibrates the offered load to it (the
// paper's servers take "typical production load", which saturates them
// while warming), and runs the seeder once.
func NewLab(cfg Config) (*Lab, error) {
	sc, err := core.NewScenario(cfg.SiteCfg, cfg.ServerCfg)
	if err != nil {
		return nil, err
	}
	// 0.95× warm capacity: saturated through the whole warmup,
	// including the post-C live-JIT tail, barely unsaturated at peak.
	if _, err := sc.Calibrate(0.95, cfg.Horizon); err != nil {
		return nil, err
	}
	cfg.ServerCfg = sc.ServerCfg
	pkg, err := sc.SeedPackage()
	if err != nil {
		return nil, err
	}
	return &Lab{Cfg: cfg, Scenario: sc, Package: pkg}, nil
}

// clonePkg re-decodes the package so per-experiment mutations cannot
// leak.
func (l *Lab) clonePkg() *prof.Profile {
	p, err := prof.Decode(l.Package.Encode())
	if err != nil {
		panic("experiments: package round-trip failed: " + err.Error())
	}
	return p
}

// steadyState memoizes Scenario.SteadyState by (variant, request
// count). Whichever figure asks first runs the measurement; concurrent
// callers (the Figure 6 grid fans out under RunFigures) block on the
// cell's Once and share the result. The package clone happens inside
// the cell, so a shared run costs one decode no matter how many
// figures read it.
func (l *Lab) steadyState(v core.Variant, n int) (server.SteadyStats, error) {
	l.mu.Lock()
	if l.steadyMemo == nil {
		l.steadyMemo = make(map[steadyKey]*steadyCell)
	}
	c, ok := l.steadyMemo[steadyKey{v, n}]
	if !ok {
		c = &steadyCell{}
		l.steadyMemo[steadyKey{v, n}] = c
	}
	l.mu.Unlock()
	c.once.Do(func() {
		var pkg *prof.Profile
		if v.JumpStart {
			pkg = l.clonePkg()
		}
		c.st, c.err = l.Scenario.SteadyState(v, pkg, n)
	})
	return c.st, c.err
}

// warmHorizon is the horizon each variant's shared warmup run covers:
// the longest window any figure reads. The no-Jump-Start curve serves
// Figure 1, Figure 2 and the fleet curves at LongHorizon and Figure 4
// at Horizon; the Jump-Start curve serves Figure 4 and the fleet
// curves at Horizon.
func (l *Lab) warmHorizon(v core.Variant) float64 {
	if v == (core.Variant{}) {
		return l.Cfg.LongHorizon
	}
	return l.Cfg.Horizon
}

// warmupTicks returns the tick series for a variant warmup over
// horizon, reading a prefix of the variant's shared run when it fits.
// A request past the shared horizon falls back to a direct, uncached
// run.
func (l *Lab) warmupTicks(v core.Variant, horizon float64) ([]server.TickStats, error) {
	shared := l.warmHorizon(v)
	if horizon > shared {
		var pkg *prof.Profile
		if v.JumpStart {
			pkg = l.clonePkg()
		}
		return l.Scenario.WarmupRun(v, pkg, horizon)
	}
	l.mu.Lock()
	if l.warmMemo == nil {
		l.warmMemo = make(map[core.Variant]*warmCell)
	}
	c, ok := l.warmMemo[v]
	if !ok {
		c = &warmCell{}
		l.warmMemo[v] = c
	}
	l.mu.Unlock()
	c.once.Do(func() {
		var pkg *prof.Profile
		if v.JumpStart {
			pkg = l.clonePkg()
		}
		c.ticks, c.err = l.Scenario.WarmupRun(v, pkg, shared)
	})
	if c.err != nil {
		return nil, c.err
	}
	n := int(horizon / l.Cfg.ServerCfg.TickSeconds)
	if n > len(c.ticks) {
		n = len(c.ticks)
	}
	return c.ticks[:n:n], nil
}

// ---------------------------------------------------------------------
// Figure 1: JITed code size over time (no Jump-Start).

// Fig1Point is one sample of the code-size curve.
type Fig1Point struct {
	T         float64
	CodeBytes int
	Phase     string
}

// Fig1Result is the reproduced Figure 1.
type Fig1Result struct {
	Points []Fig1Point
	// Phase landmarks (paper's A, C, D annotations).
	PointA float64 // profiling stops
	PointC float64 // optimized code live
	PointD float64 // JITing effectively ceases (code size plateaus)
	Final  int     // final code bytes
}

// Fig1 runs a no-Jump-Start server and records the code-size curve.
// The underlying run is the shared long no-Jump-Start warmup, so
// Figure 1 and Figure 2 cost one server between them.
func (l *Lab) Fig1() (Fig1Result, error) {
	ticks, err := l.warmupTicks(core.Variant{}, l.Cfg.LongHorizon)
	if err != nil {
		return Fig1Result{}, err
	}
	res := Fig1Result{}
	prevPhase := server.PhaseInit
	for _, tk := range ticks {
		res.Points = append(res.Points, Fig1Point{
			T: tk.T, CodeBytes: tk.CodeBytes, Phase: tk.Phase.String(),
		})
		if prevPhase == server.PhaseProfiling && tk.Phase != server.PhaseProfiling {
			res.PointA = tk.T
		}
		if prevPhase == server.PhaseOptimizing && tk.Phase == server.PhaseServing {
			res.PointC = tk.T
		}
		prevPhase = tk.Phase
	}
	if res.PointC == 0 && res.PointA > 0 {
		res.PointC = res.PointA // optimization finished within one tick
	}
	res.Final = ticks[len(ticks)-1].CodeBytes
	// Point D: the first time code size reaches 99% of final.
	for _, p := range res.Points {
		if p.CodeBytes >= res.Final*99/100 {
			res.PointD = p.T
			break
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Figure 2 / Figure 4b: normalized RPS over uptime; capacity loss.

// WarmupResult is a reproduced warmup curve with its capacity loss.
type WarmupResult struct {
	Ticks        []server.TickStats
	Normalized   [][2]float64
	CapacityLoss float64
}

// SteadyRPS returns the completion rate of a fully warmed server
// running the same workload — the paper's normalization basis for
// Figures 2 and 4b. It is min(offered, warm capacity), measured once
// from a warmed no-Jump-Start server and cached.
func (l *Lab) SteadyRPS() (float64, error) {
	l.steadyOnce.Do(func() {
		st, err := l.steadyState(core.Variant{}, l.Cfg.SteadyRequests/2)
		if err != nil {
			l.steadyErr = err
			return
		}
		steady := st.CapacityRPS
		if offered := l.Cfg.ServerCfg.OfferedRPS; steady > offered {
			steady = offered
		}
		l.steadyRPS = steady
	})
	return l.steadyRPS, l.steadyErr
}

// warmup runs a server variant over the horizon, normalizing by the
// fully-warm completion rate (the paper normalizes "to those of
// servers that are fully warmed up running the same workload").
func (l *Lab) warmup(v core.Variant, horizon float64) (WarmupResult, error) {
	steady, err := l.SteadyRPS()
	if err != nil {
		return WarmupResult{}, err
	}
	ticks, err := l.warmupTicks(v, horizon)
	if err != nil {
		return WarmupResult{}, err
	}
	return WarmupResult{
		Ticks:        ticks,
		Normalized:   server.NormalizedRPS(ticks, steady),
		CapacityLoss: server.CapacityLoss(ticks, steady),
	}, nil
}

// Fig2 reproduces the single-server restart curve (no Jump-Start, long
// horizon). The result is cached: the underlying run is expensive and
// deterministic.
func (l *Lab) Fig2() (WarmupResult, error) {
	l.fig2Once.Do(func() {
		l.fig2Res, l.fig2Err = l.warmup(core.Variant{}, l.Cfg.LongHorizon)
	})
	return l.fig2Res, l.fig2Err
}

// Fig4Result compares warmup with and without Jump-Start over the
// first Horizon seconds (the paper's 600 s).
type Fig4Result struct {
	JumpStart   WarmupResult
	NoJumpStart WarmupResult
	// LossReduction is the headline: 1 - lossJS/lossNoJS (paper: 54.9%).
	LossReduction float64
	// LatencySeries holds (T, avg ms) pairs per mode for Figure 4a.
	LatencyJS   [][2]float64
	LatencyNoJS [][2]float64
	// EarlyLatencyRatio compares mean latency while both serve early
	// (paper: ~3× between serving start and 250 s).
	EarlyLatencyRatio float64
}

// Fig4 reproduces Figures 4a and 4b (cached after the first call).
func (l *Lab) Fig4() (Fig4Result, error) {
	l.fig4Once.Do(func() {
		l.fig4Res, l.fig4Err = l.fig4()
	})
	return l.fig4Res, l.fig4Err
}

func (l *Lab) fig4() (Fig4Result, error) {
	js, err := l.warmup(core.FullJumpStart(), l.Cfg.Horizon)
	if err != nil {
		return Fig4Result{}, err
	}
	no, err := l.warmup(core.Variant{}, l.Cfg.Horizon)
	if err != nil {
		return Fig4Result{}, err
	}
	res := Fig4Result{JumpStart: js, NoJumpStart: no}
	if no.CapacityLoss > 0 {
		res.LossReduction = 1 - js.CapacityLoss/no.CapacityLoss
	}
	lat := func(ticks []server.TickStats) [][2]float64 {
		var out [][2]float64
		for _, tk := range ticks {
			if tk.Completed > 0 {
				out = append(out, [2]float64{tk.T, tk.AvgLatencyMS})
			}
		}
		return out
	}
	res.LatencyJS = lat(js.Ticks)
	res.LatencyNoJS = lat(no.Ticks)
	// Early-window latency ratio: first 40% of the horizon.
	cut := 0.4 * l.Cfg.Horizon
	mean := func(pts [][2]float64) float64 {
		total, n := 0.0, 0
		for _, p := range pts {
			if p[0] <= cut {
				total += p[1]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return total / float64(n)
	}
	if m := mean(res.LatencyJS); m > 0 {
		res.EarlyLatencyRatio = mean(res.LatencyNoJS) / m
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Figure 5: steady-state speedup and micro-architectural reductions.

// Fig5Result compares full Jump-Start against no Jump-Start at steady
// state.
type Fig5Result struct {
	JumpStart   server.SteadyStats
	NoJumpStart server.SteadyStats
	SpeedupPct  float64
	// Miss-rate reductions, percent (positive = Jump-Start better).
	BranchMR float64
	L1IMR    float64
	ITLBMR   float64
	L1DMR    float64
	DTLBMR   float64
	LLCMR    float64
}

func pctReduction(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - improved) / baseline * 100
}

// Fig5 reproduces the steady-state comparison. Both runs go through
// the Lab memo: the no-Jump-Start column is the same measurement as
// Figure 6's no-Jump-Start cell.
func (l *Lab) Fig5() (Fig5Result, error) {
	js, err := l.steadyState(core.FullJumpStart(), l.Cfg.SteadyRequests)
	if err != nil {
		return Fig5Result{}, err
	}
	no, err := l.steadyState(core.Variant{}, l.Cfg.SteadyRequests)
	if err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{
		JumpStart:   js,
		NoJumpStart: no,
		SpeedupPct:  (js.CapacityRPS/no.CapacityRPS - 1) * 100,
		BranchMR:    pctReduction(no.Mem.BranchMissRate(), js.Mem.BranchMissRate()),
		L1IMR:       pctReduction(no.Mem.L1IMissRate(), js.Mem.L1IMissRate()),
		ITLBMR:      pctReduction(no.Mem.ITLBMissRate(), js.Mem.ITLBMissRate()),
		L1DMR:       pctReduction(no.Mem.L1DMissRate(), js.Mem.L1DMissRate()),
		DTLBMR:      pctReduction(no.Mem.DTLBMissRate(), js.Mem.DTLBMissRate()),
		LLCMR:       pctReduction(no.Mem.LLCMissRate(), js.Mem.LLCMissRate()),
	}, nil
}

// ---------------------------------------------------------------------
// Figure 6: ablations over the Jump-Start-without-optimizations base.

// Fig6Result reports each bar of Figure 6 as percent speedup over the
// plain Jump-Start baseline.
type Fig6Result struct {
	BaselineRPS    float64
	NoJumpStartPct float64 // paper: −0.2%
	BBLayoutPct    float64 // paper: +3.8% (Section V-A)
	FuncLayoutPct  float64 // paper: +0.75% (Section V-B)
	PropReorderPct float64 // paper: +0.8% (Section V-C)
}

// Fig6 measures each Section V optimization independently against
// plain Jump-Start. The five grid cells are independent server runs,
// so they fan out across l.Cfg.Workers; results merge in the fixed
// grid order, keeping the figure identical at every worker count.
func (l *Lab) Fig6() (Fig6Result, error) {
	grid := []core.Variant{
		{JumpStart: true}, // baseline: plain Jump-Start
		{},                // no Jump-Start
		{JumpStart: true, VasmCounters: true},
		{JumpStart: true, SeededCallGraph: true},
		{JumpStart: true, PropertyOrder: true},
	}
	stats, err := parallel.MapErr(l.Cfg.Workers, len(grid), func(i int) (server.SteadyStats, error) {
		return l.steadyState(grid[i], l.Cfg.SteadyRequests)
	})
	if err != nil {
		return Fig6Result{}, err
	}
	base := stats[0]
	pct := func(s server.SteadyStats) float64 {
		return (s.CapacityRPS/base.CapacityRPS - 1) * 100
	}
	return Fig6Result{
		BaselineRPS:    base.CapacityRPS,
		NoJumpStartPct: pct(stats[1]),
		BBLayoutPct:    pct(stats[2]),
		FuncLayoutPct:  pct(stats[3]),
		PropReorderPct: pct(stats[4]),
	}, nil
}

// ---------------------------------------------------------------------
// Section II-B lifespan scalars and Section VI reliability.

// LifespanResult reports the fraction of a server's lifespan spent
// warming, under the continuous-deployment cadence.
type LifespanResult struct {
	ToDecent float64 // paper: 13% (to optimized code / decent perf)
	ToPeak   float64 // paper: 32% (to peak perf)
}

// Lifespan reproduces the Section II-B computation from the measured
// no-Jump-Start warmup curve.
func (l *Lab) Lifespan() (LifespanResult, error) {
	w, err := l.Fig2()
	if err != nil {
		return LifespanResult{}, err
	}
	steady, err := l.SteadyRPS()
	if err != nil {
		return LifespanResult{}, err
	}
	curve := cluster.CurveFromTicks(w.Ticks, steady)
	d, p := cluster.LifespanFractions(curve, l.Cfg.PushInterval)
	return LifespanResult{ToDecent: d, ToPeak: p}, nil
}

// ReliabilityResult reports the Section VI crash-loop experiment.
type ReliabilityResult struct {
	Crashes      int
	Fallbacks    int
	FinalCap     float64
	LossNoDefect float64
	LossDefect   float64
}

// Reliability deploys the fleet with and without defective packages,
// demonstrating that validation + randomized packages + fallback keep
// the site up.
func (l *Lab) Reliability() (ReliabilityResult, error) {
	curves, err := l.fleetCurves()
	if err != nil {
		return ReliabilityResult{}, err
	}
	run := func(defectRate float64) (*cluster.Fleet, []cluster.FleetTick, error) {
		cfg := l.Cfg.FleetCfg
		cfg.Workers = l.Cfg.Workers
		cfg.CurveJumpStart = curves[0]
		cfg.CurveNoJumpStart = curves[1]
		cfg.DefectRate = defectRate
		cfg.ValidationCatchRate = 0.8
		cfg.CrashDelay = 30
		f, err := cluster.NewFleet(cfg)
		if err != nil {
			return nil, nil, err
		}
		f.StartDeployment()
		ticks := f.Run(6 * l.Cfg.Horizon)
		return f, ticks, nil
	}
	_, clean, err := run(0)
	if err != nil {
		return ReliabilityResult{}, err
	}
	f, dirty, err := run(0.5)
	if err != nil {
		return ReliabilityResult{}, err
	}
	return ReliabilityResult{
		Crashes:      f.Crashes(),
		Fallbacks:    f.Fallbacks(),
		FinalCap:     dirty[len(dirty)-1].Capacity,
		LossNoDefect: cluster.CapacityLoss(clean, l.Cfg.FleetCfg.TickSeconds),
		LossDefect:   cluster.CapacityLoss(dirty, l.Cfg.FleetCfg.TickSeconds),
	}, nil
}

// BrownoutResult compares deployments fetching packages through the
// networked profile store: direct in-memory baseline, transport over a
// healthy fabric (must match the baseline exactly — the transport is
// perf-neutral when the network is), and transport under a store
// brownout covering the C3 fetch storm.
type BrownoutResult struct {
	LossDirect   float64
	LossHealthy  float64
	LossBrownout float64
	Crashes      int // brownout run; graceful degradation means 0
	Fallbacks    int // brownout run fallbacks, all with recorded reasons
	HealthyEqual bool
}

// Brownout deploys the fleet through the networked store three ways
// and reports the capacity cost of a degraded store.
func (l *Lab) Brownout() (BrownoutResult, error) {
	curves, err := l.fleetCurves()
	if err != nil {
		return BrownoutResult{}, err
	}
	run := func(tc *cluster.TransportConfig) (*cluster.Fleet, []cluster.FleetTick, error) {
		cfg := l.Cfg.FleetCfg
		cfg.Workers = l.Cfg.Workers
		cfg.CurveJumpStart = curves[0]
		cfg.CurveNoJumpStart = curves[1]
		cfg.Transport = tc
		f, err := cluster.NewFleet(cfg)
		if err != nil {
			return nil, nil, err
		}
		f.StartDeployment()
		return f, f.Run(6 * l.Cfg.Horizon), nil
	}
	healthyCfg := func() *cluster.TransportConfig {
		cc := transport.DefaultClientConfig()
		cc.Budget = 10
		return &cluster.TransportConfig{Client: cc}
	}
	_, direct, err := run(nil)
	if err != nil {
		return BrownoutResult{}, err
	}
	_, healthy, err := run(healthyCfg())
	if err != nil {
		return BrownoutResult{}, err
	}
	// Blanket the C3 phase (it starts after the C1 and C2 holds).
	browned := healthyCfg()
	c3 := l.Cfg.FleetCfg.C1Hold + l.Cfg.FleetCfg.C2Hold
	browned.Net = netsim.Config{
		BaseLatency: 0.02,
		Faults:      []netsim.Fault{netsim.Brownout(c3, c3+6*l.Cfg.Horizon, 0.97, 0.5)},
	}
	f, dirty, err := run(browned)
	if err != nil {
		return BrownoutResult{}, err
	}
	dt := l.Cfg.FleetCfg.TickSeconds
	res := BrownoutResult{
		LossDirect:   cluster.CapacityLoss(direct, dt),
		LossHealthy:  cluster.CapacityLoss(healthy, dt),
		LossBrownout: cluster.CapacityLoss(dirty, dt),
		Crashes:      f.Crashes(),
		Fallbacks:    f.Fallbacks(),
		HealthyEqual: len(direct) == len(healthy),
	}
	for i := range direct {
		if !res.HealthyEqual || direct[i] != healthy[i] {
			res.HealthyEqual = false
			break
		}
	}
	return res, nil
}

// FleetDeploy runs the full C1/C2/C3 deployment with and without
// Jump-Start, returning the fleet-level capacity losses.
func (l *Lab) FleetDeploy() (lossJS, lossNoJS float64, err error) {
	curves, err := l.fleetCurves()
	if err != nil {
		return 0, 0, err
	}
	run := func(js bool) (float64, error) {
		cfg := l.Cfg.FleetCfg
		cfg.Workers = l.Cfg.Workers
		cfg.CurveJumpStart = curves[0]
		cfg.CurveNoJumpStart = curves[1]
		cfg.JumpStartEnabled = js
		f, err := cluster.NewFleet(cfg)
		if err != nil {
			return 0, err
		}
		f.StartDeployment()
		ticks := f.Run(6 * l.Cfg.Horizon)
		return cluster.CapacityLoss(ticks, cfg.TickSeconds), nil
	}
	lossJS, err = run(true)
	if err != nil {
		return 0, 0, err
	}
	lossNoJS, err = run(false)
	return lossJS, lossNoJS, err
}

// FleetCurves measures the two single-server warmup curves (with and
// without Jump-Start) that the fleet simulator replays.
func (l *Lab) FleetCurves() (js, no cluster.WarmupCurve, err error) {
	curves, err := l.fleetCurves()
	if err != nil {
		return cluster.WarmupCurve{}, cluster.WarmupCurve{}, err
	}
	return curves[0], curves[1], nil
}

// fleetCurves measures the two warmup curves that the fleet simulator
// replays. Cached: Reliability and FleetDeploy share them, and both
// may run concurrently under RunFigures.
func (l *Lab) fleetCurves() ([2]cluster.WarmupCurve, error) {
	l.curvesOnce.Do(func() {
		l.curves, l.curvesErr = l.measureFleetCurves()
	})
	return l.curves, l.curvesErr
}

func (l *Lab) measureFleetCurves() ([2]cluster.WarmupCurve, error) {
	js, err := l.warmup(core.FullJumpStart(), l.Cfg.Horizon)
	if err != nil {
		return [2]cluster.WarmupCurve{}, err
	}
	no, err := l.warmup(core.Variant{}, l.Cfg.LongHorizon)
	if err != nil {
		return [2]cluster.WarmupCurve{}, err
	}
	steady, err := l.SteadyRPS()
	if err != nil {
		return [2]cluster.WarmupCurve{}, err
	}
	return [2]cluster.WarmupCurve{
		cluster.CurveFromTicks(js.Ticks, steady),
		cluster.CurveFromTicks(no.Ticks, steady),
	}, nil
}

// FormatBytesMB renders bytes as MB with one decimal.
func FormatBytesMB(b int) string {
	return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
}
