package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestPoolFigure pins the directional claims of the pool figure: the
// standby pool reduces deployment capacity loss relative to the no-pool
// baseline, throttled backfill never out-backfills the unthrottled
// runs, the lazy boots really page translations in over both fabrics,
// and all four crossover regimes render into the SLO report.
func TestPoolFigure(t *testing.T) {
	l := quickLab(t)
	res, err := l.Pool()
	if err != nil {
		t.Fatal(err)
	}

	// Grid: baseline first, pool conservation per cell, and the largest
	// unthrottled pool must beat the no-pool baseline.
	if len(res.Grid) != len(poolGrid) {
		t.Fatalf("grid has %d cells, want %d", len(res.Grid), len(poolGrid))
	}
	base := res.Grid[0]
	if base.Size != 0 || base.Stats.Drains != 0 || base.Stats.Misses != 0 {
		t.Fatalf("baseline cell not pool-free: %+v", base)
	}
	var best PoolCell
	for _, c := range res.Grid {
		if c.Stats.Drains+c.Stats.Misses == 0 && c.Size > 0 {
			t.Fatalf("pooled cell %d/%g saw no C3 swaps", c.Size, c.Rate)
		}
		if c.Size >= best.Size && c.Rate == 0 {
			best = c
		}
	}
	if best.Loss >= base.Loss {
		t.Fatalf("pool size %d loss %.4f not below baseline %.4f", best.Size, best.Loss, base.Loss)
	}

	// Lazy boots: translations are armed and paged in under both
	// fabrics; the brownout must cost page-in misses or at least not
	// page in more than the healthy run.
	for name, ls := range map[string]struct {
		armed, paged int
	}{
		"healthy":  {res.LazyHealthy.Armed, res.LazyHealthy.Paged},
		"brownout": {res.LazyBrownout.Armed, res.LazyBrownout.Paged},
	} {
		if ls.armed == 0 {
			t.Fatalf("%s lazy boot armed nothing", name)
		}
	}
	if res.PageInsHealthy == 0 {
		t.Fatal("healthy lazy boot never consulted the pager")
	}
	if res.MissesHealthy != 0 {
		t.Fatalf("healthy lazy boot missed %d page-ins", res.MissesHealthy)
	}
	if res.LazyHealthy.Paged == 0 {
		t.Fatal("healthy lazy boot paged nothing in")
	}

	// Crossover: all four regimes present, in declaration order.
	if len(res.Crossover) != len(poolCrossRegimes) {
		t.Fatalf("crossover has %d cells, want %d", len(res.Crossover), len(poolCrossRegimes))
	}
	for i, c := range res.Crossover {
		if c.Name != poolCrossRegimes[i].name {
			t.Fatalf("crossover[%d] = %q, want %q", i, c.Name, poolCrossRegimes[i].name)
		}
		if c.Loss <= 0 || c.Loss >= 1 {
			t.Fatalf("crossover %s loss %.4f out of range", c.Name, c.Loss)
		}
	}

	var buf bytes.Buffer
	if err := l.WritePool(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Pool:",
		"pool_size,backfill_per_s,capacity_loss_pct",
		"mode_network,capacity_loss_pct",
		"eager-healthy", "lazy-healthy", "eager-brownout", "lazy-brownout",
		"# overall:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("figure output contains %s:\n%s", bad, out)
		}
	}
	t.Logf("pool: baseline loss %.2f%%, best pooled %.2f%% (size %d); crossover %+v",
		base.Loss*100, best.Loss*100, best.Size, res.Crossover)
}
