package experiments

import (
	"fmt"
	"io"

	"jumpstart/internal/cluster"
	"jumpstart/internal/core"
	"jumpstart/internal/obs"
	"jumpstart/internal/parallel"
	"jumpstart/internal/scenario"
	"jumpstart/internal/telemetry"
)

// scenarioKinds are the dynamic-traffic regimes the figure sweeps.
var scenarioKinds = []scenario.Kind{scenario.Diurnal, scenario.FlashCrowd, scenario.Failover}

// ScenarioCell is one scenario × Jump-Start fleet run.
type ScenarioCell struct {
	Kind      string
	JumpStart bool
	Loss      float64 // plain capacity loss (server-seconds view)
	ScenLoss  float64 // demand-weighted loss (what users feel)
	Stats     cluster.ScenarioStats
}

// GeometryResult measures the cost of consuming a package on
// different hardware than it was seeded on, single-server and at fleet
// scale.
type GeometryResult struct {
	BigSteadyRPS   float64 // warm capacity of the configured geometry
	SmallSteadyRPS float64 // warm capacity of the small-geometry server
	CapacityRatio  float64 // big / small (>= 1)

	// PayloadAgnostic reports whether a package seeded on the big
	// geometry warms the small server exactly like its own-seeded
	// package. Profiles are execution counts — not timings — so this
	// should hold; it is the property that makes cross-fleet seeding
	// safe at all.
	PayloadAgnostic bool

	// MatchedCurve is the small server warming with its own-seeded
	// package, normalized against its own steady capacity.
	// MismatchCurve is the modeled cross-geometry replay curve: the
	// matched curve with every milestone stretched by the measured
	// capacity ratio (the smaller geometry pays proportionally more
	// cycles per milestone).
	MatchedCurve  cluster.WarmupCurve
	MismatchCurve cluster.WarmupCurve

	MatchedT95  float64 // seconds to 95% of steady
	MismatchT95 float64

	// Fleet-scale cost: a push over a uniform fleet vs a two-class
	// fleet whose cross-geometry boots replay MismatchCurve.
	UniformLoss float64
	MixedLoss   float64
	MixedStats  cluster.ScenarioStats
	Census      []int
}

// ScenarioResult is the dynamic-traffic + heterogeneous-fleet figure.
type ScenarioResult struct {
	Grid     []ScenarioCell
	Geometry GeometryResult
	Report   *obs.Report
}

// failoverStretch slows the Jump-Start curve for boots that absorb a
// failed-over region's load: the server divides its cycles over more
// traffic, so every JIT milestone arrives ~1.5× later.
const failoverStretch = 1.5

// smallGeometry derives the previous-generation hardware class from
// the lab's configured geometry: half the cache sets and TLB reach,
// a quarter of the branch-predictor table.
func (l *Lab) smallGeometry() core.Scenario {
	sc := *l.Scenario
	mc := sc.ServerCfg.MemCfg
	mc.L1ISets /= 2
	mc.L1DSets /= 2
	mc.LLCSets /= 2
	mc.ITLBEntries /= 2
	mc.DTLBEntries /= 2
	mc.BPTableBits -= 2
	sc.ServerCfg.MemCfg = mc
	return sc
}

// curvesEqual reports whether two warmup curves are pointwise
// identical.
func curvesEqual(a, b cluster.WarmupCurve) bool {
	if len(a.Times) != len(b.Times) || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] || a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

// MeasureGeometry runs the heterogeneous-hardware measurement (cached
// via ScenarioFig): seed a package on each geometry, consume both on
// the small one to verify payload portability, derive the
// cross-geometry replay curve from the measured capacity ratio, then
// replay it through a two-class fleet.
func (l *Lab) measureGeometry(curves [2]cluster.WarmupCurve) (GeometryResult, error) {
	res := GeometryResult{}
	small := l.smallGeometry()

	// The small geometry's own package and warm capacity.
	pkgSmall, err := small.SeedPackage()
	if err != nil {
		return res, fmt.Errorf("experiments: small-geometry seeder: %w", err)
	}
	st, err := small.SteadyState(core.Variant{}, nil, l.Cfg.SteadyRequests/2)
	if err != nil {
		return res, err
	}
	res.SmallSteadyRPS = st.CapacityRPS
	if offered := small.ServerCfg.OfferedRPS; res.SmallSteadyRPS > offered {
		// Same normalization as SteadyRPS: completion rate is
		// min(offered, warm capacity).
		res.SmallSteadyRPS = offered
	}
	// The capacity ratio compares raw warm capacities — the offered-RPS
	// clamp would hide the hardware difference when both geometries can
	// cover the offered load.
	bigSt, err := l.steadyState(core.Variant{}, l.Cfg.SteadyRequests/2)
	if err != nil {
		return res, err
	}
	res.BigSteadyRPS = bigSt.CapacityRPS
	res.CapacityRatio = 1
	if st.CapacityRPS > 0 && bigSt.CapacityRPS > st.CapacityRPS {
		res.CapacityRatio = bigSt.CapacityRPS / st.CapacityRPS
	}

	// Both consumers run on the small geometry; only the package's
	// provenance differs. Independent deterministic runs — fan out.
	runs, err := parallel.MapErr(l.Cfg.Workers, 2, func(i int) (cluster.WarmupCurve, error) {
		pkg := pkgSmall
		if i == 1 {
			pkg = l.clonePkg() // seeded on the big geometry
		}
		ticks, err := small.WarmupRun(core.FullJumpStart(), pkg, l.Cfg.Horizon)
		if err != nil {
			return cluster.WarmupCurve{}, err
		}
		return cluster.CurveFromTicks(ticks, res.SmallSteadyRPS), nil
	})
	if err != nil {
		return res, err
	}
	res.MatchedCurve = runs[0]
	res.PayloadAgnostic = curvesEqual(runs[0], runs[1])
	// The measured payloads are geometry-agnostic (profiles count
	// executions, not timings), so the residual mismatch cost is the
	// hardware itself: every warmup milestone costs the capacity ratio
	// more cycles on the geometry the package was not seeded for.
	res.MismatchCurve = res.MatchedCurve.Stretch(res.CapacityRatio)
	res.MatchedT95 = res.MatchedCurve.TimeToFraction(0.95)
	res.MismatchT95 = res.MismatchCurve.TimeToFraction(0.95)

	// Fleet scale: the same push over a uniform fleet and over a
	// two-class fleet where cross-geometry boots replay the measured
	// mismatch curve.
	losses, err := parallel.MapErr(l.Cfg.Workers, 2, func(i int) (float64, error) {
		cfg := l.Cfg.FleetCfg
		cfg.Workers = l.Cfg.Workers
		cfg.CurveJumpStart = curves[0]
		cfg.CurveNoJumpStart = curves[1]
		if i == 1 {
			cfg.GeometryClasses = 2
			cfg.CurveMismatch = res.MismatchCurve
		}
		f, err := cluster.NewFleet(cfg)
		if err != nil {
			return 0, err
		}
		f.StartDeployment()
		ticks := f.Run(6 * l.Cfg.Horizon)
		if i == 1 {
			res.MixedStats = f.ScenarioStats()
			res.Census = f.GeometryCensus()
		}
		return cluster.CapacityLoss(ticks, cfg.TickSeconds), nil
	})
	if err != nil {
		return res, err
	}
	res.UniformLoss, res.MixedLoss = losses[0], losses[1]
	return res, nil
}

// ScenarioFig runs the dynamic-traffic figure (cached).
func (l *Lab) ScenarioFig() (ScenarioResult, error) {
	l.scenarioOnce.Do(func() {
		l.scenarioRes, l.scenarioErr = l.scenarioFig()
	})
	return l.scenarioRes, l.scenarioErr
}

func (l *Lab) scenarioFig() (ScenarioResult, error) {
	curves, err := l.fleetCurves()
	if err != nil {
		return ScenarioResult{}, err
	}
	res := ScenarioResult{}

	// Part 1 — scenario grid: each kind with Jump-Start on and off.
	type gridRun struct {
		cell    ScenarioCell
		classes []obs.Classification
		bootLat []float64
		reasons []cluster.ReasonCount
	}
	horizon := 6 * l.Cfg.Horizon
	runs, err := parallel.MapErr(l.Cfg.Workers, 2*len(scenarioKinds), func(i int) (gridRun, error) {
		kind := scenarioKinds[i/2]
		js := i%2 == 0
		cfg := l.Cfg.FleetCfg
		cfg.Workers = l.Cfg.Workers
		cfg.CurveJumpStart = curves[0]
		cfg.CurveNoJumpStart = curves[1]
		cfg.JumpStartEnabled = js
		// Absorbed boots warm under the failed-over region's load on
		// top of their own: every milestone lands ~1.5× later.
		cfg.CurveFailover = curves[0].Stretch(failoverStretch)
		cfg.RecordSeries = true
		cfg.Telem = &telemetry.Set{
			Metrics: telemetry.NewRegistry(),
			Trace:   telemetry.NewTrace(1 << 17),
			Cycles:  telemetry.NewCycleProfile(),
		}
		eng, err := scenario.New(scenario.DefaultConfig(kind, cfg.Regions, horizon))
		if err != nil {
			return gridRun{}, err
		}
		cfg.Scenario = eng
		f, err := cluster.NewFleet(cfg)
		if err != nil {
			return gridRun{}, err
		}
		f.StartDeployment()
		ticks := f.Run(horizon)
		run := gridRun{
			cell: ScenarioCell{
				Kind:      kind.String(),
				JumpStart: js,
				Loss:      cluster.CapacityLoss(ticks, cfg.TickSeconds),
				ScenLoss:  cluster.ScenarioCapacityLoss(ticks, cfg.TickSeconds),
				Stats:     f.ScenarioStats(),
			},
			bootLat: f.BootLatencies(),
			reasons: f.FallbackReasons(),
		}
		for _, xs := range f.WarmupSeries() {
			run.classes = append(run.classes, obs.Classify(xs, cfg.TickSeconds))
		}
		return run, nil
	})
	if err != nil {
		return ScenarioResult{}, err
	}
	res.Report = obs.NewReport(l.WarmclassSLO())
	for _, run := range runs {
		res.Grid = append(res.Grid, run.cell)
		name := run.cell.Kind + "-nojs"
		if run.cell.JumpStart {
			name = run.cell.Kind + "-js"
		}
		rg := res.Report.Regime(name)
		for _, c := range run.classes {
			rg.AddClassification(c)
		}
		for _, lat := range run.bootLat {
			rg.AddBootLatency(lat)
		}
		for _, rc := range run.reasons {
			rg.AddFallback(rc.Reason, rc.Count)
		}
		rg.SetCapacityLoss(run.cell.ScenLoss)
	}

	// Part 2 — heterogeneous hardware.
	res.Geometry, err = l.measureGeometry(curves)
	if err != nil {
		return ScenarioResult{}, err
	}
	return res, nil
}

// WriteScenario renders the dynamic-traffic + heterogeneous-fleet
// figure.
func (l *Lab) WriteScenario(w io.Writer) error {
	res, err := l.ScenarioFig()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Scenario: dynamic traffic, failover drills, heterogeneous fleets")
	fmt.Fprintln(w, "scenario,jumpstart,capacity_loss_pct,demand_weighted_loss_pct,failover_boots,dark_ticks,peak_demand,trough_demand")
	for _, c := range res.Grid {
		fmt.Fprintf(w, "%s,%v,%.2f,%.2f,%d,%d,%.2f,%.2f\n",
			c.Kind, c.JumpStart, c.Loss*100, c.ScenLoss*100,
			c.Stats.FailoverBoots, c.Stats.DarkTicks,
			c.Stats.PeakDemand, c.Stats.TroughDemand)
	}
	g := res.Geometry
	fmt.Fprintf(w, "# geometry: big %.0f rps vs small %.0f rps warm capacity (ratio %.2f); payload-agnostic=%v\n",
		g.BigSteadyRPS, g.SmallSteadyRPS, g.CapacityRatio, g.PayloadAgnostic)
	fmt.Fprintf(w, "# geometry warmup: time-to-95%%: matched %.0fs, cross-geometry replay %.0fs\n",
		g.MatchedT95, g.MismatchT95)
	fmt.Fprintf(w, "# geometry fleet: uniform loss %.2f%%, two-class loss %.2f%% (%d mismatch boots, census %v)\n",
		g.UniformLoss*100, g.MixedLoss*100, g.MixedStats.MismatchBoots, g.Census)
	slo := l.WarmclassSLO()
	fmt.Fprintf(w, "# slo: boot-p99 <= %.0fs, time-to-steady-p95 <= %.0fs, capacity-loss <= %.0f%%\n",
		slo.BootP99, slo.TimeToSteadyP95, slo.CapacityLoss*100)
	if err := res.Report.WriteText(w); err != nil {
		return err
	}
	status := "PASS"
	if !res.Report.Passed() {
		status = "FAIL"
	}
	fmt.Fprintf(w, "# overall: %s\n\n", status)
	return nil
}
