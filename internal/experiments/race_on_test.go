//go:build race

package experiments

// raceEnabled downscales the shared quick-scale lab: the race
// detector's ~10x slowdown on top of the quick-scale suite blows past
// go test's default 10-minute package timeout on single-core CI
// hosts. The shape assertions hold at the reduced scale; full-scale
// numbers come from non-race runs and testdata/experiments_full.out.
const raceEnabled = true
