package experiments

import (
	"reflect"
	"testing"

	"jumpstart/internal/core"
)

// TestWarmupPrefixSharing pins the soundness condition behind the
// Lab's cross-figure baseline sharing: the prefix of the shared long
// run that warmupTicks hands out is byte-identical to a fresh run
// over the shorter horizon. If Server.Run ever stops being a pure
// prefix-extension (e.g. horizon-dependent behavior), this fails.
func TestWarmupPrefixSharing(t *testing.T) {
	l := quickLab(t)
	shared, err := l.warmupTicks(core.Variant{}, l.Cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := l.Scenario.WarmupRun(core.Variant{}, nil, l.Cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shared, fresh) {
		t.Fatalf("prefix of shared run diverged from a fresh run (%d vs %d ticks)",
			len(shared), len(fresh))
	}
}

// TestBaselineMemoSharing pins that the figures actually share their
// baselines: after Figures 1, 2, 4, 5 and 6 plus the fleet curves,
// the lab has executed exactly one warmup per variant and one steady
// measurement per distinct (variant, request count).
func TestBaselineMemoSharing(t *testing.T) {
	l := quickLab(t)
	if _, err := l.Fig1(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Fig2(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Fig4(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Fig5(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Fig6(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.fleetCurves(); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	warms, steadies := len(l.warmMemo), len(l.steadyMemo)
	l.mu.Unlock()
	// Figure 1, Figure 2, Figure 4's no-Jump-Start half and the fleet's
	// no-Jump-Start curve all read the one long Variant{} run; Figure
	// 4's Jump-Start half and the fleet's Jump-Start curve read the one
	// FullJumpStart run.
	if warms != 2 {
		t.Fatalf("warmup runs executed: %d, want 2 (one per variant)", warms)
	}
	// Five Figure 6 cells (one of which IS Figure 5's no-Jump-Start
	// run), Figure 5's full-Jump-Start run, and the SteadyRPS
	// normalization basis: seven distinct measurements backing eight
	// figure-level reads.
	if steadies != 7 {
		t.Fatalf("steady measurements executed: %d, want 7", steadies)
	}
}
