package experiments

import (
	"fmt"
	"io"
	"math"

	"jumpstart/internal/parallel"
	"jumpstart/internal/workload"
)

// SweepMetrics are the headline scalars measured for one seed of a
// sweep: Figure 4's warmup capacity losses and Figure 5's steady-state
// speedup.
type SweepMetrics struct {
	Seed              uint64
	LossJS            float64 // warmup capacity loss with Jump-Start
	LossNoJS          float64 // ... and without
	LossReduction     float64 // 1 - LossJS/LossNoJS (paper: 54.9%)
	EarlyLatencyRatio float64 // no-JS / JS early latency (paper: ~3x)
	SteadySpeedupPct  float64 // steady-state speedup (paper: +5.4%)
}

// SweepStat is one metric aggregated across every seed of a sweep.
type SweepStat struct {
	Name           string
	Mean, Min, Max float64
}

// SweepResult is an n-seed repetition study of the headline results.
type SweepResult struct {
	BaseSeed uint64
	PerSeed  []SweepMetrics
	Stats    []SweepStat
}

// Sweep reruns the headline comparison across n independently seeded
// sites, fanning the seeds out over cfg.Workers workers. Seed i's site
// and traffic streams derive from workload.Fork(base, 2i) and
// Fork(base, 2i+1), so every repetition is an independent stream and
// the whole sweep is deterministic at any worker count. Warmup papers
// ("Virtual Machine Warmup Blows Hot and Cold") show single-seed
// warmup results can mislead; the mean/min/max spread here is the
// cheap guard against that.
func Sweep(cfg Config, base uint64, n int) (SweepResult, error) {
	if n <= 0 {
		return SweepResult{}, fmt.Errorf("experiments: sweep needs n > 0 seeds")
	}
	per, err := parallel.MapErr(cfg.Workers, n, func(i int) (SweepMetrics, error) {
		c := cfg
		c.Workers = 1 // parallelism is across seeds, not within one
		c.SiteCfg.Seed = workload.Fork(base, 2*uint64(i))
		c.ServerCfg.Seed = workload.Fork(base, 2*uint64(i)+1)
		lab, err := NewLab(c)
		if err != nil {
			return SweepMetrics{}, fmt.Errorf("seed %d: %w", i, err)
		}
		f4, err := lab.Fig4()
		if err != nil {
			return SweepMetrics{}, fmt.Errorf("seed %d: %w", i, err)
		}
		f5, err := lab.Fig5()
		if err != nil {
			return SweepMetrics{}, fmt.Errorf("seed %d: %w", i, err)
		}
		return SweepMetrics{
			Seed:              c.SiteCfg.Seed,
			LossJS:            f4.JumpStart.CapacityLoss,
			LossNoJS:          f4.NoJumpStart.CapacityLoss,
			LossReduction:     f4.LossReduction,
			EarlyLatencyRatio: f4.EarlyLatencyRatio,
			SteadySpeedupPct:  f5.SpeedupPct,
		}, nil
	})
	if err != nil {
		return SweepResult{}, err
	}
	res := SweepResult{BaseSeed: base, PerSeed: per}
	agg := func(name string, get func(SweepMetrics) float64) {
		st := SweepStat{Name: name, Min: math.Inf(1), Max: math.Inf(-1)}
		for _, m := range per {
			v := get(m)
			st.Mean += v
			st.Min = math.Min(st.Min, v)
			st.Max = math.Max(st.Max, v)
		}
		st.Mean /= float64(len(per))
		res.Stats = append(res.Stats, st)
	}
	agg("capacity_loss_jumpstart_pct", func(m SweepMetrics) float64 { return m.LossJS * 100 })
	agg("capacity_loss_nojumpstart_pct", func(m SweepMetrics) float64 { return m.LossNoJS * 100 })
	agg("loss_reduction_pct", func(m SweepMetrics) float64 { return m.LossReduction * 100 })
	agg("early_latency_ratio", func(m SweepMetrics) float64 { return m.EarlyLatencyRatio })
	agg("steady_speedup_pct", func(m SweepMetrics) float64 { return m.SteadySpeedupPct })
	return res, nil
}

// WriteSweep renders a sweep result in the harness's CSV-ish style.
func WriteSweep(w io.Writer, res SweepResult) {
	fmt.Fprintf(w, "## Seed sweep: %d seeds forked from base %d\n", len(res.PerSeed), res.BaseSeed)
	fmt.Fprintln(w, "seed,loss_js_pct,loss_nojs_pct,loss_reduction_pct,early_latency_ratio,steady_speedup_pct")
	for _, m := range res.PerSeed {
		fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f,%.2f,%.2f\n",
			m.Seed, m.LossJS*100, m.LossNoJS*100, m.LossReduction*100,
			m.EarlyLatencyRatio, m.SteadySpeedupPct)
	}
	fmt.Fprintln(w, "metric,mean,min,max")
	for _, st := range res.Stats {
		fmt.Fprintf(w, "%s,%.2f,%.2f,%.2f\n", st.Name, st.Mean, st.Min, st.Max)
	}
	fmt.Fprintln(w)
}
