package experiments

import "testing"

// TestChurnDirections pins the acceptance criteria of the churn
// experiment: the remapper recovers real warmup benefit (a remapped
// boot beats a cold one), and at fleet scale the remap-tolerant store
// policy loses less capacity than exact-only at every (rate, cadence)
// cell.
func TestChurnDirections(t *testing.T) {
	l := quickLab(t)
	res, err := l.Churn()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rates) != len(churnRates) || len(res.Points) != len(churnRates)*len(churnCadences) {
		t.Fatalf("unexpected sweep shape: %d rates, %d points", len(res.Rates), len(res.Points))
	}
	if res.LossExact >= res.LossCold {
		t.Fatalf("exact-package warmup (%.3f) should beat cold (%.3f)", res.LossExact, res.LossCold)
	}
	for _, cr := range res.Rates {
		if cr.Remap1.Exact == 0 {
			t.Fatalf("rate %.2f: no exact remap matches — fingerprints broken", cr.Rate)
		}
		if cr.Remap1.Total() == 0 || cr.Remap2.Total() == 0 {
			t.Fatalf("rate %.2f: empty remap stats", cr.Rate)
		}
		hit := cr.Remap1.HitRate()
		if hit <= 0 || hit > 1 {
			t.Fatalf("rate %.2f: hit rate %.3f out of range", cr.Rate, hit)
		}
		if cr.LossRemapped >= res.LossCold {
			t.Fatalf("rate %.2f: remapped boot (loss %.3f) no better than cold (%.3f)",
				cr.Rate, cr.LossRemapped, res.LossCold)
		}
		t.Logf("rate %.2f: stats=%+v remap1=%+v (hit %.1f%%) remap2 hit %.1f%% loss_remapped=%.3f (exact %.3f, cold %.3f)",
			cr.Rate, cr.Stats, cr.Remap1, hit*100, cr.Remap2.HitRate()*100,
			cr.LossRemapped, res.LossExact, res.LossCold)
	}
	for _, pt := range res.Points {
		if pt.Gap <= 0 {
			t.Errorf("rate %.2f cadence %.0f: remap-tolerant (%.4f) did not beat exact-only (%.4f)",
				pt.Rate, pt.Cadence, pt.LossRemapTolerant, pt.LossExactOnly)
		}
		if pt.RemapBoots == 0 {
			t.Errorf("rate %.2f cadence %.0f: no boots used remapped packages", pt.Rate, pt.Cadence)
		}
		t.Logf("rate %.2f cadence %.0f: exact_only=%.2f%% remap_tolerant=%.2f%% gap=%.2f%% pushes=%d/%d remap_boots=%d kept=%d lost=%d",
			pt.Rate, pt.Cadence, pt.LossExactOnly*100, pt.LossRemapTolerant*100,
			pt.Gap*100, pt.PushesExactOnly, pt.PushesRemapTolerant,
			pt.RemapBoots, pt.PkgKept, pt.PkgLost)
	}
}
