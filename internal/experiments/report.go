package experiments

import (
	"bytes"
	"fmt"
	"io"

	"jumpstart/internal/parallel"
)

// FigureOrder lists every known figure in report order. RunFigures
// emits its output in this order regardless of scheduling.
var FigureOrder = []string{"1", "2", "4", "5", "6", "lifespan", "reliability", "fleet", "brownout", "churn", "regions", "warmclass", "pool", "scenario"}

// KnownFigure reports whether name is a figure RunFigures can render.
func KnownFigure(name string) bool {
	for _, f := range FigureOrder {
		if f == name {
			return true
		}
	}
	return false
}

// RunFigures renders the requested figures across workers goroutines
// and writes them to w in request order. Each figure renders into a
// private buffer and the buffers are concatenated in order, so the
// output is byte-identical at every worker count — the property the
// determinism tests pin down.
func (l *Lab) RunFigures(w io.Writer, figs []string, workers int) error {
	outs, err := parallel.MapErr(workers, len(figs), func(i int) ([]byte, error) {
		var buf bytes.Buffer
		if err := l.WriteFigure(&buf, figs[i]); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		return err
	}
	for _, b := range outs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure renders one named figure to w.
func (l *Lab) WriteFigure(w io.Writer, fig string) error {
	switch fig {
	case "1":
		return l.WriteFig1(w)
	case "2":
		return l.WriteFig2(w)
	case "4":
		return l.WriteFig4(w)
	case "5":
		return l.WriteFig5(w)
	case "6":
		return l.WriteFig6(w)
	case "lifespan":
		return l.WriteLifespan(w)
	case "reliability":
		return l.WriteReliability(w)
	case "fleet":
		return l.WriteFleet(w)
	case "brownout":
		return l.WriteBrownout(w)
	case "churn":
		return l.WriteChurn(w)
	case "regions":
		return l.WriteRegions(w)
	case "warmclass":
		return l.WriteWarmclass(w)
	case "pool":
		return l.WritePool(w)
	case "scenario":
		return l.WriteScenario(w)
	}
	return fmt.Errorf("experiments: unknown figure %q", fig)
}

// WriteFig1 renders Figure 1: code size over time.
func (l *Lab) WriteFig1(w io.Writer) error {
	res, err := l.Fig1()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Figure 1: JITed code size over time (no Jump-Start)")
	fmt.Fprintln(w, "t_seconds,code_bytes,phase")
	for i, p := range res.Points {
		if i%4 == 0 || i == len(res.Points)-1 {
			fmt.Fprintf(w, "%.0f,%d,%s\n", p.T, p.CodeBytes, p.Phase)
		}
	}
	fmt.Fprintf(w, "# A (profiling stops) = %.0fs; C (optimized live) = %.0fs; D (plateau) = %.0fs; final = %s\n",
		res.PointA, res.PointC, res.PointD, FormatBytesMB(res.Final))
	fmt.Fprintf(w, "# paper: A≈6min, C≈12min, D≈25min, ~500 MB (absolute values scale with site size)\n\n")
	return nil
}

// WriteFig2 renders Figure 2: restart capacity loss.
func (l *Lab) WriteFig2(w io.Writer) error {
	res, err := l.Fig2()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Figure 2: server capacity loss due to restart and warmup")
	fmt.Fprintln(w, "t_seconds,normalized_rps")
	for i, p := range res.Normalized {
		if i%4 == 0 || i == len(res.Normalized)-1 {
			fmt.Fprintf(w, "%.0f,%.3f\n", p[0], p[1])
		}
	}
	fmt.Fprintf(w, "# capacity loss over the window = %.1f%% (area above the curve)\n\n",
		res.CapacityLoss*100)
	return nil
}

// WriteFig4 renders Figures 4a/4b: warmup comparison.
func (l *Lab) WriteFig4(w io.Writer) error {
	res, err := l.Fig4()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Figure 4a: average latency (ms) per request over uptime")
	fmt.Fprintln(w, "t_seconds,jumpstart_ms,nojumpstart_ms")
	byT := map[float64][2]float64{}
	for _, p := range res.LatencyJS {
		e := byT[p[0]]
		e[0] = p[1]
		byT[p[0]] = e
	}
	for _, p := range res.LatencyNoJS {
		e := byT[p[0]]
		e[1] = p[1]
		byT[p[0]] = e
	}
	for _, p := range res.LatencyNoJS {
		e := byT[p[0]]
		fmt.Fprintf(w, "%.0f,%.1f,%.1f\n", p[0], e[0], e[1])
	}
	fmt.Fprintf(w, "# early latency ratio (no-JS / JS) = %.1fx (paper: ~3x)\n\n", res.EarlyLatencyRatio)

	fmt.Fprintln(w, "## Figure 4b: normalized RPS over uptime")
	fmt.Fprintln(w, "t_seconds,jumpstart,nojumpstart")
	n := len(res.NoJumpStart.Normalized)
	for i := 0; i < n; i++ {
		tm := res.NoJumpStart.Normalized[i][0]
		js := 0.0
		for _, p := range res.JumpStart.Normalized {
			if p[0] == tm {
				js = p[1]
			}
		}
		fmt.Fprintf(w, "%.0f,%.3f,%.3f\n", tm, js, res.NoJumpStart.Normalized[i][1])
	}
	fmt.Fprintf(w, "# capacity loss: jumpstart=%.1f%% (paper 35.3%%), no-jumpstart=%.1f%% (paper 78.3%%)\n",
		res.JumpStart.CapacityLoss*100, res.NoJumpStart.CapacityLoss*100)
	fmt.Fprintf(w, "# HEADLINE capacity-loss reduction = %.1f%% (paper: 54.9%%)\n\n", res.LossReduction*100)
	return nil
}

// WriteFig5 renders Figure 5: steady-state speedup and miss reductions.
func (l *Lab) WriteFig5(w io.Writer) error {
	res, err := l.Fig5()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Figure 5: steady-state speedup and miss reductions (Jump-Start vs no Jump-Start)")
	fmt.Fprintln(w, "metric,measured_pct,paper_pct")
	fmt.Fprintf(w, "speedup,%.2f,5.4\n", res.SpeedupPct)
	fmt.Fprintf(w, "branch_miss_reduction,%.1f,6.8\n", res.BranchMR)
	fmt.Fprintf(w, "icache_miss_reduction,%.1f,6.2\n", res.L1IMR)
	fmt.Fprintf(w, "itlb_miss_reduction,%.1f,20.8\n", res.ITLBMR)
	fmt.Fprintf(w, "dcache_miss_reduction,%.1f,1.4\n", res.L1DMR)
	fmt.Fprintf(w, "dtlb_miss_reduction,%.1f,12.1\n", res.DTLBMR)
	fmt.Fprintf(w, "llc_miss_reduction,%.1f,3.5\n", res.LLCMR)
	fmt.Fprintf(w, "# capacities: JS=%.0f RPS, no-JS=%.0f RPS\n\n",
		res.JumpStart.CapacityRPS, res.NoJumpStart.CapacityRPS)
	return nil
}

// WriteFig6 renders Figure 6: optimization ablations.
func (l *Lab) WriteFig6(w io.Writer) error {
	res, err := l.Fig6()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Figure 6: speedups over Jump-Start-without-optimizations")
	fmt.Fprintln(w, "configuration,measured_pct,paper_pct")
	fmt.Fprintf(w, "no_jumpstart,%.2f,-0.2\n", res.NoJumpStartPct)
	fmt.Fprintf(w, "bb_layout(V-A),%.2f,3.8\n", res.BBLayoutPct)
	fmt.Fprintf(w, "func_layout(V-B),%.2f,0.75\n", res.FuncLayoutPct)
	fmt.Fprintf(w, "prop_reorder(V-C),%.2f,0.8\n", res.PropReorderPct)
	fmt.Fprintf(w, "# baseline capacity = %.0f RPS\n\n", res.BaselineRPS)
	return nil
}

// WriteLifespan renders the Section II-B lifespan fractions.
func (l *Lab) WriteLifespan(w io.Writer) error {
	res, err := l.Lifespan()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## §II-B: lifespan fractions under continuous deployment")
	fmt.Fprintf(w, "to_decent_performance,%.1f%%,paper 13%%\n", res.ToDecent*100)
	fmt.Fprintf(w, "to_peak_performance,%.1f%%,paper 32%%\n\n", res.ToPeak*100)
	return nil
}

// WriteReliability renders the Section VI crash-loop dynamics.
func (l *Lab) WriteReliability(w io.Writer) error {
	res, err := l.Reliability()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## §VI: reliability under defective packages")
	fmt.Fprintf(w, "crashes=%d fallbacks=%d final_capacity=%.3f\n",
		res.Crashes, res.Fallbacks, res.FinalCap)
	fmt.Fprintf(w, "fleet capacity loss: clean=%.2f%% with_defects=%.2f%%\n\n",
		res.LossNoDefect*100, res.LossDefect*100)
	return nil
}

// WriteBrownout renders the networked-store degradation comparison.
func (l *Lab) WriteBrownout(w io.Writer) error {
	res, err := l.Brownout()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Store brownout: networked package fetches under a degraded fabric")
	fmt.Fprintf(w, "capacity loss: direct=%.2f%% transport_healthy=%.2f%% (identical=%v) brownout=%.2f%%\n",
		res.LossDirect*100, res.LossHealthy*100, res.HealthyEqual, res.LossBrownout*100)
	fmt.Fprintf(w, "brownout run: crashes=%d fallbacks=%d\n\n", res.Crashes, res.Fallbacks)
	return nil
}

// WriteFleet renders the C1/C2/C3 deployment comparison.
func (l *Lab) WriteFleet(w io.Writer) error {
	lossJS, lossNoJS, err := l.FleetDeploy()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Fleet: C1/C2/C3 deployment capacity loss")
	fmt.Fprintf(w, "jumpstart=%.2f%% nojumpstart=%.2f%% reduction=%.1f%%\n\n",
		lossJS*100, lossNoJS*100, (1-lossJS/lossNoJS)*100)
	return nil
}
