package experiments

import (
	"sync"
	"testing"
)

var (
	labOnce sync.Once
	lab     *Lab
	labErr  error
)

func quickLab(t testing.TB) *Lab {
	t.Helper()
	labOnce.Do(func() {
		cfg := Quick()
		if raceEnabled {
			cfg = tinyConfig() // see race_on_test.go
			// Reliability's crash-loop needs its full 6*Horizon fleet
			// window to converge; tiny's determinism horizon is too
			// short. Fleet ticks replay curves, so this stays cheap.
			cfg.Horizon = Quick().Horizon
		}
		lab, labErr = NewLab(cfg)
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return lab
}

func TestFig1Shape(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == 0 {
		t.Fatal("no code produced")
	}
	if res.PointA <= 0 {
		t.Fatal("point A not found")
	}
	if res.PointC < res.PointA {
		t.Fatalf("C (%f) before A (%f)", res.PointC, res.PointA)
	}
	if res.PointD < res.PointC {
		t.Fatalf("D (%f) before C (%f)", res.PointD, res.PointC)
	}
	// Monotone growth.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].CodeBytes < res.Points[i-1].CodeBytes {
			t.Fatal("code size shrank")
		}
	}
	t.Logf("Fig1: A=%.0fs C=%.0fs D=%.0fs final=%s",
		res.PointA, res.PointC, res.PointD, FormatBytesMB(res.Final))
}

func TestFig2Shape(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityLoss <= 0 || res.CapacityLoss >= 1 {
		t.Fatalf("capacity loss = %f", res.CapacityLoss)
	}
	// The curve starts at 0 (restart) and ends near 1.
	first := res.Normalized[0]
	last := res.Normalized[len(res.Normalized)-1]
	if first[1] > 0.3 {
		t.Fatalf("curve starts at %f", first[1])
	}
	if last[1] < 0.9 {
		t.Fatalf("curve ends at %f", last[1])
	}
	t.Logf("Fig2: capacity loss over %vs = %.1f%%", l.Cfg.LongHorizon, res.CapacityLoss*100)
}

func TestFig4HeadlineDirection(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if res.LossReduction <= 0 {
		t.Fatalf("Jump-Start did not reduce capacity loss: %.3f", res.LossReduction)
	}
	if res.EarlyLatencyRatio <= 1 {
		t.Fatalf("no early latency win: ratio %.2f", res.EarlyLatencyRatio)
	}
	t.Logf("Fig4: loss JS=%.1f%% noJS=%.1f%% reduction=%.1f%% (paper 54.9%%); early latency ratio=%.1fx (paper ~3x)",
		res.JumpStart.CapacityLoss*100, res.NoJumpStart.CapacityLoss*100,
		res.LossReduction*100, res.EarlyLatencyRatio)
}

func TestFig5Direction(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig5: speedup=%.2f%% (paper +5.4%%)", res.SpeedupPct)
	t.Logf("  branch MR=%.1f%% (6.8) L1I MR=%.1f%% (6.2) ITLB MR=%.1f%% (20.8)",
		res.BranchMR, res.L1IMR, res.ITLBMR)
	t.Logf("  L1D MR=%.1f%% (1.4) DTLB MR=%.1f%% (12.1) LLC MR=%.1f%% (3.5)",
		res.L1DMR, res.DTLBMR, res.LLCMR)
	if res.SpeedupPct < 0 {
		t.Errorf("Jump-Start slower at steady state: %.2f%%", res.SpeedupPct)
	}
	if res.JumpStart.Faults > 0 || res.NoJumpStart.Faults > 0 {
		t.Error("faults during steady state")
	}
}

func TestFig6Directions(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig6: noJS=%.2f%% (−0.2) bb=%.2f%% (+3.8) func=%.2f%% (+0.75) prop=%.2f%% (+0.8)",
		res.NoJumpStartPct, res.BBLayoutPct, res.FuncLayoutPct, res.PropReorderPct)
	if res.BaselineRPS <= 0 {
		t.Fatal("no baseline")
	}
}

func TestLifespan(t *testing.T) {
	l := quickLab(t)
	res, err := l.Lifespan()
	if err != nil {
		t.Fatal(err)
	}
	if res.ToDecent <= 0 || res.ToPeak < res.ToDecent || res.ToPeak > 1 {
		t.Fatalf("lifespan = %+v", res)
	}
	t.Logf("Lifespan: toDecent=%.1f%% (paper 13%%) toPeak=%.1f%% (paper 32%%)",
		res.ToDecent*100, res.ToPeak*100)
}

func TestReliabilityAndFleet(t *testing.T) {
	l := quickLab(t)
	rel, err := l.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if rel.FinalCap < 0.99 {
		t.Fatalf("fleet stuck at %.3f", rel.FinalCap)
	}
	if rel.Crashes == 0 {
		t.Fatal("defect injection inert")
	}
	t.Logf("Reliability: crashes=%d fallbacks=%d loss(clean)=%.2f%% loss(defects)=%.2f%%",
		rel.Crashes, rel.Fallbacks, rel.LossNoDefect*100, rel.LossDefect*100)

	lossJS, lossNoJS, err := l.FleetDeploy()
	if err != nil {
		t.Fatal(err)
	}
	if lossJS >= lossNoJS {
		t.Fatalf("fleet deploy: JS loss %.4f ≥ noJS %.4f", lossJS, lossNoJS)
	}
	t.Logf("FleetDeploy: loss JS=%.2f%% noJS=%.2f%% reduction=%.1f%%",
		lossJS*100, lossNoJS*100, (1-lossJS/lossNoJS)*100)
}

func TestBrownout(t *testing.T) {
	l := quickLab(t)
	res, err := l.Brownout()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HealthyEqual || res.LossHealthy != res.LossDirect {
		t.Fatalf("healthy transport not perf-neutral: direct %.4f vs transport %.4f (equal=%v)",
			res.LossDirect, res.LossHealthy, res.HealthyEqual)
	}
	if res.Crashes != 0 {
		t.Fatalf("brownout crashed %d servers", res.Crashes)
	}
	if res.Fallbacks == 0 {
		t.Fatal("brownout inert: no fallbacks")
	}
	if res.LossBrownout <= res.LossHealthy {
		t.Fatalf("brownout cost nothing: %.4f vs %.4f", res.LossBrownout, res.LossHealthy)
	}
	t.Logf("Brownout: loss direct=%.2f%% healthy=%.2f%% brownout=%.2f%% fallbacks=%d",
		res.LossDirect*100, res.LossHealthy*100, res.LossBrownout*100, res.Fallbacks)
}
