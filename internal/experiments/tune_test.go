package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTuneShape(t *testing.T) {
	l := quickLab(t)
	res, err := l.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 16 {
		t.Fatalf("%d ranked candidates, want 16", len(res.Ranked))
	}
	best := res.Ranked[0]
	if best.Budget != 1 {
		t.Fatalf("winner evaluated at budget %f, want full fidelity", best.Budget)
	}
	if best.Knobs != res.Best {
		t.Fatalf("Best %s != top-ranked %s", res.Best, best.Knobs)
	}
	for i := 1; i < len(res.Ranked); i++ {
		if res.Ranked[i].Rounds > res.Ranked[i-1].Rounds {
			t.Fatalf("rank %d survived more rounds than rank %d", i, i-1)
		}
	}

	// Full-fidelity verification: every scenario kind, both policies.
	if len(res.Compare) != 2*len(scenarioKinds) {
		t.Fatalf("%d compare cells, want %d", len(res.Compare), 2*len(scenarioKinds))
	}
	defaults := map[string]float64{}
	for _, c := range res.Compare {
		if c.Policy == "default" {
			defaults[c.Scenario] = c.CapLossP99
		}
	}
	beats := 0
	for _, c := range res.Compare {
		if c.Policy == "tuned" && c.CapLossP99 < defaults[c.Scenario] {
			beats++
		}
	}
	// The acceptance bar: the recommendation must beat the default's
	// p99 capacity loss on at least one scenario.
	if beats == 0 {
		t.Errorf("tuned policy %s beats default on 0/%d scenarios: %+v",
			res.Best, len(scenarioKinds), res.Compare)
	}
	t.Logf("recommendation: %s (beats default on %d/%d scenarios)",
		res.Best, beats, len(scenarioKinds))
}

func TestWriteTune(t *testing.T) {
	l := quickLab(t)
	var a, b bytes.Buffer
	if err := l.WriteTune(&a); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteTune(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteTune is not deterministic across renders")
	}
	out := a.String()
	for _, want := range []string{
		"## Tune:", "# recommendation:", "scenario,policy,",
		"# tuned beats default",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
