package experiments

import (
	"fmt"
	"io"

	"jumpstart/internal/cluster"
	"jumpstart/internal/jumpstart"
	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/netsim"
	"jumpstart/internal/obs"
	"jumpstart/internal/parallel"
	"jumpstart/internal/server"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

// poolGrid is the standby-pool sweep: capacity loss of a full push as
// a function of pool size × backfill rate. Size 0 is the no-pool
// baseline; rate 0 is an unthrottled backfill.
var poolGrid = []struct {
	Size int
	Rate float64
}{
	{0, 0},
	{8, 0}, {8, 0.02},
	{32, 0}, {32, 0.02},
	{128, 0}, {128, 0.02},
}

// PoolCell is one grid run's outcome.
type PoolCell struct {
	Size  int
	Rate  float64
	Loss  float64
	Stats cluster.PoolStats
}

// PoolCrossCell is one eager-vs-lazy × healthy-vs-brownout fleet run.
type PoolCrossCell struct {
	Name string // e.g. "lazy-brownout"
	Loss float64
}

// PoolResult is the warm-pool + lazy-paging figure: the pool sweep,
// the measured single-server lazy boots (with page-in accounting), and
// the eager/lazy crossover under healthy and browned-out networks,
// classified into a fleet SLO report.
type PoolResult struct {
	Grid []PoolCell

	// Single-server lazy boots feeding CurveLazy, per network.
	LazyHealthy  server.LazyStats
	LazyBrownout server.LazyStats
	// Pager page-ins/misses per network (misses fall back to live JIT).
	PageInsHealthy, MissesHealthy   int
	PageInsBrownout, MissesBrownout int

	Crossover []PoolCrossCell
	Report    *obs.Report
}

// lazyNetworks names the two fabrics the lazy boot is measured under.
// The brownout blankets the warmup window (minus a short healthy lead
// so the boot fetch of the package itself lands), at the Brownout
// figure's severity.
func (l *Lab) lazyNetworks() [2]netsim.Config {
	return [2]netsim.Config{
		{BaseLatency: 0.001},
		{
			BaseLatency: 0.001,
			Faults:      []netsim.Fault{netsim.Brownout(1, 1+l.Cfg.Horizon, 0.97, 0.5)},
		},
	}
}

// lazyWarmup boots one lazy consumer whose page-ins travel a simulated
// network, and measures its warmup ticks. The boot fetch itself runs
// in the healthy lead-in; each page-in then arms its own per-fetch
// budget against whatever the fabric has become — the mechanism that
// separates the healthy and brownout lazy curves.
func (l *Lab) lazyWarmup(net netsim.Config) ([]server.TickStats, server.LazyStats, *transport.LazyPager, error) {
	pkg := l.clonePkg()
	store := jumpstart.NewStore()
	store.Publish(0, 0, pkg.Encode())
	tsrv := transport.NewServer(store, transport.DefaultChunkSize)
	cc := transport.DefaultClientConfig()
	cc.Budget = 10
	clock := netsim.NewVirtualClock(0)
	conn := transport.NewSimConn(tsrv, netsim.NewFabric(net), "lazy-consumer", clock,
		netsim.NewStream(workload.Fork(0x1a2, 0)), cc.RPCTimeout)
	cli := transport.NewClient(conn, clock, cc)
	res, err := cli.Fetch(0, 0, 1, nil)
	if err != nil {
		return nil, server.LazyStats{}, nil, fmt.Errorf("experiments: lazy boot fetch: %w", err)
	}
	pager := transport.NewLazyPager(cli, res.Manifest, l.Cfg.ServerCfg.ClockHz)

	cfg := l.Cfg.ServerCfg
	cfg.Mode = server.ModeConsumer
	cfg.Package = pkg
	cfg.JITOpts.UseVasmCounters = true
	cfg.JITOpts.UseSeededCallGraph = true
	cfg.UsePropertyOrder = true
	cfg.LazyWarmup = true
	cfg.Pager = pager
	s, err := server.New(l.Scenario.Site, cfg)
	if err != nil {
		return nil, server.LazyStats{}, nil, err
	}
	ticks := s.Run(l.Cfg.Horizon)
	return ticks, s.LazyStats(), pager, nil
}

// LazyCurveResult is one measured lazy boot: the warmup curve its
// capacity traced (normalized against the eager steady state) plus the
// arming and page-in accounting behind it.
type LazyCurveResult struct {
	Curve   cluster.WarmupCurve
	Stats   server.LazyStats
	PageIns int
	Misses  int
}

// MeasureLazyCurve boots one lazy consumer whose page-ins travel the
// given fabric and returns its warmup curve — the input a lazy-mode
// fleet simulation replays (fleetsim -warmup-mode lazy).
func (l *Lab) MeasureLazyCurve(net netsim.Config) (LazyCurveResult, error) {
	steady, err := l.SteadyRPS()
	if err != nil {
		return LazyCurveResult{}, err
	}
	ticks, stats, pager, err := l.lazyWarmup(net)
	if err != nil {
		return LazyCurveResult{}, err
	}
	ins, misses := pager.Stats()
	return LazyCurveResult{
		Curve:   cluster.CurveFromTicks(ticks, steady),
		Stats:   stats,
		PageIns: ins,
		Misses:  misses,
	}, nil
}

// poolCrossRegimes are the four crossover fleet runs. CurveLazy and
// the transport config are filled per-regime by the driver.
var poolCrossRegimes = []struct {
	name     string
	lazy     bool
	brownout bool
}{
	{"eager-healthy", false, false},
	{"lazy-healthy", true, false},
	{"eager-brownout", false, true},
	{"lazy-brownout", true, true},
}

// Pool runs the warm-pool + lazy-paging figure (cached).
func (l *Lab) Pool() (PoolResult, error) {
	l.poolOnce.Do(func() {
		l.poolRes, l.poolErr = l.pool()
	})
	return l.poolRes, l.poolErr
}

func (l *Lab) pool() (PoolResult, error) {
	curves, err := l.fleetCurves()
	if err != nil {
		return PoolResult{}, err
	}
	res := PoolResult{}

	// Part 1 — the pool sweep. Independent deterministic fleet runs;
	// fan out and merge in grid order.
	cells, err := parallel.MapErr(l.Cfg.Workers, len(poolGrid), func(i int) (PoolCell, error) {
		cfg := l.Cfg.FleetCfg
		cfg.Workers = l.Cfg.Workers
		cfg.CurveJumpStart = curves[0]
		cfg.CurveNoJumpStart = curves[1]
		cfg.PoolSize = poolGrid[i].Size
		cfg.PoolBackfillRate = poolGrid[i].Rate
		f, err := cluster.NewFleet(cfg)
		if err != nil {
			return PoolCell{}, err
		}
		f.StartDeployment()
		ticks := f.Run(6 * l.Cfg.Horizon)
		return PoolCell{
			Size:  poolGrid[i].Size,
			Rate:  poolGrid[i].Rate,
			Loss:  cluster.CapacityLoss(ticks, cfg.TickSeconds),
			Stats: f.PoolStats(),
		}, nil
	})
	if err != nil {
		return PoolResult{}, err
	}
	res.Grid = cells

	// Part 2 — measure the lazy boot under each fabric. Two independent
	// single-server runs.
	nets := l.lazyNetworks()
	lazyRuns, err := parallel.MapErr(l.Cfg.Workers, len(nets), func(i int) (LazyCurveResult, error) {
		return l.MeasureLazyCurve(nets[i])
	})
	if err != nil {
		return PoolResult{}, err
	}
	res.LazyHealthy, res.LazyBrownout = lazyRuns[0].Stats, lazyRuns[1].Stats
	res.PageInsHealthy, res.MissesHealthy = lazyRuns[0].PageIns, lazyRuns[0].Misses
	res.PageInsBrownout, res.MissesBrownout = lazyRuns[1].PageIns, lazyRuns[1].Misses

	// Part 3 — the eager/lazy crossover at fleet scale, classified.
	// Eager boots replay the eager Jump-Start curve and pay their
	// package fetch through the fleet transport; lazy boots replay the
	// lazy curve measured under the matching fabric.
	c3 := l.Cfg.FleetCfg.C1Hold + l.Cfg.FleetCfg.C2Hold
	type crossRun struct {
		loss    float64
		classes []obs.Classification
		bootLat []float64
		reasons []cluster.ReasonCount
	}
	crossRuns, err := parallel.MapErr(l.Cfg.Workers, len(poolCrossRegimes), func(i int) (crossRun, error) {
		rg := poolCrossRegimes[i]
		cfg := l.Cfg.FleetCfg
		cfg.Workers = l.Cfg.Workers
		cfg.CurveJumpStart = curves[0]
		cfg.CurveNoJumpStart = curves[1]
		cfg.RecordSeries = true
		cfg.Telem = &telemetry.Set{
			Metrics: telemetry.NewRegistry(),
			Trace:   telemetry.NewTrace(1 << 17),
			Cycles:  telemetry.NewCycleProfile(),
		}
		if rg.lazy {
			cfg.WarmupMode = jumpstart.WarmupLazy
			if rg.brownout {
				cfg.CurveLazy = lazyRuns[1].Curve
			} else {
				cfg.CurveLazy = lazyRuns[0].Curve
			}
		}
		cc := transport.DefaultClientConfig()
		cc.Budget = 10
		tc := &cluster.TransportConfig{Client: cc}
		if rg.brownout {
			tc.Net = netsim.Config{
				BaseLatency: 0.02,
				Faults:      []netsim.Fault{netsim.Brownout(c3, c3+6*l.Cfg.Horizon, 0.97, 0.5)},
			}
		}
		cfg.Transport = tc
		f, err := cluster.NewFleet(cfg)
		if err != nil {
			return crossRun{}, err
		}
		f.StartDeployment()
		ticks := f.Run(6 * l.Cfg.Horizon)
		run := crossRun{
			loss:    cluster.CapacityLoss(ticks, cfg.TickSeconds),
			bootLat: f.BootLatencies(),
			reasons: f.FallbackReasons(),
		}
		for _, xs := range f.WarmupSeries() {
			run.classes = append(run.classes, obs.Classify(xs, cfg.TickSeconds))
		}
		return run, nil
	})
	if err != nil {
		return PoolResult{}, err
	}
	res.Report = obs.NewReport(l.WarmclassSLO())
	for i, run := range crossRuns {
		res.Crossover = append(res.Crossover, PoolCrossCell{
			Name: poolCrossRegimes[i].name,
			Loss: run.loss,
		})
		rg := res.Report.Regime(poolCrossRegimes[i].name)
		for _, c := range run.classes {
			rg.AddClassification(c)
		}
		for _, lat := range run.bootLat {
			rg.AddBootLatency(lat)
		}
		for _, rc := range run.reasons {
			rg.AddFallback(rc.Reason, rc.Count)
		}
		rg.SetCapacityLoss(run.loss)
	}
	return res, nil
}

// WritePool renders the warm-pool + lazy-paging figure.
func (l *Lab) WritePool(w io.Writer) error {
	res, err := l.Pool()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Pool: standby warm-pool tier + lazy package paging")
	fmt.Fprintln(w, "pool_size,backfill_per_s,capacity_loss_pct,drains,backfills,misses")
	for _, c := range res.Grid {
		fmt.Fprintf(w, "%d,%g,%.2f,%d,%d,%d\n",
			c.Size, c.Rate, c.Loss*100, c.Stats.Drains, c.Stats.Backfills, c.Stats.Misses)
	}
	fmt.Fprintf(w, "# lazy boot page-ins: healthy %d (%d misses, %d/%d armed paged), brownout %d (%d misses, %d/%d armed paged)\n",
		res.PageInsHealthy, res.MissesHealthy, res.LazyHealthy.Paged, res.LazyHealthy.Armed,
		res.PageInsBrownout, res.MissesBrownout, res.LazyBrownout.Paged, res.LazyBrownout.Armed)
	fmt.Fprintln(w, "mode_network,capacity_loss_pct")
	for _, c := range res.Crossover {
		fmt.Fprintf(w, "%s,%.2f\n", c.Name, c.Loss*100)
	}
	slo := l.WarmclassSLO()
	fmt.Fprintf(w, "# slo: boot-p99 <= %.0fs, time-to-steady-p95 <= %.0fs, capacity-loss <= %.0f%%\n",
		slo.BootP99, slo.TimeToSteadyP95, slo.CapacityLoss*100)
	if err := res.Report.WriteText(w); err != nil {
		return err
	}
	status := "PASS"
	if !res.Report.Passed() {
		status = "FAIL"
	}
	fmt.Fprintf(w, "# overall: %s\n\n", status)
	return nil
}
