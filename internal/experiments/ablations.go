package experiments

import (
	"jumpstart/internal/core"
	"jumpstart/internal/jit"
	"jumpstart/internal/parallel"
	"jumpstart/internal/server"
)

// FuncSortAblation compares the function-sorting algorithms the layout
// package implements — C3 (the paper's choice, Ottoni & Maher),
// Pettis-Hansen, and no sorting — on steady-state capacity, all with
// the seeded tier-2 call graph. This is the ablation DESIGN.md calls
// out for the Section V-B design choice.
type FuncSortAblation struct {
	C3RPS, PHRPS, NoneRPS float64
	// ITLB miss rates per variant (function placement's main lever).
	C3ITLB, PHITLB, NoneITLB float64
}

// FuncSort runs the function-sorting ablation; the three variants run
// in parallel across l.Cfg.Workers.
func (l *Lab) FuncSort() (FuncSortAblation, error) {
	measure := func(sort jit.FunctionSort) (server.SteadyStats, error) {
		cfg := l.Cfg.ServerCfg
		cfg.Mode = server.ModeConsumer
		cfg.Package = l.clonePkg()
		cfg.JITOpts.UseSeededCallGraph = true
		cfg.JITOpts.FuncSort = sort
		// The package's precomputed order was built with C3; force
		// consumers to re-sort with their configured algorithm.
		cfg.Package.FuncOrder = nil
		s, err := server.New(l.Scenario.Site, cfg)
		if err != nil {
			return server.SteadyStats{}, err
		}
		if err := s.WarmToServing(14400); err != nil {
			return server.SteadyStats{}, err
		}
		return s.MeasureSteady(l.Cfg.SteadyRequests), nil
	}
	sorts := []jit.FunctionSort{jit.SortC3, jit.SortPH, jit.SortNone}
	stats, err := parallel.MapErr(l.Cfg.Workers, len(sorts), func(i int) (server.SteadyStats, error) {
		return measure(sorts[i])
	})
	if err != nil {
		return FuncSortAblation{}, err
	}
	c3, ph, none := stats[0], stats[1], stats[2]
	return FuncSortAblation{
		C3RPS: c3.CapacityRPS, PHRPS: ph.CapacityRPS, NoneRPS: none.CapacityRPS,
		C3ITLB:   c3.Mem.ITLBMissRate(),
		PHITLB:   ph.Mem.ITLBMissRate(),
		NoneITLB: none.Mem.ITLBMissRate(),
	}, nil
}

// PropLayoutAblation compares the three object-layout policies:
// declared order (baseline), hotness order (the paper's Section V-C),
// and affinity order (the paper's stated future work, implemented
// here as an extension).
type PropLayoutAblation struct {
	DeclaredRPS, HotnessRPS, AffinityRPS float64
	DeclaredL1D, HotnessL1D, AffinityL1D float64
}

// PropLayout runs the property-layout ablation.
func (l *Lab) PropLayout() (PropLayoutAblation, error) {
	measure := func(hotness, affinity bool) (server.SteadyStats, error) {
		cfg := l.Cfg.ServerCfg
		cfg.Mode = server.ModeConsumer
		cfg.Package = l.clonePkg()
		cfg.UsePropertyOrder = hotness
		cfg.UseAffinityOrder = affinity
		s, err := server.New(l.Scenario.Site, cfg)
		if err != nil {
			return server.SteadyStats{}, err
		}
		if err := s.WarmToServing(14400); err != nil {
			return server.SteadyStats{}, err
		}
		return s.MeasureSteady(l.Cfg.SteadyRequests), nil
	}
	policies := [][2]bool{{false, false}, {true, false}, {false, true}}
	stats, err := parallel.MapErr(l.Cfg.Workers, len(policies), func(i int) (server.SteadyStats, error) {
		return measure(policies[i][0], policies[i][1])
	})
	if err != nil {
		return PropLayoutAblation{}, err
	}
	decl, hot, aff := stats[0], stats[1], stats[2]
	return PropLayoutAblation{
		DeclaredRPS: decl.CapacityRPS, HotnessRPS: hot.CapacityRPS, AffinityRPS: aff.CapacityRPS,
		DeclaredL1D: decl.Mem.L1DMissRate(),
		HotnessL1D:  hot.Mem.L1DMissRate(),
		AffinityL1D: aff.Mem.L1DMissRate(),
	}, nil
}

// BlockLayoutAblation compares Ext-TSP block layout quality under the
// two weight sources of Section V-A (bytecode-derived vs measured Vasm
// counters), reporting hot-section bytes and branch/I-cache rates.
type BlockLayoutAblation struct {
	BytecodeRPS, VasmRPS       float64
	BytecodeL1I, VasmL1I       float64
	BytecodeBranch, VasmBranch float64
}

// BlockLayout runs the V-A weight-source ablation.
func (l *Lab) BlockLayout() (BlockLayoutAblation, error) {
	measure := func(useVasm bool) (server.SteadyStats, error) {
		v := core.Variant{JumpStart: true, VasmCounters: useVasm}
		return l.Scenario.SteadyState(v, l.clonePkg(), l.Cfg.SteadyRequests)
	}
	stats, err := parallel.MapErr(l.Cfg.Workers, 2, func(i int) (server.SteadyStats, error) {
		return measure(i == 1)
	})
	if err != nil {
		return BlockLayoutAblation{}, err
	}
	bc, vm := stats[0], stats[1]
	return BlockLayoutAblation{
		BytecodeRPS: bc.CapacityRPS, VasmRPS: vm.CapacityRPS,
		BytecodeL1I: bc.Mem.L1IMissRate(), VasmL1I: vm.Mem.L1IMissRate(),
		BytecodeBranch: bc.Mem.BranchMissRate(), VasmBranch: vm.Mem.BranchMissRate(),
	}, nil
}
