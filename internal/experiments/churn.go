package experiments

import (
	"fmt"
	"io"

	"jumpstart/internal/cluster"
	"jumpstart/internal/core"
	"jumpstart/internal/jumpstart"
	"jumpstart/internal/prof"
	"jumpstart/internal/release"
	"jumpstart/internal/server"
)

// churnRates are the mutation rates the churn figure sweeps: a routine
// push touching a few percent of the site, and a heavy refactor-style
// push. churnCadences multiply the warmup horizon into push intervals.
var (
	churnRates    = []float64{0.05, 0.25}
	churnCadences = []float64{2, 4}
)

// ChurnRate is everything measured once per mutation rate: the mutated
// revision chain, the real remap statistics across its boundaries, and
// the warmup of a consumer booted on the new revision from the
// remapped package.
type ChurnRate struct {
	Rate  float64
	Stats release.MutationStats // mutations applied at rev 0 -> 1
	// Remap1 is the rev0->rev1 remap of the seeded package; Remap2
	// chains the remapped profile onto rev2 (hit rate decays as churn
	// accumulates across un-reseeded pushes).
	Remap1, Remap2 prof.RemapStats
	// LossRemapped is the capacity loss of a consumer booted on the
	// rev1 site from the remapped package, normalized like Figure 4.
	LossRemapped float64
	// Curve is that consumer's measured warmup curve — what the fleet
	// simulator replays for remapped boots.
	Curve cluster.WarmupCurve
}

// ChurnPoint is one fleet comparison at a (rate, cadence) cell.
type ChurnPoint struct {
	Rate    float64
	Cadence float64 // push interval, virtual seconds
	// Fleet capacity losses over the same window under each store
	// compatibility policy.
	LossExactOnly     float64
	LossRemapTolerant float64
	Gap               float64 // LossExactOnly - LossRemapTolerant
	// Pushes completed within the window (pushes defer while a
	// deployment is still recovering, so a policy that warms the fleet
	// faster also sustains the cadence better).
	PushesExactOnly     uint64
	PushesRemapTolerant uint64
	RemapBoots          int // boots served from remapped packages
	PkgKept, PkgLost    int // package fate across pushes (remap-tolerant run)
}

// ChurnResult is the continuous-deployment churn experiment.
type ChurnResult struct {
	// Single-server reference losses on the base revision (same
	// normalization as the per-rate remapped losses).
	LossExact float64 // consumer with an exact package
	LossCold  float64 // no-Jump-Start boot
	Rates     []ChurnRate
	Points    []ChurnPoint
}

// Churn measures what code churn does to Jump-Start. For each mutation
// rate it evolves the site through the release mutator, remaps the
// seeded package across the revision boundary with prof.Remap
// (recording the real exact/renamed/fuzzy/dropped split), and boots a
// consumer on the mutated site from the remapped package to measure
// how much warmup benefit survives. The fleet simulator then replays
// continuous pushes at each cadence under both store compatibility
// policies, using the measured hit rate and the measured remapped
// warmup curve. Cached after the first call.
func (l *Lab) Churn() (ChurnResult, error) {
	l.churnOnce.Do(func() {
		l.churnRes, l.churnErr = l.churn()
	})
	return l.churnRes, l.churnErr
}

func (l *Lab) churn() (ChurnResult, error) {
	steady, err := l.SteadyRPS()
	if err != nil {
		return ChurnResult{}, err
	}
	exact, err := l.warmup(core.FullJumpStart(), l.Cfg.Horizon)
	if err != nil {
		return ChurnResult{}, err
	}
	cold, err := l.warmup(core.Variant{}, l.Cfg.Horizon)
	if err != nil {
		return ChurnResult{}, err
	}
	res := ChurnResult{
		LossExact: exact.CapacityLoss,
		LossCold:  cold.CapacityLoss,
	}

	for _, rate := range churnRates {
		cr, err := l.churnRate(rate, steady)
		if err != nil {
			return ChurnResult{}, err
		}
		res.Rates = append(res.Rates, cr)
	}

	curves, err := l.fleetCurves()
	if err != nil {
		return ChurnResult{}, err
	}
	for _, cr := range res.Rates {
		for _, mult := range churnCadences {
			pt, err := l.churnFleets(cr, mult*l.Cfg.Horizon, curves)
			if err != nil {
				return ChurnResult{}, err
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// MeasureChurn measures a single churn rate: the revision chain, the
// remap statistics, and the remapped consumer's warmup curve.
// cmd/fleetsim uses it to wire -churn without running the full sweep.
func (l *Lab) MeasureChurn(rate float64) (ChurnRate, error) {
	steady, err := l.SteadyRPS()
	if err != nil {
		return ChurnRate{}, err
	}
	return l.churnRate(rate, steady)
}

// churnRate evolves the site two revisions at the given mutation rate
// and measures the remap cascade and the remapped consumer's warmup.
func (l *Lab) churnRate(rate, steady float64) (ChurnRate, error) {
	base := l.Scenario.Site
	chain, err := release.NewChain(base, release.ChurnConfig{Seed: l.Cfg.FleetCfg.Seed, Rate: rate})
	if err != nil {
		return ChurnRate{}, err
	}
	rev1, err := chain.Next()
	if err != nil {
		return ChurnRate{}, err
	}
	rev2, err := chain.Next()
	if err != nil {
		return ChurnRate{}, err
	}

	pkg := l.clonePkg()
	pkg.Meta.Revision = int64(chain.Rev(0).Checksum)
	remapped, stats1 := prof.Remap(pkg, chain.Rev(0).Prog, rev1.Prog, int64(rev1.Checksum))
	_, stats2 := prof.Remap(remapped, rev1.Prog, rev2.Prog, int64(rev2.Checksum))

	site1, err := rev1.Site(base)
	if err != nil {
		return ChurnRate{}, err
	}
	cfg := l.Cfg.ServerCfg
	cfg.Mode = server.ModeConsumer
	cfg.Package = remapped
	cfg.JITOpts.UseVasmCounters = true
	cfg.JITOpts.UseSeededCallGraph = true
	cfg.UsePropertyOrder = true
	srv, err := server.New(site1, cfg)
	if err != nil {
		return ChurnRate{}, fmt.Errorf("experiments: remapped consumer boot (rate %.2f): %w", rate, err)
	}
	ticks := srv.Run(l.Cfg.Horizon)
	return ChurnRate{
		Rate:         rate,
		Stats:        rev1.Stats,
		Remap1:       stats1,
		Remap2:       stats2,
		LossRemapped: server.CapacityLoss(ticks, steady),
		Curve:        cluster.CurveFromTicks(ticks, steady),
	}, nil
}

// churnFleets runs the continuous-push fleet at one cadence under both
// policies. The deployment schedule is deliberately aggressive — the
// C2 soak is shorter than seeding, so under exact-only the early C3
// waves find an empty store and boot cold; under remap-tolerant they
// boot from remapped packages instead.
func (l *Lab) churnFleets(cr ChurnRate, cadence float64, curves [2]cluster.WarmupCurve) (ChurnPoint, error) {
	run := func(policy jumpstart.CompatPolicy) (*cluster.Fleet, []cluster.FleetTick, error) {
		cfg := l.Cfg.FleetCfg
		cfg.Workers = l.Cfg.Workers
		cfg.CurveJumpStart = curves[0]
		cfg.CurveNoJumpStart = curves[1]
		cfg.CurveRemapped = cr.Curve
		cfg.C1Hold = 30
		cfg.C2Hold = 60
		cfg.PushEvery = cadence
		cfg.RemapPolicy = policy
		cfg.RemapHitRate = cr.Remap1.HitRate()
		f, err := cluster.NewFleet(cfg)
		if err != nil {
			return nil, nil, err
		}
		f.StartDeployment()
		return f, f.Run(8 * l.Cfg.Horizon), nil
	}
	fe, te, err := run(jumpstart.ExactOnly)
	if err != nil {
		return ChurnPoint{}, err
	}
	fr, tr, err := run(jumpstart.RemapTolerant)
	if err != nil {
		return ChurnPoint{}, err
	}
	dt := l.Cfg.FleetCfg.TickSeconds
	kept, lost := fr.PackageChurn()
	pt := ChurnPoint{
		Rate:                cr.Rate,
		Cadence:             cadence,
		LossExactOnly:       cluster.CapacityLoss(te, dt),
		LossRemapTolerant:   cluster.CapacityLoss(tr, dt),
		PushesExactOnly:     fe.Revision() - 1,
		PushesRemapTolerant: fr.Revision() - 1,
		RemapBoots:          fr.RemapBoots(),
		PkgKept:             kept,
		PkgLost:             lost,
	}
	pt.Gap = pt.LossExactOnly - pt.LossRemapTolerant
	return pt, nil
}

// WriteChurn renders the churn figure.
func (l *Lab) WriteChurn(w io.Writer) error {
	res, err := l.Churn()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "## Churn: cross-release profile remapping under continuous deployment")
	fmt.Fprintf(w, "# single-server warmup loss on the base revision: exact_package=%.1f%% cold=%.1f%%\n",
		res.LossExact*100, res.LossCold*100)
	fmt.Fprintln(w, "rate,edits,structural,remap_exact,remap_renamed,remap_fuzzy,remap_dropped,hit1_pct,hit2_pct,loss_remapped_pct")
	for _, cr := range res.Rates {
		structural := cr.Stats.FuncsAdded + cr.Stats.FuncsRemoved + cr.Stats.FuncsRenamed + cr.Stats.PropReorders
		fmt.Fprintf(w, "%.2f,%d,%d,%d,%d,%d,%d,%.1f,%.1f,%.1f\n",
			cr.Rate, cr.Stats.ConstTweaks+cr.Stats.StmtInserts, structural,
			cr.Remap1.Exact, cr.Remap1.Renamed, cr.Remap1.Fuzzy,
			cr.Remap1.Dropped+cr.Remap1.Ambiguous,
			cr.Remap1.HitRate()*100, cr.Remap2.HitRate()*100, cr.LossRemapped*100)
	}
	fmt.Fprintln(w, "rate,cadence_s,fleet_exact_only_pct,fleet_remap_tolerant_pct,gap_pct,pushes_exact,pushes_remap,remap_boots,pkgs_kept,pkgs_lost")
	for _, pt := range res.Points {
		fmt.Fprintf(w, "%.2f,%.0f,%.2f,%.2f,%.2f,%d,%d,%d,%d,%d\n",
			pt.Rate, pt.Cadence, pt.LossExactOnly*100, pt.LossRemapTolerant*100,
			pt.Gap*100, pt.PushesExactOnly, pt.PushesRemapTolerant,
			pt.RemapBoots, pt.PkgKept, pt.PkgLost)
	}
	fmt.Fprintln(w, "# gap > 0: remap-tolerant recovers warmup benefit exact-only forfeits at each push")
	fmt.Fprintln(w)
	return nil
}
