package obs

import (
	"fmt"
	"sort"

	"jumpstart/internal/telemetry"
)

// SpanNode is one span (or instant event) in a reconstructed causal
// tree. Children are ordered by (start time, seq) so the tree shape is
// deterministic regardless of recording order (EndSpan lands parents
// after their children).
type SpanNode struct {
	Event    telemetry.Event
	Children []*SpanNode
}

// SpanTree is the forest reconstructed from a trace buffer.
type SpanTree struct {
	Roots []*SpanNode
	// Orphans counts events whose Parent ID is missing from the buffer
	// — the expected outcome when the ring evicted the parent (they are
	// promoted to roots rather than silently dropped).
	Orphans int
}

// BuildSpanTree reconstructs the causal forest from a trace buffer
// (telemetry.Trace.Events output). Events with Parent 0 are roots;
// events whose parent was evicted from the ring are promoted to roots
// and counted in Orphans.
func BuildSpanTree(events []telemetry.Event) *SpanTree {
	t := &SpanTree{}
	nodes := make(map[uint64]*SpanNode, len(events))
	order := make([]*SpanNode, 0, len(events))
	for _, ev := range events {
		n := &SpanNode{Event: ev}
		nodes[ev.Seq] = n
		order = append(order, n)
	}
	for _, n := range order {
		p := n.Event.Parent
		if p == 0 {
			t.Roots = append(t.Roots, n)
			continue
		}
		parent, ok := nodes[p]
		if !ok || parent == n {
			t.Orphans++
			t.Roots = append(t.Roots, n)
			continue
		}
		parent.Children = append(parent.Children, n)
	}
	sortNodes(t.Roots)
	for _, n := range order {
		sortNodes(n.Children)
	}
	return t
}

func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := &ns[i].Event, &ns[j].Event
		if a.T != b.T {
			return a.T < b.T
		}
		return a.Seq < b.Seq
	})
}

// SpanCheck is the result of validating a span forest against the
// duration-conservation invariant.
type SpanCheck struct {
	Spans      int // events with non-zero duration
	Instants   int // zero-duration events
	Roots      int
	Orphans    int
	Violations []string // one line per invariant breach, deterministic order
}

// OK reports whether no invariant was violated.
func (c SpanCheck) OK() bool { return len(c.Violations) == 0 }

// ValidateSpans rebuilds the causal forest and checks the
// duration-conservation invariant, the span-tree analogue of the
// cycle-conservation check in internal/server:
//
//   - every child is time-contained in its parent
//     (child.T >= parent.T and child end <= parent end), and
//   - the summed duration of a span's direct children does not exceed
//     the parent's own duration (children partition a subset of the
//     parent's virtual time, never more).
//
// Instant events only face the containment check. Comparisons carry a
// small relative epsilon for float accumulation. Violations are
// reported in deterministic tree-walk order (roots and children both
// sorted by start time, then seq).
func ValidateSpans(events []telemetry.Event) SpanCheck {
	tree := BuildSpanTree(events)
	check := SpanCheck{Roots: len(tree.Roots), Orphans: tree.Orphans}
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		ev := &n.Event
		if ev.Dur != 0 {
			check.Spans++
		} else {
			check.Instants++
		}
		pEnd := ev.T + ev.Dur
		eps := 1e-9 * (1 + ev.Dur)
		childSum := 0.0
		for _, ch := range n.Children {
			c := &ch.Event
			if c.T < ev.T-eps || c.T+c.Dur > pEnd+eps {
				check.Violations = append(check.Violations, fmt.Sprintf(
					"span %d %q [%g,%g] escapes parent %d %q [%g,%g]",
					c.Seq, c.Name, c.T, c.T+c.Dur, ev.Seq, ev.Name, ev.T, pEnd))
			}
			childSum += c.Dur
		}
		if childSum > ev.Dur+eps {
			check.Violations = append(check.Violations, fmt.Sprintf(
				"span %d %q children sum %g exceeds parent duration %g",
				ev.Seq, ev.Name, childSum, ev.Dur))
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, root := range tree.Roots {
		walk(root)
	}
	return check
}
