// Package obs is the deterministic observability layer on top of
// internal/telemetry: changepoint-based warmup classification of
// per-server throughput curves (after Barrett et al.'s VM-warmup
// methodology), causal span-tree reconstruction and validation, and
// fleet SLO reports. Everything here is a pure function of its inputs
// — no randomness, no wall clocks, no map-order dependence — so every
// report and label is byte-identical across worker counts.
package obs

import (
	"fmt"
	"math"
)

// Label classifies one per-server throughput curve, following the
// taxonomy of Barrett et al. ("Virtual Machine Warmup Blows Hot and
// Cold"): a curve either warms up to its best segment, slows down from
// it, was flat all along, or never settles.
type Label uint8

const (
	// LabelFlat: no changepoint moves the mean outside tolerance.
	LabelFlat Label = iota
	// LabelWarmup: segment means rise monotonically to the steady state.
	LabelWarmup
	// LabelSlowdown: segment means fall monotonically to the steady state.
	LabelSlowdown
	// LabelNonMonotonic: segment means both rise and fall — the curve
	// has no well-defined steady state.
	LabelNonMonotonic
	numLabels
)

// Labels lists every label in deterministic report order.
var Labels = [...]Label{LabelFlat, LabelWarmup, LabelSlowdown, LabelNonMonotonic}

// String returns the report name of the label.
func (l Label) String() string {
	switch l {
	case LabelFlat:
		return "flat"
	case LabelWarmup:
		return "warmup"
	case LabelSlowdown:
		return "slowdown"
	case LabelNonMonotonic:
		return "non-monotonic"
	}
	return fmt.Sprintf("label(%d)", uint8(l))
}

// Classification is the changepoint analysis of one throughput curve.
type Classification struct {
	Label        Label
	Changepoints []int     // segment start indices, excluding 0
	SegmentMeans []float64 // one mean per segment
	// SteadyStart is the sample index where the steady-state segment
	// begins: 0 for flat curves, the last segment's start for warmup
	// and slowdown, -1 for non-monotonic curves (no steady state).
	SteadyStart int
	// TimeToSteady is SteadyStart converted to virtual seconds via the
	// sample spacing handed to Classify (-1 when there is none).
	TimeToSteady float64
	// SteadyMean is the mean of the steady-state segment (0 when none).
	SteadyMean float64
}

// relTolerance is the relative band within which two segment means are
// considered "the same level" when labeling. Barrett et al. use a
// confidence-interval overlap test; with deterministic simulated
// series a fixed relative band serves the same purpose without
// resampling noise.
const relTolerance = 0.05

// Changepoints segments xs into piecewise-constant-mean runs with the
// PELT algorithm (Killick et al.): exact minimisation of
//
//	sum_i segcost(seg_i) + penalty * (#segments - 1)
//
// under an L2 segment cost, computed with prefix sums so each
// candidate cost is O(1). Returned indices are the starts of the
// second and later segments, ascending. penalty <= 0 picks
// DefaultPenalty(xs).
func Changepoints(xs []float64, penalty float64) []int {
	n := len(xs)
	if n < 2 {
		return nil
	}
	if penalty <= 0 {
		penalty = DefaultPenalty(xs)
	}
	// Prefix sums: s1[i] = sum(xs[:i]), s2[i] = sum(xs[:i]^2).
	s1 := make([]float64, n+1)
	s2 := make([]float64, n+1)
	for i, x := range xs {
		s1[i+1] = s1[i] + x
		s2[i+1] = s2[i] + x*x
	}
	// cost of the half-open segment [a, b): sum of squared deviations
	// from the segment mean.
	cost := func(a, b int) float64 {
		d := s1[b] - s1[a]
		c := s2[b] - s2[a] - d*d/float64(b-a)
		if c < 0 { // guard accumulated rounding
			c = 0
		}
		return c
	}
	f := make([]float64, n+1) // f[t]: optimal cost of xs[:t]
	f[0] = -penalty
	last := make([]int, n+1) // last[t]: final changepoint of the optimum
	cands := []int{0}        // PELT candidate set (pruned)
	next := make([]int, 0, 8)
	for t := 1; t <= n; t++ {
		best := math.Inf(1)
		bestS := 0
		for _, s := range cands {
			c := f[s] + cost(s, t) + penalty
			if c < best {
				best = c
				bestS = s
			}
		}
		f[t] = best
		last[t] = bestS
		// Prune: a candidate s can never win again once even a free
		// continuation cannot catch the current optimum.
		next = next[:0]
		for _, s := range cands {
			if f[s]+cost(s, t) <= f[t] {
				next = append(next, s)
			}
		}
		next = append(next, t)
		cands = append(cands[:0], next...)
	}
	// Backtrack.
	var cps []int
	for t := n; last[t] > 0; t = last[t] {
		cps = append(cps, last[t])
	}
	// Reverse into ascending order.
	for i, j := 0, len(cps)-1; i < j; i, j = i+1, j-1 {
		cps[i], cps[j] = cps[j], cps[i]
	}
	return cps
}

// DefaultPenalty returns the BIC-style penalty 2·σ²·log(n) used when
// the caller does not pick one, with a small floor so constant series
// (σ = 0) do not fragment on rounding noise.
func DefaultPenalty(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 1
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	varsum := 0.0
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	variance := varsum / float64(n)
	p := 2 * variance * math.Log(float64(n))
	if floor := 1e-9 * (1 + mean*mean); p < floor {
		p = floor
	}
	return p
}

// Classify segments the per-tick series xs (samples dt virtual seconds
// apart) and labels the curve. A nil/short or all-equal series is
// flat. The analysis is a pure function of (xs, dt).
func Classify(xs []float64, dt float64) Classification {
	c := Classification{SteadyStart: 0, TimeToSteady: 0}
	if len(xs) == 0 {
		c.SegmentMeans = []float64{0}
		return c
	}
	c.Changepoints = Changepoints(xs, 0)
	// Segment means.
	starts := append([]int{0}, c.Changepoints...)
	c.SegmentMeans = make([]float64, len(starts))
	for i, a := range starts {
		b := len(xs)
		if i+1 < len(starts) {
			b = starts[i+1]
		}
		sum := 0.0
		for _, x := range xs[a:b] {
			sum += x
		}
		c.SegmentMeans[i] = sum / float64(b-a)
	}
	// Direction of each mean-to-mean step, with a relative tolerance
	// band scaled by the larger magnitude (so tolerance is symmetric).
	rose, fell := false, false
	for i := 1; i < len(c.SegmentMeans); i++ {
		prev, cur := c.SegmentMeans[i-1], c.SegmentMeans[i]
		scale := math.Max(math.Abs(prev), math.Abs(cur))
		if d := cur - prev; d > relTolerance*scale {
			rose = true
		} else if d < -relTolerance*scale {
			fell = true
		}
	}
	lastStart := starts[len(starts)-1]
	lastMean := c.SegmentMeans[len(c.SegmentMeans)-1]
	switch {
	case !rose && !fell:
		c.Label = LabelFlat
		c.SteadyStart = 0
		c.SteadyMean = mean(xs)
	case rose && fell:
		c.Label = LabelNonMonotonic
		c.SteadyStart = -1
		c.TimeToSteady = -1
		return c
	case rose:
		c.Label = LabelWarmup
		c.SteadyStart = lastStart
		c.SteadyMean = lastMean
	default:
		c.Label = LabelSlowdown
		c.SteadyStart = lastStart
		c.SteadyMean = lastMean
	}
	c.TimeToSteady = float64(c.SteadyStart) * dt
	return c
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
