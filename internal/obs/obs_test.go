package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"jumpstart/internal/telemetry"
)

func TestChangepointsSingleStep(t *testing.T) {
	// A clean level shift at index 30 must yield exactly one
	// changepoint at 30.
	xs := make([]float64, 60)
	for i := range xs {
		if i < 30 {
			xs[i] = 10
		} else {
			xs[i] = 50
		}
	}
	cps := Changepoints(xs, 0)
	if len(cps) != 1 || cps[0] != 30 {
		t.Fatalf("changepoints = %v, want [30]", cps)
	}
	if Changepoints(nil, 0) != nil || Changepoints([]float64{1}, 0) != nil {
		t.Fatal("degenerate series must have no changepoints")
	}
}

func TestChangepointsNoisyStep(t *testing.T) {
	// Deterministic pseudo-noise (no PRNG: a fixed sinusoid) around a
	// step. PELT must still put the single changepoint at the step.
	xs := make([]float64, 80)
	for i := range xs {
		base := 100.0
		if i >= 40 {
			base = 200
		}
		xs[i] = base + 3*math.Sin(float64(i))
	}
	cps := Changepoints(xs, 0)
	if len(cps) != 1 || cps[0] != 40 {
		t.Fatalf("changepoints = %v, want [40]", cps)
	}
}

// goldenCurves pins the classifier's labels on canonical curve shapes —
// the classifier regression suite `make obssweep` runs in CI.
func goldenCurves() map[string]struct {
	xs   []float64
	want Label
} {
	ramp := make([]float64, 100) // warmup: ramp then plateau
	for i := range ramp {
		v := float64(i) * 4
		if v > 200 {
			v = 200
		}
		ramp[i] = v
	}
	decay := make([]float64, 100) // slowdown: plateau then degrade
	for i := range decay {
		if i < 40 {
			decay[i] = 300
		} else {
			decay[i] = 120
		}
	}
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 250 + 0.5*math.Sin(float64(i)) // jitter inside tolerance
	}
	bump := make([]float64, 90) // rises then falls: no steady state
	for i := range bump {
		switch {
		case i < 30:
			bump[i] = 100
		case i < 60:
			bump[i] = 400
		default:
			bump[i] = 150
		}
	}
	return map[string]struct {
		xs   []float64
		want Label
	}{
		"ramp-plateau":  {ramp, LabelWarmup},
		"plateau-decay": {decay, LabelSlowdown},
		"flat-jitter":   {flat, LabelFlat},
		"bump":          {bump, LabelNonMonotonic},
	}
}

func TestClassifyGoldenLabels(t *testing.T) {
	for name, tc := range goldenCurves() {
		c := Classify(tc.xs, 1)
		if c.Label != tc.want {
			t.Errorf("%s: label = %s, want %s (cps %v, means %v)",
				name, c.Label, tc.want, c.Changepoints, c.SegmentMeans)
		}
		switch tc.want {
		case LabelWarmup:
			if c.SteadyStart <= 0 || c.TimeToSteady != float64(c.SteadyStart) {
				t.Errorf("%s: steady start %d / tts %v", name, c.SteadyStart, c.TimeToSteady)
			}
			if c.SteadyMean < 190 {
				t.Errorf("%s: steady mean %v", name, c.SteadyMean)
			}
		case LabelFlat:
			if c.SteadyStart != 0 || c.TimeToSteady != 0 {
				t.Errorf("%s: flat must be steady from 0, got %d", name, c.SteadyStart)
			}
		case LabelNonMonotonic:
			if c.SteadyStart != -1 || c.TimeToSteady != -1 {
				t.Errorf("%s: non-monotonic must report no steady state", name)
			}
		}
	}
	// Empty series: flat, mean 0.
	if c := Classify(nil, 1); c.Label != LabelFlat || c.SteadyMean != 0 {
		t.Fatalf("empty classify = %+v", c)
	}
}

func TestClassifyDeterministic(t *testing.T) {
	for name, tc := range goldenCurves() {
		a := Classify(tc.xs, 2.5)
		b := Classify(tc.xs, 2.5)
		if a.Label != b.Label || a.SteadyStart != b.SteadyStart ||
			a.TimeToSteady != b.TimeToSteady || len(a.Changepoints) != len(b.Changepoints) {
			t.Fatalf("%s: classification not deterministic: %+v vs %+v", name, a, b)
		}
	}
}

func TestLabelNames(t *testing.T) {
	want := []string{"flat", "warmup", "slowdown", "non-monotonic"}
	for i, l := range Labels {
		if l.String() != want[i] {
			t.Fatalf("label %d = %s", i, l)
		}
	}
	if Label(99).String() != "label(99)" {
		t.Fatal("out-of-range label name")
	}
}

func spanEvents() []telemetry.Event {
	// A two-boot forest recorded the way the fleet records it: children
	// land before their EndSpan'd parents.
	return []telemetry.Event{
		{Seq: 2, Parent: 1, T: 0, Dur: 1, Cat: "boot", Name: "transport.fetch"},
		{Seq: 3, Parent: 1, T: 1, Dur: 2, Cat: "boot", Name: "warmup"},
		{Seq: 1, Parent: 0, T: 0, Dur: 3, Cat: "boot", Name: "boot"},
		{Seq: 5, Parent: 4, T: 10, Dur: 4, Cat: "boot", Name: "warmup"},
		{Seq: 4, Parent: 0, T: 10, Dur: 4, Cat: "boot", Name: "boot"},
		{Seq: 6, Parent: 4, T: 11, Cat: "boot", Name: "crash"}, // instant
	}
}

func TestBuildSpanTree(t *testing.T) {
	tree := BuildSpanTree(spanEvents())
	if len(tree.Roots) != 2 || tree.Orphans != 0 {
		t.Fatalf("roots=%d orphans=%d", len(tree.Roots), tree.Orphans)
	}
	// Roots sorted by start time; children by (T, Seq).
	if tree.Roots[0].Event.Seq != 1 || tree.Roots[1].Event.Seq != 4 {
		t.Fatalf("root order: %d, %d", tree.Roots[0].Event.Seq, tree.Roots[1].Event.Seq)
	}
	b1 := tree.Roots[0]
	if len(b1.Children) != 2 || b1.Children[0].Event.Name != "transport.fetch" ||
		b1.Children[1].Event.Name != "warmup" {
		t.Fatalf("boot 1 children wrong: %+v", b1.Children)
	}

	// Evict the parent of seq 5/6: they become orphan roots.
	evs := spanEvents()
	orphaned := append(evs[:4:4], evs[5]) // drop seq 4
	tree = BuildSpanTree(orphaned)
	if tree.Orphans != 2 || len(tree.Roots) != 3 {
		t.Fatalf("orphans=%d roots=%d", tree.Orphans, len(tree.Roots))
	}
}

func TestValidateSpansConservation(t *testing.T) {
	check := ValidateSpans(spanEvents())
	if !check.OK() {
		t.Fatalf("valid tree flagged: %v", check.Violations)
	}
	if check.Spans != 5 || check.Instants != 1 || check.Roots != 2 || check.Orphans != 0 {
		t.Fatalf("check = %+v", check)
	}

	// Child escaping its parent's window.
	bad := []telemetry.Event{
		{Seq: 1, T: 0, Dur: 2, Name: "boot"},
		{Seq: 2, Parent: 1, T: 1, Dur: 5, Name: "warmup"}, // ends at 6 > 2
	}
	check = ValidateSpans(bad)
	if check.OK() || !strings.Contains(check.Violations[0], "escapes parent") {
		t.Fatalf("escape not caught: %+v", check.Violations)
	}

	// Children summing past the parent's duration (but each contained).
	over := []telemetry.Event{
		{Seq: 1, T: 0, Dur: 3, Name: "boot"},
		{Seq: 2, Parent: 1, T: 0, Dur: 2, Name: "a"},
		{Seq: 3, Parent: 1, T: 1, Dur: 2, Name: "b"},
	}
	check = ValidateSpans(over)
	if check.OK() || !strings.Contains(check.Violations[0], "children sum") {
		t.Fatalf("over-sum not caught: %+v", check.Violations)
	}

	// Exact conservation (children tile the parent) passes.
	exact := []telemetry.Event{
		{Seq: 1, T: 0, Dur: 3, Name: "boot"},
		{Seq: 2, Parent: 1, T: 0, Dur: 1.5, Name: "fetch"},
		{Seq: 3, Parent: 1, T: 1.5, Dur: 1.5, Name: "warmup"},
	}
	if check = ValidateSpans(exact); !check.OK() {
		t.Fatalf("exact tiling flagged: %v", check.Violations)
	}
}

func TestQuantileSortedInterpolation(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	xs := []float64{40, 10, 30, 20} // unsorted on purpose
	if got := Quantile(xs, 0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 25 {
		t.Fatalf("q0.5 = %v, want 25", got)
	}
	if got := Quantile(xs, -1); got != 10 {
		t.Fatal("q must clamp low")
	}
	if xs[0] != 40 {
		t.Fatal("Quantile must not mutate its input")
	}
}

func TestReportVerdictsAndText(t *testing.T) {
	rep := NewReport(SLO{BootP99: 5, TimeToSteadyP95: 100, CapacityLoss: 0.10})
	js := rep.Regime("jumpstart")
	for i := 0; i < 20; i++ {
		js.AddBootLatency(1 + float64(i)*0.1)
	}
	js.AddClassification(Classification{Label: LabelWarmup, SteadyStart: 60, TimeToSteady: 60})
	js.AddClassification(Classification{Label: LabelFlat})
	js.AddFallback("store-miss", 2)
	js.AddFallback("revision-mismatch", 1)
	js.SetCapacityLoss(0.05)

	no := rep.Regime("nojumpstart")
	no.AddBootLatency(30)
	no.AddClassification(Classification{Label: LabelWarmup, SteadyStart: 300, TimeToSteady: 300})
	no.SetCapacityLoss(0.22)

	if rep.Regime("jumpstart") != js {
		t.Fatal("regime not memoized")
	}
	if js.LabelCount(LabelWarmup) != 1 || js.Curves() != 2 {
		t.Fatal("label tally wrong")
	}

	vs := js.Verdicts(rep.SLO)
	if len(vs) != 3 || !vs[0].Passed || !vs[1].Passed || !vs[2].Passed {
		t.Fatalf("jumpstart verdicts = %+v", vs)
	}
	if rep.Passed() {
		t.Fatal("nojumpstart breaches the SLO; report must fail")
	}

	rep.AttachSpanCheck(ValidateSpans(spanEvents()))
	var b1, b2 bytes.Buffer
	if err := rep.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("report text not deterministic")
	}
	out := b1.String()
	for _, needle := range []string{
		"regime jumpstart", "regime nojumpstart",
		"boot latency (n=20)", "time-to-steady (n=1)",
		"warmup=1 (50%)", "flat=1 (50%)",
		"fallbacks: revision-mismatch=1 store-miss=2",
		"slo boot-p99", "PASS", "FAIL",
		"span check: 5 spans, 1 instants, 2 roots, 0 orphans — OK",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("report missing %q:\n%s", needle, out)
		}
	}

	// A failing span check fails the report and renders violations.
	rep2 := NewReport(SLO{})
	rep2.AttachSpanCheck(ValidateSpans([]telemetry.Event{
		{Seq: 1, T: 0, Dur: 1, Name: "boot"},
		{Seq: 2, Parent: 1, T: 0, Dur: 9, Name: "warmup"},
	}))
	if rep2.Passed() {
		t.Fatal("violating span check must fail the report")
	}
	var b3 bytes.Buffer
	if err := rep2.WriteText(&b3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b3.String(), "VIOLATIONS") {
		t.Fatalf("violations not rendered:\n%s", b3.String())
	}
}

// TestClassifyDegenerateSeries pins the defined behavior for series
// with fewer than two samples — the shape WarmupSeries hands over for a
// server that never booted (or booted on the simulation's final tick).
// Both must come back labeled, with a defined steady state, and with
// no NaN anywhere; before the WarmupSeries suffix fix these could only
// be reached by constructing the slices by hand, now the fleet produces
// them routinely.
func TestClassifyDegenerateSeries(t *testing.T) {
	for _, tc := range []struct {
		name string
		xs   []float64
	}{
		{"empty", nil},
		{"single", []float64{3.5}},
	} {
		c := Classify(tc.xs, 2.0)
		if c.Label != LabelFlat {
			t.Fatalf("%s: label = %v, want flat", tc.name, c.Label)
		}
		if c.SteadyStart != 0 || c.TimeToSteady != 0 {
			t.Fatalf("%s: steady start %d at %v, want 0 at 0", tc.name, c.SteadyStart, c.TimeToSteady)
		}
		if len(c.SegmentMeans) != 1 {
			t.Fatalf("%s: segment means %v, want exactly one", tc.name, c.SegmentMeans)
		}
		if math.IsNaN(c.SegmentMeans[0]) || math.IsNaN(c.SteadyMean) {
			t.Fatalf("%s: NaN in classification %+v", tc.name, c)
		}
		if len(c.Changepoints) != 0 {
			t.Fatalf("%s: changepoints %v, want none", tc.name, c.Changepoints)
		}
	}
	if got := Classify([]float64{3.5}, 2.0).SteadyMean; got != 3.5 {
		t.Fatalf("single-sample steady mean = %v, want 3.5", got)
	}
}

// TestReportEmptyRegimeText pins the empty-snapshot report path: a
// regime that accumulated nothing (a run aborted before any boot
// completed) must still render — no NaN percentages, no 0/0 quantiles
// — and empty-sample quantiles must report 0.
func TestReportEmptyRegimeText(t *testing.T) {
	if got := Quantile(nil, 0.99); got != 0 {
		t.Fatalf("Quantile(nil) = %v, want 0", got)
	}
	rep := NewReport(SLO{BootP99: 1, TimeToSteadyP95: 1, CapacityLoss: 0.5})
	empty := rep.Regime("aborted")
	// Curves classified but zero boots recorded: the curve percentages
	// must divide by the curve count, never by the boot count.
	empty.AddClassification(Classify(nil, 1))
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("empty-regime report leaked NaN/Inf:\n%s", out)
	}
	if !strings.Contains(out, "regime aborted") || !strings.Contains(out, "flat=1 (100%)") {
		t.Fatalf("empty-regime report missing expected lines:\n%s", out)
	}
	// With no boot/steady samples the corresponding SLO verdicts are
	// suppressed rather than judged against empty data.
	if vs := empty.Verdicts(rep.SLO); len(vs) != 0 {
		t.Fatalf("verdicts over empty samples: %+v", vs)
	}
	if !rep.Passed() {
		t.Fatal("empty report must pass vacuously")
	}
}
