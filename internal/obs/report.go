package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Quantile returns the q-th quantile of samples with deterministic
// linear interpolation between order statistics (the "R-7" rule:
// position q·(n-1) on the sorted sample). It sorts a copy, so callers
// may pass accumulation slices directly. Empty input reports 0; q is
// clamped to [0, 1].
func Quantile(samples []float64, q float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// SLO is the fleet service-level objective a Report judges each regime
// against. Zero-valued fields disable the corresponding verdict.
type SLO struct {
	// BootP99 caps the p99 boot latency in virtual seconds.
	BootP99 float64
	// TimeToSteadyP95 caps the p95 time-to-steady in virtual seconds.
	TimeToSteadyP95 float64
	// CapacityLoss caps the capacity lost versus ideal, as a fraction
	// in [0, 1] (the paper's headline metric: Jump-Start halves it).
	CapacityLoss float64
}

// Regime accumulates observations for one experiment regime (e.g.
// "jumpstart" vs "nojumpstart"). Feed it from the deterministic merge
// phase only — it is not goroutine-safe, by design (same single-writer
// contract as telemetry.Trace).
type Regime struct {
	Name      string
	bootLat   []float64
	tts       []float64
	labels    [numLabels]int
	curves    int
	fallbacks map[string]int
	capLoss   float64
	hasCap    bool
}

// AddBootLatency records one server's boot latency in virtual seconds.
func (rg *Regime) AddBootLatency(lat float64) {
	rg.bootLat = append(rg.bootLat, lat)
}

// AddClassification records one classified throughput curve; warmup
// curves also contribute their time-to-steady.
func (rg *Regime) AddClassification(c Classification) {
	rg.curves++
	rg.labels[c.Label]++
	if c.SteadyStart >= 0 && c.Label == LabelWarmup {
		rg.tts = append(rg.tts, c.TimeToSteady)
	}
}

// AddFallback counts n boots that fell back for the given reason.
func (rg *Regime) AddFallback(reason string, n int) {
	if n == 0 {
		return
	}
	if rg.fallbacks == nil {
		rg.fallbacks = make(map[string]int)
	}
	rg.fallbacks[reason] += n
}

// SetCapacityLoss records the regime's capacity lost versus ideal as a
// fraction in [0, 1].
func (rg *Regime) SetCapacityLoss(frac float64) {
	rg.capLoss = frac
	rg.hasCap = true
}

// BootQuantile returns the q-th quantile of recorded boot latencies.
func (rg *Regime) BootQuantile(q float64) float64 { return Quantile(rg.bootLat, q) }

// SteadyQuantile returns the q-th quantile of recorded times-to-steady.
func (rg *Regime) SteadyQuantile(q float64) float64 { return Quantile(rg.tts, q) }

// LabelCount returns how many curves carried the label.
func (rg *Regime) LabelCount(l Label) int { return rg.labels[l] }

// Curves returns how many curves were classified.
func (rg *Regime) Curves() int { return rg.curves }

// Verdict is one SLO judgment line of a regime.
type Verdict struct {
	Name   string
	Value  float64
	Bound  float64
	Passed bool
}

// Verdicts judges the regime against slo, in deterministic order.
// Disabled (zero) SLO fields produce no verdict.
func (rg *Regime) Verdicts(slo SLO) []Verdict {
	var vs []Verdict
	if slo.BootP99 > 0 && len(rg.bootLat) > 0 {
		v := rg.BootQuantile(0.99)
		vs = append(vs, Verdict{"boot-p99", v, slo.BootP99, v <= slo.BootP99})
	}
	if slo.TimeToSteadyP95 > 0 && len(rg.tts) > 0 {
		v := rg.SteadyQuantile(0.95)
		vs = append(vs, Verdict{"time-to-steady-p95", v, slo.TimeToSteadyP95, v <= slo.TimeToSteadyP95})
	}
	if slo.CapacityLoss > 0 && rg.hasCap {
		vs = append(vs, Verdict{"capacity-loss", rg.capLoss, slo.CapacityLoss, rg.capLoss <= slo.CapacityLoss})
	}
	return vs
}

// Report rolls spans, classifications and fallback tallies into a
// per-regime fleet SLO report. Regimes render in insertion order;
// everything else is sorted, so WriteText output is byte-identical for
// identical inputs.
type Report struct {
	SLO     SLO
	regimes []*Regime
	byName  map[string]*Regime
	check   *SpanCheck
}

// NewReport builds an empty report judged against slo.
func NewReport(slo SLO) *Report {
	return &Report{SLO: slo, byName: make(map[string]*Regime)}
}

// Regime returns the accumulator for name, creating it on first use.
func (r *Report) Regime(name string) *Regime {
	rg := r.byName[name]
	if rg == nil {
		rg = &Regime{Name: name}
		r.byName[name] = rg
		r.regimes = append(r.regimes, rg)
	}
	return rg
}

// AttachSpanCheck records a span-validation result to render with the
// report.
func (r *Report) AttachSpanCheck(c SpanCheck) { r.check = &c }

// Passed reports whether every verdict of every regime passed (and the
// attached span check, if any).
func (r *Report) Passed() bool {
	if r.check != nil && !r.check.OK() {
		return false
	}
	for _, rg := range r.regimes {
		for _, v := range rg.Verdicts(r.SLO) {
			if !v.Passed {
				return false
			}
		}
	}
	return true
}

// WriteText renders the report as a deterministic plain-text table.
func (r *Report) WriteText(w io.Writer) error {
	for _, rg := range r.regimes {
		if _, err := fmt.Fprintf(w, "regime %s\n", rg.Name); err != nil {
			return err
		}
		if n := len(rg.bootLat); n > 0 {
			if _, err := fmt.Fprintf(w,
				"  boot latency (n=%d): p50=%.3fs p95=%.3fs p99=%.3fs\n",
				n, rg.BootQuantile(0.50), rg.BootQuantile(0.95), rg.BootQuantile(0.99)); err != nil {
				return err
			}
		}
		if n := len(rg.tts); n > 0 {
			if _, err := fmt.Fprintf(w,
				"  time-to-steady (n=%d): p50=%.1fs p95=%.1fs p99=%.1fs\n",
				n, rg.SteadyQuantile(0.50), rg.SteadyQuantile(0.95), rg.SteadyQuantile(0.99)); err != nil {
				return err
			}
		}
		if rg.curves > 0 {
			if _, err := fmt.Fprintf(w, "  curves (n=%d):", rg.curves); err != nil {
				return err
			}
			for _, l := range Labels {
				if _, err := fmt.Fprintf(w, " %s=%d (%.0f%%)",
					l, rg.labels[l], 100*float64(rg.labels[l])/float64(rg.curves)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if len(rg.fallbacks) > 0 {
			reasons := make([]string, 0, len(rg.fallbacks))
			for reason := range rg.fallbacks {
				reasons = append(reasons, reason)
			}
			sort.Strings(reasons)
			if _, err := fmt.Fprint(w, "  fallbacks:"); err != nil {
				return err
			}
			for _, reason := range reasons {
				if _, err := fmt.Fprintf(w, " %s=%d", reason, rg.fallbacks[reason]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		for _, v := range rg.Verdicts(r.SLO) {
			status := "PASS"
			if !v.Passed {
				status = "FAIL"
			}
			if _, err := fmt.Fprintf(w, "  slo %-18s %8.3f <= %8.3f  %s\n",
				v.Name, v.Value, v.Bound, status); err != nil {
				return err
			}
		}
	}
	if r.check != nil {
		status := "OK"
		if !r.check.OK() {
			status = fmt.Sprintf("%d VIOLATIONS", len(r.check.Violations))
		}
		if _, err := fmt.Fprintf(w,
			"span check: %d spans, %d instants, %d roots, %d orphans — %s\n",
			r.check.Spans, r.check.Instants, r.check.Roots, r.check.Orphans, status); err != nil {
			return err
		}
		for _, v := range r.check.Violations {
			if _, err := fmt.Fprintf(w, "  violation: %s\n", v); err != nil {
				return err
			}
		}
	}
	return nil
}
