// Package scenario is the deterministic traffic-scenario engine: it
// modulates per-region request demand and endpoint mix over virtual
// time, so the fleet and server simulations can be driven by the
// conditions the paper's production fleet actually sees — diurnal
// swings, flash crowds, and regional failover drills — instead of a
// stationary load.
//
// An Engine is immutable after New: every query is a pure function of
// (region, time), with all per-region randomness (phase jitter)
// derived up front from the seed via workload.Fork. That is what lets
// the fleet simulator evaluate scenarios inside its parallel per-server
// phase without perturbing the byte-identical-at-any-worker-count
// contract.
package scenario

import (
	"fmt"
	"math"

	"jumpstart/internal/workload"
)

// Kind selects the scenario shape.
type Kind uint8

const (
	// Steady is the null scenario: demand 1 everywhere, forever.
	Steady Kind = iota
	// Diurnal is a per-region phase-shifted sinusoid on request rate
	// and endpoint mix — regions peak at different wall-clock hours.
	Diurnal
	// FlashCrowd is a scheduled spike with configurable ramp, hold and
	// decay, hitting one region (or all of them).
	FlashCrowd
	// Failover is a regional drill: one region goes dark for a window
	// and its demand is redistributed onto the survivors in proportion
	// to their own demand.
	Failover
	numKinds
)

// String returns the flag-level name.
func (k Kind) String() string {
	switch k {
	case Steady:
		return "steady"
	case Diurnal:
		return "diurnal"
	case FlashCrowd:
		return "flashcrowd"
	case Failover:
		return "failover"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses the flag-level name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "steady":
		return Steady, nil
	case "diurnal":
		return Diurnal, nil
	case "flashcrowd":
		return FlashCrowd, nil
	case "failover":
		return Failover, nil
	default:
		return 0, fmt.Errorf("scenario: unknown kind %q (want steady, diurnal, flashcrowd or failover)", s)
	}
}

// Config parameterizes one scenario. Fields irrelevant to the Kind are
// ignored; DefaultConfig fills a sensible schedule for a given horizon.
type Config struct {
	Kind    Kind
	Regions int
	Seed    uint64 // forks the per-region phase jitter

	// Diurnal wave. Period is the virtual-day length; Amplitude the
	// peak-to-mean swing in [0, 1); RegionPhase the deterministic
	// phase offset between consecutive regions (fraction of a period,
	// the "time zones"); PhaseJitter a per-region random extra phase
	// (fraction of a period) forked from Seed. MixAmplitude is how far
	// the endpoint mix rotates at the wave peak (see MixShift).
	Period       float64
	Amplitude    float64
	RegionPhase  float64
	PhaseJitter  float64
	MixAmplitude float64

	// Flash crowd: demand ramps from 1 to Magnitude over FlashRamp
	// seconds starting at FlashStart, holds for FlashHold, and decays
	// back over FlashDecay. FlashRegion targets one region; -1 hits
	// every region at once.
	FlashStart     float64
	FlashRamp      float64
	FlashHold      float64
	FlashDecay     float64
	FlashMagnitude float64
	FlashRegion    int

	// Failover drill: FailRegion goes dark over [FailStart,
	// FailStart+FailDuration) and its demand lands on the survivors.
	FailRegion   int
	FailStart    float64
	FailDuration float64
}

// DefaultConfig returns a scenario of the given kind scheduled inside
// a run of the given horizon (virtual seconds): one full diurnal day
// per half-horizon, a flash crowd spiking through the middle third, a
// failover drill covering the middle half.
func DefaultConfig(kind Kind, regions int, horizon float64) Config {
	cfg := Config{
		Kind:    kind,
		Regions: regions,
		Seed:    1,

		Period:       horizon / 2,
		Amplitude:    0.4,
		RegionPhase:  1 / 3.0,
		PhaseJitter:  0.05,
		MixAmplitude: 0.25,

		FlashStart:     horizon / 3,
		FlashRamp:      horizon / 24,
		FlashHold:      horizon / 8,
		FlashDecay:     horizon / 12,
		FlashMagnitude: 2.5,
		FlashRegion:    0,

		FailRegion:   0,
		FailStart:    horizon / 4,
		FailDuration: horizon / 2,
	}
	return cfg
}

// Engine evaluates one scenario. Immutable after New; safe for
// concurrent use.
type Engine struct {
	cfg   Config
	phase []float64 // per-region diurnal phase, fraction of a period
}

// New validates cfg and builds its engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Kind >= numKinds {
		return nil, fmt.Errorf("scenario: unknown kind %d", int(cfg.Kind))
	}
	if cfg.Regions <= 0 {
		return nil, fmt.Errorf("scenario: Regions must be positive, got %d", cfg.Regions)
	}
	switch cfg.Kind {
	case Diurnal:
		if cfg.Period <= 0 {
			return nil, fmt.Errorf("scenario: diurnal Period must be positive, got %g", cfg.Period)
		}
		if cfg.Amplitude < 0 || cfg.Amplitude >= 1 {
			return nil, fmt.Errorf("scenario: diurnal Amplitude must be in [0, 1), got %g (demand would go negative)", cfg.Amplitude)
		}
		if cfg.PhaseJitter < 0 {
			return nil, fmt.Errorf("scenario: PhaseJitter must be non-negative, got %g", cfg.PhaseJitter)
		}
		if cfg.MixAmplitude < 0 || cfg.MixAmplitude > 1 {
			return nil, fmt.Errorf("scenario: MixAmplitude must be in [0, 1], got %g", cfg.MixAmplitude)
		}
	case FlashCrowd:
		if cfg.FlashMagnitude < 1 {
			return nil, fmt.Errorf("scenario: FlashMagnitude must be >= 1, got %g", cfg.FlashMagnitude)
		}
		if cfg.FlashRamp < 0 || cfg.FlashHold < 0 || cfg.FlashDecay < 0 {
			return nil, fmt.Errorf("scenario: flash ramp/hold/decay must be non-negative, got %g/%g/%g",
				cfg.FlashRamp, cfg.FlashHold, cfg.FlashDecay)
		}
		if cfg.FlashRegion < -1 || cfg.FlashRegion >= cfg.Regions {
			return nil, fmt.Errorf("scenario: FlashRegion %d out of range (want -1 for all, or 0..%d)",
				cfg.FlashRegion, cfg.Regions-1)
		}
	case Failover:
		if cfg.FailRegion < 0 || cfg.FailRegion >= cfg.Regions {
			return nil, fmt.Errorf("scenario: FailRegion %d out of range 0..%d", cfg.FailRegion, cfg.Regions-1)
		}
		if cfg.FailDuration <= 0 {
			return nil, fmt.Errorf("scenario: FailDuration must be positive, got %g", cfg.FailDuration)
		}
		if cfg.Regions < 2 {
			return nil, fmt.Errorf("scenario: failover needs at least 2 regions, got %d", cfg.Regions)
		}
	}
	e := &Engine{cfg: cfg, phase: make([]float64, cfg.Regions)}
	for r := range e.phase {
		// Deterministic per-region phase: the fixed time-zone ladder
		// plus a seed-forked jitter, both as fractions of a period.
		jit := float64(workload.Fork(cfg.Seed, uint64(r))>>11) / (1 << 53)
		e.phase[r] = float64(r)*cfg.RegionPhase + cfg.PhaseJitter*jit
	}
	return e, nil
}

// Kind returns the scenario shape.
func (e *Engine) Kind() Kind { return e.cfg.Kind }

// Config returns the validated configuration.
func (e *Engine) Config() Config { return e.cfg }

// flashEnvelope is the 0..1 trapezoid of the flash crowd at time t.
func (e *Engine) flashEnvelope(t float64) float64 {
	c := &e.cfg
	dt := t - c.FlashStart
	switch {
	case dt < 0:
		return 0
	case dt < c.FlashRamp:
		return dt / c.FlashRamp
	case dt < c.FlashRamp+c.FlashHold:
		return 1
	case dt < c.FlashRamp+c.FlashHold+c.FlashDecay:
		return 1 - (dt-c.FlashRamp-c.FlashHold)/c.FlashDecay
	default:
		return 0
	}
}

// Demand returns the region's raw demand multiplier at time t: 1 means
// the steady per-region load the fleet was sized for. It ignores
// failover redistribution — see EffectiveDemand for the demand a
// region's servers must actually absorb.
func (e *Engine) Demand(region int, t float64) float64 {
	c := &e.cfg
	switch c.Kind {
	case Diurnal:
		return 1 + c.Amplitude*math.Sin(2*math.Pi*(t/c.Period+e.phase[region]))
	case FlashCrowd:
		if c.FlashRegion < 0 || c.FlashRegion == region {
			return 1 + (c.FlashMagnitude-1)*e.flashEnvelope(t)
		}
		return 1
	default:
		return 1
	}
}

// RegionDown reports whether the region is dark at time t (failover
// drills only).
func (e *Engine) RegionDown(region int, t float64) bool {
	c := &e.cfg
	return c.Kind == Failover && region == c.FailRegion &&
		t >= c.FailStart && t < c.FailStart+c.FailDuration
}

// AnyRegionDown reports whether any region is dark at time t.
func (e *Engine) AnyRegionDown(t float64) bool {
	c := &e.cfg
	return c.Kind == Failover && t >= c.FailStart && t < c.FailStart+c.FailDuration
}

// Absorbing reports whether the region is up while some other region
// is dark — i.e. it is currently absorbing failed-over load.
func (e *Engine) Absorbing(region int, t float64) bool {
	return e.AnyRegionDown(t) && !e.RegionDown(region, t)
}

// EffectiveDemand returns the demand multiplier a region's servers
// must absorb at time t: its own Demand, plus — when other regions are
// dark — a share of the dark regions' demand proportional to its own.
// A dark region's effective demand is 0 (its traffic went elsewhere).
// Total demand is conserved: summing EffectiveDemand over all regions
// equals summing Demand, as long as at least one region is up.
func (e *Engine) EffectiveDemand(region int, t float64) float64 {
	if e.RegionDown(region, t) {
		return 0
	}
	own := e.Demand(region, t)
	if !e.AnyRegionDown(t) {
		return own
	}
	dark, alive := 0.0, 0.0
	for r := 0; r < e.cfg.Regions; r++ {
		d := e.Demand(r, t)
		if e.RegionDown(r, t) {
			dark += d
		} else {
			alive += d
		}
	}
	if dark == 0 || alive == 0 {
		return own
	}
	return own + dark*(own/alive)
}

// MixShift returns the endpoint-mix rotation for the region at time t,
// in [0, MixAmplitude] — the value workload.Traffic.SetMixShift
// applies. The diurnal wave rotates the mix in phase with its demand
// swing (different features peak at different hours); a flash crowd
// rotates the hit region's mix with its envelope (the crowd hammers
// one feature). Steady and failover scenarios leave the mix alone.
func (e *Engine) MixShift(region int, t float64) float64 {
	c := &e.cfg
	switch c.Kind {
	case Diurnal:
		return c.MixAmplitude * 0.5 * (1 + math.Sin(2*math.Pi*(t/c.Period+e.phase[region])))
	case FlashCrowd:
		if c.FlashRegion < 0 || c.FlashRegion == region {
			return c.MixAmplitude * e.flashEnvelope(t)
		}
	}
	return 0
}
