package scenario

import (
	"math"
	"strings"
	"testing"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Steady, Diurnal, FlashCrowd, Failover} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("hurricane"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
}

func TestNewValidation(t *testing.T) {
	horizon := 1200.0
	cases := map[string]func(*Config){
		"zero regions":  func(c *Config) { c.Regions = 0 },
		"bad amplitude": func(c *Config) { c.Kind = Diurnal; c.Amplitude = 1.5 },
		"zero period":   func(c *Config) { c.Kind = Diurnal; c.Period = 0 },
		"neg jitter":    func(c *Config) { c.Kind = Diurnal; c.PhaseJitter = -1 },
		"bad mix":       func(c *Config) { c.Kind = Diurnal; c.MixAmplitude = 2 },
		"weak flash":    func(c *Config) { c.Kind = FlashCrowd; c.FlashMagnitude = 0.5 },
		"neg ramp":      func(c *Config) { c.Kind = FlashCrowd; c.FlashRamp = -1 },
		"flash region":  func(c *Config) { c.Kind = FlashCrowd; c.FlashRegion = 7 },
		"fail region":   func(c *Config) { c.Kind = Failover; c.FailRegion = -1 },
		"fail duration": func(c *Config) { c.Kind = Failover; c.FailDuration = 0 },
		"single region": func(c *Config) { c.Kind = Failover; c.Regions = 1 },
		"unknown kind":  func(c *Config) { c.Kind = numKinds },
	}
	for name, mut := range cases {
		cfg := DefaultConfig(Steady, 3, horizon)
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", name)
		} else if !strings.HasPrefix(err.Error(), "scenario: ") {
			t.Errorf("%s: error %q missing package prefix", name, err)
		}
	}
	for _, k := range []Kind{Steady, Diurnal, FlashCrowd, Failover} {
		if _, err := New(DefaultConfig(k, 3, horizon)); err != nil {
			t.Errorf("DefaultConfig(%v) rejected: %v", k, err)
		}
	}
}

func TestSteadyIsNull(t *testing.T) {
	e, err := New(DefaultConfig(Steady, 3, 1200))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 100, 599, 1200} {
		for r := 0; r < 3; r++ {
			if d := e.Demand(r, tm); d != 1 {
				t.Fatalf("steady Demand(%d, %g) = %g", r, tm, d)
			}
			if d := e.EffectiveDemand(r, tm); d != 1 {
				t.Fatalf("steady EffectiveDemand(%d, %g) = %g", r, tm, d)
			}
			if e.RegionDown(r, tm) || e.MixShift(r, tm) != 0 {
				t.Fatal("steady scenario modulated something")
			}
		}
	}
}

func TestDiurnalWave(t *testing.T) {
	cfg := DefaultConfig(Diurnal, 3, 1200)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bounded by the amplitude, and genuinely varying.
	min, max := math.Inf(1), math.Inf(-1)
	for tm := 0.0; tm <= 1200; tm += 5 {
		d := e.Demand(0, tm)
		if d < 1-cfg.Amplitude-1e-12 || d > 1+cfg.Amplitude+1e-12 {
			t.Fatalf("Demand(0, %g) = %g outside 1±%g", tm, d, cfg.Amplitude)
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		if s := e.MixShift(0, tm); s < 0 || s > cfg.MixAmplitude+1e-12 {
			t.Fatalf("MixShift(0, %g) = %g outside [0, %g]", tm, s, cfg.MixAmplitude)
		}
	}
	if max-min < cfg.Amplitude {
		t.Fatalf("diurnal wave barely moved: min=%g max=%g", min, max)
	}
	// Regions are phase-shifted: their demand curves must differ.
	same := true
	for tm := 0.0; tm <= 1200; tm += 50 {
		if math.Abs(e.Demand(0, tm)-e.Demand(1, tm)) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("regions 0 and 1 ride an identical wave despite the phase offset")
	}
}

func TestFlashCrowdEnvelope(t *testing.T) {
	cfg := DefaultConfig(FlashCrowd, 3, 1200)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := cfg.FlashStart - 1
	peak := cfg.FlashStart + cfg.FlashRamp + cfg.FlashHold/2
	after := cfg.FlashStart + cfg.FlashRamp + cfg.FlashHold + cfg.FlashDecay + 1
	if d := e.Demand(cfg.FlashRegion, before); d != 1 {
		t.Fatalf("demand before the flash = %g", d)
	}
	if d := e.Demand(cfg.FlashRegion, peak); math.Abs(d-cfg.FlashMagnitude) > 1e-9 {
		t.Fatalf("demand at the hold = %g, want %g", d, cfg.FlashMagnitude)
	}
	if d := e.Demand(cfg.FlashRegion, after); d != 1 {
		t.Fatalf("demand after the decay = %g", d)
	}
	mid := cfg.FlashStart + cfg.FlashRamp/2
	if d := e.Demand(cfg.FlashRegion, mid); d <= 1 || d >= cfg.FlashMagnitude {
		t.Fatalf("mid-ramp demand = %g, want strictly between 1 and %g", d, cfg.FlashMagnitude)
	}
	// Other regions stay flat; FlashRegion -1 hits everyone.
	if d := e.Demand((cfg.FlashRegion+1)%3, peak); d != 1 {
		t.Fatalf("untargeted region spiked: %g", d)
	}
	cfg.FlashRegion = -1
	all, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if d := all.Demand(r, peak); math.Abs(d-cfg.FlashMagnitude) > 1e-9 {
			t.Fatalf("global flash missed region %d: %g", r, d)
		}
	}
}

func TestFailoverConservesDemand(t *testing.T) {
	cfg := DefaultConfig(Failover, 4, 1200)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	during := cfg.FailStart + cfg.FailDuration/2
	outside := cfg.FailStart - 1
	if !e.RegionDown(cfg.FailRegion, during) || e.RegionDown(cfg.FailRegion, outside) {
		t.Fatal("RegionDown window wrong")
	}
	if e.EffectiveDemand(cfg.FailRegion, during) != 0 {
		t.Fatal("dark region still has effective demand")
	}
	if !e.Absorbing((cfg.FailRegion+1)%4, during) {
		t.Fatal("survivor not marked absorbing")
	}
	if e.Absorbing(cfg.FailRegion, during) {
		t.Fatal("dark region marked absorbing")
	}
	for _, tm := range []float64{outside, during, cfg.FailStart, cfg.FailStart + cfg.FailDuration} {
		raw, eff := 0.0, 0.0
		for r := 0; r < 4; r++ {
			raw += e.Demand(r, tm)
			eff += e.EffectiveDemand(r, tm)
		}
		if math.Abs(raw-eff) > 1e-9 {
			t.Fatalf("t=%g: demand not conserved: raw=%g effective=%g", tm, raw, eff)
		}
	}
	// Survivors carry strictly more than their own demand mid-drill.
	surv := (cfg.FailRegion + 1) % 4
	if e.EffectiveDemand(surv, during) <= e.Demand(surv, during) {
		t.Fatal("survivor absorbed nothing during the drill")
	}
}

func TestEngineIsPureAndSeedSensitive(t *testing.T) {
	cfg := DefaultConfig(Diurnal, 3, 1200)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tm := 0.0; tm <= 1200; tm += 7 {
		for r := 0; r < 3; r++ {
			if a.Demand(r, tm) != b.Demand(r, tm) || a.MixShift(r, tm) != b.MixShift(r, tm) {
				t.Fatalf("same config, different engine output at (%d, %g)", r, tm)
			}
		}
	}
	cfg.Seed = 99
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for tm := 0.0; tm <= 1200 && !diff; tm += 7 {
		if a.Demand(0, tm) != c.Demand(0, tm) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("phase jitter ignored the seed")
	}
}
