package release

import (
	"fmt"
	"sort"
	"strings"

	"jumpstart/internal/lang"
)

// MutationStats reports what one revision changed relative to its
// predecessor, broken down by mutation kind. The split matters for the
// remapper's expected outcome: constant tweaks keep the CFG (fuzzy
// remappable), statement inserts change it (profile drops), renames
// keep the body (exact remappable via fingerprint), removals drop, and
// property reorders change only class layout (everything exact).
type MutationStats struct {
	ConstTweaks   int // IntLit constants bumped inside existing bodies
	StmtInserts   int // statements inserted into existing bodies
	FuncsAdded    int // brand-new free functions
	FuncsRemoved  int // uncalled helpers deleted
	FuncsRenamed  int // helpers renamed (all call sites updated)
	PropReorders  int // classes whose property order was rotated
	TouchedHelper int // distinct existing functions whose body changed
}

// mutator applies one revision's worth of churn to a parsed site.
// Files are visited in unit order and functions in declaration order,
// so a given (seed, revision) pair always produces the same edit.
type mutator struct {
	r     *rng
	files []*lang.File
	rev   int

	// free maps free-function name -> its declaration; built once so
	// rename/remove can check call-site constraints cheaply.
	free map[string]*lang.FuncDecl
	// calls counts call sites per callee name across the whole site.
	calls map[string]int

	stats   MutationStats
	renames map[string]string // old name -> new name, applied at the end
}

// helperName reports whether a free function is fair game for
// body-identity-changing mutations. Endpoints (ep*) are the traffic
// entry points — traffic looks them up by name, so they are never
// renamed or removed — and nf* functions were added by a previous
// revision's churn.
func mutableHelper(name string) bool {
	return strings.HasPrefix(name, "h") || strings.HasPrefix(name, "nf")
}

func newMutator(files []*lang.File, r *rng, rev int) *mutator {
	m := &mutator{
		r:       r,
		files:   files,
		rev:     rev,
		free:    map[string]*lang.FuncDecl{},
		calls:   map[string]int{},
		renames: map[string]string{},
	}
	for _, f := range files {
		for _, fn := range f.Funcs {
			m.free[fn.Name] = fn
			countCalls(fn.Body, m.calls)
		}
		for _, c := range f.Classes {
			for _, meth := range c.Methods {
				countCalls(meth.Body, m.calls)
			}
		}
	}
	return m
}

// apply runs the configured amount of churn. rate is the fraction of
// helper functions whose body is edited; the structural mutations
// (add/remove/rename/reorder) each fire a rate-scaled number of times.
func (m *mutator) apply(rate float64) {
	helpers := m.helperList()
	nEdit := int(rate*float64(len(helpers)) + 0.5)
	if nEdit < 1 {
		nEdit = 1
	}
	// Structural churn scales down from the edit volume: pushes change
	// many constants and a handful of signatures.
	nStruct := nEdit / 4
	if nStruct < 1 {
		nStruct = 1
	}

	for i := 0; i < nEdit; i++ {
		name := helpers[m.r.intn(len(helpers))]
		// Three out of four body edits are constant tweaks (CFG
		// preserved → fuzzy-remappable); the rest insert a statement
		// (CFG changed → the profile must drop).
		if m.r.intn(4) == 0 {
			m.insertStmt(m.free[name])
		} else {
			m.tweakConst(m.free[name])
		}
	}
	for i := 0; i < nStruct; i++ {
		m.renameFunc(helpers, i)
	}
	for i := 0; i < nStruct; i++ {
		m.addFunc(i)
	}
	m.removeUncalled(nStruct)
	m.reorderProps(nStruct)
	m.applyRenames()
}

// helperList returns mutable helper names in a deterministic order.
func (m *mutator) helperList() []string {
	names := make([]string, 0, len(m.free))
	for name := range m.free {
		if mutableHelper(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// tweakConst bumps one integer literal in the function body, modelling
// the classic "edit a constant, recompile" push. The opcode skeleton —
// and with it the CFG — is unchanged.
func (m *mutator) tweakConst(fn *lang.FuncDecl) {
	if fn == nil {
		return
	}
	lits := collectIntLits(fn.Body)
	if len(lits) == 0 {
		return
	}
	lit := lits[m.r.intn(len(lits))]
	// Keep small loop bounds and modulus bases positive and nonzero so
	// the mutated site still terminates and never divides by zero.
	lit.Val += int64(1 + m.r.intn(7))
	m.stats.ConstTweaks++
	m.stats.TouchedHelper++
}

// insertStmt prepends a cheap arithmetic statement to the body,
// changing the block structure (profiles collected against the old
// body are no longer meaningful and must drop).
func (m *mutator) insertStmt(fn *lang.FuncDecl) {
	if fn == nil || len(fn.Params) == 0 {
		return
	}
	p := fn.Params[0]
	// "if (p % K == 0) { p = p + C; }" adds a branch — a genuinely new CFG.
	k := int64(2 + m.r.intn(11))
	c := int64(1 + m.r.intn(9))
	stmt := &lang.IfStmt{
		Cond: &lang.Binary{Op: "==",
			L: &lang.Binary{Op: "%", L: &lang.Ident{Name: p}, R: &lang.IntLit{Val: k}},
			R: &lang.IntLit{Val: 0}},
		Then: []lang.Stmt{&lang.AssignStmt{
			LHS: &lang.Ident{Name: p}, Op: "+",
			RHS: &lang.IntLit{Val: c}}},
	}
	fn.Body = append([]lang.Stmt{stmt}, fn.Body...)
	m.stats.StmtInserts++
	m.stats.TouchedHelper++
}

// renameFunc renames one helper, leaving its body bit-identical, and
// records the rename for call-site rewriting. The remapper must
// recover these via the body fingerprint.
func (m *mutator) renameFunc(helpers []string, i int) {
	if len(helpers) == 0 {
		return
	}
	name := helpers[(m.r.intn(len(helpers))+i)%len(helpers)]
	if _, already := m.renames[name]; already {
		return
	}
	newName := fmt.Sprintf("%s_r%d", name, m.rev)
	if _, exists := m.free[newName]; exists {
		return
	}
	m.renames[name] = newName
	m.stats.FuncsRenamed++
}

// addFunc appends a new free function to a random unit. It is not
// called by anything yet — mirroring how new code lands dark before
// traffic reaches it — so it adds bytecode without disturbing profiles.
func (m *mutator) addFunc(i int) {
	f := m.files[m.r.intn(len(m.files))]
	name := fmt.Sprintf("nf%d_%d", m.rev, i)
	if _, exists := m.free[name]; exists {
		return
	}
	loop := int64(3 + m.r.intn(9))
	c := int64(2 + m.r.intn(7))
	fn := &lang.FuncDecl{
		Name:   name,
		Params: []string{"a"},
		Body: []lang.Stmt{
			&lang.AssignStmt{LHS: &lang.Ident{Name: "t"}, RHS: &lang.IntLit{Val: 0}},
			&lang.ForStmt{
				Init: &lang.AssignStmt{LHS: &lang.Ident{Name: "i"}, RHS: &lang.IntLit{Val: 0}},
				Cond: &lang.Binary{Op: "<", L: &lang.Ident{Name: "i"}, R: &lang.IntLit{Val: loop}},
				Step: &lang.AssignStmt{LHS: &lang.Ident{Name: "i"}, Op: "+", RHS: &lang.IntLit{Val: 1}},
				Body: []lang.Stmt{&lang.AssignStmt{
					LHS: &lang.Ident{Name: "t"}, Op: "+",
					RHS: &lang.Binary{Op: "%",
						L: &lang.Binary{Op: "+", L: &lang.Ident{Name: "a"},
							R: &lang.Binary{Op: "*", L: &lang.Ident{Name: "i"}, R: &lang.IntLit{Val: c}}},
						R: &lang.IntLit{Val: 97}}}},
			},
			&lang.ReturnStmt{Value: &lang.Ident{Name: "t"}},
		},
	}
	f.Funcs = append(f.Funcs, fn)
	m.free[name] = fn
	m.stats.FuncsAdded++
}

// removeUncalled deletes up to n helpers that no remaining code calls —
// dead code cleanup. Their profiles have nowhere to go and must drop.
func (m *mutator) removeUncalled(n int) {
	removed := 0
	for _, f := range m.files {
		if removed >= n {
			break
		}
		kept := f.Funcs[:0]
		for _, fn := range f.Funcs {
			if removed < n && mutableHelper(fn.Name) && m.calls[fn.Name] == 0 {
				if _, renamed := m.renames[fn.Name]; !renamed {
					delete(m.free, fn.Name)
					removed++
					m.stats.FuncsRemoved++
					continue
				}
			}
			kept = append(kept, fn)
		}
		f.Funcs = kept
	}
}

// reorderProps rotates the declared property order of up to n classes.
// Declared order is observable in MiniHack, so this is a real layout
// change — but method bytecode is untouched, so every profile should
// remap exactly.
func (m *mutator) reorderProps(n int) {
	done := 0
	for _, f := range m.files {
		for _, c := range f.Classes {
			if done >= n {
				return
			}
			if len(c.Props) < 2 {
				continue
			}
			rot := 1 + m.r.intn(len(c.Props)-1)
			c.Props = append(c.Props[rot:], c.Props[:rot]...)
			done++
			m.stats.PropReorders++
		}
	}
}

// applyRenames rewrites the declaration and every call site of each
// renamed function, across all files.
func (m *mutator) applyRenames() {
	if len(m.renames) == 0 {
		return
	}
	for _, f := range m.files {
		for _, fn := range f.Funcs {
			if to, ok := m.renames[fn.Name]; ok {
				fn.Name = to
			}
			renameCalls(fn.Body, m.renames)
		}
		for _, c := range f.Classes {
			for _, meth := range c.Methods {
				renameCalls(meth.Body, m.renames)
			}
		}
	}
}

// --- AST walking helpers ---

func countCalls(body []lang.Stmt, out map[string]int) {
	walkStmts(body, func(e lang.Expr) {
		if call, ok := e.(*lang.Call); ok {
			out[call.Name]++
		}
	})
}

func collectIntLits(body []lang.Stmt) []*lang.IntLit {
	var lits []*lang.IntLit
	walkStmts(body, func(e lang.Expr) {
		if l, ok := e.(*lang.IntLit); ok {
			lits = append(lits, l)
		}
	})
	return lits
}

func renameCalls(body []lang.Stmt, renames map[string]string) {
	walkStmts(body, func(e lang.Expr) {
		if call, ok := e.(*lang.Call); ok {
			if to, ok := renames[call.Name]; ok {
				call.Name = to
			}
		}
	})
}

// walkStmts visits every expression in the statement list, depth-first
// and in source order.
func walkStmts(ss []lang.Stmt, visit func(lang.Expr)) {
	for _, s := range ss {
		walkStmt(s, visit)
	}
}

func walkStmt(s lang.Stmt, visit func(lang.Expr)) {
	switch st := s.(type) {
	case *lang.ExprStmt:
		walkExpr(st.X, visit)
	case *lang.AssignStmt:
		walkExpr(st.LHS, visit)
		walkExpr(st.RHS, visit)
	case *lang.IfStmt:
		walkExpr(st.Cond, visit)
		walkStmts(st.Then, visit)
		walkStmts(st.Else, visit)
	case *lang.WhileStmt:
		walkExpr(st.Cond, visit)
		walkStmts(st.Body, visit)
	case *lang.ForStmt:
		if st.Init != nil {
			walkStmt(st.Init, visit)
		}
		if st.Cond != nil {
			walkExpr(st.Cond, visit)
		}
		if st.Step != nil {
			walkStmt(st.Step, visit)
		}
		walkStmts(st.Body, visit)
	case *lang.ForeachStmt:
		walkExpr(st.Seq, visit)
		walkStmts(st.Body, visit)
	case *lang.ReturnStmt:
		if st.Value != nil {
			walkExpr(st.Value, visit)
		}
	case *lang.BreakStmt, *lang.ContinueStmt:
	}
}

func walkExpr(e lang.Expr, visit func(lang.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *lang.ArrayLit:
		for _, ent := range x.Entries {
			walkExpr(ent.Key, visit)
			walkExpr(ent.Val, visit)
		}
	case *lang.Unary:
		walkExpr(x.X, visit)
	case *lang.Binary:
		walkExpr(x.L, visit)
		walkExpr(x.R, visit)
	case *lang.Call:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *lang.MethodCall:
		walkExpr(x.Recv, visit)
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *lang.New:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *lang.Index:
		walkExpr(x.Base, visit)
		walkExpr(x.Key, visit)
	case *lang.Prop:
		walkExpr(x.Base, visit)
	}
}
