package release

import (
	"testing"

	"jumpstart/internal/lang"
	"jumpstart/internal/workload"
)

func testSite(t *testing.T) *workload.Site {
	t.Helper()
	cfg := workload.DefaultSiteConfig()
	cfg.Units = 4
	cfg.HelpersPerUnit = 6
	cfg.EndpointsPerUnit = 3
	site, err := workload.GenerateSite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func buildChain(t *testing.T, site *workload.Site, cfg ChurnConfig, revs int) *Chain {
	t.Helper()
	c, err := NewChain(site, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < revs; i++ {
		if _, err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestChainReproducible: rebuilding a chain from the same site and
// config yields byte-identical sources, checksums and mutation stats
// at every revision — the property the fleet's revision identities
// rest on.
func TestChainReproducible(t *testing.T) {
	site := testSite(t)
	cfg := ChurnConfig{Seed: 7, Rate: 0.25}
	a := buildChain(t, site, cfg, 3)
	b := buildChain(t, site, cfg, 3)
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Rev(i), b.Rev(i)
		if ra.Checksum != rb.Checksum {
			t.Fatalf("rev %d checksum %x vs %x across rebuilds", i, ra.Checksum, rb.Checksum)
		}
		if ra.Stats != rb.Stats {
			t.Fatalf("rev %d stats %+v vs %+v", i, ra.Stats, rb.Stats)
		}
		for name, src := range ra.Sources {
			if rb.Sources[name] != src {
				t.Fatalf("rev %d unit %s differs across rebuilds", i, name)
			}
		}
		if i > 0 {
			if ra.Checksum == a.Rev(i-1).Checksum {
				t.Fatalf("rev %d checksum identical to rev %d — mutator did nothing", i, i-1)
			}
			if ra.Stats.ConstTweaks+ra.Stats.StmtInserts+ra.Stats.FuncsAdded+
				ra.Stats.FuncsRemoved+ra.Stats.FuncsRenamed+ra.Stats.PropReorders == 0 {
				t.Fatalf("rev %d applied zero mutations at rate %.2f", i, cfg.Rate)
			}
		}
	}

	// A different seed must walk a different path.
	other := buildChain(t, site, ChurnConfig{Seed: 8, Rate: 0.25}, 1)
	if other.Rev(1).Checksum == a.Rev(1).Checksum {
		t.Fatal("seeds 7 and 8 produced the same revision")
	}

	// Endpoints survive every revision (the mutator must never touch
	// them), so the fleet can serve traffic on any head.
	if _, err := a.Head().Site(site); err != nil {
		t.Fatal(err)
	}
}

// goldenChecksums pins the exact revision identities produced by
// seed 7 / rate 0.25 on the 4-unit test site. These freeze the whole
// pipeline — site generator, parser, mutator, printer — so any silent
// change to mutation behaviour fails loudly. Update deliberately if
// the mutator's semantics change on purpose.
var goldenChecksums = []uint64{
	0x722a4ceae25f59b7, // rev 0: the unmutated site
	0xa93be120cd9957dd,
	0x7ddc17fd19be9e6b,
	0x815315b70861a34d,
}

// TestChainGoldenChecksums verifies the pinned revision hashes.
func TestChainGoldenChecksums(t *testing.T) {
	c := buildChain(t, testSite(t), ChurnConfig{Seed: 7, Rate: 0.25}, 3)
	for i := 0; i < c.Len(); i++ {
		t.Logf("golden rev %d: %#x stats=%+v", i, c.Rev(i).Checksum, c.Rev(i).Stats)
		if c.Rev(i).Checksum != goldenChecksums[i] {
			t.Errorf("rev %d checksum %#x, golden %#x", i, c.Rev(i).Checksum, goldenChecksums[i])
		}
	}
}

// TestPrinterRoundTrip: PrintFile is a fixed point under reparsing for
// every unit the mutator emits — print(parse(print(f))) == print(f).
// Without this the chain's reparse step could drift sources even with
// zero mutations.
func TestPrinterRoundTrip(t *testing.T) {
	c := buildChain(t, testSite(t), ChurnConfig{Seed: 7, Rate: 0.25}, 2)
	for i := 0; i < c.Len(); i++ {
		rev := c.Rev(i)
		for _, name := range rev.UnitNames {
			f, err := lang.Parse(name, rev.Sources[name])
			if err != nil {
				t.Fatalf("rev %d unit %s does not reparse: %v", i, name, err)
			}
			printed := lang.PrintFile(f)
			f2, err := lang.Parse(name, printed)
			if err != nil {
				t.Fatalf("rev %d unit %s printed form does not reparse: %v", i, name, err)
			}
			if lang.PrintFile(f2) != printed {
				t.Fatalf("rev %d unit %s: printer is not a fixed point", i, name)
			}
		}
	}
}
