// Package release models continuous deployment for the synthetic
// MiniHack site: a deterministic, seed-driven source mutator evolves
// the site across revisions (edit function bodies, add/remove/rename
// functions, reorder class members), and each revision is recompiled
// through hackc into a fresh linked Program with its own build
// checksum.
//
// This is the layer the paper takes as ambient context — Facebook
// pushes new web code several times a day, and every push invalidates
// Jump-Start profile packages ("the profile data collected for one
// source code revision cannot be used for a different revision
// without remapping"). The revision chain produced here is what the
// cross-release remapper (prof.Remap), the revision-keyed package
// store (internal/jumpstart) and the fleet push cadence
// (cluster.Config.PushEvery) are exercised against.
package release

import (
	"fmt"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/hackc"
	"jumpstart/internal/lang"
	"jumpstart/internal/workload"
)

// rng is the same splitmix64 generator the workload package uses; the
// mutator needs its own copy because workload's is unexported.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// ChurnConfig controls the source mutator.
type ChurnConfig struct {
	// Seed drives every mutation draw; revision i forks its own stream
	// via workload.Fork(Seed, i), so revisions are independently
	// reproducible.
	Seed uint64
	// Rate is the fraction of helper functions whose body is edited
	// per revision (the paper's code-churn knob). Structural mutations
	// — add/remove/rename/reorder — fire at a quarter of that volume.
	Rate float64
}

// DefaultChurnConfig models a routine mid-day push: a few percent of
// the site's functions touched.
func DefaultChurnConfig() ChurnConfig { return ChurnConfig{Seed: 1, Rate: 0.05} }

// Revision is one deployed build of the site.
type Revision struct {
	// Index is the revision number; revision 0 is the unmutated site.
	Index int
	// Sources and UnitNames are the revision's compilable source tree.
	Sources   map[string]string
	UnitNames []string
	// Prog is the linked program (fingerprints computed).
	Prog *bytecode.Program
	// Checksum is the build checksum — an FNV-1a hash over the unit
	// names and sources in unit order. Packages are stamped with it,
	// and consumers on a different build reject them.
	Checksum uint64
	// Stats describes the mutations applied relative to the previous
	// revision (zero for revision 0).
	Stats MutationStats
}

// Chain evolves a site through successive revisions.
type Chain struct {
	cfg  ChurnConfig
	base *workload.Site
	revs []*Revision
}

// NewChain starts a revision chain at the given site (revision 0 is
// the site's own sources, recompiled checksummed but unmutated).
func NewChain(site *workload.Site, cfg ChurnConfig) (*Chain, error) {
	if cfg.Rate <= 0 {
		cfg.Rate = DefaultChurnConfig().Rate
	}
	rev0 := &Revision{
		Index:     0,
		Sources:   site.Sources,
		UnitNames: site.UnitNames,
		Prog:      site.Prog,
		Checksum:  SourceChecksum(site.Sources, site.UnitNames),
	}
	return &Chain{cfg: cfg, base: site, revs: []*Revision{rev0}}, nil
}

// Head returns the newest revision.
func (c *Chain) Head() *Revision { return c.revs[len(c.revs)-1] }

// Rev returns revision i (panics if not yet produced).
func (c *Chain) Rev(i int) *Revision { return c.revs[i] }

// Len returns how many revisions exist (including revision 0).
func (c *Chain) Len() int { return len(c.revs) }

// Next mutates the head revision's sources, recompiles, and appends
// the new revision. The mutation stream is forked from (Seed, index),
// so a chain re-built from the same site and config yields
// byte-identical sources at every index.
func (c *Chain) Next() (*Revision, error) {
	prev := c.Head()
	idx := prev.Index + 1
	files := make([]*lang.File, len(prev.UnitNames))
	for i, name := range prev.UnitNames {
		f, err := lang.Parse(name, prev.Sources[name])
		if err != nil {
			return nil, fmt.Errorf("release: rev %d reparse %s: %w", idx, name, err)
		}
		files[i] = f
	}
	m := newMutator(files, newRNG(workload.Fork(c.cfg.Seed, uint64(idx))), idx)
	m.apply(c.cfg.Rate)

	sources := make(map[string]string, len(files))
	names := append([]string(nil), prev.UnitNames...)
	for i, f := range files {
		sources[names[i]] = lang.PrintFile(f)
	}
	prog, err := hackc.CompileSources(sources, names, hackc.Options{Optimize: true})
	if err != nil {
		return nil, fmt.Errorf("release: rev %d failed to compile: %w", idx, err)
	}
	rev := &Revision{
		Index:     idx,
		Sources:   sources,
		UnitNames: names,
		Prog:      prog,
		Checksum:  SourceChecksum(sources, names),
		Stats:     m.stats,
	}
	c.revs = append(c.revs, rev)
	return rev, nil
}

// Site builds a workload.Site serving this revision: same config and
// endpoint set as the base site, but bound to the revision's program.
// Endpoints are never renamed or removed by the mutator, so every
// entry point re-resolves.
func (r *Revision) Site(base *workload.Site) (*workload.Site, error) {
	site := &workload.Site{
		Config:    base.Config,
		Prog:      r.Prog,
		Sources:   r.Sources,
		UnitNames: r.UnitNames,
	}
	for _, ep := range base.Endpoints {
		fn, ok := r.Prog.FuncByName(ep.Name)
		if !ok {
			return nil, fmt.Errorf("release: endpoint %s lost at rev %d", ep.Name, r.Index)
		}
		site.Endpoints = append(site.Endpoints, workload.Endpoint{
			Name: ep.Name, Fn: fn, Partition: ep.Partition,
		})
	}
	return site, nil
}

// SourceChecksum is the build checksum: FNV-1a over unit names and
// their sources, in unit order. It identifies a source tree exactly —
// any mutation, however small, yields a new revision identity.
func SourceChecksum(sources map[string]string, unitNames []string) uint64 {
	h := uint64(14695981039346656037)
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= uint64(len(s))
		h *= 1099511628211
	}
	for _, name := range unitNames {
		mixStr(name)
		mixStr(sources[name])
	}
	return h
}
