package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if v.Kind() != KindNull || !v.IsNull() {
		t.Fatalf("zero Value = %v, want null", v)
	}
	if v.Truthy() {
		t.Fatal("null must be falsy")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindStr: "string", KindArr: "array", KindObj: "object",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool(true) = %v", v)
	}
	if v := Int(-42); v.Kind() != KindInt || v.AsInt() != -42 {
		t.Errorf("Int(-42) = %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) = %v", v)
	}
	if v := Str("hi"); v.Kind() != KindStr || v.AsStr() != "hi" {
		t.Errorf("Str = %v", v)
	}
	a := NewArray(0)
	if v := Arr(a); v.Kind() != KindArr || v.AsArr() != a {
		t.Errorf("Arr = %v", v)
	}
}

func TestTruthy(t *testing.T) {
	falsy := []Value{Null, Bool(false), Int(0), Float(0), Str(""), Str("0"), Arr(NewArray(0))}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
	arr := NewArray(1)
	arr.Append(Int(1))
	truthy := []Value{Bool(true), Int(1), Int(-1), Float(0.5), Str("x"), Str("00"), Arr(arr)}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
}

func TestToInt(t *testing.T) {
	cases := []struct {
		in   Value
		want int64
	}{
		{Null, 0}, {Bool(true), 1}, {Bool(false), 0},
		{Int(7), 7}, {Float(3.9), 3}, {Float(-3.9), -3},
		{Str("42"), 42}, {Str("  -8 apples"), -8}, {Str("3.7"), 3},
		{Str("x"), 0}, {Str(""), 0}, {Str("1e3"), 1000},
	}
	for _, c := range cases {
		if got := c.in.ToInt(); got != c.want {
			t.Errorf("ToInt(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestToStr(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{Null, ""}, {Bool(true), "1"}, {Bool(false), ""},
		{Int(7), "7"}, {Float(2.5), "2.5"}, {Float(3), "3.0"},
		{Str("s"), "s"}, {Arr(NewArray(0)), "Array"},
	}
	for _, c := range cases {
		if got := c.in.ToStr(); got != c.want {
			t.Errorf("ToStr(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := Float(math.Inf(1)).ToStr(); got != "INF" {
		t.Errorf("inf = %q", got)
	}
	if got := Float(math.NaN()).ToStr(); got != "NAN" {
		t.Errorf("nan = %q", got)
	}
}

func TestIsNumericStr(t *testing.T) {
	yes := []string{"0", "12", "-3", "+4", "3.5", ".5", "1e3", "1.5e-2", " 7"}
	for _, s := range yes {
		if !IsNumericStr(s) {
			t.Errorf("IsNumericStr(%q) = false, want true", s)
		}
	}
	no := []string{"", "x", "12x", "1e", "--3", "0x10", "1.2.3"}
	for _, s := range no {
		if IsNumericStr(s) {
			t.Errorf("IsNumericStr(%q) = true, want false", s)
		}
	}
}

func TestValueStringer(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{Null, "null"}, {Bool(true), "true"}, {Bool(false), "false"},
		{Int(5), "5"}, {Str("a"), `"a"`},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in.Kind(), got, c.want)
		}
	}
}

// Property: ToInt and ToFloat agree on integer-valued inputs.
func TestPropIntFloatCoercionAgree(t *testing.T) {
	f := func(i int64) bool {
		v := Int(i)
		return v.ToFloat() == float64(i) && v.ToInt() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string round-trip for ints: ToStr then numeric parse
// reproduces the value.
func TestPropIntStringRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		s := Int(i).ToStr()
		return Str(s).ToInt() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
