package value

import (
	"testing"
	"testing/quick"
)

func TestArrayAppendAndGet(t *testing.T) {
	a := NewArray(0)
	a.Append(Str("x"))
	a.Append(Str("y"))
	if a.Len() != 2 {
		t.Fatalf("len = %d", a.Len())
	}
	v, ok := a.GetInt(0)
	if !ok || v.AsStr() != "x" {
		t.Fatalf("a[0] = %v, %v", v, ok)
	}
	v, ok = a.GetInt(1)
	if !ok || v.AsStr() != "y" {
		t.Fatalf("a[1] = %v, %v", v, ok)
	}
	if _, ok := a.GetInt(2); ok {
		t.Fatal("a[2] should be absent")
	}
}

func TestArrayAutoIncrementAfterExplicitKey(t *testing.T) {
	a := NewArray(0)
	a.SetInt(10, Int(1))
	a.Append(Int(2))
	if _, ok := a.GetInt(11); !ok {
		t.Fatal("append after a[10] should use key 11")
	}
}

func TestArrayStringKeys(t *testing.T) {
	a := NewArray(0)
	a.SetStr("name", Str("bob"))
	v, ok := a.GetStr("name")
	if !ok || v.AsStr() != "bob" {
		t.Fatalf(`a["name"] = %v`, v)
	}
	// Canonical numeric string keys alias integer keys, like PHP.
	a.SetStr("5", Int(99))
	v, ok = a.GetInt(5)
	if !ok || v.AsInt() != 99 {
		t.Fatalf(`a["5"] should alias a[5], got %v %v`, v, ok)
	}
	// Non-canonical ("05") stays a string key.
	a.SetStr("05", Int(1))
	if _, ok := a.GetInt(5); !ok {
		t.Fatal("a[5] should still exist")
	}
	v, _ = a.GetStr("05")
	if v.AsInt() != 1 {
		t.Fatalf(`a["05"] = %v`, v)
	}
}

func TestArraySetGenericKeyCoercion(t *testing.T) {
	a := NewArray(0)
	a.Set(Float(3.7), Str("v")) // float keys truncate
	if v, ok := a.GetInt(3); !ok || v.AsStr() != "v" {
		t.Fatalf("a[3] = %v %v", v, ok)
	}
	a.Set(Bool(true), Str("w"))
	if v, ok := a.GetInt(1); !ok || v.AsStr() != "w" {
		t.Fatalf("a[1] = %v %v", v, ok)
	}
	if v, ok := a.Get(Int(3)); !ok || v.AsStr() != "v" {
		t.Fatalf("Get(3) = %v %v", v, ok)
	}
}

func TestArrayDeletePreservesOrder(t *testing.T) {
	a := NewArray(0)
	a.Append(Int(10))
	a.Append(Int(20))
	a.Append(Int(30))
	if !a.Delete(Int(1)) {
		t.Fatal("delete a[1] failed")
	}
	if a.Delete(Int(1)) {
		t.Fatal("double delete should fail")
	}
	if a.Len() != 2 {
		t.Fatalf("len = %d", a.Len())
	}
	// Order preserved; keys unchanged.
	if a.At(0).Val.AsInt() != 10 || a.At(1).Val.AsInt() != 30 {
		t.Fatalf("order after delete: %v", a.String())
	}
	if a.At(1).IntKey != 2 {
		t.Fatalf("key after delete = %d, want 2", a.At(1).IntKey)
	}
	// Index map still consistent.
	if v, ok := a.GetInt(2); !ok || v.AsInt() != 30 {
		t.Fatalf("a[2] after delete = %v %v", v, ok)
	}
}

func TestArrayDeleteStringKey(t *testing.T) {
	a := NewArray(0)
	a.SetStr("k", Int(1))
	a.SetStr("07", Int(2))
	if !a.Delete(Str("k")) {
		t.Fatal("delete string key failed")
	}
	if !a.Delete(Str("07")) {
		t.Fatal("delete non-canonical key failed")
	}
	if a.Len() != 0 {
		t.Fatalf("len = %d", a.Len())
	}
}

func TestArrayKeysValuesClone(t *testing.T) {
	a := NewArray(0)
	a.Append(Int(1))
	a.SetStr("s", Int(2))
	ks := a.Keys()
	if len(ks) != 2 || ks[0].AsInt() != 0 || ks[1].AsStr() != "s" {
		t.Fatalf("keys = %v", ks)
	}
	vs := a.Values()
	if len(vs) != 2 || vs[1].AsInt() != 2 {
		t.Fatalf("values = %v", vs)
	}
	c := a.Clone()
	c.SetStr("s", Int(9))
	if v, _ := a.GetStr("s"); v.AsInt() != 2 {
		t.Fatal("clone must not alias original")
	}
	if v, _ := c.GetStr("s"); v.AsInt() != 9 {
		t.Fatal("clone write lost")
	}
}

func TestArraySortByValue(t *testing.T) {
	a := NewArray(0)
	a.Append(Int(3))
	a.Append(Int(1))
	a.Append(Int(2))
	a.SortByValue()
	want := []int64{1, 2, 3}
	for i, w := range want {
		if a.At(i).Val.AsInt() != w {
			t.Fatalf("sorted[%d] = %v, want %d", i, a.At(i).Val, w)
		}
		if a.At(i).IntKey != int64(i) {
			t.Fatalf("sorted key[%d] = %d, want %d", i, a.At(i).IntKey, i)
		}
	}
}

func TestArrayString(t *testing.T) {
	a := NewArray(0)
	a.Append(Int(1))
	a.SetStr("k", Str("v"))
	want := `[0 => 1, "k" => "v"]`
	if got := a.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestArrayIDsUnique(t *testing.T) {
	a, b := NewArray(0), NewArray(0)
	if a.ArrayID() == b.ArrayID() {
		t.Fatal("array ids must be unique")
	}
}

func TestCanonicalIntKey(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true}, {"7", 7, true}, {"-3", -3, true},
		{"42", 42, true}, {"007", 0, false}, {"", 0, false},
		{"-", 0, false}, {"1.5", 0, false}, {"+1", 0, false},
		{"99999999999999999999999", 0, false},
	}
	for _, c := range cases {
		got, ok := canonicalIntKey(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("canonicalIntKey(%q) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// Property: after SetInt(k, v), GetInt(k) returns v.
func TestPropArraySetGetRoundTrip(t *testing.T) {
	f := func(keys []int16, vals []int16) bool {
		a := NewArray(0)
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		want := map[int64]int64{}
		for i := 0; i < n; i++ {
			a.SetInt(int64(keys[i]), Int(int64(vals[i])))
			want[int64(keys[i])] = int64(vals[i])
		}
		if a.Len() != len(want) {
			return false
		}
		for k, v := range want {
			got, ok := a.GetInt(k)
			if !ok || got.AsInt() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Delete leaves the remaining entries fetchable.
func TestPropArrayDeleteConsistent(t *testing.T) {
	f := func(n uint8, del uint8) bool {
		size := int(n%20) + 1
		a := NewArray(0)
		for i := 0; i < size; i++ {
			a.Append(Int(int64(i * 10)))
		}
		k := int64(del) % int64(size)
		a.Delete(Int(k))
		if a.Len() != size-1 {
			return false
		}
		for i := 0; i < size; i++ {
			v, ok := a.GetInt(int64(i))
			if int64(i) == k {
				if ok {
					return false
				}
				continue
			}
			if !ok || v.AsInt() != int64(i*10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
