package value

import (
	"math"
	"testing"
	"testing/quick"
)

func mustOp(t *testing.T) func(Value, error) Value {
	return func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return v
	}
}

func TestAddIntInt(t *testing.T) {
	v := mustOp(t)(Add(Int(2), Int(3)))
	if v.Kind() != KindInt || v.AsInt() != 5 {
		t.Fatalf("2+3 = %v", v)
	}
}

func TestAddOverflowPromotes(t *testing.T) {
	v := mustOp(t)(Add(Int(math.MaxInt64), Int(1)))
	if v.Kind() != KindFloat {
		t.Fatalf("MaxInt64+1 should promote to float, got %v (%v)", v, v.Kind())
	}
	v = mustOp(t)(Sub(Int(math.MinInt64), Int(1)))
	if v.Kind() != KindFloat {
		t.Fatalf("MinInt64-1 should promote to float, got %v", v)
	}
}

func TestAddMixed(t *testing.T) {
	v := mustOp(t)(Add(Int(1), Float(0.5)))
	if v.Kind() != KindFloat || v.AsFloat() != 1.5 {
		t.Fatalf("1+0.5 = %v", v)
	}
	v = mustOp(t)(Add(Str("10"), Int(5)))
	if v.Kind() != KindFloat && v.Kind() != KindInt {
		t.Fatalf(`"10"+5 kind = %v`, v.Kind())
	}
	if v.ToInt() != 15 {
		t.Fatalf(`"10"+5 = %v`, v)
	}
}

func TestAddTypeError(t *testing.T) {
	_, err := Add(Str("abc"), Int(1))
	if err == nil {
		t.Fatal(`"abc"+1 should error`)
	}
	ae, ok := err.(*ArithError)
	if !ok {
		t.Fatalf("want *ArithError, got %T", err)
	}
	if ae.Op != "+" || ae.Left != KindStr {
		t.Fatalf("error detail = %+v", ae)
	}
	if ae.Error() == "" {
		t.Fatal("empty error message")
	}
	arr := NewArray(0)
	if _, err := Add(Arr(arr), Int(1)); err == nil {
		t.Fatal("array+int should error")
	}
}

func TestMulOverflowPromotes(t *testing.T) {
	v := mustOp(t)(Mul(Int(math.MaxInt64/2+1), Int(2)))
	if v.Kind() != KindFloat {
		t.Fatalf("overflow mul should promote, got kind %v", v.Kind())
	}
	v = mustOp(t)(Mul(Int(0), Int(math.MinInt64)))
	if v.Kind() != KindInt || v.AsInt() != 0 {
		t.Fatalf("0*min = %v", v)
	}
	v = mustOp(t)(Mul(Int(-1), Int(math.MinInt64)))
	if v.Kind() != KindFloat {
		t.Fatalf("-1*MinInt64 should promote, got %v", v)
	}
}

func TestDiv(t *testing.T) {
	v := mustOp(t)(Div(Int(6), Int(3)))
	if v.Kind() != KindInt || v.AsInt() != 2 {
		t.Fatalf("6/3 = %v", v)
	}
	v = mustOp(t)(Div(Int(7), Int(2)))
	if v.Kind() != KindFloat || v.AsFloat() != 3.5 {
		t.Fatalf("7/2 = %v", v)
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Fatal("1/0 should error")
	}
	if _, err := Div(Float(1), Float(0)); err == nil {
		t.Fatal("1.0/0.0 should error")
	}
}

func TestMod(t *testing.T) {
	v := mustOp(t)(Mod(Int(7), Int(3)))
	if v.AsInt() != 1 {
		t.Fatalf("7%%3 = %v", v)
	}
	if _, err := Mod(Int(1), Int(0)); err == nil {
		t.Fatal("1%0 should error")
	}
	v = mustOp(t)(Mod(Int(math.MinInt64), Int(-1)))
	if v.AsInt() != 0 {
		t.Fatalf("MinInt64 %% -1 = %v", v)
	}
}

func TestNeg(t *testing.T) {
	v := mustOp(t)(Neg(Int(5)))
	if v.AsInt() != -5 {
		t.Fatalf("-5 = %v", v)
	}
	v = mustOp(t)(Neg(Int(math.MinInt64)))
	if v.Kind() != KindFloat {
		t.Fatalf("-MinInt64 should promote, got %v", v)
	}
	if _, err := Neg(Str("x")); err == nil {
		t.Fatal("neg of non-numeric string should error")
	}
}

func TestConcat(t *testing.T) {
	v := Concat(Str("a"), Int(1))
	if v.AsStr() != "a1" {
		t.Fatalf("concat = %v", v)
	}
	v = Concat(Null, Bool(true))
	if v.AsStr() != "1" {
		t.Fatalf("concat null.true = %q", v.AsStr())
	}
}

func TestEquals(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Float(1.0), true},
		{Int(1), Str("1"), true},
		{Str("1"), Str("01"), true}, // numeric strings compare numerically
		{Str("abc"), Str("abc"), true},
		{Str("abc"), Int(0), false}, // PHP8: non-numeric string != 0
		{Null, Null, true},
		{Null, Bool(false), true},
		{Null, Int(0), false},
		{Bool(true), Int(5), true},
		{Int(1), Int(2), false},
	}
	for _, c := range cases {
		if got := Equals(c.a, c.b); got != c.want {
			t.Errorf("Equals(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualsArrays(t *testing.T) {
	a := NewArray(0)
	a.Append(Int(1))
	a.SetStr("k", Str("v"))
	b := NewArray(0)
	b.Append(Int(1))
	b.SetStr("k", Str("v"))
	if !Equals(Arr(a), Arr(b)) {
		t.Fatal("equal arrays should be ==")
	}
	b.SetStr("k", Str("w"))
	if Equals(Arr(a), Arr(b)) {
		t.Fatal("different arrays should not be ==")
	}
	c := NewArray(0)
	c.Append(Int(1))
	if Equals(Arr(a), Arr(c)) {
		t.Fatal("different lengths should not be ==")
	}
}

func TestIdentical(t *testing.T) {
	if Identical(Int(1), Float(1)) {
		t.Fatal("1 === 1.0 must be false")
	}
	if !Identical(Str("x"), Str("x")) {
		t.Fatal(`"x" === "x" must be true`)
	}
	if Identical(Str("1"), Str("01")) {
		t.Fatal(`"1" === "01" must be false`)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("10"), Str("9"), 1}, // numeric strings compare numerically
		{Float(1.5), Int(1), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBitwise(t *testing.T) {
	if BitAnd(Int(6), Int(3)).AsInt() != 2 {
		t.Error("6&3")
	}
	if BitOr(Int(6), Int(3)).AsInt() != 7 {
		t.Error("6|3")
	}
	if BitXor(Int(6), Int(3)).AsInt() != 5 {
		t.Error("6^3")
	}
	if Shl(Int(1), Int(4)).AsInt() != 16 {
		t.Error("1<<4")
	}
	if Shr(Int(-16), Int(2)).AsInt() != -4 {
		t.Error("-16>>2")
	}
}

// Property: Add is commutative on in-range ints.
func TestPropAddCommutative(t *testing.T) {
	f := func(a, b int32) bool {
		x, err1 := Add(Int(int64(a)), Int(int64(b)))
		y, err2 := Add(Int(int64(b)), Int(int64(a)))
		return err1 == nil && err2 == nil && Identical(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric.
func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equals implies Compare == 0 for ints.
func TestPropEqualsConsistentWithCompare(t *testing.T) {
	f := func(a, b int64) bool {
		if Equals(Int(a), Int(b)) {
			return Compare(Int(a), Int(b)) == 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
