package value

import (
	"fmt"
	"math"
)

// ArithError describes a dynamic-type error raised by an arithmetic or
// comparison bytecode. The interpreter converts it into a MiniHack
// runtime fault; the JIT's specialized code never sees it because
// guards divert non-conforming operands back to the generic path.
type ArithError struct {
	Op          string
	Left, Right Kind
}

func (e *ArithError) Error() string {
	return fmt.Sprintf("value: unsupported operand types for %s: %s %s %s",
		e.Op, e.Left, e.Op, e.Right)
}

// numericPair classifies a binary arithmetic operation: when both
// operands coerce to integers without loss (int, bool, null, integral
// numeric strings) it uses int64 math with overflow promotion to
// float, like PHP; otherwise float math.
func numericPair(a, b Value) (ai, bi int64, af, bf float64, bothInt bool) {
	ai, aok := intRepr(a)
	bi, bok := intRepr(b)
	if aok && bok {
		return ai, bi, 0, 0, true
	}
	return 0, 0, a.ToFloat(), b.ToFloat(), false
}

// intRepr returns v's exact integer representation if it has one.
func intRepr(v Value) (int64, bool) {
	switch v.kind {
	case KindNull:
		return 0, true
	case KindBool:
		if v.AsBool() {
			return 1, true
		}
		return 0, true
	case KindInt:
		return v.AsInt(), true
	case KindStr:
		return parseIntPrefix(v.AsStr())
	default:
		return 0, false
	}
}

func arithOK(v Value) bool {
	switch v.kind {
	case KindNull, KindBool, KindInt, KindFloat:
		return true
	case KindStr:
		return IsNumericStr(v.AsStr())
	default:
		return false
	}
}

// Add implements the Add bytecode: numeric addition with int overflow
// promotion to float.
//
// The int+int case skips the generic classification entirely — it is by
// far the most common operand pair on the interpreter's hot path, and
// intRepr/arithOK would reach the same int64 math anyway.
func Add(a, b Value) (Value, error) {
	if a.kind == KindInt && b.kind == KindInt {
		ai, bi := a.AsInt(), b.AsInt()
		s := ai + bi
		if (s > ai) == (bi > 0) || bi == 0 {
			return Int(s), nil
		}
		return Float(float64(ai) + float64(bi)), nil
	}
	if !arithOK(a) || !arithOK(b) {
		return Null, &ArithError{Op: "+", Left: a.kind, Right: b.kind}
	}
	ai, bi, af, bf, ints := numericPair(a, b)
	if ints {
		s := ai + bi
		if (s > ai) == (bi > 0) || bi == 0 {
			return Int(s), nil
		}
		return Float(float64(ai) + float64(bi)), nil
	}
	return Float(af + bf), nil
}

// Sub implements the Sub bytecode.
func Sub(a, b Value) (Value, error) {
	if a.kind == KindInt && b.kind == KindInt {
		ai, bi := a.AsInt(), b.AsInt()
		d := ai - bi
		if (d < ai) == (bi > 0) || bi == 0 {
			return Int(d), nil
		}
		return Float(float64(ai) - float64(bi)), nil
	}
	if !arithOK(a) || !arithOK(b) {
		return Null, &ArithError{Op: "-", Left: a.kind, Right: b.kind}
	}
	ai, bi, af, bf, ints := numericPair(a, b)
	if ints {
		d := ai - bi
		if (d < ai) == (bi > 0) || bi == 0 {
			return Int(d), nil
		}
		return Float(float64(ai) - float64(bi)), nil
	}
	return Float(af - bf), nil
}

// Mul implements the Mul bytecode.
func Mul(a, b Value) (Value, error) {
	if a.kind == KindInt && b.kind == KindInt {
		ai, bi := a.AsInt(), b.AsInt()
		if ai == 0 || bi == 0 {
			return Int(0), nil
		}
		p := ai * bi
		if p/bi == ai && !(ai == -1 && bi == math.MinInt64) && !(bi == -1 && ai == math.MinInt64) {
			return Int(p), nil
		}
		return Float(float64(ai) * float64(bi)), nil
	}
	if !arithOK(a) || !arithOK(b) {
		return Null, &ArithError{Op: "*", Left: a.kind, Right: b.kind}
	}
	ai, bi, af, bf, ints := numericPair(a, b)
	if ints {
		if ai == 0 || bi == 0 {
			return Int(0), nil
		}
		p := ai * bi
		if p/bi == ai && !(ai == -1 && bi == math.MinInt64) && !(bi == -1 && ai == math.MinInt64) {
			return Int(p), nil
		}
		return Float(float64(ai) * float64(bi)), nil
	}
	return Float(af * bf), nil
}

// Div implements the Div bytecode. Integer division with an exact
// quotient yields an int; otherwise a float. Division by zero is an
// error (PHP 8 semantics).
func Div(a, b Value) (Value, error) {
	if a.kind == KindInt && b.kind == KindInt {
		ai, bi := a.AsInt(), b.AsInt()
		if bi == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		if ai%bi == 0 && !(ai == math.MinInt64 && bi == -1) {
			return Int(ai / bi), nil
		}
		return Float(float64(ai) / float64(bi)), nil
	}
	if !arithOK(a) || !arithOK(b) {
		return Null, &ArithError{Op: "/", Left: a.kind, Right: b.kind}
	}
	ai, bi, af, bf, ints := numericPair(a, b)
	if ints {
		if bi == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		if ai%bi == 0 && !(ai == math.MinInt64 && bi == -1) {
			return Int(ai / bi), nil
		}
		return Float(float64(ai) / float64(bi)), nil
	}
	if bf == 0 {
		return Null, fmt.Errorf("value: division by zero")
	}
	return Float(af / bf), nil
}

// Mod implements the Mod bytecode (integer modulus).
func Mod(a, b Value) (Value, error) {
	if a.kind == KindInt && b.kind == KindInt {
		ai, bi := a.AsInt(), b.AsInt()
		if bi == 0 {
			return Null, fmt.Errorf("value: modulo by zero")
		}
		if ai == math.MinInt64 && bi == -1 {
			return Int(0), nil
		}
		return Int(ai % bi), nil
	}
	if !arithOK(a) || !arithOK(b) {
		return Null, &ArithError{Op: "%", Left: a.kind, Right: b.kind}
	}
	bi := b.ToInt()
	if bi == 0 {
		return Null, fmt.Errorf("value: modulo by zero")
	}
	ai := a.ToInt()
	if ai == math.MinInt64 && bi == -1 {
		return Int(0), nil
	}
	return Int(ai % bi), nil
}

// Neg implements unary minus.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindInt:
		i := a.AsInt()
		if i == math.MinInt64 {
			return Float(-float64(i)), nil
		}
		return Int(-i), nil
	case KindFloat:
		return Float(-a.AsFloat()), nil
	default:
		if arithOK(a) {
			return Float(-a.ToFloat()), nil
		}
		return Null, &ArithError{Op: "neg", Left: a.kind, Right: KindNull}
	}
}

// Concat implements the Concat bytecode: string concatenation with
// implicit coercion of both operands.
func Concat(a, b Value) Value {
	return Str(a.ToStr() + b.ToStr())
}

// Equals implements loose equality (==) with PHP 8-style semantics for
// the supported kinds: numeric comparison when both sides are numeric,
// string comparison for string/string, element-wise for arrays,
// identity for objects.
func Equals(a, b Value) bool {
	if a.kind == b.kind {
		return sameKindEquals(a, b)
	}
	switch {
	case a.kind == KindNull || b.kind == KindNull:
		// null == x only when x is null (handled above) or falsy bool.
		if a.kind == KindBool || b.kind == KindBool {
			return a.Truthy() == b.Truthy()
		}
		return false
	case a.kind == KindBool || b.kind == KindBool:
		return a.Truthy() == b.Truthy()
	case isNumericKind(a) && isNumericKind(b):
		return a.ToFloat() == b.ToFloat()
	case a.kind == KindStr && isNumericKind(b) && IsNumericStr(a.AsStr()):
		return a.ToFloat() == b.ToFloat()
	case b.kind == KindStr && isNumericKind(a) && IsNumericStr(b.AsStr()):
		return a.ToFloat() == b.ToFloat()
	default:
		return false
	}
}

func isNumericKind(v Value) bool { return v.kind == KindInt || v.kind == KindFloat }

func sameKindEquals(a, b Value) bool {
	switch a.kind {
	case KindNull:
		return true
	case KindBool:
		return a.AsBool() == b.AsBool()
	case KindInt:
		return a.AsInt() == b.AsInt()
	case KindFloat:
		return a.AsFloat() == b.AsFloat()
	case KindStr:
		if a.AsStr() == b.AsStr() {
			return true
		}
		// PHP loose equality compares numeric strings numerically.
		return IsNumericStr(a.AsStr()) && IsNumericStr(b.AsStr()) && Compare(a, b) == 0
	case KindArr:
		if a.AsArr() == b.AsArr() {
			return true
		}
		if a.AsArr().Len() != b.AsArr().Len() {
			return false
		}
		for i := 0; i < a.AsArr().Len(); i++ {
			ea, eb := a.AsArr().At(i), b.AsArr().At(i)
			if ea.IsStr != eb.IsStr || ea.IntKey != eb.IntKey || ea.StrKey != eb.StrKey {
				return false
			}
			if !Equals(ea.Val, eb.Val) {
				return false
			}
		}
		return true
	case KindObj:
		return a.AsObj() == b.AsObj()
	default:
		return false
	}
}

// Identical implements strict equality (===): same kind and same value,
// no coercion; arrays compare element-wise with identical entries.
func Identical(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	if a.kind == KindStr {
		return a.AsStr() == b.AsStr() // no numeric-string loosening under ===
	}
	return sameKindEquals(a, b)
}

// Compare returns -1, 0, or +1 ordering a relative to b, with PHP-style
// cross-type coercion. Used by relational bytecodes and array sorting.
func Compare(a, b Value) int {
	if a.kind == KindInt && b.kind == KindInt {
		// Same float conversion as the generic path below, minus the
		// ToFloat kind switches.
		return cmpFloat(float64(a.AsInt()), float64(b.AsInt()))
	}
	if a.kind == KindStr && b.kind == KindStr {
		if IsNumericStr(a.AsStr()) && IsNumericStr(b.AsStr()) {
			return cmpFloat(a.ToFloat(), b.ToFloat())
		}
		switch {
		case a.AsStr() < b.AsStr():
			return -1
		case a.AsStr() > b.AsStr():
			return 1
		default:
			return 0
		}
	}
	if a.kind == KindArr && b.kind == KindArr {
		return cmpFloat(float64(a.AsArr().Len()), float64(b.AsArr().Len()))
	}
	return cmpFloat(a.ToFloat(), b.ToFloat())
}

func cmpFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// BitAnd, BitOr, BitXor, Shl, Shr implement the integer bitwise ops.
func BitAnd(a, b Value) Value { return Int(a.ToInt() & b.ToInt()) }

// BitOr implements bitwise or.
func BitOr(a, b Value) Value { return Int(a.ToInt() | b.ToInt()) }

// BitXor implements bitwise xor.
func BitXor(a, b Value) Value { return Int(a.ToInt() ^ b.ToInt()) }

// Shl implements left shift; shift counts are masked to 0..63.
func Shl(a, b Value) Value { return Int(a.ToInt() << (uint64(b.ToInt()) & 63)) }

// Shr implements arithmetic right shift; shift counts are masked to 0..63.
func Shr(a, b Value) Value { return Int(a.ToInt() >> (uint64(b.ToInt()) & 63)) }
