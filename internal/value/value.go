// Package value implements the dynamic value system of the MiniHack
// virtual machine: a small, PHP/Hack-like set of runtime types (null,
// bool, int, float, string, array, object) with dynamic coercion rules.
//
// Values are small structs passed by value; arrays and objects are
// reference types boxed behind pointers, mirroring PHP semantics closely
// enough for the JIT's type-profiling and specialization machinery to be
// meaningful: most bytecodes accept any Kind and the profiling tier
// records which Kinds actually flow.
package value

import (
	"fmt"
	"math"
	"strconv"
	"unsafe"
)

// Kind identifies the runtime type of a Value. The zero Kind is Null so
// that the zero Value is a well-formed null.
type Kind uint8

// The complete set of MiniHack runtime types.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindStr
	KindArr
	KindObj

	// NumKinds is the number of distinct kinds; profiling code sizes
	// its type histograms with it.
	NumKinds = int(KindObj) + 1
)

// String returns the lowercase type name used in error messages and in
// serialized type profiles.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindStr:
		return "string"
	case KindArr:
		return "array"
	case KindObj:
		return "object"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Obj is the interface satisfied by heap objects. The concrete object
// representation lives in internal/object; keeping an interface here
// breaks the dependency cycle between values and class metadata.
type Obj interface {
	// ClassName reports the name of the object's class.
	ClassName() string
	// ObjectID returns a process-unique id used by the data-address
	// simulation and by identity comparison.
	ObjectID() uint64
}

// Value is a MiniHack runtime value. The active representation depends
// on Kind; inactive fields are zero.
//
// The payload is a 3-word union rather than one field per type: values
// are copied on every interpreter push/pop/local/argument move, so the
// struct is kept at 32 bytes with two pointer words (vs. 56 bytes and
// four pointer words for the naive layout) — the Go write barrier and
// copy cost on the VM's hottest path scale with both. Strings are
// stored decomposed as data pointer + length (in num), objects as
// their decomposed interface words. The union is not comparable; all
// equality goes through Equals/Identical, which compare semantically.
type Value struct {
	kind Kind
	num  uint64         // bool (0/1), int64 bits, float64 bits, or string length
	p1   unsafe.Pointer // string data, *Array, or the Obj itab word
	p2   unsafe.Pointer // the Obj data word
}

// iface mirrors the runtime layout of a 2-word interface value; it is
// how Object/AsObj move an Obj in and out of the union.
type iface struct {
	tab  unsafe.Pointer
	data unsafe.Pointer
}

// Null is the canonical null value (also the zero Value).
var Null = Value{}

// Bool returns a boolean value.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// Str returns a string value.
func Str(s string) Value {
	if len(s) == 0 {
		return Value{kind: KindStr}
	}
	return Value{kind: KindStr, num: uint64(len(s)), p1: unsafe.Pointer(unsafe.StringData(s))}
}

// Arr returns an array value wrapping a (never nil for live values).
func Arr(a *Array) Value { return Value{kind: KindArr, p1: unsafe.Pointer(a)} }

// Object returns an object value.
func Object(o Obj) Value {
	i := (*iface)(unsafe.Pointer(&o))
	return Value{kind: KindObj, p1: i.tab, p2: i.data}
}

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; valid only when Kind is KindBool.
func (v Value) AsBool() bool { return v.num != 0 }

// AsInt returns the integer payload; valid only when Kind is KindInt.
func (v Value) AsInt() int64 { return int64(v.num) }

// AsFloat returns the float payload; valid only when Kind is KindFloat.
func (v Value) AsFloat() float64 { return math.Float64frombits(v.num) }

// AsStr returns the string payload; valid only when Kind is KindStr.
func (v Value) AsStr() string {
	if v.num == 0 {
		return ""
	}
	return unsafe.String((*byte)(v.p1), int(v.num))
}

// AsArr returns the array payload; valid only when Kind is KindArr.
func (v Value) AsArr() *Array { return (*Array)(v.p1) }

// AsObj returns the object payload; valid only when Kind is KindObj.
func (v Value) AsObj() Obj {
	var o Obj
	i := (*iface)(unsafe.Pointer(&o))
	i.tab, i.data = v.p1, v.p2
	return o
}

// strEmptyOrZero reports whether a string value is "" or "0" (the two
// falsy strings) without materializing a string header.
func (v Value) strEmptyOrZero() bool {
	return v.num == 0 || (v.num == 1 && *(*byte)(v.p1) == '0')
}

// Truthy implements PHP-style boolean coercion: null, false, 0, 0.0, "",
// "0" and the empty array are falsy; every object is truthy.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindBool:
		return v.AsBool()
	case KindInt:
		return v.AsInt() != 0
	case KindFloat:
		return v.AsFloat() != 0
	case KindStr:
		return !v.strEmptyOrZero()
	case KindArr:
		return v.AsArr().Len() > 0
	case KindObj:
		return true
	default:
		return false
	}
}

// ToInt coerces v to an integer using PHP-style rules. Arrays and
// objects coerce to their truthiness (0/1) like legacy PHP notices.
func (v Value) ToInt() int64 {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		if v.AsBool() {
			return 1
		}
		return 0
	case KindInt:
		return v.AsInt()
	case KindFloat:
		return int64(v.AsFloat())
	case KindStr:
		if i, ok := parseIntPrefix(v.AsStr()); ok {
			return i
		}
		n, _ := parseNumericPrefix(v.AsStr())
		return int64(n)
	default:
		if v.Truthy() {
			return 1
		}
		return 0
	}
}

// ToFloat coerces v to a float using PHP-style rules.
func (v Value) ToFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.AsFloat()
	case KindStr:
		n, _ := parseNumericPrefix(v.AsStr())
		return n
	default:
		return float64(v.ToInt())
	}
}

// ToStr coerces v to a string. Arrays render as "Array" (PHP heritage);
// objects as their class name in angle brackets.
func (v Value) ToStr() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindBool:
		if v.AsBool() {
			return "1"
		}
		return ""
	case KindInt:
		return strconv.FormatInt(v.AsInt(), 10)
	case KindFloat:
		return formatFloat(v.AsFloat())
	case KindStr:
		return v.AsStr()
	case KindArr:
		return "Array"
	case KindObj:
		return "<" + v.AsObj().ClassName() + ">"
	default:
		return ""
	}
}

// String implements fmt.Stringer for debugging and disassembly output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.AsBool() {
			return "true"
		}
		return "false"
	case KindStr:
		return strconv.Quote(v.AsStr())
	case KindArr:
		return v.AsArr().String()
	default:
		return v.ToStr()
	}
}

// formatFloat renders floats the way the disassembler and Print expect:
// integral floats keep a trailing ".0" so they remain visibly floats.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "INF"
	}
	if math.IsInf(f, -1) {
		return "-INF"
	}
	if math.IsNaN(f) {
		return "NAN"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !containsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func containsAny(s, chars string) bool {
	for i := 0; i < len(s); i++ {
		for j := 0; j < len(chars); j++ {
			if s[i] == chars[j] {
				return true
			}
		}
	}
	return false
}

// parseNumericPrefix parses the longest numeric prefix of s, returning
// the parsed value and whether the whole string was numeric. PHP's
// string-to-number coercion accepts leading whitespace and a numeric
// prefix; we implement the commonly exercised subset.
func parseNumericPrefix(s string) (float64, bool) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') {
		i++
	}
	start := i
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	digits := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
		digits++
	}
	if i < len(s) && s[i] == '.' {
		i++
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
			digits++
		}
	}
	if digits > 0 && i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		j := i + 1
		if j < len(s) && (s[j] == '+' || s[j] == '-') {
			j++
		}
		expDigits := 0
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
			expDigits++
		}
		if expDigits > 0 {
			i = j
		}
	}
	if digits == 0 {
		return 0, false
	}
	f, err := strconv.ParseFloat(s[start:i], 64)
	if err != nil {
		return 0, false
	}
	return f, i == len(s)
}

// parseIntPrefix parses the longest pure-integer prefix of s exactly
// (no float round-trip, so all int64s survive). It fails when the
// prefix would be better handled as a float (".", "e" follow) or when
// the integer overflows int64.
func parseIntPrefix(s string) (int64, bool) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') {
		i++
	}
	start := i
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	digits := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
		digits++
	}
	if digits == 0 {
		return 0, false
	}
	if i < len(s) && (s[i] == '.' || s[i] == 'e' || s[i] == 'E') {
		return 0, false // float-shaped; caller falls back to float parse
	}
	n, err := strconv.ParseInt(s[start:i], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// IsNumericStr reports whether s is a fully numeric string, in which
// case arithmetic on it behaves like arithmetic on the parsed number.
func IsNumericStr(s string) bool {
	_, ok := parseNumericPrefix(s)
	return ok && s != ""
}
