package value

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Array is a PHP-style ordered map. Keys are either int64 or string;
// insertion order is preserved. Appending uses the next-free integer
// key, like PHP's $a[] = v.
//
// Arrays are reference types: a Value holds a *Array and assignments
// share the backing store. (Real PHP has copy-on-write value semantics;
// MiniHack deliberately uses reference semantics, which is what Hack's
// vec/dict migration pushed toward and what keeps the interpreter and
// the simulated JIT agreeing on aliasing.)
type Array struct {
	entries []Entry
	index   map[arrayKey]int // key -> position in entries
	nextInt int64            // next auto-increment integer key
	id      uint64           // data-address simulation id
}

// Entry is one key/value pair of an Array.
type Entry struct {
	IntKey int64
	StrKey string
	IsStr  bool
	Val    Value
}

type arrayKey struct {
	i int64
	s string
	b bool
}

// arrayIDCounter is process-global, so it is drawn atomically: servers
// on different goroutines allocate concurrently under the parallel
// experiment engine. The id only needs to be unique — nothing measured
// depends on its value — so cross-server interleaving does not
// perturb simulation output.
var arrayIDCounter atomic.Uint64

// NewArray returns an empty array with capacity for n entries.
func NewArray(n int) *Array {
	return &Array{
		entries: make([]Entry, 0, n),
		index:   make(map[arrayKey]int, n),
		id:      arrayIDCounter.Add(1),
	}
}

// ArrayID returns the array's process-unique allocation id.
func (a *Array) ArrayID() uint64 { return a.id }

// Len returns the number of entries.
func (a *Array) Len() int { return len(a.entries) }

// Append adds v under the next auto-increment integer key.
func (a *Array) Append(v Value) {
	a.SetInt(a.nextInt, v)
}

// SetInt sets the entry with integer key k.
func (a *Array) SetInt(k int64, v Value) {
	key := arrayKey{i: k}
	if pos, ok := a.index[key]; ok {
		a.entries[pos].Val = v
		return
	}
	a.index[key] = len(a.entries)
	a.entries = append(a.entries, Entry{IntKey: k, Val: v})
	if k >= a.nextInt {
		a.nextInt = k + 1
	}
}

// SetStr sets the entry with string key k. Numeric string keys are
// canonicalized to integer keys, as PHP does.
func (a *Array) SetStr(k string, v Value) {
	if ik, ok := canonicalIntKey(k); ok {
		a.SetInt(ik, v)
		return
	}
	key := arrayKey{s: k, b: true}
	if pos, ok := a.index[key]; ok {
		a.entries[pos].Val = v
		return
	}
	a.index[key] = len(a.entries)
	a.entries = append(a.entries, Entry{StrKey: k, IsStr: true, Val: v})
}

// Set sets the entry keyed by an arbitrary Value, coercing the key the
// way PHP array subscripting does (float→int, bool→int, null→"").
func (a *Array) Set(k, v Value) {
	switch k.Kind() {
	case KindStr:
		a.SetStr(k.AsStr(), v)
	default:
		a.SetInt(k.ToInt(), v)
	}
}

// GetInt fetches the entry with integer key k.
func (a *Array) GetInt(k int64) (Value, bool) {
	pos, ok := a.index[arrayKey{i: k}]
	if !ok {
		return Null, false
	}
	return a.entries[pos].Val, true
}

// GetStr fetches the entry with string key k.
func (a *Array) GetStr(k string) (Value, bool) {
	if ik, ok := canonicalIntKey(k); ok {
		return a.GetInt(ik)
	}
	pos, ok := a.index[arrayKey{s: k, b: true}]
	if !ok {
		return Null, false
	}
	return a.entries[pos].Val, true
}

// Get fetches the entry keyed by an arbitrary Value.
func (a *Array) Get(k Value) (Value, bool) {
	switch k.Kind() {
	case KindStr:
		return a.GetStr(k.AsStr())
	default:
		return a.GetInt(k.ToInt())
	}
}

// Delete removes the entry keyed by k, preserving the order of the
// remaining entries. It reports whether an entry was removed.
func (a *Array) Delete(k Value) bool {
	var key arrayKey
	switch k.Kind() {
	case KindStr:
		if ik, ok := canonicalIntKey(k.AsStr()); ok {
			key = arrayKey{i: ik}
		} else {
			key = arrayKey{s: k.AsStr(), b: true}
		}
	default:
		key = arrayKey{i: k.ToInt()}
	}
	pos, ok := a.index[key]
	if !ok {
		return false
	}
	delete(a.index, key)
	a.entries = append(a.entries[:pos], a.entries[pos+1:]...)
	for i := pos; i < len(a.entries); i++ {
		e := &a.entries[i]
		if e.IsStr {
			a.index[arrayKey{s: e.StrKey, b: true}] = i
		} else {
			a.index[arrayKey{i: e.IntKey}] = i
		}
	}
	return true
}

// At returns the i-th entry in insertion order.
func (a *Array) At(i int) Entry { return a.entries[i] }

// Keys returns the keys in insertion order as Values.
func (a *Array) Keys() []Value {
	ks := make([]Value, len(a.entries))
	for i, e := range a.entries {
		if e.IsStr {
			ks[i] = Str(e.StrKey)
		} else {
			ks[i] = Int(e.IntKey)
		}
	}
	return ks
}

// Values returns the values in insertion order.
func (a *Array) Values() []Value {
	vs := make([]Value, len(a.entries))
	for i, e := range a.entries {
		vs[i] = e.Val
	}
	return vs
}

// Clone returns a shallow copy of the array.
func (a *Array) Clone() *Array {
	c := NewArray(len(a.entries))
	c.entries = append(c.entries, a.entries...)
	for k, v := range a.index {
		c.index[k] = v
	}
	c.nextInt = a.nextInt
	return c
}

// SortByValue sorts entries by their values using the Compare ordering,
// reassigning positions (PHP sort()). Keys are discarded and the array
// is re-indexed 0..n-1.
func (a *Array) SortByValue() {
	sort.SliceStable(a.entries, func(i, j int) bool {
		return Compare(a.entries[i].Val, a.entries[j].Val) < 0
	})
	a.reindex()
}

func (a *Array) reindex() {
	a.index = make(map[arrayKey]int, len(a.entries))
	a.nextInt = 0
	for i := range a.entries {
		a.entries[i].IsStr = false
		a.entries[i].StrKey = ""
		a.entries[i].IntKey = a.nextInt
		a.index[arrayKey{i: a.nextInt}] = i
		a.nextInt++
	}
}

// String renders the array for debugging: [k => v, ...].
func (a *Array) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range a.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		if e.IsStr {
			b.WriteString(`"` + e.StrKey + `"`)
		} else {
			b.WriteString(Int(e.IntKey).String())
		}
		b.WriteString(" => ")
		b.WriteString(e.Val.String())
	}
	b.WriteByte(']')
	return b.String()
}

// canonicalIntKey reports whether s is a canonical integer key ("0",
// "-7", "42" but not "007" or "1.5") and returns its value.
func canonicalIntKey(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	i := 0
	neg := false
	if s[0] == '-' {
		neg = true
		i = 1
		if i == len(s) {
			return 0, false
		}
	}
	if s[i] == '0' && len(s) > i+1 {
		return 0, false // leading zero: not canonical
	}
	var n int64
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int64(s[i]-'0')
		if n < 0 {
			return 0, false // overflow
		}
	}
	if neg {
		n = -n
	}
	return n, true
}
