package bytecode

import (
	"math"

	"jumpstart/internal/value"
)

// Fingerprint is a stable structural identity for a function, computed
// at link time (NewProgram). Unlike prof.FuncChecksum — which hashes
// raw operands and therefore shifts whenever a literal-pool index or a
// dense FuncID moves — the fingerprint canonicalizes every
// program-relative operand: literal-pool references hash the literal
// *value*, resolved call/instantiation ids hash the callee/class
// *name*. Two independently linked programs containing the same
// function body therefore agree on its fingerprint, which is what the
// cross-release profile remapper keys on.
type Fingerprint struct {
	// Body hashes the full canonical body: arity, locals, iterator
	// slots, opcodes and canonicalized operands. Equal Body values mean
	// "semantically the same bytecode" across releases (renames
	// excluded — the name is deliberately not part of the hash, so a
	// renamed-but-identical function can still be matched).
	Body uint64
	// Shape hashes the control-flow skeleton only: arity plus, per
	// instruction, the opcode and any control-flow operands (jump
	// targets, iterator exit targets, argument counts). Equal Shape
	// values imply an identical CFG — block boundaries and edges line
	// up — so block/edge counters collected against one body remain
	// meaningful for the other even when constants changed.
	Shape uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) mix(x uint64) {
	*h = (*h ^ fnv64(x)) * fnvPrime
}

func (h *fnv64) mixStr(s string) {
	for i := 0; i < len(s); i++ {
		*h = (*h ^ fnv64(s[i])) * fnvPrime
	}
	h.mix(uint64(len(s)))
}

func (h *fnv64) mixValue(v value.Value) {
	h.mix(uint64(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
	case value.KindBool:
		if v.AsBool() {
			h.mix(1)
		}
	case value.KindInt:
		h.mix(uint64(v.AsInt()))
	case value.KindFloat:
		h.mix(math.Float64bits(v.AsFloat()))
	case value.KindStr:
		h.mixStr(v.AsStr())
	default:
		// Composite literals never appear in unit pools; hashing the
		// kind alone keeps the function total rather than panicking.
	}
}

// fingerprintFuncs computes and stores the fingerprint of every linked
// function. Must run after resolveCalls so OpFCallD/OpNewObj operands
// index valid program tables.
func (p *Program) fingerprintFuncs() {
	for _, f := range p.Funcs {
		f.Fingerprint = p.fingerprintOf(f)
	}
}

// FingerprintOf computes fn's fingerprint against this program's
// tables. fn must belong to p (its resolved ids are decoded through
// p.Funcs / p.Classes).
func (p *Program) FingerprintOf(fn *Function) Fingerprint { return p.fingerprintOf(fn) }

func (p *Program) fingerprintOf(fn *Function) Fingerprint {
	body := fnv64(fnvOffset)
	shape := fnv64(fnvOffset)
	for _, h := range []*fnv64{&body, &shape} {
		h.mix(uint64(fn.NumParams))
	}
	body.mix(uint64(fn.NumLocals))
	body.mix(uint64(fn.NumIters))
	for _, in := range fn.Code {
		body.mix(uint64(in.Op))
		shape.mix(uint64(in.Op))
		switch in.Op {
		case OpLit:
			body.mixValue(fn.Unit.Literal(in.A))
		case OpFCall, OpFCallM, OpNewObjL:
			// Late-bound: operand A names the target via the pool.
			body.mixValue(fn.Unit.Literal(in.A))
			body.mix(uint64(uint32(in.B)))
			shape.mix(uint64(uint32(in.B)))
		case OpPropGet, OpPropSet:
			body.mixValue(fn.Unit.Literal(in.A))
		case OpFCallD:
			// Resolved id: hash the callee name, not the dense index.
			if int(in.A) >= 0 && int(in.A) < len(p.Funcs) {
				body.mixStr(p.Funcs[in.A].Name)
			}
			body.mix(uint64(uint32(in.B)))
			shape.mix(uint64(uint32(in.B)))
		case OpNewObj:
			if int(in.A) >= 0 && int(in.A) < len(p.Classes) {
				body.mixStr(p.Classes[in.A].Name)
			}
			body.mix(uint64(uint32(in.B)))
			shape.mix(uint64(uint32(in.B)))
		case OpJmp, OpJmpZ, OpJmpNZ:
			// Function-local instruction index: stable for an
			// unchanged body, and part of the CFG skeleton.
			body.mix(uint64(uint32(in.A)))
			shape.mix(uint64(uint32(in.A)))
		case OpIterInit, OpIterNext:
			body.mix(uint64(uint32(in.A)))
			body.mix(uint64(uint32(in.B)))
			shape.mix(uint64(uint32(in.B))) // exit target shapes the CFG
		default:
			body.mix(uint64(uint32(in.A)))
			body.mix(uint64(uint32(in.B)))
		}
	}
	return Fingerprint{Body: uint64(body), Shape: uint64(shape)}
}
