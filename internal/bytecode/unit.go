package bytecode

import (
	"fmt"
	"sort"

	"jumpstart/internal/value"
)

// Instr is one fixed-width bytecode instruction.
type Instr struct {
	Op   Op
	A, B int32
}

// String renders the instruction for disassembly.
func (in Instr) String() string {
	switch {
	case in.Op == OpNop || in.Op == OpNull || in.Op == OpTrue ||
		in.Op == OpFalse || in.Op == OpDup || in.Op == OpPopC ||
		in.Op == OpRet || in.Op == OpFatal || in.Op == OpThis ||
		(in.Op >= OpAdd && in.Op <= OpCmpGte) ||
		in.Op == OpIdxGet || in.Op == OpIdxSet || in.Op == OpIdxApp:
		return in.Op.String()
	case in.Op == OpFCall || in.Op == OpFCallD || in.Op == OpFCallM ||
		in.Op == OpBuiltin || in.Op == OpNewObj || in.Op == OpNewObjL ||
		in.Op == OpIterInit || in.Op == OpIterNext:
		return fmt.Sprintf("%s %d %d", in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	}
}

// FuncID identifies a function in a linked Program. IDs are dense
// indices into Program.Funcs; NoFunc marks "absent".
type FuncID int32

// NoFunc is the absent-function sentinel.
const NoFunc FuncID = -1

// ClassID identifies a class in a linked Program.
type ClassID int32

// NoClass is the absent-class sentinel (free functions, root parents).
const NoClass ClassID = -1

// PropDef declares one object property in source order. The declared
// order is observable in MiniHack (objects iterate their properties in
// declaration order), which is the constraint Section V-C's property
// reordering must respect via an index-translation table.
type PropDef struct {
	Name string
	// DefaultLit indexes the unit literal pool, or -1 for null.
	DefaultLit int32
}

// Function holds the bytecode and metadata of one MiniHack function or
// method.
type Function struct {
	ID        FuncID
	Name      string  // qualified: "f" or "Cls::m"
	Class     ClassID // NoClass for free functions
	NumParams int
	NumLocals int // params + declared locals
	NumIters  int // iterator slots used by foreach
	Code      []Instr
	Unit      *Unit // owning unit (literal pool)

	// BytecodeSize is the simulated encoded size in bytes; the real VM
	// tracks this for code-cache budgeting and Figure 1's curve.
	BytecodeSize int

	// Fingerprint is the stable structural identity computed at link
	// time (see Fingerprint); the cross-release profile remapper keys
	// on it.
	Fingerprint Fingerprint

	blocks []Block // lazily computed basic blocks
}

// SetCode replaces the function body, invalidating cached analyses and
// refreshing the simulated encoded size. The offline optimizer uses it.
func (f *Function) SetCode(code []Instr) {
	f.Code = code
	f.blocks = nil
	f.BytecodeSize = len(code) * 6
}

// Class describes a MiniHack class.
type Class struct {
	ID      ClassID
	Name    string
	Parent  ClassID
	Props   []PropDef            // own (non-inherited) properties, declared order
	Methods map[string]*Function // own methods by bare name
	Unit    *Unit

	// flat caches, filled by Program.Link.
	flatProps   []PropDef // inherited-first, declared order within layers
	flatMethods map[string]FuncID
}

// Unit is one compiled source file: a literal pool plus the functions
// and classes it defines. Units are the granularity at which HHVM
// preloads "repo global data" on Jump-Start consumers.
type Unit struct {
	Name     string
	Literals []value.Value
	Funcs    []*Function
	Classes  []*Class
}

// AddLiteral interns v in the unit literal pool and returns its index.
func (u *Unit) AddLiteral(v value.Value) int32 {
	for i, l := range u.Literals {
		if value.Identical(l, v) {
			return int32(i)
		}
	}
	u.Literals = append(u.Literals, v)
	return int32(len(u.Literals) - 1)
}

// Literal fetches pool entry i, or null if out of range.
func (u *Unit) Literal(i int32) value.Value {
	if i < 0 || int(i) >= len(u.Literals) {
		return value.Null
	}
	return u.Literals[i]
}

// Program is the linked whole-program bytecode repo: every unit merged,
// every function and class assigned a dense ID, and name-based calls
// resolved to direct IDs where the target is statically known.
type Program struct {
	Units   []*Unit
	Funcs   []*Function
	Classes []*Class

	funcByName  map[string]FuncID
	classByName map[string]ClassID
}

// NewProgram links the given units into a Program. Linking assigns IDs,
// resolves OpFCall → OpFCallD and OpNewObjL → OpNewObj when targets are
// unique, flattens class hierarchies, and validates inheritance.
func NewProgram(units ...*Unit) (*Program, error) {
	p := &Program{
		Units:       units,
		funcByName:  make(map[string]FuncID),
		classByName: make(map[string]ClassID),
	}
	for _, u := range units {
		for _, c := range u.Classes {
			if _, dup := p.classByName[c.Name]; dup {
				return nil, fmt.Errorf("bytecode: duplicate class %q", c.Name)
			}
			c.ID = ClassID(len(p.Classes))
			p.Classes = append(p.Classes, c)
			p.classByName[c.Name] = c.ID
		}
	}
	for _, u := range units {
		for _, f := range u.Funcs {
			if _, dup := p.funcByName[f.Name]; dup {
				return nil, fmt.Errorf("bytecode: duplicate function %q", f.Name)
			}
			f.ID = FuncID(len(p.Funcs))
			f.Unit = u
			p.Funcs = append(p.Funcs, f)
			p.funcByName[f.Name] = f.ID
			if f.BytecodeSize == 0 {
				f.BytecodeSize = len(f.Code) * 6 // opcode + 2 operands, varint-ish
			}
		}
	}
	if err := p.flattenClasses(); err != nil {
		return nil, err
	}
	p.resolveCalls()
	p.fingerprintFuncs()
	return p, nil
}

// flattenClasses validates the hierarchy and computes flattened
// property and method tables.
func (p *Program) flattenClasses() error {
	state := make([]int, len(p.Classes)) // 0 unvisited, 1 visiting, 2 done
	var visit func(c *Class) error
	visit = func(c *Class) error {
		switch state[c.ID] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("bytecode: inheritance cycle through %q", c.Name)
		}
		state[c.ID] = 1
		var parentProps []PropDef
		var parentMethods map[string]FuncID
		if c.Parent != NoClass {
			pc := p.Classes[c.Parent]
			if err := visit(pc); err != nil {
				return err
			}
			parentProps = pc.flatProps
			parentMethods = pc.flatMethods
		}
		seen := map[string]bool{}
		for _, pd := range parentProps {
			seen[pd.Name] = true
		}
		c.flatProps = append([]PropDef{}, parentProps...)
		for _, pd := range c.Props {
			if seen[pd.Name] {
				return fmt.Errorf("bytecode: class %q redeclares property %q", c.Name, pd.Name)
			}
			seen[pd.Name] = true
			c.flatProps = append(c.flatProps, pd)
		}
		c.flatMethods = make(map[string]FuncID, len(parentMethods)+len(c.Methods))
		for name, id := range parentMethods {
			c.flatMethods[name] = id
		}
		for name, fn := range c.Methods {
			if int(fn.ID) < 0 || int(fn.ID) >= len(p.Funcs) || p.Funcs[fn.ID] != fn {
				return fmt.Errorf("bytecode: method %s::%s not registered in its unit", c.Name, name)
			}
			fn.Class = c.ID
			c.flatMethods[name] = fn.ID // override
		}
		state[c.ID] = 2
		return nil
	}
	for _, c := range p.Classes {
		if c.Parent != NoClass && (int(c.Parent) < 0 || int(c.Parent) >= len(p.Classes)) {
			return fmt.Errorf("bytecode: class %q has invalid parent id %d", c.Name, c.Parent)
		}
		if err := visit(c); err != nil {
			return err
		}
	}
	return nil
}

// resolveCalls rewrites late-bound calls whose targets are statically
// known, mirroring HHVM's offline whole-program optimization: with a
// repo-authoritative build, function names resolve at deploy time.
func (p *Program) resolveCalls() {
	for _, f := range p.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case OpFCall:
				name := f.Unit.Literal(in.A)
				if name.Kind() == value.KindStr {
					if id, ok := p.funcByName[name.AsStr()]; ok {
						in.Op = OpFCallD
						in.A = int32(id)
					}
				}
			case OpNewObjL:
				name := f.Unit.Literal(in.A)
				if name.Kind() == value.KindStr {
					if id, ok := p.classByName[name.AsStr()]; ok {
						in.Op = OpNewObj
						in.A = int32(id)
					}
				}
			}
		}
	}
}

// FuncByName resolves a qualified function name.
func (p *Program) FuncByName(name string) (*Function, bool) {
	id, ok := p.funcByName[name]
	if !ok {
		return nil, false
	}
	return p.Funcs[id], true
}

// ClassByName resolves a class name.
func (p *Program) ClassByName(name string) (*Class, bool) {
	id, ok := p.classByName[name]
	if !ok {
		return nil, false
	}
	return p.Classes[id], true
}

// FlatProps returns the class's full property list: inherited layers
// first, each layer in declared order. Positions in this slice are the
// *declared indices* that the object-layout optimization must keep
// observable.
func (c *Class) FlatProps() []PropDef { return c.flatProps }

// LookupMethod resolves a bare method name through the flattened
// hierarchy.
func (c *Class) LookupMethod(name string) (FuncID, bool) {
	id, ok := c.flatMethods[name]
	return id, ok
}

// MethodNames returns the flattened method names in sorted order
// (deterministic iteration for tools and tests).
func (c *Class) MethodNames() []string {
	names := make([]string, 0, len(c.flatMethods))
	for n := range c.flatMethods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytecodeSize sums the simulated encoded size of all functions.
func (p *Program) TotalBytecodeSize() int {
	total := 0
	for _, f := range p.Funcs {
		total += f.BytecodeSize
	}
	return total
}
