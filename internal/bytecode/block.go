package bytecode

// Block is a bytecode-level basic block: a maximal straight-line span
// of instructions. Blocks are the granularity at which the tier-1 JIT
// inserts profiling counters and at which type profiles are keyed, so
// they must be computed identically by seeders and consumers.
type Block struct {
	ID    int
	Start int // first instruction index (inclusive)
	End   int // last instruction index (exclusive)
	// Succs lists successor block IDs in a canonical order:
	// fall-through / not-taken first, then the taken target.
	Succs []int
}

// Len returns the number of instructions in the block.
func (b Block) Len() int { return b.End - b.Start }

// Blocks returns the function's basic blocks, computing and caching
// them on first use.
func (f *Function) Blocks() []Block {
	if f.blocks == nil {
		f.blocks = computeBlocks(f.Code)
	}
	return f.blocks
}

// BlockAt returns the ID of the block containing instruction pc, or -1.
func (f *Function) BlockAt(pc int) int {
	blocks := f.Blocks()
	lo, hi := 0, len(blocks)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		b := blocks[mid]
		switch {
		case pc < b.Start:
			hi = mid - 1
		case pc >= b.End:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// computeBlocks performs classic leader analysis.
func computeBlocks(code []Instr) []Block {
	if len(code) == 0 {
		return nil
	}
	leader := make([]bool, len(code)+1)
	leader[0] = true
	for pc, in := range code {
		switch {
		case in.Op.IsJump():
			leader[in.A] = true
			leader[pc+1] = true
		case in.Op == OpIterInit || in.Op == OpIterNext:
			leader[in.B] = true
			leader[pc+1] = true
		case in.Op == OpRet || in.Op == OpFatal:
			leader[pc+1] = true
		case in.Op.IsCall():
			// Calls end blocks so that the JIT can splice inlined
			// callee CFGs at block boundaries.
			leader[pc+1] = true
		}
	}

	var blocks []Block
	startAt := make(map[int]int) // instruction index -> block id
	start := 0
	for pc := 1; pc <= len(code); pc++ {
		if pc == len(code) || leader[pc] {
			id := len(blocks)
			blocks = append(blocks, Block{ID: id, Start: start, End: pc})
			startAt[start] = id
			start = pc
		}
	}

	for i := range blocks {
		b := &blocks[i]
		last := code[b.End-1]
		addSucc := func(pc int) {
			if id, ok := startAt[pc]; ok {
				b.Succs = append(b.Succs, id)
			}
		}
		switch {
		case last.Op == OpJmp:
			addSucc(int(last.A))
		case last.Op == OpJmpZ || last.Op == OpJmpNZ:
			addSucc(b.End) // fall-through first
			addSucc(int(last.A))
		case last.Op == OpIterInit || last.Op == OpIterNext:
			addSucc(b.End)
			addSucc(int(last.B))
		case last.Op == OpRet || last.Op == OpFatal:
			// no successors
		default:
			addSucc(b.End)
		}
	}
	return blocks
}

// CallSites returns the instruction indices of every call instruction
// in the function, in order. The JIT uses these to key call-target
// profiles and inlining decisions.
func (f *Function) CallSites() []int {
	var sites []int
	for pc, in := range f.Code {
		if in.Op.IsCall() {
			sites = append(sites, pc)
		}
	}
	return sites
}
