// Package bytecode defines the MiniHack virtual machine's untyped
// bytecode: the instruction set, functions, classes, units and the
// linked whole-program representation ("the repo" in HHVM terms).
//
// Like HHBC, the bytecode is deliberately untyped — every operand
// position accepts any runtime Kind — which is what makes profile-guided
// type specialization in the simulated JIT worthwhile. Source code is
// compiled to this representation offline (internal/hackc) and deployed
// as a Program; the server never mutates it at runtime.
package bytecode

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// The MiniHack instruction set. Operand meanings:
//
//	A, B — int32 immediates whose interpretation depends on the opcode
//	       (literal-pool index, local slot, jump target, function id,
//	       argument count, ...).
const (
	OpNop Op = iota

	// Constants / stack.
	OpNull  // push null
	OpTrue  // push true
	OpFalse // push false
	OpInt   // push int(A)
	OpLit   // push literal pool entry A (big ints, floats, strings)
	OpDup   // duplicate top of stack
	OpPopC  // pop and discard

	// Locals.
	OpCGetL // push local A
	OpSetL  // local A = top (value stays on stack, PHP-style assignment expr)
	OpPushL // move local A onto the stack, leaving the local null

	// Arithmetic / logic. All pop two and push one unless noted.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
	OpNeg // unary
	OpNot // unary
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr

	// Comparisons.
	OpCmpEq
	OpCmpNeq
	OpCmpSame
	OpCmpNSame
	OpCmpLt
	OpCmpLte
	OpCmpGt
	OpCmpGte

	// Control flow. Jump targets are instruction indices within the
	// function (resolved by the builder from labels).
	OpJmp   // goto A
	OpJmpZ  // pop; if falsy goto A
	OpJmpNZ // pop; if truthy goto A
	OpRet   // pop; return value
	OpFatal // pop; raise a runtime fault with the popped message

	// Calls. Arguments are pushed left to right; the callee sees them
	// as locals 0..argc-1.
	OpFCall   // call function named by literal A with B args (late-bound)
	OpFCallD  // call function id A with B args (resolved by the linker)
	OpFCallM  // pop B args then receiver; call method named literal A
	OpBuiltin // call builtin id A with B args
	OpNewObj  // instantiate class id A, calling its constructor with B args
	OpNewObjL // instantiate class named by literal A (late-bound), B args
	OpThis    // push the current receiver

	// Properties.
	OpPropGet // pop obj; push obj->{literal A}
	OpPropSet // pop value, obj; obj->{literal A} = value; push value

	// Arrays.
	OpNewVec  // pop A elements; push vector-style array
	OpNewDict // pop A (key,value) pairs; push dict-style array
	OpIdxGet  // pop key, base; push base[key] (null + notice when absent)
	OpIdxSet  // pop value, key, base; base[key] = value; push value
	OpIdxApp  // pop value, base; base[] = value; push value

	// Iteration support (compiled from foreach).
	OpIterInit // pop array; init iterator A; if empty goto B
	OpIterNext // advance iterator A; if more goto B
	OpIterKey  // push current key of iterator A
	OpIterVal  // push current value of iterator A

	NumOps = int(OpIterVal) + 1
)

var opNames = [NumOps]string{
	OpNop: "Nop", OpNull: "Null", OpTrue: "True", OpFalse: "False",
	OpInt: "Int", OpLit: "Lit", OpDup: "Dup", OpPopC: "PopC",
	OpCGetL: "CGetL", OpSetL: "SetL", OpPushL: "PushL",
	OpAdd: "Add", OpSub: "Sub", OpMul: "Mul", OpDiv: "Div", OpMod: "Mod",
	OpConcat: "Concat", OpNeg: "Neg", OpNot: "Not",
	OpBitAnd: "BitAnd", OpBitOr: "BitOr", OpBitXor: "BitXor",
	OpShl: "Shl", OpShr: "Shr",
	OpCmpEq: "CmpEq", OpCmpNeq: "CmpNeq", OpCmpSame: "CmpSame",
	OpCmpNSame: "CmpNSame", OpCmpLt: "CmpLt", OpCmpLte: "CmpLte",
	OpCmpGt: "CmpGt", OpCmpGte: "CmpGte",
	OpJmp: "Jmp", OpJmpZ: "JmpZ", OpJmpNZ: "JmpNZ", OpRet: "Ret",
	OpFatal: "Fatal",
	OpFCall: "FCall", OpFCallD: "FCallD", OpFCallM: "FCallM",
	OpBuiltin: "Builtin", OpNewObj: "NewObj", OpNewObjL: "NewObjL",
	OpThis:    "This",
	OpPropGet: "PropGet", OpPropSet: "PropSet",
	OpNewVec: "NewVec", OpNewDict: "NewDict",
	OpIdxGet: "IdxGet", OpIdxSet: "IdxSet", OpIdxApp: "IdxApp",
	OpIterInit: "IterInit", OpIterNext: "IterNext",
	OpIterKey: "IterKey", OpIterVal: "IterVal",
}

// String returns the opcode mnemonic.
func (op Op) String() string {
	if int(op) < NumOps && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// IsJump reports whether the opcode transfers control to operand A.
func (op Op) IsJump() bool {
	switch op {
	case OpJmp, OpJmpZ, OpJmpNZ:
		return true
	default:
		return false
	}
}

// IsConditional reports whether the instruction may either jump or fall
// through (conditional branches and iterator steps).
func (op Op) IsConditional() bool {
	switch op {
	case OpJmpZ, OpJmpNZ, OpIterInit, OpIterNext:
		return true
	default:
		return false
	}
}

// IsTerminal reports whether control never falls through to the next
// instruction.
func (op Op) IsTerminal() bool {
	switch op {
	case OpJmp, OpRet, OpFatal:
		return true
	default:
		return false
	}
}

// IsCall reports whether the opcode invokes another MiniHack function
// (builtins excluded: they never enter the JIT's call graph).
func (op Op) IsCall() bool {
	switch op {
	case OpFCall, OpFCallD, OpFCallM, OpNewObj, OpNewObjL:
		return true
	default:
		return false
	}
}

// StackEffect returns how many values the instruction pops and pushes.
// For variable-arity instructions the counts depend on the operands.
func (op Op) StackEffect(a, b int32) (pops, pushes int) {
	switch op {
	case OpNop, OpJmp:
		return 0, 0
	case OpNull, OpTrue, OpFalse, OpInt, OpLit, OpCGetL, OpPushL, OpThis:
		return 0, 1
	case OpDup:
		return 1, 2
	case OpPopC, OpJmpZ, OpJmpNZ, OpRet, OpFatal, OpIterInit:
		return 1, 0
	case OpSetL:
		return 1, 1
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpConcat,
		OpBitAnd, OpBitOr, OpBitXor, OpShl, OpShr,
		OpCmpEq, OpCmpNeq, OpCmpSame, OpCmpNSame,
		OpCmpLt, OpCmpLte, OpCmpGt, OpCmpGte:
		return 2, 1
	case OpNeg, OpNot:
		return 1, 1
	case OpFCall, OpFCallD, OpBuiltin:
		return int(b), 1
	case OpFCallM:
		return int(b) + 1, 1 // args + receiver
	case OpNewObj, OpNewObjL:
		return int(b), 1
	case OpPropGet:
		return 1, 1
	case OpPropSet:
		return 2, 1
	case OpNewVec:
		return int(a), 1
	case OpNewDict:
		return 2 * int(a), 1
	case OpIdxGet:
		return 2, 1
	case OpIdxSet:
		return 3, 1
	case OpIdxApp:
		return 2, 1
	case OpIterNext:
		return 0, 0
	case OpIterKey, OpIterVal:
		return 0, 1
	default:
		return 0, 0
	}
}

// Builtin identifies an intrinsic function implemented by the runtime.
type Builtin int32

// The builtin function set. These model HHVM's HNI builtins: they are
// executed natively, never JITed, and never profiled as call targets.
const (
	BPrint Builtin = iota
	BLen
	BPush
	BKeys
	BVals
	BSqrt
	BAbs
	BMin
	BMax
	BPow
	BFloor
	BCeil
	BStrlen
	BSubstr
	BOrd
	BChr
	BIntVal
	BFloatVal
	BStrVal
	BIsNull
	BIsInt
	BIsStr
	BIsArr
	BIsObj
	BHash // deterministic 64-bit string hash, used by workloads

	NumBuiltins = int(BHash) + 1
)

var builtinNames = [NumBuiltins]string{
	BPrint: "print", BLen: "len", BPush: "push", BKeys: "keys",
	BVals: "vals", BSqrt: "sqrt", BAbs: "abs", BMin: "min", BMax: "max",
	BPow: "pow", BFloor: "floor", BCeil: "ceil",
	BStrlen: "strlen", BSubstr: "substr", BOrd: "ord", BChr: "chr",
	BIntVal: "intval", BFloatVal: "floatval", BStrVal: "strval",
	BIsNull: "is_null", BIsInt: "is_int", BIsStr: "is_string",
	BIsArr: "is_array", BIsObj: "is_object", BHash: "hash",
}

// String returns the builtin's source-level name.
func (b Builtin) String() string {
	if int(b) < NumBuiltins {
		return builtinNames[b]
	}
	return fmt.Sprintf("builtin(%d)", int32(b))
}

// BuiltinByName resolves a source-level name to a Builtin id.
func BuiltinByName(name string) (Builtin, bool) {
	for i, n := range builtinNames {
		if n == name {
			return Builtin(i), true
		}
	}
	return 0, false
}
