package bytecode

import (
	"strings"
	"testing"

	"jumpstart/internal/value"
)

// buildAbs builds: fun abs(x) { if (x < 0) return -x; return x; }
func buildAbs(t *testing.T, u *Unit) *Function {
	t.Helper()
	b := NewFuncBuilder(u, "abs", []string{"x"})
	elseL := b.NewLabel()
	b.Emit(OpCGetL, 0, 0)
	b.EmitLit(value.Int(0))
	b.Emit(OpCmpLt, 0, 0)
	b.Jump(OpJmpZ, elseL)
	b.Emit(OpCGetL, 0, 0)
	b.Emit(OpNeg, 0, 0)
	b.Emit(OpRet, 0, 0)
	b.Bind(elseL)
	b.Emit(OpCGetL, 0, 0)
	b.Emit(OpRet, 0, 0)
	f, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return f
}

func TestBuilderLabelsAndFinish(t *testing.T) {
	u := &Unit{Name: "t"}
	f := buildAbs(t, u)
	if f.NumParams != 1 || f.NumLocals != 1 {
		t.Fatalf("params/locals = %d/%d", f.NumParams, f.NumLocals)
	}
	// JmpZ target patched to the Bind point.
	var jmp *Instr
	for i := range f.Code {
		if f.Code[i].Op == OpJmpZ {
			jmp = &f.Code[i]
		}
	}
	if jmp == nil || int(jmp.A) != 7 {
		t.Fatalf("JmpZ target = %v", jmp)
	}
}

func TestBuilderImplicitReturn(t *testing.T) {
	u := &Unit{Name: "t"}
	b := NewFuncBuilder(u, "f", nil)
	b.EmitLit(value.Int(1))
	b.Emit(OpPopC, 0, 0)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	n := len(f.Code)
	if f.Code[n-1].Op != OpRet || f.Code[n-2].Op != OpNull {
		t.Fatalf("missing implicit return: %v", f.Code)
	}
}

func TestBuilderUnboundLabel(t *testing.T) {
	u := &Unit{Name: "t"}
	b := NewFuncBuilder(u, "f", nil)
	l := b.NewLabel()
	b.Emit(OpTrue, 0, 0)
	b.Jump(OpJmpNZ, l)
	b.Emit(OpNull, 0, 0)
	b.Emit(OpRet, 0, 0)
	if _, err := b.Finish(); err == nil {
		t.Fatal("unbound label should fail Finish")
	}
}

func TestBuilderEmitLitForms(t *testing.T) {
	u := &Unit{Name: "t"}
	b := NewFuncBuilder(u, "f", nil)
	b.EmitLit(value.Int(5))
	b.EmitLit(value.Int(1 << 40))
	b.EmitLit(value.Null)
	b.EmitLit(value.Bool(true))
	b.EmitLit(value.Bool(false))
	b.EmitLit(value.Str("s"))
	code := b.fn.Code
	wantOps := []Op{OpInt, OpLit, OpNull, OpTrue, OpFalse, OpLit}
	for i, op := range wantOps {
		if code[i].Op != op {
			t.Errorf("instr %d = %v, want %v", i, code[i].Op, op)
		}
	}
	if len(u.Literals) != 2 {
		t.Fatalf("literal pool = %v", u.Literals)
	}
}

func TestUnitLiteralInterning(t *testing.T) {
	u := &Unit{Name: "t"}
	a := u.AddLiteral(value.Str("x"))
	b := u.AddLiteral(value.Str("x"))
	c := u.AddLiteral(value.Str("y"))
	if a != b || a == c {
		t.Fatalf("interning: %d %d %d", a, b, c)
	}
	if u.Literal(-1).Kind() != value.KindNull || u.Literal(99).Kind() != value.KindNull {
		t.Fatal("out-of-range literal should be null")
	}
}

func linkOne(t *testing.T, u *Unit) *Program {
	t.Helper()
	p, err := NewProgram(u)
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	return p
}

func TestProgramLinkAndResolve(t *testing.T) {
	u := &Unit{Name: "t"}
	callee := buildAbs(t, u)
	b := NewFuncBuilder(u, "main", nil)
	b.EmitLit(value.Int(-3))
	nameIdx := u.AddLiteral(value.Str("abs"))
	b.Emit(OpFCall, nameIdx, 1)
	b.Emit(OpRet, 0, 0)
	caller, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	u.Funcs = []*Function{callee, caller}
	p := linkOne(t, u)

	f, ok := p.FuncByName("main")
	if !ok {
		t.Fatal("main not found")
	}
	// FCall resolved to FCallD with the callee's id.
	var call *Instr
	for i := range f.Code {
		if f.Code[i].Op == OpFCallD {
			call = &f.Code[i]
		}
	}
	if call == nil {
		t.Fatalf("call not resolved: %s", f.Disasm())
	}
	if FuncID(call.A) != callee.ID {
		t.Fatalf("resolved to %d, want %d", call.A, callee.ID)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestProgramDuplicateFunc(t *testing.T) {
	u := &Unit{Name: "t"}
	f1 := buildAbs(t, u)
	f2 := buildAbs(t, u)
	u.Funcs = []*Function{f1, f2}
	if _, err := NewProgram(u); err == nil {
		t.Fatal("duplicate function should fail link")
	}
}

func makeClassProgram(t *testing.T) *Program {
	t.Helper()
	u := &Unit{Name: "t"}
	base := &Class{
		Name:    "Base",
		Parent:  NoClass,
		Props:   []PropDef{{Name: "a", DefaultLit: -1}, {Name: "b", DefaultLit: -1}},
		Methods: map[string]*Function{},
		Unit:    u,
	}
	derived := &Class{
		Name:    "Derived",
		Parent:  0, // Base gets id 0
		Props:   []PropDef{{Name: "c", DefaultLit: -1}},
		Methods: map[string]*Function{},
		Unit:    u,
	}
	// Base::get, overridden by Derived::get.
	bg := NewFuncBuilder(u, "Base::get", nil)
	bg.EmitLit(value.Int(1))
	bg.Emit(OpRet, 0, 0)
	bgf, _ := bg.Finish()
	dg := NewFuncBuilder(u, "Derived::get", nil)
	dg.EmitLit(value.Int(2))
	dg.Emit(OpRet, 0, 0)
	dgf, _ := dg.Finish()
	u.Funcs = []*Function{bgf, dgf}
	u.Classes = []*Class{base, derived}
	base.Methods["get"] = bgf
	derived.Methods["get"] = dgf
	p, err := NewProgram(u)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClassFlattening(t *testing.T) {
	p := makeClassProgram(t)
	d, ok := p.ClassByName("Derived")
	if !ok {
		t.Fatal("Derived missing")
	}
	fp := d.FlatProps()
	if len(fp) != 3 || fp[0].Name != "a" || fp[1].Name != "b" || fp[2].Name != "c" {
		t.Fatalf("flat props = %v", fp)
	}
	id, ok := d.LookupMethod("get")
	if !ok {
		t.Fatal("method get missing")
	}
	if p.Funcs[id].Name != "Derived::get" {
		t.Fatalf("override lost: %s", p.Funcs[id].Name)
	}
	b, _ := p.ClassByName("Base")
	id, _ = b.LookupMethod("get")
	if p.Funcs[id].Name != "Base::get" {
		t.Fatalf("base method = %s", p.Funcs[id].Name)
	}
}

func TestClassInheritanceCycle(t *testing.T) {
	u := &Unit{Name: "t"}
	a := &Class{Name: "A", Parent: 1, Methods: map[string]*Function{}, Unit: u}
	b := &Class{Name: "B", Parent: 0, Methods: map[string]*Function{}, Unit: u}
	u.Classes = []*Class{a, b}
	if _, err := NewProgram(u); err == nil {
		t.Fatal("cycle should fail link")
	}
}

func TestClassPropertyRedeclaration(t *testing.T) {
	u := &Unit{Name: "t"}
	a := &Class{Name: "A", Parent: NoClass,
		Props: []PropDef{{Name: "x", DefaultLit: -1}}, Methods: map[string]*Function{}, Unit: u}
	b := &Class{Name: "B", Parent: 0,
		Props: []PropDef{{Name: "x", DefaultLit: -1}}, Methods: map[string]*Function{}, Unit: u}
	u.Classes = []*Class{a, b}
	if _, err := NewProgram(u); err == nil {
		t.Fatal("property redeclaration should fail link")
	}
}

func TestBlocks(t *testing.T) {
	u := &Unit{Name: "t"}
	f := buildAbs(t, u)
	u.Funcs = []*Function{f}
	linkOne(t, u)
	blocks := f.Blocks()
	// abs: b0 = compare+branch, b1 = negate+ret, b2 = ret.
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d: %s", len(blocks), f.Disasm())
	}
	if len(blocks[0].Succs) != 2 {
		t.Fatalf("entry succs = %v", blocks[0].Succs)
	}
	if len(blocks[1].Succs) != 0 || len(blocks[2].Succs) != 0 {
		t.Fatal("ret blocks must have no successors")
	}
	// BlockAt maps each pc into its block.
	for pc := range f.Code {
		id := f.BlockAt(pc)
		if id < 0 || pc < blocks[id].Start || pc >= blocks[id].End {
			t.Fatalf("BlockAt(%d) = %d", pc, id)
		}
	}
	if f.BlockAt(-1) != -1 || f.BlockAt(len(f.Code)) != -1 {
		t.Fatal("out-of-range BlockAt should be -1")
	}
}

func TestCallSites(t *testing.T) {
	u := &Unit{Name: "t"}
	b := NewFuncBuilder(u, "f", nil)
	b.EmitLit(value.Int(1))
	b.Emit(OpFCallD, 0, 1)
	b.Emit(OpPopC, 0, 0)
	b.Emit(OpBuiltin, int32(BLen), 1) // builtins are not call sites
	b.Emit(OpRet, 0, 0)
	f, _ := b.Finish()
	sites := f.CallSites()
	if len(sites) != 1 || sites[0] != 1 {
		t.Fatalf("call sites = %v", sites)
	}
}

func TestVerifyCatchesBadBytecode(t *testing.T) {
	mk := func(mutate func(*Function, *Unit)) error {
		u := &Unit{Name: "t"}
		f := buildAbs(t, u)
		u.Funcs = []*Function{f}
		p, err := NewProgram(u)
		if err != nil {
			t.Fatal(err)
		}
		mutate(f, u)
		f.blocks = nil
		return p.Verify()
	}
	cases := []struct {
		name   string
		mutate func(*Function, *Unit)
	}{
		{"bad local", func(f *Function, u *Unit) { f.Code[0].A = 99 }},
		{"bad jump", func(f *Function, u *Unit) {
			for i := range f.Code {
				if f.Code[i].Op == OpJmpZ {
					f.Code[i].A = 1000
				}
			}
		}},
		{"underflow", func(f *Function, u *Unit) { f.Code[0] = Instr{Op: OpAdd} }},
		{"falls off end", func(f *Function, u *Unit) { f.Code[len(f.Code)-1] = Instr{Op: OpNop} }},
		{"depth mismatch", func(f *Function, u *Unit) {
			// Make the two Ret paths join with different depths by
			// replacing Neg with a push.
			for i := range f.Code {
				if f.Code[i].Op == OpNeg {
					f.Code[i] = Instr{Op: OpDup}
				}
			}
		}},
	}
	for _, c := range cases {
		if err := mk(c.mutate); err == nil {
			t.Errorf("%s: verify should fail", c.name)
		} else if _, ok := err.(*VerifyError); !ok {
			t.Errorf("%s: want *VerifyError, got %T", c.name, err)
		}
	}
}

func TestVerifyGoodProgram(t *testing.T) {
	p := makeClassProgram(t)
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestDisasmStable(t *testing.T) {
	u := &Unit{Name: "t"}
	f := buildAbs(t, u)
	u.Funcs = []*Function{f}
	p := linkOne(t, u)
	d := p.Disasm()
	for _, want := range []string{".function abs", "CmpLt", "JmpZ 7", "b0:", "succs=[1 2]"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}

func TestOpMetadata(t *testing.T) {
	if !OpJmp.IsJump() || OpRet.IsJump() {
		t.Error("IsJump")
	}
	if !OpJmpZ.IsConditional() || OpJmp.IsConditional() {
		t.Error("IsConditional")
	}
	if !OpRet.IsTerminal() || OpJmpZ.IsTerminal() {
		t.Error("IsTerminal")
	}
	if !OpFCallD.IsCall() || OpBuiltin.IsCall() {
		t.Error("IsCall")
	}
	if OpNewObjL.String() != "NewObjL" {
		t.Errorf("op name = %s", OpNewObjL)
	}
	if Op(200).String() != "Op(200)" {
		t.Error("unknown op name")
	}
}

func TestStackEffects(t *testing.T) {
	cases := []struct {
		op           Op
		a, b         int32
		pops, pushes int
	}{
		{OpAdd, 0, 0, 2, 1},
		{OpFCallD, 0, 3, 3, 1},
		{OpFCallM, 0, 2, 3, 1},
		{OpNewVec, 4, 0, 4, 1},
		{OpNewDict, 2, 0, 4, 1},
		{OpIdxSet, 0, 0, 3, 1},
		{OpSetL, 0, 0, 1, 1},
		{OpIterInit, 0, 5, 1, 0},
	}
	for _, c := range cases {
		pops, pushes := c.op.StackEffect(c.a, c.b)
		if pops != c.pops || pushes != c.pushes {
			t.Errorf("%v effect = %d,%d want %d,%d", c.op, pops, pushes, c.pops, c.pushes)
		}
	}
}

func TestBuiltinNames(t *testing.T) {
	id, ok := BuiltinByName("sqrt")
	if !ok || id != BSqrt {
		t.Fatalf("sqrt -> %v %v", id, ok)
	}
	if _, ok := BuiltinByName("nope"); ok {
		t.Fatal("unknown builtin resolved")
	}
	if BPrint.String() != "print" {
		t.Error("builtin name")
	}
}

func TestTotalBytecodeSize(t *testing.T) {
	u := &Unit{Name: "t"}
	f := buildAbs(t, u)
	u.Funcs = []*Function{f}
	p := linkOne(t, u)
	if p.TotalBytecodeSize() != len(f.Code)*6 {
		t.Fatalf("size = %d", p.TotalBytecodeSize())
	}
}

func TestProgramDisasmWithClasses(t *testing.T) {
	p := makeClassProgram(t)
	d := p.Disasm()
	for _, want := range []string{
		".class Base", ".class Derived extends Base",
		".prop a", ".method get ->",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("program disasm missing %q", want)
		}
	}
	base, _ := p.ClassByName("Base")
	if names := base.MethodNames(); len(names) != 1 || names[0] != "get" {
		t.Fatalf("method names = %v", names)
	}
}

func TestBuilderHelpers(t *testing.T) {
	u := &Unit{Name: "t"}
	b := NewFuncBuilder(u, "f", []string{"a"})
	if slot, ok := b.LookupLocal("a"); !ok || slot != 0 {
		t.Fatal("LookupLocal param")
	}
	if _, ok := b.LookupLocal("zz"); ok {
		t.Fatal("LookupLocal unknown")
	}
	if tmp := b.TempLocal(); tmp != 1 {
		t.Fatalf("temp = %d", tmp)
	}
	if it := b.NewIter(); it != 0 {
		t.Fatalf("iter = %d", it)
	}
	if b.PC() != 0 {
		t.Fatal("PC")
	}
	idx := b.LitIdx(value.Str("s"))
	if u.Literal(idx).AsStr() != "s" {
		t.Fatal("LitIdx")
	}
	b.SetClass(3)
	b.Emit(OpNull, 0, 0)
	b.Emit(OpRet, 0, 0)
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if fn.Class != 3 {
		t.Fatal("SetClass lost")
	}
	if fn.Blocks()[0].Len() != 2 {
		t.Fatal("block Len")
	}
}

func TestSetCodeInvalidatesCaches(t *testing.T) {
	u := &Unit{Name: "t"}
	f := buildAbs(t, u)
	u.Funcs = []*Function{f}
	linkOne(t, u)
	before := len(f.Blocks())
	f.SetCode([]Instr{{Op: OpNull}, {Op: OpRet}})
	if len(f.Blocks()) == before {
		t.Fatal("blocks cache not invalidated")
	}
	if f.BytecodeSize != 12 {
		t.Fatalf("size = %d", f.BytecodeSize)
	}
}

func TestVerifyErrorMessage(t *testing.T) {
	e := &VerifyError{Func: "f", PC: 3, Msg: "boom"}
	if !strings.Contains(e.Error(), "f @3: boom") {
		t.Fatalf("msg = %q", e.Error())
	}
}

func TestEmitIterBindsForwardLabels(t *testing.T) {
	u := &Unit{Name: "t"}
	b := NewFuncBuilder(u, "f", []string{"a"})
	it := b.NewIter()
	end := b.NewLabel()
	body := b.NewLabel()
	b.Emit(OpCGetL, 0, 0)
	b.EmitIter(OpIterInit, it, end) // forward iterator label
	b.Bind(body)
	b.Emit(OpIterVal, int32(it), 0)
	b.Emit(OpPopC, 0, 0)
	b.EmitIter(OpIterNext, it, body) // backward iterator label
	b.Bind(end)
	b.Emit(OpNull, 0, 0)
	b.Emit(OpRet, 0, 0)
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// IterInit's forward B operand was patched to the Bind point, and
	// IterNext's backward B resolved immediately.
	for _, in := range fn.Code {
		if in.Op == OpIterInit && int(in.B) != 5 {
			t.Fatalf("IterInit target = %d", in.B)
		}
		if in.Op == OpIterNext && int(in.B) != 2 {
			t.Fatalf("IterNext target = %d", in.B)
		}
	}
}
