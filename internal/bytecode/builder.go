package bytecode

import (
	"fmt"

	"jumpstart/internal/value"
)

// Label is a forward-patchable jump target handed out by FuncBuilder.
type Label int

// FuncBuilder incrementally assembles one Function. It is the
// compiler's back end interface: emit instructions, create and bind
// labels, declare locals, and Finish.
type FuncBuilder struct {
	fn          *Function
	unit        *Unit
	labels      []int   // label -> bound pc, -1 if unbound
	patches     [][]int // label -> pcs whose A awaits binding
	iterPatches [][]int // label -> pcs whose B awaits binding
	locals      map[string]int
}

// NewFuncBuilder starts building a function with the given qualified
// name inside unit. Parameters are declared immediately, in order.
func NewFuncBuilder(unit *Unit, name string, params []string) *FuncBuilder {
	b := &FuncBuilder{
		fn:     &Function{Name: name, Class: NoClass, Unit: unit},
		unit:   unit,
		locals: make(map[string]int),
	}
	for _, p := range params {
		b.DeclareLocal(p)
	}
	b.fn.NumParams = len(params)
	return b
}

// SetClass marks the function as a method of class id.
func (b *FuncBuilder) SetClass(id ClassID) { b.fn.Class = id }

// DeclareLocal returns the slot for name, allocating it if new.
func (b *FuncBuilder) DeclareLocal(name string) int {
	if slot, ok := b.locals[name]; ok {
		return slot
	}
	slot := b.fn.NumLocals
	b.locals[name] = slot
	b.fn.NumLocals++
	return slot
}

// LookupLocal returns the slot for name if declared.
func (b *FuncBuilder) LookupLocal(name string) (int, bool) {
	slot, ok := b.locals[name]
	return slot, ok
}

// TempLocal allocates an anonymous local slot (for desugaring).
func (b *FuncBuilder) TempLocal() int {
	slot := b.fn.NumLocals
	b.fn.NumLocals++
	return slot
}

// NewIter allocates an iterator slot.
func (b *FuncBuilder) NewIter() int {
	it := b.fn.NumIters
	b.fn.NumIters++
	return it
}

// Emit appends an instruction and returns its pc.
func (b *FuncBuilder) Emit(op Op, a, c int32) int {
	b.fn.Code = append(b.fn.Code, Instr{Op: op, A: a, B: c})
	return len(b.fn.Code) - 1
}

// EmitLit pushes literal v via the unit pool, using the compact OpInt
// form for int32-range integers.
func (b *FuncBuilder) EmitLit(v value.Value) int {
	if v.Kind() == value.KindInt {
		i := v.AsInt()
		if i >= -1<<31 && i < 1<<31 {
			return b.Emit(OpInt, int32(i), 0)
		}
	}
	switch v.Kind() {
	case value.KindNull:
		return b.Emit(OpNull, 0, 0)
	case value.KindBool:
		if v.AsBool() {
			return b.Emit(OpTrue, 0, 0)
		}
		return b.Emit(OpFalse, 0, 0)
	}
	return b.Emit(OpLit, b.unit.AddLiteral(v), 0)
}

// LitIdx interns v in the unit literal pool and returns its index
// without emitting an instruction (used for name operands).
func (b *FuncBuilder) LitIdx(v value.Value) int32 { return b.unit.AddLiteral(v) }

// NewLabel creates an unbound label.
func (b *FuncBuilder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	b.patches = append(b.patches, nil)
	b.iterPatches = append(b.iterPatches, nil)
	return Label(len(b.labels) - 1)
}

// Bind attaches l to the next emitted instruction and back-patches any
// pending jumps.
func (b *FuncBuilder) Bind(l Label) {
	pc := len(b.fn.Code)
	b.labels[l] = pc
	for _, p := range b.patches[l] {
		b.fn.Code[p].A = int32(pc)
	}
	b.patches[l] = nil
	for _, p := range b.iterPatches[l] {
		b.fn.Code[p].B = int32(pc)
	}
	b.iterPatches[l] = nil
}

// Jump emits an unconditional or conditional jump to l.
func (b *FuncBuilder) Jump(op Op, l Label) {
	pc := b.Emit(op, 0, 0)
	if b.labels[l] >= 0 {
		b.fn.Code[pc].A = int32(b.labels[l])
	} else {
		b.patches[l] = append(b.patches[l], pc)
	}
}

// EmitIter emits an OpIterInit/OpIterNext whose B operand targets l.
func (b *FuncBuilder) EmitIter(op Op, iter int, l Label) {
	pc := b.Emit(op, int32(iter), 0)
	if b.labels[l] >= 0 {
		b.fn.Code[pc].B = int32(b.labels[l])
	} else {
		b.iterPatches[l] = append(b.iterPatches[l], pc)
	}
}

// PC returns the index of the next instruction to be emitted.
func (b *FuncBuilder) PC() int { return len(b.fn.Code) }

// LastOp returns the opcode of the most recently emitted instruction,
// or OpNop if none.
func (b *FuncBuilder) LastOp() Op {
	if len(b.fn.Code) == 0 {
		return OpNop
	}
	return b.fn.Code[len(b.fn.Code)-1].Op
}

// Finish validates that every label was bound and returns the function.
// If the body can fall off the end, an implicit `return null` is added.
func (b *FuncBuilder) Finish() (*Function, error) {
	for l, pc := range b.labels {
		if pc < 0 && (len(b.patches[l]) > 0 || len(b.iterPatches[l]) > 0) {
			return nil, fmt.Errorf("bytecode: unbound label %d in %s", l, b.fn.Name)
		}
	}
	if len(b.fn.Code) == 0 || (!b.LastOp().IsTerminal()) {
		b.Emit(OpNull, 0, 0)
		b.Emit(OpRet, 0, 0)
	}
	b.fn.BytecodeSize = len(b.fn.Code) * 6
	return b.fn, nil
}
