package bytecode

import (
	"fmt"
	"strings"

	"jumpstart/internal/value"
)

// Disasm renders a human-readable disassembly of the function,
// annotating literal operands with their values and block boundaries
// with block IDs. The format is stable enough for golden tests.
func (f *Function) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".function %s (params=%d locals=%d iters=%d)\n",
		f.Name, f.NumParams, f.NumLocals, f.NumIters)
	blocks := f.Blocks()
	next := 0
	for pc, in := range f.Code {
		if next < len(blocks) && blocks[next].Start == pc {
			fmt.Fprintf(&b, "  b%d:", blocks[next].ID)
			if len(blocks[next].Succs) > 0 {
				fmt.Fprintf(&b, " ; succs=%v", blocks[next].Succs)
			}
			b.WriteByte('\n')
			next++
		}
		fmt.Fprintf(&b, "    %4d  %s%s\n", pc, in.String(), f.annotate(in))
	}
	return b.String()
}

// annotate returns a comment describing literal operands.
func (f *Function) annotate(in Instr) string {
	if f.Unit == nil {
		return ""
	}
	switch in.Op {
	case OpLit, OpFCall, OpFCallM, OpNewObjL, OpPropGet, OpPropSet:
		v := f.Unit.Literal(in.A)
		if v.Kind() == value.KindNull && in.Op == OpLit {
			return ""
		}
		return "  ; " + v.String()
	case OpBuiltin:
		return "  ; " + Builtin(in.A).String()
	default:
		return ""
	}
}

// Disasm renders the whole program: every class then every function.
func (p *Program) Disasm() string {
	var b strings.Builder
	for _, c := range p.Classes {
		fmt.Fprintf(&b, ".class %s", c.Name)
		if c.Parent != NoClass {
			fmt.Fprintf(&b, " extends %s", p.Classes[c.Parent].Name)
		}
		b.WriteByte('\n')
		for _, pd := range c.Props {
			fmt.Fprintf(&b, "  .prop %s\n", pd.Name)
		}
		for _, m := range c.MethodNames() {
			if id, ok := c.LookupMethod(m); ok {
				fmt.Fprintf(&b, "  .method %s -> #%d\n", m, id)
			}
		}
	}
	for _, f := range p.Funcs {
		b.WriteString(f.Disasm())
	}
	return b.String()
}
