package bytecode

import "fmt"

// VerifyError describes a bytecode verification failure.
type VerifyError struct {
	Func string
	PC   int
	Msg  string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("bytecode: verify %s @%d: %s", e.Func, e.PC, e.Msg)
}

// Verify checks a whole Program. Every function must pass VerifyFunc.
func (p *Program) Verify() error {
	for _, f := range p.Funcs {
		if err := p.VerifyFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// VerifyFunc checks the structural well-formedness of one function:
// jump targets in range, operand indices valid, terminating control
// flow, and a consistent stack depth at every program point (computed
// by abstract interpretation over the CFG). HHVM runs the analogous
// verifier when loading units; Jump-Start consumers additionally rely
// on it to reject profile packages referencing malformed bytecode.
func (p *Program) VerifyFunc(f *Function) error {
	fail := func(pc int, format string, args ...interface{}) error {
		return &VerifyError{Func: f.Name, PC: pc, Msg: fmt.Sprintf(format, args...)}
	}
	if len(f.Code) == 0 {
		return fail(0, "empty function body")
	}
	if f.NumParams > f.NumLocals {
		return fail(0, "params (%d) exceed locals (%d)", f.NumParams, f.NumLocals)
	}

	for pc, in := range f.Code {
		switch in.Op {
		case OpCGetL, OpSetL, OpPushL:
			if in.A < 0 || int(in.A) >= f.NumLocals {
				return fail(pc, "local %d out of range [0,%d)", in.A, f.NumLocals)
			}
		case OpLit, OpPropGet, OpPropSet, OpFCall, OpFCallM, OpNewObjL:
			if in.A < 0 || int(in.A) >= len(f.Unit.Literals) {
				return fail(pc, "literal %d out of range", in.A)
			}
		case OpFCallD:
			if in.A < 0 || int(in.A) >= len(p.Funcs) {
				return fail(pc, "function id %d out of range", in.A)
			}
			if int(in.B) != p.Funcs[in.A].NumParams {
				return fail(pc, "call to %s with %d args, want %d",
					p.Funcs[in.A].Name, in.B, p.Funcs[in.A].NumParams)
			}
		case OpNewObj:
			if in.A < 0 || int(in.A) >= len(p.Classes) {
				return fail(pc, "class id %d out of range", in.A)
			}
		case OpBuiltin:
			if in.A < 0 || int(in.A) >= NumBuiltins {
				return fail(pc, "builtin id %d out of range", in.A)
			}
		case OpJmp, OpJmpZ, OpJmpNZ:
			if in.A < 0 || int(in.A) >= len(f.Code) {
				return fail(pc, "jump target %d out of range", in.A)
			}
		case OpIterInit, OpIterNext, OpIterKey, OpIterVal:
			if in.A < 0 || int(in.A) >= f.NumIters {
				return fail(pc, "iterator %d out of range [0,%d)", in.A, f.NumIters)
			}
			if in.Op == OpIterInit || in.Op == OpIterNext {
				if in.B < 0 || int(in.B) >= len(f.Code) {
					return fail(pc, "iterator jump target %d out of range", in.B)
				}
			}
		case OpThis:
			if f.Class == NoClass {
				return fail(pc, "This outside a method")
			}
		}
		if in.Op.IsCall() && in.B < 0 {
			return fail(pc, "negative arg count")
		}
	}

	// Last instruction must not fall off the end.
	last := f.Code[len(f.Code)-1]
	if !last.Op.IsTerminal() && !last.Op.IsConditional() {
		return fail(len(f.Code)-1, "control falls off function end")
	}
	if last.Op.IsConditional() {
		return fail(len(f.Code)-1, "conditional branch at function end")
	}

	// Stack-depth abstract interpretation across the CFG.
	depth := make([]int, len(f.Code))
	for i := range depth {
		depth[i] = -1 // unknown
	}
	type workItem struct{ pc, d int }
	work := []workItem{{0, 0}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d := it.pc, it.d
		for {
			if depth[pc] >= 0 {
				if depth[pc] != d {
					return fail(pc, "inconsistent stack depth: %d vs %d", depth[pc], d)
				}
				break
			}
			depth[pc] = d
			in := f.Code[pc]
			pops, pushes := in.Op.StackEffect(in.A, in.B)
			if d < pops {
				return fail(pc, "stack underflow: depth %d, pops %d", d, pops)
			}
			d = d - pops + pushes
			switch {
			case in.Op == OpJmp:
				pc = int(in.A)
				continue
			case in.Op == OpJmpZ || in.Op == OpJmpNZ:
				work = append(work, workItem{int(in.A), d})
			case in.Op == OpIterInit || in.Op == OpIterNext:
				work = append(work, workItem{int(in.B), d})
			case in.Op == OpRet || in.Op == OpFatal:
				if d != 0 {
					return fail(pc, "return with nonzero stack depth %d", d)
				}
			}
			if in.Op == OpRet || in.Op == OpFatal {
				break
			}
			pc++
			if pc >= len(f.Code) {
				break
			}
		}
	}
	return nil
}
