package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2},  // never more workers than tasks
		{0, 3, 3},  // 0 = NumCPU, clamped to n
		{-1, 1, 1}, // negative = NumCPU, clamped
		{8, 0, 1},  // empty input still resolves to a valid count
	}
	for _, c := range cases {
		got := Workers(c.workers, c.n)
		if c.workers <= 0 && c.n > runtime.GOMAXPROCS(0) {
			continue // machine-dependent, skip exact check
		}
		if got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestMapOrderedAtEveryWorkerCount(t *testing.T) {
	const n = 100
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, w := range []int{1, 2, 4, 0} {
		got := Map(w, n, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrLowestIndexWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, w := range []int{1, 4} {
		_, err := MapErr(w, 50, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errA
			case 31:
				return 0, errB
			}
			return i, nil
		})
		if err != errA {
			t.Fatalf("workers=%d: err=%v, want the lowest-index error", w, err)
		}
	}
	out, err := MapErr(4, 10, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 10 || out[9] != 9 {
		t.Fatalf("clean MapErr: out=%v err=%v", out, err)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(8, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachShardCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 97} {
		for _, w := range []int{1, 3, 8, 0} {
			hits := make([]int32, n)
			ForEachShard(w, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, w, i, h)
				}
			}
		}
	}
}
