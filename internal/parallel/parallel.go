// Package parallel is the simulation layer's execution engine: ordered
// fan-out/fan-in over independent tasks. Results are always merged in
// task-index order, so a computation that is deterministic per task is
// deterministic — byte-identical — at every worker count, including 1.
//
// The determinism contract callers must uphold: a task may not draw
// from shared mutable state (in particular, a shared PRNG). Tasks that
// need randomness derive an independent stream with workload.Fork and
// the task index; any remaining shared draws stay on a sequential path
// outside the fan-out (see cluster.Fleet.Tick for the pattern).
package parallel

import "runtime"

// Workers resolves a worker-count setting: values <= 0 mean "one per
// available CPU"; the result is never larger than n (no idle spawns)
// and never smaller than 1.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the results in index order. Tasks are handed
// out dynamically (an atomic cursor), so uneven task costs balance;
// the index-ordered result slice makes the merge deterministic anyway.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible tasks. All tasks run to completion; if
// any fail, the error of the lowest-indexed failing task is returned
// (deterministic regardless of scheduling).
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and waits for all of them.
func ForEach(workers, n int, fn func(i int)) {
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		<-done
	}
}

// ForEachShard splits [0, n) into one contiguous shard per worker and
// runs fn(lo, hi) for each. Sharding beats per-index dispatch when the
// per-item work is tiny and uniform (e.g. one fleet server per item):
// the per-tick cost is workers goroutine handoffs, not n.
func ForEachShard(workers, n int, fn func(lo, hi int)) {
	ForEachShardIndexed(workers, n, func(_, lo, hi int) { fn(lo, hi) })
}

// ForEachShardIndexed is ForEachShard with the shard's index passed to
// fn. The index identifies shard-private state (per-shard telemetry
// collectors, scratch buffers) that the caller merges in index order
// afterwards; shard boundaries depend only on (workers, n), so the
// index→range mapping is deterministic.
func ForEachShardIndexed(workers, n int, fn func(shard, lo, hi int)) {
	workers = Workers(workers, n)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	per := (n + workers - 1) / workers
	done := make(chan struct{})
	launched := 0
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		go func(shard, lo, hi int) {
			fn(shard, lo, hi)
			done <- struct{}{}
		}(launched, lo, hi)
		launched++
	}
	for i := 0; i < launched; i++ {
		<-done
	}
}

// ShardCount returns the number of shards ForEachShardIndexed will
// launch for (workers, n) — the size callers need to preallocate
// shard-private state.
func ShardCount(workers, n int) int {
	return Workers(workers, n)
}
