package prof

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Wire-format constants. The format is: magic, format version, uvarint
// payload length, payload, CRC-32 (IEEE) of the payload. Everything in
// the payload is written with varints and length-prefixed strings, all
// map iterations sorted so encoding is deterministic (a requirement
// for package checksums and test golden files).
var magic = []byte("JSPKG")

const formatVersion = 1

// Decode limits. A corrupt or malicious package must not OOM a
// consumer (Section VI-A3 requires surviving corrupted packages).
const (
	maxStringLen = 1 << 12
	maxCount     = 1 << 22
)

// ErrCorrupt is returned (wrapped) for any malformed package.
var ErrCorrupt = errors.New("prof: corrupt profile package")

type encoder struct{ buf []byte }

func (e *encoder) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) str(s string) { e.u64(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u64() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.off += n
	return v, nil
}

func (d *decoder) i64() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.off += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u64()
	if err != nil {
		return "", err
	}
	if n > maxStringLen || d.off+int(n) > len(d.buf) {
		return "", ErrCorrupt
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) count() (int, error) {
	n, err := d.u64()
	if err != nil {
		return 0, err
	}
	if n > maxCount {
		return 0, ErrCorrupt
	}
	return int(n), nil
}

// Encode serializes the profile package.
func (p *Profile) Encode() []byte {
	var e encoder
	// Meta.
	e.i64(int64(p.Meta.Region))
	e.i64(int64(p.Meta.Bucket))
	e.i64(int64(p.Meta.SeederID))
	e.i64(p.Meta.Revision)
	e.i64(p.Meta.RequestCount)

	// Units.
	e.u64(uint64(len(p.Units)))
	for _, u := range p.Units {
		e.str(u)
	}

	// Functions, sorted by name.
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	e.u64(uint64(len(names)))
	for _, name := range names {
		fp := p.Funcs[name]
		e.str(name)
		e.u64(fp.Checksum)
		e.u64(fp.EntryCount)
		e.u64(uint64(len(fp.BlockCounts)))
		for _, n := range fp.BlockCounts {
			e.u64(n)
		}
		// Edges sorted by (src, dst).
		edges := make([]EdgeKey, 0, len(fp.EdgeCounts))
		for k := range fp.EdgeCounts {
			edges = append(edges, k)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Src != edges[j].Src {
				return edges[i].Src < edges[j].Src
			}
			return edges[i].Dst < edges[j].Dst
		})
		e.u64(uint64(len(edges)))
		for _, k := range edges {
			e.i64(int64(k.Src))
			e.i64(int64(k.Dst))
			e.u64(fp.EdgeCounts[k])
		}
		// Call targets sorted by pc then name.
		pcs := make([]int32, 0, len(fp.CallTargets))
		for pc := range fp.CallTargets {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		e.u64(uint64(len(pcs)))
		for _, pc := range pcs {
			targets := fp.CallTargets[pc]
			tnames := make([]string, 0, len(targets))
			for n := range targets {
				tnames = append(tnames, n)
			}
			sort.Strings(tnames)
			e.i64(int64(pc))
			e.u64(uint64(len(tnames)))
			for _, tn := range tnames {
				e.str(tn)
				e.u64(targets[tn])
			}
		}
		// Type observations sorted by pc then key.
		tpcs := make([]int32, 0, len(fp.TypeObs))
		for pc := range fp.TypeObs {
			tpcs = append(tpcs, pc)
		}
		sort.Slice(tpcs, func(i, j int) bool { return tpcs[i] < tpcs[j] })
		e.u64(uint64(len(tpcs)))
		for _, pc := range tpcs {
			obs := fp.TypeObs[pc]
			keys := make([]uint16, 0, len(obs))
			for k := range obs {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			e.i64(int64(pc))
			e.u64(uint64(len(keys)))
			for _, k := range keys {
				e.u64(uint64(k))
				e.u64(obs[k])
			}
		}
		// Vasm counters.
		e.u64(uint64(len(fp.VasmCounts)))
		for _, n := range fp.VasmCounts {
			e.u64(n)
		}
	}

	// Props sorted by key.
	pkeys := make([]string, 0, len(p.Props))
	for k := range p.Props {
		pkeys = append(pkeys, k)
	}
	sort.Strings(pkeys)
	e.u64(uint64(len(pkeys)))
	for _, k := range pkeys {
		e.str(k)
		e.u64(p.Props[k])
	}

	// Property affinity pairs sorted by (A, B).
	pps := make([]PropPair, 0, len(p.PropPairs))
	for k := range p.PropPairs {
		pps = append(pps, k)
	}
	sort.Slice(pps, func(i, j int) bool {
		if pps[i].A != pps[j].A {
			return pps[i].A < pps[j].A
		}
		return pps[i].B < pps[j].B
	})
	e.u64(uint64(len(pps)))
	for _, k := range pps {
		e.str(k.A)
		e.str(k.B)
		e.u64(p.PropPairs[k])
	}

	// Call pairs sorted by caller, callee.
	cps := make([]CallPair, 0, len(p.CallPairs))
	for k := range p.CallPairs {
		cps = append(cps, k)
	}
	sort.Slice(cps, func(i, j int) bool {
		if cps[i].Caller != cps[j].Caller {
			return cps[i].Caller < cps[j].Caller
		}
		return cps[i].Callee < cps[j].Callee
	})
	e.u64(uint64(len(cps)))
	for _, k := range cps {
		e.str(k.Caller)
		e.str(k.Callee)
		e.u64(p.CallPairs[k])
	}

	// Function order.
	e.u64(uint64(len(p.FuncOrder)))
	for _, n := range p.FuncOrder {
		e.str(n)
	}

	payload := e.buf
	var out encoder
	out.buf = append(out.buf, magic...)
	out.buf = append(out.buf, formatVersion)
	out.u64(uint64(len(payload)))
	out.buf = append(out.buf, payload...)
	out.u32(crc32.ChecksumIEEE(payload))
	return out.buf
}

// Decode parses a profile package, verifying framing and checksum.
// It never panics on malformed input.
func Decode(data []byte) (p *Profile, err error) {
	defer func() {
		// Belt and suspenders: any slip in the bounds checks below
		// must surface as ErrCorrupt, not a panic in a consumer.
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("%w: %v", ErrCorrupt, r)
		}
	}()

	if len(data) < len(magic)+1 {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	for i, c := range magic {
		if data[i] != c {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	if data[len(magic)] != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[len(magic)])
	}
	d := &decoder{buf: data, off: len(magic) + 1}
	plen, err := d.u64()
	if err != nil {
		return nil, err
	}
	if d.off+int(plen)+4 > len(data) || plen > uint64(len(data)) {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	// Strict framing: the CRC word must be the final bytes of the
	// package. Anything after it is not covered by the checksum, so a
	// lax decoder would vouch for data it never verified (and two
	// byte-different packages would decode identically).
	if d.off+int(plen)+4 != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after checksum",
			ErrCorrupt, len(data)-(d.off+int(plen)+4))
	}
	payload := data[d.off : d.off+int(plen)]
	gotCRC := binary.LittleEndian.Uint32(data[d.off+int(plen):])
	if crc32.ChecksumIEEE(payload) != gotCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d = &decoder{buf: payload}

	p = NewProfile()
	rd := func(dst *int32) error {
		v, err := d.i64()
		if err != nil {
			return err
		}
		*dst = int32(v)
		return nil
	}
	if err := rd(&p.Meta.Region); err != nil {
		return nil, err
	}
	if err := rd(&p.Meta.Bucket); err != nil {
		return nil, err
	}
	if err := rd(&p.Meta.SeederID); err != nil {
		return nil, err
	}
	if p.Meta.Revision, err = d.i64(); err != nil {
		return nil, err
	}
	if p.Meta.RequestCount, err = d.i64(); err != nil {
		return nil, err
	}

	nUnits, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nUnits; i++ {
		u, err := d.str()
		if err != nil {
			return nil, err
		}
		p.Units = append(p.Units, u)
	}

	nFuncs, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nFuncs; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		fp := &FuncProfile{
			EdgeCounts:  map[EdgeKey]uint64{},
			CallTargets: map[int32]map[string]uint64{},
			TypeObs:     map[int32]map[uint16]uint64{},
		}
		if fp.Checksum, err = d.u64(); err != nil {
			return nil, err
		}
		if fp.EntryCount, err = d.u64(); err != nil {
			return nil, err
		}
		nb, err := d.count()
		if err != nil {
			return nil, err
		}
		fp.BlockCounts = make([]uint64, nb)
		for j := 0; j < nb; j++ {
			if fp.BlockCounts[j], err = d.u64(); err != nil {
				return nil, err
			}
		}
		ne, err := d.count()
		if err != nil {
			return nil, err
		}
		for j := 0; j < ne; j++ {
			var k EdgeKey
			s, err := d.i64()
			if err != nil {
				return nil, err
			}
			t, err := d.i64()
			if err != nil {
				return nil, err
			}
			k.Src, k.Dst = int32(s), int32(t)
			if fp.EdgeCounts[k], err = d.u64(); err != nil {
				return nil, err
			}
		}
		nc, err := d.count()
		if err != nil {
			return nil, err
		}
		for j := 0; j < nc; j++ {
			pc, err := d.i64()
			if err != nil {
				return nil, err
			}
			nt, err := d.count()
			if err != nil {
				return nil, err
			}
			targets := make(map[string]uint64, nt)
			for k := 0; k < nt; k++ {
				tn, err := d.str()
				if err != nil {
					return nil, err
				}
				if targets[tn], err = d.u64(); err != nil {
					return nil, err
				}
			}
			fp.CallTargets[int32(pc)] = targets
		}
		nty, err := d.count()
		if err != nil {
			return nil, err
		}
		for j := 0; j < nty; j++ {
			pc, err := d.i64()
			if err != nil {
				return nil, err
			}
			no, err := d.count()
			if err != nil {
				return nil, err
			}
			obs := make(map[uint16]uint64, no)
			for k := 0; k < no; k++ {
				key, err := d.u64()
				if err != nil {
					return nil, err
				}
				if key > 0xffff {
					return nil, fmt.Errorf("%w: type key out of range", ErrCorrupt)
				}
				if obs[uint16(key)], err = d.u64(); err != nil {
					return nil, err
				}
			}
			fp.TypeObs[int32(pc)] = obs
		}
		nv, err := d.count()
		if err != nil {
			return nil, err
		}
		if nv > 0 {
			fp.VasmCounts = make([]uint64, nv)
			for j := 0; j < nv; j++ {
				if fp.VasmCounts[j], err = d.u64(); err != nil {
					return nil, err
				}
			}
		}
		p.Funcs[name] = fp
	}

	np, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		if p.Props[k], err = d.u64(); err != nil {
			return nil, err
		}
	}

	npp, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < npp; i++ {
		a, err := d.str()
		if err != nil {
			return nil, err
		}
		bb, err := d.str()
		if err != nil {
			return nil, err
		}
		if p.PropPairs[PropPair{A: a, B: bb}], err = d.u64(); err != nil {
			return nil, err
		}
	}

	ncp, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < ncp; i++ {
		caller, err := d.str()
		if err != nil {
			return nil, err
		}
		callee, err := d.str()
		if err != nil {
			return nil, err
		}
		if p.CallPairs[CallPair{caller, callee}], err = d.u64(); err != nil {
			return nil, err
		}
	}

	nfo, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nfo; i++ {
		n, err := d.str()
		if err != nil {
			return nil, err
		}
		p.FuncOrder = append(p.FuncOrder, n)
	}

	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return p, nil
}
