package prof

import (
	"bytes"
	"errors"
	"testing"
)

// seederProfile builds a one-function profile with tunable request
// count, checksum and type observations — the knobs the consensus
// merge votes over.
func seederProfile(requests int64, checksum uint64, entry uint64, typeObs map[uint16]uint64) *Profile {
	p := NewProfile()
	p.Meta = Meta{Region: 1, Bucket: 2, SeederID: 7, Revision: 5, RequestCount: requests}
	fp := &FuncProfile{
		Checksum:    checksum,
		EntryCount:  entry,
		BlockCounts: []uint64{entry, entry / 2},
		EdgeCounts:  map[EdgeKey]uint64{{Src: 0, Dst: 1}: entry},
		CallTargets: map[int32]map[string]uint64{3: {"callee": entry}},
		TypeObs:     map[int32]map[uint16]uint64{},
		VasmCounts:  []uint64{entry, entry},
	}
	if typeObs != nil {
		obs := map[uint16]uint64{}
		for k, n := range typeObs {
			obs[k] = n
		}
		fp.TypeObs[9] = obs
	}
	p.Funcs["hot"] = fp
	p.Units = []string{"unit0"}
	p.FuncOrder = []string{"hot"}
	p.Props["C::x"] = entry
	p.CallPairs[CallPair{Caller: "hot", Callee: "callee"}] = entry
	return p
}

// TestAggregateWeightNormalization: seeders get equal votes regardless
// of traffic volume — a seeder with half the requests has its counts
// doubled before the union.
func TestAggregateWeightNormalization(t *testing.T) {
	big := seederProfile(1000, 42, 1000, nil)
	small := seederProfile(500, 42, 100, nil)
	out, stats, err := Aggregate([]*Profile{big, small})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Seeders != 2 || stats.Funcs != 1 || stats.ChecksumConflicts != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// big scales by 1000/1000 = 1, small by 1000/500 = 2.
	if got := out.Funcs["hot"].EntryCount; got != 1000+200 {
		t.Fatalf("EntryCount = %d, want 1200", got)
	}
	if got := out.Funcs["hot"].BlockCounts[0]; got != 1200 {
		t.Fatalf("BlockCounts[0] = %d, want 1200", got)
	}
	if got := out.Props["C::x"]; got != 1200 {
		t.Fatalf("Props = %d, want 1200", got)
	}
	if got := out.CallPairs[CallPair{Caller: "hot", Callee: "callee"}]; got != 1200 {
		t.Fatalf("CallPairs = %d, want 1200", got)
	}
	if out.Meta.RequestCount != 1500 || out.Meta.SeederID != -1 || out.Meta.Revision != 5 {
		t.Fatalf("meta = %+v", out.Meta)
	}
}

// TestAggregateChecksumMajority: when seeders disagree on a function's
// bytecode checksum, the majority-weight checksum wins and the losing
// seeder's counters for that function are discarded.
func TestAggregateChecksumMajority(t *testing.T) {
	a := seederProfile(100, 42, 50, nil)
	b := seederProfile(100, 42, 60, nil)
	c := seederProfile(100, 99, 70, nil) // disagrees, outvoted 110 vs 70
	out, stats, err := Aggregate([]*Profile{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChecksumConflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", stats.ChecksumConflicts)
	}
	fp := out.Funcs["hot"]
	if fp.Checksum != 42 {
		t.Fatalf("checksum = %d, want majority 42", fp.Checksum)
	}
	if fp.EntryCount != 110 {
		t.Fatalf("EntryCount = %d, want 110 (loser discarded)", fp.EntryCount)
	}
}

// TestAggregateTypeSiteVoting: a strict majority of observers keeps a
// type site (merged); a split vote drops it to generic.
func TestAggregateTypeSiteVoting(t *testing.T) {
	// 2 of 3 seeders see kind 0x0101 dominant; the third sees 0x0202.
	a := seederProfile(10, 1, 10, map[uint16]uint64{0x0101: 90, 0x0202: 10})
	b := seederProfile(10, 1, 10, map[uint16]uint64{0x0101: 80})
	c := seederProfile(10, 1, 10, map[uint16]uint64{0x0202: 70})
	out, stats, err := Aggregate([]*Profile{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TypeSitesKept != 1 || stats.TypeSitesDropped != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	obs := out.Funcs["hot"].TypeObs[9]
	if obs == nil || obs[0x0101] != 170 || obs[0x0202] != 80 {
		t.Fatalf("merged obs = %v", obs)
	}

	// 1-vs-1: no strict majority, the site drops.
	d := seederProfile(10, 1, 10, map[uint16]uint64{0x0101: 90})
	e := seederProfile(10, 1, 10, map[uint16]uint64{0x0202: 90})
	out2, stats2, err := Aggregate([]*Profile{d, e})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.TypeSitesKept != 0 || stats2.TypeSitesDropped != 1 {
		t.Fatalf("split-vote stats = %+v", stats2)
	}
	if len(out2.Funcs["hot"].TypeObs) != 0 {
		t.Fatalf("split-vote site survived: %v", out2.Funcs["hot"].TypeObs)
	}
}

// TestAggregateVasmShapeUnanimity: optimized-translation counters
// survive only when every contributing seeder agrees on the
// translation's block count.
func TestAggregateVasmShapeUnanimity(t *testing.T) {
	a := seederProfile(10, 1, 10, nil)
	b := seederProfile(10, 1, 10, nil)
	out, stats, err := Aggregate([]*Profile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out.Funcs["hot"].VasmCounts == nil || stats.VasmDropped != 0 {
		t.Fatalf("agreeing vasm dropped: %+v", stats)
	}
	c := seederProfile(10, 1, 10, nil)
	c.Funcs["hot"].VasmCounts = []uint64{1, 2, 3} // different shape
	out2, stats2, err := Aggregate([]*Profile{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Funcs["hot"].VasmCounts != nil || stats2.VasmDropped != 1 {
		t.Fatalf("disagreeing vasm survived: %+v", stats2)
	}
}

// TestAggregateRevisionMismatch: mixing revisions is an error — the
// consensus package carries one stamp.
func TestAggregateRevisionMismatch(t *testing.T) {
	a := seederProfile(10, 1, 10, nil)
	b := seederProfile(10, 1, 10, nil)
	b.Meta.Revision = 6
	if _, _, err := Aggregate([]*Profile{a, b}); !errors.Is(err, ErrAggregateRevisions) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := Aggregate(nil); err == nil {
		t.Fatal("empty aggregate accepted")
	}
}

// TestAggregateDeterministic: the merge is a pure function of its
// inputs — two runs encode byte-identically.
func TestAggregateDeterministic(t *testing.T) {
	mk := func() []*Profile {
		a := seederProfile(100, 42, 50, map[uint16]uint64{0x0101: 9})
		b := seederProfile(300, 42, 60, map[uint16]uint64{0x0101: 8, 0x0303: 2})
		c := seederProfile(200, 99, 70, map[uint16]uint64{0x0202: 7})
		b.Units = []string{"unit1", "unit0"}
		b.FuncOrder = []string{"hot", "cold"}
		return []*Profile{a, b, c}
	}
	enc := func() []byte {
		out, _, err := Aggregate(mk())
		if err != nil {
			t.Fatal(err)
		}
		return out.Encode()
	}
	x, y := enc(), enc()
	if !bytes.Equal(x, y) {
		t.Fatal("aggregate not deterministic")
	}
	// The heaviest seeder's first-touch ordering leads the unit list.
	out, _, _ := Aggregate(mk())
	if len(out.Units) != 2 || out.Units[0] != "unit1" {
		t.Fatalf("units = %v, want heaviest seeder's order first", out.Units)
	}
}

// TestAggregateThenRemap: the consensus package preserves its revision
// stamp, so the cross-release remap cascade applies to it exactly as
// to a single-seeder package.
func TestAggregateThenRemap(t *testing.T) {
	from := compileOne(t, remapSrcA)
	to := compileOne(t, remapSrcB)

	mkSeed := func(entry uint64) *Profile {
		p := NewProfile()
		p.Meta = Meta{Revision: 1, RequestCount: int64(entry)}
		for _, name := range []string{"keep", "tweaked", "gone", "oldname"} {
			fp := funcProfileFor(t, from, name)
			fp.EntryCount = entry
			p.Funcs[name] = fp
		}
		p.FuncOrder = []string{"oldname", "keep"}
		return p
	}
	agg, _, err := Aggregate([]*Profile{mkSeed(10), mkSeed(20)})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Meta.Revision != 1 {
		t.Fatalf("aggregate lost the revision stamp: %d", agg.Meta.Revision)
	}
	// Round-trip through the wire format like a real consensus package.
	decoded, err := Decode(agg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	out, stats := Remap(decoded, from, to, 2)
	want := RemapStats{Exact: 1, Renamed: 1, Fuzzy: 1, Dropped: 1}
	if stats != want {
		t.Fatalf("remap stats = %+v, want %+v", stats, want)
	}
	if out.Meta.Revision != 2 || out.Meta.SeederID != -1 {
		t.Fatalf("remapped consensus meta = %+v", out.Meta)
	}
	if _, ok := out.Funcs["newname"]; !ok {
		t.Fatal("rename arm did not fire on the consensus package")
	}
}
