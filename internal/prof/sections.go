package prof

// SectionSizes reports the approximate encoded size (bytes) of each of
// the package's Section IV-B categories. Operators use this to sanity-
// check what dominates a package (the paper's coverage thresholds
// include "the total size of profile data").
type SectionSizes struct {
	// PreloadList is category 1: repo global data to preload.
	PreloadList int
	// TierOneProfile is category 2: block/edge counters, call-target
	// profiles and type feedback.
	TierOneProfile int
	// OptimizedProfile is category 3: Vasm counters, tier-2 call
	// pairs, property counters and affinities.
	OptimizedProfile int
	// Intermediate is category 4: the precomputed function order.
	Intermediate int
	// Total is the full encoded size including framing.
	Total int
}

// Sections computes the per-category size breakdown by re-encoding
// stripped copies of the profile. It is a diagnostic, not a hot path.
func (p *Profile) Sections() SectionSizes {
	full := len(p.Encode())

	strip := func(mutate func(q *Profile)) int {
		q, err := Decode(p.Encode())
		if err != nil {
			return 0
		}
		mutate(q)
		return full - len(q.Encode())
	}

	return SectionSizes{
		PreloadList: strip(func(q *Profile) { q.Units = nil }),
		TierOneProfile: strip(func(q *Profile) {
			for _, fp := range q.Funcs {
				fp.BlockCounts = nil
				fp.EdgeCounts = map[EdgeKey]uint64{}
				fp.CallTargets = map[int32]map[string]uint64{}
				fp.TypeObs = map[int32]map[uint16]uint64{}
			}
		}),
		OptimizedProfile: strip(func(q *Profile) {
			for _, fp := range q.Funcs {
				fp.VasmCounts = nil
			}
			q.Props = map[string]uint64{}
			q.PropPairs = map[PropPair]uint64{}
			q.CallPairs = map[CallPair]uint64{}
		}),
		Intermediate: strip(func(q *Profile) { q.FuncOrder = nil }),
		Total:        full,
	}
}
