package prof

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"jumpstart/internal/hackc"
	"jumpstart/internal/interp"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

const profSrc = `
class Shape { prop hot = 0; prop cold = 0; fun area() { return 0; } }
class Circle extends Shape { prop r = 2; fun area() { return this->r * this->r * 3; } }
class Square extends Shape { prop s = 3; fun area() { return this->s * this->s; } }
fun tally(o) { o->hot += 1; o->cold += o->hot; return o->area(); }
fun work(n) {
  total = 0;
  c = new Circle;
  s = new Square;
  for (i = 0; i < n; i += 1) {
    total += tally(c);
    if (i % 10 == 0) { total += tally(s); }
  }
  return total;
}`

// profiledRun compiles profSrc, runs work(n) under a Collector, and
// returns the collector plus the program.
func profiledRun(t *testing.T, n int64) (*Collector, *interp.Interp) {
	t.Helper()
	prog, err := hackc.CompileSources(
		map[string]string{"site.mh": profSrc}, []string{"site.mh"}, hackc.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := object.NewRegistry(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(prog)
	ip := interp.New(prog, reg, interp.Config{Tracer: col})
	col.BeginRequest()
	if _, err := ip.CallByName("work", value.Int(n)); err != nil {
		t.Fatal(err)
	}
	return col, ip
}

func TestCollectorCounts(t *testing.T) {
	col, ip := profiledRun(t, 100)
	p := col.Snapshot(Meta{Region: 1, Bucket: 2, SeederID: 3, Revision: 42})
	if p.Meta.RequestCount != 1 {
		t.Fatalf("requests = %d", p.Meta.RequestCount)
	}
	work := p.Funcs["work"]
	if work == nil || work.EntryCount != 1 {
		t.Fatalf("work profile = %+v", work)
	}
	tally := p.Funcs["tally"]
	if tally == nil || tally.EntryCount != 110 {
		t.Fatalf("tally entries = %+v", tally)
	}
	circle := p.Funcs["Circle::area"]
	if circle == nil || circle.EntryCount != 100 {
		t.Fatalf("Circle::area entries = %+v", circle)
	}
	// Call-target profile at tally's method-call site must show both
	// targets with Circle dominant.
	var foundSite bool
	for _, targets := range tally.CallTargets {
		if targets["Circle::area"] == 100 && targets["Square::area"] == 10 {
			foundSite = true
		}
	}
	if !foundSite {
		t.Fatalf("call targets = %v", tally.CallTargets)
	}
	// Block counts: some block in work ran 100 times (loop body).
	found := false
	for _, n := range work.BlockCounts {
		if n == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("work blocks = %v", work.BlockCounts)
	}
	// Edge counts exist and connect blocks.
	if len(work.EdgeCounts) == 0 {
		t.Fatal("no edges")
	}
	// Property counters: Shape::hot is hottest (110 writes + 110
	// compound reads).
	if p.Props["Shape::hot"] == 0 {
		t.Fatalf("props = %v", p.Props)
	}
	if p.Props["Shape::hot"] <= p.Props["Shape::cold"] {
		t.Fatalf("hot/cold inverted: %v", p.Props)
	}
	// Inherited props keyed by the declaring class (Shape), own by the
	// leaf (Circle::r).
	if p.Props["Circle::r"] == 0 {
		t.Fatalf("Circle::r missing: %v", p.Props)
	}
	// Units preload list records the unit.
	if len(p.Units) != 1 || p.Units[0] != "site.mh" {
		t.Fatalf("units = %v", p.Units)
	}
	// Checksums match the live program.
	fn, _ := ip.Program().FuncByName("work")
	if work.Checksum != FuncChecksum(fn) {
		t.Fatal("checksum mismatch")
	}
}

func TestDominantTarget(t *testing.T) {
	col, _ := profiledRun(t, 100)
	p := col.Snapshot(Meta{})
	tally := p.Funcs["tally"]
	var pc int32 = -1
	for cpc, targets := range tally.CallTargets {
		if len(targets) == 2 {
			pc = cpc
		}
	}
	if pc < 0 {
		t.Fatal("polymorphic site not found")
	}
	// Circle gets 100/110 ≈ 91%.
	if name, ok := tally.DominantTarget(pc, 0.9); !ok || name != "Circle::area" {
		t.Fatalf("dominant = %q, %v", name, ok)
	}
	if _, ok := tally.DominantTarget(pc, 0.95); ok {
		t.Fatal("95% should not be met")
	}
	if _, ok := tally.DominantTarget(999, 0.5); ok {
		t.Fatal("unknown site")
	}
}

func TestMonoTypes(t *testing.T) {
	col, _ := profiledRun(t, 50)
	p := col.Snapshot(Meta{})
	work := p.Funcs["work"]
	mono := 0
	for pc := range work.TypeObs {
		if a, b, ok := work.MonoTypes(pc); ok {
			if value.Kind(a) != value.KindInt || value.Kind(b) != value.KindInt {
				t.Fatalf("work arithmetic should be int/int, got %v/%v",
					value.Kind(a), value.Kind(b))
			}
			mono++
		}
	}
	if mono == 0 {
		t.Fatal("no monomorphic sites found")
	}
}

func TestHotFunctions(t *testing.T) {
	col, _ := profiledRun(t, 100)
	p := col.Snapshot(Meta{})
	hot := p.HotFunctions()
	if len(hot) < 4 {
		t.Fatalf("hot = %v", hot)
	}
	if hot[0] != "tally" { // 110 entries, the hottest
		t.Fatalf("hottest = %q (%v)", hot[0], hot)
	}
	// Decreasing entry counts.
	for i := 1; i < len(hot); i++ {
		if p.Funcs[hot[i]].EntryCount > p.Funcs[hot[i-1]].EntryCount {
			t.Fatalf("not sorted: %v", hot)
		}
	}
}

func TestCoverageAndThresholds(t *testing.T) {
	col, _ := profiledRun(t, 100)
	p := col.Snapshot(Meta{})
	c := p.Coverage()
	if c.Funcs < 4 || c.Blocks == 0 || c.TotalCount == 0 || c.RequestCount != 1 {
		t.Fatalf("coverage = %+v", c)
	}
	if !p.MeetsThresholds(Thresholds{MinFuncs: 3, MinBlocks: 3, MinRequests: 1}) {
		t.Fatal("should meet modest thresholds")
	}
	if p.MeetsThresholds(Thresholds{MinFuncs: 1000}) {
		t.Fatal("should not meet huge thresholds")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	col, _ := profiledRun(t, 100)
	p := col.Snapshot(Meta{Region: 7, Bucket: 3, SeederID: 11, Revision: 99})
	p.FuncOrder = []string{"tally", "work"}
	p.CallPairs[CallPair{"work", "tally"}] = 110
	p.Funcs["work"].VasmCounts = []uint64{5, 10, 15}

	data := p.Encode()
	q, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if q.Meta != p.Meta {
		t.Fatalf("meta = %+v, want %+v", q.Meta, p.Meta)
	}
	if len(q.Funcs) != len(p.Funcs) {
		t.Fatalf("funcs = %d, want %d", len(q.Funcs), len(p.Funcs))
	}
	for name, fp := range p.Funcs {
		qf := q.Funcs[name]
		if qf == nil {
			t.Fatalf("func %s missing", name)
		}
		if qf.Checksum != fp.Checksum || qf.EntryCount != fp.EntryCount {
			t.Fatalf("func %s header mismatch", name)
		}
		if len(qf.BlockCounts) != len(fp.BlockCounts) {
			t.Fatalf("func %s blocks", name)
		}
		for i := range fp.BlockCounts {
			if qf.BlockCounts[i] != fp.BlockCounts[i] {
				t.Fatalf("func %s block %d", name, i)
			}
		}
		if len(qf.EdgeCounts) != len(fp.EdgeCounts) {
			t.Fatalf("func %s edges", name)
		}
		for k, v := range fp.EdgeCounts {
			if qf.EdgeCounts[k] != v {
				t.Fatalf("func %s edge %v", name, k)
			}
		}
		for pc, targets := range fp.CallTargets {
			for tn, v := range targets {
				if qf.CallTargets[pc][tn] != v {
					t.Fatalf("func %s call target", name)
				}
			}
		}
		for pc, obs := range fp.TypeObs {
			for k, v := range obs {
				if qf.TypeObs[pc][k] != v {
					t.Fatalf("func %s types", name)
				}
			}
		}
	}
	if len(q.Props) != len(p.Props) {
		t.Fatal("props")
	}
	if q.CallPairs[CallPair{"work", "tally"}] != 110 {
		t.Fatal("call pairs")
	}
	if len(p.PropPairs) == 0 {
		t.Fatal("collector recorded no property affinities")
	}
	if len(q.PropPairs) != len(p.PropPairs) {
		t.Fatalf("prop pairs lost in round trip: %d vs %d",
			len(q.PropPairs), len(p.PropPairs))
	}
	for k, v := range p.PropPairs {
		if q.PropPairs[k] != v {
			t.Fatalf("prop pair %v mismatch", k)
		}
	}
	if len(q.FuncOrder) != 2 || q.FuncOrder[0] != "tally" {
		t.Fatalf("func order = %v", q.FuncOrder)
	}
	vc := q.Funcs["work"].VasmCounts
	if len(vc) != 3 || vc[2] != 15 {
		t.Fatalf("vasm counts = %v", vc)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	col, _ := profiledRun(t, 30)
	p := col.Snapshot(Meta{})
	a := p.Encode()
	b := p.Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	col, _ := profiledRun(t, 20)
	p := col.Snapshot(Meta{})
	good := p.Encode()

	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(good); n += 7 {
		if _, err := Decode(good[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	// Bit flips through the body must be caught by the CRC.
	for i := 0; i < len(good); i += 11 {
		bad := append([]byte{}, good...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	// Wrong magic and version.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte{}, good...)
	bad[5] = 99
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	// Trailing garbage after the CRC word: the checksum does not cover
	// it, so the strict framing check must reject it as corruption.
	for _, tail := range [][]byte{{0}, {0xff}, {1, 2, 3, 4, 5, 6, 7, 8}} {
		bad = append(append([]byte{}, good...), tail...)
		_, err := Decode(bad)
		if err == nil {
			t.Fatalf("%d trailing bytes accepted", len(tail))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
		}
	}
	// A self-framed package followed by a second copy must not decode
	// as the first (concatenation is not a valid package).
	if _, err := Decode(append(append([]byte{}, good...), good...)); err == nil {
		t.Fatal("concatenated packages accepted")
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestPropDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, err := Decode(data)
		_ = err
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeInto(t *testing.T) {
	col1, _ := profiledRun(t, 50)
	col2, _ := profiledRun(t, 30)
	p1 := col1.Snapshot(Meta{})
	p2 := col2.Snapshot(Meta{})
	merged := NewProfile()
	p1.MergeInto(merged)
	p2.MergeInto(merged)
	if merged.Funcs["tally"].EntryCount != p1.Funcs["tally"].EntryCount+p2.Funcs["tally"].EntryCount {
		t.Fatal("entry counts not summed")
	}
	if merged.Meta.RequestCount != 2 {
		t.Fatalf("requests = %d", merged.Meta.RequestCount)
	}
	if len(merged.Units) != 1 {
		t.Fatalf("units = %v", merged.Units)
	}
}

func TestChecksumDetectsCodeChange(t *testing.T) {
	prog1, err := hackc.CompileSources(
		map[string]string{"m.mh": `fun f(x) { return x + 1; }`}, []string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := hackc.CompileSources(
		map[string]string{"m.mh": `fun f(x) { return x + 2; }`}, []string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := prog1.FuncByName("f")
	f2, _ := prog2.FuncByName("f")
	if FuncChecksum(f1) == FuncChecksum(f2) {
		t.Fatal("checksum must change with code")
	}
	if FuncChecksum(f1) != FuncChecksum(f1) {
		t.Fatal("checksum must be stable")
	}
}

func TestSectionSizes(t *testing.T) {
	col, _ := profiledRun(t, 50)
	p := col.Snapshot(Meta{})
	p.FuncOrder = []string{"work", "tally"}
	p.Funcs["work"].VasmCounts = []uint64{1, 2, 3, 4}
	p.CallPairs[CallPair{"work", "tally"}] = 50
	s := p.Sections()
	if s.Total != len(p.Encode()) {
		t.Fatalf("total = %d, want %d", s.Total, len(p.Encode()))
	}
	if s.TierOneProfile <= 0 {
		t.Fatalf("tier-1 section = %d", s.TierOneProfile)
	}
	if s.PreloadList <= 0 || s.OptimizedProfile <= 0 || s.Intermediate <= 0 {
		t.Fatalf("sections = %+v", s)
	}
	// Tier-1 counters dominate this package.
	if s.TierOneProfile < s.Intermediate {
		t.Fatalf("unexpected dominance: %+v", s)
	}
}

// Property: arbitrary well-formed profiles survive an encode/decode
// round trip exactly.
func TestPropRandomProfileRoundTrip(t *testing.T) {
	f := func(seed int64, nf, nu uint8) bool {
		rng := seed
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return uint64(rng)
		}
		str := func() string {
			n := int(next()%12) + 1
			b := make([]byte, n)
			for i := range b {
				b[i] = byte('a' + next()%26)
			}
			return string(b)
		}
		p := NewProfile()
		p.Meta = Meta{
			Region: int32(next() % 16), Bucket: int32(next() % 10),
			SeederID: int32(next() % 1000), Revision: int64(next() % 1_000_000),
			RequestCount: int64(next() % 100_000),
		}
		for i := 0; i < int(nu%6); i++ {
			p.Units = append(p.Units, str())
		}
		for i := 0; i < int(nf%8); i++ {
			fp := &FuncProfile{
				Checksum:    next(),
				EntryCount:  next() % 1_000_000,
				EdgeCounts:  map[EdgeKey]uint64{},
				CallTargets: map[int32]map[string]uint64{},
				TypeObs:     map[int32]map[uint16]uint64{},
			}
			for j := 0; j < int(next()%6); j++ {
				fp.BlockCounts = append(fp.BlockCounts, next()%1000)
			}
			for j := 0; j < int(next()%4); j++ {
				fp.EdgeCounts[EdgeKey{Src: int32(next() % 8), Dst: int32(next() % 8)}] = next() % 500
			}
			for j := 0; j < int(next()%3); j++ {
				fp.CallTargets[int32(next()%32)] = map[string]uint64{str(): next() % 99}
			}
			for j := 0; j < int(next()%3); j++ {
				fp.TypeObs[int32(next()%32)] = map[uint16]uint64{uint16(next() % 0x700): next() % 99}
			}
			if next()%2 == 0 {
				for j := 0; j < int(next()%5); j++ {
					fp.VasmCounts = append(fp.VasmCounts, next()%1000)
				}
			}
			p.Funcs[str()] = fp
		}
		for i := 0; i < int(next()%5); i++ {
			p.Props[str()] = next() % 10000
		}
		for i := 0; i < int(next()%4); i++ {
			p.PropPairs[MakePropPair(str(), str())] = next() % 10000
		}
		for i := 0; i < int(next()%4); i++ {
			p.CallPairs[CallPair{Caller: str(), Callee: str()}] = next() % 10000
		}
		for i := 0; i < int(next()%4); i++ {
			p.FuncOrder = append(p.FuncOrder, str())
		}

		q, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		// Re-encoding the decoded profile must be byte-identical
		// (deterministic encoding implies this checks deep equality).
		return bytes.Equal(p.Encode(), q.Encode())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
