package prof

import (
	"sort"

	"jumpstart/internal/bytecode"
)

// RemapStats reports how a cross-release remap went. The hit rate is
// the fraction of profiled functions whose data survived onto the new
// revision (exactly or fuzzily).
type RemapStats struct {
	// Exact counts functions matched by identical body fingerprint
	// under the same name — including functions whose raw checksum
	// changed only because literal-pool indices or function ids
	// shifted in the relink.
	Exact int
	// Renamed counts functions recovered by body fingerprint under a
	// *new* name (renamed with an identical body).
	Renamed int
	// Fuzzy counts functions matched by name + arity + CFG shape:
	// constants changed, control flow did not, so block and edge
	// counters still line up.
	Fuzzy int
	// Ambiguous counts functions dropped because two or more new
	// functions in the target shared the same body fingerprint — the
	// rename target cannot be decided, so the profile must not guess.
	Ambiguous int
	// Dropped counts functions whose profile could not be carried over
	// (body restructured, or the function was deleted).
	Dropped int
}

// Matched is the number of functions whose profile survived.
func (s RemapStats) Matched() int { return s.Exact + s.Renamed + s.Fuzzy }

// Total is the number of profiled functions considered.
func (s RemapStats) Total() int { return s.Matched() + s.Ambiguous + s.Dropped }

// HitRate is Matched/Total in [0,1]; 1.0 for an empty profile (there
// was nothing to lose).
func (s RemapStats) HitRate() float64 {
	if s.Total() == 0 {
		return 1
	}
	return float64(s.Matched()) / float64(s.Total())
}

// Remap translates a profile collected against program `from`
// (revision N) onto program `to` (revision N+1), returning a new
// profile stamped with newRevision. The input is not mutated.
//
// Per-function cascade, mirroring what HHVM's jumpstart merge would
// need under continuous deployment:
//
//  1. exact — the target has a same-named function with an identical
//     body fingerprint; everything carries over.
//  2. rename — exactly one function that is *new* in the target (its
//     name is absent from `from`) has an identical body fingerprint
//     and arity; the profile follows the rename. Two or more such
//     candidates are ambiguous and the profile drops instead.
//  3. fuzzy — the same-named target function kept its arity and CFG
//     shape (only constants changed); counters still line up
//     block-for-block and carry over.
//  4. drop — anything else (body restructured, function deleted).
//
// Matched functions get their Checksum rewritten to the target
// function's raw bytecode checksum: that is the gate the consumer JIT
// enforces (CompileOptimized rejects mismatches), and it is exactly
// the field that goes stale across a relink even for untouched code.
func Remap(p *Profile, from, to *bytecode.Program, newRevision int64) (*Profile, RemapStats) {
	var stats RemapStats

	// Index target functions that are new names (rename candidates) by
	// body fingerprint.
	newByBody := map[uint64][]*bytecode.Function{}
	for _, tf := range to.Funcs {
		if _, existed := from.FuncByName(tf.Name); !existed {
			newByBody[tf.Fingerprint.Body] = append(newByBody[tf.Fingerprint.Body], tf)
		}
	}

	out := NewProfile()
	out.Meta = p.Meta
	out.Meta.Revision = newRevision

	renames := map[string]string{} // old name -> new name
	survives := map[string]bool{}  // target-name set that made it

	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		fp := p.Funcs[name]
		sf, sok := from.FuncByName(name)
		if !sok {
			stats.Dropped++
			continue
		}
		tf, tok := to.FuncByName(name)
		switch {
		case tok && tf.Fingerprint.Body == sf.Fingerprint.Body:
			out.Funcs[name] = remapFunc(fp, tf, true)
			survives[name] = true
			stats.Exact++
		default:
			cands := candidates(newByBody[sf.Fingerprint.Body], sf.NumParams)
			switch {
			case len(cands) == 1:
				nf := cands[0]
				out.Funcs[nf.Name] = remapFunc(fp, nf, true)
				renames[name] = nf.Name
				survives[nf.Name] = true
				stats.Renamed++
			case len(cands) > 1:
				stats.Ambiguous++
			case tok && tf.NumParams == sf.NumParams &&
				tf.Fingerprint.Shape == sf.Fingerprint.Shape:
				out.Funcs[name] = remapFunc(fp, tf, false)
				survives[name] = true
				stats.Fuzzy++
			default:
				stats.Dropped++
			}
		}
	}

	// Rewrite call-target callee names through the rename map so
	// devirtualization keeps pointing at the surviving symbol.
	for _, fp := range out.Funcs {
		for _, targets := range fp.CallTargets {
			for callee, n := range targets {
				if to, ok := renames[callee]; ok {
					delete(targets, callee)
					targets[to] += n
				}
			}
		}
	}

	// Units: preload list carries over for units the target still has.
	known := map[string]bool{}
	for _, u := range to.Units {
		known[u.Name] = true
	}
	for _, name := range p.Units {
		if known[name] {
			out.Units = append(out.Units, name)
		}
	}

	// Property counters: keyed "Class::prop", independent of layout
	// order; keep entries whose class still exists.
	for k, n := range p.Props {
		if propClassExists(k, to) {
			out.Props[k] = n
		}
	}
	for k, n := range p.PropPairs {
		if propClassExists(k.A, to) && propClassExists(k.B, to) {
			out.PropPairs[k] = n
		}
	}

	// Tier-2 call graph: follow renames, drop arcs to dead functions.
	for pair, n := range p.CallPairs {
		caller, callee := pair.Caller, pair.Callee
		if to, ok := renames[caller]; ok {
			caller = to
		}
		if to, ok := renames[callee]; ok {
			callee = to
		}
		if survives[caller] && survives[callee] {
			out.CallPairs[CallPair{Caller: caller, Callee: callee}] += n
		}
	}

	// Precomputed code-cache order: follow renames, keep survivors.
	for _, name := range p.FuncOrder {
		if to, ok := renames[name]; ok {
			name = to
		}
		if survives[name] {
			out.FuncOrder = append(out.FuncOrder, name)
		}
	}

	return out, stats
}

// candidates filters rename candidates by arity.
func candidates(fns []*bytecode.Function, numParams int) []*bytecode.Function {
	var out []*bytecode.Function
	for _, fn := range fns {
		if fn.NumParams == numParams {
			out = append(out, fn)
		}
	}
	return out
}

// remapFunc deep-copies a function profile onto the target function,
// restamping the checksum the consumer JIT checks. The fuzzy path only
// fires when the CFG shape is identical, so BlockCounts and EdgeCounts
// keep their meaning; VasmCounts describe the *optimized* translation,
// which re-lowering may shape differently when constants changed, so
// they only survive an exact body match.
func remapFunc(fp *FuncProfile, target *bytecode.Function, exact bool) *FuncProfile {
	out := &FuncProfile{
		Checksum:    FuncChecksum(target),
		EntryCount:  fp.EntryCount,
		BlockCounts: append([]uint64(nil), fp.BlockCounts...),
		EdgeCounts:  make(map[EdgeKey]uint64, len(fp.EdgeCounts)),
		CallTargets: make(map[int32]map[string]uint64, len(fp.CallTargets)),
		TypeObs:     make(map[int32]map[uint16]uint64, len(fp.TypeObs)),
	}
	if exact {
		out.VasmCounts = append([]uint64(nil), fp.VasmCounts...)
	}
	for k, n := range fp.EdgeCounts {
		out.EdgeCounts[k] = n
	}
	for pc, targets := range fp.CallTargets {
		m := make(map[string]uint64, len(targets))
		for name, n := range targets {
			m[name] = n
		}
		out.CallTargets[pc] = m
	}
	for pc, obs := range fp.TypeObs {
		m := make(map[uint16]uint64, len(obs))
		for k, n := range obs {
			m[k] = n
		}
		out.TypeObs[pc] = m
	}
	return out
}

// propClassExists reports whether the "Class::prop" key's class is
// still defined in the target program.
func propClassExists(key string, p *bytecode.Program) bool {
	for i := 0; i < len(key)-1; i++ {
		if key[i] == ':' && key[i+1] == ':' {
			_, ok := p.ClassByName(key[:i])
			return ok
		}
	}
	return false
}
