package prof

import (
	"jumpstart/internal/bytecode"
	"jumpstart/internal/interp"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

// Collector accumulates tier-1 profile data. It implements
// interp.Tracer and is installed while the server runs profiling
// translations (the "JIT profile code / collect profile data" phases of
// Figure 3). Snapshot converts the raw counters into a Profile.
//
// The tracer callbacks are the hottest host-side path of the whole
// simulation (every block, call site and dynamic op of every profiled
// request lands here), so the counters are flat slices indexed by
// FuncID with packed integer keys, not nested maps; Snapshot unpacks
// them into the Profile's map shape once, at the end.
type Collector struct {
	prog *bytecode.Program

	entry  []uint64            // by FuncID
	blocks [][]uint64          // by FuncID, sized len(fn.Blocks()) on first touch
	edges  [][]edgeSite        // by FuncID, then src block
	calls  []map[uint64]uint64 // by FuncID; key = pc<<32 | callee FuncID
	types  [][]typeSite        // by FuncID, then pc
	props  map[string]uint64
	pairs  map[PropPair]uint64

	// propKeys/propDecls cache the declaring-class "K::P" string and
	// the declaring class name per (class, flat slot), so OnPropAccess
	// never rebuilds them.
	propKeys  [][]string // by ClassID, then flat slot index
	propDecls [][]string // by ClassID, then flat slot index

	unitOrder []string
	unitSeen  map[string]bool
	fnSeen    []bool // by FuncID: unit membership already recorded

	// shadow stack tracking the last executed block per activation,
	// for edge attribution.
	stack []frameState

	requests int64
}

// edgeSite counts CFG edges leaving one source block. Almost every
// block transfers to a single successor in practice, so the first
// observed destination gets an inline counter and only polymorphic
// sources fall back to a map.
type edgeSite struct {
	dst   int32
	count uint64
	more  map[int32]uint64
}

// typeSite counts operand-kind observations at one pc. The inline slot
// covers the (overwhelmingly common) monomorphic case; `more` holds any
// additional kind pairs.
type typeSite struct {
	pair  uint16
	count uint64
	more  map[uint16]uint64
}

type frameState struct {
	fn        *bytecode.Function
	lastBlock int32
	// lastPropClass/lastPropKey remember the previous property access
	// in this activation, for affinity (co-access) counting.
	lastPropClass string
	lastPropKey   string
}

var _ interp.Tracer = (*Collector)(nil)

// NewCollector returns an empty collector for prog.
func NewCollector(prog *bytecode.Program) *Collector {
	n := len(prog.Funcs)
	return &Collector{
		prog:      prog,
		entry:     make([]uint64, n),
		blocks:    make([][]uint64, n),
		edges:     make([][]edgeSite, n),
		calls:     make([]map[uint64]uint64, n),
		types:     make([][]typeSite, n),
		props:     make(map[string]uint64),
		pairs:     make(map[PropPair]uint64),
		propKeys:  make([][]string, len(prog.Classes)),
		propDecls: make([][]string, len(prog.Classes)),
		unitSeen:  make(map[string]bool),
		fnSeen:    make([]bool, n),
	}
}

// BeginRequest marks the start of a profiled request (for coverage
// accounting).
func (c *Collector) BeginRequest() { c.requests++ }

// OnEnter implements interp.Tracer.
func (c *Collector) OnEnter(fn *bytecode.Function) {
	id := fn.ID
	c.entry[id]++
	if !c.fnSeen[id] {
		c.fnSeen[id] = true
		if fn.Unit != nil && !c.unitSeen[fn.Unit.Name] {
			c.unitSeen[fn.Unit.Name] = true
			c.unitOrder = append(c.unitOrder, fn.Unit.Name)
		}
	}
	c.stack = append(c.stack, frameState{fn: fn, lastBlock: -1})
}

// OnReturn implements interp.Tracer.
func (c *Collector) OnReturn(fn *bytecode.Function) {
	if n := len(c.stack); n > 0 {
		c.stack = c.stack[:n-1]
	}
}

// OnBlock implements interp.Tracer.
func (c *Collector) OnBlock(fn *bytecode.Function, block int) {
	id := fn.ID
	bc := c.blocks[id]
	if bc == nil {
		bc = make([]uint64, len(fn.Blocks()))
		c.blocks[id] = bc
	}
	if block < len(bc) {
		bc[block]++
	}
	if n := len(c.stack); n > 0 && c.stack[n-1].fn == fn {
		top := &c.stack[n-1]
		if src := top.lastBlock; src >= 0 && int(src) < len(bc) {
			es := c.edges[id]
			if es == nil {
				es = make([]edgeSite, len(bc))
				c.edges[id] = es
			}
			e := &es[src]
			switch {
			case e.count == 0 || e.dst == int32(block):
				e.dst = int32(block)
				e.count++
			default:
				if e.more == nil {
					e.more = make(map[int32]uint64)
				}
				e.more[int32(block)]++
			}
		}
		top.lastBlock = int32(block)
	}
}

// OnCallSite implements interp.Tracer.
func (c *Collector) OnCallSite(fn *bytecode.Function, pc int, callee *bytecode.Function) {
	sites := c.calls[fn.ID]
	if sites == nil {
		sites = make(map[uint64]uint64)
		c.calls[fn.ID] = sites
	}
	sites[uint64(uint32(pc))<<32|uint64(uint32(callee.ID))]++
}

// OnNewObj implements interp.Tracer.
func (c *Collector) OnNewObj(obj *object.Object) {}

// OnPropAccess implements interp.Tracer. Counts are keyed by the class
// that *declares* the property (inherited accesses heat the declaring
// layer), matching the hash table of "K::P" keys in Section V-C.
func (c *Collector) OnPropAccess(obj *object.Object, slot int, write bool) {
	rc := obj.Class()
	cid := rc.Meta.ID
	keys := c.propKeys[cid]
	if keys == nil {
		keys = make([]string, len(rc.DeclaredProps()))
		c.propKeys[cid] = keys
		c.propDecls[cid] = make([]string, len(rc.DeclaredProps()))
	}
	decl := rc.DeclIndex(slot)
	key := keys[decl]
	cls := c.propDecls[cid][decl]
	if key == "" {
		cls = c.declaringClass(rc.Meta, decl)
		key = cls + "::" + rc.DeclaredProps()[decl].Name
		keys[decl] = key
		c.propDecls[cid][decl] = cls
	}
	c.props[key]++
	// Affinity: consecutive accesses to two different properties of
	// the same class within one activation.
	if n := len(c.stack); n > 0 {
		top := &c.stack[n-1]
		if top.lastPropClass == cls && top.lastPropKey != key && top.lastPropKey != "" {
			c.pairs[MakePropPair(top.lastPropKey, key)]++
		}
		top.lastPropClass = cls
		top.lastPropKey = key
	}
}

// declaringClass finds the class in cls's ancestry that declared the
// declIdx-th flattened property (flat layout is root layer first).
func (c *Collector) declaringClass(cls *bytecode.Class, declIdx int) string {
	var chain []*bytecode.Class
	for cur := cls; ; {
		chain = append(chain, cur)
		if cur.Parent == bytecode.NoClass {
			break
		}
		cur = c.prog.Classes[cur.Parent]
	}
	// chain is leaf-first; walk root-first.
	idx := declIdx
	for i := len(chain) - 1; i >= 0; i-- {
		k := chain[i]
		if idx < len(k.Props) {
			return k.Name
		}
		idx -= len(k.Props)
	}
	return cls.Name
}

// OnOpTypes implements interp.Tracer.
func (c *Collector) OnOpTypes(fn *bytecode.Function, pc int, a, b value.Kind) {
	sites := c.types[fn.ID]
	if sites == nil {
		sites = make([]typeSite, len(fn.Code))
		c.types[fn.ID] = sites
	}
	if pc < 0 || pc >= len(sites) {
		return
	}
	pair := uint16(a)<<8 | uint16(b)
	s := &sites[pc]
	switch {
	case s.count == 0 || s.pair == pair:
		s.pair = pair
		s.count++
	default:
		if s.more == nil {
			s.more = make(map[uint16]uint64)
		}
		s.more[pair]++
	}
}

// Snapshot converts the collected counters into a Profile for meta.
func (c *Collector) Snapshot(meta Meta) *Profile {
	p := NewProfile()
	meta.RequestCount = c.requests
	p.Meta = meta
	p.Units = append([]string{}, c.unitOrder...)
	for id, cnt := range c.entry {
		if cnt == 0 {
			continue
		}
		fn := c.prog.Funcs[id]
		fp := &FuncProfile{
			Checksum:    FuncChecksum(fn),
			EntryCount:  cnt,
			EdgeCounts:  map[EdgeKey]uint64{},
			CallTargets: map[int32]map[string]uint64{},
			TypeObs:     map[int32]map[uint16]uint64{},
		}
		if bc := c.blocks[id]; bc != nil {
			fp.BlockCounts = append([]uint64{}, bc...)
		} else {
			fp.BlockCounts = make([]uint64, len(fn.Blocks()))
		}
		for src, e := range c.edges[id] {
			if e.count > 0 {
				fp.EdgeCounts[EdgeKey{Src: int32(src), Dst: e.dst}] = e.count
			}
			for dst, n := range e.more {
				fp.EdgeCounts[EdgeKey{Src: int32(src), Dst: dst}] += n
			}
		}
		for key, n := range c.calls[id] {
			pc := int32(key >> 32)
			callee := c.prog.Funcs[bytecode.FuncID(uint32(key))]
			m := fp.CallTargets[pc]
			if m == nil {
				m = make(map[string]uint64)
				fp.CallTargets[pc] = m
			}
			m[callee.Name] += n
		}
		for pc, s := range c.types[id] {
			if s.count == 0 && s.more == nil {
				continue
			}
			m := make(map[uint16]uint64, 1+len(s.more))
			if s.count > 0 {
				m[s.pair] = s.count
			}
			for pair, n := range s.more {
				m[pair] += n
			}
			fp.TypeObs[int32(pc)] = m
		}
		p.Funcs[fn.Name] = fp
	}
	for k, n := range c.props {
		p.Props[k] = n
	}
	for k, n := range c.pairs {
		p.PropPairs[k] = n
	}
	return p
}
