package prof

import (
	"jumpstart/internal/bytecode"
	"jumpstart/internal/interp"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

// Collector accumulates tier-1 profile data. It implements
// interp.Tracer and is installed while the server runs profiling
// translations (the "JIT profile code / collect profile data" phases of
// Figure 3). Snapshot converts the raw counters into a Profile.
type Collector struct {
	prog *bytecode.Program

	entry  map[bytecode.FuncID]uint64
	blocks map[bytecode.FuncID][]uint64
	edges  map[bytecode.FuncID]map[EdgeKey]uint64
	calls  map[bytecode.FuncID]map[int32]map[string]uint64
	types  map[bytecode.FuncID]map[int32]map[uint16]uint64
	props  map[string]uint64
	pairs  map[PropPair]uint64

	unitOrder []string
	unitSeen  map[string]bool

	// shadow stack tracking the last executed block per activation,
	// for edge attribution.
	stack []frameState

	requests int64
}

type frameState struct {
	fn        *bytecode.Function
	lastBlock int32
	// lastPropClass/lastPropKey remember the previous property access
	// in this activation, for affinity (co-access) counting.
	lastPropClass string
	lastPropKey   string
}

var _ interp.Tracer = (*Collector)(nil)

// NewCollector returns an empty collector for prog.
func NewCollector(prog *bytecode.Program) *Collector {
	return &Collector{
		prog:     prog,
		entry:    make(map[bytecode.FuncID]uint64),
		blocks:   make(map[bytecode.FuncID][]uint64),
		edges:    make(map[bytecode.FuncID]map[EdgeKey]uint64),
		calls:    make(map[bytecode.FuncID]map[int32]map[string]uint64),
		types:    make(map[bytecode.FuncID]map[int32]map[uint16]uint64),
		props:    make(map[string]uint64),
		pairs:    make(map[PropPair]uint64),
		unitSeen: make(map[string]bool),
	}
}

// BeginRequest marks the start of a profiled request (for coverage
// accounting).
func (c *Collector) BeginRequest() { c.requests++ }

// OnEnter implements interp.Tracer.
func (c *Collector) OnEnter(fn *bytecode.Function) {
	c.entry[fn.ID]++
	if fn.Unit != nil && !c.unitSeen[fn.Unit.Name] {
		c.unitSeen[fn.Unit.Name] = true
		c.unitOrder = append(c.unitOrder, fn.Unit.Name)
	}
	c.stack = append(c.stack, frameState{fn: fn, lastBlock: -1})
}

// OnReturn implements interp.Tracer.
func (c *Collector) OnReturn(fn *bytecode.Function) {
	if n := len(c.stack); n > 0 {
		c.stack = c.stack[:n-1]
	}
}

// OnBlock implements interp.Tracer.
func (c *Collector) OnBlock(fn *bytecode.Function, block int) {
	bc := c.blocks[fn.ID]
	if bc == nil {
		bc = make([]uint64, len(fn.Blocks()))
		c.blocks[fn.ID] = bc
	}
	if block < len(bc) {
		bc[block]++
	}
	if n := len(c.stack); n > 0 && c.stack[n-1].fn == fn {
		top := &c.stack[n-1]
		if top.lastBlock >= 0 {
			em := c.edges[fn.ID]
			if em == nil {
				em = make(map[EdgeKey]uint64)
				c.edges[fn.ID] = em
			}
			em[EdgeKey{Src: top.lastBlock, Dst: int32(block)}]++
		}
		top.lastBlock = int32(block)
	}
}

// OnCallSite implements interp.Tracer.
func (c *Collector) OnCallSite(fn *bytecode.Function, pc int, callee *bytecode.Function) {
	sites := c.calls[fn.ID]
	if sites == nil {
		sites = make(map[int32]map[string]uint64)
		c.calls[fn.ID] = sites
	}
	targets := sites[int32(pc)]
	if targets == nil {
		targets = make(map[string]uint64)
		sites[int32(pc)] = targets
	}
	targets[callee.Name]++
}

// OnNewObj implements interp.Tracer.
func (c *Collector) OnNewObj(obj *object.Object) {}

// OnPropAccess implements interp.Tracer. Counts are keyed by the class
// that *declares* the property (inherited accesses heat the declaring
// layer), matching the hash table of "K::P" keys in Section V-C.
func (c *Collector) OnPropAccess(obj *object.Object, slot int, write bool) {
	rc := obj.Class()
	decl := rc.DeclIndex(slot)
	name := rc.DeclaredProps()[decl].Name
	cls := c.declaringClass(rc.Meta, decl)
	key := cls + "::" + name
	c.props[key]++
	// Affinity: consecutive accesses to two different properties of
	// the same class within one activation.
	if n := len(c.stack); n > 0 {
		top := &c.stack[n-1]
		if top.lastPropClass == cls && top.lastPropKey != key && top.lastPropKey != "" {
			c.pairs[MakePropPair(top.lastPropKey, key)]++
		}
		top.lastPropClass = cls
		top.lastPropKey = key
	}
}

// declaringClass finds the class in cls's ancestry that declared the
// declIdx-th flattened property (flat layout is root layer first).
func (c *Collector) declaringClass(cls *bytecode.Class, declIdx int) string {
	var chain []*bytecode.Class
	for cur := cls; ; {
		chain = append(chain, cur)
		if cur.Parent == bytecode.NoClass {
			break
		}
		cur = c.prog.Classes[cur.Parent]
	}
	// chain is leaf-first; walk root-first.
	idx := declIdx
	for i := len(chain) - 1; i >= 0; i-- {
		k := chain[i]
		if idx < len(k.Props) {
			return k.Name
		}
		idx -= len(k.Props)
	}
	return cls.Name
}

// OnOpTypes implements interp.Tracer.
func (c *Collector) OnOpTypes(fn *bytecode.Function, pc int, a, b value.Kind) {
	sites := c.types[fn.ID]
	if sites == nil {
		sites = make(map[int32]map[uint16]uint64)
		c.types[fn.ID] = sites
	}
	obs := sites[int32(pc)]
	if obs == nil {
		obs = make(map[uint16]uint64)
		sites[int32(pc)] = obs
	}
	obs[uint16(a)<<8|uint16(b)]++
}

// Snapshot converts the collected counters into a Profile for meta.
func (c *Collector) Snapshot(meta Meta) *Profile {
	p := NewProfile()
	meta.RequestCount = c.requests
	p.Meta = meta
	p.Units = append([]string{}, c.unitOrder...)
	for id, cnt := range c.entry {
		fn := c.prog.Funcs[id]
		fp := &FuncProfile{
			Checksum:    FuncChecksum(fn),
			EntryCount:  cnt,
			EdgeCounts:  map[EdgeKey]uint64{},
			CallTargets: map[int32]map[string]uint64{},
			TypeObs:     map[int32]map[uint16]uint64{},
		}
		if bc, ok := c.blocks[id]; ok {
			fp.BlockCounts = append([]uint64{}, bc...)
		} else {
			fp.BlockCounts = make([]uint64, len(fn.Blocks()))
		}
		for k, n := range c.edges[id] {
			fp.EdgeCounts[k] = n
		}
		for pc, targets := range c.calls[id] {
			m := make(map[string]uint64, len(targets))
			for name, n := range targets {
				m[name] = n
			}
			fp.CallTargets[pc] = m
		}
		for pc, obs := range c.types[id] {
			m := make(map[uint16]uint64, len(obs))
			for k, n := range obs {
				m[k] = n
			}
			fp.TypeObs[pc] = m
		}
		p.Funcs[fn.Name] = fp
	}
	for k, n := range c.props {
		p.Props[k] = n
	}
	for k, n := range c.pairs {
		p.PropPairs[k] = n
	}
	return p
}
