package prof

import (
	"errors"
	"fmt"
	"sort"
)

// AggregateStats reports how a multi-seeder consensus merge went.
type AggregateStats struct {
	// Seeders is how many input profiles were merged.
	Seeders int
	// Funcs is how many functions the consensus profile carries.
	Funcs int
	// ChecksumConflicts counts functions where seeders disagreed on the
	// bytecode checksum; the majority-weight checksum won and the other
	// seeders' data for that function was discarded.
	ChecksumConflicts int
	// TypeSitesKept / TypeSitesDropped count type-observation sites
	// that survived the per-site vote vs sites where no strict majority
	// of observers agreed on a dominant kind pair (those drop to
	// generic: the consumer JIT emits unspecialized code there).
	TypeSitesKept    int
	TypeSitesDropped int
	// VasmDropped counts functions whose optimized-translation counters
	// were discarded because the contributing seeders disagreed on the
	// translation's block count.
	VasmDropped int
}

// ErrAggregateRevisions rejects mixing profiles collected against
// different revisions: the consensus package carries one revision
// stamp, and the remap cascade must stay applicable to it.
var ErrAggregateRevisions = errors.New("prof: aggregate inputs span revisions")

// scaleCount computes n·num/den in integer arithmetic without
// overflowing for the count magnitudes profiles carry (quotient and
// remainder scaled separately).
func scaleCount(n, num, den uint64) uint64 {
	if den == 0 {
		return n
	}
	q, r := n/den, n%den
	return q*num + r*num/den
}

// Aggregate merges N seeders' profiles into one consensus profile
// (the multi-seeder package the paper's §VI-A2 randomized-selection
// design stops short of):
//
//   - counters are weight-normalized before the union, so every seeder
//     gets an equal vote regardless of how much traffic it saw: each
//     count is scaled by maxRequests/ownRequests;
//   - functions whose checksum the seeders disagree on resolve by
//     majority weighted entry count (ties to the lower checksum); the
//     losing seeders' data for that function is discarded;
//   - call-graph edges (tier-1 call targets and the tier-2 CallPairs
//     graph) merge by weighted sum;
//   - type-observation sites take a per-site vote: each seeder's
//     dominant kind pair is its ballot, and only a strict majority of
//     the site's observers keeps the site (merged, weighted); ties and
//     split votes drop the site to generic;
//   - Vasm counters survive only when every contributing seeder agrees
//     on the optimized translation's shape.
//
// All inputs must carry the same Meta.Revision; the output preserves
// it, so the cross-release remap cascade applies to consensus packages
// exactly as it does to single-seeder ones. The output's SeederID is
// -1, marking it as consensus. The merge is deterministic in the input
// order (ties between equally heavy profiles resolve to the earlier
// input).
func Aggregate(profiles []*Profile) (*Profile, AggregateStats, error) {
	stats := AggregateStats{Seeders: len(profiles)}
	if len(profiles) == 0 {
		return nil, stats, errors.New("prof: aggregate of zero profiles")
	}
	rev := profiles[0].Meta.Revision
	var norm uint64 = 1
	for _, p := range profiles {
		if p.Meta.Revision != rev {
			return nil, stats, fmt.Errorf("%w: %d vs %d", ErrAggregateRevisions, rev, p.Meta.Revision)
		}
		if uint64(p.Meta.RequestCount) > norm {
			norm = uint64(p.Meta.RequestCount)
		}
	}
	// weight[i] scales profile i's counts to norm requests; a profile
	// with no request count keeps its counts as-is.
	weight := make([][2]uint64, len(profiles)) // {num, den}
	for i, p := range profiles {
		if p.Meta.RequestCount > 0 {
			weight[i] = [2]uint64{norm, uint64(p.Meta.RequestCount)}
		} else {
			weight[i] = [2]uint64{1, 1}
		}
	}
	scale := func(i int, n uint64) uint64 { return scaleCount(n, weight[i][0], weight[i][1]) }

	out := NewProfile()
	out.Meta = Meta{
		Region:   profiles[0].Meta.Region,
		Bucket:   profiles[0].Meta.Bucket,
		SeederID: -1,
		Revision: rev,
	}
	for _, p := range profiles {
		out.Meta.RequestCount += p.Meta.RequestCount
	}

	// heaviest orders profile indices by descending request weight
	// (ties to input order); Units and FuncOrder concatenate in this
	// order so the best-fed seeder's first-touch ordering leads.
	heaviest := make([]int, len(profiles))
	for i := range heaviest {
		heaviest[i] = i
	}
	sort.SliceStable(heaviest, func(a, b int) bool {
		return profiles[heaviest[a]].Meta.RequestCount > profiles[heaviest[b]].Meta.RequestCount
	})
	seenUnit := map[string]bool{}
	for _, i := range heaviest {
		for _, u := range profiles[i].Units {
			if !seenUnit[u] {
				seenUnit[u] = true
				out.Units = append(out.Units, u)
			}
		}
	}
	seenFn := map[string]bool{}
	for _, i := range heaviest {
		for _, name := range profiles[i].FuncOrder {
			if !seenFn[name] {
				seenFn[name] = true
				out.FuncOrder = append(out.FuncOrder, name)
			}
		}
	}

	// Function merge. Names are walked sorted so conflict resolution
	// and stats are independent of map iteration order.
	names := map[string]bool{}
	for _, p := range profiles {
		for name := range p.Funcs {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		// Checksum vote: weighted entry count per checksum.
		type ballot struct {
			sum   uint64
			first int // earliest input holding this checksum
		}
		votes := map[uint64]*ballot{}
		for i, p := range profiles {
			fp, ok := p.Funcs[name]
			if !ok {
				continue
			}
			b := votes[fp.Checksum]
			if b == nil {
				b = &ballot{first: i}
				votes[fp.Checksum] = b
			}
			w := scale(i, fp.EntryCount)
			if w == 0 {
				w = 1 // a profiled function is never a zero-weight vote
			}
			b.sum += w
		}
		var winner uint64
		var best *ballot
		for sum, b := range votes {
			if best == nil || b.sum > best.sum || (b.sum == best.sum && sum < winner) {
				winner, best = sum, b
			}
		}
		if len(votes) > 1 {
			stats.ChecksumConflicts++
		}

		// Merge the winning-checksum contributors.
		var merged *FuncProfile
		var contributors []int
		for i, p := range profiles {
			fp, ok := p.Funcs[name]
			if !ok || fp.Checksum != winner {
				continue
			}
			if merged == nil {
				merged = &FuncProfile{
					Checksum:    winner,
					BlockCounts: make([]uint64, len(fp.BlockCounts)),
					EdgeCounts:  map[EdgeKey]uint64{},
					CallTargets: map[int32]map[string]uint64{},
					TypeObs:     map[int32]map[uint16]uint64{},
				}
			}
			if len(fp.BlockCounts) != len(merged.BlockCounts) {
				continue // same checksum, different shape: defensive skip
			}
			contributors = append(contributors, i)
			merged.EntryCount += scale(i, fp.EntryCount)
			for bi, n := range fp.BlockCounts {
				merged.BlockCounts[bi] += scale(i, n)
			}
			for k, n := range fp.EdgeCounts {
				merged.EdgeCounts[k] += scale(i, n)
			}
			for pc, targets := range fp.CallTargets {
				dt := merged.CallTargets[pc]
				if dt == nil {
					dt = map[string]uint64{}
					merged.CallTargets[pc] = dt
				}
				for callee, n := range targets {
					dt[callee] += scale(i, n)
				}
			}
		}
		if merged == nil {
			continue
		}
		stats.Funcs++

		// Vasm counters: unanimity on translation shape or nothing.
		vasmLen := -1
		vasmOK := true
		for _, i := range contributors {
			fp := profiles[i].Funcs[name]
			if vasmLen == -1 {
				vasmLen = len(fp.VasmCounts)
			} else if len(fp.VasmCounts) != vasmLen {
				vasmOK = false
			}
		}
		if vasmOK && vasmLen > 0 {
			merged.VasmCounts = make([]uint64, vasmLen)
			for _, i := range contributors {
				for vi, n := range profiles[i].Funcs[name].VasmCounts {
					merged.VasmCounts[vi] += scale(i, n)
				}
			}
		} else if !vasmOK {
			stats.VasmDropped++
		}

		// Type-site vote, per pc over the contributing seeders.
		pcs := map[int32]bool{}
		for _, i := range contributors {
			for pc := range profiles[i].Funcs[name].TypeObs {
				pcs[pc] = true
			}
		}
		pcList := make([]int32, 0, len(pcs))
		for pc := range pcs {
			pcList = append(pcList, pc)
		}
		sort.Slice(pcList, func(a, b int) bool { return pcList[a] < pcList[b] })
		for _, pc := range pcList {
			tally := map[uint16]int{}
			observers := 0
			for _, i := range contributors {
				obs := profiles[i].Funcs[name].TypeObs[pc]
				if len(obs) == 0 {
					continue
				}
				observers++
				tally[dominantKind(obs)]++
			}
			bestVotes := 0
			for _, v := range tally {
				if v > bestVotes {
					bestVotes = v
				}
			}
			if bestVotes*2 <= observers {
				// Tie or split vote: the site drops to generic rather
				// than letting one seeder's skew specialize everyone.
				stats.TypeSitesDropped++
				continue
			}
			stats.TypeSitesKept++
			dobs := map[uint16]uint64{}
			for _, i := range contributors {
				for k, n := range profiles[i].Funcs[name].TypeObs[pc] {
					dobs[k] += scale(i, n)
				}
			}
			merged.TypeObs[pc] = dobs
		}
		out.Funcs[name] = merged
	}

	// Property counters and the tier-2 call graph: weighted union.
	for i, p := range profiles {
		for k, n := range p.Props {
			out.Props[k] += scale(i, n)
		}
		for k, n := range p.PropPairs {
			out.PropPairs[k] += scale(i, n)
		}
		for k, n := range p.CallPairs {
			out.CallPairs[k] += scale(i, n)
		}
	}
	return out, stats, nil
}

// dominantKind returns a site's dominant kind pair (ties to the lower
// key) — one seeder's ballot in the type-site vote.
func dominantKind(obs map[uint16]uint64) uint16 {
	var bestKey uint16
	var best uint64
	first := true
	for k, n := range obs {
		if n > best || (n == best && (first || k < bestKey)) {
			best, bestKey, first = n, k, false
		}
	}
	return bestKey
}
