// Package prof implements JIT profile data: the counters collected by
// the VM's profiling tier, the extra counters collected by instrumented
// optimized code on Jump-Start seeders, and the serialized profile-data
// package that seeders publish and consumers load (paper Section IV-B).
//
// The package contents mirror the paper's four categories:
//
//  1. repo global data to preload (unit list, in first-touch order);
//  2. JIT profile data (block/edge counters, call-target profiles,
//     type feedback) keyed by function name + bytecode checksum;
//  3. profile data for the optimized code (Vasm block counters and the
//     accurate tier-2 caller/callee graph of Sections V-A/V-B, plus
//     property-access counters for V-C);
//  4. intermediate JIT results (the precomputed function order).
package prof

import (
	"sort"

	"jumpstart/internal/bytecode"
)

// EdgeKey identifies a bytecode-block CFG edge within one function.
type EdgeKey struct {
	Src, Dst int32
}

// CallPair is a caller→callee pair in the tier-2 call graph.
type CallPair struct {
	Caller, Callee string
}

// PropPair is an unordered pair of property keys ("Class::prop") that
// were accessed adjacently. A < B canonically. Pair affinities drive
// the affinity-based object layout — the extension the paper's
// Section V-C leaves as future work ("using the affinity of the
// fields/properties to decide on their order").
type PropPair struct {
	A, B string
}

// MakePropPair canonicalizes the pair ordering.
func MakePropPair(x, y string) PropPair {
	if x > y {
		x, y = y, x
	}
	return PropPair{A: x, B: y}
}

// FuncProfile aggregates all profile data for one function.
type FuncProfile struct {
	// Checksum fingerprints the function bytecode the profile was
	// collected against; consumers reject mismatches (stale profiles
	// after a code push).
	Checksum uint64
	// EntryCount is how many activations were profiled.
	EntryCount uint64
	// BlockCounts holds per-bytecode-basic-block execution counts.
	BlockCounts []uint64
	// EdgeCounts holds taken-edge counts between bytecode blocks.
	EdgeCounts map[EdgeKey]uint64
	// CallTargets maps a call-site pc to callee-name → count. This is
	// the "call target profile" driving guarded devirtualization and
	// profile-guided inlining.
	CallTargets map[int32]map[string]uint64
	// TypeObs maps an instruction pc to observed operand-kind pairs
	// (a<<8|b) → count. Monomorphic sites enable type specialization.
	TypeObs map[int32]map[uint16]uint64
	// VasmCounts holds the per-Vasm-block execution counts collected by
	// the instrumented optimized code on seeders (Section V-A). Its
	// length matches the tier-2 translation's block count; nil when the
	// optimization is disabled.
	VasmCounts []uint64
}

// Profile is a complete profile-data package (in-memory form).
type Profile struct {
	// Meta describes provenance and health of the package.
	Meta Meta
	// Units lists unit names in first-touch order: the preload list
	// (category 1).
	Units []string
	// Funcs holds per-function profiles keyed by qualified name.
	Funcs map[string]*FuncProfile
	// Props holds property-access counts keyed "Class::prop" (V-C).
	Props map[string]uint64
	// PropPairs holds adjacency (affinity) counts between properties
	// of the same class (the V-C future-work extension).
	PropPairs map[PropPair]uint64
	// CallPairs is the accurate tier-2 call graph (V-B). Unlike the
	// tier-1 call-target profiles, these are collected from optimized
	// code with inlining applied.
	CallPairs map[CallPair]uint64
	// FuncOrder is the precomputed code-cache placement order
	// (category 4), computed on the seeder so consumers skip the
	// C3 run.
	FuncOrder []string
}

// Meta is the package header's descriptive fields.
type Meta struct {
	// Region and Bucket identify the data-center region and semantic
	// bucket the profile was collected in.
	Region, Bucket int32
	// SeederID identifies the collecting server.
	SeederID int32
	// Revision is the website revision the profile matches.
	Revision int64
	// RequestCount is how many requests fed the profile.
	RequestCount int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		Funcs:     make(map[string]*FuncProfile),
		Props:     make(map[string]uint64),
		PropPairs: make(map[PropPair]uint64),
		CallPairs: make(map[CallPair]uint64),
	}
}

// FuncChecksum fingerprints a function's bytecode (FNV-1a over the
// instruction stream).
func FuncChecksum(fn *bytecode.Function) uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(fn.NumParams))
	mix(uint64(fn.NumLocals))
	for _, in := range fn.Code {
		mix(uint64(in.Op))
		mix(uint64(uint32(in.A)))
		mix(uint64(uint32(in.B)))
	}
	return h
}

// Coverage summarizes how much of the program a profile covers; the
// seeder checks these against thresholds before publishing (paper
// Section VI-B).
type Coverage struct {
	Funcs        int    // functions with any profile data
	Blocks       int    // blocks with nonzero counts
	TotalCount   uint64 // sum of all block counts
	RequestCount int64
}

// Coverage computes the profile's coverage summary.
func (p *Profile) Coverage() Coverage {
	c := Coverage{RequestCount: p.Meta.RequestCount}
	for _, fp := range p.Funcs {
		c.Funcs++
		for _, n := range fp.BlockCounts {
			if n > 0 {
				c.Blocks++
				c.TotalCount += n
			}
		}
	}
	return c
}

// Thresholds are the minimum coverage levels a profile must meet to be
// published (Section VI-B: "profile coverage ... is checked against
// pre-configured thresholds before the profile data is published").
type Thresholds struct {
	MinFuncs    int
	MinBlocks   int
	MinRequests int64
}

// MeetsThresholds reports whether the profile's coverage meets t.
func (p *Profile) MeetsThresholds(t Thresholds) bool {
	c := p.Coverage()
	return c.Funcs >= t.MinFuncs && c.Blocks >= t.MinBlocks &&
		c.RequestCount >= t.MinRequests
}

// HotFunctions returns function names ordered by decreasing entry
// count (ties by name) — the set the JIT compiles in optimized mode.
func (p *Profile) HotFunctions() []string { return p.HotFunctionsMin(1) }

// HotFunctionsMin returns functions with at least min profiled
// activations, ordered by decreasing entry count. HHVM only optimizes
// functions with enough profile data; everything below the threshold
// stays on the live-JIT path after point C, forming the long tail of
// Figure 1's C→D phase.
func (p *Profile) HotFunctionsMin(min uint64) []string {
	if min == 0 {
		min = 1
	}
	names := make([]string, 0, len(p.Funcs))
	for n, fp := range p.Funcs {
		if fp.EntryCount >= min {
			names = append(names, n)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		ci, cj := p.Funcs[names[i]].EntryCount, p.Funcs[names[j]].EntryCount
		if ci != cj {
			return ci > cj
		}
		return names[i] < names[j]
	})
	return names
}

// DominantTarget returns the callee receiving at least frac of the
// calls at the given site, if any — the devirtualization/inlining
// decision procedure.
func (fp *FuncProfile) DominantTarget(pc int32, frac float64) (string, bool) {
	targets := fp.CallTargets[pc]
	if len(targets) == 0 {
		return "", false
	}
	var total, best uint64
	bestName := ""
	for name, n := range targets {
		total += n
		if n > best || (n == best && name < bestName) {
			best = n
			bestName = name
		}
	}
	if float64(best) >= frac*float64(total) {
		return bestName, true
	}
	return "", false
}

// MonoTypes reports whether the operands at pc were monomorphic, and
// returns the dominant kind pair. A site is monomorphic when one kind
// pair accounts for at least 95% of observations.
func (fp *FuncProfile) MonoTypes(pc int32) (a, b uint8, mono bool) {
	obs := fp.TypeObs[pc]
	if len(obs) == 0 {
		return 0, 0, false
	}
	var total, best uint64
	var bestKey uint16
	first := true
	for k, n := range obs {
		total += n
		if n > best || (n == best && (first || k < bestKey)) {
			best = n
			bestKey = k
			first = false
		}
	}
	if float64(best) >= 0.95*float64(total) {
		return uint8(bestKey >> 8), uint8(bestKey & 0xff), true
	}
	return 0, 0, false
}

// MergeInto adds src's counters into dst (used by multi-seeder tests
// and by the JIT-debugging replay example).
func (p *Profile) MergeInto(dst *Profile) {
	seen := make(map[string]bool, len(dst.Units))
	for _, u := range dst.Units {
		seen[u] = true
	}
	for _, u := range p.Units {
		if !seen[u] {
			dst.Units = append(dst.Units, u)
			seen[u] = true
		}
	}
	for name, fp := range p.Funcs {
		d, ok := dst.Funcs[name]
		if !ok {
			d = &FuncProfile{
				Checksum:    fp.Checksum,
				BlockCounts: make([]uint64, len(fp.BlockCounts)),
				EdgeCounts:  map[EdgeKey]uint64{},
				CallTargets: map[int32]map[string]uint64{},
				TypeObs:     map[int32]map[uint16]uint64{},
			}
			dst.Funcs[name] = d
		}
		if d.Checksum != fp.Checksum || len(d.BlockCounts) != len(fp.BlockCounts) {
			continue // incompatible shapes never merge
		}
		d.EntryCount += fp.EntryCount
		for i, n := range fp.BlockCounts {
			d.BlockCounts[i] += n
		}
		for k, n := range fp.EdgeCounts {
			d.EdgeCounts[k] += n
		}
		for pc, targets := range fp.CallTargets {
			dt := d.CallTargets[pc]
			if dt == nil {
				dt = map[string]uint64{}
				d.CallTargets[pc] = dt
			}
			for name, n := range targets {
				dt[name] += n
			}
		}
		for pc, obs := range fp.TypeObs {
			dobs := d.TypeObs[pc]
			if dobs == nil {
				dobs = map[uint16]uint64{}
				d.TypeObs[pc] = dobs
			}
			for k, n := range obs {
				dobs[k] += n
			}
		}
	}
	for k, n := range p.Props {
		dst.Props[k] += n
	}
	for k, n := range p.PropPairs {
		dst.PropPairs[k] += n
	}
	for k, n := range p.CallPairs {
		dst.CallPairs[k] += n
	}
	dst.Meta.RequestCount += p.Meta.RequestCount
}
