package prof

import (
	"testing"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/hackc"
)

func compileOne(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	prog, err := hackc.CompileSources(
		map[string]string{"unit0.mh": src}, []string{"unit0.mh"},
		hackc.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// funcProfileFor builds a minimal profile entry for fn, with marker
// counters so tests can watch what survives.
func funcProfileFor(t *testing.T, p *bytecode.Program, name string) *FuncProfile {
	t.Helper()
	fn, ok := p.FuncByName(name)
	if !ok {
		t.Fatalf("function %s not in program", name)
	}
	return &FuncProfile{
		Checksum:    FuncChecksum(fn),
		EntryCount:  10,
		BlockCounts: []uint64{5},
		VasmCounts:  []uint64{7},
	}
}

const remapSrcA = `
fun keep(a) { return a + 1; }
fun tweaked(a) { return a + 10; }
fun gone(a) { return a * 2; }
fun oldname(a) { return a * 3 + 7; }
`

// Rev B: keep unchanged, tweaked's constant edited (CFG intact), gone
// deleted, oldname renamed to newname with an identical body.
const remapSrcB = `
fun keep(a) { return a + 1; }
fun tweaked(a) { return a + 99; }
fun newname(a) { return a * 3 + 7; }
`

// TestRemapCascade drives every arm of the cascade at once: exact,
// rename (identical body under a new name), fuzzy (constant changed,
// shape kept), and drop (function deleted).
func TestRemapCascade(t *testing.T) {
	from := compileOne(t, remapSrcA)
	to := compileOne(t, remapSrcB)

	p := NewProfile()
	p.Meta.Revision = 1
	for _, name := range []string{"keep", "tweaked", "gone", "oldname"} {
		p.Funcs[name] = funcProfileFor(t, from, name)
	}
	p.Funcs["keep"].CallTargets = map[int32]map[string]uint64{0: {"oldname": 4}}
	p.CallPairs[CallPair{Caller: "keep", Callee: "oldname"}] = 3
	p.CallPairs[CallPair{Caller: "keep", Callee: "gone"}] = 2
	p.FuncOrder = []string{"oldname", "keep", "gone", "tweaked"}

	out, stats := Remap(p, from, to, 2)

	want := RemapStats{Exact: 1, Renamed: 1, Fuzzy: 1, Dropped: 1}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	if out.Meta.Revision != 2 {
		t.Fatalf("remapped profile stamped revision %d, want 2", out.Meta.Revision)
	}

	// Every surviving entry must carry the *target* function's checksum
	// (the consumer JIT gate), not the stale source checksum.
	for _, name := range []string{"keep", "tweaked", "newname"} {
		fn, _ := to.FuncByName(name)
		fp, ok := out.Funcs[name]
		if !ok {
			t.Fatalf("%s missing from remapped profile", name)
		}
		if fp.Checksum != FuncChecksum(fn) {
			t.Fatalf("%s checksum not restamped onto the target build", name)
		}
	}
	if _, ok := out.Funcs["gone"]; ok {
		t.Fatal("deleted function's profile was not dropped")
	}
	if _, ok := out.Funcs["oldname"]; ok {
		t.Fatal("renamed function kept its old key")
	}

	// VasmCounts describe the optimized translation: they survive exact
	// and rename matches, never fuzzy ones.
	if out.Funcs["keep"].VasmCounts == nil || out.Funcs["newname"].VasmCounts == nil {
		t.Fatal("exact/renamed match lost VasmCounts")
	}
	if out.Funcs["tweaked"].VasmCounts != nil {
		t.Fatal("fuzzy match must not carry VasmCounts")
	}

	// Call targets and the tier-2 call graph follow the rename; arcs to
	// the deleted function drop.
	if n := out.Funcs["keep"].CallTargets[0]["newname"]; n != 4 {
		t.Fatalf("call target not rewritten through rename: %v", out.Funcs["keep"].CallTargets)
	}
	if n := out.CallPairs[CallPair{Caller: "keep", Callee: "newname"}]; n != 3 {
		t.Fatalf("call pair not rewritten: %v", out.CallPairs)
	}
	if _, ok := out.CallPairs[CallPair{Caller: "keep", Callee: "gone"}]; ok {
		t.Fatal("call pair to deleted function survived")
	}

	// FuncOrder: renamed entries follow, dead entries drop, order holds.
	wantOrder := []string{"newname", "keep", "tweaked"}
	if len(out.FuncOrder) != len(wantOrder) {
		t.Fatalf("FuncOrder = %v, want %v", out.FuncOrder, wantOrder)
	}
	for i, name := range wantOrder {
		if out.FuncOrder[i] != name {
			t.Fatalf("FuncOrder = %v, want %v", out.FuncOrder, wantOrder)
		}
	}
}

// TestRemapAmbiguousCollision: two functions new in the target share
// the source function's body fingerprint (and arity). The rename
// target cannot be decided, so the profile must drop rather than
// guess.
func TestRemapAmbiguousCollision(t *testing.T) {
	from := compileOne(t, `
fun keep(a) { return a + 1; }
fun oldname(a) { return a * 3 + 7; }
`)
	to := compileOne(t, `
fun keep(a) { return a + 1; }
fun twin1(a) { return a * 3 + 7; }
fun twin2(a) { return a * 3 + 7; }
`)
	p := NewProfile()
	p.Funcs["keep"] = funcProfileFor(t, from, "keep")
	p.Funcs["oldname"] = funcProfileFor(t, from, "oldname")

	out, stats := Remap(p, from, to, 2)
	if stats.Ambiguous != 1 || stats.Exact != 1 || stats.Renamed != 0 {
		t.Fatalf("stats = %+v, want 1 exact + 1 ambiguous", stats)
	}
	if _, ok := out.Funcs["twin1"]; ok {
		t.Fatal("ambiguous rename guessed twin1")
	}
	if _, ok := out.Funcs["twin2"]; ok {
		t.Fatal("ambiguous rename guessed twin2")
	}
}

// TestRemapEmptyProfile: an empty package remaps to an empty package —
// no matches, no drops, hit rate 1 (nothing to lose), new stamp.
func TestRemapEmptyProfile(t *testing.T) {
	from := compileOne(t, `fun keep(a) { return a + 1; }`)
	to := compileOne(t, `fun keep(a) { return a + 2; }`)

	p := NewProfile()
	p.Meta.Revision = 1
	out, stats := Remap(p, from, to, 9)
	if stats.Total() != 0 {
		t.Fatalf("empty profile produced stats %+v", stats)
	}
	if stats.HitRate() != 1 {
		t.Fatalf("empty profile hit rate = %f, want 1", stats.HitRate())
	}
	if len(out.Funcs) != 0 {
		t.Fatal("empty profile grew functions")
	}
	if out.Meta.Revision != 9 {
		t.Fatalf("stamped revision %d, want 9", out.Meta.Revision)
	}
}
