// Package vasm models HHVM's lowest-level intermediate representation
// ("Vasm"): the sized, weighted basic blocks that translations are made
// of and that the code-layout optimizations (Ext-TSP block reordering,
// hot/cold splitting) operate on.
//
// The simulated JIT does not emit real machine instructions; a Vasm
// block records how many pseudo-instructions the lowering produced,
// their encoded size in bytes, and the CFG structure. Execution charges
// cycles per instruction and feeds block addresses to the
// micro-architecture simulator, so the paper's layout effects arise
// from the same mechanism as in HHVM: fewer taken branches, denser hot
// code, fewer I-cache/I-TLB misses.
package vasm

import (
	"jumpstart/internal/bytecode"
	"jumpstart/internal/layout"
)

// BlockKind distinguishes lowered block flavours.
type BlockKind uint8

// Block kinds.
const (
	// KindNormal is straight-line lowered bytecode.
	KindNormal BlockKind = iota
	// KindGuardExit is a side exit taken when a specialization guard
	// fails; almost never executed, but bytecode-level profiles cannot
	// see that (Section V-A's accuracy problem).
	KindGuardExit
	// KindStub is prologue/epilogue glue.
	KindStub
)

// BytesPerInstr is the average encoded size of one Vasm
// pseudo-instruction (x86-64 averages ~4 bytes).
const BytesPerInstr = 4

// Block is one Vasm basic block.
type Block struct {
	ID      int
	Kind    BlockKind
	NInstrs int
	Weight  uint64
	Succs   []int

	// Origin ties the block back to the bytecode block it lowers
	// (-1 for synthetic blocks). For inlined code, OriginFunc is the
	// callee.
	OriginFunc  bytecode.FuncID
	OriginBlock int
}

// Size returns the block's encoded size in bytes.
func (b *Block) Size() int { return b.NInstrs * BytesPerInstr }

// Edge is a weighted CFG edge between Vasm blocks.
type Edge struct {
	Src, Dst int
	Weight   uint64
}

// CFG is a lowered function body.
type CFG struct {
	FuncName string
	Blocks   []Block
	Edges    []Edge
}

// NInstrs sums instruction counts over all blocks.
func (c *CFG) NInstrs() int {
	n := 0
	for i := range c.Blocks {
		n += c.Blocks[i].NInstrs
	}
	return n
}

// CodeSize returns the total encoded size in bytes.
func (c *CFG) CodeSize() int { return c.NInstrs() * BytesPerInstr }

// ToLayoutGraph converts the CFG into the layout package's graph form.
func (c *CFG) ToLayoutGraph() *layout.Graph {
	g := &layout.Graph{Blocks: make([]layout.BlockInfo, len(c.Blocks))}
	for i := range c.Blocks {
		g.Blocks[i] = layout.BlockInfo{
			Size:   c.Blocks[i].Size(),
			Weight: c.Blocks[i].Weight,
		}
	}
	for _, e := range c.Edges {
		g.Edges = append(g.Edges, layout.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
	}
	return g
}

// GenericInstrs returns the Vasm instruction count for lowering op
// without type information: full dynamic dispatch with type checks on
// every operand, hashtable property lookup, and so on. These are the
// costs of live and profiling translations.
func GenericInstrs(op bytecode.Op) int {
	switch op {
	case bytecode.OpNop:
		return 0
	case bytecode.OpNull, bytecode.OpTrue, bytecode.OpFalse, bytecode.OpInt:
		return 2
	case bytecode.OpLit, bytecode.OpDup:
		return 2
	case bytecode.OpPopC:
		return 1
	case bytecode.OpCGetL, bytecode.OpSetL, bytecode.OpPushL:
		return 2
	case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul:
		return 12 // two type dispatches + overflow checks
	case bytecode.OpDiv, bytecode.OpMod:
		return 14
	case bytecode.OpConcat:
		return 12
	case bytecode.OpNeg, bytecode.OpNot:
		return 6
	case bytecode.OpBitAnd, bytecode.OpBitOr, bytecode.OpBitXor,
		bytecode.OpShl, bytecode.OpShr:
		return 8
	case bytecode.OpCmpEq, bytecode.OpCmpNeq, bytecode.OpCmpSame,
		bytecode.OpCmpNSame, bytecode.OpCmpLt, bytecode.OpCmpLte,
		bytecode.OpCmpGt, bytecode.OpCmpGte:
		return 10
	case bytecode.OpJmp:
		return 1
	case bytecode.OpJmpZ, bytecode.OpJmpNZ:
		return 5 // truthiness dispatch + branch
	case bytecode.OpRet:
		return 4
	case bytecode.OpFatal:
		return 4
	case bytecode.OpFCall, bytecode.OpFCallD:
		return 10 // frame setup + ABI
	case bytecode.OpFCallM:
		return 18 // receiver check + method table lookup + call
	case bytecode.OpNewObj, bytecode.OpNewObjL:
		return 16 // allocation + default init + ctor dispatch
	case bytecode.OpBuiltin:
		return 8
	case bytecode.OpThis:
		return 2
	case bytecode.OpPropGet, bytecode.OpPropSet:
		return 14 // name hash + table probe + type-check
	case bytecode.OpNewVec, bytecode.OpNewDict:
		return 12
	case bytecode.OpIdxGet, bytecode.OpIdxSet, bytecode.OpIdxApp:
		return 12
	case bytecode.OpIterInit:
		return 10
	case bytecode.OpIterNext:
		return 6
	case bytecode.OpIterKey, bytecode.OpIterVal:
		return 3
	default:
		return 6
	}
}

// SpecializedInstrs returns the instruction count when the JIT has
// monomorphic type feedback for the site: a cheap guard plus the
// direct operation. Sites that cannot specialize fall back to
// GenericInstrs.
func SpecializedInstrs(op bytecode.Op) int {
	switch op {
	case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul:
		return 4 // guard + alu op + flags check
	case bytecode.OpDiv, bytecode.OpMod:
		return 6
	case bytecode.OpConcat:
		return 6
	case bytecode.OpNeg:
		return 3
	case bytecode.OpCmpEq, bytecode.OpCmpNeq, bytecode.OpCmpSame,
		bytecode.OpCmpNSame, bytecode.OpCmpLt, bytecode.OpCmpLte,
		bytecode.OpCmpGt, bytecode.OpCmpGte:
		return 4
	case bytecode.OpJmpZ, bytecode.OpJmpNZ:
		return 2 // known-bool test + branch
	default:
		return GenericInstrs(op)
	}
}

// SpecializedPropInstrs is the cost of a property access whose class
// and slot were resolved from profile data: guard on the class pointer
// plus a direct load/store.
const SpecializedPropInstrs = 4

// DevirtualizedCallInstrs is the cost of a method call guarded to a
// single profiled target: class-pointer guard plus a direct call.
const DevirtualizedCallInstrs = 12

// GuardExitInstrs is the size of a guard-failure side exit block.
const GuardExitInstrs = 8

// Instrumentation costs (added by the tiers that profile).
const (
	// BlockCounterInstrs is the per-block profile counter increment
	// (tier-1, and tier-2 on Jump-Start seeders per Section V-A).
	BlockCounterInstrs = 2
	// CallProfileInstrs is the per-call-site target-profile update.
	CallProfileInstrs = 3
	// PropProfileInstrs is the per-property-access counter update
	// (Section V-C seeder instrumentation).
	PropProfileInstrs = 2
	// FuncEntryProfileInstrs is the per-entry caller/callee counter
	// (Section V-B seeder instrumentation).
	FuncEntryProfileInstrs = 3
)
