package vasm

import (
	"testing"

	"jumpstart/internal/bytecode"
)

func TestCostTablesSane(t *testing.T) {
	for op := bytecode.Op(0); int(op) < bytecode.NumOps; op++ {
		g := GenericInstrs(op)
		s := SpecializedInstrs(op)
		if g < 0 || s < 0 {
			t.Fatalf("%v: negative cost", op)
		}
		if s > g {
			t.Fatalf("%v: specialized (%d) dearer than generic (%d)", op, s, g)
		}
	}
	// Specialization must actually pay off on the hot ops.
	for _, op := range []bytecode.Op{bytecode.OpAdd, bytecode.OpCmpLt, bytecode.OpConcat} {
		if SpecializedInstrs(op) >= GenericInstrs(op) {
			t.Fatalf("%v: no specialization win", op)
		}
	}
	// Nop lowers to nothing.
	if GenericInstrs(bytecode.OpNop) != 0 {
		t.Fatal("Nop cost")
	}
}

func TestBlockSizeAndCFGTotals(t *testing.T) {
	cfg := &CFG{
		FuncName: "f",
		Blocks: []Block{
			{ID: 0, NInstrs: 10, Weight: 100},
			{ID: 1, NInstrs: 5, Weight: 50, Kind: KindGuardExit},
		},
		Edges: []Edge{{Src: 0, Dst: 1, Weight: 7}},
	}
	if cfg.Blocks[0].Size() != 10*BytesPerInstr {
		t.Fatal("block size")
	}
	if cfg.NInstrs() != 15 || cfg.CodeSize() != 15*BytesPerInstr {
		t.Fatal("totals")
	}
}

func TestToLayoutGraph(t *testing.T) {
	cfg := &CFG{
		Blocks: []Block{
			{ID: 0, NInstrs: 4, Weight: 9},
			{ID: 1, NInstrs: 2, Weight: 3},
		},
		Edges: []Edge{{Src: 0, Dst: 1, Weight: 5}},
	}
	g := cfg.ToLayoutGraph()
	if len(g.Blocks) != 2 || len(g.Edges) != 1 {
		t.Fatal("shape")
	}
	if g.Blocks[0].Size != 16 || g.Blocks[0].Weight != 9 {
		t.Fatalf("block 0 = %+v", g.Blocks[0])
	}
	if g.Edges[0].Weight != 5 || g.Edges[0].Src != 0 || g.Edges[0].Dst != 1 {
		t.Fatalf("edge = %+v", g.Edges[0])
	}
}

func TestInstrumentationConstantsPositive(t *testing.T) {
	for name, v := range map[string]int{
		"BlockCounterInstrs":     BlockCounterInstrs,
		"CallProfileInstrs":      CallProfileInstrs,
		"PropProfileInstrs":      PropProfileInstrs,
		"FuncEntryProfileInstrs": FuncEntryProfileInstrs,
		"GuardExitInstrs":        GuardExitInstrs,
		"SpecializedPropInstrs":  SpecializedPropInstrs,
	} {
		if v <= 0 {
			t.Fatalf("%s = %d", name, v)
		}
	}
	// Devirtualized calls must beat generic method dispatch.
	if DevirtualizedCallInstrs >= GenericInstrs(bytecode.OpFCallM) {
		t.Fatal("devirtualization not profitable")
	}
	// Specialized property access must beat the hashtable path.
	if SpecializedPropInstrs >= GenericInstrs(bytecode.OpPropGet) {
		t.Fatal("prop specialization not profitable")
	}
}
