package interp

import (
	"strings"
	"testing"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

// rawProgram assembles a single function from raw bytecode via the
// builder, covering opcodes the MiniHack compiler never emits.
func rawProgram(t *testing.T, build func(b *bytecode.FuncBuilder)) *Interp {
	t.Helper()
	u := &bytecode.Unit{Name: "raw"}
	b := bytecode.NewFuncBuilder(u, "f", []string{"x"})
	build(b)
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	u.Funcs = []*bytecode.Function{fn}
	prog, err := bytecode.NewProgram(u)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Verify(); err != nil {
		t.Fatal(err)
	}
	reg, err := object.NewRegistry(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(prog, reg, Config{})
}

func TestRawPushL(t *testing.T) {
	// PushL moves the local onto the stack, nulling the local:
	// return [pushl(x), x] — second read must see null.
	ip := rawProgram(t, func(b *bytecode.FuncBuilder) {
		b.Emit(bytecode.OpPushL, 0, 0)
		b.Emit(bytecode.OpCGetL, 0, 0)
		b.Emit(bytecode.OpNewVec, 2, 0)
		b.Emit(bytecode.OpRet, 0, 0)
	})
	v, err := ip.CallByName("f", value.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	arr := v.AsArr()
	first, _ := arr.GetInt(0)
	second, _ := arr.GetInt(1)
	if first.AsInt() != 7 || !second.IsNull() {
		t.Fatalf("pushl semantics: %v", arr)
	}
}

func TestRawDup(t *testing.T) {
	ip := rawProgram(t, func(b *bytecode.FuncBuilder) {
		b.Emit(bytecode.OpCGetL, 0, 0)
		b.Emit(bytecode.OpDup, 0, 0)
		b.Emit(bytecode.OpAdd, 0, 0)
		b.Emit(bytecode.OpRet, 0, 0)
	})
	v, err := ip.CallByName("f", value.Int(21))
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 42 {
		t.Fatalf("dup+add = %v", v)
	}
}

func TestRawFatal(t *testing.T) {
	ip := rawProgram(t, func(b *bytecode.FuncBuilder) {
		b.EmitLit(value.Str("boom"))
		b.Emit(bytecode.OpFatal, 0, 0)
	})
	_, err := ip.CallByName("f", value.Int(0))
	if err == nil || !strings.Contains(err.Error(), "fatal: boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRawUnresolvedCallFaults(t *testing.T) {
	// An OpFCall whose name never resolved at link time faults at
	// runtime with the function name.
	ip := rawProgram(t, func(b *bytecode.FuncBuilder) {
		idx := b.LitIdx(value.Str("missing_fn"))
		b.Emit(bytecode.OpFCall, idx, 0)
		b.Emit(bytecode.OpRet, 0, 0)
	})
	_, err := ip.CallByName("f", value.Int(0))
	if err == nil || !strings.Contains(err.Error(), `undefined function "missing_fn"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestRawUnresolvedNewObjFaults(t *testing.T) {
	ip := rawProgram(t, func(b *bytecode.FuncBuilder) {
		idx := b.LitIdx(value.Str("MissingClass"))
		b.Emit(bytecode.OpNewObjL, idx, 0)
		b.Emit(bytecode.OpRet, 0, 0)
	})
	_, err := ip.CallByName("f", value.Int(0))
	if err == nil || !strings.Contains(err.Error(), `undefined class "MissingClass"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestRawNopAndShifts(t *testing.T) {
	ip := rawProgram(t, func(b *bytecode.FuncBuilder) {
		b.Emit(bytecode.OpNop, 0, 0)
		b.Emit(bytecode.OpCGetL, 0, 0)
		b.EmitLit(value.Int(2))
		b.Emit(bytecode.OpShl, 0, 0)
		b.EmitLit(value.Int(1))
		b.Emit(bytecode.OpShr, 0, 0)
		b.Emit(bytecode.OpRet, 0, 0)
	})
	v, err := ip.CallByName("f", value.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 10 { // (5<<2)>>1
		t.Fatalf("shifts = %v", v)
	}
}
