package interp

import (
	"testing"

	"jumpstart/internal/hackc"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

// TestDispatchAllocFree pins the tier-0 hot path: once the per-depth
// frame pool has grown, interpreting pure compute — arithmetic,
// comparisons, branches, loops, nested and recursive calls — performs
// zero heap allocations. Only program-level value allocations (arrays,
// objects) may allocate; the dispatch machinery itself never does.
func TestDispatchAllocFree(t *testing.T) {
	src := `
fun helper(x, y) {
  acc = 0;
  for (i = 0; i < 8; i += 1) {
    if (x > y) { acc += x - y; } else { acc += y; }
    x += 3;
  }
  return acc;
}
fun fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fun entry(a) {
  s = 0;
  for (i = 0; i < 10; i += 1) {
    s += helper(a + i, i * 2);
  }
  return s + fib(10);
}
`
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": src}, []string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := object.NewRegistry(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip := New(prog, reg, Config{})
	fn, ok := prog.FuncByName("entry")
	if !ok {
		t.Fatal("no entry")
	}
	arg := value.Int(7)
	// Warm once: grows the frame pool to the program's max depth.
	want, err := ip.Call(fn, arg)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		got, err := ip.Call(fn, arg)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Identical(got, want) {
			t.Fatalf("result changed: %v vs %v", got, want)
		}
	})
	if avg != 0 {
		t.Fatalf("interpreter dispatch allocates: %v allocs per call", avg)
	}
}

// TestIterReuseAllocFree pins iterator-state reuse: a foreach over an
// existing array reuses the pooled entries buffer after the first
// pass. (The array built inside the loop body is program data and is
// excluded by constructing it once up front.)
func TestIterReuseAllocFree(t *testing.T) {
	src := `
fun sum(xs) {
  s = 0;
  foreach (xs as x) { s += x; }
  return s;
}
`
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": src}, []string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := object.NewRegistry(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip := New(prog, reg, Config{})
	fn, ok := prog.FuncByName("sum")
	if !ok {
		t.Fatal("no sum")
	}
	arr := value.NewArray(16)
	for i := 0; i < 16; i++ {
		arr.Append(value.Int(int64(i)))
	}
	arg := value.Arr(arr)
	if _, err := ip.Call(fn, arg); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := ip.Call(fn, arg); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("foreach allocates after warmup: %v allocs per call", avg)
	}
}
